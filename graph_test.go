package cmo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cmo/internal/analyze"
	"cmo/internal/workload"
)

// The dependency graph's load-bearing invariant, tested from outside:
// the graph changes how fast an answer arrives, never the answer. The
// differential matrix below drives cold → warm-noop → warm-edit →
// warm-again through paired sessions — one graph-steered, one with the
// NoDepGraph ablation — and demands byte identity at every step. The
// crash and corruption tests then prove the graph degrades to a full
// (still correct) rebuild rather than ever serving stale bytes.

func graphSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "graph", Seed: seed,
		Modules: 6, HotPerModule: 2, ColdPerModule: 3, ColdStmts: 8,
		ArrayElems: 16,
		TrainIters: 30, RefIters: 80, TrainMode: 2, RefMode: 4,
	}
}

// editCallee rewires a called function's body in module i — unlike the
// uncalled probe in editOne, this edit survives dead-code elimination
// at every level, so it dirties a real closure through the call graph.
func editCallee(t *testing.T, mods []SourceModule, i int) []SourceModule {
	t.Helper()
	out := append([]SourceModule(nil), mods...)
	out[i].Text += "\nfunc graph_edit_probe(x int) int { return x * 3 + 1; }\n"
	return out
}

func TestDepGraphDifferential(t *testing.T) {
	spec := graphSpec(71)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	configs := []Options{
		{Level: O1},
		{Level: O2, Verify: analyze.Structural},
		{Level: O3, SelectPercent: 50, Verify: analyze.Interproc},
		{Level: O4, SelectPercent: -1},
		{Level: O4, PBO: true, DB: db, SelectPercent: 60, Verify: analyze.Interproc},
	}
	for _, opt := range configs {
		name := fmt.Sprintf("%v-sel%g-pbo%v-verify%v", opt.Level, opt.SelectPercent, opt.PBO, opt.Verify)
		t.Run(name, func(t *testing.T) {
			gDir, nDir := t.TempDir(), t.TempDir()
			build := func(src []SourceModule, dir string, noGraph bool) *Build {
				o := opt
				o.CacheDir = dir
				o.NoDepGraph = noGraph
				o.Volatile = workload.InputGlobals()
				b, err := BuildSource(src, o)
				if err != nil {
					t.Fatalf("build (nograph=%v): %v", noGraph, err)
				}
				return b
			}
			step := func(label string, src []SourceModule) {
				g := build(src, gDir, false)
				n := build(src, nDir, true)
				if g.Image.Disasm() != n.Image.Disasm() {
					t.Fatalf("%s: graph-steered image differs from NoDepGraph image", label)
				}
				if n.Stats.GraphImageReplay {
					t.Fatalf("%s: NoDepGraph build replayed the image", label)
				}
			}
			step("cold", mods)
			step("warm-noop", mods)
			edited := editCallee(t, mods, 2)
			step("warm-edit", edited)
			step("warm-again", edited)
			// Reverting the edit replays artifacts from before it — the
			// content-addressed store never forgot them.
			step("revert", mods)
		})
	}
}

// TestDepGraphRepoResetNeverStale: the repository vanishing (or being
// reset) out from under a surviving graph.log is the nightmare case —
// the graph describes artifacts the store no longer holds. The epoch
// handshake must discard the graph and rebuild everything, cold-build
// identical.
func TestDepGraphRepoResetNeverStale(t *testing.T) {
	dir := t.TempDir()
	mods := sources(graphSpec(73))
	opt := Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals(), CacheDir: dir}

	cold, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the repository, keep graph.log.
	for _, f := range []string{"repo.log", "MANIFEST"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatalf("removing %s: %v", f, err)
		}
	}
	again, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.GraphImageReplay {
		t.Errorf("build replayed an image through a graph whose repository was destroyed")
	}
	if again.Stats.CacheFrontendHits != 0 {
		t.Errorf("post-reset build claims %d frontend hits from an empty repository", again.Stats.CacheFrontendHits)
	}
	if again.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("post-reset rebuild differs from the original build")
	}
	// And the freshly re-seeded session warms back up normally.
	warm, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.GraphImageReplay {
		t.Errorf("re-seeded session did not replay the image")
	}
	if warm.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("re-seeded warm rebuild differs from the original build")
	}
}

// TestDepGraphTornLogRecovery: a crash mid-append leaves a torn
// graph.log tail. The next session must truncate it, keep every record
// before the tear, and serve correct bytes either way.
func TestDepGraphTornLogRecovery(t *testing.T) {
	dir := t.TempDir()
	mods := sources(graphSpec(79))
	opt := Options{Level: O3, Volatile: workload.InputGlobals(), CacheDir: dir}

	cold, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "graph.log")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("graph.log missing after a session build: %v", err)
	}
	if st.Size() < 64 {
		t.Fatalf("graph.log implausibly small: %d bytes", st.Size())
	}
	// Tear the tail: chop mid-record (any cut not on a record boundary
	// works — recovery scans from the header and stops at the damage).
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	warm, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("rebuild over a torn graph.log differs from the original build")
	}
	// The torn record is gone but the artifacts are content-addressed:
	// whatever the truncated graph still names replays, and the next
	// build has a healed, fully warm graph again.
	healed, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Stats.GraphImageReplay {
		t.Errorf("graph did not heal after torn-tail recovery (dirty closure %d)",
			healed.Stats.GraphDirtyClosure)
	}
	if healed.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("healed rebuild differs from the original build")
	}
}

// TestDepGraphGarbageLogDiscarded: a graph.log full of garbage (wrong
// magic entirely) must be discarded wholesale, not half-parsed.
func TestDepGraphGarbageLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	mods := sources(graphSpec(83))
	opt := Options{Level: O2, Volatile: workload.InputGlobals(), CacheDir: dir}

	cold, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "graph.log"),
		[]byte("this is not a graph log at all, not even close"), 0o666); err != nil {
		t.Fatal(err)
	}
	b, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.GraphImageReplay {
		t.Errorf("build replayed an image out of a garbage graph.log")
	}
	// Artifact replay still works — the repository is intact.
	if b.Stats.CacheFrontendHits != len(mods) {
		t.Errorf("frontend hits = %d, want %d (repository should still serve)",
			b.Stats.CacheFrontendHits, len(mods))
	}
	if b.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("rebuild over a garbage graph.log differs from the original build")
	}
}

// TestDepGraphConcurrentSharedSession is the -race stress: many
// concurrent builds (mixed warm and edited) sharing one Session, hence
// one loaded graph — the daemon's exact shape. Every build must return
// the right bytes for its own input.
func TestDepGraphConcurrentSharedSession(t *testing.T) {
	dir := t.TempDir()
	mods := sources(graphSpec(89))
	opt := Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()}

	// Reference images, from isolated cold builds.
	wantBase, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	edited := editCallee(t, mods, 1)
	wantEdit, err := BuildSource(edited, opt)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	opt.Session = sess
	opt.Jobs = 2

	// Seed the session, then hammer it.
	if _, err := BuildSource(mods, opt); err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make([]error, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, want := mods, wantBase
			if i%2 == 1 {
				src, want = edited, wantEdit
			}
			b, err := BuildSource(src, opt)
			if err != nil {
				errs[i] = err
				return
			}
			if b.Image.Disasm() != want.Image.Disasm() {
				errs[i] = fmt.Errorf("build %d: image differs from its isolated reference", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent build %d: %v", i, err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatalf("commit after concurrent builds: %v", err)
	}
	// The committed state must serve a clean replay.
	final, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if final.Image.Disasm() != wantBase.Image.Disasm() {
		t.Errorf("post-stress warm rebuild differs from the reference")
	}
}
