module cmo

go 1.22
