package cmo

import (
	"strings"
	"testing"

	"cmo/internal/analyze"
	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/source"
)

// TestVerifyLevelsPassOnCleanBuilds: a healthy pipeline must verify
// clean at every level, at every optimization level, and produce the
// same answer as an unverified build.
func TestVerifyLevelsPassOnCleanBuilds(t *testing.T) {
	spec := testSpec(31)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	_, ref := buildAndRun(t, mods, spec, Options{Level: O2})

	for _, level := range []analyze.Level{VerifyStructural, VerifyDataflow, VerifyInterproc} {
		for _, opt := range []Options{
			{Level: O2, Verify: level},
			{Level: O3, Verify: level},
			{Level: O4, SelectPercent: -1, Verify: level},
			{Level: O4, PBO: true, DB: db, SelectPercent: 100, Verify: level},
		} {
			b, rr := buildAndRun(t, mods, spec, opt)
			if rr.Value != ref.Value {
				t.Errorf("%v verify=%v: result %d != %d", opt.Level, level, rr.Value, ref.Value)
			}
			if b.Stats.VerifyNanos <= 0 {
				t.Errorf("%v verify=%v: VerifyNanos not recorded", opt.Level, level)
			}
		}
	}
}

// TestVerifyCatchesBrokenHLOTransform is the acceptance criterion for
// the verification tentpole: a deliberately broken HLO transform must
// be caught immediately, with an error naming both the transform and
// the damaged function.
func TestVerifyCatchesBrokenHLOTransform(t *testing.T) {
	spec := testSpec(32)
	mods := sources(spec)

	// Corrupt one function right after the inliner runs: redirect a
	// use to a register that no path defines. Structural checks can't
	// see it (the register is within NRegs); the dataflow tier must.
	var victim string
	testHLOTamper = func(transform string, prog *il.Program, loader *naim.Loader) {
		if transform != "inline" || victim != "" {
			return
		}
		for _, pid := range prog.FuncPIDs() {
			f := loader.Function(pid)
			if f == nil {
				continue
			}
			tampered := false
			for _, b := range f.Blocks {
				for ii := range b.Instrs {
					in := &b.Instrs[ii]
					if in.Op == il.Add && !in.A.IsConst {
						f.NRegs++
						in.A = il.RegVal(f.NRegs - 1)
						victim = f.Name
						tampered = true
					}
					if tampered {
						break
					}
				}
				if tampered {
					break
				}
			}
			loader.DoneWith(pid)
			if tampered {
				return
			}
		}
	}
	defer func() { testHLOTamper = nil }()

	opt := Options{Level: O4, SelectPercent: -1, Verify: VerifyDataflow}
	_, err := BuildSource(mods, opt)
	if err == nil {
		t.Fatal("build with tampered inliner output succeeded")
	}
	if victim == "" {
		t.Fatal("tamper hook never found an Add to corrupt")
	}
	msg := err.Error()
	for _, want := range []string{"inline", victim, "def-before-use"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not name %q:\n%s", want, msg)
		}
	}
}

// TestVerifyCatchesStructuralTamper: the structural tier alone must
// catch IL that il.Verify rejects, attributed to the transform that
// produced it.
func TestVerifyCatchesStructuralTamper(t *testing.T) {
	spec := testSpec(33)
	mods := sources(spec)

	tampered := false
	testHLOTamper = func(transform string, prog *il.Program, loader *naim.Loader) {
		if transform != "ipcp" || tampered {
			return
		}
		for _, pid := range prog.FuncPIDs() {
			f := loader.Function(pid)
			if f == nil {
				continue
			}
			last := f.Blocks[len(f.Blocks)-1]
			// Chop off the terminator: a classic rewrite bug.
			if len(last.Instrs) > 1 {
				last.Instrs = last.Instrs[:len(last.Instrs)-1]
				tampered = true
			}
			loader.DoneWith(pid)
			if tampered {
				return
			}
		}
	}
	defer func() { testHLOTamper = nil }()

	_, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Verify: VerifyStructural})
	if !tampered {
		t.Skip("tamper point not reachable in this workload")
	}
	if err == nil {
		t.Fatal("build with truncated block succeeded")
	}
	if !strings.Contains(err.Error(), "ipcp") || !strings.Contains(err.Error(), "structural") {
		t.Errorf("error does not attribute the structural break to ipcp:\n%v", err)
	}
}

// TestFactsAuditAcrossSelectivity runs the section-5 soundness audit
// over real selective builds: at 0%, 20%, and 100% selectivity the
// published HLO facts must be conservative over a full rescan.
func TestFactsAuditAcrossSelectivity(t *testing.T) {
	spec := testSpec(34)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	_, ref := buildAndRun(t, mods, spec, Options{Level: O2})
	for _, pct := range []float64{0, 20, 100} {
		opt := Options{Level: O4, PBO: true, DB: db, SelectPercent: pct, Verify: VerifyInterproc}
		b, rr := buildAndRun(t, mods, spec, opt)
		if rr.Value != ref.Value {
			t.Errorf("select %.0f%%: result %d != %d", pct, rr.Value, ref.Value)
		}
		if pct > 0 && b.Stats.CMOFunctions == 0 {
			t.Errorf("select %.0f%%: nothing selected; audit vacuous", pct)
		}
	}
}

// TestVerifyCatchesUnsoundDCE: omitting a live function must be
// caught by the post-link interprocedural check (or by the linker's
// relocation, whichever sees it first) with the function named.
func TestVerifyCatchesUnsoundDCE(t *testing.T) {
	mods := []SourceModule{
		{Name: "a.minc", Text: "module a;\nextern func helper(x int) int;\nfunc main() int { return helper(4); }\n"},
		{Name: "b.minc", Text: "module b;\nfunc helper(x int) int { return x * 3; }\n"},
	}
	// An HLO tamper can't fake unsound DCE easily, so go through the
	// analyzer directly: frontend IL plus a fabricated omit set.
	prog, fns := lowerForTest(t, mods)
	helper := prog.Lookup("helper")
	if helper == nil {
		t.Fatal("no helper symbol")
	}
	res := analyze.Program(prog, analyze.MapSource(fns), analyze.Options{
		Level: analyze.Interproc,
		Omit:  map[il.PID]bool{helper.PID: true},
	})
	if res.Errors() == 0 {
		t.Fatal("analyzer accepted a call into the omitted set")
	}
	found := false
	for _, d := range res.Diags {
		if d.Check == "dangling-pid" && strings.Contains(d.Message, "helper") {
			found = true
		}
	}
	if !found {
		t.Errorf("no dangling-pid diagnostic naming helper:\n%v", res.Diags)
	}
}

// lowerForTest runs just the frontend, returning the program and raw
// IL bodies for tests that feed the analyzer directly.
func lowerForTest(t *testing.T, mods []SourceModule) (*il.Program, map[il.PID]*il.Function) {
	t.Helper()
	files := make([]*source.File, len(mods))
	for i, m := range mods {
		f, err := source.Parse(m.Name, m.Text)
		if err == nil {
			err = source.Check(f)
		}
		if err != nil {
			t.Fatalf("frontend %s: %v", m.Name, err)
		}
		files[i] = f
	}
	res, err := lower.Modules(files)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Prog, res.Funcs
}

// TestVerifyOffZeroAlloc pins the contract documented on
// Options.Verify: a disabled verifier adds zero allocations to the
// per-stage hook.
func TestVerifyOffZeroAlloc(t *testing.T) {
	b := &Build{Prog: il.NewProgram()}
	opt := Options{}
	allocs := testing.AllocsPerRun(100, func() {
		if err := b.verifyStage(nil, opt, "frontend", nil, obs.Span{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("verifyStage with Verify=off allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkBuildVerify measures what each verification level costs on
// a full O4 build — the number the obs spans break down per stage.
func BenchmarkBuildVerify(b *testing.B) {
	spec := testSpec(35)
	mods := sources(spec)
	for _, level := range []analyze.Level{VerifyOff, VerifyStructural, VerifyInterproc} {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Verify: level}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
