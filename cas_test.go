package cmo_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cmo "cmo"
	"cmo/internal/cas"
	"cmo/internal/serve"
	"cmo/internal/workload"
)

// The shared cache's load-bearing invariant, tested from outside: a
// remote CAS level changes where artifacts come from, never what the
// linker emits. Every test here compares against a local-only build
// of the same sources and demands byte identity — with the remote
// cold, warm, evicting under a tight cap, owned by another tenant,
// dying mid-build, or never reachable at all.
//
// This file is an external test package (cmo_test) for the same
// reason as distributed_test.go: it spins up real daemon handlers,
// and internal/serve imports cmo.

func casSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "cas", Seed: seed,
		Modules: 5, HotPerModule: 2, ColdPerModule: 3, ColdStmts: 8,
		ArrayElems: 16,
		TrainIters: 30, RefIters: 80, TrainMode: 2, RefMode: 4,
	}
}

func casSources(spec workload.Spec) []cmo.SourceModule {
	var mods []cmo.SourceModule
	for _, m := range spec.Generate() {
		mods = append(mods, cmo.SourceModule{Name: m.Name + ".minc", Text: m.Text})
	}
	return mods
}

func casBuild(t *testing.T, mods []cmo.SourceModule, opt cmo.Options) *cmo.Build {
	t.Helper()
	opt.Level = cmo.O4
	opt.SelectPercent = -1
	opt.Volatile = workload.InputGlobals()
	b, err := cmo.BuildSource(mods, opt)
	if err != nil {
		t.Fatalf("build (remote=%q ns=%q): %v", opt.RemoteCache, opt.RemoteNamespace, err)
	}
	if b.Stats.PinLeaks > 0 {
		t.Fatalf("build leaked %d loader pins (remote=%q)", b.Stats.PinLeaks, opt.RemoteCache)
	}
	return b
}

// newCASDaemon starts a cmod-shaped daemon serving a shared artifact
// cache alongside its build endpoints, exactly as cmd/cmod -cas-dir
// wires it. Drain (which closes the store) runs at cleanup.
func newCASDaemon(t *testing.T, cfg cas.Config) (*cas.Store, *httptest.Server) {
	t.Helper()
	store, err := cas.OpenStore(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{MaxBuilds: 1, CAS: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return store, ts
}

// TestRemoteCacheSharedDaemon is the tentpole's acceptance test: four
// concurrent clients, each with its own local repository, build the
// same program through one daemon's CAS; every image is byte-identical
// to a local-only build, the daemon records nonzero hits, and a fifth
// client with a fresh local repository fills from the shared cache.
func TestRemoteCacheSharedDaemon(t *testing.T) {
	spec := casSpec(131)
	mods := casSources(spec)
	want := casBuild(t, mods, cmo.Options{}).Image.Disasm()

	store, ts := newCASDaemon(t, cas.Config{})

	var wg sync.WaitGroup
	images := make([]string, 4)
	stats := make([]cmo.BuildStats, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := casBuild(t, mods, cmo.Options{
				CacheDir:    t.TempDir(),
				RemoteCache: ts.URL,
			})
			images[i] = b.Image.Disasm()
			stats[i] = b.Stats
		}(i)
	}
	wg.Wait()
	for i, img := range images {
		if img != want {
			t.Errorf("client %d: image differs from local-only build", i)
		}
	}
	// The builds raced, but collectively they must have populated the
	// shared store (each client's write-back drains before BuildSource
	// returns).
	var stores int
	for _, s := range stats {
		stores += s.CacheRemoteStores
		if s.CacheRemoteErrors > 0 {
			t.Errorf("remote errors against a healthy daemon: %+v", s)
		}
	}
	if stores == 0 {
		t.Errorf("four cold clients stored nothing remotely")
	}
	if st := store.Stats(); st.Puts == 0 {
		t.Errorf("shared store accepted no blobs: %+v", st)
	}

	// A fresh local repository now warms from the shared cache: remote
	// hits, same bytes.
	b := casBuild(t, mods, cmo.Options{CacheDir: t.TempDir(), RemoteCache: ts.URL})
	if b.Image.Disasm() != want {
		t.Errorf("warm-remote image differs from local-only build")
	}
	if b.Stats.CacheRemoteHits == 0 {
		t.Errorf("fresh client against a warm cache recorded no remote hits: %+v", b.Stats)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Errorf("daemon store served no hits: %+v", st)
	}

	// The daemon's /metrics surface reports the same traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	for _, series := range []string{"cmod_cas_hits_total", "cmod_cas_puts_total", "cmod_cas_bytes"} {
		if !strings.Contains(page, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if strings.Contains(page, "cmod_cas_hits_total 0\n") {
		t.Errorf("/metrics reports zero CAS hits after a warm build")
	}
}

// TestRemoteCacheEvictionIdentity squeezes the shared store so hard
// that artifacts are evicted while clients still depend on them: a
// cap far below one build's artifact footprint means later fills
// evict earlier ones mid-build. Byte identity must survive, and the
// disk budget must hold throughout.
func TestRemoteCacheEvictionIdentity(t *testing.T) {
	spec := casSpec(137)
	mods := casSources(spec)
	want := casBuild(t, mods, cmo.Options{}).Image.Disasm()

	const capBytes = 8 << 10
	store, ts := newCASDaemon(t, cas.Config{MaxBytes: capBytes})

	for round := 0; round < 3; round++ {
		b := casBuild(t, mods, cmo.Options{CacheDir: t.TempDir(), RemoteCache: ts.URL})
		if b.Image.Disasm() != want {
			t.Fatalf("round %d: image differs from local-only build mid-eviction", round)
		}
		if live := store.LiveBytes(); live > capBytes {
			t.Fatalf("round %d: store holds %d bytes over the %d cap", round, live, capBytes)
		}
	}
	st := store.Stats()
	if st.Evictions == 0 {
		t.Errorf("an %d-byte cap under three builds never evicted: %+v", capBytes, st)
	}
	if st.LiveBytes > capBytes {
		t.Errorf("final live bytes %d exceed cap %d", st.LiveBytes, capBytes)
	}
}

// TestRemoteCacheNamespaceIsolation: two tenants share one daemon but
// see disjoint caches. Tenant B, building the identical program under
// its own namespace with a fresh local repository, gets zero remote
// hits from tenant A's artifacts — and the same bytes anyway.
func TestRemoteCacheNamespaceIsolation(t *testing.T) {
	spec := casSpec(139)
	mods := casSources(spec)
	want := casBuild(t, mods, cmo.Options{}).Image.Disasm()

	_, ts := newCASDaemon(t, cas.Config{})

	a := casBuild(t, mods, cmo.Options{
		CacheDir: t.TempDir(), RemoteCache: ts.URL, RemoteNamespace: "tenant-a",
	})
	if a.Image.Disasm() != want {
		t.Fatalf("tenant A image differs from local-only build")
	}
	if a.Stats.CacheRemoteStores == 0 {
		t.Fatalf("tenant A stored nothing; isolation test has no teeth: %+v", a.Stats)
	}

	b := casBuild(t, mods, cmo.Options{
		CacheDir: t.TempDir(), RemoteCache: ts.URL, RemoteNamespace: "tenant-b",
	})
	if b.Image.Disasm() != want {
		t.Errorf("tenant B image differs from local-only build")
	}
	if b.Stats.CacheRemoteHits != 0 {
		t.Errorf("tenant B hit %d of tenant A's artifacts", b.Stats.CacheRemoteHits)
	}

	// Same namespace does share: a third client as tenant-a hits.
	a2 := casBuild(t, mods, cmo.Options{
		CacheDir: t.TempDir(), RemoteCache: ts.URL, RemoteNamespace: "tenant-a",
	})
	if a2.Stats.CacheRemoteHits == 0 {
		t.Errorf("second tenant-a client shared nothing: %+v", a2.Stats)
	}
}

// TestRemoteCacheDiesMidBuild kills the cache service partway through
// a build: after a handful of requests the daemon starts slamming
// connections shut, mid-protocol. The client must absorb every
// failure — same bytes as local-only, zero pin leaks — and its
// breaker must stop it from hammering the corpse.
func TestRemoteCacheDiesMidBuild(t *testing.T) {
	spec := casSpec(149)
	mods := casSources(spec)
	want := casBuild(t, mods, cmo.Options{}).Image.Disasm()

	store, err := cas.OpenStore(t.TempDir(), cas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	inner := cas.Handler(store)
	var served atomic.Int64
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 3 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer dying.Close()

	b := casBuild(t, mods, cmo.Options{
		CacheDir:           t.TempDir(),
		RemoteCache:        dying.URL,
		RemoteCacheTimeout: 500 * time.Millisecond,
	})
	if b.Image.Disasm() != want {
		t.Errorf("image differs from local-only build after the cache died mid-build")
	}
	if b.Stats.CacheRemoteErrors == 0 {
		t.Errorf("the dying cache registered no errors; it died too late to test anything: served %d", served.Load())
	}
	// The breaker bounds the damage: once tripped, remaining lookups
	// answer locally without a request, so the wire saw far fewer
	// requests than the build made lookups.
	if b.Stats.CacheRemoteHits+b.Stats.CacheRemoteMisses+b.Stats.CacheRemoteErrors == 0 {
		t.Errorf("no remote traffic at all; the remote level never engaged")
	}
}

// TestRemoteCacheUnreachable: a remote URL that was never up is an
// absorbed failure, not an error — the build is local-only in all but
// the counters.
func TestRemoteCacheUnreachable(t *testing.T) {
	spec := casSpec(151)
	mods := casSources(spec)
	want := casBuild(t, mods, cmo.Options{}).Image.Disasm()

	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	b := casBuild(t, mods, cmo.Options{
		CacheDir:           t.TempDir(),
		RemoteCache:        url,
		RemoteCacheTimeout: 200 * time.Millisecond,
	})
	if b.Image.Disasm() != want {
		t.Errorf("image differs from local-only build with an unreachable remote")
	}
	if b.Stats.CacheRemoteErrors == 0 {
		t.Errorf("unreachable remote recorded no errors: %+v", b.Stats)
	}
	if b.Stats.CacheRemoteHits != 0 {
		t.Errorf("%d hits against nothing", b.Stats.CacheRemoteHits)
	}
}

// TestRemoteCacheDrainingDaemon503: a draining daemon refuses /cas
// with 503 and clients degrade exactly as if it had died.
func TestRemoteCacheDrainingDaemon503(t *testing.T) {
	store, err := cas.OpenStore(t.TempDir(), cas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{MaxBuilds: 1, CAS: store})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := fmt.Sprintf("%064x", 0xfeed)

	resp, err := http.Get(ts.URL + "/cas/default/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-drain GET: %d, want 404", resp.StatusCode)
	}
	srv.Drain()
	resp, err = http.Get(ts.URL + "/cas/default/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain GET: %d, want 503", resp.StatusCode)
	}
}
