package cmo_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	cmo "cmo"
	"cmo/internal/objfile"
	"cmo/internal/serve"
	"cmo/internal/workload"
)

// The partitioned backend's load-bearing invariant, tested from
// outside: partitioning, worker pools, and remote dispatch change how
// fast (and where) an answer is computed, never the answer. The
// matrix below demands byte identity across worker counts, partition
// counts, local vs remote execution, and the NoPartition ablation;
// the fault-injection tests then prove every remote failure mode
// degrades to a local compile of the same bytes with no pin leaks.
//
// This file is an external test package (cmo_test) because it spins
// up real daemon handlers: internal/serve imports cmo, so an
// in-package test would be an import cycle.

func distSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "dist", Seed: seed,
		Modules: 6, HotPerModule: 2, ColdPerModule: 3, ColdStmts: 8,
		ArrayElems: 16,
		TrainIters: 30, RefIters: 80, TrainMode: 2, RefMode: 4,
	}
}

func distSources(spec workload.Spec) []cmo.SourceModule {
	var mods []cmo.SourceModule
	for _, m := range spec.Generate() {
		mods = append(mods, cmo.SourceModule{Name: m.Name + ".minc", Text: m.Text})
	}
	return mods
}

func distBuild(t *testing.T, mods []cmo.SourceModule, opt cmo.Options) *cmo.Build {
	t.Helper()
	opt.Level = cmo.O4
	opt.SelectPercent = -1
	opt.Volatile = workload.InputGlobals()
	b, err := cmo.BuildSource(mods, opt)
	if err != nil {
		t.Fatalf("build (partitions=%d workers=%d remote=%d): %v",
			opt.Partitions, opt.Workers, len(opt.RemoteWorkers), err)
	}
	if b.Stats.PinLeaks > 0 {
		t.Fatalf("build leaked %d loader pins (partitions=%d workers=%d remote=%d)",
			b.Stats.PinLeaks, opt.Partitions, opt.Workers, len(opt.RemoteWorkers))
	}
	return b
}

// checkPartitionStats enforces the accounting identity every build
// must satisfy: each partition was replayed clean, compiled locally,
// or compiled remotely — exactly one of the three.
func checkPartitionStats(t *testing.T, b *cmo.Build) {
	t.Helper()
	s := b.Stats
	if got := s.PartitionsClean + s.PartitionsLocal + s.PartitionsRemote; got != s.Partitions {
		t.Errorf("partition accounting: clean %d + local %d + remote %d = %d, want %d",
			s.PartitionsClean, s.PartitionsLocal, s.PartitionsRemote, got, s.Partitions)
	}
	if len(b.Partitions) != s.Partitions {
		t.Errorf("len(Partitions) = %d, Stats.Partitions = %d", len(b.Partitions), s.Partitions)
	}
}

// newWorkerDaemon starts a real cmod-shaped daemon (the serve
// handler) whose /backend endpoint this build farms partitions to.
func newWorkerDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{MaxBuilds: 1, BackendSlots: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return ts
}

// TestDistributedByteIdentityMatrix is the tentpole's acceptance
// matrix: {1,2,4} workers x {1,2,4} partitions x local/remote, every
// cell byte-identical to the NoPartition ablation.
func TestDistributedByteIdentityMatrix(t *testing.T) {
	spec := distSpec(101)
	mods := distSources(spec)
	baseline := distBuild(t, mods, cmo.Options{NoPartition: true})
	if baseline.Stats.Partitions != 0 || len(baseline.Partitions) != 0 {
		t.Fatalf("NoPartition build reports %d partitions", baseline.Stats.Partitions)
	}
	want := baseline.Image.Disasm()

	worker := newWorkerDaemon(t)
	remoteTotal := 0
	for _, workers := range []int{1, 2, 4} {
		for _, parts := range []int{1, 2, 4} {
			for _, remote := range []bool{false, true} {
				name := fmt.Sprintf("w%d-p%d-remote%v", workers, parts, remote)
				opt := cmo.Options{Partitions: parts, Workers: workers}
				if remote {
					opt.RemoteWorkers = []string{worker.URL}
				}
				b := distBuild(t, mods, opt)
				if got := b.Image.Disasm(); got != want {
					t.Errorf("%s: image differs from NoPartition baseline", name)
				}
				checkPartitionStats(t, b)
				if b.Stats.Partitions != parts {
					t.Errorf("%s: used %d partitions, want %d", name, b.Stats.Partitions, parts)
				}
				// A healthy worker never forces a retry; a retry here
				// means the remote path failed and was papered over.
				if b.Stats.PartitionRetries != 0 {
					t.Errorf("%s: %d partition retries against a healthy worker",
						name, b.Stats.PartitionRetries)
				}
				if !remote && b.Stats.PartitionsRemote != 0 {
					t.Errorf("%s: %d partitions remote with no remote workers",
						name, b.Stats.PartitionsRemote)
				}
				remoteTotal += b.Stats.PartitionsRemote
			}
		}
	}
	// Local workers race the remote dispatcher for partitions, so no
	// single build guarantees remote execution — but across 9 remote
	// builds the daemon must have won some.
	if remoteTotal == 0 {
		t.Errorf("no partition executed remotely across the whole matrix")
	}
}

// TestDistributedWarmDispatchesOnlyDirty: a warm rebuild after a
// one-module edit schedules only the partitions whose members
// changed; everything else replays from the repository. Same bytes
// as a cold build of the edited sources.
func TestDistributedWarmDispatchesOnlyDirty(t *testing.T) {
	spec := distSpec(103)
	mods := distSources(spec)
	dir := t.TempDir()
	opt := cmo.Options{Partitions: 4, CacheDir: dir}

	cold := distBuild(t, mods, opt)
	checkPartitionStats(t, cold)
	if cold.Stats.PartitionsClean != 0 {
		t.Errorf("cold build replayed %d partitions from an empty repository",
			cold.Stats.PartitionsClean)
	}

	// Warm no-op: the dependency graph replays the image, or — if the
	// backend runs at all — every partition must be clean.
	noop := distBuild(t, mods, opt)
	if noop.Image.Disasm() != cold.Image.Disasm() {
		t.Fatalf("warm-noop image differs from cold image")
	}
	if noop.Stats.Partitions > 0 && noop.Stats.PartitionsClean != noop.Stats.Partitions {
		t.Errorf("warm-noop: %d of %d partitions dirty",
			noop.Stats.Partitions-noop.Stats.PartitionsClean, noop.Stats.Partitions)
	}

	// Edit one module: change the first statement of a statically
	// reachable cold function (the workload's cold spine guarantees
	// it is live code, not DCE fodder). Membership is
	// content-addressed per function, so only partitions holding
	// changed bodies go dirty.
	edited := append([]cmo.SourceModule(nil), mods...)
	edited[2].Text = strings.Replace(edited[2].Text,
		"\tvar acc int = a + ", "\tvar acc int = 1 + a + ", 1)
	if edited[2].Text == mods[2].Text {
		t.Fatal("edit did not apply — workload text shape changed")
	}
	ref := distBuild(t, edited, cmo.Options{Partitions: 4})

	warm := distBuild(t, edited, opt)
	checkPartitionStats(t, warm)
	if warm.Image.Disasm() != ref.Image.Disasm() {
		t.Fatalf("warm-edit image differs from a cold build of the edited sources")
	}
	if warm.Stats.Partitions != 4 {
		t.Fatalf("warm-edit used %d partitions, want 4", warm.Stats.Partitions)
	}
	dispatched := warm.Stats.PartitionsLocal + warm.Stats.PartitionsRemote
	if dispatched == 0 {
		t.Errorf("warm-edit compiled nothing after a real edit")
	}
	if warm.Stats.PartitionsClean == 0 {
		t.Errorf("warm-edit replayed no partitions: a one-function edit dirtied all %d",
			warm.Stats.Partitions)
	}
	if warm.Stats.CacheLLOHits == 0 {
		t.Errorf("warm-edit claims zero LLO cache hits")
	}
}

// TestPartitionAssignmentDeterministic: membership and fingerprints
// are pure functions of build content — never of Jobs, worker count,
// or timing. Fingerprints move if and only if content moves.
func TestPartitionAssignmentDeterministic(t *testing.T) {
	spec := distSpec(107)
	mods := distSources(spec)

	var runs []*cmo.Build
	for _, opt := range []cmo.Options{
		{Partitions: 3, Jobs: 1},
		{Partitions: 3, Jobs: 4},
		{Partitions: 3, Jobs: 4, Workers: 2},
	} {
		runs = append(runs, distBuild(t, mods, opt))
	}
	for i, b := range runs[1:] {
		if !reflect.DeepEqual(b.Partitions, runs[0].Partitions) {
			t.Errorf("run %d: partition assignment differs from run 0:\n%v\nvs\n%v",
				i+1, b.Partitions, runs[0].Partitions)
		}
	}

	// Fingerprint sensitivity: an edit must move at least one
	// fingerprint (the dirty partition) — silence here would mean warm
	// builds could replay stale objects.
	edited := append([]cmo.SourceModule(nil), mods...)
	edited[0].Text = strings.Replace(edited[0].Text,
		"\tvar acc int = a + ", "\tvar acc int = 1 + a + ", 1)
	if edited[0].Text == mods[0].Text {
		t.Fatal("edit did not apply — workload text shape changed")
	}
	eb := distBuild(t, edited, cmo.Options{Partitions: 3})
	fps := func(b *cmo.Build) map[string]bool {
		m := make(map[string]bool)
		for _, p := range b.Partitions {
			m[p.FP] = true
		}
		return m
	}
	if reflect.DeepEqual(fps(eb), fps(runs[0])) {
		t.Errorf("editing a module left every partition fingerprint unchanged")
	}
}

// TestRemoteWorkerFaultInjection: a dead, hung, killed, or lying
// remote worker never changes output bytes and never leaks a pin —
// each failed partition falls back to a local compile.
func TestRemoteWorkerFaultInjection(t *testing.T) {
	spec := distSpec(109)
	mods := distSources(spec)
	want := distBuild(t, mods, cmo.Options{NoPartition: true}).Image.Disasm()

	cases := []struct {
		name   string
		server func(t *testing.T) string // returns the worker URL
	}{
		{"dead", func(t *testing.T) string {
			// A worker that was up once and is gone now: connection
			// refused on every partition.
			ts := httptest.NewServer(http.NotFoundHandler())
			url := ts.URL
			ts.Close()
			return url
		}},
		{"hung", func(t *testing.T) string {
			// A worker that accepts the partition and never answers;
			// Options.RemoteTimeout bounds the wait.
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				// Drain the body first: with it unread, net/http cannot
				// watch the connection, and the dispatcher's timeout
				// abort would go unnoticed until this handler returned.
				io.Copy(io.Discard, r.Body)
				select {
				case <-time.After(30 * time.Second):
				case <-r.Context().Done():
				}
			}))
			t.Cleanup(ts.Close)
			return ts.URL
		}},
		{"killed-mid-partition", func(t *testing.T) string {
			// A worker whose process dies while compiling: the
			// connection drops with no reply at all.
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				conn, _, err := w.(http.Hijacker).Hijack()
				if err != nil {
					t.Errorf("hijack: %v", err)
					return
				}
				conn.Close()
			}))
			t.Cleanup(ts.Close)
			return ts.URL
		}},
		{"malformed-reply", func(t *testing.T) string {
			// A worker that replies 200 with bytes that are not a
			// result: the dispatcher must reject and recompile, not
			// trust them.
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write([]byte("these are not the objects you are looking for"))
			}))
			t.Cleanup(ts.Close)
			return ts.URL
		}},
		{"wrong-status", func(t *testing.T) string {
			// A worker that refuses every partition (always busy).
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "all backend slots busy", http.StatusServiceUnavailable)
			}))
			t.Cleanup(ts.Close)
			return ts.URL
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := distBuild(t, mods, cmo.Options{
				Partitions:    4,
				Workers:       1,
				RemoteWorkers: []string{tc.server(t)},
				RemoteTimeout: 100 * time.Millisecond,
			})
			if got := b.Image.Disasm(); got != want {
				t.Errorf("image differs from baseline after %s worker", tc.name)
			}
			checkPartitionStats(t, b)
			// A worker in this state can never successfully deliver a
			// partition: everything it touched must have fallen back.
			if b.Stats.PartitionsRemote != 0 {
				t.Errorf("%d partitions counted remote against a %s worker",
					b.Stats.PartitionsRemote, tc.name)
			}
			if b.Stats.PartitionsLocal+b.Stats.PartitionsClean != b.Stats.Partitions {
				t.Errorf("not every partition was satisfied locally (%+v)", b.Stats)
			}
			t.Logf("%s: %d retries fell back locally", tc.name, b.Stats.PartitionRetries)
		})
	}
}

// TestRemoteWorkerFallbackRetries pins the retry counter and the
// fallback worker label. The remote dispatcher races the local pool
// for partitions, so one build cannot guarantee the dead worker was
// ever tried — but across repeated builds it must be, and every
// build must come out byte-identical regardless.
func TestRemoteWorkerFallbackRetries(t *testing.T) {
	spec := distSpec(113)
	mods := distSources(spec)
	want := distBuild(t, mods, cmo.Options{NoPartition: true}).Image.Disasm()
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	for attempt := 0; attempt < 20; attempt++ {
		b := distBuild(t, mods, cmo.Options{
			Partitions:    8,
			Workers:       1,
			RemoteWorkers: []string{url},
			RemoteTimeout: 100 * time.Millisecond,
		})
		if b.Image.Disasm() != want {
			t.Fatalf("attempt %d: image differs from baseline", attempt)
		}
		if b.Stats.PartitionRetries == 0 {
			continue
		}
		// The fallback happened: its partitions must be labeled.
		var fallbacks int
		for _, p := range b.Partitions {
			if p.Worker == "local (fallback)" {
				fallbacks++
			} else if !p.Clean && p.Worker != "local" {
				t.Errorf("partition %d worker = %q, want local or fallback", p.Index, p.Worker)
			}
		}
		if fallbacks != b.Stats.PartitionRetries {
			t.Errorf("%d partitions labeled fallback, %d retries counted",
				fallbacks, b.Stats.PartitionRetries)
		}
		return
	}
	t.Errorf("dead remote worker was never tried across 20 builds")
}

// TestDistributedBuildThroughDaemon closes the loop end to end: a
// build submitted to one daemon farms partitions to a second daemon,
// and the reply is byte-identical to a one-shot in-process build.
func TestDistributedBuildThroughDaemon(t *testing.T) {
	spec := distSpec(127)
	mods := distSources(spec)
	base := distBuild(t, mods, cmo.Options{NoPartition: true})
	var wantImg bytes.Buffer
	if err := objfile.EncodeImage(&wantImg, base.Image); err != nil {
		t.Fatalf("encoding reference image: %v", err)
	}

	worker := newWorkerDaemon(t)
	front := serve.New(serve.Config{MaxBuilds: 1})
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(func() {
		fts.Close()
		front.Drain()
	})

	req := serve.BuildRequest{
		Level: 4, Partitions: 4,
		RemoteWorkers: []string{worker.URL},
		Volatile:      workload.InputGlobals(),
	}
	for _, m := range mods {
		req.Modules = append(req.Modules, serve.Module{Name: m.Name, Text: m.Text})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(fts.URL+"/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /build: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /build: %s", resp.Status)
	}
	var br serve.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !bytes.Equal(br.Image, wantImg.Bytes()) {
		t.Errorf("daemon-built image differs from one-shot in-process build")
	}
}
