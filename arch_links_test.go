package cmo

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The architecture tour is only trustworthy while every file it names
// exists. This test (run by the CI docs job) fails the moment a rename
// or deletion strands a reference in ARCHITECTURE.md, README.md, or
// DESIGN.md.

var (
	mdLinkRE = regexp.MustCompile(`\]\(([^)]+)\)`)
	// Backticked repo paths like `internal/naim/loader.go`; globs and
	// single identifiers are not path claims.
	backtickRE = regexp.MustCompile("`([A-Za-z0-9_./-]+\\.(?:go|md|minc|json|yml))`")
)

func TestDocLinksResolve(t *testing.T) {
	for _, doc := range []string{"ARCHITECTURE.md", "README.md", "DESIGN.md"} {
		text, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		seen := map[string]bool{}
		check := func(ref string) {
			ref = strings.TrimSpace(ref)
			if i := strings.IndexByte(ref, '#'); i >= 0 {
				ref = ref[:i] // drop section anchors
			}
			if ref == "" || seen[ref] {
				return
			}
			seen[ref] = true
			if strings.Contains(ref, "://") || strings.HasPrefix(ref, "mailto:") {
				return // external
			}
			if strings.Contains(ref, "*") {
				return // glob, not a concrete file claim
			}
			if _, err := os.Stat(filepath.FromSlash(ref)); err != nil {
				t.Errorf("%s references %q, which does not exist", doc, ref)
			}
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(text), -1) {
			check(m[1])
		}
		// Only ARCHITECTURE.md promises that its backticked paths are
		// real files; the other documents use backticks for shell
		// commands and illustrative names too.
		if doc == "ARCHITECTURE.md" {
			for _, m := range backtickRE.FindAllStringSubmatch(string(text), -1) {
				check(m[1])
			}
		}
	}
}
