package cmo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cmo/internal/naim"
	"cmo/internal/objfile"
	"cmo/internal/obs"
	"cmo/internal/workload"
)

// TestPhaseNanosSumWithinTotal is the regression test for the phase
// bookkeeping: every phase duration must be positive, and — because
// they are all children of one root span measured from a single
// captured start each — their sum can never exceed the total. (The old
// hand-rolled accounting subtracted two separate time.Since reads and
// could go negative under scheduling jitter.)
func TestPhaseNanosSumWithinTotal(t *testing.T) {
	spec := testSpec(55)
	mods := sources(spec)
	b, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		NAIM:     naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := b.Stats
	for _, p := range []struct {
		name string
		ns   int64
	}{
		{"frontend", s.FrontendNanos},
		{"hlo", s.HLONanos},
		{"llo", s.LLONanos},
		{"link", s.LinkNanos},
		{"total", s.TotalNanos},
	} {
		if p.ns <= 0 {
			t.Errorf("%s nanos = %d, want > 0", p.name, p.ns)
		}
	}
	sum := s.FrontendNanos + s.HLONanos + s.LLONanos + s.LinkNanos
	if sum > s.TotalNanos {
		t.Errorf("phase sum %d exceeds total %d", sum, s.TotalNanos)
	}
	if sum < s.TotalNanos/2 {
		t.Errorf("phases account for only %d of %d ns; bookkeeping lost a phase", sum, s.TotalNanos)
	}
}

// TestTracedBuildSpans drives a traced O4 build and checks the span
// hierarchy the exporters rely on: the four pipeline phases under one
// build root, and NAIM loader compact/expand activity nested under the
// hlo phase (the acceptance shape for `cmoc -trace`).
func TestTracedBuildSpans(t *testing.T) {
	spec := testSpec(56)
	mods := sources(spec)
	tr := obs.NewTrace()
	b, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		NAIM:     naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 2},
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Trace() != tr {
		t.Error("Build.Trace() does not return the options trace")
	}

	spans := tr.Spans()
	byName := make(map[string][]obs.SpanRecord)
	var root, hlo obs.SpanRecord
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		switch sp.Name {
		case "build":
			root = sp
		case "hlo":
			hlo = sp
		}
	}
	for _, phase := range []string{"frontend", "hlo", "llo", "link"} {
		ps := byName[phase]
		if len(ps) != 1 {
			t.Fatalf("got %d %q spans, want 1", len(ps), phase)
		}
		if ps[0].Parent != root.ID {
			t.Errorf("%s span parented to %d, want build root %d", phase, ps[0].Parent, root.ID)
		}
	}
	for _, name := range []string{"naim compact", "naim expand"} {
		underHLO := false
		for _, sp := range byName[name] {
			if sp.Parent == hlo.ID {
				underHLO = true
			}
		}
		if !underHLO {
			t.Errorf("no %q span nested under the hlo phase (got %d total)", name, len(byName[name]))
		}
	}
	if len(byName["parse"]) != len(mods) {
		t.Errorf("got %d parse spans, want one per module (%d)", len(byName["parse"]), len(mods))
	}
	if len(byName["codegen"]) == 0 {
		t.Error("no codegen spans under llo")
	}

	// Span-derived stats must agree with the recorded spans.
	if root.Dur != b.Stats.TotalNanos {
		t.Errorf("root span dur %d != TotalNanos %d", root.Dur, b.Stats.TotalNanos)
	}
	if hlo.Dur != b.Stats.HLONanos {
		t.Errorf("hlo span dur %d != HLONanos %d", hlo.Dur, b.Stats.HLONanos)
	}

	// The Chrome export of a real build must be valid trace-event JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("traced build produced invalid Chrome JSON: %v", err)
	}
	if len(events) < len(spans) {
		t.Errorf("Chrome export has %d events for %d spans", len(events), len(spans))
	}

	// Cache counters mirrored into the trace match the build stats.
	if got, want := tr.Counter("naim.cache_misses").Value(), b.Stats.NAIM.CacheMisses; got != want {
		t.Errorf("naim.cache_misses counter = %d, want %d", got, want)
	}
	if got, want := tr.Counter("naim.evictions").Value(), b.Stats.NAIM.Evictions; got != want {
		t.Errorf("naim.evictions counter = %d, want %d", got, want)
	}
}

// TestTracedBuildMatchesUntraced pins the observer-effect contract:
// tracing must not change the generated image.
func TestTracedBuildMatchesUntraced(t *testing.T) {
	spec := testSpec(57)
	mods := sources(spec)
	opt := Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		NAIM:     naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 2},
	}
	plain, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Trace = obs.NewTrace()
	traced, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf, tbuf bytes.Buffer
	if err := objfile.EncodeImage(&pbuf, plain.Image); err != nil {
		t.Fatal(err)
	}
	if err := objfile.EncodeImage(&tbuf, traced.Image); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pbuf.Bytes(), tbuf.Bytes()) {
		t.Error("tracing changed the encoded image")
	}
}

// TestNAIMLevelCodeInvariance pins the paper's §6.2 reproducibility
// contract along the memory axis: the NAIM level and cache size change
// compile cost, never generated code. A single-slot cache is the
// adversarial case — HLO holds a caller and its callee at once while
// inlining, and an eviction of the checked-out caller mid-mutation
// would silently drop edits (the loader's checkout rule prevents it).
func TestNAIMLevelCodeInvariance(t *testing.T) {
	spec := testSpec(62)
	mods := sources(spec)
	base := Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()}
	disasm := func(cfg naim.Config) string {
		opt := base
		opt.NAIM = cfg
		b, err := BuildSource(mods, opt)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		return b.Image.Disasm()
	}
	ref := disasm(naim.Config{ForceLevel: naim.LevelOff})
	for _, cfg := range []naim.Config{
		{ForceLevel: naim.LevelIR, CacheSlots: 1},
		{ForceLevel: naim.LevelIR, CacheSlots: 4},
		{ForceLevel: naim.LevelST, CacheSlots: 1},
		{ForceLevel: naim.LevelDisk, CacheSlots: 1},
	} {
		if got := disasm(cfg); got != ref {
			t.Errorf("NAIM %+v changed generated code", cfg)
		}
	}
}

func TestTimingReport(t *testing.T) {
	spec := testSpec(58)
	mods := sources(spec)
	tr := obs.NewTrace()
	b, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		NAIM:     naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 2},
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.TimingReport()
	for _, want := range []string{
		"timing:", "frontend", "hlo", "llo", "link",
		"naim:", "naim cache:", "hit rate", "phases:",
		"naim compact", "naim expand",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("TimingReport missing %q:\n%s", want, rep)
		}
	}

	// Untraced builds still get the numeric section, just no tree.
	b2, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := b2.TimingReport()
	if !strings.Contains(rep2, "timing:") || !strings.Contains(rep2, "naim cache:") {
		t.Errorf("untraced TimingReport incomplete:\n%s", rep2)
	}
	if strings.Contains(rep2, "phases:") {
		t.Errorf("untraced TimingReport should not render a phase tree:\n%s", rep2)
	}

	// Session builds add the cache and graph sections: a warm no-op
	// renders the image-replay line, a warm edit renders per-stage
	// hit/miss plus the dirty-closure figures.
	dir := t.TempDir()
	sopt := Options{Level: O2, Volatile: workload.InputGlobals(), CacheDir: dir}
	if _, err := BuildSource(mods, sopt); err != nil {
		t.Fatal(err)
	}
	noop, err := BuildSource(mods, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if rep := noop.TimingReport(); !strings.Contains(rep, "graph: image replayed") {
		t.Errorf("warm no-op TimingReport missing the image-replay line:\n%s", rep)
	}
	edit, err := BuildSource(editOne(mods, 0), sopt)
	if err != nil {
		t.Fatal(err)
	}
	rep3 := edit.TimingReport()
	for _, want := range []string{
		"session frontend:", "session llo:", "compiled",
		"graph:", "dirty closure", "frontier", "critical path",
	} {
		if !strings.Contains(rep3, want) {
			t.Errorf("warm-edit TimingReport missing %q:\n%s", want, rep3)
		}
	}
}
