package cmo

import (
	"fmt"
	"testing"

	"cmo/internal/analyze"
	"cmo/internal/workload"
)

// ipaMods is a two-module program engineered so all three ipa-gated
// transforms fire in main and the call sites stay live (both callees
// are recursive, so the inliner leaves them as calls):
//
//   - `var b int = acc` forwards the acc=10 store across pick (const);
//   - `acc = 1` dies across pick and deep (neither REFs acc);
//   - the second deep(2) reuses the first (deep is pure, nothing
//     writes between them).
func ipaMods() []SourceModule {
	return []SourceModule{
		{Name: "lib", Text: `module lib;
var bias int = 3;

func deep(x int) int {
	if (x < 1) { return bias; }
	return deep(x - 1) + bias;
}

func pick(x int) int {
	if (x < 0) { return pick(x + 1); }
	return x * 2;
}
`},
		{Name: "app", Text: `module app;
var acc int = 0;
extern func deep(x int) int;
extern func pick(x int) int;

func main() int {
	acc = 10;
	var a int = pick(6);
	var b int = acc;
	acc = 1;
	var c int = pick(7);
	acc = b + a + c + deep(2) + deep(2);
	return acc;
}
`},
	}
}

// TestIPATransformsFireAndPreserveSemantics: the engineered program
// must trigger every ipa transform at O4, and the ablation knob must
// not change the computed value — only the stats.
func TestIPATransformsFireAndPreserveSemantics(t *testing.T) {
	mods := ipaMods()
	ref, err := BuildSource(mods, Options{Level: O1})
	if err != nil {
		t.Fatalf("O1: %v", err)
	}
	want := runValue(t, ref)

	on, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Verify: analyze.Interproc})
	if err != nil {
		t.Fatalf("O4: %v", err)
	}
	h := on.Stats.HLO
	if h.GLoadsForwarded == 0 || h.GStoresKilled == 0 || h.PureCSEs == 0 {
		t.Errorf("engineered program did not fire every ipa transform: fwd=%d dse=%d cse=%d",
			h.GLoadsForwarded, h.GStoresKilled, h.PureCSEs)
	}
	if on.Stats.IPANanos <= 0 {
		t.Errorf("IPANanos = %d, want > 0", on.Stats.IPANanos)
	}
	if got := runValue(t, on); got != want {
		t.Errorf("O4 with ipa computed %d, O1 computed %d", got, want)
	}

	off, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, NoIPA: true, Verify: analyze.Interproc})
	if err != nil {
		t.Fatalf("O4 NoIPA: %v", err)
	}
	oh := off.Stats.HLO
	if oh.GLoadsForwarded+oh.GStoresKilled+oh.PureCSEs != 0 {
		t.Errorf("NoIPA build still ran ipa transforms: %+v", oh)
	}
	if off.Stats.IPANanos != 0 {
		t.Errorf("NoIPA build recorded IPANanos = %d", off.Stats.IPANanos)
	}
	if got := runValue(t, off); got != want {
		t.Errorf("O4 NoIPA computed %d, O1 computed %d", got, want)
	}
}

func runValue(t *testing.T, b *Build) int64 {
	t.Helper()
	rr, err := b.Run(nil, 5e8)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rr.Value
}

// TestIPADifferentialOnWorkloads: across generated programs, inputs,
// and selectivity levels, the ipa transforms must never change the
// computed value — the ablation pair is the paper's section-6.3
// differential discipline applied to the new stage.
func TestIPADifferentialOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := workload.Spec{
		Name: "ipadiff", Modules: 6, HotPerModule: 2, ColdPerModule: 4,
		ColdStmts: 12, ArrayElems: 32,
		TrainIters: 30, RefIters: 90, TrainMode: 2, RefMode: 4,
	}
	inputSets := []map[string]int64{
		{"input0": 40, "input1": 1},
		{"input0": 90, "input1": 6},
	}
	for seed := int64(1); seed <= 4; seed++ {
		spec.Seed = seed * 7919
		mods := sources(spec)
		for _, sel := range []float64{-1, 40} {
			var vals [2]int64
			for i, noIPA := range []bool{false, true} {
				opt := Options{Level: O4, SelectPercent: sel, NoIPA: noIPA,
					Volatile: workload.InputGlobals(), Verify: analyze.Interproc}
				b, err := BuildSource(mods, opt)
				if err != nil {
					t.Fatalf("seed %d sel %g noipa=%v: %v", seed, sel, noIPA, err)
				}
				rr, err := b.Run(inputSets[seed%2], 5e8)
				if err != nil {
					t.Fatalf("seed %d sel %g noipa=%v: run: %v", seed, sel, noIPA, err)
				}
				vals[i] = rr.Value
			}
			if vals[0] != vals[1] {
				t.Errorf("seed %d sel %g: ipa on computed %d, off computed %d",
					seed, sel, vals[0], vals[1])
			}
		}
	}
}

// TestIPAWarmRebuildCalleeEditInvalidation is the replay-soundness
// acceptance test: main forwards a global load across a call to
// lib.deep; the edit makes deep store that global. A warm rebuild
// must not reuse the transform computed against the old summary — it
// must match a cold build of the edited program byte for byte and
// compute the new value.
func TestIPAWarmRebuildCalleeEditInvalidation(t *testing.T) {
	libV1 := SourceModule{Name: "lib", Text: `module lib;
var bias int = 3;

func deep(x int) int {
	if (x < 1) { return bias; }
	return deep(x - 1) + bias;
}
`}
	libV2 := SourceModule{Name: "lib", Text: `module lib;
var bias int = 3;
extern var acc int;

func deep(x int) int {
	if (x < 1) { acc = acc + 1; return bias; }
	return deep(x - 1) + bias;
}
`}
	app := SourceModule{Name: "app", Text: `module app;
var acc int = 0;
extern func deep(x int) int;

func main() int {
	acc = 10;
	var a int = deep(3);
	return acc + a;
}
`}
	opt := Options{Level: O4, SelectPercent: -1, Verify: analyze.Interproc}
	dir := t.TempDir()

	cold := buildCached(t, []SourceModule{libV1, app}, opt, dir)
	// deep(3) = 4*bias = 12; acc stays 10.
	if got := runValue(t, cold); got != 22 {
		t.Fatalf("v1 computed %d, want 22", got)
	}
	if cold.Stats.HLO.GLoadsForwarded == 0 {
		t.Fatalf("v1 never forwarded the load across deep — the test premise is gone")
	}

	// No-op warm rebuild: everything replays, nothing recomputed.
	warm := buildCached(t, []SourceModule{libV1, app}, opt, dir)
	if warm.Stats.CacheHLOMisses != 0 {
		t.Errorf("warm no-op rebuild recomputed %d HLO records", warm.Stats.CacheHLOMisses)
	}
	if warm.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("warm no-op rebuild differs from cold build")
	}

	// The callee edit: deep now writes acc. The stale transform would
	// still forward 10 into main's return and compute 22.
	coldEdit := buildCached(t, []SourceModule{libV2, app}, opt, t.TempDir())
	want := runValue(t, coldEdit)
	if want != 23 {
		t.Fatalf("v2 cold build computed %d, want 23 (acc incremented once, then read)", want)
	}
	warmEdit := buildCached(t, []SourceModule{libV2, app}, opt, dir)
	if got := runValue(t, warmEdit); got != want {
		t.Errorf("warm rebuild after callee side-effect edit computed %d, want %d — stale ipa record reused", got, want)
	}
	if warmEdit.Image.Disasm() != coldEdit.Image.Disasm() {
		t.Errorf("warm rebuild after callee edit is not byte-identical to the cold build")
	}
}

// TestIPAOptionsFingerprintSeparatesAblation: records written by a
// NoIPA build must never satisfy a default build or vice versa — the
// two configurations generate different code.
func TestIPAOptionsFingerprintSeparatesAblation(t *testing.T) {
	a := hloOptionsFingerprint(Options{Level: O4})
	b := hloOptionsFingerprint(Options{Level: O4, NoIPA: true})
	if a == b {
		t.Fatal("NoIPA does not change the HLO options fingerprint")
	}
	if fmt.Sprint(a) == "" {
		t.Fatal("empty fingerprint")
	}
}
