# Development entry points. The repository is pure Go (stdlib only),
# so these are thin wrappers kept for discoverability and CI parity.

GO ?= go

.PHONY: all build vet lint test race check checkexamples bench bins clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repository invariant linters (internal/lint via cmd/cmolint), plus
# staticcheck when the host has it — the CI lint job installs a pinned
# version; locally it is optional, so its absence is not a failure.
lint:
	$(GO) run ./cmd/cmolint .
	@if command -v staticcheck > /dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# The tier-1 gate: everything must build, vet and lint clean, pass the
# full suite with the race detector on (internal/obs and the Jobs>1
# paths are exercised concurrently), and the example programs must
# verify clean under cmocheck.
check: vet lint build race checkexamples

# Run the standalone whole-program checker over every example program.
checkexamples:
	$(GO) run ./cmd/cmocheck -level interproc examples/quickstart/app.minc examples/quickstart/lib.minc
	$(GO) run ./cmd/cmocheck -level interproc examples/verify/pipeline.minc examples/verify/util.minc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

bins:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
