# Development entry points. The repository is pure Go (stdlib only),
# so these are thin wrappers kept for discoverability and CI parity.

GO ?= go

.PHONY: all build vet test race check bench bins clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The tier-1 gate: everything must build, vet clean, and pass the full
# suite with the race detector on (internal/obs and the Jobs>1 paths
# are exercised concurrently).
check: vet build race

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

bins:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
