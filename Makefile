# Development entry points. The repository is pure Go (stdlib only),
# so these are thin wrappers kept for discoverability and CI parity.

GO ?= go

.PHONY: all build vet test race check checkexamples bench bins clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The tier-1 gate: everything must build, vet clean, pass the full
# suite with the race detector on (internal/obs and the Jobs>1 paths
# are exercised concurrently), and the example programs must verify
# clean under cmocheck.
check: vet build race checkexamples

# Run the standalone whole-program checker over every example program.
checkexamples:
	$(GO) run ./cmd/cmocheck -level interproc examples/quickstart/app.minc examples/quickstart/lib.minc
	$(GO) run ./cmd/cmocheck -level interproc examples/verify/pipeline.minc examples/verify/util.minc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

bins:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
