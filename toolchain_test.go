package cmo_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestToolchainEndToEnd drives the command-line tools through the
// paper's full deployment workflow — generate, compile to objects,
// plain link, instrumented link, training run, profile inspection,
// CMO+PBO link, benchmark run — exactly as a user (or make) would.
func TestToolchainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(name, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Build the tools.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/...")
	cmd.Dir = wd
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}
	tool := func(n string) string { return filepath.Join(bin, n) }

	// Generate a small application.
	run(tool("cmogen"), "-preset", "small", "-dir", "app")
	matches, err := filepath.Glob(filepath.Join(dir, "app", "*.minc"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no generated modules: %v", err)
	}

	// Compile each module to a fat object.
	var objs []string
	for _, m := range matches {
		run(tool("cmoc"), "-O", "4", m)
		objs = append(objs, strings.TrimSuffix(m, ".minc")+".o")
	}

	// Plain link and run.
	run(tool("cmold"), append([]string{"-o", "plain.vx"}, objs...)...)
	outPlain := run(tool("cmorun"), "-set", "input0=800", "-set", "input1=4", "-stats", filepath.Join(dir, "plain.vx"))
	if !strings.Contains(outPlain, "result:") || !strings.Contains(outPlain, "cycles:") {
		t.Fatalf("cmorun output malformed:\n%s", outPlain)
	}
	resultLine := strings.SplitN(outPlain, "\n", 2)[0]

	// Instrumented link + training run -> profile database.
	run(tool("cmold"), append([]string{"-I", "-o", "inst.vx"}, objs...)...)
	run(tool("cmorun"), "-set", "input0=300", "-set", "input1=2",
		"-probemap", filepath.Join(dir, "inst.vx.probes"),
		"-profile-out", filepath.Join(dir, "prof.db"),
		filepath.Join(dir, "inst.vx"))
	top := run(tool("cmoprof"), "top", "-n", "3", filepath.Join(dir, "prof.db"))
	if !strings.Contains(top, "sites with counts") {
		t.Fatalf("cmoprof top malformed:\n%s", top)
	}

	// A second training run must merge into the database.
	run(tool("cmorun"), "-set", "input0=300", "-set", "input1=2",
		"-probemap", filepath.Join(dir, "inst.vx.probes"),
		"-profile-out", filepath.Join(dir, "prof.db"),
		filepath.Join(dir, "inst.vx"))

	// CMO+PBO link with selectivity; must agree with the plain build.
	linkOut := run(tool("cmold"), append([]string{
		"-O4", "-P", filepath.Join(dir, "prof.db"), "-select", "50",
		"-volatile", "input0,input1", "-v", "-o", "opt.vx"}, objs...)...)
	if !strings.Contains(linkOut, "inlines") {
		t.Fatalf("cmold -v output malformed:\n%s", linkOut)
	}
	outOpt := run(tool("cmorun"), "-set", "input0=800", "-set", "input1=4", "-stats", filepath.Join(dir, "opt.vx"))
	if strings.SplitN(outOpt, "\n", 2)[0] != resultLine {
		t.Fatalf("optimized image computes a different result:\nplain: %s\nopt:   %s",
			resultLine, strings.SplitN(outOpt, "\n", 2)[0])
	}

	// The optimized image should be no slower.
	cyc := func(out string) int64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "cycles: ") {
				var v int64
				if _, err := parseInt(line[len("cycles: "):], &v); err != nil {
					t.Fatalf("bad cycles line %q", line)
				}
				return v
			}
		}
		t.Fatal("no cycles line")
		return 0
	}
	if cyc(outOpt) >= cyc(outPlain) {
		t.Errorf("CMO+PBO image not faster: %d vs %d cycles", cyc(outOpt), cyc(outPlain))
	}

	// Cross-process determinism (paper section 6.2): a second link
	// with identical inputs — in a fresh process, with parallel
	// codegen — must produce a byte-identical image.
	run(tool("cmold"), append([]string{
		"-O4", "-P", filepath.Join(dir, "prof.db"), "-select", "50",
		"-volatile", "input0,input1", "-j", "8", "-o", "opt2.vx"}, objs...)...)
	b1, err := os.ReadFile(filepath.Join(dir, "opt.vx"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir, "opt2.vx"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("repeated link produced a different image (cross-process nondeterminism)")
	}

	// cmoprof merge should work on the database with itself.
	run(tool("cmoprof"), "merge", "-o", filepath.Join(dir, "merged.db"),
		filepath.Join(dir, "prof.db"), filepath.Join(dir, "prof.db"))
	if _, err := os.Stat(filepath.Join(dir, "merged.db")); err != nil {
		t.Fatalf("merged database missing: %v", err)
	}

	// cmobench smoke test at tiny scale, one figure only.
	benchOut := run(tool("cmobench"), "-scale", "0.15", "-fig", "5")
	if !strings.Contains(benchOut, "Figure 5") {
		t.Fatalf("cmobench output malformed:\n%s", benchOut)
	}
}

func parseInt(s string, v *int64) (int, error) {
	s = strings.TrimSpace(s)
	n := 0
	var out int64
	for ; n < len(s) && s[n] >= '0' && s[n] <= '9'; n++ {
		out = out*10 + int64(s[n]-'0')
	}
	*v = out
	return n, nil
}
