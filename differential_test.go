package cmo

import (
	"fmt"
	"testing"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/source"
	"cmo/internal/workload"
)

// TestDifferentialAllLevels is the repository's heaviest correctness
// artillery: for a spread of generator seeds and shapes, the same
// program must compute the same answer through
//
//   - the IL reference interpreter (the semantic oracle),
//   - +O1, +O2, +O2 +P,
//   - +O4 at several selectivity levels, and
//   - +O4 +P under an aggressively thrashing NAIM configuration,
//
// on two different input data sets. This is the automated form of the
// paper's section-6.3 discipline: any optimizer bug that changes
// behavior surfaces as a divergence, already narrowed to a seed,
// level, and input set.
func TestDifferentialAllLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	shapes := []workload.Spec{
		{Modules: 3, HotPerModule: 1, ColdPerModule: 2, ColdStmts: 6, ArrayElems: 16},
		{Modules: 6, HotPerModule: 2, ColdPerModule: 5, ColdStmts: 12, ArrayElems: 32},
		{Modules: 10, HotPerModule: 3, ColdPerModule: 7, ColdStmts: 18, ArrayElems: 64},
	}
	inputSets := []map[string]int64{
		{"input0": 40, "input1": 1},
		{"input0": 90, "input1": 6},
	}
	for si, shape := range shapes {
		for seed := int64(1); seed <= 8; seed++ {
			shape.Name = fmt.Sprintf("diff%d", si)
			shape.Seed = seed * 1000003
			shape.TrainIters, shape.RefIters = 30, 90
			shape.TrainMode, shape.RefMode = 2, 4
			mods := sources(shape)

			// Oracle: the IL interpreter over freshly lowered code.
			oracle := func(inputs map[string]int64) int64 {
				var files []*source.File
				for _, m := range mods {
					f, err := source.Parse(m.Name, m.Text)
					if err != nil {
						t.Fatal(err)
					}
					if err := source.Check(f); err != nil {
						t.Fatal(err)
					}
					files = append(files, f)
				}
				res, err := lower.Modules(files)
				if err != nil {
					t.Fatal(err)
				}
				it := il.NewInterp(res.Prog, func(p il.PID) *il.Function { return res.Funcs[p] })
				for k, v := range inputs {
					if err := it.SetGlobal(k, v); err != nil {
						t.Fatal(err)
					}
				}
				v, err := it.Run("main", nil, 5e8)
				if err != nil {
					t.Fatalf("shape %d seed %d: oracle: %v", si, seed, err)
				}
				return v
			}

			db, err := Train(mods, []map[string]int64{trainInputs(shape)}, Options{})
			if err != nil {
				t.Fatalf("shape %d seed %d: train: %v", si, seed, err)
			}

			builds := map[string]Options{
				"O1":       {Level: O1},
				"O2":       {Level: O2},
				"O2+P":     {Level: O2, PBO: true, DB: db},
				"O4-all":   {Level: O4, SelectPercent: -1},
				"O4+P-3":   {Level: O4, PBO: true, DB: db, SelectPercent: 3},
				"O4+P-50":  {Level: O4, PBO: true, DB: db, SelectPercent: 50},
				"O4+P-100": {Level: O4, PBO: true, DB: db, SelectPercent: 100},
				"O4+P-naim": {Level: O4, PBO: true, DB: db, SelectPercent: 100,
					NAIM: naim.Config{ForceLevel: naim.LevelDisk, CacheSlots: 2}},
				"O4-layered": {Level: O4, PBO: true, DB: db, SelectPercent: 10, MultiLayer: true},
			}
			for _, inputs := range inputSets {
				want := oracle(inputs)
				for name, opt := range builds {
					opt.Volatile = workload.InputGlobals()
					b, err := BuildSource(mods, opt)
					if err != nil {
						t.Fatalf("shape %d seed %d %s: build: %v", si, seed, name, err)
					}
					rr, err := b.Run(inputs, 5e8)
					if err != nil {
						t.Fatalf("shape %d seed %d %s: run: %v", si, seed, name, err)
					}
					if rr.Value != want {
						t.Errorf("shape %d seed %d inputs %v: %s computed %d, oracle says %d",
							si, seed, inputs, name, rr.Value, want)
					}
				}
			}
		}
	}
}
