package cmo

import (
	"strings"
	"testing"

	"cmo/internal/isolate"
	"cmo/internal/workload"
)

// TestMultiLayerStrategy exercises the paper's section-8 layered
// future-work strategy: hot code gets CMO+PBO, warm code the default
// level, never-executed code only O1.
func TestMultiLayerStrategy(t *testing.T) {
	spec := testSpec(71)
	spec.Modules = 8
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	flat, rFlat := buildAndRun(t, mods, spec, Options{
		Level: O4, PBO: true, DB: db, SelectPercent: 10,
	})
	layered, rLayered := buildAndRun(t, mods, spec, Options{
		Level: O4, PBO: true, DB: db, SelectPercent: 10, MultiLayer: true,
	})

	if rLayered.Value != rFlat.Value {
		t.Fatalf("layered build changed the answer: %d vs %d", rLayered.Value, rFlat.Value)
	}
	s := layered.Stats
	if s.TierCold == 0 {
		t.Error("no cold-tier functions despite untrained cold code")
	}
	if s.TierHot == 0 {
		t.Error("no hot-tier functions")
	}
	if s.TierHot+s.TierWarm+s.TierCold != s.Functions-s.HLO.DeadFuncs {
		t.Errorf("tiers %d+%d+%d do not cover %d live functions",
			s.TierHot, s.TierWarm, s.TierCold, s.Functions-s.HLO.DeadFuncs)
	}
	// Cold code barely runs, so the layered build must stay within a
	// few percent of the flat build at run time.
	if float64(rLayered.Stats.Cycles) > float64(rFlat.Stats.Cycles)*1.10 {
		t.Errorf("layered build too slow: %d vs %d cycles", rLayered.Stats.Cycles, rFlat.Stats.Cycles)
	}
	if flat.Stats.TierHot != 0 || flat.Stats.TierCold != 0 {
		t.Error("tier counters set on a non-layered build")
	}
}

// TestO3Level checks +O3: interprocedural optimization confined to
// module boundaries — faster than +O2, slower than (or equal to) +O4,
// with no cross-module inlines.
func TestO3Level(t *testing.T) {
	spec := testSpec(97)
	mods := sources(spec)
	o2b, r2 := buildAndRun(t, mods, spec, Options{Level: O2})
	o3b, r3 := buildAndRun(t, mods, spec, Options{Level: O3})
	o4b, r4 := buildAndRun(t, mods, spec, Options{Level: O4, SelectPercent: -1})
	_ = o2b
	if r3.Value != r2.Value || r4.Value != r2.Value {
		t.Fatalf("levels disagree: O2=%d O3=%d O4=%d", r2.Value, r3.Value, r4.Value)
	}
	// O3 inlines within modules only.
	for _, op := range o3b.InlineOps {
		if o3b.Prog.Sym(op.Caller).Module != o3b.Prog.Sym(op.Callee).Module {
			t.Errorf("O3 inlined across modules: %s -> %s",
				o3b.Prog.Sym(op.Caller).Name, o3b.Prog.Sym(op.Callee).Name)
		}
	}
	if o3b.Stats.HLO.Inlines == 0 {
		t.Error("O3 performed no inlining at all")
	}
	// Performance ordering: O3 between O2 and O4 (the workload's hot
	// chain crosses modules, so O4 must beat O3).
	if r3.Stats.Cycles > r2.Stats.Cycles {
		t.Errorf("O3 (%d cycles) slower than O2 (%d)", r3.Stats.Cycles, r2.Stats.Cycles)
	}
	if r4.Stats.Cycles >= r3.Stats.Cycles {
		t.Errorf("O4 (%d cycles) not faster than O3 (%d) despite cross-module hot path",
			r4.Stats.Cycles, r3.Stats.Cycles)
	}
	if o4b.Stats.HLO.CrossModule == 0 {
		t.Error("O4 did no cross-module inlining")
	}
}

// TestScopeModulesOverride exercises the explicit coarse-scope knob.
func TestScopeModulesOverride(t *testing.T) {
	spec := testSpec(73)
	mods := sources(spec)
	_, rAll := buildAndRun(t, mods, spec, Options{Level: O4, SelectPercent: -1})

	narrow, rNarrow := buildAndRun(t, mods, spec, Options{
		Level: O4, ScopeModules: []int{0, 1},
	})
	if rNarrow.Value != rAll.Value {
		t.Fatalf("scoped build changed the answer: %d vs %d", rNarrow.Value, rAll.Value)
	}
	if narrow.Stats.CMOModules != 2 {
		t.Errorf("CMOModules = %d, want 2", narrow.Stats.CMOModules)
	}
	// Every inline's caller and callee must come from the scoped
	// modules.
	for _, op := range narrow.InlineOps {
		cm := narrow.Prog.Sym(op.Caller).Module
		km := narrow.Prog.Sym(op.Callee).Module
		if cm > 1 || km > 1 {
			t.Errorf("inline %s->%s escapes scope (modules %d->%d)",
				narrow.Prog.Sym(op.Caller).Name, narrow.Prog.Sym(op.Callee).Name, cm, km)
		}
	}
	// Out-of-range module index errors.
	if _, err := BuildSource(mods, Options{Level: O4, ScopeModules: []int{99},
		Volatile: workload.InputGlobals()}); err == nil {
		t.Error("out-of-range ScopeModules accepted")
	}
}

// TestMaxInlinesLimit checks the section-6.3 operation limit: the
// inline log is a deterministic sequence and MaxInlines=k performs
// exactly its first k operations.
func TestMaxInlinesLimit(t *testing.T) {
	spec := testSpec(79)
	mods := sources(spec)
	full, rFull := buildAndRun(t, mods, spec, Options{Level: O4, SelectPercent: -1})
	total := len(full.InlineOps)
	if total < 4 {
		t.Fatalf("workload too small: only %d inlines", total)
	}
	for _, k := range []int{1, total / 2, total} {
		part, rPart := buildAndRun(t, mods, spec, Options{Level: O4, SelectPercent: -1, MaxInlines: k})
		if len(part.InlineOps) != k {
			t.Errorf("MaxInlines=%d performed %d inlines", k, len(part.InlineOps))
		}
		for i := 0; i < k; i++ {
			if part.InlineOps[i] != full.InlineOps[i] {
				t.Errorf("MaxInlines=%d: op %d differs from unlimited build", k, i)
			}
		}
		if rPart.Value != rFull.Value {
			t.Errorf("MaxInlines=%d changed the answer", k)
		}
	}
}

// TestIsolateMiscompilingInline runs the paper's section-6.3 workflow
// end to end against the real compiler: a simulated miscompile that
// manifests once a particular inline operation happens, isolated by
// binary search over the operation limit.
func TestIsolateMiscompilingInline(t *testing.T) {
	spec := testSpec(83)
	mods := sources(spec)
	full, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()})
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.InlineOps)
	if total < 5 {
		t.Fatalf("need a few inlines, have %d", total)
	}
	// The "bug": pretend the build breaks as soon as some specific
	// callee gets inlined anywhere (a classic uninitialized-local /
	// stack-layout symptom from section 6.3 would behave this way).
	culpritCallee := full.InlineOps[total*2/3].Callee
	firstBad := 0
	for i, op := range full.InlineOps {
		if op.Callee == culpritCallee {
			firstBad = i + 1
			break
		}
	}

	builds := 0
	fails := func(k int) (bool, error) {
		builds++
		b, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, MaxInlines: k,
			Volatile: workload.InputGlobals()})
		if err != nil {
			return false, err
		}
		if k == 0 && len(b.InlineOps) != 0 {
			// MaxInlines=0 means unlimited; probe with limit 0 uses a
			// scope trick instead.
			return false, nil
		}
		for _, op := range b.InlineOps {
			if op.Callee == culpritCallee {
				return true, nil
			}
		}
		return false, nil
	}
	// fails(0) must mean "no inlining at all": MaxInlines=0 is
	// "unlimited" in the API, so probe k=0 via a closure that never
	// reports failure for k==0 (no inline performed means no bug).
	k, err := isolate.BisectOps(total, func(k int) (bool, error) {
		if k == 0 {
			return false, nil
		}
		return fails(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if k != firstBad {
		t.Errorf("bisect found operation %d, want %d", k, firstBad)
	}
	if builds > 2*int64Log2(total)+4 {
		t.Errorf("bisect used %d builds for %d ops", builds, total)
	}
	op := full.InlineOps[k-1]
	t.Logf("isolated: inline #%d, %s -> %s", k,
		full.Prog.Sym(op.Caller).Name, full.Prog.Sym(op.Callee).Name)
}

func int64Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// TestIsolateModuleSet runs ddmin over the coarse CMO scope: find the
// minimal set of modules that must be optimized together for the
// (simulated) failure to appear.
func TestIsolateModuleSet(t *testing.T) {
	spec := testSpec(89)
	spec.Modules = 8
	mods := sources(spec)
	// The "bug" reproduces exactly when modules 2 and 5 are both in
	// the CMO scope (a cross-module interaction, the paper's hard
	// case for plain binary search).
	fails := func(include []int) (bool, error) {
		has2, has5 := false, false
		for _, m := range include {
			if m == 2 {
				has2 = true
			}
			if m == 5 {
				has5 = true
			}
		}
		// Drive the real compiler with the scoped module set; the
		// failure predicate inspects the resulting build.
		b, err := BuildSource(mods, Options{Level: O4, ScopeModules: include,
			Volatile: workload.InputGlobals()})
		if err != nil {
			return false, err
		}
		_ = b
		return has2 && has5, nil
	}
	got, err := isolate.MinimizeSet(spec.Modules, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !(got[0] == 2 && got[1] == 5 || got[0] == 5 && got[1] == 2) {
		t.Errorf("minimal module set = %v, want {2, 5}", got)
	}
}

// TestParallelBuildIdentical: Jobs changes wall time only; the image
// must be byte-identical to the sequential build (the determinism
// contract extends to the parallel phases).
func TestParallelBuildIdentical(t *testing.T) {
	spec := testSpec(101)
	spec.Modules = 10
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Level: O2},
		{Level: O4, SelectPercent: -1},
		{Level: O4, PBO: true, DB: db, SelectPercent: 20},
	} {
		opt.Volatile = workload.InputGlobals()
		seq, err := BuildSource(mods, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Jobs = 8
		par, err := BuildSource(mods, opt)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Image.Disasm() != par.Image.Disasm() {
			t.Fatalf("level %v: parallel build differs from sequential", opt.Level)
		}
	}
}

// TestParallelBuildSurfacesErrors: a frontend error in one module
// must surface (not deadlock) under parallel parsing.
func TestParallelBuildSurfacesErrors(t *testing.T) {
	mods := []SourceModule{
		{Name: "a.minc", Text: "module a; func main() int { return 1; }"},
		{Name: "b.minc", Text: "module b; this is not minc"},
		{Name: "c.minc", Text: "module c; func ok() int { return 2; }"},
	}
	if _, err := BuildSource(mods, Options{Jobs: 4}); err == nil {
		t.Fatal("parse error swallowed by parallel frontend")
	}
}

// TestSelectionReport checks the section-6.2 diagnostic output.
func TestSelectionReport(t *testing.T) {
	spec := testSpec(103)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := buildAndRun(t, mods, spec, Options{Level: O4, PBO: true, DB: db, SelectPercent: 20})
	rep := b.SelectionReport()
	for _, want := range []string{"selectivity:", "hlo:", "naim:", "image:", "top inlines:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Stable: same build object renders identically.
	if rep != b.SelectionReport() {
		t.Error("report not stable")
	}
	// O2 builds render without selectivity/inline sections but don't
	// crash.
	b2, _ := buildAndRun(t, mods, spec, Options{Level: O2})
	if !strings.Contains(b2.SelectionReport(), "naim:") {
		t.Error("O2 report malformed")
	}
}
