package cmo

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/selectivity"
)

// The select stage: decide which part of the program enters
// cross-module optimization (paper section 5). Three policies, in
// priority order: an explicit coarse module scope (ScopeModules, the
// section-6.3 isolation knob), profile-driven site selectivity
// (SelectPercent with a database), or the whole program. The stage
// also summarizes everything *outside* the chosen scope — which
// in-scope functions out-of-scope code calls or whose globals it
// stores — so HLO stays conservative about code it cannot see.

// selection is the select stage's outcome.
type selection struct {
	// scope is the set of functions visible to HLO; selected is the
	// fine-grained set HLO actually transforms. nil scope means
	// whole-program CMO.
	scope    map[il.PID]bool
	selected map[il.PID]bool
	// Conservative facts about out-of-scope code.
	extCalled map[il.PID]bool
	extStored map[il.PID]bool
	// skip means nothing was selected: the build proceeds at the
	// default level with no HLO at all.
	skip bool
}

// runSelect computes the CMO scope and records the selectivity
// figures in the build stats. The caller wraps it in the "select"
// span it receives (and charges the elapsed time to SelectNanos).
func (b *Build) runSelect(loader *naim.Loader, opt Options, ssp obs.Span) (*selection, error) {
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}
	prog := b.Prog
	sel := &selection{}
	switch {
	case opt.ScopeModules != nil:
		// Explicit coarse scope (isolation/debugging): the listed
		// modules enter CMO; everything else bypasses HLO.
		scope := make(map[il.PID]bool)
		want := make(map[int32]bool, len(opt.ScopeModules))
		for _, mi := range opt.ScopeModules {
			if mi < 0 || mi >= len(prog.Modules) {
				return nil, fmt.Errorf("cmo: ScopeModules index %d out of range (%d modules)", mi, len(prog.Modules))
			}
			want[int32(mi)] = true
		}
		for _, pid := range prog.FuncPIDs() {
			if want[prog.Sym(pid).Module] {
				scope[pid] = true
			}
		}
		b.Stats.CMOModules = len(want)
		b.Stats.CMOFunctions = len(scope)
		if len(scope) == 0 {
			sel.skip = true
			return sel, nil
		}
		sel.scope = scope
		sel.selected = scope
		sel.extCalled, sel.extStored = b.summarizeOutOfScope(loader, scope, opt.Jobs)
	case opt.SelectPercent >= 0 && opt.DB != nil:
		ch := selectivity.SelectJobs(prog, func(pid il.PID) *il.Function {
			f := loader.Function(pid)
			loader.DoneWith(pid)
			return f
		}, opt.DB, opt.SelectPercent, opt.Jobs)
		b.Stats.TotalSites = ch.TotalSites
		b.Stats.SelectedSites = len(ch.Sites)
		b.Stats.CMOModules = len(ch.Modules)
		b.Stats.CMOFunctions = len(ch.Funcs)
		b.Stats.SelectedLines = ch.SelectedLines
		if len(ch.Modules) == 0 {
			sel.skip = true // nothing selected: pure default-level build
			return sel, nil
		}
		scope := ch.ScopeSet(prog)
		sel.scope = scope
		sel.selected = ch.Funcs
		sel.extCalled, sel.extStored = b.summarizeOutOfScope(loader, scope, opt.Jobs)
	default:
		b.Stats.CMOModules = len(prog.Modules)
		b.Stats.CMOFunctions = len(prog.FuncPIDs())
		b.Stats.SelectedLines = b.Stats.TotalLines
	}
	return sel, nil
}
