package cmo

import (
	"sync"
	"sync/atomic"

	"cmo/internal/analyze"
	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/ipa"
	"cmo/internal/naim"
	"cmo/internal/obs"
)

// The HLO stage: cross-module optimization over the scope the select
// stage chose (O4), or per-module interprocedural optimization with
// module boundaries intact (O3). With a connected session, HLO's
// per-function transform records replay from the repository when a
// function's transitive inputs are unchanged (see session_hlo.go).

// runHLO performs selection and cross-module optimization.
func (b *Build) runHLO(loader *naim.Loader, opt Options, sess *Session, volatile map[il.PID]bool, omit map[il.PID]bool, hsp obs.Span) error {
	prog := b.Prog
	hopts := hlo.Options{
		DB:         opt.DB,
		Volatile:   volatile,
		Entry:      opt.Entry,
		Budget:     opt.Budget,
		MaxInlines: opt.MaxInlines,
		Span:       hsp,
		Cancel:     opt.ctxErr,
	}
	if opt.Verify != analyze.Off {
		hopts.Check = b.hloCheck(loader, opt, hsp)
	}
	hopts.Incremental = sess.hloIncremental(prog, opt)

	// The whole select stage runs under one "select" span so its cost
	// is visible both in the trace and as Stats.SelectNanos (a share
	// of the enclosing hlo phase, not an extra phase).
	ssp := hsp.Child("select")
	sel, err := b.runSelect(loader, opt, ssp)
	b.Stats.SelectNanos = ssp.End()
	if err != nil {
		return err
	}
	if sel.skip {
		return nil
	}
	hopts.Scope = sel.scope
	hopts.Selected = sel.selected
	hopts.ExternallyCalled = sel.extCalled
	hopts.ExternStored = sel.extStored

	// The ipa stage: summarize every in-scope function's transitive
	// MOD/REF effects and purity before HLO mutates anything, so the
	// fact-gated transforms can see across calls. Like select, the
	// "ipa" span nests inside the hlo phase and its cost is reported
	// as an informational share (Stats.IPANanos).
	if !opt.NoIPA {
		if err := opt.ctxErr(); err != nil {
			return err
		}
		isp := hsp.Child("ipa")
		ires := ipa.Analyze(prog, loader, ipa.Options{Scope: sel.scope, Span: isp})
		b.Stats.IPANanos = isp.End()
		hopts.Summaries = ires.Summaries
		if tr := hsp.Trace(); tr != nil {
			tr.Counter("ipa.functions").Add(int64(ires.Stats.Functions))
			tr.Counter("ipa.const_fns").Add(int64(ires.Stats.ConstFns))
			tr.Counter("ipa.pure_fns").Add(int64(ires.Stats.PureFns))
			tr.Counter("ipa.top_fns").Add(int64(ires.Stats.TopFns))
		}
	}

	b.selectedFns = hopts.Selected
	if b.selectedFns == nil {
		b.selectedFns = make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			b.selectedFns[pid] = true
		}
	}

	hres, err := hlo.Optimize(prog, loader, hopts)
	if err != nil {
		return err
	}
	b.Stats.HLO = hres.Stats
	b.Stats.CacheHLOHits = hres.Stats.ReplayHits
	b.Stats.CacheHLOMisses = hres.Stats.ReplayMisses
	if tr := hsp.Trace(); tr != nil && hres.Stats.ReplayHits+hres.Stats.ReplayMisses > 0 {
		tr.Counter("session.hlo_replay_hits").Add(int64(hres.Stats.ReplayHits))
		tr.Counter("session.hlo_replay_misses").Add(int64(hres.Stats.ReplayMisses))
	}
	b.InlineOps = hres.InlineOps
	for _, pid := range hres.Dead {
		omit[pid] = true
	}
	if opt.Verify >= analyze.Interproc {
		return b.auditHLOFacts(loader, hres.Facts, hsp)
	}
	return nil
}

// runHLOPerModule implements +O3: interprocedural optimization with
// module boundaries intact — each module's IL goes through HLO alone,
// with the rest of the program summarized conservatively. This is
// what the paper's pipeline does when the linker is not involved
// (section 3: "at higher levels of optimization (+O3 or +O4) the IL
// is first routed through the high level optimizer").
func (b *Build) runHLOPerModule(loader *naim.Loader, opt Options, volatile map[il.PID]bool, omit map[il.PID]bool, hsp obs.Span) error {
	prog := b.Prog
	var agg hlo.Stats
	for mi := range prog.Modules {
		if err := opt.ctxErr(); err != nil {
			return err
		}
		scope := make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			if prog.Sym(pid).Module == int32(mi) {
				scope[pid] = true
			}
		}
		if len(scope) == 0 {
			continue
		}
		extCalled, extStored := b.summarizeOutOfScope(loader, scope, opt.Jobs)
		msp := hsp.ChildDetail("hlo module", prog.Modules[mi].Name)
		mopts := hlo.Options{
			DB:               opt.DB,
			Volatile:         volatile,
			Entry:            opt.Entry,
			Budget:           opt.Budget,
			MaxInlines:       opt.MaxInlines,
			Scope:            scope,
			Selected:         scope,
			ExternallyCalled: extCalled,
			ExternStored:     extStored,
			Span:             msp,
			Cancel:           opt.ctxErr,
		}
		if opt.Verify != analyze.Off {
			mopts.Check = b.hloCheck(loader, opt, msp)
		}
		hres, err := hlo.Optimize(prog, loader, mopts)
		if err != nil {
			msp.End()
			return err
		}
		if opt.Verify >= analyze.Interproc {
			// Audit each module's facts before the next module's run
			// mutates the program further.
			if err := b.auditHLOFacts(loader, hres.Facts, msp); err != nil {
				msp.End()
				return err
			}
		}
		msp.End()
		agg.Inlines += hres.Stats.Inlines
		agg.Clones += hres.Stats.Clones
		agg.IPCPParams += hres.Stats.IPCPParams
		agg.ConstGlobals += hres.Stats.ConstGlobals
		agg.OptimizedFns += hres.Stats.OptimizedFns
		agg.ScannedFuncs += hres.Stats.ScannedFuncs
		agg.Unrolled += hres.Stats.Unrolled
		for _, pid := range hres.Dead {
			omit[pid] = true
		}
		agg.DeadFuncs += len(hres.Dead)
		b.InlineOps = append(b.InlineOps, hres.InlineOps...)
	}
	b.Stats.HLO = agg
	b.Stats.CMOModules = 0 // no cross-module optimization at O3
	b.Stats.CMOFunctions = 0
	return nil
}

// summarizeOutOfScope scans the modules that bypass HLO and
// summarizes the facts the optimizer must stay conservative about:
// in-scope functions they call and globals they store. The scan is
// read-only and embarrassingly parallel: with jobs > 1 it fans out
// over the out-of-scope PIDs, each worker accumulating private sets
// that are merged afterwards (set union is order-independent, so the
// result is identical at any job count).
func (b *Build) summarizeOutOfScope(loader *naim.Loader, scope map[il.PID]bool, jobs int) (extCalled, extStored map[il.PID]bool) {
	prog := b.Prog
	var pids []il.PID
	for _, pid := range prog.FuncPIDs() {
		if !scope[pid] {
			pids = append(pids, pid)
		}
	}
	scanOne := func(f *il.Function, called, stored map[il.PID]bool) {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				switch in.Op {
				case il.Call:
					if scope[in.Sym] {
						called[in.Sym] = true
					}
				case il.StoreG, il.StoreX:
					stored[in.Sym] = true
				}
			}
		}
	}
	extCalled = make(map[il.PID]bool)
	extStored = make(map[il.PID]bool)
	if jobs > len(pids) {
		jobs = len(pids)
	}
	if jobs <= 1 {
		for _, pid := range pids {
			if f := loader.Function(pid); f != nil {
				scanOne(f, extCalled, extStored)
				loader.DoneWith(pid)
			}
		}
		return extCalled, extStored
	}
	type part struct{ called, stored map[il.PID]bool }
	parts := make([]part, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := part{called: make(map[il.PID]bool), stored: make(map[il.PID]bool)}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pids) {
					break
				}
				if f := loader.Function(pids[i]); f != nil {
					scanOne(f, p.called, p.stored)
					loader.DoneWith(pids[i])
				}
			}
			parts[w] = p
		}(w)
	}
	wg.Wait()
	for _, p := range parts {
		for pid := range p.called {
			extCalled[pid] = true
		}
		for pid := range p.stored {
			extStored[pid] = true
		}
	}
	return extCalled, extStored
}
