package cmo

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/profile"
)

// The session's HLO replay hookup. HLO (internal/hlo) defines the
// replay protocol as plain closures so it never depends on the
// repository; this file supplies those closures from the session and
// builds the options fingerprint that scopes every record.

// hloIncremental returns the replay hooks for one HLO run, or nil when
// the session has no repository.
func (s *Session) hloIncremental(prog *il.Program, opt Options) *hlo.Incremental {
	if !s.connected() {
		return nil
	}
	fp := hloOptionsFingerprint(opt)
	return &hlo.Incremental{
		OptionsFP: fp,
		Hash: func(f *il.Function) string {
			k := naim.HashPortableFunc(prog, f)
			return hex.EncodeToString(k[:])
		},
		Load: func(kind string, parts ...string) ([]byte, bool) {
			return s.get(naim.KeyOfStrings(append([]string{kind, toolchainVersion}, parts...)...))
		},
		Store: func(kind string, blob []byte, parts ...string) {
			s.put(naim.KeyOfStrings(append([]string{kind, toolchainVersion}, parts...)...), blob)
		},
		Encode: func(f *il.Function) []byte { return naim.EncodePortableFunc(prog, f) },
		Decode: func(pid il.PID, blob []byte) (*il.Function, error) {
			return naim.DecodePortableFunc(prog, pid, blob)
		},
	}
}

// hloOptionsFingerprint renders every build option that can steer an
// HLO decision. Function bodies and per-function facts are keyed
// separately by the replay machinery; this string covers the globals:
// level, budget, entry, volatile names, selectivity knobs, and the
// complete profile database (site frequencies drive inline decisions
// and cannot be derived from bodies). Verify, Jobs, NAIM, and Trace
// are deliberately absent — they must never change generated code.
func hloOptionsFingerprint(opt Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "level=%d pbo=%t sel=%g entry=%s multi=%t maxinl=%d\n",
		opt.Level, opt.PBO, opt.SelectPercent, opt.Entry, opt.MultiLayer, opt.MaxInlines)
	b := opt.Budget
	fmt.Fprintf(&sb, "budget=%d,%d,%d,%d,%d,%d\n",
		b.TinySize, b.HotMaxSize, b.HotMin, b.ColdMaxSize, b.GrowthFactor, b.MinCap)
	if len(opt.Volatile) > 0 {
		vol := append([]string(nil), opt.Volatile...)
		sort.Strings(vol)
		fmt.Fprintf(&sb, "volatile=%s\n", strings.Join(vol, ","))
	}
	if opt.ScopeModules != nil {
		fmt.Fprintf(&sb, "scopemods=%v\n", opt.ScopeModules)
	}
	if opt.NoIPA {
		// The ablation knob changes generated code (the ipa-gated
		// transforms never run), so its records must not mix with the
		// default build's.
		sb.WriteString("noipa=1\n")
	}
	if opt.NoDepGraph {
		// Unlike NoIPA this knob cannot change generated code; it is
		// fingerprinted anyway so the graph-vs-NoDepGraph differential
		// tests compare two independently computed builds rather than
		// one build and its own cached records.
		sb.WriteString("nodepgraph=1\n")
	}
	if opt.DB != nil {
		sb.WriteString("db=")
		sb.WriteString(profileFingerprint(opt.DB))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// profileFingerprint hashes the full profile database content in a
// deterministic order.
func profileFingerprint(db *profile.DB) string {
	var parts []string
	for k, v := range db.Sites {
		parts = append(parts, fmt.Sprintf("s:%s:%d:%d:%s=%d", k.Fn, k.Block, k.Seq, k.Callee, v))
	}
	for k, v := range db.Blocks {
		parts = append(parts, fmt.Sprintf("b:%s:%d=%d", k.Fn, k.Block, v))
	}
	sort.Strings(parts)
	key := naim.KeyOfStrings(parts...)
	return hex.EncodeToString(key[:])
}
