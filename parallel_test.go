package cmo

import (
	"errors"
	"testing"

	"cmo/internal/il"
	"cmo/internal/llo"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/source"
	"cmo/internal/vpa"
	"cmo/internal/workload"
)

// lowerSpec runs the frontend over a generated workload, returning the
// IL program and bodies for white-box pipeline tests.
func lowerSpec(t *testing.T, spec workload.Spec) (*il.Program, map[il.PID]*il.Function) {
	t.Helper()
	var files []*source.File
	for _, m := range spec.Generate() {
		f, err := source.Parse(m.Name+".minc", m.Text)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := source.Check(f); err != nil {
			t.Fatalf("check: %v", err)
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Prog, res.Funcs
}

// TestCompileParallelErrorUnpinsAll: when one routine fails mid-stream
// under Jobs > 1, the cursor must stop handing out new bodies and
// every already checked-out body must be released — a failing build
// leaves no pinned handles behind, so UnloadAll can compact everything.
func TestCompileParallelErrorUnpinsAll(t *testing.T) {
	spec := testSpec(31)
	prog, fns := lowerSpec(t, spec)
	loader := naim.NewLoader(prog, naim.Config{})
	defer loader.Close()
	for _, pid := range prog.FuncPIDs() {
		loader.InstallFunc(fns[pid])
	}

	// Fail verification on one routine roughly mid-way through the PID
	// order; every other routine compiles normally, so several workers
	// are holding bodies when the failure lands.
	pids := prog.FuncPIDs()
	victim := prog.Sym(pids[len(pids)/2]).Name
	wantErr := errors.New("injected verify failure")
	verify := func(f *il.Function) error {
		if f.Name == victim {
			return wantErr
		}
		return nil
	}
	b := &Build{Prog: prog}
	code := make(map[il.PID]*vpa.Func)
	compileOne := func(pid il.PID, lock func(func())) error {
		f := loader.Function(pid)
		if f == nil {
			return errors.New("missing body")
		}
		mf, err := llo.Compile(prog, f, llo.Options{Level: 2, Verify: verify})
		if err != nil {
			loader.DoneWith(pid)
			return err
		}
		lock(func() { code[pid] = mf })
		loader.DoneWith(pid)
		return nil
	}
	err := b.compileParallel(pids, compileOne, Options{}, 8)
	if !errors.Is(err, wantErr) {
		t.Fatalf("compileParallel error = %v, want the injected failure", err)
	}
	if n := loader.PinnedPools(); n != 0 {
		t.Errorf("failing build left %d pools pinned", n)
	}
	if n := loader.UnloadAll(); n != 0 {
		t.Errorf("UnloadAll found %d pinned pools after a failing build", n)
	}
	// The victim must not have produced code.
	if _, ok := code[prog.Lookup(victim).PID]; ok {
		t.Errorf("failing routine %s still emitted code", victim)
	}
}

func TestParallelBuildIdenticalAcrossJobs(t *testing.T) {
	// The deepest configuration: cross-module optimization, PBO, and
	// full interprocedural verification — every parallelized phase
	// (frontend, selectivity, out-of-scope summaries, HLO verify
	// passes, codegen, post-link verify) is exercised. The image must
	// be byte-identical at every job count.
	spec := testSpec(101)
	spec.Modules = 10
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Level: O4, PBO: true, DB: db, SelectPercent: 20,
		Verify:   VerifyInterproc,
		Volatile: workload.InputGlobals(),
	}
	var ref string
	for _, jobs := range []int{1, 2, 4, 8} {
		opt := base
		opt.Jobs = jobs
		b, err := BuildSource(mods, opt)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		dis := b.Image.Disasm()
		if jobs == 1 {
			ref = dis
			continue
		}
		if dis != ref {
			t.Fatalf("jobs=%d: image differs from the sequential build", jobs)
		}
	}
}
