package cmo

import (
	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/source"
)

// The frontend stage: parse, check, and lower every module — or, for
// modules whose artifact is already in the session repository, replay
// the stored frontend output without touching the source language at
// all.
//
// The stage runs in two halves. The per-module half (parse/check or
// artifact decode) is pure per module and fans out across Jobs
// workers. The assembly half is sequential and order-dependent: it
// interns every module's definitions, then externs, in module order —
// through the same lower.Register/ResolveExterns passes whether a
// module is live or replayed — so a warm build assigns every symbol
// the PID a cold build would. Replayed bodies then decode their
// name-symbolic references against that table, and live modules store
// fresh artifacts for next time.

// feUnit is one module's per-module frontend outcome.
type feUnit struct {
	key   naim.Key
	art   *frontendArtifact // non-nil: replayed from the repository
	file  *source.File      // non-nil: parsed live
	nanos int64             // measured parse/decode time (graph node cost)
}

// runFrontend produces the lowered program, replaying cached modules.
// It returns the lower result plus the artifact hit/miss counts.
func runFrontend(mods []SourceModule, opt Options, sess *Session, gp *graphPlan, fe obs.Span) (*lower.Result, int, int, error) {
	units := make([]feUnit, len(mods))
	process := func(i int) error {
		// Cancellation checkpoint: per module, before any parse or
		// artifact-decode work, on both the serial and fan-out paths.
		if err := opt.ctxErr(); err != nil {
			return err
		}
		m := mods[i]
		units[i].key = frontendKey(m.Name, m.Text)
		if blob, ok := sess.get(units[i].key); ok {
			if art, err := decodeFrontendArtifact(blob); err == nil {
				sp := fe.ChildDetail("warm", m.Name)
				units[i].art = art
				units[i].nanos = sp.End()
				return nil
			}
			// Undecodable artifact: treat as a miss and lower live.
		}
		sp := fe.ChildDetail("parse", m.Name)
		f, err := source.Parse(m.Name, m.Text)
		if err == nil {
			err = source.Check(f)
		}
		units[i].nanos = sp.End()
		if err != nil {
			return err
		}
		units[i].file = f
		return nil
	}

	jobs := opt.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(mods) {
		jobs = len(mods)
	}
	if jobs <= 1 {
		for i := range mods {
			if err := process(i); err != nil {
				return nil, 0, 0, err
			}
		}
	} else {
		// Parsing, checking, and artifact decode are per-module pure;
		// fan out. Workers keep draining after an error so the feeder
		// never blocks.
		work := make(chan int)
		errs := make(chan error, jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				var werr error
				for i := range work {
					if werr != nil {
						continue
					}
					if err := process(i); err != nil {
						werr = err
					}
				}
				errs <- werr
			}()
		}
		for i := range mods {
			work <- i
		}
		close(work)
		var firstErr error
		for w := 0; w < jobs; w++ {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return nil, 0, 0, firstErr
		}
	}

	// Assembly: sequential, module order. Shapes come from the artifact
	// for replayed modules and from the syntax tree for live ones; both
	// run the same interning passes.
	lsp := fe.Child("lower")
	defer lsp.End()
	prog := il.NewProgram()
	res := &lower.Result{Prog: prog, Funcs: make(map[il.PID]*il.Function)}
	shapes := make([]lower.Shape, len(mods))
	ilmods := make([]*il.Module, len(mods))
	for i := range units {
		if units[i].art != nil {
			shapes[i] = units[i].art.shape
		} else {
			shapes[i] = lower.FileShape(units[i].file)
		}
		mod, err := lower.Register(prog, shapes[i])
		if err != nil {
			return nil, 0, 0, err
		}
		ilmods[i] = mod
	}
	for i := range units {
		if err := lower.ResolveExterns(prog, ilmods[i], shapes[i]); err != nil {
			return nil, 0, 0, err
		}
	}

	hits, misses := 0, 0
	for i := range units {
		if err := opt.ctxErr(); err != nil {
			return nil, 0, 0, err
		}
		if art := units[i].art; art != nil {
			decoded, err := decodeArtifactBodies(prog, shapes[i], art)
			if err == nil {
				for _, f := range decoded {
					res.Funcs[f.PID] = f
				}
				hits++
				continue
			}
			// The artifact's shape registered cleanly but a body would
			// not decode (e.g. a hand-damaged repository). Re-lower the
			// module from source; the shape is identical by key, so the
			// symbol table already matches.
			f, perr := source.Parse(mods[i].Name, mods[i].Text)
			if perr == nil {
				perr = source.Check(f)
			}
			if perr != nil {
				return nil, 0, 0, perr
			}
			units[i].file = f
			units[i].art = nil
		}
		if err := lower.LowerBodies(prog, units[i].file, res.Funcs); err != nil {
			return nil, 0, 0, err
		}
		misses++
	}
	if err := prog.Validate(); err != nil {
		return nil, 0, 0, err
	}

	// Store fresh artifacts for the modules lowered live, so the next
	// build replays them. Bodies are the frontend's untouched output:
	// profile application and every optimization act downstream.
	if sess.connected() {
		for i := range units {
			if gp != nil {
				gp.noteModule(mods[i].Name, units[i].key, units[i].nanos, units[i].art == nil)
			}
			if units[i].art != nil || units[i].file == nil {
				continue
			}
			var bodies [][]byte
			for _, d := range shapes[i].Defs {
				if d.Kind != il.SymFunc {
					continue
				}
				pid, _ := prog.Intern(d.Name, il.SymFunc)
				bodies = append(bodies, naim.EncodePortableFunc(prog, res.Funcs[pid]))
			}
			sess.put(units[i].key, encodeFrontendArtifact(shapes[i], bodies))
		}
		if tr := fe.Trace(); tr != nil {
			tr.Counter("session.frontend_hits").Add(int64(hits))
			tr.Counter("session.frontend_misses").Add(int64(misses))
		}
	} else {
		hits, misses = 0, 0
	}
	return res, hits, misses, nil
}

// decodeArtifactBodies expands a replayed module's portable bodies
// against the assembled program.
func decodeArtifactBodies(prog *il.Program, sh lower.Shape, art *frontendArtifact) ([]*il.Function, error) {
	var out []*il.Function
	bi := 0
	for _, d := range sh.Defs {
		if d.Kind != il.SymFunc {
			continue
		}
		pid, err := prog.Intern(d.Name, il.SymFunc)
		if err != nil {
			return nil, err
		}
		f, err := naim.DecodePortableFunc(prog, pid, art.bodies[bi])
		if err != nil {
			return nil, err
		}
		bi++
		out = append(out, f)
	}
	return out, nil
}
