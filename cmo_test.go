package cmo

import (
	"testing"

	"cmo/internal/naim"
	"cmo/internal/workload"
)

// testSpec is a small multi-module workload used across facade tests.
func testSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "facade", Seed: seed,
		Modules: 6, HotPerModule: 2, ColdPerModule: 5, ColdStmts: 12,
		ArrayElems: 32,
		TrainIters: 60, RefIters: 150, TrainMode: 2, RefMode: 4,
	}
}

func sources(spec workload.Spec) []SourceModule {
	var mods []SourceModule
	for _, m := range spec.Generate() {
		mods = append(mods, SourceModule{Name: m.Name + ".minc", Text: m.Text})
	}
	return mods
}

func refInputs(spec workload.Spec) map[string]int64 {
	return map[string]int64{"input0": spec.Ref().Iters, "input1": spec.Ref().Mode}
}

func trainInputs(spec workload.Spec) map[string]int64 {
	return map[string]int64{"input0": spec.Train().Iters, "input1": spec.Train().Mode}
}

// buildAndRun compiles at the given options and runs on ref inputs.
func buildAndRun(t *testing.T, mods []SourceModule, spec workload.Spec, opt Options) (*Build, *RunResult) {
	t.Helper()
	opt.Volatile = workload.InputGlobals()
	b, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatalf("build %v: %v", opt.Level, err)
	}
	rr, err := b.Run(refInputs(spec), 0)
	if err != nil {
		t.Fatalf("run %v: %v", opt.Level, err)
	}
	return b, rr
}

func TestAllLevelsAgreeAndImprove(t *testing.T) {
	spec := testSpec(11)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	_, r1 := buildAndRun(t, mods, spec, Options{Level: O1})
	_, r2 := buildAndRun(t, mods, spec, Options{Level: O2})
	_, r2p := buildAndRun(t, mods, spec, Options{Level: O2, PBO: true, DB: db})
	_, r4 := buildAndRun(t, mods, spec, Options{Level: O4, SelectPercent: -1})
	b4p, r4p := buildAndRun(t, mods, spec, Options{Level: O4, PBO: true, DB: db, SelectPercent: 100})

	// Semantic agreement across every level (the repository's core
	// correctness property).
	for name, r := range map[string]*RunResult{"O2": r2, "O2+P": r2p, "O4": r4, "O4+P": r4p} {
		if r.Value != r1.Value {
			t.Errorf("%s result %d != O1 result %d", name, r.Value, r1.Value)
		}
	}

	// Performance ordering (Figure 1's qualitative shape): O2 beats
	// O1; every aggressive level beats O2; CMO+PBO is the best.
	if r2.Stats.Cycles >= r1.Stats.Cycles {
		t.Errorf("O2 (%d cycles) not faster than O1 (%d)", r2.Stats.Cycles, r1.Stats.Cycles)
	}
	for name, r := range map[string]*RunResult{"O2+P": r2p, "O4": r4, "O4+P": r4p} {
		if r.Stats.Cycles >= r2.Stats.Cycles {
			t.Errorf("%s (%d cycles) not faster than O2 (%d)", name, r.Stats.Cycles, r2.Stats.Cycles)
		}
	}
	if r4p.Stats.Cycles > r4.Stats.Cycles || r4p.Stats.Cycles > r2p.Stats.Cycles {
		t.Errorf("O4+P (%d) should be fastest (O4 %d, O2+P %d)",
			r4p.Stats.Cycles, r4.Stats.Cycles, r2p.Stats.Cycles)
	}
	// CMO must actually reduce dynamic call counts.
	if r4p.Stats.Calls >= r2.Stats.Calls {
		t.Errorf("O4+P calls (%d) not below O2 (%d)", r4p.Stats.Calls, r2.Stats.Calls)
	}
	if b4p.Stats.HLO.CrossModule == 0 {
		t.Error("no cross-module inlines recorded at O4+P")
	}
}

func TestSelectivityReducesWork(t *testing.T) {
	spec := testSpec(23)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	full, _ := buildAndRun(t, mods, spec, Options{Level: O4, PBO: true, DB: db, SelectPercent: 100})
	slim, rSlim := buildAndRun(t, mods, spec, Options{Level: O4, PBO: true, DB: db, SelectPercent: 5})
	if slim.Stats.SelectedSites >= full.Stats.SelectedSites {
		t.Errorf("5%% selected %d sites, 100%% selected %d", slim.Stats.SelectedSites, full.Stats.SelectedSites)
	}
	if slim.Stats.CMOFunctions >= full.Stats.CMOFunctions {
		t.Errorf("selectivity did not shrink the optimized set: %d vs %d",
			slim.Stats.CMOFunctions, full.Stats.CMOFunctions)
	}
	if slim.Stats.HLO.OptimizedFns > full.Stats.HLO.OptimizedFns {
		t.Error("selective build optimized more functions than full CMO")
	}
	// Correctness unaffected.
	_, r2 := buildAndRun(t, mods, spec, Options{Level: O2})
	if rSlim.Value != r2.Value {
		t.Errorf("selective CMO changed result: %d != %d", rSlim.Value, r2.Value)
	}
}

func TestZeroPercentSelectivityIsPlainPBO(t *testing.T) {
	spec := testSpec(31)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := buildAndRun(t, mods, spec, Options{Level: O4, PBO: true, DB: db, SelectPercent: 0})
	if b.Stats.HLO.Inlines != 0 || b.Stats.CMOModules != 0 {
		t.Errorf("0%% selectivity still ran CMO: %+v", b.Stats.HLO)
	}
}

func TestNAIMBudgetEngagesDuringBuild(t *testing.T) {
	spec := testSpec(47)
	spec.Modules = 10
	mods := sources(spec)

	free, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()})
	if err != nil {
		t.Fatal(err)
	}
	if free.Stats.NAIMLevel != naim.LevelOff {
		t.Errorf("unbudgeted build engaged NAIM: %v", free.Stats.NAIMLevel)
	}

	budget := free.Stats.NAIM.PeakBytes / 3
	tight, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		NAIM:     naim.Config{BudgetBytes: budget, ForceLevel: naim.Adaptive, CacheSlots: 8},
		Volatile: workload.InputGlobals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.NAIMLevel == naim.LevelOff {
		t.Error("budgeted build never engaged NAIM")
	}
	if tight.Stats.NAIM.PeakBytes >= free.Stats.NAIM.PeakBytes {
		t.Errorf("budget did not reduce peak: %d vs %d",
			tight.Stats.NAIM.PeakBytes, free.Stats.NAIM.PeakBytes)
	}
	// And the output must be identical code.
	rFree, err := free.Run(refInputs(spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	rTight, err := tight.Run(refInputs(spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rFree.Value != rTight.Value || rFree.Stats.Cycles != rTight.Stats.Cycles {
		t.Errorf("NAIM changed generated code: value %d/%d cycles %d/%d",
			rFree.Value, rTight.Value, rFree.Stats.Cycles, rTight.Stats.Cycles)
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := testSpec(53)
	mods := sources(spec)
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Level: O4, PBO: true, DB: db, SelectPercent: 20, Volatile: workload.InputGlobals(),
		NAIM: naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 4}}
	b1, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Image.Disasm() != b2.Image.Disasm() {
		t.Error("same sources, profile, and memory configuration produced different code (paper section 6.2 reproducibility violated)")
	}
}

func TestTrainMergesRuns(t *testing.T) {
	spec := testSpec(59)
	mods := sources(spec)
	db1, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Train(mods, []map[string]int64{trainInputs(spec), trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := db1.RankedSites()
	s2 := db2.RankedSites()
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("site sets differ: %d vs %d", len(s1), len(s2))
	}
	if s2[0].Count != 2*s1[0].Count {
		t.Errorf("two runs should double counts: %d vs %d", s2[0].Count, s1[0].Count)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildSource([]SourceModule{{Name: "x", Text: "not minc"}}, Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := BuildSource([]SourceModule{{Name: "x", Text: "module m; func f() {}"}}, Options{}); err == nil {
		t.Error("missing main not surfaced")
	}
	if _, err := BuildSource(nil, Options{PBO: true}); err == nil {
		t.Error("PBO without DB not surfaced")
	}
}

func TestDeadCodeShrinksImage(t *testing.T) {
	spec := testSpec(61)
	mods := sources(spec)
	o2, err := BuildSource(mods, Options{Level: O2, Volatile: workload.InputGlobals()})
	if err != nil {
		t.Fatal(err)
	}
	o4, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()})
	if err != nil {
		t.Fatal(err)
	}
	if o4.Stats.HLO.DeadFuncs == 0 {
		t.Skip("workload has no dead functions at this seed")
	}
	if len(o4.Image.Funcs) >= len(o2.Image.Funcs) {
		t.Errorf("dead function elimination did not shrink the image: %d vs %d funcs",
			len(o4.Image.Funcs), len(o2.Image.Funcs))
	}
}
