package cmo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cmo/internal/il"
	"cmo/internal/lower"
)

// The frontend artifact: one module's complete frontend output in the
// relocatable form the session repository stores. It carries the
// module's Shape (its symbol-table interface — definitions and
// externs in declaration order) plus the portable encoding of every
// function body (internal/naim, name-symbolic: no PID appears
// anywhere in the blob).
//
// Replaying an artifact re-runs the same Register/ResolveExterns
// passes live lowering uses, over the decoded Shape, so a warm build
// interns symbols in exactly the order a cold one would — PIDs agree
// by construction and the decoded bodies drop into the same program
// slots. The body blobs resolve their symbol references by name
// against the rebuilt table, which is what lets a module's artifact
// survive edits to *other* modules.

const feArtifactMagic = "CMOFE1\n"

var errArtifact = errors.New("cmo: corrupt frontend artifact")

// frontendArtifact is the decoded form.
type frontendArtifact struct {
	shape lower.Shape
	// bodies holds one portable blob per function definition, in
	// Shape.Defs order (functions only).
	bodies [][]byte
}

type artWriter struct{ b []byte }

func (w *artWriter) u(v uint64)    { w.b = binary.AppendUvarint(w.b, v) }
func (w *artWriter) i(v int64)     { w.b = binary.AppendVarint(w.b, v) }
func (w *artWriter) byte(v byte)   { w.b = append(w.b, v) }
func (w *artWriter) str(s string)  { w.u(uint64(len(s))); w.b = append(w.b, s...) }
func (w *artWriter) blob(b []byte) { w.u(uint64(len(b))); w.b = append(w.b, b...) }

type artReader struct {
	b   []byte
	off int
	err error
}

func (r *artReader) fail() {
	if r.err == nil {
		r.err = errArtifact
	}
}

func (r *artReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *artReader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *artReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *artReader) take(n uint64) []byte {
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *artReader) str() string  { return string(r.take(r.u())) }
func (r *artReader) blob() []byte { return r.take(r.u()) }

// encodeFrontendArtifact serializes a module's shape and its portable
// function bodies (in Defs order, functions only). The shape section
// uses the shared lower wire codec — the same bytes a backend compile
// request ships — with the body blobs appended after it.
func encodeFrontendArtifact(sh lower.Shape, bodies [][]byte) []byte {
	w := &artWriter{b: make([]byte, 0, 256)}
	w.b = append(w.b, feArtifactMagic...)
	w.b = lower.AppendShape(w.b, sh)
	w.u(uint64(len(bodies)))
	for _, b := range bodies {
		w.blob(b)
	}
	return w.b
}

// decodeFrontendArtifact parses an artifact blob. The body blobs are
// returned still encoded: they can only be expanded once the whole
// program's symbol table exists.
func decodeFrontendArtifact(blob []byte) (*frontendArtifact, error) {
	if len(blob) < len(feArtifactMagic) || string(blob[:len(feArtifactMagic)]) != feArtifactMagic {
		return nil, errArtifact
	}
	a := &frontendArtifact{}
	sh, off, err := lower.DecodeShape(blob, len(feArtifactMagic))
	if err != nil {
		return nil, errArtifact
	}
	a.shape = sh
	funcs := 0
	for _, d := range sh.Defs {
		if d.Kind == il.SymFunc {
			funcs++
		}
	}
	r := &artReader{b: blob, off: off}
	nbodies := r.u()
	if r.err != nil || nbodies > uint64(len(blob)) {
		return nil, errArtifact
	}
	if nbodies != uint64(funcs) {
		return nil, fmt.Errorf("cmo: frontend artifact has %d bodies for %d functions", nbodies, funcs)
	}
	for j := uint64(0); j < nbodies; j++ {
		a.bodies = append(a.bodies, r.blob())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(blob) {
		return nil, fmt.Errorf("cmo: %d trailing bytes in frontend artifact", len(blob)-r.off)
	}
	return a, nil
}
