package cmo

import (
	"encoding/hex"
	"fmt"

	"cmo/internal/naim"
)

// LLO object artifact keys. The codec itself lives in
// internal/backend — the same name-symbolic encoding travels between
// the session repository and the build (the object cache) and between
// a dispatching build and a remote worker (the /backend exchange), so
// there is exactly one set of bytes to reason about. This file keeps
// only what the repository side adds: the content-addressed keys.

// lloObjectKey scopes a cached object: toolchain, the full options
// fingerprint (level, entry, selectivity, budget, the complete
// profile DB — block frequencies steer PBO layout), the routine's
// name, its post-HLO portable body hash, and the resolved per-routine
// codegen tier (MultiLayer may compile the same body at a different
// level or without PBO depending on the selected set).
func lloObjectKey(optFP, name string, bodyHash naim.Key, level int, pbo bool) naim.Key {
	return naim.KeyOfStrings("cmo/llo/v1", toolchainVersion, optFP, name,
		hex.EncodeToString(bodyHash[:]), fmt.Sprintf("tier=%d,%t", level, pbo))
}

// partitionBundleKey scopes a cached partition bundle — every object
// of one backend partition in one blob, keyed by the deterministic
// partition fingerprint (which already covers the toolchain, the
// options fingerprint, the partition count and index, and every
// member's name, tier, and post-HLO body hash). A clean warm
// partition replays from one repository read.
func partitionBundleKey(fp string) naim.Key {
	return naim.KeyOfStrings("cmo/part/v1", fp)
}
