package cmo

import (
	"sort"

	"cmo/internal/il"
	"cmo/internal/link"
	"cmo/internal/obs"
	"cmo/internal/profile"
	"cmo/internal/vpa"
)

// The link stage: assemble the compiled routines into the final image,
// with Pettis–Hansen clustering when a profile is available.

// runLink links the code map into an executable image.
func (b *Build) runLink(opt Options, probeMap *profile.Map, omit map[il.PID]bool, code map[il.PID]*vpa.Func, ksp obs.Span) (*vpa.Image, error) {
	lopts := link.Options{Entry: opt.Entry, Omit: omit, Span: ksp}
	if probeMap != nil {
		lopts.NumProbes = probeMap.NumProbes()
	}
	if opt.PBO && opt.DB != nil {
		lopts.Cluster = true
		lopts.Edges = profileEdges(b.Prog, opt.DB)
	}
	return link.Link(b.Prog, code, lopts)
}

// profileEdges aggregates the profile's call-site counts into
// caller/callee edges for Pettis–Hansen clustering.
func profileEdges(prog *il.Program, db *profile.DB) []link.Edge {
	type key struct{ a, b il.PID }
	agg := make(map[key]int64)
	for _, s := range db.RankedSites() {
		caller := prog.Lookup(s.Key.Fn)
		callee := prog.Lookup(s.Key.Callee)
		if caller == nil || callee == nil {
			continue
		}
		agg[key{caller.PID, callee.PID}] += s.Count
	}
	edges := make([]link.Edge, 0, len(agg))
	for k, v := range agg {
		edges = append(edges, link.Edge{Caller: k.a, Callee: k.b, Count: v})
	}
	// Deterministic order for the linker. sort.Slice, not insertion
	// sort: large profiles produce tens of thousands of distinct edges
	// and the quadratic sort dominated profileEdges on them.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Caller != edges[j].Caller {
			return edges[i].Caller < edges[j].Caller
		}
		return edges[i].Callee < edges[j].Callee
	})
	return edges
}
