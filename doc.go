// Package cmo is the public facade of the scalable cross-module
// optimization framework: a reproduction of "Scalable Cross-Module
// Optimization" (Ayers, de Jong, Peyton, Schooler; PLDI 1998).
//
// It assembles the full HP-UX-style pipeline (paper Figure 2) over
// the MinC language and the simulated VPA target:
//
//	frontend (internal/source, internal/lower)
//	   │ IL
//	   ├── +O2: LLO per module ──────────────────┐
//	   └── +O4: HLO across modules (internal/hlo,│
//	        under the NAIM loader, internal/naim)│
//	               │ optimized IL                │
//	               └── LLO (internal/llo) ───────┤
//	                                             ▼
//	                linker (internal/link): clustering, image
//	                                             ▼
//	                VPA machine (internal/vpa): cycle-accurate-ish run
//
// Optimization levels follow the paper: O1 optimizes within basic
// blocks, O2 is the aggressive intraprocedural default, O4 adds
// link-time cross-module optimization; PBO layers profile-based
// optimization on any of them, and Instrument produces a +I build
// whose runs feed the profile database.
//
// The pipeline itself is organized as explicit stages — frontend,
// select, HLO, LLO, link — each in its own stage_*.go file, run by
// the coordinator in pipeline.go. A Session (session.go) adds a
// persistent content-addressed artifact repository under the stages:
// with Options.CacheDir set, warm rebuilds replay the frontend for
// unchanged modules instead of re-lowering them, and HLO replays
// per-function transform records whose inputs are unchanged.
//
// Builds are bounded and abortable: Options.Context threads a
// deadline or cancellation through every stage, which aborts at the
// next per-module or per-function checkpoint with every NAIM checkout
// returned. Long-lived callers serving many builds over shared
// sessions should look at internal/serve (the core of the cmod
// daemon), which adds admission control, a worker budget, and
// single-writer commit discipline on top of this package.
//
// ARCHITECTURE.md walks the whole tree layer by layer.
package cmo
