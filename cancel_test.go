package cmo

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/workload"
)

// Cancellation contract (Options.Context): an aborted build returns
// the context's error — never a mislabeled verification failure — and
// releases every NAIM checkout it took, so cancellation can never leak
// pinned pools no matter where in the pipeline the clock ran out.

func cancelSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "cancel", Seed: seed,
		Modules: 6, HotPerModule: 2, ColdPerModule: 3, ColdStmts: 8,
		ArrayElems: 16,
		TrainIters: 20, RefIters: 50, TrainMode: 2, RefMode: 4,
	}
}

// TestBuildCancelBeforeStart: a context that is already dead fails the
// build before any pipeline work.
func TestBuildCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := BuildSource(sources(cancelSpec(11)), Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		Context:  ctx,
	})
	if b != nil {
		t.Fatalf("canceled build returned a Build")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildCancelMidHLO drives the hard case: cancellation landing in
// the middle of the cross-module optimizer, while function bodies are
// being checked in and out of the NAIM loader. The testHLOTamper hook
// fires between HLO transforms (it exists for mid-pipeline fault
// injection), which is exactly "mid-HLO with warm checkouts".
func TestBuildCancelMidHLO(t *testing.T) {
	spec := cancelSpec(13)
	mods := sources(spec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	testHLOTamper = func(transform string, prog *il.Program, loader *naim.Loader) {
		// Cancel once, during the first in-HLO checkpoint; the next
		// transform's per-function poll must latch it.
		if !fired {
			fired = true
			cancel()
		}
	}
	defer func() { testHLOTamper = nil }()

	b, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		Verify:   VerifyStructural, // the tamper hook rides the verify path
		Context:  ctx,
	})
	if !fired {
		t.Fatalf("tamper hook never fired; the cancel never happened mid-HLO")
	}
	if b != nil {
		t.Fatalf("canceled build returned a Build")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The error must be the raw cancellation, not a verification
	// failure that happened to fire after the clock stopped...
	if strings.Contains(err.Error(), "verification failed") {
		t.Errorf("cancellation mislabeled as a verification failure: %v", err)
	}
	// ...and the abort path must have unpinned everything: buildIL
	// annotates the error when UnloadAll finds leaked checkouts.
	if strings.Contains(err.Error(), "pinned") {
		t.Errorf("cancellation leaked pinned pools: %v", err)
	}

	// The same modules build fine without the dead context — the
	// failure above was the cancellation, nothing else.
	testHLOTamper = nil
	good, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		Verify:   VerifyStructural,
	})
	if err != nil {
		t.Fatalf("clean rebuild failed: %v", err)
	}
	if good.Stats.PinLeaks != 0 {
		t.Fatalf("clean rebuild leaked %d pins", good.Stats.PinLeaks)
	}
}

// TestBuildCancelMidLLO cancels during parallel code generation: the
// worker pool must stop handing out routines, release every pinned
// body, and surface the context error.
func TestBuildCancelMidLLO(t *testing.T) {
	spec := cancelSpec(17)
	mods := sources(spec)

	// Cancel from inside the pipeline, after HLO: the per-routine
	// verify hook runs on LLO's working copies, so the first routine
	// through codegen pulls the trigger.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tamperOnce := false
	testHLOTamper = func(transform string, prog *il.Program, loader *naim.Loader) {
		if transform == "dce" && !tamperOnce {
			tamperOnce = true
			// Last HLO checkpoint: let HLO finish, cancel before LLO.
			cancel()
		}
	}
	defer func() { testHLOTamper = nil }()

	b, err := BuildSource(mods, Options{
		Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(),
		Verify:   VerifyStructural,
		Jobs:     4,
		Context:  ctx,
	})
	if b != nil {
		t.Fatalf("canceled build returned a Build")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "pinned") {
		t.Errorf("parallel-LLO cancellation leaked pinned pools: %v", err)
	}
}

// TestBuildDeadlineStats: the deadline flavor of the same contract,
// through a session so cancellation also crosses the replay paths.
func TestBuildDeadline(t *testing.T) {
	spec := cancelSpec(19)
	mods := sources(spec)
	dir := t.TempDir()

	// Warm the cache with a complete build first.
	if _, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(), CacheDir: dir}); err != nil {
		t.Fatalf("warming build: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(), CacheDir: dir, Context: ctx})
	if b != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("warm canceled build: b=%v err=%v, want nil + context.Canceled", b != nil, err)
	}

	// The repository must still be intact: a fresh build replays it.
	good, err := BuildSource(mods, Options{Level: O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(), CacheDir: dir})
	if err != nil {
		t.Fatalf("build after canceled build: %v", err)
	}
	if !good.Stats.GraphImageReplay && good.Stats.CacheFrontendHits != len(mods) {
		t.Errorf("post-cancel rebuild was cold: image replay %v, frontend hits = %d (want %d)",
			good.Stats.GraphImageReplay, good.Stats.CacheFrontendHits, len(mods))
	}
}
