package cmo

import (
	"fmt"
	"sort"
	"strings"
)

// SelectionReport renders what the build decided to optimize and why —
// the deployment diagnostic the paper calls essential when shipping
// selectivity (section 6.2: "good compiler diagnostics on what the
// compiler is optimizing are essential"). It is stable text, suitable
// for diffing between builds.
func (b *Build) SelectionReport() string {
	var sb strings.Builder
	s := b.Stats
	fmt.Fprintf(&sb, "build: %v", s.Level)
	if s.PBO {
		sb.WriteString(" +P")
	}
	fmt.Fprintf(&sb, " — %d modules, %d functions, %d lines\n", s.Modules, s.Functions, s.TotalLines)

	if s.TotalSites > 0 {
		fmt.Fprintf(&sb, "selectivity: %d/%d call sites -> %d/%d modules in CMO, %d routines in the fine-grained set (%d lines)\n",
			s.SelectedSites, s.TotalSites, s.CMOModules, s.Modules, s.CMOFunctions, s.SelectedLines)
	} else if s.CMOModules > 0 {
		fmt.Fprintf(&sb, "selectivity: disabled — all %d modules in CMO\n", s.CMOModules)
	} else if s.Level >= O3 {
		sb.WriteString("selectivity: nothing selected; default-level compilation throughout\n")
	}

	h := s.HLO
	fmt.Fprintf(&sb, "hlo: %d inlines (%d cross-module), %d clones, %d IPCP params, %d const globals, %d unrolled fns, %d dead fns\n",
		h.Inlines, h.CrossModule, h.Clones, h.IPCPParams, h.ConstGlobals, h.Unrolled, h.DeadFuncs)
	if h.GLoadsForwarded+h.GStoresKilled+h.PureCSEs > 0 {
		fmt.Fprintf(&sb, "ipa: %d global loads forwarded, %d dead global stores, %d const/pure calls reused\n",
			h.GLoadsForwarded, h.GStoresKilled, h.PureCSEs)
	}

	if s.TierHot+s.TierWarm+s.TierCold > 0 {
		fmt.Fprintf(&sb, "layers: %d hot (CMO+PBO), %d warm (+O2), %d cold (+O1)\n",
			s.TierHot, s.TierWarm, s.TierCold)
	}

	fmt.Fprintf(&sb, "naim: level %v, peak %d bytes, %d compactions, %d expansions, %d disk writes\n",
		s.NAIMLevel, s.NAIM.PeakBytes, s.NAIM.Compactions, s.NAIM.Expansions, s.NAIM.DiskWrites)
	fmt.Fprintf(&sb, "naim cache: %d hits, %d misses, %d evictions\n",
		s.NAIM.CacheHits, s.NAIM.CacheMisses, s.NAIM.Evictions)
	fmt.Fprintf(&sb, "image: %d bytes of code, %d functions\n", s.CodeBytes, len(b.Image.Funcs))

	if len(b.InlineOps) > 0 {
		// The busiest inline pairs, aggregated — the trail a
		// performance analyst follows first.
		type pair struct{ caller, callee string }
		agg := map[pair]int{}
		for _, op := range b.InlineOps {
			agg[pair{b.Prog.Sym(op.Caller).Name, b.Prog.Sym(op.Callee).Name}]++
		}
		pairs := make([]pair, 0, len(agg))
		for k := range agg {
			pairs = append(pairs, k)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if agg[pairs[i]] != agg[pairs[j]] {
				return agg[pairs[i]] > agg[pairs[j]]
			}
			if pairs[i].caller != pairs[j].caller {
				return pairs[i].caller < pairs[j].caller
			}
			return pairs[i].callee < pairs[j].callee
		})
		sb.WriteString("top inlines:\n")
		for i, p := range pairs {
			if i >= 10 {
				fmt.Fprintf(&sb, "  ... and %d more pairs\n", len(pairs)-10)
				break
			}
			fmt.Fprintf(&sb, "  %3dx %s <- %s\n", agg[p], p.caller, p.callee)
		}
	}
	return sb.String()
}

// TimingReport renders where the build spent its time — the sibling of
// SelectionReport for the paper's Figure 4-6 measurement axis: phase
// wall-clock durations (span-derived, so they are guaranteed to nest
// inside the total), the NAIM loader's compaction/disk overhead, and —
// when the build recorded a trace — the stable phase tree. Durations
// vary run to run; the phase tree does not.
func (b *Build) TimingReport() string {
	var sb strings.Builder
	s := b.Stats
	pct := func(ns int64) float64 {
		if s.TotalNanos <= 0 {
			return 0
		}
		return 100 * float64(ns) / float64(s.TotalNanos)
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(&sb, "timing: %v build, total %.2f ms\n", s.Level, ms(s.TotalNanos))
	// Queue wait is server-side latency before the build began; it is
	// deliberately outside TotalNanos so the phase percentages below
	// still describe the build itself, not the daemon's load.
	if s.QueueNanos > 0 {
		fmt.Fprintf(&sb, "  %-9s %9.2f ms  (before build; not in total)\n", "queued", ms(s.QueueNanos))
	}
	phases := []struct {
		name string
		ns   int64
	}{
		{"frontend", s.FrontendNanos},
		{"hlo", s.HLONanos},
		{"llo", s.LLONanos},
		{"link", s.LinkNanos},
	}
	var accounted int64
	for _, p := range phases {
		if p.ns == 0 {
			continue
		}
		accounted += p.ns
		fmt.Fprintf(&sb, "  %-9s %9.2f ms  %5.1f%%\n", p.name, ms(p.ns), pct(p.ns))
	}
	if other := s.TotalNanos - accounted; other > 0 {
		fmt.Fprintf(&sb, "  %-9s %9.2f ms  %5.1f%%\n", "(other)", ms(other), pct(other))
	}
	// The select stage nests inside hlo, so like verify below it is an
	// informational line rather than a phase (adding it to the loop
	// above would double-count its time).
	if s.SelectNanos > 0 {
		fmt.Fprintf(&sb, "select: %.2f ms inside hlo\n", ms(s.SelectNanos))
	}
	// The ipa summary stage also nests inside hlo.
	if s.IPANanos > 0 {
		fmt.Fprintf(&sb, "ipa: %.2f ms inside hlo\n", ms(s.IPANanos))
	}
	// Verification nests inside the phases above (per-transform checks
	// run under hlo, the frontend/link checks under build), so it is
	// reported as an informational line, not a phase of its own.
	if s.VerifyNanos > 0 {
		fmt.Fprintf(&sb, "verify: %.2f ms across whole-program passes, %d diagnostics\n",
			ms(s.VerifyNanos), s.VerifyDiags)
	}
	fmt.Fprintf(&sb, "naim: compact %.2f ms, disk %.2f ms — %d compactions (%d evictions), %d expansions, %d disk writes, %d disk reads\n",
		ms(s.NAIM.CompactNanos), ms(s.NAIM.DiskNanos),
		s.NAIM.Compactions, s.NAIM.Evictions, s.NAIM.Expansions, s.NAIM.DiskWrites, s.NAIM.DiskReads)
	fmt.Fprintf(&sb, "naim cache: %d hits, %d misses", s.NAIM.CacheHits, s.NAIM.CacheMisses)
	if tot := s.NAIM.CacheHits + s.NAIM.CacheMisses; tot > 0 {
		fmt.Fprintf(&sb, " (%.1f%% hit rate)", 100*float64(s.NAIM.CacheHits)/float64(tot))
	}
	sb.WriteString("\n")
	// Session cache figures only appear on builds with a cache
	// directory — cache-less builds keep these lines out, so older
	// report-shape expectations still hold.
	if s.CacheFrontendHits+s.CacheFrontendMisses > 0 {
		fmt.Fprintf(&sb, "session frontend: %d replayed, %d lowered (%.1f%% warm)\n",
			s.CacheFrontendHits, s.CacheFrontendMisses,
			100*float64(s.CacheFrontendHits)/float64(s.CacheFrontendHits+s.CacheFrontendMisses))
	}
	if s.CacheHLOHits+s.CacheHLOMisses > 0 {
		fmt.Fprintf(&sb, "session hlo: %d replayed, %d optimized (%.1f%% warm)\n",
			s.CacheHLOHits, s.CacheHLOMisses,
			100*float64(s.CacheHLOHits)/float64(s.CacheHLOHits+s.CacheHLOMisses))
	}
	if s.CacheLLOHits+s.CacheLLOMisses > 0 {
		fmt.Fprintf(&sb, "session llo: %d replayed, %d compiled (%.1f%% warm)\n",
			s.CacheLLOHits, s.CacheLLOMisses,
			100*float64(s.CacheLLOHits)/float64(s.CacheLLOHits+s.CacheLLOMisses))
	}
	// The remote-cache line appears only on builds that actually
	// talked to a shared CAS (Options.RemoteCache); an idle or absent
	// remote keeps the report shape unchanged.
	if s.CacheRemoteHits+s.CacheRemoteMisses+s.CacheRemoteStores > 0 {
		fmt.Fprintf(&sb, "remote cache: %d filled, %d missed, %d stored",
			s.CacheRemoteHits, s.CacheRemoteMisses, s.CacheRemoteStores)
		if s.CacheRemoteDrops > 0 {
			fmt.Fprintf(&sb, ", %d dropped", s.CacheRemoteDrops)
		}
		if s.CacheRemoteErrors > 0 {
			fmt.Fprintf(&sb, ", %d errors (degraded to local)", s.CacheRemoteErrors)
		}
		sb.WriteString("\n")
	}
	// Partition figures appear on partitioned-backend builds (the
	// default LLO path); the NoPartition ablation keeps the line out.
	if s.Partitions > 0 {
		fmt.Fprintf(&sb, "partitions: %d total, %d clean, %d local, %d remote",
			s.Partitions, s.PartitionsClean, s.PartitionsLocal, s.PartitionsRemote)
		if s.PartitionRetries > 0 {
			fmt.Fprintf(&sb, ", %d retried locally", s.PartitionRetries)
		}
		sb.WriteString("\n")
	}
	// Graph lines appear whenever the dependency graph steered the
	// build — a full image replay, or a staged build with a loaded
	// graph (nodes > 0 even when the closure was empty).
	if s.GraphImageReplay {
		fmt.Fprintf(&sb, "graph: image replayed — %d nodes, %d edges, dirty closure 0\n",
			s.GraphNodes, s.GraphEdges)
	} else if s.GraphNodes > 0 {
		fmt.Fprintf(&sb, "graph: %d nodes, %d edges, dirty closure %d, frontier %d, critical path %.2f ms\n",
			s.GraphNodes, s.GraphEdges, s.GraphDirtyClosure, s.GraphFrontierDepth,
			ms(s.GraphCriticalPathNanos))
	}
	if s.PinLeaks > 0 {
		fmt.Fprintf(&sb, "naim pin leaks: %d pools still checked out\n", s.PinLeaks)
	}
	// Contention figures only appear under Jobs > 1 (or disk offload):
	// an uncontended single-threaded build keeps this line out.
	if s.NAIM.LockWaitNanos > 0 || s.NAIM.WritebackQueued > 0 {
		fmt.Fprintf(&sb, "naim contention: %.2f ms shard-lock wait, %d spills queued (peak queue %d, %d group commits)\n",
			ms(s.NAIM.LockWaitNanos), s.NAIM.WritebackQueued, s.NAIM.WritebackPeakQueue,
			s.NAIM.WritebackBatches)
	}
	if b.trace != nil {
		if tree := b.trace.PhaseTree(); tree != "" {
			sb.WriteString("phases:\n")
			for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
				sb.WriteString("  ")
				sb.WriteString(line)
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}
