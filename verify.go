package cmo

import (
	"fmt"

	"cmo/internal/analyze"
	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/obs"
)

// Verification levels, re-exported from internal/analyze for callers
// of the facade. Levels are cumulative.
const (
	// VerifyOff disables pipeline verification (the default).
	VerifyOff = analyze.Off
	// VerifyStructural re-runs il.Verify on every body at each
	// pipeline stage.
	VerifyStructural = analyze.Structural
	// VerifyDataflow adds per-function CFG/dominance/liveness checks
	// (definite assignment, unreachable blocks, dead stores).
	VerifyDataflow = analyze.Dataflow
	// VerifyInterproc adds whole-program consistency checks, the NAIM
	// round-trip check, and the HLO facts soundness audit.
	VerifyInterproc = analyze.Interproc
)

// testHLOTamper, when non-nil, is invoked before each in-HLO
// verification pass with the name of the transform that just ran.
// It exists so tests can corrupt the program mid-pipeline and prove
// the verifier attributes the breakage to the right transform; it is
// never set outside tests.
var testHLOTamper func(transform string, prog *il.Program, loader *naim.Loader)

// runVerify executes one whole-program analysis pass over the loader
// and folds its cost and findings into the build stats. The returned
// error (nil when no error-severity diagnostics were found) carries
// the first diagnostic verbatim.
func (b *Build) runVerify(loader *naim.Loader, level analyze.Level, jobs int, omit map[il.PID]bool, parent obs.Span, stage string) error {
	sp := parent.ChildDetail("verify", stage)
	res := analyze.Program(b.Prog, loader, analyze.Options{Level: level, Jobs: jobs, Omit: omit, Span: sp})
	b.Stats.VerifyNanos += sp.End()
	b.Stats.VerifyDiags += len(res.Diags)
	return res.Err()
}

// verifyStage is the between-phases verification hook: a no-op when
// verification is off, otherwise a full analysis pass whose failure
// names the pipeline stage it ran after.
func (b *Build) verifyStage(loader *naim.Loader, opt Options, stage string, omit map[il.PID]bool, parent obs.Span) error {
	if opt.Verify == analyze.Off {
		return nil
	}
	// A cancelled build skips the pass and surfaces the context error
	// undecorated — "verification failed" must mean the IL was wrong,
	// never that the clock ran out.
	if err := opt.ctxErr(); err != nil {
		return err
	}
	if err := b.runVerify(loader, opt.Verify, opt.Jobs, omit, parent, stage); err != nil {
		return fmt.Errorf("cmo: verification failed after %s: %w", stage, err)
	}
	return nil
}

// hloCheck builds the per-transform hook hlo.Optimize calls after each
// named transform. The raw analyze error is returned unwrapped — HLO
// wraps it with the transform name, which is the attribution the
// paper's section-6.3 methodology wants.
func (b *Build) hloCheck(loader *naim.Loader, opt Options, hsp obs.Span) func(string) error {
	return func(transform string) error {
		if testHLOTamper != nil {
			testHLOTamper(transform, b.Prog, loader)
		}
		return b.runVerify(loader, opt.Verify, opt.Jobs, nil, hsp, transform)
	}
}

// auditHLOFacts re-derives the whole-program facts HLO acted on and
// checks the published summary was conservative (see
// analyze.AuditFacts). Runs only at VerifyInterproc: it is a full
// rescan of every routine, selected or not.
func (b *Build) auditHLOFacts(loader *naim.Loader, facts hlo.Facts, hsp obs.Span) error {
	asp := hsp.ChildDetail("verify", "facts-audit")
	diags := analyze.AuditFacts(b.Prog, loader, convertFacts(facts))
	b.Stats.VerifyNanos += asp.End()
	b.Stats.VerifyDiags += len(diags)
	if err := analyze.FirstError(diags); err != nil {
		return fmt.Errorf("cmo: HLO facts audit: %w", err)
	}
	return nil
}

// convertFacts maps hlo's published facts onto analyze's input type.
// The two structs are deliberately distinct: analyze must not depend
// on the optimizer it audits.
func convertFacts(f hlo.Facts) analyze.Facts {
	ipcp := make([]analyze.IPCPFact, len(f.IPCP))
	for i, x := range f.IPCP {
		ipcp[i] = analyze.IPCPFact{Fn: x.Fn, Param: x.Param, Val: x.Val}
	}
	return analyze.Facts{
		Scope:            f.Scope,
		Stored:           f.Stored,
		ExternallyCalled: f.ExternallyCalled,
		Volatile:         f.Volatile,
		Promoted:         f.Promoted,
		IPCP:             ipcp,
		Dead:             f.Dead,
		Summaries:        f.Summaries,
	}
}
