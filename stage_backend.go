package cmo

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"cmo/internal/backend"
	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/partition"
	"cmo/internal/vpa"
)

// The partitioned backend: the pipeline's WHOPR split. HLO is the
// summary-driven whole-program phase; everything after it is
// embarrassingly parallel per routine, so the stage (1) extracts every
// surviving routine's portable post-HLO body (releasing its pin
// immediately — workers operate on pure data, so no checkout is ever
// held across a dispatch, let alone across a network call), (2) groups
// routines into balanced callgraph-aware partitions
// (internal/partition) with a deterministic fingerprint each, (3)
// replays members that are clean against the session repository —
// warm builds only schedule dirty partitions — and (4) dispatches the
// dirty ones, critical-path first, across the worker set: an
// in-process pool (Options.Workers) plus one puller per remote cmod
// daemon (Options.RemoteWorkers). A remote failure of any kind
// retries the partition on the local engine, so a flaky worker costs
// time, never the build.
//
// Byte identity is the load-bearing invariant and it holds by
// construction: every object — cached, local, or remote — travels
// through the same name-symbolic encoding and is decoded fresh
// against this build's program, and both partitioning and fingerprints
// are pure functions of program content (never of Jobs, worker count,
// or measured times). Measured costs only order the dispatch queue.

// PartitionInfo describes one backend partition of a completed build
// (nil on the NoPartition path): its deterministic fingerprint, its
// membership in canonical order, and how it was satisfied.
type PartitionInfo struct {
	Index int
	// FP is the deterministic partition fingerprint: toolchain ⊕
	// options fingerprint ⊕ partition count/index ⊕ every member's
	// name, tier, and post-HLO body hash.
	FP string
	// Funcs is the membership in canonical (module-major) order.
	Funcs []string
	// Clean marks a partition fully replayed from the repository.
	Clean bool
	// Worker names what executed a dirty partition: "local", a remote
	// address, or "local (fallback)" after a remote failure.
	Worker string
}

// backendUnit is one partition's dispatch state.
type backendUnit struct {
	idx   int
	fp    string
	items []partition.Item // canonical membership
	funcs []backend.Func   // full membership, canonical order
	keys  []naim.Key       // per-member object keys
	pids  []il.PID

	// blobs[i] holds member i's object encoding: filled from the
	// repository during the probe, or by a worker during dispatch.
	blobs [][]byte
	// dirty lists the members to dispatch (indexes into funcs).
	dirty []int
	// fromBundle marks a unit whose probe was satisfied by one bundle
	// read (no rewrite needed).
	fromBundle bool

	priority int64
}

// runLLOPartitioned is the default LLO stage (see the file comment).
func (b *Build) runLLOPartitioned(loader *naim.Loader, opt Options, sess *Session, omit map[il.PID]bool, lsp obs.Span) (map[il.PID]*vpa.Func, error) {
	prog := b.Prog
	gp := b.gp
	multiLayer := opt.MultiLayer && opt.Level >= O4 && opt.DB != nil
	optFP := hloOptionsFingerprint(opt)

	// Phase 1: extract. One sequential pass in PID order — tier
	// classification mutates stats and must stay deterministic — that
	// pins each body just long enough to encode its portable form and
	// collect its call edges, then releases it. After this loop the
	// stage holds no checkouts: workers, local or remote, see only
	// portable bytes.
	type member struct {
		pid      il.PID
		name     string
		level    int
		pbo      bool
		body     []byte
		bodyHash naim.Key
		size     int
	}
	pids := make([]il.PID, 0, len(prog.FuncPIDs()))
	for _, pid := range prog.FuncPIDs() {
		if !omit[pid] {
			pids = append(pids, pid)
		}
	}
	members := make(map[string]*member, len(pids))
	items := make([]partition.Item, 0, len(pids))
	type edgeKey struct{ a, b string }
	edgeW := make(map[edgeKey]int64)
	for _, pid := range pids {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		f := loader.Function(pid)
		if f == nil {
			return nil, fmt.Errorf("cmo: no body for %s", prog.Sym(pid).Name)
		}
		sym := prog.Sym(pid)
		level, pbo := b.lloTier(opt, multiLayer, pid, f)
		body := naim.EncodePortableFunc(prog, f)
		m := &member{
			pid:      pid,
			name:     sym.Name,
			level:    level,
			pbo:      pbo,
			body:     body,
			bodyHash: naim.KeyOf(body),
			size:     f.NumInstrs(),
		}
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op != il.Call {
					continue
				}
				edgeW[edgeKey{sym.Name, prog.Sym(in.Sym).Name}]++
			}
		}
		loader.DoneWith(pid)
		members[m.name] = m
		items = append(items, partition.Item{ID: m.name, Module: int(sym.Module), Size: int64(m.size)})
	}
	if gp != nil {
		b.Stats.GraphFrontierDepth = len(pids)
	}
	code := make(map[il.PID]*vpa.Func, len(pids))
	if len(pids) == 0 {
		return code, nil
	}

	// Phase 2: partition. Edge aggregation is map-ordered, but
	// partition.Balanced sums edge weights order-insensitively, so the
	// assignment stays deterministic.
	edges := make([]partition.Edge, 0, len(edgeW))
	for k, w := range edgeW {
		edges = append(edges, partition.Edge{A: k.a, B: k.b, Weight: w})
	}
	npart := opt.Partitions
	if npart <= 0 {
		npart = partition.Auto(len(items))
	}
	parts := partition.Balanced(items, edges, npart)
	total := len(parts)
	scope := fmt.Sprintf("cmo/backend/v1|%s|%s|n=%d", toolchainVersion, optFP, total)

	units := make([]*backendUnit, total)
	b.Partitions = make([]PartitionInfo, total)
	for i, p := range parts {
		u := &backendUnit{idx: p.Index, items: p.Items}
		names := make([]string, 0, len(p.Items))
		for _, it := range p.Items {
			m := members[it.ID]
			u.funcs = append(u.funcs, backend.Func{Name: m.name, Level: m.level, PBO: m.pbo, Body: m.body})
			u.keys = append(u.keys, lloObjectKey(optFP, m.name, m.bodyHash, m.level, m.pbo))
			u.pids = append(u.pids, m.pid)
			names = append(names, m.name)
		}
		u.fp = backend.Fingerprint(scope, p.Index, total, u.funcs)
		u.blobs = make([][]byte, len(u.funcs))
		units[i] = u
		b.Partitions[i] = PartitionInfo{Index: p.Index, FP: u.fp, Funcs: names}
	}
	b.Stats.Partitions = total

	// Phase 3: probe and replay. Reuse is gated exactly like the
	// direct path — only graph-scheduled session builds cache objects —
	// plus one bundle artifact per partition keyed by the partition
	// fingerprint, so a fully clean partition replays in a single
	// repository read. Every cached member decodes here, whether its
	// partition is clean or dirty: per-function incrementality inside
	// a dirty partition matches the direct path hit for hit. A blob
	// that fails to decode demotes its member to dirty — reuse stays
	// advisory, never load-bearing.
	caching := gp != nil
	var dirtyUnits []*backendUnit
	for _, u := range units {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		if caching {
			if blob, ok := sess.get(partitionBundleKey(u.fp)); ok {
				if res, err := backend.DecodeResult(blob); err == nil && len(res.Objects) == len(u.funcs) {
					match := true
					for i := range res.Objects {
						if res.Objects[i].Name != u.funcs[i].Name {
							match = false
							break
						}
					}
					if match {
						for i := range res.Objects {
							u.blobs[i] = res.Objects[i].Blob
						}
						u.fromBundle = true
					}
				}
			}
			for i, key := range u.keys {
				if u.blobs[i] != nil {
					continue
				}
				if blob, ok := sess.get(key); ok {
					u.blobs[i] = blob
				}
			}
		}
		for i := range u.funcs {
			if u.blobs[i] == nil {
				u.dirty = append(u.dirty, i)
				continue
			}
			dec, err := backend.DecodeObject(prog, u.blobs[i])
			if err != nil || dec.Name != u.funcs[i].Name {
				u.blobs[i] = nil
				u.fromBundle = false
				u.dirty = append(u.dirty, i)
				continue
			}
			sp := lsp.ChildDetail("llo warm", u.funcs[i].Name)
			code[u.pids[i]] = dec
			sp.End()
			gp.noteObject(u.funcs[i].Name, u.keys[i], 0, false)
			b.Stats.CacheLLOHits++
		}
		if len(u.dirty) == 0 {
			b.Stats.PartitionsClean++
			b.Partitions[u.idx].Clean = true
		} else {
			dirtyUnits = append(dirtyUnits, u)
		}
	}

	// Phase 4: dispatch the dirty partitions, heaviest dependency
	// chains first. Priorities come from the depgraph's measured costs
	// — scheduling only; membership and fingerprints never see them.
	if len(dirtyUnits) > 0 {
		var prio map[string]int64
		if gp != nil {
			prio = gp.priorities()
		}
		for _, u := range dirtyUnits {
			for _, it := range u.items {
				w := it.Size
				if prio != nil {
					if p, ok := prio[graphObjID(it.ID)]; ok && p > w {
						w = p
					}
				}
				if w > u.priority {
					u.priority = w
				}
			}
		}
		sort.SliceStable(dirtyUnits, func(i, j int) bool {
			if dirtyUnits[i].priority != dirtyUnits[j].priority {
				return dirtyUnits[i].priority > dirtyUnits[j].priority
			}
			return dirtyUnits[i].idx < dirtyUnits[j].idx
		})
		if err := b.dispatchPartitions(dirtyUnits, total, opt, sess, lsp); err != nil {
			return nil, err
		}
		// Harvest: decode freshly compiled objects into the code map.
		// Decoding happens here, on the dispatcher, for local and
		// remote results alike — both arrive as the same encoding and
		// become fresh Funcs against this build's program, which is
		// what makes local-vs-remote byte-invisible to the linker.
		for _, u := range dirtyUnits {
			for _, di := range u.dirty {
				m := members[u.funcs[di].Name]
				dec, err := backend.DecodeObject(prog, u.blobs[di])
				if err != nil {
					return nil, fmt.Errorf("cmo: decoding compiled object %s: %w", u.funcs[di].Name, err)
				}
				code[u.pids[di]] = dec
				if lb := lloBytes(m.size); lb > b.Stats.LLOPeakBytes {
					b.Stats.LLOPeakBytes = lb
				}
			}
		}
	}

	// Bundle writes: any partition whose probe was not a single bundle
	// read gets its bundle (re)written in canonical member order, so
	// the next warm-noop build replays each partition from one read.
	if caching {
		for _, u := range units {
			if u.fromBundle {
				continue
			}
			bundle := backend.Result{FP: u.fp, Objects: make([]backend.Object, len(u.funcs))}
			for i := range u.funcs {
				bundle.Objects[i] = backend.Object{Name: u.funcs[i].Name, Blob: u.blobs[i]}
			}
			sess.put(partitionBundleKey(u.fp), backend.EncodeResult(&bundle))
		}
	}

	if tr := lsp.Trace(); tr != nil {
		tr.Counter("backend.partitions").Add(int64(b.Stats.Partitions))
		tr.Counter("backend.partitions_clean").Add(int64(b.Stats.PartitionsClean))
		tr.Counter("backend.partitions_local").Add(int64(b.Stats.PartitionsLocal))
		tr.Counter("backend.partitions_remote").Add(int64(b.Stats.PartitionsRemote))
		tr.Counter("backend.partition_retries").Add(int64(b.Stats.PartitionRetries))
		if b.Stats.CacheLLOHits+b.Stats.CacheLLOMisses > 0 {
			tr.Counter("session.llo_hits").Add(int64(b.Stats.CacheLLOHits))
			tr.Counter("session.llo_misses").Add(int64(b.Stats.CacheLLOMisses))
		}
	}
	return code, nil
}

// dispatchPartitions drains the priority-ordered dirty queue across
// the worker set: Options.Workers local engine goroutines plus one
// puller per remote daemon. Only each unit's dirty members are sent —
// replayed members already hold their blobs. Completed objects land in
// the unit's blob slots (the harvest pass decodes them); per-member
// cache writes, graph costs, and partition counters are recorded under
// one mutex.
func (b *Build) dispatchPartitions(queue []*backendUnit, total int, opt Options, sess *Session, lsp obs.Span) error {
	prog := b.Prog
	gp := b.gp
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}

	localWorkers := opt.Workers
	if localWorkers <= 0 {
		localWorkers = opt.Jobs
	}
	if localWorkers < 1 {
		localWorkers = 1
	}
	if localWorkers > len(queue) {
		localWorkers = len(queue)
	}

	// Remote workers need the module shapes to rebuild a symbol table;
	// compute them once, outside the pullers.
	var shapes []lower.Shape
	if len(opt.RemoteWorkers) > 0 {
		shapes = lower.ShapesOf(prog)
	}

	var (
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	engine := &backend.Engine{Prog: prog, Verify: b.lloVerifyHook(opt), Span: lsp}

	// finish records one executed partition's objects and telemetry.
	finish := func(u *backendUnit, res *backend.Result, worker string, remote bool, retried bool) {
		mu.Lock()
		defer mu.Unlock()
		for i, di := range u.dirty {
			obj := res.Objects[i]
			u.blobs[di] = obj.Blob
			if gp != nil {
				sess.put(u.keys[di], obj.Blob)
				gp.noteObject(u.funcs[di].Name, u.keys[di], obj.Nanos, true)
				b.Stats.CacheLLOMisses++
			}
		}
		if remote {
			b.Stats.PartitionsRemote++
		} else {
			b.Stats.PartitionsLocal++
		}
		if retried {
			b.Stats.PartitionRetries++
		}
		w := worker
		if retried {
			w = "local (fallback)"
		}
		b.Partitions[u.idx].Worker = w
	}

	// runOn executes one unit on a worker, with the local engine as
	// the fallback when a remote attempt fails for any reason.
	runOn := func(u *backendUnit, w backend.Worker, remote bool) error {
		funcs := make([]backend.Func, len(u.dirty))
		for i, di := range u.dirty {
			funcs[i] = u.funcs[di]
		}
		req := &backend.Request{
			Toolchain: toolchainVersion,
			Shapes:    shapes,
			Part:      backend.Partition{Index: u.idx, Total: total, FP: u.fp, Funcs: funcs},
		}
		sp := lsp.ChildDetail("partition", fmt.Sprintf("p%d/%d via %s (%d fns)", u.idx, total, w.Name(), len(funcs)))
		res, err := w.Compile(ctx, req)
		sp.End()
		retried := false
		if err != nil && remote {
			// The retry/fallback contract: a dead, slow, or lying
			// remote worker demotes the partition to local execution.
			// Only a local failure (a real compile error, or the
			// build's own cancellation) fails the build.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			lsp.Event("partition retry")
			retried = true
			fsp := lsp.ChildDetail("partition", fmt.Sprintf("p%d/%d via local fallback (%d fns)", u.idx, total, len(funcs)))
			res, err = engine.Compile(ctx, &req.Part)
			fsp.End()
		}
		if err != nil {
			return err
		}
		finish(u, res, w.Name(), remote && !retried, retried)
		return nil
	}

	pull := func(w backend.Worker, remote bool) {
		defer wg.Done()
		for {
			if stop.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(queue) {
				return
			}
			if err := runOn(queue[i], w, remote); err != nil {
				fail(err)
				return
			}
		}
	}

	for w := 0; w < localWorkers; w++ {
		wg.Add(1)
		go pull(&backend.Local{Engine: engine}, false)
	}
	if len(opt.RemoteWorkers) > 0 {
		client := &http.Client{}
		timeout := opt.RemoteTimeout
		if timeout <= 0 {
			timeout = backend.DefaultTimeout
		}
		for _, addr := range opt.RemoteWorkers {
			wg.Add(1)
			go pull(&backend.Remote{Addr: addr, Client: client, Timeout: timeout}, true)
		}
	}
	wg.Wait()
	return firstErr
}
