// Command cmold is the linker driver: it merges object files into an
// executable VPA image, optionally routing embedded IL through the
// cross-module optimizer first (the paper's CMO-at-link-time flow,
// Figure 2).
//
//	cmold [-o a.vx] [-O4] [-P profile.db] [-select pct] [-I]
//	      [-budget bytes] [-volatile g1,g2] [-entry main] a.o b.o ...
//
// Modes:
//
//	default      plain link of the objects' machine code
//	-O4          cross-module optimization over embedded IL
//	-O4 -P db    CMO+PBO with profile-guided selectivity (-select)
//	-I           instrumented (+I) build; writes <out>.probes with
//	             the probe map for cmorun/cmoprof
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cmo "cmo"
	"cmo/internal/link"
	"cmo/internal/naim"
	"cmo/internal/objfile"
	"cmo/internal/obs"
	"cmo/internal/profile"
)

func main() {
	out := flag.String("o", "a.vx", "output image")
	o4 := flag.Bool("O4", false, "cross-module optimize embedded IL")
	profPath := flag.String("P", "", "profile database for PBO")
	selPct := flag.Float64("select", -1, "selectivity: percent of call sites (-1 = all modules)")
	instrument := flag.Bool("I", false, "instrument for profile collection")
	budget := flag.Int64("budget", 0, "NAIM memory budget in modeled bytes (0 = unlimited)")
	volatiles := flag.String("volatile", "", "comma-separated globals treated as external inputs")
	entry := flag.String("entry", "main", "entry function")
	verbose := flag.Bool("v", false, "print build statistics")
	jobs := flag.Int("j", 1, "parallel code-generation jobs (output is identical regardless)")
	explain := flag.Bool("explain", false, "print a selection/optimization report (paper section 6.2 diagnostics)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the build")
	timing := flag.Bool("timing", false, "print the phase timing report to stderr")
	cacheDir := flag.String("cache-dir", "", "durable build repository: replay HLO work for unchanged functions (-O4)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmold [flags] a.o b.o ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var objs []*objfile.Object
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		o, err := objfile.DecodeObject(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		objs = append(objs, o)
	}
	ln, err := objfile.Merge(objs)
	if err != nil {
		fatalf("%v", err)
	}

	needIL := *o4 || *instrument
	if needIL && !ln.AllIL {
		fatalf("-O4/-I require IL in every object; recompile with cmoc -O 4")
	}

	var db *profile.DB
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			fatalf("%v", err)
		}
		db, err = profile.Load(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", *profPath, err)
		}
	}

	var tr *obs.Trace
	if *tracePath != "" || *timing {
		tr = obs.NewTrace()
	}
	if needIL {
		opt := cmo.Options{
			Entry:         *entry,
			Instrument:    *instrument,
			DB:            db,
			PBO:           db != nil && !*instrument,
			SelectPercent: *selPct,
			NAIM:          naim.Config{BudgetBytes: *budget, ForceLevel: naim.Adaptive},
			Jobs:          *jobs,
			Trace:         tr,
			CacheDir:      *cacheDir,
		}
		if *o4 && !*instrument {
			opt.Level = cmo.O4
		} else {
			opt.Level = cmo.O2
		}
		if *volatiles != "" {
			opt.Volatile = strings.Split(*volatiles, ",")
		}
		b, err := cmo.BuildIL(ln.Prog, ln.IL, opt)
		if err != nil {
			fatalf("%v", err)
		}
		if b.Stats.PinLeaks > 0 {
			fatalf("internal: %d NAIM pools still pinned after the pipeline finished", b.Stats.PinLeaks)
		}
		writeImage(*out, b)
		if *instrument {
			writeProbes(*out+".probes", b.ProbeMap)
		}
		if *explain {
			fmt.Fprint(os.Stderr, b.SelectionReport())
		} else if *verbose {
			printStats(b)
		}
		if *timing {
			fmt.Fprint(os.Stderr, b.TimingReport())
		}
		if *tracePath != "" {
			writeTrace(*tracePath, tr)
		}
		return
	}

	// Plain link of the precompiled machine code.
	lopts := link.Options{Entry: *entry}
	if db != nil {
		lopts.Cluster = true
		lopts.Edges = profileEdgesFromDB(ln, db)
	}
	image, err := link.Link(ln.Prog, ln.Code, lopts)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	if err := objfile.EncodeImage(f, image); err != nil {
		f.Close()
		fatalf("writing %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
}

func profileEdgesFromDB(ln *objfile.Linkable, db *profile.DB) []link.Edge {
	var edges []link.Edge
	for _, s := range db.RankedSites() {
		caller := ln.Prog.Lookup(s.Key.Fn)
		callee := ln.Prog.Lookup(s.Key.Callee)
		if caller == nil || callee == nil {
			continue
		}
		edges = append(edges, link.Edge{Caller: caller.PID, Callee: callee.PID, Count: s.Count})
	}
	return edges
}

func writeImage(path string, b *cmo.Build) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := objfile.EncodeImage(f, b.Image); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func writeTrace(path string, tr *obs.Trace) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func writeProbes(path string, m *profile.Map) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := m.SaveMap(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func printStats(b *cmo.Build) {
	s := b.Stats
	fmt.Fprintf(os.Stderr, "cmold: %d modules, %d functions, %d lines\n", s.Modules, s.Functions, s.TotalLines)
	fmt.Fprintf(os.Stderr, "cmold: level %v pbo=%v: %d inlines (%d cross-module), %d IPCP params, %d const globals, %d dead functions\n",
		s.Level, s.PBO, s.HLO.Inlines, s.HLO.CrossModule, s.HLO.IPCPParams, s.HLO.ConstGlobals, s.HLO.DeadFuncs)
	fmt.Fprintf(os.Stderr, "cmold: selectivity %d/%d sites -> %d modules, %d routines\n",
		s.SelectedSites, s.TotalSites, s.CMOModules, s.CMOFunctions)
	fmt.Fprintf(os.Stderr, "cmold: NAIM level %v, peak %d bytes, %d compactions, %d disk writes\n",
		s.NAIMLevel, s.NAIM.PeakBytes, s.NAIM.Compactions, s.NAIM.DiskWrites)
	fmt.Fprintf(os.Stderr, "cmold: code %d bytes\n", s.CodeBytes)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmold: "+format+"\n", args...)
	os.Exit(1)
}
