// Command cmorun executes a VPA image and reports the result and the
// machine's cycle statistics. For instrumented images it converts the
// probe counters into a profile database — the "run the specially
// instrumented program; a profile database is generated (or added
// to)" step of the paper's PBO workflow (section 3).
//
//	cmorun [-set g=v]... [-stats] [-max steps]
//	       [-probemap a.vx.probes -profile-out prof.db] a.vx
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cmo/internal/objfile"
	"cmo/internal/profile"
	"cmo/internal/vpa"
)

type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var sets setFlags
	flag.Var(&sets, "set", "set a scalar global before the run: -set input0=1000 (repeatable)")
	stats := flag.Bool("stats", false, "print machine statistics")
	maxSteps := flag.Int64("max", 0, "instruction budget (0 = default)")
	probeMapPath := flag.String("probemap", "", "probe map of an instrumented image")
	profileOut := flag.String("profile-out", "", "write/merge the run's profile database here")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmorun [flags] image.vx\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	img, err := objfile.DecodeImage(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	m := vpa.NewMachine(img, vpa.DefaultConfig())
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fatalf("bad -set %q (want name=value)", s)
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			fatalf("bad -set %q: %v", s, err)
		}
		if err := m.SetGlobal(name, v); err != nil {
			fatalf("%v", err)
		}
	}
	result, err := m.Run(nil, *maxSteps)
	if err != nil {
		fatalf("execution failed: %v", err)
	}
	fmt.Printf("result: %d\n", result)
	if *stats {
		s := m.Stats
		fmt.Printf("cycles: %d\ninstructions: %d\ncalls: %d\nbranches: %d\nmispredicts: %d\n"+
			"icache-misses: %d\ndcache-misses: %d\nloads: %d\nstores: %d\nmax-depth: %d\n",
			s.Cycles, s.Instrs, s.Calls, s.Branches, s.Mispredicts,
			s.IMisses, s.DMisses, s.Loads, s.Stores, s.MaxDepth)
	}

	if *profileOut != "" {
		if *probeMapPath == "" {
			fatalf("-profile-out requires -probemap")
		}
		pf, err := os.Open(*probeMapPath)
		if err != nil {
			fatalf("%v", err)
		}
		pm, err := profile.LoadMap(pf)
		pf.Close()
		if err != nil {
			fatalf("%s: %v", *probeMapPath, err)
		}
		db := profile.FromCounters(pm, m.Probes)
		// Merge with an existing database, as the paper's workflow
		// accumulates training runs.
		if prev, err := os.Open(*profileOut); err == nil {
			old, lerr := profile.Load(prev)
			prev.Close()
			if lerr != nil {
				fatalf("%s: %v", *profileOut, lerr)
			}
			old.Merge(db)
			db = old
		}
		out, err := os.Create(*profileOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := db.Save(out); err != nil {
			out.Close()
			fatalf("writing %s: %v", *profileOut, err)
		}
		if err := out.Close(); err != nil {
			fatalf("writing %s: %v", *profileOut, err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmorun: "+format+"\n", args...)
	os.Exit(1)
}
