// Command cmoc is the MinC compiler driver.
//
// Object mode (one source file — the classic separate-compilation
// flow) compiles a module to a relocatable object file:
//
//	cmoc [-O level] [-o out.o] file.minc
//
// Levels: 1 = basic blocks only; 2 = full intraprocedural (default);
// 3 = interprocedural within the module (HLO in the compiler);
// 4 = embed IL for link-time cross-module optimization.
//
// At -O4 the object additionally embeds the module's IL in
// relocatable (NAIM) form, making it eligible for cross-module
// optimization when the linker sees it — the paper's "frontends dump
// the IL directly to object files" flow (section 3). The object also
// always carries ordinary machine code, so -O4 objects still link
// fine without CMO.
//
// Driver mode (more than one source file, or any of -trace/-timing)
// runs the whole pipeline — frontend, HLO, LLO, link — in one process
// and writes an executable VPA image:
//
//	cmoc [-O level] [-trace out.json] [-timing] [-budget n] [-naim cfg]
//	     [-j jobs] [-cache-dir dir] [-o out.vx] a.minc b.minc ...
//
// Driver mode defaults to -O4 (multi-module compilation is exactly the
// cross-module scenario). -trace captures the build as Chrome
// trace-event JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev; -timing prints the phase timing report to
// stderr. When -trace is given without an explicit -budget or -naim,
// the driver pins NAIM to ir-compaction with a small expanded-pool
// cache so the trace shows loader activity (compactions, expansions,
// cache churn) even on programs too small to need a budget; generated
// code is identical either way (NAIM affects memory, never output).
//
// -cache-dir names a durable build repository: rebuilds replay the
// frontend for unchanged modules and HLO records for functions whose
// inputs are unchanged. A warm rebuild writes the same image bytes a
// cold one would — the cache changes build time, never output.
//
// -remote-cache names a shared CAS service (a cmod daemon started
// with -cas-dir) and makes the -cache-dir session three-level: local
// misses fill from the remote cache and stored artifacts write back
// asynchronously, so a machine that never built a module still gets
// warm-build speed from blobs the fleet already computed.
// -remote-namespace isolates tenants sharing one service. The remote
// is advisory: an unreachable, evicting, or dying cache service costs
// time, never bytes — images are identical with it on, off, or gone.
//
// Server mode (-server addr) sends the build to a running cmod daemon
// instead of compiling in-process:
//
//	cmoc -server 127.0.0.1:7777 [-O level] [-j jobs] [-cache-dir dir]
//	     [-timing] [-o out.vx] a.minc b.minc ...
//
// The daemon holds build sessions open across requests, so repeated
// builds against the same -cache-dir warm each other without paying a
// session open/commit per invocation. -cache-dir here names a
// directory on the *daemon's* filesystem. The image written is
// byte-identical to what the in-process driver would produce.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	cmo "cmo"
	"cmo/internal/naim"
	"cmo/internal/objfile"
	"cmo/internal/obs"
	"cmo/internal/serve"
)

func main() {
	level := flag.Int("O", 2, "optimization level 1..4 (driver mode defaults to 4)")
	out := flag.String("o", "", "output file (default: source name with .o, or a.vx in driver mode)")
	tracePath := flag.String("trace", "", "driver mode: write a Chrome trace-event JSON file")
	timing := flag.Bool("timing", false, "driver mode: print the phase timing report to stderr")
	budget := flag.Int64("budget", 0, "driver mode: NAIM memory budget in modeled bytes (0 = unlimited)")
	naimLevel := flag.String("naim", "", "driver mode: pin the NAIM level (off|ir|st|disk|adaptive)")
	jobs := flag.Int("j", 1, "driver mode: parallel frontend/codegen jobs (output is identical)")
	cacheDir := flag.String("cache-dir", "", "driver mode: durable build repository for incremental rebuilds (warm builds are byte-identical)")
	server := flag.String("server", "", "send the build to a cmod daemon at this address instead of compiling in-process")
	partitions := flag.Int("partitions", 0, "driver mode: backend partition count (0 = size-based default; output is identical)")
	noPartition := flag.Bool("no-partition", false, "driver mode: disable the partitioned backend (per-routine LLO; output is identical)")
	workers := flag.Int("workers", 0, "driver mode: in-process backend worker pool (0 = -j; output is identical)")
	remoteWorkers := flag.String("remote-workers", "", "driver mode: comma-separated cmod daemon URLs to farm backend partitions to (failures fall back locally; output is identical)")
	remoteCache := flag.String("remote-cache", "", "driver mode: shared CAS service URL (cmod -cas-dir) to fill -cache-dir misses from (failures degrade to local-only; output is identical)")
	remoteNamespace := flag.String("remote-namespace", "", "tenant namespace for -remote-cache requests (default \"default\")")
	remoteToken := flag.String("remote-cache-token", "", "bearer token for -remote-cache requests (services started with cmod -cas-token)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmoc [-O level] [-o out.o] file.minc\n")
		fmt.Fprintf(os.Stderr, "       cmoc [-O level] [-trace out.json] [-timing] [-o out.vx] a.minc b.minc ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	levelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "O" {
			levelSet = true
		}
	})
	if *level < 1 || *level > 4 {
		fatalf("invalid -O %d (want 1..4)", *level)
	}

	be := backendFlags{partitions: *partitions, noPartition: *noPartition, workers: *workers}
	if *remoteWorkers != "" {
		for _, addr := range strings.Split(*remoteWorkers, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			if !strings.Contains(addr, "://") {
				addr = "http://" + addr
			}
			be.remote = append(be.remote, addr)
		}
	}
	if be.noPartition && len(be.remote) > 0 {
		fatalf("-no-partition is incompatible with -remote-workers (remote workers need the partitioned backend)")
	}
	rc := remoteCacheFlags{namespace: *remoteNamespace, token: *remoteToken}
	if *remoteCache != "" {
		if *cacheDir == "" {
			fatalf("-remote-cache requires -cache-dir (the remote fills the local repository)")
		}
		rc.url = *remoteCache
		if !strings.Contains(rc.url, "://") {
			rc.url = "http://" + rc.url
		}
	}

	if *server != "" {
		if !levelSet {
			*level = 4
		}
		if rc.url != "" {
			fatalf("-remote-cache is a driver-mode flag (a cmod daemon attaches its own cache; see cmod -cas-dir)")
		}
		runRemote(*server, flag.Args(), *level, *out, *timing, *jobs, *cacheDir, be)
		return
	}

	driver := flag.NArg() > 1 || *tracePath != "" || *timing || *cacheDir != "" ||
		be.partitions != 0 || be.noPartition || be.workers != 0 || len(be.remote) > 0
	if driver {
		if !levelSet {
			*level = 4
		}
		runDriver(flag.Args(), *level, *out, *tracePath, *timing, *budget, *naimLevel, *jobs, *cacheDir, be, rc)
		return
	}

	// Object mode: one module, one relocatable object.
	src := flag.Arg(0)
	text, err := os.ReadFile(src)
	if err != nil {
		fatalf("%v", err)
	}
	lloLevel := 2
	if *level == 1 {
		lloLevel = 1
	}
	obj, err := objfile.CompileSource(src, string(text), lloLevel, *level >= 4, *level == 3)
	if err != nil {
		fatalf("%v", err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(src, ".minc") + ".o"
	}
	f, err := os.Create(dst)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obj.Encode(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", dst, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", dst, err)
	}
}

// backendFlags carries the partitioned-backend knobs; none of them
// change output bytes, only how the LLO stage is executed.
type backendFlags struct {
	partitions  int
	noPartition bool
	workers     int
	remote      []string
}

// remoteCacheFlags carries the shared-cache knobs; like the backend
// knobs they change build time only, never output bytes.
type remoteCacheFlags struct {
	url       string
	namespace string
	token     string
}

// runDriver compiles and links a whole program in one process.
func runDriver(paths []string, level int, out, tracePath string, timing bool, budget int64, naimLevel string, jobs int, cacheDir string, be backendFlags, rc remoteCacheFlags) {
	var mods []cmo.SourceModule
	for _, path := range paths {
		text, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		mods = append(mods, cmo.SourceModule{Name: path, Text: string(text)})
	}

	ncfg := naim.Config{BudgetBytes: budget, ForceLevel: naim.Adaptive}
	switch naimLevel {
	case "", "adaptive":
	case "off":
		ncfg.ForceLevel = naim.LevelOff
	case "ir":
		ncfg.ForceLevel = naim.LevelIR
	case "st":
		ncfg.ForceLevel = naim.LevelST
	case "disk":
		ncfg.ForceLevel = naim.LevelDisk
	default:
		fatalf("invalid -naim %q (want off|ir|st|disk|adaptive)", naimLevel)
	}
	var tr *obs.Trace
	if tracePath != "" || timing {
		tr = obs.NewTrace()
		if tracePath != "" && budget == 0 && naimLevel == "" {
			// Diagnostic default: exercise the loader so the trace
			// shows NAIM activity (see package comment). A single-slot
			// cache guarantees compact/expand churn even on two-function
			// programs. Deterministic contract: generated code is
			// unaffected by NAIM level.
			ncfg.ForceLevel = naim.LevelIR
			ncfg.CacheSlots = 1
		}
	}

	opt := cmo.Options{
		Level:         cmo.Level(level),
		SelectPercent: -1,
		NAIM:          ncfg,
		Jobs:          jobs,
		Partitions:    be.partitions,
		NoPartition:   be.noPartition,
		Workers:       be.workers,
		RemoteWorkers: be.remote,
		Trace:         tr,
		CacheDir:      cacheDir,
	}
	if rc.url != "" {
		opt.RemoteCache = rc.url
		opt.RemoteNamespace = rc.namespace
		opt.RemoteCacheToken = rc.token
	}
	b, err := cmo.BuildSource(mods, opt)
	if err != nil {
		fatalf("%v", err)
	}
	// A pin leak means some pipeline stage kept a loader checkout past
	// the end of the build — a lifecycle bug, not a user error, and one
	// that must not pass silently in scripted builds.
	if b.Stats.PinLeaks > 0 {
		fatalf("internal: %d NAIM pools still pinned after the pipeline finished", b.Stats.PinLeaks)
	}

	dst := out
	if dst == "" {
		dst = "a.vx"
	}
	f, err := os.Create(dst)
	if err != nil {
		fatalf("%v", err)
	}
	if err := objfile.EncodeImage(f, b.Image); err != nil {
		f.Close()
		fatalf("writing %s: %v", dst, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", dst, err)
	}

	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := tr.WriteChromeTrace(tf); err != nil {
			tf.Close()
			fatalf("writing %s: %v", tracePath, err)
		}
		if err := tf.Close(); err != nil {
			fatalf("writing %s: %v", tracePath, err)
		}
	}
	if timing {
		fmt.Fprint(os.Stderr, b.TimingReport())
	}
}

// runRemote is server mode: ship the sources to a cmod daemon and
// write the image it returns. The daemon compiles with the same
// pipeline this binary embeds, so the output bytes are identical.
func runRemote(addr string, paths []string, level int, out string, timing bool, jobs int, cacheDir string, be backendFlags) {
	req := serve.BuildRequest{
		Level: level, Jobs: jobs, CacheDir: cacheDir,
		Partitions: be.partitions, NoPartition: be.noPartition,
		Workers: be.workers, RemoteWorkers: be.remote,
	}
	for _, path := range paths {
		text, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		req.Modules = append(req.Modules, serve.Module{Name: path, Text: string(text)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatalf("%v", err)
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Post(addr+"/build", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("contacting daemon: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		fatalf("daemon: %s", msg)
	}
	var br serve.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		fatalf("decoding daemon response: %v", err)
	}

	dst := out
	if dst == "" {
		dst = "a.vx"
	}
	if err := os.WriteFile(dst, br.Image, 0o644); err != nil {
		fatalf("%v", err)
	}
	if timing {
		fmt.Fprint(os.Stderr, br.Timing)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmoc: "+format+"\n", args...)
	os.Exit(1)
}
