// Command cmoc is the MinC compiler driver: it compiles one source
// module to a relocatable object file.
//
//	cmoc [-O level] [-o out.o] file.minc
//
// Levels: 1 = basic blocks only; 2 = full intraprocedural (default);
// 3 = interprocedural within the module (HLO in the compiler);
// 4 = embed IL for link-time cross-module optimization.
//
// At -O4 the object additionally embeds the module's IL in
// relocatable (NAIM) form, making it eligible for cross-module
// optimization when the linker sees it — the paper's "frontends dump
// the IL directly to object files" flow (section 3). The object also
// always carries ordinary machine code, so -O4 objects still link
// fine without CMO.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmo/internal/objfile"
)

func main() {
	level := flag.Int("O", 2, "optimization level: 1, 2, or 4 (4 embeds IL for CMO)")
	out := flag.String("o", "", "output object file (default: source name with .o)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmoc [-O level] [-o out.o] file.minc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)
	if *level < 1 || *level > 4 {
		fatalf("invalid -O %d (want 1..4)", *level)
	}
	text, err := os.ReadFile(src)
	if err != nil {
		fatalf("%v", err)
	}
	lloLevel := 2
	if *level == 1 {
		lloLevel = 1
	}
	obj, err := objfile.CompileSource(src, string(text), lloLevel, *level >= 4, *level == 3)
	if err != nil {
		fatalf("%v", err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(src, ".minc") + ".o"
	}
	f, err := os.Create(dst)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obj.Encode(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", dst, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", dst, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmoc: "+format+"\n", args...)
	os.Exit(1)
}
