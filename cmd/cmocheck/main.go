// Command cmocheck is the standalone whole-program IL checker: it
// runs the frontend over a set of MinC modules and then the
// internal/analyze verification tiers over the resulting IL, without
// optimizing or linking anything.
//
//	cmocheck [-level structural|dataflow|interproc] [-json] [-partial] [-ipa] a.minc b.minc ...
//
// Diagnostics are positioned (module, function, block, instruction)
// and sorted deterministically; -json emits the same report as a
// machine-readable document instead. -partial skips the
// whole-program completeness check so a single module out of a larger
// program can be checked alone (undefined externs then surface as
// unresolved-symbol diagnostics rather than frontend errors). -ipa
// additionally dumps each function's interprocedural MOD/REF summary
// (internal/ipa) and runs the facts audit over the summaries,
// reporting any that fail conservatism.
//
// Exit status: 0 when no error-severity diagnostics were found, 1
// when some were, 2 on usage or I/O errors.
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
