package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cmo/internal/analyze"
	"cmo/internal/il"
	"cmo/internal/ipa"
	"cmo/internal/lower"
	"cmo/internal/source"
)

// report is the JSON document -json emits. It round-trips through
// encoding/json (severities marshal as their names).
type report struct {
	Level     string               `json:"level"`
	Functions int                  `json:"functions"`
	Errors    int                  `json:"errors"`
	Warnings  int                  `json:"warnings"`
	Diags     []analyze.Diagnostic `json:"diagnostics"`
	// IPA maps function name to its MOD/REF summary fingerprint,
	// present only under -ipa.
	IPA map[string]string `json:"ipa,omitempty"`
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cmocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	levelName := fs.String("level", "interproc", "verification level: structural|dataflow|interproc")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	partial := fs.Bool("partial", false, "allow undefined externs (check a program fragment)")
	dumpIPA := fs.Bool("ipa", false, "dump interprocedural MOD/REF summaries and audit their conservatism")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cmocheck [-level structural|dataflow|interproc] [-json] [-partial] [-ipa] a.minc b.minc ...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	level, err := analyze.ParseLevel(*levelName)
	if err != nil || level == analyze.Off {
		fmt.Fprintf(stderr, "cmocheck: bad -level %q (want structural|dataflow|interproc)\n", *levelName)
		return 2
	}

	files := make([]*source.File, 0, fs.NArg())
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "cmocheck: %v\n", err)
			return 2
		}
		f, err := source.Parse(path, string(text))
		if err == nil {
			err = source.Check(f)
		}
		if err != nil {
			fmt.Fprintf(stderr, "cmocheck: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	low, err := func() (*lower.Result, error) {
		if *partial {
			return lower.ModulesLoose(files)
		}
		return lower.Modules(files)
	}()
	if err != nil {
		fmt.Fprintf(stderr, "cmocheck: %v\n", err)
		return 2
	}

	res := analyze.Program(low.Prog, analyze.MapSource(low.Funcs), analyze.Options{Level: level})

	// -ipa: summarize every defined function's transitive MOD/REF
	// effects, then turn the audit on the analysis itself — the same
	// conservatism checks the build pipeline applies to HLO's facts,
	// here proving the standalone summaries sound over the unoptimized
	// IL. Audit findings join the regular diagnostic stream.
	var summaries map[string]string
	if *dumpIPA {
		src := analyze.MapSource(low.Funcs)
		ires := ipa.Analyze(low.Prog, src, ipa.Options{})
		stored := make(map[il.PID]bool)
		for _, f := range low.Funcs {
			for _, b := range f.Blocks {
				for ii := range b.Instrs {
					if op := b.Instrs[ii].Op; op == il.StoreG || op == il.StoreX {
						stored[b.Instrs[ii].Sym] = true
					}
				}
			}
		}
		res.Diags = append(res.Diags, analyze.AuditFacts(low.Prog, src, analyze.Facts{
			Stored:    stored,
			Summaries: ires.Summaries,
		})...)
		summaries = make(map[string]string, len(ires.Summaries))
		for pid, s := range ires.Summaries {
			summaries[low.Prog.Sym(pid).Name] = s.Fingerprint(low.Prog)
		}
	}

	if *asJSON {
		rep := report{
			Level:     res.Level.String(),
			Functions: res.Functions,
			Errors:    res.Errors(),
			Warnings:  res.Warnings(),
			Diags:     res.Diags,
			IPA:       summaries,
		}
		if rep.Diags == nil {
			rep.Diags = []analyze.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "cmocheck: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d.String())
		}
		if summaries != nil {
			names := make([]string, 0, len(summaries))
			for name := range summaries {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(stdout, "ipa: %s: %s\n", name, summaries[name])
			}
		}
		if res.Errors() > 0 || res.Warnings() > 0 {
			fmt.Fprintf(stdout, "cmocheck: %d error(s), %d warning(s) at level %s\n",
				res.Errors(), res.Warnings(), res.Level)
		} else {
			fmt.Fprintf(stdout, "cmocheck: ok: %d functions clean at level %s\n",
				res.Functions, res.Level)
		}
	}
	if res.Errors() > 0 {
		return 1
	}
	return 0
}
