package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldens(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantExit int
	}{
		{"clean", []string{"testdata/clean_app.minc", "testdata/clean_lib.minc"}, 0},
		{"dirty", []string{"testdata/dirty.minc"}, 0},
		{"dirty_json", []string{"-json", "testdata/dirty.minc"}, 0},
		{"fragment", []string{"-partial", "testdata/fragment.minc"}, 1},
		{"fragment_json", []string{"-json", "-partial", "testdata/fragment.minc"}, 1},
		{"dataflow_level", []string{"-level", "dataflow", "testdata/dirty.minc"}, 0},
		{"ipa", []string{"-ipa", "testdata/ipa.minc"}, 0},
		{"ipa_json", []string{"-json", "-ipa", "testdata/ipa.minc"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantExit, stdout.String(), stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if stdout.String() != string(want) {
				t.Errorf("output differs from %s:\n-- got --\n%s-- want --\n%s", golden, stdout.String(), want)
			}
		})
	}
}

// TestJSONRoundTrip: the -json document must survive
// encoding/json decode → encode unchanged (the acceptance criterion
// for machine consumers).
func TestJSONRoundTrip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-partial", "testdata/fragment.minc"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Errors != 1 || len(rep.Diags) != 1 || rep.Diags[0].Check != "dangling-pid" {
		t.Errorf("unexpected report: %+v", rep)
	}
	back, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(back)) != strings.TrimSpace(stdout.String()) {
		t.Errorf("JSON did not round-trip:\n-- re-encoded --\n%s\n-- original --\n%s", back, stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-level", "bogus", "testdata/dirty.minc"},
		{"-level", "off", "testdata/dirty.minc"},
		{"testdata/no_such_file.minc"},
		{"testdata/fragment.minc"}, // undefined extern without -partial
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}
