// Command cmolint runs the repository's invariant analyzers
// (internal/lint) over Go source trees:
//
//	cmolint [dir ...]
//
// With no arguments it lints the current directory tree. Production
// sources only: _test.go files and testdata directories are skipped —
// tests violate the invariants deliberately (leaking a NAIM pin is
// how the pin-leak counter is exercised), and testdata holds the lint
// fixtures themselves.
//
// Findings print as file:line:col: message (analyzer). Exit status:
// 0 clean, 1 findings, 2 usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"cmo/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	roots := args
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				// testdata is fixture territory; dot- and underscore-
				// prefixed directories are invisible to the go tool.
				if name == "testdata" || (path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_"))) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "cmolint: %v\n", err)
			return 2
		}
	}
	diags := lint.Run(fset, files, lint.All())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
