package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// The repository's own production sources must be lint-clean — this
// is the same gate CI's lint job applies, kept in the test suite so
// `go test ./...` catches a violation before a push does.
func TestRepositoryIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{moduleRoot(t)}, &stdout, &stderr); code != 0 {
		t.Errorf("cmolint over the repository exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// A tree seeded with a violation must fail with exit 1 and name the
// analyzer; the lint fixtures double as the seeded tree. (The fixture
// dir is passed directly, so the driver's own testdata skip does not
// apply below the root.)
func TestSeededViolationFails(t *testing.T) {
	fixture := filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "pin")
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, stdout.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("(pindiscipline)")) {
		t.Errorf("findings do not name the analyzer:\n%s", stdout.String())
	}
}

func TestBadRootExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
