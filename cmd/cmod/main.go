// Command cmod is the CMO build daemon: a long-lived process that
// serves compile requests over HTTP and keeps build sessions open
// between them, so every request after the first starts warm.
//
//	cmod [-addr host:port] [-max-builds n] [-queue n] [-job-budget n]
//	     [-timeout d] [-max-timeout d] [-record-ring n] [-trace-ring n]
//	     [-pprof] [-cas-dir dir] [-cas-max-bytes n] [-cas-ttl d]
//	     [-cas-token secret]
//
// The one-shot cmoc driver pays the session open/commit cost on every
// invocation and shares nothing across processes. cmod moves the
// session boundary to the server: builds naming the same -cache-dir
// (via the request's cache_dir field, or cmoc -server -cache-dir)
// share one open session, so frontend artifacts and HLO replay records
// written by one request are replayed by the next with no process
// restart or manifest reload in between. Generated images are
// byte-identical to one-shot builds — the daemon changes how fast an
// answer arrives, never the answer.
//
// API (see internal/serve for the wire types):
//
//	POST /build              {modules, level, cache_dir, jobs, ...}
//	POST /backend            compile one backend partition for another
//	                         build (binary exchange; see internal/backend)
//	GET  /cas/{ns}/{hash}    shared artifact cache blob (with -cas-dir;
//	PUT  /cas/{ns}/{hash}    see internal/cas — ETag/If-None-Match,
//	                         gzip, per-tenant namespaces, LRU+TTL)
//	GET  /status             queue depth, active builds, open sessions,
//	                         daemon version/pid/uptime
//	GET  /metrics            Prometheus text exposition: build latency /
//	                         stage / memory histograms, outcome counters,
//	                         gauges, plus the sanitized legacy counters
//	GET  /metrics.json       the original JSON counter snapshot
//	GET  /builds             recent build ledger records (?limit=n)
//	GET  /builds/{id}        one ledger record
//	GET  /builds/{id}/trace  that build's Chrome trace-event JSON
//	GET  /healthz            "ok" while serving, 503 once draining
//	POST /shutdown           remote SIGTERM
//	GET  /debug/pprof/*      profiling, only with -pprof
//
// Inspect a running daemon with cmd/cmostat (fleet summary, trace
// download).
//
// On SIGTERM or SIGINT (or POST /shutdown) the daemon drains: it stops
// admitting builds, lets queued and in-flight ones finish, commits and
// fsyncs every open session repository, then exits 0. Kill -9 is still
// safe — the repository is crash-consistent — but drain preserves the
// uncommitted tail of the last builds' artifacts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cmo/internal/cas"
	"cmo/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	maxBuilds := flag.Int("max-builds", 2, "concurrent build limit")
	queueDepth := flag.Int("queue", 8, "requests that may wait for a build slot")
	jobBudget := flag.Int("job-budget", 0, "server-wide worker budget across builds (0 = one per build)")
	timeout := flag.Duration("timeout", 5*time.Minute, "default per-request build deadline")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on requested deadlines (0 = same as -timeout)")
	recordRing := flag.Int("record-ring", 512, "build ledger records kept in memory and per ledger file")
	traceRing := flag.Int("trace-ring", 32, "recent builds whose full trace stays retrievable")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	backendSlots := flag.Int("backend-slots", 0, "concurrent POST /backend partition compiles served as a worker (0 = 2*max-builds, negative disables)")
	casDir := flag.String("cas-dir", "", "serve a shared artifact cache from this directory at /cas/ (empty disables)")
	casMaxBytes := flag.Int64("cas-max-bytes", 256<<20, "cache disk cap in bytes (LRU eviction holds it)")
	casTTL := flag.Duration("cas-ttl", 0, "expire cache entries older than this (0 = no TTL)")
	casSlots := flag.Int("cas-slots", 0, "concurrent /cas requests (0 = 4*max-builds)")
	casToken := flag.String("cas-token", "", "shared secret /cas clients must send as a bearer token (empty = open endpoint; namespaces are cooperative, not a security boundary)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: cmod [-addr host:port] [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var store *cas.Store
	if *casDir != "" {
		var err error
		store, err = cas.OpenStore(*casDir, cas.Config{MaxBytes: *casMaxBytes, TTL: *casTTL})
		if err != nil {
			fatalf("%v", err)
		}
	}

	srv := serve.New(serve.Config{
		MaxBuilds:      *maxBuilds,
		QueueDepth:     *queueDepth,
		JobBudget:      *jobBudget,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RecordRing:     *recordRing,
		TraceRing:      *traceRing,
		EnablePprof:    *enablePprof,
		BackendSlots:   *backendSlots,
		CAS:            store,
		CASSlots:       *casSlots,
		CASToken:       *casToken,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "cmod: serving on %s (max %d builds, queue %d)\n",
		ln.Addr(), *maxBuilds, *queueDepth)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "cmod: %v — draining\n", s)
	case <-srv.ShutdownRequested():
		fmt.Fprintln(os.Stderr, "cmod: shutdown requested — draining")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("%v", err)
		}
	}

	// Drain order: finish admitted builds and fsync sessions first,
	// then tear the listener down. New requests during the drain get a
	// clean 503 instead of a connection error, so health checks see
	// "draining", not "dead".
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "cmod: drain: %v\n", err)
		hs.Close()
		os.Exit(1)
	}
	hs.Close()
	fmt.Fprintln(os.Stderr, "cmod: drained, exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmod: "+format+"\n", args...)
	os.Exit(1)
}
