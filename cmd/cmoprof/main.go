// Command cmoprof inspects and manipulates profile databases.
//
//	cmoprof top [-n 20] prof.db          rank the hottest call sites
//	cmoprof dump prof.db                 print all records
//	cmoprof merge -o out.db a.db b.db    accumulate databases
//
// Good diagnostics about what the profile says — and therefore what
// the compiler will select — are a deployment requirement the paper
// calls out explicitly (section 6.2).
package main

import (
	"flag"
	"fmt"
	"os"

	"cmo/internal/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "top":
		cmdTop(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cmoprof top|dump|merge [flags] file.db...\n")
	os.Exit(2)
}

func load(path string) *profile.DB {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	db, err := profile.Load(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return db
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 20, "number of sites to show")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	db := load(fs.Arg(0))
	sites := db.RankedSites()
	fmt.Printf("%-24s %-8s %-4s %-24s %12s\n", "caller", "block", "seq", "callee", "count")
	for i, s := range sites {
		if i >= *n {
			break
		}
		fmt.Printf("%-24s b%-7d %-4d %-24s %12d\n", s.Key.Fn, s.Key.Block, s.Key.Seq, s.Key.Callee, s.Count)
	}
	fmt.Printf("(%d sites with counts)\n", len(sites))
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	db := load(fs.Arg(0))
	if err := db.Save(os.Stdout); err != nil {
		fatalf("%v", err)
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged.db", "output database")
	fs.Parse(args)
	if fs.NArg() < 1 {
		usage()
	}
	acc := profile.NewDB()
	for _, path := range fs.Args() {
		acc.Merge(load(path))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	if err := acc.Save(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmoprof: "+format+"\n", args...)
	os.Exit(1)
}
