// Command cmogen writes a synthetic MinC application to disk: the
// stand-in for the proprietary multi-million-line ISV programs the
// paper evaluated (see DESIGN.md section 2).
//
//	cmogen [-preset mcad1|mcad2|mcad3|gcc|small] [-dir out]
//	       [-modules n] [-hot n] [-cold n] [-stmts n] [-seed n]
//
// The output directory receives one .minc file per module plus an
// INPUTS file documenting the train/ref data sets (input0/input1
// values) for cmorun.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cmo/internal/workload"
)

func preset(name string) (workload.Spec, error) {
	switch name {
	case "small":
		return workload.Spec{
			Name: "small", Seed: 1,
			Modules: 4, HotPerModule: 2, ColdPerModule: 4, ColdStmts: 10,
			TrainIters: 300, RefIters: 1500, TrainMode: 2, RefMode: 4,
		}, nil
	case "gcc":
		return workload.Spec{
			Name: "gcc", Seed: 103,
			Modules: 12, HotPerModule: 3, ColdPerModule: 10, ColdStmts: 18,
			TrainIters: 500, RefIters: 1400, TrainMode: 2, RefMode: 4,
		}, nil
	case "mcad1":
		return workload.Spec{
			Name: "Mcad1", Seed: 201,
			Modules: 48, HotPerModule: 3, ColdPerModule: 14, ColdStmts: 26,
			ArrayElems: 128, TrainIters: 130, RefIters: 400, TrainMode: 2, RefMode: 4,
		}, nil
	case "mcad2":
		return workload.Spec{
			Name: "Mcad2", Seed: 202,
			Modules: 64, HotPerModule: 3, ColdPerModule: 16, ColdStmts: 24,
			ArrayElems: 128, TrainIters: 100, RefIters: 300, TrainMode: 2, RefMode: 4,
		}, nil
	case "mcad3":
		return workload.Spec{
			Name: "Mcad3", Seed: 203,
			Modules: 80, HotPerModule: 3, ColdPerModule: 16, ColdStmts: 28,
			ArrayElems: 128, TrainIters: 80, RefIters: 240, TrainMode: 2, RefMode: 4,
		}, nil
	case "":
		return workload.Spec{}, nil
	}
	return workload.Spec{}, fmt.Errorf("unknown preset %q", name)
}

func main() {
	presetName := flag.String("preset", "", "preset: small, gcc, mcad1, mcad2, mcad3")
	dir := flag.String("dir", "app", "output directory")
	modules := flag.Int("modules", 0, "override module count")
	hot := flag.Int("hot", 0, "override hot functions per module")
	cold := flag.Int("cold", 0, "override cold functions per module")
	stmts := flag.Int("stmts", 0, "override statements per cold function")
	seed := flag.Int64("seed", 0, "override generator seed")
	flag.Parse()

	spec, err := preset(*presetName)
	if err != nil {
		fatalf("%v", err)
	}
	if *presetName == "" {
		spec = workload.Spec{
			Name: "app", Seed: 1,
			Modules: 8, HotPerModule: 2, ColdPerModule: 6, ColdStmts: 12,
			TrainIters: 300, RefIters: 1200, TrainMode: 2, RefMode: 4,
		}
	}
	if *modules > 0 {
		spec.Modules = *modules
	}
	if *hot > 0 {
		spec.HotPerModule = *hot
	}
	if *cold > 0 {
		spec.ColdPerModule = *cold
	}
	if *stmts > 0 {
		spec.ColdStmts = *stmts
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatalf("%v", err)
	}
	mods := spec.Generate()
	totalLines := 0
	for _, m := range mods {
		path := filepath.Join(*dir, m.Name+".minc")
		if err := os.WriteFile(path, []byte(m.Text), 0o644); err != nil {
			fatalf("%v", err)
		}
		for _, c := range m.Text {
			if c == '\n' {
				totalLines++
			}
		}
	}
	inputs := fmt.Sprintf(
		"# Data sets for this application (pass with cmorun -set).\n"+
			"# volatile globals: input0 input1\n"+
			"train: input0=%d input1=%d\n"+
			"ref:   input0=%d input1=%d\n",
		spec.Train().Iters, spec.Train().Mode, spec.Ref().Iters, spec.Ref().Mode)
	if err := os.WriteFile(filepath.Join(*dir, "INPUTS"), []byte(inputs), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cmogen: wrote %d modules (%d lines) to %s\n", len(mods), totalLines, *dir)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmogen: "+format+"\n", args...)
	os.Exit(1)
}
