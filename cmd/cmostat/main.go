// Command cmostat inspects a running cmod daemon: a one-screen fleet
// summary from the telemetry endpoints, the recent build ledger, and
// per-build trace download.
//
//	cmostat [-addr host:port]                     one-screen summary
//	cmostat [-addr host:port] builds [-n count]   recent ledger records
//	cmostat [-addr host:port] trace <id> [-o f]   Chrome trace JSON
//
// The summary is assembled client-side from GET /status, GET /metrics
// (Prometheus text, parsed with internal/promtext), and GET /builds —
// cmostat needs nothing the daemon does not already serve to any
// scraper, so it works against any cmod it can reach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cmo/internal/promtext"
	"cmo/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "daemon address")
	flag.Usage = usage
	flag.Parse()
	base := "http://" + *addr

	args := flag.Args()
	var err error
	switch {
	case len(args) == 0:
		err = summary(base)
	case args[0] == "builds":
		fs := flag.NewFlagSet("builds", flag.ExitOnError)
		n := fs.Int("n", 20, "records to show")
		_ = fs.Parse(args[1:])
		err = builds(base, *n)
	case args[0] == "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		// Accept the id before or after -o: flag parsing stops at the
		// first positional, so lift a leading id out first.
		rest := args[1:]
		id := ""
		if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			id, rest = rest[0], rest[1:]
		}
		_ = fs.Parse(rest)
		switch {
		case id == "" && fs.NArg() == 1:
			id = fs.Arg(0)
		case id != "" && fs.NArg() == 0:
			// id came before the flags
		default:
			fatalf("usage: cmostat trace <build-id> [-o file]")
		}
		err = trace(base, id, *out)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cmostat [-addr host:port] [command]

commands:
  (none)              one-screen fleet summary
  builds [-n count]   recent build ledger records
  trace <id> [-o f]   download a build's Chrome trace JSON
`)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmostat: "+format+"\n", args...)
	os.Exit(1)
}

func get(url string) ([]byte, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %.200s", url, resp.StatusCode, body)
	}
	return body, nil
}

// summary is the one-screen fleet view: identity, load, outcome
// totals, latency quantiles, per-stage medians, cache effectiveness,
// and the last few builds.
func summary(base string) error {
	stBody, err := get(base + "/status")
	if err != nil {
		return err
	}
	var st serve.StatusResponse
	if err := json.Unmarshal(stBody, &st); err != nil {
		return fmt.Errorf("decoding /status: %v", err)
	}
	mBody, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	m, err := promtext.Parse(strings.NewReader(string(mBody)))
	if err != nil {
		return fmt.Errorf("parsing /metrics: %v", err)
	}

	fmt.Printf("cmod %s (%s) pid %d — up %s\n",
		st.Daemon.Version, st.Daemon.GoVersion, st.Daemon.PID,
		(time.Duration(st.Daemon.UptimeSec * float64(time.Second))).Round(time.Second))
	state := "serving"
	if st.Draining {
		state = "draining"
	}
	fmt.Printf("%s: %d active, %d queued (max %d builds, queue cap %d, job budget %d)\n",
		state, st.Active, st.Queued, st.MaxBuilds, st.QueueCap, st.JobBudget)

	// Outcome totals (includes replayed history).
	if f := m["cmod_builds_total"]; f != nil {
		var parts []string
		var total float64
		samples := append([]promtext.Sample(nil), f.Samples...)
		sort.Slice(samples, func(i, j int) bool {
			return samples[i].Label("outcome") < samples[j].Label("outcome")
		})
		for _, s := range samples {
			total += s.Value
			parts = append(parts, fmt.Sprintf("%s %.0f", s.Label("outcome"), s.Value))
		}
		replayed, _ := m.Value("cmod_ledger_replayed_total")
		fmt.Printf("builds: %.0f total (%s; %.0f replayed from ledger)\n",
			total, strings.Join(parts, ", "), replayed)
	}

	// Latency distribution of completed builds.
	if bs := m.HistogramBuckets("cmod_build_duration_seconds", "", ""); len(bs) > 0 {
		sum, count := m.SumCount("cmod_build_duration_seconds", "", "")
		if count > 0 {
			fmt.Printf("latency: mean %s, p50 %s, p90 %s, p99 %s (n=%.0f)\n",
				ms(sum/count), ms(promtext.Quantile(0.5, bs)),
				ms(promtext.Quantile(0.9, bs)), ms(promtext.Quantile(0.99, bs)), count)
		}
	}
	if bs := m.HistogramBuckets("cmod_build_queue_seconds", "", ""); len(bs) > 0 {
		if _, count := m.SumCount("cmod_build_queue_seconds", "", ""); count > 0 {
			fmt.Printf("queue wait: p50 %s, p99 %s\n",
				ms(promtext.Quantile(0.5, bs)), ms(promtext.Quantile(0.99, bs)))
		}
	}

	// Stage medians, in pipeline order.
	var stageParts []string
	for _, stage := range []string{"frontend", "select", "ipa", "hlo", "llo", "link", "verify"} {
		bs := m.HistogramBuckets("cmod_build_stage_seconds", "stage", stage)
		if _, count := m.SumCount("cmod_build_stage_seconds", "stage", stage); count > 0 {
			stageParts = append(stageParts,
				fmt.Sprintf("%s %s", stage, ms(promtext.Quantile(0.5, bs))))
		}
	}
	if len(stageParts) > 0 {
		fmt.Printf("stage p50: %s\n", strings.Join(stageParts, ", "))
	}

	// Cache effectiveness: mean per-build hit ratios.
	var cacheParts []string
	for _, c := range []struct{ name, label string }{
		{"cmod_build_frontend_hit_ratio", "frontend"},
		{"cmod_build_hlo_hit_ratio", "hlo"},
		{"cmod_build_llo_hit_ratio", "llo"},
	} {
		if sum, count := m.SumCount(c.name, "", ""); count > 0 {
			cacheParts = append(cacheParts, fmt.Sprintf("%s %.0f%%", c.label, 100*sum/count))
		}
	}
	if len(cacheParts) > 0 {
		fmt.Printf("cache hit ratio (mean/build): %s\n", strings.Join(cacheParts, ", "))
	}

	// Dependency graph: live size gauges plus incremental-build shape.
	if nodes, ok := m.Value("cmod_graph_nodes"); ok && nodes > 0 {
		edges, _ := m.Value("cmod_graph_edges")
		line := fmt.Sprintf("graph: %.0f nodes, %.0f edges", nodes, edges)
		if replays, ok := m.Value("cmod_image_replays_total"); ok && replays > 0 {
			line += fmt.Sprintf(", %.0f image replays", replays)
		}
		if bs := m.HistogramBuckets("cmod_build_dirty_closure", "", ""); len(bs) > 0 {
			if _, count := m.SumCount("cmod_build_dirty_closure", "", ""); count > 0 {
				line += fmt.Sprintf(", dirty closure p50 %.0f", promtext.Quantile(0.5, bs))
			}
		}
		if bs := m.HistogramBuckets("cmod_build_critical_path_seconds", "", ""); len(bs) > 0 {
			if _, count := m.SumCount("cmod_build_critical_path_seconds", "", ""); count > 0 {
				line += fmt.Sprintf(", critical path p50 %s", ms(promtext.Quantile(0.5, bs)))
			}
		}
		if bs := m.HistogramBuckets("cmod_build_frontier_depth", "", ""); len(bs) > 0 {
			if _, count := m.SumCount("cmod_build_frontier_depth", "", ""); count > 0 {
				line += fmt.Sprintf(", frontier p50 %.0f", promtext.Quantile(0.5, bs))
			}
		}
		fmt.Println(line)
	}
	// Partitioned backend: how recorded builds' partitions were
	// satisfied, and this daemon's own /backend worker service.
	if f := m["cmod_build_partitions_total"]; f != nil {
		var parts []string
		var total float64
		samples := append([]promtext.Sample(nil), f.Samples...)
		sort.Slice(samples, func(i, j int) bool {
			return samples[i].Label("mode") < samples[j].Label("mode")
		})
		for _, s := range samples {
			if s.Label("mode") != "retry" {
				total += s.Value
			}
			if s.Value > 0 {
				parts = append(parts, fmt.Sprintf("%s %.0f", s.Label("mode"), s.Value))
			}
		}
		if total > 0 {
			fmt.Printf("partitions: %.0f across builds (%s)\n", total, strings.Join(parts, ", "))
		}
	}
	if f := m["cmod_partitions_total"]; f != nil {
		var parts []string
		var total float64
		samples := append([]promtext.Sample(nil), f.Samples...)
		sort.Slice(samples, func(i, j int) bool {
			return samples[i].Label("result") < samples[j].Label("result")
		})
		for _, s := range samples {
			total += s.Value
			if s.Value > 0 {
				parts = append(parts, fmt.Sprintf("%s %.0f", s.Label("result"), s.Value))
			}
		}
		if total > 0 {
			line := fmt.Sprintf("worker: %.0f partitions served (%s)", total, strings.Join(parts, ", "))
			if bs := m.HistogramBuckets("cmod_partition_seconds", "", ""); len(bs) > 0 {
				if _, count := m.SumCount("cmod_partition_seconds", "", ""); count > 0 {
					line += fmt.Sprintf(", p50 %s", ms(promtext.Quantile(0.5, bs)))
				}
			}
			fmt.Println(line)
		}
	}
	// Shared artifact cache (/cas/, daemons started with -cas-dir):
	// population against the cap, then traffic. Daemons without a
	// cache store export none of these and keep the line out.
	if blobs, ok := m.Value("cmod_cas_blobs"); ok {
		bytesLive, _ := m.Value("cmod_cas_bytes")
		capBytes, _ := m.Value("cmod_cas_max_bytes")
		line := fmt.Sprintf("cas: %.0f blobs, %.0f bytes", blobs, bytesLive)
		if capBytes > 0 {
			line += fmt.Sprintf(" (%.1f%% of cap)", 100*bytesLive/capBytes)
		}
		hits, _ := m.Value("cmod_cas_hits_total")
		misses, _ := m.Value("cmod_cas_misses_total")
		if hits+misses > 0 {
			line += fmt.Sprintf(" — %.0f hits, %.0f misses (%.0f%% hit rate)",
				hits, misses, 100*hits/(hits+misses))
		}
		if puts, _ := m.Value("cmod_cas_puts_total"); puts > 0 {
			line += fmt.Sprintf(", %.0f puts", puts)
		}
		if ev, _ := m.Value("cmod_cas_evictions_total"); ev > 0 {
			line += fmt.Sprintf(", %.0f evictions", ev)
		}
		fmt.Println(line)
	}
	if v, ok := m.Value("cmod_commit_backlog_bytes"); ok && v > 0 {
		fmt.Printf("commit backlog: %.0f bytes uncommitted\n", v)
	}

	fmt.Printf("sessions: %d open\n", len(st.Sessions))
	for _, s := range st.Sessions {
		fmt.Printf("  %s — %d builds, %d commits\n", s.CacheDir, s.Builds, s.Commits)
	}

	// The last few builds, newest first.
	bBody, err := get(base + "/builds?limit=5")
	if err != nil {
		return err
	}
	var list serve.BuildsResponse
	if err := json.Unmarshal(bBody, &list); err != nil {
		return fmt.Errorf("decoding /builds: %v", err)
	}
	if list.Count > 0 {
		fmt.Println("recent builds:")
		printRecords(list.Builds)
	}
	return nil
}

func builds(base string, n int) error {
	body, err := get(fmt.Sprintf("%s/builds?limit=%d", base, n))
	if err != nil {
		return err
	}
	var list serve.BuildsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		return fmt.Errorf("decoding /builds: %v", err)
	}
	if list.Count == 0 {
		fmt.Println("no build records")
		return nil
	}
	printRecords(list.Builds)
	return nil
}

func printRecords(recs []serve.BuildRecord) {
	fmt.Printf("  %-22s %-8s %-8s %9s %9s %7s %s\n",
		"id", "time", "outcome", "total", "queue", "mods", "options")
	for _, r := range recs {
		fmt.Printf("  %-22s %-8s %-8s %9s %9s %7d %s\n",
			r.ID, time.UnixMilli(r.UnixMillis).Format("15:04:05"), r.Outcome,
			ms(float64(r.TotalNanos)/1e9), ms(float64(r.QueueNanos)/1e9),
			r.Modules, r.OptionsFP)
	}
}

// trace downloads one build's Chrome trace-event JSON.
func trace(base, id, out string) error {
	body, err := get(base + "/builds/" + id + "/trace")
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(body)
		return err
	}
	if err := os.WriteFile(out, body, 0o666); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cmostat: wrote %s (%d bytes) — open in chrome://tracing or Perfetto\n", out, len(body))
	return nil
}

// ms renders seconds as human milliseconds.
func ms(sec float64) string {
	return fmt.Sprintf("%.1fms", sec*1e3)
}
