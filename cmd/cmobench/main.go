// Command cmobench regenerates the paper's evaluation: Figure 1
// (benchmark speedups), Figure 4 (memory scaling), Figure 5 (the NAIM
// time/space dial), Figure 6 (the selectivity sweep), the section-8
// memory-per-line history, and the design-decision ablations.
//
//	cmobench [-scale f] [-fig 1|4|5|6|hist|ablation|parallel|incremental|ipa|graph|distributed|cas|all]
//	         [-o report.txt] [-metrics metrics.json] [-json BENCH_*.json] [-v]
//
// -metrics aggregates spans and counters across every build the
// selected experiments run and writes them as machine-readable JSON
// (obs.WriteMetrics), so benchmark records can carry per-phase
// timings alongside the rendered figures.
//
// -json runs the parallel-pipeline sweep (Options.Jobs over 1/2/4/8)
// and writes its speedup record to the given file (conventionally
// BENCH_parallel.json), so the parallelism trajectory is tracked
// commit over commit. With -fig incremental it instead writes the
// cold-vs-warm rebuild record (conventionally BENCH_incremental.json),
// with -fig ipa the MOD/REF ablation record (BENCH_ipa.json), with
// -fig graph the dependency-graph sweep (BENCH_graph.json), with
// -fig distributed the partitioned-backend worker sweep
// (BENCH_distributed.json), and with -fig cas the shared-cache-service
// sweep (BENCH_cas.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cmo/internal/experiments"
	"cmo/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (module-count multiplier)")
	fig := flag.String("fig", "all", "which experiment: 1, 4, 5, 6, hist, ablation, parallel, incremental, ipa, graph, distributed, cas, all")
	out := flag.String("o", "", "write the report to a file as well as stdout")
	metrics := flag.String("metrics", "", "write an aggregated metrics JSON snapshot (spans + counters) to this file")
	benchJSON := flag.String("json", "", "run the Jobs sweep and write its speedup record (BENCH_parallel.json) to this file")
	verbose := flag.Bool("v", false, "stream per-step progress to stderr")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale}
	if *verbose {
		cfg.Log = os.Stderr
	}
	if *metrics != "" {
		cfg.Trace = obs.NewTrace()
	}

	var report strings.Builder
	emit := func(s string) {
		report.WriteString(s)
		report.WriteString("\n")
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("1") {
		rows, err := experiments.Figure1(cfg)
		if err != nil {
			fatalf("figure 1: %v", err)
		}
		emit(experiments.RenderFigure1(rows))
	}
	if want("4") {
		points, err := experiments.Figure4(cfg)
		if err != nil {
			fatalf("figure 4: %v", err)
		}
		emit(experiments.RenderFigure4(points))
	}
	if want("5") {
		points, err := experiments.Figure5(cfg)
		if err != nil {
			fatalf("figure 5: %v", err)
		}
		emit(experiments.RenderFigure5(points))
	}
	if want("6") {
		points, err := experiments.Figure6(cfg)
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		emit(experiments.RenderFigure6(points))
	}
	if want("hist") {
		rows, err := experiments.TableHistory(cfg)
		if err != nil {
			fatalf("history: %v", err)
		}
		emit(experiments.RenderHistory(rows))
	}
	if want("parallel") || (*benchJSON != "" && *fig != "incremental" && *fig != "ipa" && *fig != "graph" && *fig != "distributed" && *fig != "cas") {
		rec, err := experiments.Parallel(cfg)
		if err != nil {
			fatalf("parallel: %v", err)
		}
		if want("parallel") {
			emit(experiments.RenderParallel(rec))
		}
		if *benchJSON != "" && *fig != "incremental" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteParallelJSON(w, rec)
			})
		}
	}
	if want("incremental") {
		rec, err := experiments.Incremental(cfg)
		if err != nil {
			fatalf("incremental: %v", err)
		}
		emit(experiments.RenderIncremental(rec))
		if *benchJSON != "" && *fig == "incremental" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteIncrementalJSON(w, rec)
			})
		}
	}
	if want("ipa") {
		rec, err := experiments.IPA(cfg)
		if err != nil {
			fatalf("ipa: %v", err)
		}
		emit(experiments.RenderIPA(rec))
		if *benchJSON != "" && *fig == "ipa" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteIPAJSON(w, rec)
			})
		}
	}
	if want("graph") {
		rec, err := experiments.Graph(cfg)
		if err != nil {
			fatalf("graph: %v", err)
		}
		emit(experiments.RenderGraph(rec))
		if *benchJSON != "" && *fig == "graph" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteGraphJSON(w, rec)
			})
		}
	}
	if want("distributed") {
		rec, err := experiments.Distributed(cfg)
		if err != nil {
			fatalf("distributed: %v", err)
		}
		emit(experiments.RenderDistributed(rec))
		if *benchJSON != "" && *fig == "distributed" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteDistributedJSON(w, rec)
			})
		}
	}
	if want("cas") {
		rec, err := experiments.CAS(cfg)
		if err != nil {
			fatalf("cas: %v", err)
		}
		emit(experiments.RenderCAS(rec))
		if *benchJSON != "" && *fig == "cas" {
			writeJSON(*benchJSON, func(w io.Writer) error {
				return experiments.WriteCASJSON(w, rec)
			})
		}
	}
	if want("ablation") {
		rs, err := experiments.Ablations(cfg)
		if err != nil {
			fatalf("ablations: %v", err)
		}
		emit(experiments.RenderAblations(rs))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	fmt.Fprint(w, report.String())

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatalf("%v", err)
		}
		if err := cfg.Trace.WriteMetrics(f); err != nil {
			f.Close()
			fatalf("writing %s: %v", *metrics, err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing %s: %v", *metrics, err)
		}
	}
}

func writeJSON(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmobench: "+format+"\n", args...)
	os.Exit(1)
}
