package cmo

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/profile"
)

// The pipeline coordinator. Each build runs the same named stages in
// order — frontend → select → HLO → LLO → link — with every stage in
// its own stage_*.go file taking the loader, the options, and its obs
// span. The coordinator owns what the stages must agree on: defaults,
// the NAIM loader's lifetime, inter-stage verification, and the final
// stats snapshot. A Session threads a persistent artifact repository
// under the stages; without one the pipeline behaves exactly as a
// cold build.

// BuildSource compiles a set of MinC modules into an executable VPA
// image according to the options.
//
// Phase timing is span-derived: one "build" root span covers the whole
// call; "frontend" covers parse/check/lower, and the optimize/link
// phases nest under the same root inside buildIL. Each BuildStats
// duration is the duration of exactly one span, measured from a single
// captured start timestamp, so FrontendNanos + HLONanos + LLONanos +
// LinkNanos can never exceed TotalNanos (the old subtraction scheme
// read the clock twice and broke that invariant).
func BuildSource(mods []SourceModule, opt Options) (*Build, error) {
	sess := opt.Session
	if sess == nil && opt.CacheDir != "" {
		var err error
		sess, err = OpenSession(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
	}
	root := opt.Trace.StartSpan("build")
	fe := root.Child("frontend")
	res, feHits, feMisses, err := runFrontend(mods, opt, sess, fe)
	if err != nil {
		return nil, err
	}
	feNanos := fe.End()
	b, err := buildIL(res.Prog, res.Funcs, opt, sess, root)
	if err != nil {
		return nil, err
	}
	b.Stats.FrontendNanos = feNanos
	b.Stats.CacheFrontendHits = feHits
	b.Stats.CacheFrontendMisses = feMisses
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// BuildIL compiles an already-lowered program (from BuildSource's
// frontend, or from IL-carrying object files merged by the linker —
// the paper's CMO-at-link-time entry point). The frontend artifact
// cache does not apply (there is no source to fingerprint), but a
// Session still provides HLO replay and the shared repository.
func BuildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options) (*Build, error) {
	sess := opt.Session
	if sess == nil && opt.CacheDir != "" {
		var err error
		sess, err = OpenSession(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
	}
	root := opt.Trace.StartSpan("build")
	b, err := buildIL(prog, fns, opt, sess, root)
	if err != nil {
		return nil, err
	}
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// buildIL is the shared optimize-compile-link pipeline; phase spans
// nest under parent, and the loader's trace scope tracks the phase the
// pipeline is in so NAIM activity nests where it happened.
func buildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options, sess *Session, parent obs.Span) (*Build, error) {
	if opt.Level == 0 {
		opt.Level = O2
	}
	if opt.Entry == "" {
		opt.Entry = "main"
	}
	if opt.PBO && opt.DB == nil {
		return nil, fmt.Errorf("cmo: PBO requested without a profile database")
	}

	b := &Build{Prog: prog, trace: opt.Trace}
	b.Stats.Level = opt.Level
	b.Stats.PBO = opt.PBO
	b.Stats.Modules = len(prog.Modules)
	for _, m := range prog.Modules {
		b.Stats.TotalLines += m.Lines
	}

	if opt.DB != nil {
		opt.DB.Apply(fns)
	}
	var probeMap *profile.Map
	if opt.Instrument {
		fns, probeMap = profile.Instrument(prog, fns)
		b.ProbeMap = probeMap
	}

	// Hand all transitory pools to the NAIM loader. A connected session
	// lends the loader its repository, so spilled pools and cached
	// artifacts share one durable store.
	if sess.connected() && opt.NAIM.Repo == nil {
		opt.NAIM.Repo = sess.Repo()
	}
	loader := naim.NewLoader(prog, opt.NAIM)
	defer loader.Close()
	loader.SetTraceScope(parent)
	for _, pid := range prog.FuncPIDs() {
		loader.InstallFunc(fns[pid])
	}
	b.Stats.Functions = len(prog.FuncPIDs())

	// Baseline check: the frontend's IL must be clean before any
	// transform touches it, or every later failure would be blamed on
	// the wrong stage.
	if err := b.verifyStage(loader, opt, "frontend", nil, parent); err != nil {
		return nil, err
	}

	volatile := make(map[il.PID]bool)
	for _, name := range opt.Volatile {
		if s := prog.Lookup(name); s != nil {
			volatile[s.PID] = true
		}
	}

	omit := make(map[il.PID]bool)
	switch {
	case opt.Instrument:
		// Instrumented builds skip HLO: probes measure the program
		// the frontend produced.
	case opt.Level >= O4:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLO(loader, opt, sess, volatile, omit, hsp); err != nil {
			return nil, err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	case opt.Level == O3:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLOPerModule(loader, opt, volatile, omit, hsp); err != nil {
			return nil, err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	}

	// LLO: compile every surviving function.
	lsp := parent.Child("llo")
	loader.SetTraceScope(lsp)
	code, err := b.runLLO(loader, opt, omit, lsp)
	if err != nil {
		return nil, err
	}
	b.Stats.LLONanos = lsp.End()
	loader.SetTraceScope(parent)

	// Link: assemble the image.
	ksp := parent.Child("link")
	img, err := b.runLink(opt, probeMap, omit, code, ksp)
	if err != nil {
		return nil, err
	}
	b.Stats.LinkNanos = ksp.End()
	// Let queued repository spills land before the final stats
	// snapshot so disk-write figures reflect the repository, not the
	// writeback queue.
	loader.Flush()
	// Post-link consistency: the surviving IL, with the dead set
	// omitted, must still verify — in particular no surviving routine
	// may reference one that dead-code elimination removed.
	if err := b.verifyStage(loader, opt, "link", omit, parent); err != nil {
		return nil, err
	}
	// Every stage has returned its checkouts by now; a pin that
	// survives UnloadAll is a leak some stage must answer for.
	b.Stats.PinLeaks = loader.UnloadAll()
	if opt.Trace != nil {
		opt.Trace.Counter("naim.pin_leaks").Add(int64(b.Stats.PinLeaks))
	}
	b.Image = img
	b.Stats.CodeBytes = img.CodeBytes()
	b.Stats.NAIM = loader.Stats()
	b.Stats.NAIMLevel = loader.Level()
	b.Stats.CompilerPeakBytes = b.Stats.NAIM.PeakBytes + b.Stats.LLOPeakBytes
	return b, nil
}
