package cmo

import (
	"fmt"

	"cmo/internal/cas"
	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/profile"
)

// The pipeline coordinator. Each build runs the same named stages in
// order — frontend → select → HLO → LLO → link — with every stage in
// its own stage_*.go file taking the loader, the options, and its obs
// span. The coordinator owns what the stages must agree on: defaults,
// the NAIM loader's lifetime, inter-stage verification, cancellation,
// and the final stats snapshot. A Session threads a persistent
// artifact repository under the stages; without one the pipeline
// behaves exactly as a cold build.
//
// Cancellation (Options.Context) is cooperative: the coordinator
// checks at every stage boundary and each stage checks at its own
// per-module or per-function granularity, always *between* checkouts —
// a stage never abandons a pinned NAIM body, so an aborted build
// unwinds with zero pin leaks (the error path below proves it with
// UnloadAll).

// ctxErr reports the options context's error, nil when no context was
// supplied or it is still live. Stages call this at loop granularity;
// it is one atomic load on the live path.
func (opt *Options) ctxErr() error {
	if opt.Context == nil {
		return nil
	}
	return opt.Context.Err()
}

// BuildSource compiles a set of MinC modules into an executable VPA
// image according to the options.
//
// Phase timing is span-derived: one "build" root span covers the whole
// call; "frontend" covers parse/check/lower, and the optimize/link
// phases nest under the same root inside buildIL. Each BuildStats
// duration is the duration of exactly one span, measured from a single
// captured start timestamp, so FrontendNanos + HLONanos + LLONanos +
// LinkNanos can never exceed TotalNanos (the old subtraction scheme
// read the clock twice and broke that invariant).
func BuildSource(mods []SourceModule, opt Options) (*Build, error) {
	sess := opt.Session
	if sess == nil && opt.CacheDir != "" {
		var err error
		sess, err = OpenSession(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		if opt.RemoteCache != "" && sess.connected() {
			// The remote third level belongs to sessions this call owns;
			// a caller-provided Session attaches its own client. Close
			// runs before sess.Close (LIFO), draining the write-back
			// backlog so one-shot builds actually warm the shared cache.
			rc := cas.NewClient(opt.RemoteCache, cas.ClientConfig{
				Namespace: opt.RemoteNamespace,
				Timeout:   opt.RemoteCacheTimeout,
				Token:     opt.RemoteCacheToken,
			})
			sess.AttachRemote(rc)
			defer rc.Close()
		}
	}
	// Normalize the defaults the graph plan fingerprints; buildIL
	// re-applies the same normalization, and both are idempotent.
	if opt.Level == 0 {
		opt.Level = O2
	}
	if opt.Entry == "" {
		opt.Entry = "main"
	}
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}
	root := opt.Trace.StartSpan("build")
	rc0 := sess.remoteStats()
	// Graph-scheduled sessions hash only the leaf inputs and push
	// dirtiness through the persisted closure. A clean closure is the
	// warm-noop fast path: the image replays from the repository with
	// zero stage work. Reuse stays gated by content keys — any
	// mismatch falls through to the full pipeline below.
	gp := planGraph(sess, mods, opt)
	if gp != nil {
		if b := gp.tryReplayImage(sess, mods, opt); b != nil {
			b.Stats.setRemote(sess.remoteStats().Sub(rc0))
			b.Stats.TotalNanos = root.End()
			return b, nil
		}
	}
	fe := root.Child("frontend")
	res, feHits, feMisses, err := runFrontend(mods, opt, sess, gp, fe)
	if err != nil {
		return nil, err
	}
	feNanos := fe.End()
	b, err := buildIL(res.Prog, res.Funcs, opt, sess, gp, root)
	if err != nil {
		return nil, err
	}
	b.Stats.FrontendNanos = feNanos
	b.Stats.CacheFrontendHits = feHits
	b.Stats.CacheFrontendMisses = feMisses
	if gp != nil {
		// The build's delta lands in the graph log only on success, so
		// the graph never describes artifacts a failed build left
		// half-made. Durability arrives with the session commit.
		gp.commit(&b.Stats, opt)
	}
	b.Stats.setRemote(sess.remoteStats().Sub(rc0))
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// setRemote folds one build's remote-cache traffic delta into the
// stats block.
func (s *BuildStats) setRemote(d cas.ClientStats) {
	s.CacheRemoteHits = int(d.Hits)
	s.CacheRemoteMisses = int(d.Misses)
	s.CacheRemoteStores = int(d.Stores)
	s.CacheRemoteDrops = int(d.StoreDrops)
	s.CacheRemoteErrors = int(d.Errors)
}

// BuildIL compiles an already-lowered program (from BuildSource's
// frontend, or from IL-carrying object files merged by the linker —
// the paper's CMO-at-link-time entry point). The frontend artifact
// cache does not apply (there is no source to fingerprint), but a
// Session still provides HLO replay and the shared repository.
func BuildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options) (*Build, error) {
	sess := opt.Session
	if sess == nil && opt.CacheDir != "" {
		var err error
		sess, err = OpenSession(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		if opt.RemoteCache != "" && sess.connected() {
			rc := cas.NewClient(opt.RemoteCache, cas.ClientConfig{
				Namespace: opt.RemoteNamespace,
				Timeout:   opt.RemoteCacheTimeout,
				Token:     opt.RemoteCacheToken,
			})
			sess.AttachRemote(rc)
			defer rc.Close()
		}
	}
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}
	root := opt.Trace.StartSpan("build")
	rc0 := sess.remoteStats()
	b, err := buildIL(prog, fns, opt, sess, nil, root)
	if err != nil {
		return nil, err
	}
	b.Stats.setRemote(sess.remoteStats().Sub(rc0))
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// buildIL is the shared optimize-compile-link pipeline; phase spans
// nest under parent, and the loader's trace scope tracks the phase the
// pipeline is in so NAIM activity nests where it happened.
func buildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options, sess *Session, gp *graphPlan, parent obs.Span) (*Build, error) {
	if opt.Level == 0 {
		opt.Level = O2
	}
	if opt.Entry == "" {
		opt.Entry = "main"
	}
	if opt.PBO && opt.DB == nil {
		return nil, fmt.Errorf("cmo: PBO requested without a profile database")
	}

	b := &Build{Prog: prog, gp: gp, trace: opt.Trace}
	b.Stats.Level = opt.Level
	b.Stats.PBO = opt.PBO
	b.Stats.Modules = len(prog.Modules)
	for _, m := range prog.Modules {
		b.Stats.TotalLines += m.Lines
	}

	if opt.DB != nil {
		opt.DB.Apply(fns)
	}
	var probeMap *profile.Map
	if opt.Instrument {
		fns, probeMap = profile.Instrument(prog, fns)
		b.ProbeMap = probeMap
	}
	if gp != nil {
		// Record the function-level call topology from the pre-HLO
		// bodies: inlining consumes call sites, and a consumed site is
		// exactly a dependency the compiled object keeps.
		gp.noteFuncs(prog, fns)
	}

	// Hand all transitory pools to the NAIM loader. A connected session
	// lends the loader its repository, so spilled pools and cached
	// artifacts share one durable store. A build context's done channel
	// reaches the loader too, so its blocking wait paths (writeback
	// backpressure) unblock on cancellation.
	if sess.connected() && opt.NAIM.Repo == nil {
		opt.NAIM.Repo = sess.Repo()
	}
	if opt.Context != nil && opt.NAIM.Done == nil {
		opt.NAIM.Done = opt.Context.Done()
	}
	loader := naim.NewLoader(prog, opt.NAIM)
	defer loader.Close()
	loader.SetTraceScope(parent)
	for _, pid := range prog.FuncPIDs() {
		loader.InstallFunc(fns[pid])
	}
	b.Stats.Functions = len(prog.FuncPIDs())

	if err := b.runStages(loader, opt, sess, probeMap, parent); err != nil {
		// An aborted build (cancellation, verification failure, any
		// stage error) must not leave checkouts behind: every stage
		// releases its pins before returning an error, and UnloadAll
		// proves it. A nonzero count here is a pipeline bug, surfaced
		// on the error rather than silently dropped.
		if n := loader.UnloadAll(); n > 0 {
			err = fmt.Errorf("%w (and %d NAIM pools left pinned by the aborted stage)", err, n)
		}
		return nil, err
	}
	return b, nil
}

// runStages drives the verified stage sequence — baseline check, HLO,
// LLO, link, post-link check — over an installed loader, filling in
// the build's image and stats. Splitting it from buildIL gives the
// coordinator one place to audit the loader after any failure.
func (b *Build) runStages(loader *naim.Loader, opt Options, sess *Session, probeMap *profile.Map, parent obs.Span) error {
	prog := b.Prog

	// Baseline check: the frontend's IL must be clean before any
	// transform touches it, or every later failure would be blamed on
	// the wrong stage.
	if err := b.verifyStage(loader, opt, "frontend", nil, parent); err != nil {
		return err
	}

	volatile := make(map[il.PID]bool)
	for _, name := range opt.Volatile {
		if s := prog.Lookup(name); s != nil {
			volatile[s.PID] = true
		}
	}

	omit := make(map[il.PID]bool)
	if err := opt.ctxErr(); err != nil {
		return err
	}
	switch {
	case opt.Instrument:
		// Instrumented builds skip HLO: probes measure the program
		// the frontend produced.
	case opt.Level >= O4:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLO(loader, opt, sess, volatile, omit, hsp); err != nil {
			return err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	case opt.Level == O3:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLOPerModule(loader, opt, volatile, omit, hsp); err != nil {
			return err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	}

	// LLO: compile every surviving function.
	if err := opt.ctxErr(); err != nil {
		return err
	}
	lsp := parent.Child("llo")
	loader.SetTraceScope(lsp)
	code, err := b.runLLO(loader, opt, sess, omit, lsp)
	if err != nil {
		return err
	}
	b.Stats.LLONanos = lsp.End()
	loader.SetTraceScope(parent)

	// Link: assemble the image.
	if err := opt.ctxErr(); err != nil {
		return err
	}
	ksp := parent.Child("link")
	img, err := b.runLink(opt, probeMap, omit, code, ksp)
	if err != nil {
		return err
	}
	b.Stats.LinkNanos = ksp.End()
	// Let queued repository spills land before the final stats
	// snapshot so disk-write figures reflect the repository, not the
	// writeback queue.
	loader.Flush()
	// Post-link consistency: the surviving IL, with the dead set
	// omitted, must still verify — in particular no surviving routine
	// may reference one that dead-code elimination removed.
	if err := b.verifyStage(loader, opt, "link", omit, parent); err != nil {
		return err
	}
	if b.gp != nil {
		// The image verified: record the sink node and store the image
		// blob so the next clean warm open is a single repository read.
		b.gp.noteImage(sess, img, &b.Stats, b.Stats.LinkNanos)
	}
	// Every stage has returned its checkouts by now; a pin that
	// survives UnloadAll is a leak some stage must answer for.
	b.Stats.PinLeaks = loader.UnloadAll()
	if opt.Trace != nil {
		opt.Trace.Counter("naim.pin_leaks").Add(int64(b.Stats.PinLeaks))
	}
	b.Image = img
	b.Stats.CodeBytes = img.CodeBytes()
	b.Stats.NAIM = loader.Stats()
	b.Stats.NAIMLevel = loader.Level()
	b.Stats.CompilerPeakBytes = b.Stats.NAIM.PeakBytes + b.Stats.LLOPeakBytes
	return nil
}
