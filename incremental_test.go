package cmo

import (
	"fmt"
	"testing"

	"cmo/internal/analyze"
	"cmo/internal/obs"
	"cmo/internal/workload"
)

// The session's load-bearing invariant: a warm rebuild writes the same
// image bytes a cold build would, at every optimization level, whether
// nothing changed or one module out of many did. These tests drive the
// whole matrix through a real on-disk repository.

func incrSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "incr", Seed: seed,
		Modules: 8, HotPerModule: 2, ColdPerModule: 4, ColdStmts: 10,
		ArrayElems: 32,
		TrainIters: 40, RefIters: 100, TrainMode: 2, RefMode: 4,
	}
}

// editOne returns a copy of mods with a new (uncalled) function
// appended to module i — a semantic edit confined to one module.
func editOne(mods []SourceModule, i int) []SourceModule {
	out := append([]SourceModule(nil), mods...)
	out[i].Text += "\nfunc incr_edit_probe(x int) int { return x + 7; }\n"
	return out
}

func buildCached(t *testing.T, mods []SourceModule, opt Options, dir string) *Build {
	t.Helper()
	opt.CacheDir = dir
	opt.Volatile = workload.InputGlobals()
	b, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatalf("build %v: %v", opt.Level, err)
	}
	if b.Stats.PinLeaks != 0 {
		t.Fatalf("build %v leaked %d pins", opt.Level, b.Stats.PinLeaks)
	}
	return b
}

func TestIncrementalWarmRebuildByteIdentical(t *testing.T) {
	spec := incrSpec(29)
	mods := sources(spec)
	nmods := len(mods)
	if nmods < 8 {
		t.Fatalf("matrix needs >= 8 modules, got %d", nmods)
	}
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	configs := []Options{
		{Level: O1, Verify: analyze.Interproc},
		{Level: O2, Verify: analyze.Interproc},
		{Level: O3, Verify: analyze.Interproc},
		{Level: O4, SelectPercent: -1, Verify: analyze.Interproc},
		{Level: O4, PBO: true, DB: db, SelectPercent: 60, Verify: analyze.Interproc},
	}
	for _, opt := range configs {
		name := fmt.Sprintf("%v-sel%g-pbo%v", opt.Level, opt.SelectPercent, opt.PBO)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()

			cold := buildCached(t, mods, opt, dir)
			coldDis := cold.Image.Disasm()
			if cold.Stats.CacheFrontendHits != 0 || cold.Stats.CacheFrontendMisses != nmods {
				t.Fatalf("cold frontend: %d hits, %d misses; want 0, %d",
					cold.Stats.CacheFrontendHits, cold.Stats.CacheFrontendMisses, nmods)
			}

			// Warm no-op rebuild: every module replays, output identical.
			warm := buildCached(t, mods, opt, dir)
			if got := warm.Image.Disasm(); got != coldDis {
				t.Errorf("warm no-op rebuild differs from cold build")
			}
			if warm.Stats.CacheFrontendHits != nmods || warm.Stats.CacheFrontendMisses != 0 {
				t.Errorf("warm frontend: %d hits, %d misses; want %d, 0",
					warm.Stats.CacheFrontendHits, warm.Stats.CacheFrontendMisses, nmods)
			}
			if opt.Level == O4 && warm.Stats.CacheHLOMisses != 0 {
				t.Errorf("warm no-op rebuild recomputed %d HLO records", warm.Stats.CacheHLOMisses)
			}
			if opt.Level == O4 && warm.Stats.CacheHLOHits == 0 {
				t.Errorf("warm no-op rebuild replayed no HLO records")
			}

			// Edit one module; the warm rebuild must match a cold build
			// of the edited program and re-lower only the edited module.
			edited := editOne(mods, 1)
			coldEdit := buildCached(t, edited, opt, t.TempDir())
			tr := obs.NewTrace()
			wopt := opt
			wopt.Trace = tr
			warmEdit := buildCached(t, edited, wopt, dir)
			if warmEdit.Image.Disasm() != coldEdit.Image.Disasm() {
				t.Errorf("warm rebuild after 1-module edit differs from cold build of the edited program")
			}
			if warmEdit.Stats.CacheFrontendHits != nmods-1 || warmEdit.Stats.CacheFrontendMisses != 1 {
				t.Errorf("warm-edit frontend: %d hits, %d misses; want %d, 1",
					warmEdit.Stats.CacheFrontendHits, warmEdit.Stats.CacheFrontendMisses, nmods-1)
			}
			// The same figures must be visible as obs counters — the
			// contract the CI smoke job and -timing report rely on.
			if got := tr.Counter("session.frontend_hits").Value(); got != int64(nmods-1) {
				t.Errorf("obs session.frontend_hits = %d, want %d", got, nmods-1)
			}
			if got := tr.Counter("session.frontend_misses").Value(); got != 1 {
				t.Errorf("obs session.frontend_misses = %d, want 1", got)
			}
			if opt.Level == O4 {
				if got := tr.Counter("session.hlo_replay_hits").Value(); got != int64(warmEdit.Stats.CacheHLOHits) {
					t.Errorf("obs session.hlo_replay_hits = %d, want %d", got, warmEdit.Stats.CacheHLOHits)
				}
			}
		})
	}
}

// TestIncrementalSessionReuseAndRestart covers the two session
// lifetimes: one Session shared by successive in-process builds, and a
// repository reopened after a (simulated) process restart.
func TestIncrementalSessionReuseAndRestart(t *testing.T) {
	dir := t.TempDir()
	mods := sources(incrSpec(31))
	opt := Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()}

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt.Session = sess
	cold, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheFrontendHits != len(mods) {
		t.Errorf("shared session: %d frontend hits, want %d", warm.Stats.CacheFrontendHits, len(mods))
	}
	if warm.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("shared-session warm rebuild differs from cold build")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh session over the same directory must replay what
	// the closed one stored.
	opt.Session = nil
	opt.CacheDir = dir
	again, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheFrontendHits != len(mods) || again.Stats.CacheFrontendMisses != 0 {
		t.Errorf("after restart: %d hits, %d misses; want %d, 0",
			again.Stats.CacheFrontendHits, again.Stats.CacheFrontendMisses, len(mods))
	}
	if again.Stats.CacheHLOMisses != 0 {
		t.Errorf("after restart: %d HLO records recomputed", again.Stats.CacheHLOMisses)
	}
	if again.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("post-restart warm rebuild differs from cold build")
	}
}

// TestIncrementalCacheDirIgnoredWhenSessionSet pins the Options
// contract: an explicit Session wins over CacheDir.
func TestIncrementalCacheDirIgnoredWhenSessionSet(t *testing.T) {
	mods := []SourceModule{
		{Name: "a", Text: "module a;\nfunc id(x int) int { return x; }\n"},
		{Name: "b", Text: "module b;\nextern func id(x int) int;\nfunc main() int { return id(5); }\n"},
	}
	sess, err := OpenSession("") // disconnected
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b, err := BuildSource(mods, Options{
		Level: O2, Session: sess, CacheDir: t.TempDir(),
		Volatile: workload.InputGlobals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.CacheFrontendHits != 0 || b.Stats.CacheFrontendMisses != 0 {
		t.Errorf("disconnected session recorded cache traffic: %d hits, %d misses",
			b.Stats.CacheFrontendHits, b.Stats.CacheFrontendMisses)
	}
}
