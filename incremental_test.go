package cmo

import (
	"fmt"
	"testing"

	"cmo/internal/analyze"
	"cmo/internal/obs"
	"cmo/internal/workload"
)

// The session's load-bearing invariant: a warm rebuild writes the same
// image bytes a cold build would, at every optimization level, whether
// nothing changed or one module out of many did. These tests drive the
// whole matrix through a real on-disk repository.

func incrSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "incr", Seed: seed,
		Modules: 8, HotPerModule: 2, ColdPerModule: 4, ColdStmts: 10,
		ArrayElems: 32,
		TrainIters: 40, RefIters: 100, TrainMode: 2, RefMode: 4,
	}
}

// editOne returns a copy of mods with a new (uncalled) function
// appended to module i — a semantic edit confined to one module.
func editOne(mods []SourceModule, i int) []SourceModule {
	out := append([]SourceModule(nil), mods...)
	out[i].Text += "\nfunc incr_edit_probe(x int) int { return x + 7; }\n"
	return out
}

func buildCached(t *testing.T, mods []SourceModule, opt Options, dir string) *Build {
	t.Helper()
	opt.CacheDir = dir
	opt.Volatile = workload.InputGlobals()
	b, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatalf("build %v: %v", opt.Level, err)
	}
	if b.Stats.PinLeaks != 0 {
		t.Fatalf("build %v leaked %d pins", opt.Level, b.Stats.PinLeaks)
	}
	return b
}

func TestIncrementalWarmRebuildByteIdentical(t *testing.T) {
	spec := incrSpec(29)
	mods := sources(spec)
	nmods := len(mods)
	if nmods < 8 {
		t.Fatalf("matrix needs >= 8 modules, got %d", nmods)
	}
	db, err := Train(mods, []map[string]int64{trainInputs(spec)}, Options{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	configs := []Options{
		{Level: O1, Verify: analyze.Interproc},
		{Level: O2, Verify: analyze.Interproc},
		{Level: O3, Verify: analyze.Interproc},
		{Level: O4, SelectPercent: -1, Verify: analyze.Interproc},
		{Level: O4, PBO: true, DB: db, SelectPercent: 60, Verify: analyze.Interproc},
	}
	for _, opt := range configs {
		name := fmt.Sprintf("%v-sel%g-pbo%v", opt.Level, opt.SelectPercent, opt.PBO)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()

			cold := buildCached(t, mods, opt, dir)
			coldDis := cold.Image.Disasm()
			if cold.Stats.CacheFrontendHits != 0 || cold.Stats.CacheFrontendMisses != nmods {
				t.Fatalf("cold frontend: %d hits, %d misses; want 0, %d",
					cold.Stats.CacheFrontendHits, cold.Stats.CacheFrontendMisses, nmods)
			}

			// Warm no-op rebuild: the dependency graph sees a clean
			// closure and replays the whole image — zero stage work,
			// output identical.
			warm := buildCached(t, mods, opt, dir)
			if got := warm.Image.Disasm(); got != coldDis {
				t.Errorf("warm no-op rebuild differs from cold build")
			}
			if !warm.Stats.GraphImageReplay {
				t.Errorf("warm no-op rebuild did not replay the image (dirty closure %d)",
					warm.Stats.GraphDirtyClosure)
			}
			if warm.Stats.GraphDirtyClosure != 0 {
				t.Errorf("warm no-op rebuild dirty closure = %d, want 0", warm.Stats.GraphDirtyClosure)
			}
			if warm.Stats.CacheFrontendMisses != 0 {
				t.Errorf("warm no-op rebuild lowered %d modules", warm.Stats.CacheFrontendMisses)
			}

			// The pre-graph path must still replay per artifact: with the
			// ablation knob the frontend revisits every module and the
			// bytes still match.
			nodg := opt
			nodg.NoDepGraph = true
			warmOld := buildCached(t, mods, nodg, dir)
			if got := warmOld.Image.Disasm(); got != coldDis {
				t.Errorf("NoDepGraph warm rebuild differs from cold build")
			}
			if warmOld.Stats.GraphImageReplay {
				t.Errorf("NoDepGraph build replayed the image")
			}
			if warmOld.Stats.CacheFrontendHits != nmods || warmOld.Stats.CacheFrontendMisses != 0 {
				t.Errorf("NoDepGraph warm frontend: %d hits, %d misses; want %d, 0",
					warmOld.Stats.CacheFrontendHits, warmOld.Stats.CacheFrontendMisses, nmods)
			}

			// Edit one module; the warm rebuild must match a cold build
			// of the edited program and re-lower only the edited module.
			edited := editOne(mods, 1)
			coldEdit := buildCached(t, edited, opt, t.TempDir())
			tr := obs.NewTrace()
			wopt := opt
			wopt.Trace = tr
			warmEdit := buildCached(t, edited, wopt, dir)
			if warmEdit.Image.Disasm() != coldEdit.Image.Disasm() {
				t.Errorf("warm rebuild after 1-module edit differs from cold build of the edited program")
			}
			if warmEdit.Stats.CacheFrontendHits != nmods-1 || warmEdit.Stats.CacheFrontendMisses != 1 {
				t.Errorf("warm-edit frontend: %d hits, %d misses; want %d, 1",
					warmEdit.Stats.CacheFrontendHits, warmEdit.Stats.CacheFrontendMisses, nmods-1)
			}
			// The same figures must be visible as obs counters — the
			// contract the CI smoke job and -timing report rely on.
			if got := tr.Counter("session.frontend_hits").Value(); got != int64(nmods-1) {
				t.Errorf("obs session.frontend_hits = %d, want %d", got, nmods-1)
			}
			if got := tr.Counter("session.frontend_misses").Value(); got != 1 {
				t.Errorf("obs session.frontend_misses = %d, want 1", got)
			}
			if opt.Level == O4 {
				if got := tr.Counter("session.hlo_replay_hits").Value(); got != int64(warmEdit.Stats.CacheHLOHits) {
					t.Errorf("obs session.hlo_replay_hits = %d, want %d", got, warmEdit.Stats.CacheHLOHits)
				}
			}
			// The edit dirtied a real closure, and LLO work scaled with
			// it: routines outside the closure decoded cached objects.
			if warmEdit.Stats.GraphDirtyClosure == 0 {
				t.Errorf("warm-edit build saw an empty dirty closure")
			}
			if warmEdit.Stats.CacheLLOHits == 0 {
				t.Errorf("warm-edit build decoded no cached LLO objects")
			}
			// At O3+ the uncalled probe function is dead-code-eliminated
			// and every surviving post-HLO body can legitimately hit, so
			// the at-least-one-compile check applies below O3 only.
			if opt.Level < O3 && warmEdit.Stats.CacheLLOMisses == 0 {
				t.Errorf("warm-edit build compiled nothing — the edit should force at least one compile")
			}
			if total := warmEdit.Stats.CacheLLOHits + warmEdit.Stats.CacheLLOMisses; total != warmEdit.Stats.GraphFrontierDepth {
				t.Errorf("LLO hits+misses = %d, want frontier depth %d", total, warmEdit.Stats.GraphFrontierDepth)
			}
			if got := tr.Counter("session.llo_hits").Value(); got != int64(warmEdit.Stats.CacheLLOHits) {
				t.Errorf("obs session.llo_hits = %d, want %d", got, warmEdit.Stats.CacheLLOHits)
			}
			if got := tr.Counter("graph.dirty_closure").Value(); got != int64(warmEdit.Stats.GraphDirtyClosure) {
				t.Errorf("obs graph.dirty_closure = %d, want %d", got, warmEdit.Stats.GraphDirtyClosure)
			}
		})
	}
}

// TestIncrementalSessionReuseAndRestart covers the two session
// lifetimes: one Session shared by successive in-process builds, and a
// repository reopened after a (simulated) process restart.
func TestIncrementalSessionReuseAndRestart(t *testing.T) {
	dir := t.TempDir()
	mods := sources(incrSpec(31))
	opt := Options{Level: O4, SelectPercent: -1, Volatile: workload.InputGlobals()}

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt.Session = sess
	cold, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.GraphImageReplay {
		t.Errorf("shared session warm rebuild did not replay the image")
	}
	if warm.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("shared-session warm rebuild differs from cold build")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh session over the same directory must reload the
	// persisted graph and replay what the closed one stored.
	opt.Session = nil
	opt.CacheDir = dir
	again, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.GraphImageReplay {
		t.Errorf("post-restart warm rebuild did not replay the image")
	}
	if again.Stats.CacheFrontendMisses != 0 {
		t.Errorf("after restart: %d modules lowered, want 0", again.Stats.CacheFrontendMisses)
	}
	if again.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("post-restart warm rebuild differs from cold build")
	}

	// And with the graph disabled, the per-artifact replay path still
	// serves the same bytes after the restart.
	opt.NoDepGraph = true
	old, err := BuildSource(mods, opt)
	if err != nil {
		t.Fatal(err)
	}
	if old.Stats.CacheFrontendHits != len(mods) || old.Stats.CacheFrontendMisses != 0 {
		t.Errorf("NoDepGraph after restart: %d hits, %d misses; want %d, 0",
			old.Stats.CacheFrontendHits, old.Stats.CacheFrontendMisses, len(mods))
	}
	if old.Image.Disasm() != cold.Image.Disasm() {
		t.Errorf("NoDepGraph post-restart rebuild differs from cold build")
	}
}

// TestIncrementalCacheDirIgnoredWhenSessionSet pins the Options
// contract: an explicit Session wins over CacheDir.
func TestIncrementalCacheDirIgnoredWhenSessionSet(t *testing.T) {
	mods := []SourceModule{
		{Name: "a", Text: "module a;\nfunc id(x int) int { return x; }\n"},
		{Name: "b", Text: "module b;\nextern func id(x int) int;\nfunc main() int { return id(5); }\n"},
	}
	sess, err := OpenSession("") // disconnected
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b, err := BuildSource(mods, Options{
		Level: O2, Session: sess, CacheDir: t.TempDir(),
		Volatile: workload.InputGlobals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.CacheFrontendHits != 0 || b.Stats.CacheFrontendMisses != 0 {
		t.Errorf("disconnected session recorded cache traffic: %d hits, %d misses",
			b.Stats.CacheFrontendHits, b.Stats.CacheFrontendMisses)
	}
}
