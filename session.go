package cmo

import (
	"crypto/rand"
	"encoding/hex"
	"path/filepath"

	"cmo/internal/cas"
	"cmo/internal/depgraph"
	"cmo/internal/naim"
)

// toolchainVersion stamps every cached artifact key. Bump it whenever
// the frontend, the IL encoding, or any optimization that feeds a
// cached record changes behavior: a stale artifact must miss, never
// decode into wrong code.
const toolchainVersion = "cmo-toolchain/1"

// ToolchainVersion exposes the artifact-key toolchain stamp to the
// serving layer: a cmod daemon serving POST /backend refuses requests
// from a different toolchain (version skew across a worker fleet must
// surface as a refusal, never as drifted bytes).
func ToolchainVersion() string { return toolchainVersion }

// A Session is the unit of incremental compilation: a handle on a
// durable, content-addressed artifact repository that successive
// builds share. The repository (internal/naim) is the paper's object
// repository grown a persistence layer — append-only blob log, keyed
// by content hash, crash-safe across process restarts.
//
// Artifacts are keyed by what produced them (source text ⊕ options
// fingerprint ⊕ toolchain version), so a Session never needs explicit
// invalidation: an edit changes the key and simply misses. Warm
// rebuilds are byte-identical to cold builds — the cache can change
// only how fast an answer arrives, never the answer.
//
// Alongside the repository the session keeps the artifact dependency
// graph (internal/depgraph, graph.log in the same directory): the
// discovery and scheduling index over those content-addressed
// artifacts. The graph is advisory — reuse is still gated by content
// keys — so it shares the session's crash story: a torn tail is
// truncated, a generation mismatch discards it, and the worst case is
// one full-speed rebuild.
//
// Within one process a Session may be shared by concurrent builds:
// lookups and stores go straight to the internally locked repository,
// and the loaded graph is internally locked too. The one write that
// must be serialized by the owner is the durable Commit
// (internal/serve takes a per-session mutex around it; see the
// single-writer discipline there). A Session is not safe for
// concurrent use by multiple processes; open one session per cache
// directory at a time.
// A session may additionally hold a remote CAS client (AttachRemote),
// making artifact lookups three-level: in-memory loader state → local
// repository → remote shared cache. The remote level is strictly
// advisory and fully failure-absorbing — lookups fill local misses
// from the remote, committed artifacts write back asynchronously, and
// any remote failure degrades to local-only. It can never change
// bytes, so it is deliberately absent from every options fingerprint.
type Session struct {
	repo   *naim.Repository
	graph  *depgraph.Log
	remote *cas.Client
}

// graphEpochKey names the repository blob holding the random epoch
// the dependency graph's generation string is derived from. A reset
// repository loses the blob, a fresh epoch is drawn, and any
// surviving graph.log fails its generation check and is discarded —
// the graph can never describe artifacts the repository no longer
// holds.
var graphEpochKey = naim.KeyOfStrings("cmo/graph-epoch/v1")

// OpenSession opens (creating if needed) the durable build repository
// in dir. An empty dir returns a disconnected session: every lookup
// misses and stores are dropped, so the pipeline needs no nil checks.
func OpenSession(dir string) (*Session, error) {
	if dir == "" {
		return &Session{}, nil
	}
	repo, err := naim.Open(dir)
	if err != nil {
		return nil, err
	}
	s := &Session{repo: repo}
	epoch, gerr := repo.Get(graphEpochKey)
	if gerr != nil {
		var buf [16]byte
		if _, rerr := rand.Read(buf[:]); rerr == nil {
			epoch = buf[:]
			// Advisory like every cache write: a failed store means the
			// next open draws yet another epoch and rebuilds.
			_ = repo.Put(graphEpochKey, epoch)
		}
	}
	if len(epoch) > 0 {
		gen := toolchainVersion + "/" + hex.EncodeToString(epoch)
		// A graph that cannot be opened (I/O error) just means no graph:
		// builds fall back to per-artifact discovery.
		if g, err := depgraph.Open(filepath.Join(dir, "graph.log"), gen); err == nil {
			s.graph = g
		}
	}
	return s, nil
}

// Close commits the repository and graph (fsync + manifest) and
// releases them.
func (s *Session) Close() error {
	if s == nil || s.repo == nil {
		return nil
	}
	repo, graph := s.repo, s.graph
	s.repo, s.graph = nil, nil
	var gerr error
	if graph != nil {
		gerr = graph.Close()
	}
	if err := repo.Close(); err != nil {
		return err
	}
	return gerr
}

// Commit makes everything stored so far durable: the repository's
// blob log and manifest, and the dependency graph's log. This is the
// session commit the serving layer runs between builds; callers must
// serialize it (see the Session doc).
func (s *Session) Commit() error {
	if s == nil || s.repo == nil {
		return nil
	}
	if err := s.repo.Commit(); err != nil {
		return err
	}
	if s.graph != nil {
		return s.graph.Sync()
	}
	return nil
}

// Repo exposes the underlying repository (nil for a disconnected
// session) for inspection and GC.
func (s *Session) Repo() *naim.Repository { return s.repo }

// Graph exposes the session's loaded dependency graph (nil when the
// session is disconnected or the graph could not be opened) for
// inspection and metrics.
func (s *Session) Graph() *depgraph.Graph {
	if s == nil || s.graph == nil {
		return nil
	}
	return s.graph.Graph()
}

// AttachRemote gives the session a remote CAS level: get fills local
// misses from it, put writes back asynchronously. The caller keeps
// ownership of the client and must Close it (after the last build
// using this session) to flush the write-back backlog. Attach before
// sharing the session across goroutines; swapping the client under
// concurrent builds is not supported.
func (s *Session) AttachRemote(c *cas.Client) {
	if s != nil {
		s.remote = c
	}
}

// remoteStats snapshots the attached client's cumulative counters
// (zero when no remote is attached); BuildSource diffs two snapshots
// to attribute traffic to one build.
func (s *Session) remoteStats() cas.ClientStats {
	if s == nil || s.remote == nil {
		return cas.ClientStats{}
	}
	return s.remote.Stats()
}

// connected reports whether the session has a backing repository.
func (s *Session) connected() bool { return s != nil && s.repo != nil }

// get looks an artifact up; a disconnected session always misses.
// With a remote attached, a local miss tries the shared cache and
// fills the local repository on a hit, so the next lookup (and the
// next build) is local again.
func (s *Session) get(key naim.Key) ([]byte, bool) {
	if !s.connected() {
		return nil, false
	}
	b, err := s.repo.Get(key)
	if err == nil {
		return b, true
	}
	if s.remote == nil {
		return nil, false
	}
	b, ok := s.remote.Get(hex.EncodeToString(key[:]))
	if !ok {
		return nil, false
	}
	// Fill the local level. Advisory like every cache write: a failed
	// fill still serves this lookup from the fetched bytes.
	_ = s.repo.Put(key, b)
	return b, true
}

// put stores an artifact; a disconnected session drops it.
func (s *Session) put(key naim.Key, blob []byte) {
	if !s.connected() {
		return
	}
	// Repository writes only fail on I/O errors; the cache is advisory,
	// so a failed store degrades to a future miss rather than failing
	// the build.
	_ = s.repo.Put(key, blob)
	if s.remote != nil {
		// Asynchronous, bounded, drop-on-overload: the build never
		// waits on the shared cache accepting its artifacts.
		s.remote.PutAsync(hex.EncodeToString(key[:]), blob)
	}
}

// frontendKey is the artifact key for one module's frontend output.
// It covers the module's full source text, so any edit misses; it
// deliberately excludes build options — lowering is option-independent
// (optimization levels act downstream of the frontend artifact).
func frontendKey(name, text string) naim.Key {
	return naim.KeyOfStrings("cmo/fe/v1", toolchainVersion, name, text)
}
