package cmo

import (
	"cmo/internal/naim"
)

// toolchainVersion stamps every cached artifact key. Bump it whenever
// the frontend, the IL encoding, or any optimization that feeds a
// cached record changes behavior: a stale artifact must miss, never
// decode into wrong code.
const toolchainVersion = "cmo-toolchain/1"

// A Session is the unit of incremental compilation: a handle on a
// durable, content-addressed artifact repository that successive
// builds share. The repository (internal/naim) is the paper's object
// repository grown a persistence layer — append-only blob log, keyed
// by content hash, crash-safe across process restarts.
//
// Artifacts are keyed by what produced them (source text ⊕ options
// fingerprint ⊕ toolchain version), so a Session never needs explicit
// invalidation: an edit changes the key and simply misses. Warm
// rebuilds are byte-identical to cold builds — the cache can change
// only how fast an answer arrives, never the answer.
//
// Within one process a Session may be shared by concurrent builds:
// lookups and stores go straight to the internally locked repository.
// The one write that must be serialized by the owner is the durable
// Commit (internal/serve takes a per-session mutex around it; see the
// single-writer discipline there). A Session is not safe for
// concurrent use by multiple processes; open one session per cache
// directory at a time.
type Session struct {
	repo *naim.Repository
}

// OpenSession opens (creating if needed) the durable build repository
// in dir. An empty dir returns a disconnected session: every lookup
// misses and stores are dropped, so the pipeline needs no nil checks.
func OpenSession(dir string) (*Session, error) {
	if dir == "" {
		return &Session{}, nil
	}
	repo, err := naim.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Session{repo: repo}, nil
}

// Close commits the repository (fsync + manifest) and releases it.
func (s *Session) Close() error {
	if s == nil || s.repo == nil {
		return nil
	}
	repo := s.repo
	s.repo = nil
	return repo.Close()
}

// Repo exposes the underlying repository (nil for a disconnected
// session) for inspection and GC.
func (s *Session) Repo() *naim.Repository { return s.repo }

// connected reports whether the session has a backing repository.
func (s *Session) connected() bool { return s != nil && s.repo != nil }

// get looks an artifact up; a disconnected session always misses.
func (s *Session) get(key naim.Key) ([]byte, bool) {
	if !s.connected() {
		return nil, false
	}
	b, err := s.repo.Get(key)
	if err != nil {
		return nil, false
	}
	return b, true
}

// put stores an artifact; a disconnected session drops it.
func (s *Session) put(key naim.Key, blob []byte) {
	if !s.connected() {
		return
	}
	// Repository writes only fail on I/O errors; the cache is advisory,
	// so a failed store degrades to a future miss rather than failing
	// the build.
	_ = s.repo.Put(key, blob)
}

// frontendKey is the artifact key for one module's frontend output.
// It covers the module's full source text, so any edit misses; it
// deliberately excludes build options — lowering is option-independent
// (optimization levels act downstream of the frontend artifact).
func frontendKey(name, text string) naim.Key {
	return naim.KeyOfStrings("cmo/fe/v1", toolchainVersion, name, text)
}
