// MCAD pipeline: the paper's headline ISV scenario end to end on a
// generated MCAD-like application — train on one data set, build the
// shipped configuration (selective CMO+PBO under a NAIM memory
// budget), and benchmark on the reference data set against the
// default +O2 build.
//
//	go run ./examples/mcadpipeline [-modules 48] [-select 10]
package main

import (
	"flag"
	"fmt"
	"log"

	cmo "cmo"
	"cmo/internal/naim"
	"cmo/internal/workload"
)

func main() {
	modules := flag.Int("modules", 48, "application size in modules")
	sel := flag.Float64("select", 10, "selectivity: percent of ranked call sites")
	flag.Parse()

	spec := workload.Spec{
		Name: "mcad", Seed: 201,
		Modules: *modules, HotPerModule: 3, ColdPerModule: 14, ColdStmts: 26,
		ArrayElems: 128,
		TrainIters: 130, RefIters: 400, TrainMode: 2, RefMode: 4,
	}
	var mods []cmo.SourceModule
	totalLines := 0
	for _, m := range spec.Generate() {
		mods = append(mods, cmo.SourceModule{Name: m.Name + ".minc", Text: m.Text})
		for _, c := range m.Text {
			if c == '\n' {
				totalLines++
			}
		}
	}
	fmt.Printf("application: %d modules, %d lines\n", *modules, totalLines)

	// Step 1: +I instrumented build, trained on the training inputs.
	train := map[string]int64{"input0": spec.Train().Iters, "input1": spec.Train().Mode}
	ref := map[string]int64{"input0": spec.Ref().Iters, "input1": spec.Ref().Mode}
	db, err := cmo.Train(mods, []map[string]int64{train}, cmo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training:    %d call sites profiled\n", db.TotalSites())

	// Step 2: the default build every customer could already get.
	base, err := cmo.BuildSource(mods, cmo.Options{Level: cmo.O2, Volatile: workload.InputGlobals()})
	if err != nil {
		log.Fatal(err)
	}
	rBase, err := base.Run(ref, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: the shipped configuration — selective CMO+PBO with a
	// NAIM budget a build machine of the era could afford.
	ship, err := cmo.BuildSource(mods, cmo.Options{
		Level: cmo.O4, PBO: true, DB: db,
		SelectPercent: *sel,
		Volatile:      workload.InputGlobals(),
		NAIM: naim.Config{
			BudgetBytes: base.Stats.NAIM.PeakBytes, // tighter than the naive need
			ForceLevel:  naim.Adaptive,
			CacheSlots:  24,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rShip, err := ship.Run(ref, 0)
	if err != nil {
		log.Fatal(err)
	}
	if rShip.Value != rBase.Value {
		log.Fatalf("CMO changed the answer: %d vs %d", rShip.Value, rBase.Value)
	}

	fmt.Printf("\nselectivity: %d/%d call sites -> %d/%d modules, %d routines optimized\n",
		ship.Stats.SelectedSites, ship.Stats.TotalSites,
		ship.Stats.CMOModules, ship.Stats.Modules, ship.Stats.HLO.OptimizedFns)
	fmt.Printf("HLO:         %d inlines (%d cross-module), %d IPCP params, %d const globals, %d dead funcs\n",
		ship.Stats.HLO.Inlines, ship.Stats.HLO.CrossModule,
		ship.Stats.HLO.IPCPParams, ship.Stats.HLO.ConstGlobals, ship.Stats.HLO.DeadFuncs)
	fmt.Printf("NAIM:        level %v, peak %d bytes (budget %d), %d compactions, %d disk writes\n",
		ship.Stats.NAIMLevel, ship.Stats.NAIM.PeakBytes, base.Stats.NAIM.PeakBytes,
		ship.Stats.NAIM.Compactions, ship.Stats.NAIM.DiskWrites)
	fmt.Printf("\nbenchmark (reference inputs):\n")
	fmt.Printf("  +O2:        %12d cycles\n", rBase.Stats.Cycles)
	fmt.Printf("  CMO+PBO:    %12d cycles\n", rShip.Stats.Cycles)
	fmt.Printf("  speedup:    %.2fx   (paper's Mcad1: 1.71x over +O2 at full scale)\n",
		float64(rBase.Stats.Cycles)/float64(rShip.Stats.Cycles))
}
