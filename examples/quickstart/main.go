// Quickstart: compile a two-module MinC program at the default level
// and with cross-module optimization, run both on the simulated VPA
// machine, and show where the CMO win comes from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cmo "cmo"
)

// Two modules: the hot path crosses the module boundary on every
// loop iteration, so the default (intraprocedural) compiler cannot
// inline it — exactly the barrier the paper removes.
var modules = []cmo.SourceModule{
	{Name: "app.minc", Text: `
module app;
extern func weight(x int) int;
extern var scale int;

func main() int {
	var total int = 0;
	for (var i int = 0; i < 20000; i = i + 1) {
		total = total + weight(i) * scale;
		if (total > 1000000) { total = total % 999983; }
	}
	return total;
}
`},
	{Name: "lib.minc", Text: `
module lib;
var scale int = 3;

func weight(x int) int {
	if (x % 2 == 0) { return x + 1; }
	return x - 1;
}
`},
}

func main() {
	// Default optimization: +O2 (aggressive, but strictly within each
	// module).
	o2, err := cmo.BuildSource(modules, cmo.Options{Level: cmo.O2})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := o2.Run(nil, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Cross-module optimization: the linker routes IL through HLO,
	// which inlines weight() into main across the module boundary and
	// propagates the never-written global `scale` as a constant.
	o4, err := cmo.BuildSource(modules, cmo.Options{Level: cmo.O4, SelectPercent: -1})
	if err != nil {
		log.Fatal(err)
	}
	r4, err := o4.Run(nil, 0)
	if err != nil {
		log.Fatal(err)
	}

	if r2.Value != r4.Value {
		log.Fatalf("optimization changed the answer: %d vs %d", r2.Value, r4.Value)
	}

	fmt.Printf("result (both builds):        %d\n", r2.Value)
	fmt.Printf("+O2 cycles:                  %d\n", r2.Stats.Cycles)
	fmt.Printf("+O4 cycles:                  %d\n", r4.Stats.Cycles)
	fmt.Printf("speedup:                     %.2fx\n",
		float64(r2.Stats.Cycles)/float64(r4.Stats.Cycles))
	fmt.Printf("dynamic calls, +O2 vs +O4:   %d vs %d\n", r2.Stats.Calls, r4.Stats.Calls)
	fmt.Printf("cross-module inlines:        %d\n", o4.Stats.HLO.CrossModule)
	fmt.Printf("globals folded to constants: %d\n", o4.Stats.HLO.ConstGlobals)
	fmt.Printf("dead functions removed:      %d\n", o4.Stats.HLO.DeadFuncs)
}
