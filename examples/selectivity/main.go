// Selectivity sweep: Figure 6 in miniature on one application — vary
// the percentage of ranked call sites selected for CMO and watch
// compile cost grow while run-time benefit saturates near the hot
// knee.
//
//	go run ./examples/selectivity [-modules 32]
package main

import (
	"flag"
	"fmt"
	"log"

	cmo "cmo"
	"cmo/internal/workload"
)

func main() {
	modules := flag.Int("modules", 32, "application size in modules")
	flag.Parse()

	spec := workload.Spec{
		Name: "sweep", Seed: 99,
		Modules: *modules, HotPerModule: 3, ColdPerModule: 12, ColdStmts: 22,
		ArrayElems: 128,
		TrainIters: 150, RefIters: 500, TrainMode: 2, RefMode: 4,
	}
	var mods []cmo.SourceModule
	for _, m := range spec.Generate() {
		mods = append(mods, cmo.SourceModule{Name: m.Name + ".minc", Text: m.Text})
	}
	train := map[string]int64{"input0": spec.Train().Iters, "input1": spec.Train().Mode}
	ref := map[string]int64{"input0": spec.Ref().Iters, "input1": spec.Ref().Mode}

	db, err := cmo.Train(mods, []map[string]int64{train}, cmo.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s | %11s | %13s | %9s | %12s | %8s\n",
		"percent", "sites", "lines in CMO", "build ms", "run cycles", "speedup")
	var base int64
	for _, pct := range []float64{0, 1, 2, 5, 10, 20, 40, 100} {
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, PBO: true, DB: db, SelectPercent: pct,
			Volatile: workload.InputGlobals(),
		})
		if err != nil {
			log.Fatal(err)
		}
		rr, err := b.Run(ref, 0)
		if err != nil {
			log.Fatal(err)
		}
		if pct == 0 {
			base = rr.Stats.Cycles
		}
		fmt.Printf("%7.1f%% | %5d/%-5d | %6d/%-6d | %9.2f | %12d | %7.3fx\n",
			pct, b.Stats.SelectedSites, b.Stats.TotalSites,
			b.Stats.SelectedLines, b.Stats.TotalLines,
			float64(b.Stats.TotalNanos)/1e6, rr.Stats.Cycles,
			float64(base)/float64(rr.Stats.Cycles))
	}
	fmt.Println("\nThe knee: past the point where the hot call sites are covered,")
	fmt.Println("additional selection buys compile time, not run time (paper section 5).")
}
