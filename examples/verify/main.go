// Verify: build the same two-module program with pipeline
// verification at every level and show what the checker costs and
// where it runs — the paper's section-6.3 "trustworthy IR checker"
// made a first-class build option.
//
//	go run ./examples/verify
package main

import (
	"fmt"
	"log"
	"os"

	cmo "cmo"
	"cmo/internal/obs"
)

func load(path string) cmo.SourceModule {
	text, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return cmo.SourceModule{Name: path, Text: string(text)}
}

func main() {
	modules := []cmo.SourceModule{
		load("examples/verify/pipeline.minc"),
		load("examples/verify/util.minc"),
	}

	// Baseline: no verification (the default — zero added cost).
	plain, err := cmo.BuildSource(modules, cmo.Options{Level: cmo.O4, SelectPercent: -1})
	if err != nil {
		log.Fatal(err)
	}
	rr, err := plain.Run(nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result:                     %d\n", rr.Value)
	fmt.Printf("unverified build:           %.2fms\n", float64(plain.Stats.TotalNanos)/1e6)

	// The same build, re-checked after the frontend, after every HLO
	// transform, after each routine's local optimization, and after
	// link — plus the section-5 facts soundness audit.
	trace := obs.NewTrace()
	checked, err := cmo.BuildSource(modules, cmo.Options{
		Level:         cmo.O4,
		SelectPercent: -1,
		Verify:        cmo.VerifyInterproc,
		Trace:         trace,
	})
	if err != nil {
		log.Fatal(err)
	}
	rv, err := checked.Run(nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	if rv.Value != rr.Value {
		log.Fatalf("verification changed the answer: %d vs %d", rv.Value, rr.Value)
	}
	fmt.Printf("verified build:             %.2fms\n", float64(checked.Stats.TotalNanos)/1e6)
	fmt.Printf("  spent verifying:          %.2fms (%d diagnostics)\n",
		float64(checked.Stats.VerifyNanos)/1e6, checked.Stats.VerifyDiags)

	// The trace shows exactly where each verification pass ran: as a
	// "verify" span under the build root (frontend, link) or inside
	// the hlo phase (one per transform, plus the facts audit).
	fmt.Println("\nverification spans in the build trace:")
	for _, s := range trace.Spans() {
		if s.Name == "verify" {
			fmt.Printf("  verify %-12s %8.3fms\n", s.Detail, float64(s.Dur)/1e6)
		}
	}
}
