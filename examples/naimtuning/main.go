// NAIM tuning: drive the not-all-in-memory loader directly through
// its library API — install routine pools, watch them compact and
// offload as the level rises, and print the Figure-5-style dial.
//
//	go run ./examples/naimtuning
package main

import (
	"fmt"
	"log"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/source"
	"cmo/internal/workload"
)

func main() {
	// Generate a mid-sized program and lower it to IL.
	spec := workload.Spec{
		Name: "tune", Seed: 7,
		Modules: 16, HotPerModule: 3, ColdPerModule: 10, ColdStmts: 18,
	}
	var files []*source.File
	for _, m := range spec.Generate() {
		f, err := source.Parse(m.Name+".minc", m.Text)
		if err != nil {
			log.Fatal(err)
		}
		if err := source.Check(f); err != nil {
			log.Fatal(err)
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		log.Fatal(err)
	}
	prog := res.Prog
	fmt.Printf("program: %d modules, %d functions\n\n", len(prog.Modules), len(prog.FuncPIDs()))

	fmt.Printf("%-22s %12s %12s %10s %8s %8s\n",
		"configuration", "peak bytes", "cur bytes", "compacts", "expands", "disk")
	for _, cfg := range []struct {
		name string
		c    naim.Config
	}{
		{"LevelOff (expanded)", naim.Config{ForceLevel: naim.LevelOff}},
		{"LevelIR, 8 slots", naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 8}},
		{"LevelST, 8 slots", naim.Config{ForceLevel: naim.LevelST, CacheSlots: 8}},
		{"LevelDisk, 8 slots", naim.Config{ForceLevel: naim.LevelDisk, CacheSlots: 8}},
	} {
		loader := naim.NewLoader(prog, cfg.c)
		// Fresh clones each round: the loader owns what it is given.
		for _, pid := range prog.FuncPIDs() {
			loader.InstallFunc(res.Funcs[pid].Clone())
		}
		// An optimizer-like access pattern: two full sweeps, plus a
		// hot subset touched repeatedly.
		for round := 0; round < 2; round++ {
			for _, pid := range prog.FuncPIDs() {
				if loader.Function(pid) == nil {
					log.Fatalf("lost body for %s", prog.Sym(pid).Name)
				}
				loader.DoneWith(pid)
			}
		}
		hot := prog.FuncPIDs()[:8]
		for round := 0; round < 20; round++ {
			for _, pid := range hot {
				loader.Function(pid)
			}
		}
		s := loader.Stats()
		fmt.Printf("%-22s %12d %12d %10d %8d %8d\n",
			cfg.name, s.PeakBytes, s.CurBytes, s.Compactions, s.Expansions, s.DiskWrites)
		loader.Close()
	}

	// The round-trip guarantee: compact + expand reproduces the IR
	// exactly (print-identical).
	pid := prog.FuncPIDs()[0]
	f := res.Funcs[pid]
	blob := naim.EncodeFunc(f, nil)
	back, err := naim.DecodeFunc(prog, blob)
	if err != nil {
		log.Fatal(err)
	}
	same := back.Print(prog) == f.Print(prog)
	fmt.Printf("\nrelocatable round trip for %s: %d expanded bytes -> %d compacted (%.0f%%), identical=%v\n",
		f.Name, naim.ExpandedFuncBytes(f), len(blob),
		100*float64(len(blob))/float64(naim.ExpandedFuncBytes(f)), same)
	if !same {
		log.Fatal("round trip mismatch")
	}
	_ = il.Verify(prog, back)
}
