package cmo

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cmo/internal/analyze"
	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/profile"
	"cmo/internal/vpa"
)

// Level is the optimization level.
type Level int

// Optimization levels (paper sections 2-3).
const (
	// O1 optimizes only within basic blocks (the Mcad3 baseline).
	O1 Level = 1
	// O2 is the default: full intraprocedural optimization.
	O2 Level = 2
	// O3 routes the IL through HLO one module at a time:
	// interprocedural optimization within module boundaries.
	O3 Level = 3
	// O4 adds cross-module optimization at link time.
	O4 Level = 4
)

func (l Level) String() string {
	switch l {
	case O1:
		return "+O1"
	case O2:
		return "+O2"
	case O3:
		return "+O3"
	case O4:
		return "+O4"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// SourceModule is one MinC translation unit.
type SourceModule struct {
	Name string
	Text string
}

// Options configures one build.
type Options struct {
	// Level selects O1, O2, or O4. Zero means O2.
	Level Level
	// PBO enables profile-based optimization; requires DB.
	PBO bool
	// DB is the profile database from training runs.
	DB *profile.DB
	// Instrument produces a +I build with counting probes (compiled
	// at the given level without HLO).
	Instrument bool
	// SelectPercent is the selectivity parameter: the percentage of
	// ranked call sites retained (paper section 5). Negative disables
	// selectivity (all modules enter CMO). Only meaningful at O4.
	SelectPercent float64
	// NAIM configures the loader (budget, levels, cache).
	NAIM naim.Config
	// Volatile names globals whose values are external inputs and
	// must never be treated as link-time constants.
	Volatile []string
	// Entry is the program entry function (default "main").
	Entry string
	// Budget overrides the inliner budget (zero value = defaults).
	Budget hlo.InlineBudget
	// MultiLayer enables the paper's section-8 layered strategy
	// (requires O4 + PBO): selected routines get full CMO+PBO, warm
	// routines (executed in training but not selected) get the
	// default level, and routines that never executed are compiled at
	// O1 — "code that is executed little or not at all may not be
	// optimized at all".
	MultiLayer bool
	// ScopeModules, when non-nil, overrides selectivity with an
	// explicit coarse CMO module set (indexes into the program's
	// modules). This is the section-6.3 isolation knob: reducing "the
	// amount of code exposed to the optimizer" module by module.
	ScopeModules []int
	// MaxInlines caps the number of inline operations (0 =
	// unlimited); with deterministic builds, binary search over this
	// limit isolates a miscompiling inline (internal/isolate).
	MaxInlines int
	// NoIPA disables the interprocedural MOD/REF summary stage
	// (internal/ipa) and the fact-gated HLO transforms it feeds
	// (gforward, gdse, purecse). O4 only; the ablation knob for
	// measuring what the summaries buy.
	NoIPA bool
	// NoDepGraph disables the persisted artifact dependency graph
	// (internal/depgraph): no image replay, no LLO object cache, no
	// critical-path scheduling — every session build rediscovers
	// staleness per artifact, the pre-graph behavior. Generated code
	// is byte-identical either way (the graph only changes speed);
	// the knob exists for the differential tests that prove it, and
	// is fingerprinted like NoIPA so the two paths never share cached
	// records in those tests.
	NoDepGraph bool
	// Jobs parallelizes the read-mostly pipeline phases across
	// goroutines: frontend parsing/checking, selectivity's site
	// enumeration, out-of-scope fact summaries, per-function
	// verification, and per-routine code generation — the paper's
	// section-8 future work on parallelizing the optimizer. Workers
	// share the concurrency-safe NAIM loader directly. 0 or 1 means
	// sequential. Generated code and diagnostics are byte-identical
	// regardless of Jobs; only wall time and the scheduling-dependent
	// loader counters (cache hits/misses, lock wait, writeback queue)
	// change. HLO itself stays sequential: its transformation order is
	// part of the deterministic contract.
	Jobs int
	// Verify selects pipeline verification (internal/analyze): at
	// VerifyStructural and above the whole program is re-checked
	// after the frontend, after each named HLO transform (so a
	// failure names the transform that broke the invariant), after
	// each routine's local optimization, and after link. The zero
	// value is VerifyOff: no checking, no cost (see
	// TestVerifyOffZeroAlloc).
	Verify analyze.Level
	// Trace, when non-nil, collects hierarchical spans and counters
	// for the whole pipeline (frontend/HLO/LLO/link phases, NAIM
	// loader activity, per-routine codegen) — exportable as Chrome
	// trace-event JSON, a diffable phase tree, or a metrics snapshot
	// (see internal/obs). A nil Trace is a cheap no-op: the hot path
	// pays only the monotonic clock reads the phase statistics always
	// paid, and allocates nothing.
	Trace *obs.Trace
	// CacheDir, when non-empty, names a directory holding the durable
	// build repository. BuildSource opens a Session over it for the
	// duration of the call: modules whose source, options fingerprint,
	// and toolchain version match a stored artifact skip the frontend
	// (parse/check/lower) and are replayed from the repository, and
	// HLO per-function work is replayed for functions whose inputs are
	// unchanged. Warm rebuilds are byte-identical to cold builds at
	// every optimization level. Ignored when Session is set.
	CacheDir string
	// Session, when non-nil, is an already-open build session to use
	// (and keep open) instead of opening CacheDir per build. Callers
	// doing repeated in-process builds share one Session so each build
	// warms the next.
	Session *Session
	// RemoteCache, when non-empty, is the base URL of a shared CAS
	// service ("http://host:port"; a cmod daemon with a cache store
	// mounts it at /cas/). It gives the session opened from CacheDir a
	// third cache level: artifact lookups go memory → local repository
	// → remote CAS, local misses fill from the remote, and committed
	// artifacts write back asynchronously with a bounded backlog. The
	// remote is strictly advisory — any failure (unreachable service,
	// timeout, eviction, mid-build death) degrades to local-only and
	// the image bytes are identical with the cache on, off, cold, or
	// gone. Ignored when Session is set (attach a cas.Client to the
	// session yourself) or when CacheDir is empty (there is no local
	// level to fill).
	RemoteCache string
	// RemoteNamespace is the tenant namespace RemoteCache requests use
	// (default "default"). Namespaces isolate tenants sharing one
	// service: a key stored under one is invisible to every other.
	RemoteNamespace string
	// RemoteCacheTimeout bounds one remote cache request (0 = the
	// cas client default, 5s).
	RemoteCacheTimeout time.Duration
	// RemoteCacheToken is the shared secret sent as a bearer token on
	// every RemoteCache request, for services that require one (cmod
	// -cas-token). Like every remote knob it cannot affect bytes: a
	// wrong token just degrades the build to local-only.
	RemoteCacheToken string
	// Partitions sets the backend partition count (the WHOPR-style
	// ltrans split; see internal/partition). 0 picks a size-based
	// default (partition.Auto); the value never affects generated
	// bytes, only grouping granularity — images are byte-identical
	// across partition counts.
	Partitions int
	// NoPartition disables the partitioned backend: LLO runs the
	// original per-routine in-process path. The ablation knob for the
	// differential tests proving partitioned and direct builds are
	// byte-identical; remote workers require the partitioned path.
	NoPartition bool
	// Workers sets the in-process backend worker pool size for the
	// partitioned LLO stage. 0 means Jobs. Like Jobs, it changes wall
	// time only, never bytes.
	Workers int
	// RemoteWorkers lists cmod daemon base URLs ("http://host:port")
	// to farm backend partitions to (POST /backend). Local pool and
	// remote workers pull from one queue; any remote failure falls
	// back to local compilation, so listing an unreachable worker
	// costs time, never correctness. Byte-identical to a purely local
	// build.
	RemoteWorkers []string
	// RemoteTimeout bounds one remote partition attempt (0 =
	// backend.DefaultTimeout). A deadline that fires moves the
	// partition back to the local pool.
	RemoteTimeout time.Duration
	// Context, when non-nil, bounds the build: cancellation (or a
	// deadline) aborts the pipeline at the next per-module or
	// per-function checkpoint and BuildSource returns the context's
	// error. An aborted build releases every NAIM checkout it took —
	// cancellation never leaks pinned pools — but makes no promise
	// about session artifacts written so far (they are keyed by
	// content, so a partial warm-up is simply a smaller head start).
	// nil means the build cannot be cancelled (the historical CLI
	// behavior). The serving layer (internal/serve) sets this from the
	// per-request deadline.
	Context context.Context
}

// BuildStats records what a build did and what it cost. Memory
// figures use the NAIM size model (see internal/naim); times are wall
// clock.
type BuildStats struct {
	Level      Level
	PBO        bool
	Modules    int
	Functions  int
	TotalLines int

	// Selectivity outcome (O4 with a profile).
	TotalSites    int
	SelectedSites int
	CMOModules    int
	CMOFunctions  int // fine-grained selected set
	SelectedLines int

	HLO  hlo.Stats
	NAIM naim.Stats
	// NAIMLevel is the highest NAIM level engaged during the build.
	NAIMLevel naim.Level

	// Incremental-build outcome (builds with a Session / CacheDir).
	// A frontend hit is a module replayed from the repository without
	// parsing or lowering; a miss was lowered from source (and its
	// artifact stored for next time).
	CacheFrontendHits   int
	CacheFrontendMisses int
	// HLO replay hits/misses (per-function records; see hlo.Stats
	// ReplayHits/ReplayMisses for the same figures).
	CacheHLOHits   int
	CacheHLOMisses int
	// LLO object hits/misses (graph-scheduled builds only): a hit is
	// a function whose compiled object was decoded from the
	// repository; a miss was compiled and stored.
	CacheLLOHits   int
	CacheLLOMisses int
	// Remote-cache outcome (builds with Options.RemoteCache, or a
	// session the caller attached a cas.Client to). A hit is a local
	// miss filled from the shared cache; a miss went to the remote and
	// came back empty; stores are artifacts written back; drops are
	// write-backs shed by the bounded backlog or an open breaker;
	// errors count failed requests (each one degraded to a local
	// miss). When one session serves concurrent builds the figures are
	// attributed by before/after snapshots, so overlapping builds may
	// split each other's traffic — totals across builds stay exact.
	CacheRemoteHits   int
	CacheRemoteMisses int
	CacheRemoteStores int
	CacheRemoteDrops  int
	CacheRemoteErrors int

	// Dependency-graph outcome (graph-scheduled session builds).
	// GraphNodes/GraphEdges snapshot the loaded graph after this
	// build's delta; GraphDirtyClosure is the number of artifacts the
	// edited leaves invalidated (0 on a clean warm rebuild);
	// GraphCriticalPathNanos is the heaviest dependency chain by
	// recorded costs; GraphFrontierDepth is the number of work items
	// the LLO scheduler ordered. GraphImageReplay marks the warm-noop
	// fast path: the whole image was replayed from the repository with
	// zero stage work.
	GraphNodes             int
	GraphEdges             int
	GraphDirtyClosure      int
	GraphCriticalPathNanos int64
	GraphFrontierDepth     int
	GraphImageReplay       bool
	// Partitioned-backend outcome (default LLO path; all zero under
	// NoPartition). Partitions is the partition count this build used;
	// PartitionsClean were replayed whole from the repository;
	// PartitionsLocal/PartitionsRemote count dirty partitions by what
	// executed them; PartitionRetries counts remote failures that fell
	// back to local compilation (each such partition is counted local,
	// not remote).
	Partitions       int
	PartitionsClean  int
	PartitionsLocal  int
	PartitionsRemote int
	PartitionRetries int

	// PinLeaks counts loader handles still pinned when the pipeline
	// finished — each one is a checkout some stage never returned
	// (see Loader.UnloadAll). Always zero in a correct build.
	PinLeaks int

	// QueueNanos is the time the request spent waiting for a worker
	// before the build started. It is set by the serving layer
	// (internal/serve) and is always zero for direct in-process builds;
	// it is *not* part of TotalNanos, so server-side latency decomposes
	// as queue wait + build time.
	QueueNanos int64

	FrontendNanos int64
	// SelectNanos is the select stage's share of HLONanos (CMO scope
	// computation plus out-of-scope summarization). It is measured by
	// the "select" span inside the hlo phase, so it is informational:
	// already counted within HLONanos, never added to the phase sum.
	SelectNanos int64
	// IPANanos is the interprocedural MOD/REF summary stage's share
	// of HLONanos (the "ipa" span inside the hlo phase) — like
	// SelectNanos, informational: already counted within HLONanos.
	IPANanos   int64
	HLONanos   int64
	LLONanos   int64
	LinkNanos  int64
	TotalNanos int64
	// VerifyNanos is the total time spent in whole-program
	// verification passes (Options.Verify): the post-frontend,
	// per-HLO-transform, facts-audit, and post-link checks. Passes
	// that run inside a phase (the per-transform checks) also count
	// toward that phase's time; the per-routine checks inside LLO
	// are visible only in LLONanos. Each pass is also an obs "verify"
	// span, so the trace shows where the time went.
	VerifyNanos int64
	// VerifyDiags counts all diagnostics (errors and warnings) the
	// verifier produced across the build.
	VerifyDiags int

	// CodeBytes is the final image code size.
	CodeBytes int64
	// Multi-layer tier sizes (MultiLayer builds only).
	TierHot  int // full CMO+PBO
	TierWarm int // default level
	TierCold int // O1 (never executed in training)

	// LLOPeakBytes models the low-level optimizer's peak working
	// memory: quadratic in the largest routine it compiled (the
	// paper's Figure 4 caption notes exactly this growth).
	LLOPeakBytes int64
	// CompilerPeakBytes approximates the whole compiler process:
	// HLO/NAIM peak plus LLO peak.
	CompilerPeakBytes int64
}

// Build is a completed compilation.
type Build struct {
	Image *vpa.Image
	Prog  *il.Program
	// ProbeMap is non-nil for instrumented builds.
	ProbeMap *profile.Map
	Stats    BuildStats
	// InlineOps is HLO's ordered inline log (O4 builds), the
	// diagnostic trail the paper's sections 6.2-6.3 call for.
	InlineOps []hlo.InlineOp
	// Partitions describes the backend partitions of this build in
	// index order: deterministic fingerprints, membership, and how
	// each was satisfied. nil under Options.NoPartition.
	Partitions []PartitionInfo

	selectedFns map[il.PID]bool
	gp          *graphPlan
	trace       *obs.Trace
}

// Trace returns the trace the build recorded into (nil when tracing
// was not requested).
func (b *Build) Trace() *obs.Trace { return b.trace }

// RunResult is the outcome of executing a build.
type RunResult struct {
	Value  int64
	Stats  vpa.Stats
	Probes []int64
}

// Run executes the image once on a fresh machine with the given
// scalar global inputs.
func (b *Build) Run(inputs map[string]int64, maxSteps int64) (*RunResult, error) {
	m := vpa.NewMachine(b.Image, vpa.DefaultConfig())
	// Deterministic input application order.
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := m.SetGlobal(n, inputs[n]); err != nil {
			return nil, err
		}
	}
	v, err := m.Run(nil, maxSteps)
	if err != nil {
		return nil, err
	}
	return &RunResult{Value: v, Stats: m.Stats, Probes: m.Probes}, nil
}

// Train builds an instrumented (+I) version of the program at O2,
// runs it on each training input set, and returns the merged profile
// database (paper section 3: the database is "generated, or added
// to" across runs).
func Train(mods []SourceModule, runs []map[string]int64, opt Options) (*profile.DB, error) {
	opt.Instrument = true
	opt.PBO = false
	opt.DB = nil
	if opt.Level == 0 || opt.Level >= O4 {
		opt.Level = O2
	}
	b, err := BuildSource(mods, opt)
	if err != nil {
		return nil, err
	}
	db := profile.NewDB()
	if len(runs) == 0 {
		runs = []map[string]int64{nil}
	}
	for _, inputs := range runs {
		rr, err := b.Run(inputs, 0)
		if err != nil {
			return nil, fmt.Errorf("cmo: training run: %w", err)
		}
		db.Merge(profile.FromCounters(b.ProbeMap, rr.Probes))
	}
	return db, nil
}
