// Package cmo is the public facade of the scalable cross-module
// optimization framework: a reproduction of "Scalable Cross-Module
// Optimization" (Ayers, de Jong, Peyton, Schooler; PLDI 1998).
//
// It assembles the full HP-UX-style pipeline (paper Figure 2) over
// the MinC language and the simulated VPA target:
//
//	frontend (internal/source, internal/lower)
//	   │ IL
//	   ├── +O2: LLO per module ──────────────────┐
//	   └── +O4: HLO across modules (internal/hlo,│
//	        under the NAIM loader, internal/naim)│
//	               │ optimized IL                │
//	               └── LLO (internal/llo) ───────┤
//	                                             ▼
//	                linker (internal/link): clustering, image
//	                                             ▼
//	                VPA machine (internal/vpa): cycle-accurate-ish run
//
// Optimization levels follow the paper: O1 optimizes within basic
// blocks, O2 is the aggressive intraprocedural default, O4 adds
// link-time cross-module optimization; PBO layers profile-based
// optimization on any of them, and Instrument produces a +I build
// whose runs feed the profile database.
package cmo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cmo/internal/analyze"
	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/link"
	"cmo/internal/llo"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/obs"
	"cmo/internal/profile"
	"cmo/internal/selectivity"
	"cmo/internal/source"
	"cmo/internal/vpa"
)

// Level is the optimization level.
type Level int

// Optimization levels (paper sections 2-3).
const (
	// O1 optimizes only within basic blocks (the Mcad3 baseline).
	O1 Level = 1
	// O2 is the default: full intraprocedural optimization.
	O2 Level = 2
	// O3 routes the IL through HLO one module at a time:
	// interprocedural optimization within module boundaries.
	O3 Level = 3
	// O4 adds cross-module optimization at link time.
	O4 Level = 4
)

func (l Level) String() string {
	switch l {
	case O1:
		return "+O1"
	case O2:
		return "+O2"
	case O3:
		return "+O3"
	case O4:
		return "+O4"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// SourceModule is one MinC translation unit.
type SourceModule struct {
	Name string
	Text string
}

// Options configures one build.
type Options struct {
	// Level selects O1, O2, or O4. Zero means O2.
	Level Level
	// PBO enables profile-based optimization; requires DB.
	PBO bool
	// DB is the profile database from training runs.
	DB *profile.DB
	// Instrument produces a +I build with counting probes (compiled
	// at the given level without HLO).
	Instrument bool
	// SelectPercent is the selectivity parameter: the percentage of
	// ranked call sites retained (paper section 5). Negative disables
	// selectivity (all modules enter CMO). Only meaningful at O4.
	SelectPercent float64
	// NAIM configures the loader (budget, levels, cache).
	NAIM naim.Config
	// Volatile names globals whose values are external inputs and
	// must never be treated as link-time constants.
	Volatile []string
	// Entry is the program entry function (default "main").
	Entry string
	// Budget overrides the inliner budget (zero value = defaults).
	Budget hlo.InlineBudget
	// MultiLayer enables the paper's section-8 layered strategy
	// (requires O4 + PBO): selected routines get full CMO+PBO, warm
	// routines (executed in training but not selected) get the
	// default level, and routines that never executed are compiled at
	// O1 — "code that is executed little or not at all may not be
	// optimized at all".
	MultiLayer bool
	// ScopeModules, when non-nil, overrides selectivity with an
	// explicit coarse CMO module set (indexes into the program's
	// modules). This is the section-6.3 isolation knob: reducing "the
	// amount of code exposed to the optimizer" module by module.
	ScopeModules []int
	// MaxInlines caps the number of inline operations (0 =
	// unlimited); with deterministic builds, binary search over this
	// limit isolates a miscompiling inline (internal/isolate).
	MaxInlines int
	// Jobs parallelizes the read-mostly pipeline phases across
	// goroutines: frontend parsing/checking, selectivity's site
	// enumeration, out-of-scope fact summaries, per-function
	// verification, and per-routine code generation — the paper's
	// section-8 future work on parallelizing the optimizer. Workers
	// share the concurrency-safe NAIM loader directly. 0 or 1 means
	// sequential. Generated code and diagnostics are byte-identical
	// regardless of Jobs; only wall time and the scheduling-dependent
	// loader counters (cache hits/misses, lock wait, writeback queue)
	// change. HLO itself stays sequential: its transformation order is
	// part of the deterministic contract.
	Jobs int
	// Verify selects pipeline verification (internal/analyze): at
	// VerifyStructural and above the whole program is re-checked
	// after the frontend, after each named HLO transform (so a
	// failure names the transform that broke the invariant), after
	// each routine's local optimization, and after link. The zero
	// value is VerifyOff: no checking, no cost (see
	// TestVerifyOffZeroAlloc).
	Verify analyze.Level
	// Trace, when non-nil, collects hierarchical spans and counters
	// for the whole pipeline (frontend/HLO/LLO/link phases, NAIM
	// loader activity, per-routine codegen) — exportable as Chrome
	// trace-event JSON, a diffable phase tree, or a metrics snapshot
	// (see internal/obs). A nil Trace is a cheap no-op: the hot path
	// pays only the monotonic clock reads the phase statistics always
	// paid, and allocates nothing.
	Trace *obs.Trace
}

// BuildStats records what a build did and what it cost. Memory
// figures use the NAIM size model (see internal/naim); times are wall
// clock.
type BuildStats struct {
	Level      Level
	PBO        bool
	Modules    int
	Functions  int
	TotalLines int

	// Selectivity outcome (O4 with a profile).
	TotalSites    int
	SelectedSites int
	CMOModules    int
	CMOFunctions  int // fine-grained selected set
	SelectedLines int

	HLO  hlo.Stats
	NAIM naim.Stats
	// NAIMLevel is the highest NAIM level engaged during the build.
	NAIMLevel naim.Level

	FrontendNanos int64
	HLONanos      int64
	LLONanos      int64
	LinkNanos     int64
	TotalNanos    int64
	// VerifyNanos is the total time spent in whole-program
	// verification passes (Options.Verify): the post-frontend,
	// per-HLO-transform, facts-audit, and post-link checks. Passes
	// that run inside a phase (the per-transform checks) also count
	// toward that phase's time; the per-routine checks inside LLO
	// are visible only in LLONanos. Each pass is also an obs "verify"
	// span, so the trace shows where the time went.
	VerifyNanos int64
	// VerifyDiags counts all diagnostics (errors and warnings) the
	// verifier produced across the build.
	VerifyDiags int

	// CodeBytes is the final image code size.
	CodeBytes int64
	// Multi-layer tier sizes (MultiLayer builds only).
	TierHot  int // full CMO+PBO
	TierWarm int // default level
	TierCold int // O1 (never executed in training)

	// LLOPeakBytes models the low-level optimizer's peak working
	// memory: quadratic in the largest routine it compiled (the
	// paper's Figure 4 caption notes exactly this growth).
	LLOPeakBytes int64
	// CompilerPeakBytes approximates the whole compiler process:
	// HLO/NAIM peak plus LLO peak.
	CompilerPeakBytes int64
}

// Build is a completed compilation.
type Build struct {
	Image *vpa.Image
	Prog  *il.Program
	// ProbeMap is non-nil for instrumented builds.
	ProbeMap *profile.Map
	Stats    BuildStats
	// InlineOps is HLO's ordered inline log (O4 builds), the
	// diagnostic trail the paper's sections 6.2-6.3 call for.
	InlineOps []hlo.InlineOp

	selectedFns map[il.PID]bool
	trace       *obs.Trace
}

// Trace returns the trace the build recorded into (nil when tracing
// was not requested).
func (b *Build) Trace() *obs.Trace { return b.trace }

// llOBytes models LLO's working-set for one routine: linear IR plus
// quadratic analysis structures (interference, scheduling windows).
func lloBytes(n int) int64 {
	nn := int64(n)
	return 96*nn + nn*nn/6
}

// BuildSource compiles a set of MinC modules into an executable VPA
// image according to the options.
//
// Phase timing is span-derived: one "build" root span covers the whole
// call; "frontend" covers parse/check/lower, and the optimize/link
// phases nest under the same root inside buildIL. Each BuildStats
// duration is the duration of exactly one span, measured from a single
// captured start timestamp, so FrontendNanos + HLONanos + LLONanos +
// LinkNanos can never exceed TotalNanos (the old subtraction scheme
// read the clock twice and broke that invariant).
func BuildSource(mods []SourceModule, opt Options) (*Build, error) {
	root := opt.Trace.StartSpan("build")
	fe := root.Child("frontend")
	files := make([]*source.File, len(mods))
	jobs := opt.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(mods) {
		jobs = len(mods)
	}
	if jobs <= 1 {
		for i, m := range mods {
			sp := fe.ChildDetail("parse", m.Name)
			f, err := source.Parse(m.Name, m.Text)
			if err == nil {
				err = source.Check(f)
			}
			sp.End()
			if err != nil {
				return nil, err
			}
			files[i] = f
		}
	} else {
		// Parsing and checking are per-file pure; fan out. Workers
		// keep draining after an error so the feeder never blocks.
		work := make(chan int)
		errs := make(chan error, jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				var werr error
				for i := range work {
					if werr != nil {
						continue
					}
					sp := fe.ChildDetail("parse", mods[i].Name)
					f, err := source.Parse(mods[i].Name, mods[i].Text)
					if err == nil {
						err = source.Check(f)
					}
					sp.End()
					if err != nil {
						werr = err
						continue
					}
					files[i] = f
				}
				errs <- werr
			}()
		}
		for i := range mods {
			work <- i
		}
		close(work)
		var firstErr error
		for w := 0; w < jobs; w++ {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	lsp := fe.Child("lower")
	res, err := lower.Modules(files)
	lsp.End()
	if err != nil {
		return nil, err
	}
	feNanos := fe.End()
	b, err := buildIL(res.Prog, res.Funcs, opt, root)
	if err != nil {
		return nil, err
	}
	b.Stats.FrontendNanos = feNanos
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// BuildIL compiles an already-lowered program (from BuildSource's
// frontend, or from IL-carrying object files merged by the linker —
// the paper's CMO-at-link-time entry point).
func BuildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options) (*Build, error) {
	root := opt.Trace.StartSpan("build")
	b, err := buildIL(prog, fns, opt, root)
	if err != nil {
		return nil, err
	}
	b.Stats.TotalNanos = root.End()
	return b, nil
}

// buildIL is the shared optimize-compile-link pipeline; phase spans
// nest under parent, and the loader's trace scope tracks the phase the
// pipeline is in so NAIM activity nests where it happened.
func buildIL(prog *il.Program, fns map[il.PID]*il.Function, opt Options, parent obs.Span) (*Build, error) {
	if opt.Level == 0 {
		opt.Level = O2
	}
	if opt.Entry == "" {
		opt.Entry = "main"
	}
	if opt.PBO && opt.DB == nil {
		return nil, fmt.Errorf("cmo: PBO requested without a profile database")
	}

	b := &Build{Prog: prog, trace: opt.Trace}
	b.Stats.Level = opt.Level
	b.Stats.PBO = opt.PBO
	b.Stats.Modules = len(prog.Modules)
	for _, m := range prog.Modules {
		b.Stats.TotalLines += m.Lines
	}

	if opt.DB != nil {
		opt.DB.Apply(fns)
	}
	var probeMap *profile.Map
	if opt.Instrument {
		fns, probeMap = profile.Instrument(prog, fns)
		b.ProbeMap = probeMap
	}

	// Hand all transitory pools to the NAIM loader.
	loader := naim.NewLoader(prog, opt.NAIM)
	defer loader.Close()
	loader.SetTraceScope(parent)
	for _, pid := range prog.FuncPIDs() {
		loader.InstallFunc(fns[pid])
	}
	b.Stats.Functions = len(prog.FuncPIDs())

	// Baseline check: the frontend's IL must be clean before any
	// transform touches it, or every later failure would be blamed on
	// the wrong stage.
	if err := b.verifyStage(loader, opt, "frontend", nil, parent); err != nil {
		return nil, err
	}

	volatile := make(map[il.PID]bool)
	for _, name := range opt.Volatile {
		if s := prog.Lookup(name); s != nil {
			volatile[s.PID] = true
		}
	}

	omit := make(map[il.PID]bool)
	switch {
	case opt.Instrument:
		// Instrumented builds skip HLO: probes measure the program
		// the frontend produced.
	case opt.Level >= O4:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLO(loader, opt, volatile, omit, hsp); err != nil {
			return nil, err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	case opt.Level == O3:
		hsp := parent.Child("hlo")
		loader.SetTraceScope(hsp)
		if err := b.runHLOPerModule(loader, opt, volatile, omit, hsp); err != nil {
			return nil, err
		}
		b.Stats.HLONanos = hsp.End()
		loader.SetTraceScope(parent)
	}

	// LLO: compile every surviving function. With MultiLayer, each
	// routine's tier picks its code-generation effort (paper
	// section 8's layered strategy).
	lsp := parent.Child("llo")
	loader.SetTraceScope(lsp)
	lloLevel := 2
	if opt.Level == O1 {
		lloLevel = 1
	}
	multiLayer := opt.MultiLayer && opt.Level >= O4 && opt.DB != nil
	code := make(map[il.PID]*vpa.Func)

	// Per-routine re-verification of LLO's optimized working copy,
	// just before emission. analyze.Function is pure over its inputs,
	// so the hook is safe from the parallel codegen workers.
	var lloVerify func(*il.Function) error
	if opt.Verify != analyze.Off {
		level := opt.Verify
		lloVerify = func(f *il.Function) error {
			return analyze.FirstError(analyze.Function(prog, f, level))
		}
	}

	// classify applies the multi-layer tier policy for one routine.
	classify := func(pid il.PID, f *il.Function) (int, bool) {
		if !multiLayer {
			return lloLevel, opt.PBO
		}
		switch {
		case f.Calls == 0:
			// Never executed during training: cheapest codegen.
			b.Stats.TierCold++
			return 1, false
		case !b.selectedFns[pid]:
			b.Stats.TierWarm++
			return lloLevel, opt.PBO
		default:
			b.Stats.TierHot++
			return lloLevel, opt.PBO
		}
	}

	lloJobs := opt.Jobs
	if lloJobs < 1 {
		lloJobs = 1
	}
	if lloJobs <= 1 {
		for _, pid := range prog.FuncPIDs() {
			if omit[pid] {
				continue
			}
			f := loader.Function(pid)
			if f == nil {
				return nil, fmt.Errorf("cmo: no body for %s", prog.Sym(pid).Name)
			}
			fnLevel, fnPBO := classify(pid, f)
			mf, err := llo.Compile(prog, f, llo.Options{Level: fnLevel, PBO: fnPBO, Span: lsp, Verify: lloVerify})
			if err != nil {
				return nil, err
			}
			if lb := lloBytes(f.NumInstrs()); lb > b.Stats.LLOPeakBytes {
				b.Stats.LLOPeakBytes = lb
			}
			code[pid] = mf
			loader.DoneWith(pid)
		}
	} else if err := b.compileParallel(loader, omit, code, classify, lloVerify, lloJobs, lsp); err != nil {
		return nil, err
	}
	b.Stats.LLONanos = lsp.End()
	loader.SetTraceScope(parent)

	// Link: clustering needs profiled call edges.
	ksp := parent.Child("link")
	lopts := link.Options{Entry: opt.Entry, Omit: omit, Span: ksp}
	if probeMap != nil {
		lopts.NumProbes = probeMap.NumProbes()
	}
	if opt.PBO && opt.DB != nil {
		lopts.Cluster = true
		lopts.Edges = profileEdges(prog, opt.DB)
	}
	img, err := link.Link(prog, code, lopts)
	if err != nil {
		return nil, err
	}
	b.Stats.LinkNanos = ksp.End()
	// Let queued repository spills land before the final stats
	// snapshot so disk-write figures reflect the repository, not the
	// writeback queue.
	loader.Flush()
	// Post-link consistency: the surviving IL, with the dead set
	// omitted, must still verify — in particular no surviving routine
	// may reference one that dead-code elimination removed.
	if err := b.verifyStage(loader, opt, "link", omit, parent); err != nil {
		return nil, err
	}
	b.Image = img
	b.Stats.CodeBytes = img.CodeBytes()
	b.Stats.NAIM = loader.Stats()
	b.Stats.NAIMLevel = loader.Level()
	b.Stats.CompilerPeakBytes = b.Stats.NAIM.PeakBytes + b.Stats.LLOPeakBytes
	return b, nil
}

// runHLO performs selection and cross-module optimization.
func (b *Build) runHLO(loader *naim.Loader, opt Options, volatile map[il.PID]bool, omit map[il.PID]bool, hsp obs.Span) error {
	prog := b.Prog
	hopts := hlo.Options{
		DB:         opt.DB,
		Volatile:   volatile,
		Entry:      opt.Entry,
		Budget:     opt.Budget,
		MaxInlines: opt.MaxInlines,
		Span:       hsp,
	}
	if opt.Verify != analyze.Off {
		hopts.Check = b.hloCheck(loader, opt, hsp)
	}

	switch {
	case opt.ScopeModules != nil:
		// Explicit coarse scope (isolation/debugging): the listed
		// modules enter CMO; everything else bypasses HLO.
		scope := make(map[il.PID]bool)
		want := make(map[int32]bool, len(opt.ScopeModules))
		for _, mi := range opt.ScopeModules {
			if mi < 0 || mi >= len(prog.Modules) {
				return fmt.Errorf("cmo: ScopeModules index %d out of range (%d modules)", mi, len(prog.Modules))
			}
			want[int32(mi)] = true
		}
		for _, pid := range prog.FuncPIDs() {
			if want[prog.Sym(pid).Module] {
				scope[pid] = true
			}
		}
		b.Stats.CMOModules = len(want)
		b.Stats.CMOFunctions = len(scope)
		if len(scope) == 0 {
			return nil
		}
		hopts.Scope = scope
		hopts.Selected = scope
		extCalled, extStored := b.summarizeOutOfScope(loader, scope, opt.Jobs)
		hopts.ExternallyCalled = extCalled
		hopts.ExternStored = extStored
	case opt.SelectPercent >= 0 && opt.DB != nil:
		ssp := hsp.Child("select")
		ch := selectivity.SelectJobs(prog, func(pid il.PID) *il.Function {
			f := loader.Function(pid)
			loader.DoneWith(pid)
			return f
		}, opt.DB, opt.SelectPercent, opt.Jobs)
		ssp.End()
		b.Stats.TotalSites = ch.TotalSites
		b.Stats.SelectedSites = len(ch.Sites)
		b.Stats.CMOModules = len(ch.Modules)
		b.Stats.CMOFunctions = len(ch.Funcs)
		b.Stats.SelectedLines = ch.SelectedLines
		if len(ch.Modules) == 0 {
			return nil // nothing selected: pure default-level build
		}
		scope := make(map[il.PID]bool)
		for _, pid := range ch.ModuleFuncs(prog) {
			scope[pid] = true
		}
		hopts.Scope = scope
		hopts.Selected = ch.Funcs
		extCalled, extStored := b.summarizeOutOfScope(loader, scope, opt.Jobs)
		hopts.ExternallyCalled = extCalled
		hopts.ExternStored = extStored
	default:
		b.Stats.CMOModules = len(prog.Modules)
		b.Stats.CMOFunctions = len(prog.FuncPIDs())
		b.Stats.SelectedLines = b.Stats.TotalLines
	}
	b.selectedFns = hopts.Selected
	if b.selectedFns == nil {
		b.selectedFns = make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			b.selectedFns[pid] = true
		}
	}

	hres, err := hlo.Optimize(prog, loader, hopts)
	if err != nil {
		return err
	}
	b.Stats.HLO = hres.Stats
	b.InlineOps = hres.InlineOps
	for _, pid := range hres.Dead {
		omit[pid] = true
	}
	if opt.Verify >= analyze.Interproc {
		return b.auditHLOFacts(loader, hres.Facts, hsp)
	}
	return nil
}

// compileParallel is the Jobs > 1 code-generation path. Workers pull
// PIDs from a shared cursor and call loader.Function themselves — the
// sharded loader is safe for concurrent use, so there is no feeder
// funnel and a slow routine never stalls checkout of the next one.
// Bodies are treated as read-only (llo.Compile clones before
// transforming) and each body's pin is dropped as soon as its compile
// completes, so NAIM's pinned set stays bounded by the worker count.
// Once any worker records an error, the cursor stops handing out new
// PIDs and every already-pinned body is still released — a failing
// build leaves no pinned handles behind.
func (b *Build) compileParallel(loader *naim.Loader, omit map[il.PID]bool,
	code map[il.PID]*vpa.Func, classify func(il.PID, *il.Function) (int, bool),
	verify func(*il.Function) error, jobs int, lsp obs.Span) error {
	prog := b.Prog
	pids := make([]il.PID, 0, len(prog.FuncPIDs()))
	for _, pid := range prog.FuncPIDs() {
		if !omit[pid] {
			pids = append(pids, pid)
		}
	}
	var (
		mu       sync.Mutex // guards code, firstErr, b.Stats (classify tiers, LLO peak)
		firstErr error
		stop     atomic.Bool
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(pids) {
					return
				}
				pid := pids[i]
				f := loader.Function(pid)
				if f == nil {
					fail(fmt.Errorf("cmo: no body for %s", prog.Sym(pid).Name))
					return
				}
				mu.Lock()
				level, pbo := classify(pid, f)
				mu.Unlock()
				mf, err := llo.Compile(prog, f, llo.Options{Level: level, PBO: pbo, Span: lsp, Verify: verify})
				if err != nil {
					loader.DoneWith(pid)
					fail(err)
					return
				}
				mu.Lock()
				code[pid] = mf
				if lb := lloBytes(f.NumInstrs()); lb > b.Stats.LLOPeakBytes {
					b.Stats.LLOPeakBytes = lb
				}
				mu.Unlock()
				loader.DoneWith(pid)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runHLOPerModule implements +O3: interprocedural optimization with
// module boundaries intact — each module's IL goes through HLO alone,
// with the rest of the program summarized conservatively. This is
// what the paper's pipeline does when the linker is not involved
// (section 3: "at higher levels of optimization (+O3 or +O4) the IL
// is first routed through the high level optimizer").
func (b *Build) runHLOPerModule(loader *naim.Loader, opt Options, volatile map[il.PID]bool, omit map[il.PID]bool, hsp obs.Span) error {
	prog := b.Prog
	var agg hlo.Stats
	for mi := range prog.Modules {
		scope := make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			if prog.Sym(pid).Module == int32(mi) {
				scope[pid] = true
			}
		}
		if len(scope) == 0 {
			continue
		}
		extCalled, extStored := b.summarizeOutOfScope(loader, scope, opt.Jobs)
		msp := hsp.ChildDetail("hlo module", prog.Modules[mi].Name)
		mopts := hlo.Options{
			DB:               opt.DB,
			Volatile:         volatile,
			Entry:            opt.Entry,
			Budget:           opt.Budget,
			MaxInlines:       opt.MaxInlines,
			Scope:            scope,
			Selected:         scope,
			ExternallyCalled: extCalled,
			ExternStored:     extStored,
			Span:             msp,
		}
		if opt.Verify != analyze.Off {
			mopts.Check = b.hloCheck(loader, opt, msp)
		}
		hres, err := hlo.Optimize(prog, loader, mopts)
		if err != nil {
			msp.End()
			return err
		}
		if opt.Verify >= analyze.Interproc {
			// Audit each module's facts before the next module's run
			// mutates the program further.
			if err := b.auditHLOFacts(loader, hres.Facts, msp); err != nil {
				msp.End()
				return err
			}
		}
		msp.End()
		agg.Inlines += hres.Stats.Inlines
		agg.Clones += hres.Stats.Clones
		agg.IPCPParams += hres.Stats.IPCPParams
		agg.ConstGlobals += hres.Stats.ConstGlobals
		agg.OptimizedFns += hres.Stats.OptimizedFns
		agg.ScannedFuncs += hres.Stats.ScannedFuncs
		agg.Unrolled += hres.Stats.Unrolled
		for _, pid := range hres.Dead {
			omit[pid] = true
		}
		agg.DeadFuncs += len(hres.Dead)
		b.InlineOps = append(b.InlineOps, hres.InlineOps...)
	}
	b.Stats.HLO = agg
	b.Stats.CMOModules = 0 // no cross-module optimization at O3
	b.Stats.CMOFunctions = 0
	return nil
}

// summarizeOutOfScope scans the modules that bypass HLO and
// summarizes the facts the optimizer must stay conservative about:
// in-scope functions they call and globals they store. The scan is
// read-only and embarrassingly parallel: with jobs > 1 it fans out
// over the out-of-scope PIDs, each worker accumulating private sets
// that are merged afterwards (set union is order-independent, so the
// result is identical at any job count).
func (b *Build) summarizeOutOfScope(loader *naim.Loader, scope map[il.PID]bool, jobs int) (extCalled, extStored map[il.PID]bool) {
	prog := b.Prog
	var pids []il.PID
	for _, pid := range prog.FuncPIDs() {
		if !scope[pid] {
			pids = append(pids, pid)
		}
	}
	scanOne := func(f *il.Function, called, stored map[il.PID]bool) {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				switch in.Op {
				case il.Call:
					if scope[in.Sym] {
						called[in.Sym] = true
					}
				case il.StoreG, il.StoreX:
					stored[in.Sym] = true
				}
			}
		}
	}
	extCalled = make(map[il.PID]bool)
	extStored = make(map[il.PID]bool)
	if jobs > len(pids) {
		jobs = len(pids)
	}
	if jobs <= 1 {
		for _, pid := range pids {
			if f := loader.Function(pid); f != nil {
				scanOne(f, extCalled, extStored)
				loader.DoneWith(pid)
			}
		}
		return extCalled, extStored
	}
	type part struct{ called, stored map[il.PID]bool }
	parts := make([]part, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := part{called: make(map[il.PID]bool), stored: make(map[il.PID]bool)}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pids) {
					break
				}
				if f := loader.Function(pids[i]); f != nil {
					scanOne(f, p.called, p.stored)
					loader.DoneWith(pids[i])
				}
			}
			parts[w] = p
		}(w)
	}
	wg.Wait()
	for _, p := range parts {
		for pid := range p.called {
			extCalled[pid] = true
		}
		for pid := range p.stored {
			extStored[pid] = true
		}
	}
	return extCalled, extStored
}

// profileEdges aggregates the profile's call-site counts into
// caller/callee edges for Pettis–Hansen clustering.
func profileEdges(prog *il.Program, db *profile.DB) []link.Edge {
	type key struct{ a, b il.PID }
	agg := make(map[key]int64)
	for _, s := range db.RankedSites() {
		caller := prog.Lookup(s.Key.Fn)
		callee := prog.Lookup(s.Key.Callee)
		if caller == nil || callee == nil {
			continue
		}
		agg[key{caller.PID, callee.PID}] += s.Count
	}
	edges := make([]link.Edge, 0, len(agg))
	for k, v := range agg {
		edges = append(edges, link.Edge{Caller: k.a, Callee: k.b, Count: v})
	}
	// Deterministic order for the linker. sort.Slice, not insertion
	// sort: large profiles produce tens of thousands of distinct edges
	// and the quadratic sort dominated profileEdges on them.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Caller != edges[j].Caller {
			return edges[i].Caller < edges[j].Caller
		}
		return edges[i].Callee < edges[j].Callee
	})
	return edges
}

// RunResult is the outcome of executing a build.
type RunResult struct {
	Value  int64
	Stats  vpa.Stats
	Probes []int64
}

// Run executes the image once on a fresh machine with the given
// scalar global inputs.
func (b *Build) Run(inputs map[string]int64, maxSteps int64) (*RunResult, error) {
	m := vpa.NewMachine(b.Image, vpa.DefaultConfig())
	// Deterministic input application order.
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := m.SetGlobal(n, inputs[n]); err != nil {
			return nil, err
		}
	}
	v, err := m.Run(nil, maxSteps)
	if err != nil {
		return nil, err
	}
	return &RunResult{Value: v, Stats: m.Stats, Probes: m.Probes}, nil
}

// Train builds an instrumented (+I) version of the program at O2,
// runs it on each training input set, and returns the merged profile
// database (paper section 3: the database is "generated, or added
// to" across runs).
func Train(mods []SourceModule, runs []map[string]int64, opt Options) (*profile.DB, error) {
	opt.Instrument = true
	opt.PBO = false
	opt.DB = nil
	if opt.Level == 0 || opt.Level >= O4 {
		opt.Level = O2
	}
	b, err := BuildSource(mods, opt)
	if err != nil {
		return nil, err
	}
	db := profile.NewDB()
	if len(runs) == 0 {
		runs = []map[string]int64{nil}
	}
	for _, inputs := range runs {
		rr, err := b.Run(inputs, 0)
		if err != nil {
			return nil, fmt.Errorf("cmo: training run: %w", err)
		}
		db.Merge(profile.FromCounters(b.ProbeMap, rr.Probes))
	}
	return db, nil
}
