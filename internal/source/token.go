// Package source implements the frontend for MinC, the small modular
// C-like language used by this reproduction. MinC exists so that the
// cross-module optimizer has realistic, multi-module input to chew on;
// the HLO works on the common IL and never sees MinC itself, mirroring
// the language-neutral design of the HP-UX compiler described in the
// paper (section 3).
package source

import "fmt"

// TokKind enumerates the lexical token kinds of MinC.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt

	// Keywords.
	TokModule
	TokVar
	TokFunc
	TokExtern
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokTrue
	TokFalse
	TokTypeInt
	TokTypeBool

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
)

var tokNames = map[TokKind]string{
	TokEOF:      "EOF",
	TokIdent:    "identifier",
	TokInt:      "integer literal",
	TokModule:   "module",
	TokVar:      "var",
	TokFunc:     "func",
	TokExtern:   "extern",
	TokIf:       "if",
	TokElse:     "else",
	TokWhile:    "while",
	TokFor:      "for",
	TokReturn:   "return",
	TokTrue:     "true",
	TokFalse:    "false",
	TokTypeInt:  "int",
	TokTypeBool: "bool",
	TokLParen:   "(",
	TokRParen:   ")",
	TokLBrace:   "{",
	TokRBrace:   "}",
	TokLBracket: "[",
	TokRBracket: "]",
	TokComma:    ",",
	TokSemi:     ";",
	TokAssign:   "=",
	TokPlus:     "+",
	TokMinus:    "-",
	TokStar:     "*",
	TokSlash:    "/",
	TokPercent:  "%",
	TokEq:       "==",
	TokNe:       "!=",
	TokLt:       "<",
	TokLe:       "<=",
	TokGt:       ">",
	TokGe:       ">=",
	TokAndAnd:   "&&",
	TokOrOr:     "||",
	TokBang:     "!",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"module": TokModule,
	"var":    TokVar,
	"func":   TokFunc,
	"extern": TokExtern,
	"if":     TokIf,
	"else":   TokElse,
	"while":  TokWhile,
	"for":    TokFor,
	"return": TokReturn,
	"true":   TokTrue,
	"false":  TokFalse,
	"int":    TokTypeInt,
	"bool":   TokTypeBool,
}

// Pos is a source position: 1-based line and column within one file.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its position and, where relevant,
// its literal text or integer value.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier text
	Int  int64  // integer literal value
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return t.Text
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return t.Kind.String()
	}
}
