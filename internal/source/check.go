package source

import "fmt"

// FuncSig describes a callable signature visible during checking.
type FuncSig struct {
	Name   string
	Params []Type
	Ret    Type
}

// moduleScope is the set of names visible at module level in one file.
type moduleScope struct {
	vars  map[string]Type    // module vars and extern vars
	funcs map[string]FuncSig // functions and extern functions
}

// checker type-checks one file.
type checker struct {
	file  string
	scope moduleScope
	// function-local state
	locals []map[string]Type // scope stack
	ret    Type
}

// Check verifies the static semantics of a parsed file: unique names,
// resolved references, and type agreement. It does not need other
// modules: cross-module references are checked against the file's
// extern declarations, and inter-module consistency is verified later
// when the program symbol table is built (see internal/il).
func Check(f *File) error {
	c := &checker{
		file: f.Name,
		scope: moduleScope{
			vars:  make(map[string]Type),
			funcs: make(map[string]FuncSig),
		},
	}
	declare := func(pos Pos, name string) error {
		if _, ok := c.scope.vars[name]; ok {
			return c.errorf(pos, "duplicate declaration of %s", name)
		}
		if _, ok := c.scope.funcs[name]; ok {
			return c.errorf(pos, "duplicate declaration of %s", name)
		}
		return nil
	}
	for _, v := range f.Vars {
		if err := declare(v.Pos, v.Name); err != nil {
			return err
		}
		if v.Type.Kind == TypeVoid {
			return c.errorf(v.Pos, "variable %s has void type", v.Name)
		}
		c.scope.vars[v.Name] = v.Type
	}
	for _, e := range f.Externs {
		if err := declare(e.Pos, e.Name); err != nil {
			return err
		}
		if e.IsFunc {
			sig := FuncSig{Name: e.Name, Ret: e.Ret}
			for _, p := range e.Params {
				sig.Params = append(sig.Params, p.Type)
			}
			c.scope.funcs[e.Name] = sig
		} else {
			c.scope.vars[e.Name] = e.Type
		}
	}
	for _, fn := range f.Funcs {
		if err := declare(fn.Pos, fn.Name); err != nil {
			return err
		}
		sig := FuncSig{Name: fn.Name, Ret: fn.Ret}
		for _, p := range fn.Params {
			sig.Params = append(sig.Params, p.Type)
		}
		c.scope.funcs[fn.Name] = sig
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) errorf(pos Pos, format string, args ...any) error {
	return &Error{File: c.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) push() { c.locals = append(c.locals, make(map[string]Type)) }
func (c *checker) pop()  { c.locals = c.locals[:len(c.locals)-1] }

func (c *checker) declareLocal(pos Pos, name string, t Type) error {
	top := c.locals[len(c.locals)-1]
	if _, ok := top[name]; ok {
		return c.errorf(pos, "duplicate declaration of %s in this scope", name)
	}
	top[name] = t
	return nil
}

// lookupVar resolves a scalar variable name: innermost local scope
// first, then module scope.
func (c *checker) lookupVar(name string) (Type, bool) {
	for i := len(c.locals) - 1; i >= 0; i-- {
		if t, ok := c.locals[i][name]; ok {
			return t, true
		}
	}
	t, ok := c.scope.vars[name]
	return t, ok
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.ret = fn.Ret
	c.locals = nil
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		if p.Type.Kind == TypeVoid {
			return c.errorf(p.Pos, "parameter %s has void type", p.Name)
		}
		if err := c.declareLocal(p.Pos, p.Name, p.Type); err != nil {
			return err
		}
	}
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	if fn.Ret.Kind != TypeVoid && !terminates(fn.Body) {
		return c.errorf(fn.Pos, "function %s: missing return on some path", fn.Name)
	}
	return nil
}

// terminates conservatively reports whether every path through s ends
// in a return.
func terminates(s Stmt) bool {
	switch s := s.(type) {
	case *ReturnStmt:
		return true
	case *BlockStmt:
		for _, st := range s.Stmts {
			if terminates(st) {
				return true
			}
		}
		return false
	case *IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Then) && terminates(s.Else)
	}
	return false
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *LocalDecl:
		if s.Init != nil {
			t, err := c.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if t.Kind != s.Type.Kind {
				return c.errorf(s.Pos, "cannot initialize %s %s with %s", s.Type, s.Name, t)
			}
		}
		return c.declareLocal(s.Pos, s.Name, s.Type)
	case *AssignStmt:
		vt, ok := c.lookupVar(s.Name)
		if !ok {
			return c.errorf(s.Pos, "undefined variable %s", s.Name)
		}
		val, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if s.Index != nil {
			if vt.Kind != TypeArray {
				return c.errorf(s.Pos, "%s is not an array", s.Name)
			}
			it, err := c.checkExpr(s.Index)
			if err != nil {
				return err
			}
			if it.Kind != TypeInt {
				return c.errorf(s.Pos, "array index must be int, have %s", it)
			}
			if val.Kind != TypeInt {
				return c.errorf(s.Pos, "array element assignment requires int, have %s", val)
			}
			return nil
		}
		if vt.Kind == TypeArray {
			return c.errorf(s.Pos, "cannot assign to array %s", s.Name)
		}
		if val.Kind != vt.Kind {
			return c.errorf(s.Pos, "cannot assign %s to %s %s", val, vt, s.Name)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExprAllowVoid(s.X)
		return err
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		return c.checkBlock(s.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if s.Value == nil {
			if c.ret.Kind != TypeVoid {
				return c.errorf(s.Pos, "missing return value")
			}
			return nil
		}
		if c.ret.Kind == TypeVoid {
			return c.errorf(s.Pos, "void function returns a value")
		}
		t, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if t.Kind != c.ret.Kind {
			return c.errorf(s.Pos, "cannot return %s from function returning %s", t, c.ret)
		}
		return nil
	}
	return fmt.Errorf("source: unknown statement %T", s)
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t.Kind != TypeBool {
		return c.errorf(e.Position(), "condition must be bool, have %s", t)
	}
	return nil
}

func (c *checker) checkExprAllowVoid(e Expr) (Type, error) {
	if call, ok := e.(*CallExpr); ok {
		sig, ok := c.scope.funcs[call.Name]
		if !ok {
			return Type{}, c.errorf(call.Pos, "undefined function %s", call.Name)
		}
		if err := c.checkCallArgs(call, sig); err != nil {
			return Type{}, err
		}
		return sig.Ret, nil
	}
	return c.checkExpr(e)
}

func (c *checker) checkCallArgs(call *CallExpr, sig FuncSig) error {
	if len(call.Args) != len(sig.Params) {
		return c.errorf(call.Pos, "%s expects %d arguments, got %d", call.Name, len(sig.Params), len(call.Args))
	}
	for i, a := range call.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return err
		}
		if t.Kind != sig.Params[i].Kind {
			return c.errorf(a.Position(), "%s argument %d: have %s, want %s", call.Name, i+1, t, sig.Params[i])
		}
	}
	return nil
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return Type{Kind: TypeInt}, nil
	case *BoolLit:
		return Type{Kind: TypeBool}, nil
	case *VarRef:
		t, ok := c.lookupVar(e.Name)
		if !ok {
			return Type{}, c.errorf(e.Pos, "undefined variable %s", e.Name)
		}
		if t.Kind == TypeArray {
			return Type{}, c.errorf(e.Pos, "array %s cannot be used as a value", e.Name)
		}
		return t, nil
	case *IndexExpr:
		t, ok := c.lookupVar(e.Name)
		if !ok {
			return Type{}, c.errorf(e.Pos, "undefined variable %s", e.Name)
		}
		if t.Kind != TypeArray {
			return Type{}, c.errorf(e.Pos, "%s is not an array", e.Name)
		}
		it, err := c.checkExpr(e.Index)
		if err != nil {
			return Type{}, err
		}
		if it.Kind != TypeInt {
			return Type{}, c.errorf(e.Pos, "array index must be int, have %s", it)
		}
		return Type{Kind: TypeInt}, nil
	case *CallExpr:
		sig, ok := c.scope.funcs[e.Name]
		if !ok {
			return Type{}, c.errorf(e.Pos, "undefined function %s", e.Name)
		}
		if sig.Ret.Kind == TypeVoid {
			return Type{}, c.errorf(e.Pos, "void function %s used as a value", e.Name)
		}
		if err := c.checkCallArgs(e, sig); err != nil {
			return Type{}, err
		}
		return sig.Ret, nil
	case *UnaryExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case TokMinus:
			if t.Kind != TypeInt {
				return Type{}, c.errorf(e.Pos, "unary - requires int, have %s", t)
			}
			return t, nil
		case TokBang:
			if t.Kind != TypeBool {
				return Type{}, c.errorf(e.Pos, "! requires bool, have %s", t)
			}
			return t, nil
		}
		return Type{}, c.errorf(e.Pos, "invalid unary operator %s", e.Op)
	case *BinaryExpr:
		lt, err := c.checkExpr(e.L)
		if err != nil {
			return Type{}, err
		}
		rt, err := c.checkExpr(e.R)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
			if lt.Kind != TypeInt || rt.Kind != TypeInt {
				return Type{}, c.errorf(e.Pos, "%s requires int operands, have %s and %s", e.Op, lt, rt)
			}
			return Type{Kind: TypeInt}, nil
		case TokLt, TokLe, TokGt, TokGe:
			if lt.Kind != TypeInt || rt.Kind != TypeInt {
				return Type{}, c.errorf(e.Pos, "%s requires int operands, have %s and %s", e.Op, lt, rt)
			}
			return Type{Kind: TypeBool}, nil
		case TokEq, TokNe:
			if lt.Kind != rt.Kind || lt.Kind == TypeArray || lt.Kind == TypeVoid {
				return Type{}, c.errorf(e.Pos, "%s requires matching scalar operands, have %s and %s", e.Op, lt, rt)
			}
			return Type{Kind: TypeBool}, nil
		case TokAndAnd, TokOrOr:
			if lt.Kind != TypeBool || rt.Kind != TypeBool {
				return Type{}, c.errorf(e.Pos, "%s requires bool operands, have %s and %s", e.Op, lt, rt)
			}
			return Type{Kind: TypeBool}, nil
		}
		return Type{}, c.errorf(e.Pos, "invalid binary operator %s", e.Op)
	}
	return Type{}, fmt.Errorf("source: unknown expression %T", e)
}
