package source

import "fmt"

// Error is a frontend diagnostic carrying the file and position where
// the problem was found.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// Lexer turns MinC source text into tokens. The zero value is not
// usable; use NewLexer.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. The file name is used only in
// diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

func (l *Lexer) errorf(pos Pos, format string, args ...any) error {
	return &Error{File: l.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error for malformed input. At end
// of input it returns a TokEOF token indefinitely.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: text}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && isLetter(l.peek()) {
			return Token{}, l.errorf(pos, "malformed number: letter follows digits")
		}
		var v int64
		for _, d := range l.src[start:l.off] {
			nv := v*10 + int64(d-'0')
			if nv < v {
				return Token{}, l.errorf(pos, "integer literal overflows int64")
			}
			v = nv
		}
		return Token{Kind: TokInt, Pos: pos, Int: v}, nil
	}

	l.advance()
	one := func(k TokKind) (Token, error) { return Token{Kind: k, Pos: pos}, nil }
	two := func(next byte, k2, k1 TokKind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: k2, Pos: pos}, nil
		}
		if k1 == TokEOF {
			return Token{}, l.errorf(pos, "unexpected character %q", string([]byte{c}))
		}
		return Token{Kind: k1, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemi)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokBang)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokEOF)
	case '|':
		return two('|', TokOrOr, TokEOF)
	}
	return Token{}, l.errorf(pos, "unexpected character %q", string([]byte{c}))
}

// LexAll tokenizes the whole input, excluding the final EOF token.
// It is a convenience for tests and tools.
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
