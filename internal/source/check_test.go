package source

import (
	"strings"
	"testing"
)

func checkSrc(t *testing.T, src string) error {
	t.Helper()
	f, err := Parse("t.minc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Check(f)
}

func TestCheckValidPrograms(t *testing.T) {
	srcs := []string{
		sampleModule,
		`module m; func f() {}`,
		`module m; var g int; func f() int { g = g + 1; return g; }`,
		`module m; func f(a bool) bool { return !a && true; }`,
		`module m; extern func e() int; func f() int { return e(); }`,
		`module m; func f() int { var x int; { var x bool; x = true; } return x; }`,
		`module m; func f(n int) int { if (n <= 1) { return 1; } return n * f(n - 1); }`,
	}
	for i, src := range srcs {
		if err := checkSrc(t, src); err != nil {
			t.Errorf("program %d: unexpected error: %v", i, err)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`module m; var x int; var x int;`, "duplicate"},
		{`module m; func f() {} func f() {}`, "duplicate"},
		{`module m; var f int; func f() {}`, "duplicate"},
		{`module m; func f() int { return y; }`, "undefined variable"},
		{`module m; func f() int { return g(); }`, "undefined function"},
		{`module m; func f() int { return true; }`, "cannot return"},
		{`module m; func f() { return 1; }`, "void function returns"},
		{`module m; func f() int { }`, "missing return"},
		{`module m; func f() int { if (true) { return 1; } }`, "missing return"},
		{`module m; func f(a int) int { return f(a, a); }`, "expects 1 arguments"},
		{`module m; func f(a int) int { return f(true); }`, "argument 1"},
		{`module m; func f() { if (1) {} }`, "condition must be bool"},
		{`module m; func f() { while (0) {} }`, "condition must be bool"},
		{`module m; var a [4]int; func f() int { return a; }`, "cannot be used as a value"},
		{`module m; var a [4]int; func f() { a = 1; }`, "cannot assign to array"},
		{`module m; var x int; func f() { x[0] = 1; }`, "not an array"},
		{`module m; var a [4]int; func f() { a[true] = 1; }`, "index must be int"},
		{`module m; func f() { var x int = true; }`, "cannot initialize"},
		{`module m; func f() { var x int; var x int; }`, "duplicate"},
		{`module m; func f() bool { return 1 && true; }`, "bool operands"},
		{`module m; func f() bool { return true < false; }`, "int operands"},
		{`module m; func f() int { return -true; }`, "requires int"},
		{`module m; func f() bool { return !1; }`, "requires bool"},
		{`module m; func v() {} func f() int { return v(); }`, "used as a value"},
		{`module m; func f() bool { return 1 == true; }`, "matching scalar"},
		{`module m; func f(x int) { x(); }`, "undefined function"},
	}
	for _, tc := range cases {
		err := checkSrc(t, tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", tc.src, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.frag)
		}
	}
}

func TestCheckShadowingScopes(t *testing.T) {
	// A local may shadow a global; an inner scope may shadow an outer local.
	src := `module m;
var g int;
func f(g bool) bool {
	if (g) {
		var g int = 3;
		return g > 2;
	}
	return g;
}`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("shadowing should be legal: %v", err)
	}
}

func TestCheckForScope(t *testing.T) {
	// The for-init variable is scoped to the loop.
	src := `module m; func f() int {
		for (var i int = 0; i < 3; i = i + 1) {}
		return i;
	}`
	err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "undefined variable i") {
		t.Fatalf("expected undefined variable i, got %v", err)
	}
}

func TestTerminates(t *testing.T) {
	src := `module m;
func a() int { while (true) {} return 1; }
func b(x bool) int { if (x) { return 1; } else { return 2; } }
`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
}
