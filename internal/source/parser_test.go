package source

import (
	"strings"
	"testing"
)

const sampleModule = `
module alpha;

var g int = 7;
var buf [128]int;
extern func helper(n int) int;
extern var shared int;

func compute(a int, b int) int {
	var acc int = 0;
	for (var i int = 0; i < a; i = i + 1) {
		acc = acc + helper(i) * b;
		if (acc > 1000) {
			acc = acc % 1000;
		} else if (acc < 0) {
			acc = -acc;
		}
	}
	while (acc > 0 && g != 0) {
		acc = acc - g;
		buf[acc % 128] = acc;
	}
	return acc + shared + buf[0];
}

func main() int {
	return compute(10, 3);
}
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.minc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseSampleModule(t *testing.T) {
	f := mustParse(t, sampleModule)
	if f.Module != "alpha" {
		t.Errorf("module name = %q, want alpha", f.Module)
	}
	if len(f.Vars) != 2 {
		t.Errorf("got %d vars, want 2", len(f.Vars))
	}
	if len(f.Funcs) != 2 {
		t.Errorf("got %d funcs, want 2", len(f.Funcs))
	}
	if len(f.Externs) != 2 {
		t.Errorf("got %d externs, want 2", len(f.Externs))
	}
	if f.Vars[0].Init != 7 {
		t.Errorf("g init = %d, want 7", f.Vars[0].Init)
	}
	if f.Vars[1].Type.Kind != TypeArray || f.Vars[1].Type.Elems != 128 {
		t.Errorf("buf type = %v, want [128]int", f.Vars[1].Type)
	}
	if f.Lines == 0 {
		t.Error("Lines not recorded")
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `module m; func f() int { return 1 + 2 * 3; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.Value.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("top op = %T %v, want +", ret.Value, ret.Value)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("rhs op = %T, want *", add.R)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	f := mustParse(t, `module m; func f() int { return 10 - 3 - 2; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	outer := ret.Value.(*BinaryExpr)
	inner, ok := outer.L.(*BinaryExpr)
	if !ok || inner.Op != TokMinus {
		t.Fatalf("left operand is %T, want nested -", outer.L)
	}
	if lit, ok := outer.R.(*IntLit); !ok || lit.Val != 2 {
		t.Fatalf("right operand = %v, want 2", outer.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	// a || b && c parses as a || (b && c)
	f := mustParse(t, `module m; func f(a bool, b bool, c bool) bool { return a || b && c; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or := ret.Value.(*BinaryExpr)
	if or.Op != TokOrOr {
		t.Fatalf("top op = %v, want ||", or.Op)
	}
	if and, ok := or.R.(*BinaryExpr); !ok || and.Op != TokAndAnd {
		t.Fatalf("rhs = %T, want &&", or.R)
	}
}

func TestParseComparisonChain(t *testing.T) {
	// 1 + 2 < 3 * 4 parses as (1+2) < (3*4)
	f := mustParse(t, `module m; func f() bool { return 1 + 2 < 3 * 4; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp := ret.Value.(*BinaryExpr)
	if cmp.Op != TokLt {
		t.Fatalf("top op = %v, want <", cmp.Op)
	}
}

func TestParseUnary(t *testing.T) {
	f := mustParse(t, `module m; func f(x int) int { return --x; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	u1 := ret.Value.(*UnaryExpr)
	u2 := u1.X.(*UnaryExpr)
	if u1.Op != TokMinus || u2.Op != TokMinus {
		t.Fatal("expected nested unary minus")
	}
}

func TestParseCallStatementAndExpr(t *testing.T) {
	f := mustParse(t, `
module m;
func g() {}
func h(x int) int { return x; }
func f() int {
	g();
	var y int = h(1) + h(2);
	return y;
}`)
	body := f.Funcs[2].Body
	if _, ok := body.Stmts[0].(*ExprStmt); !ok {
		t.Errorf("stmt 0 is %T, want ExprStmt", body.Stmts[0])
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		`module m; func f() { for (;;) { return; } }`,
		`module m; func f() { for (var i int = 0; i < 10; i = i + 1) {} }`,
		`module m; var i int; func f() { for (i = 0; i < 3;) {} }`,
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseArrayAssignAndRead(t *testing.T) {
	f := mustParse(t, `module m; var a [4]int; func f(i int) int { a[i] = a[i+1] + 1; return a[0]; }`)
	as, ok := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if !ok || as.Index == nil {
		t.Fatalf("stmt 0 = %T, want indexed assignment", f.Funcs[0].Body.Stmts[0])
	}
}

func TestParseNegativeGlobalInit(t *testing.T) {
	f := mustParse(t, `module m; var g int = -5;`)
	if f.Vars[0].Init != -5 {
		t.Errorf("init = %d, want -5", f.Vars[0].Init)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`func f() {}`, "module"},
		{`module m; func f( {}`, "expected"},
		{`module m; var x [0]int;`, "positive"},
		{`module m; func f(a [3]int) {}`, "array parameters"},
		{`module m; func f() { var a [3]int; }`, "module-level"},
		{`module m; var x bool = 3;`, "initializer"},
		{`module m; func f() int { return 1; `, "end of input"},
		{`module m; extern x;`, "func or var"},
		{`module m; 42`, "declaration"},
		{`module m; func f() { 1 + ; }`, "expression"},
	}
	for _, tc := range cases {
		_, err := Parse("t.minc", tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", tc.src, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.frag)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	f := mustParse(t, `module m; func f(a bool, b bool) int {
		if (a) { if (b) { return 1; } else { return 2; } }
		return 3;
	}`)
	outer := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else bound to outer if, want inner")
	}
	inner := outer.Then.Stmts[0].(*IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}
