package source

import (
	"fmt"
	"strings"
)

// Type is a MinC source-level type.
type Type struct {
	Kind  TypeKind
	Elems int64 // array length when Kind == TypeArray
}

// TypeKind enumerates MinC types.
type TypeKind uint8

// MinC type kinds. TypeVoid is the return type of value-less functions.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeBool
	TypeArray // fixed-size array of int; module-level variables only
)

func (t Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeArray:
		return fmt.Sprintf("[%d]int", t.Elems)
	}
	return fmt.Sprintf("Type(%d)", t.Kind)
}

// File is one parsed MinC source module.
type File struct {
	Name    string // file name for diagnostics
	Module  string // module name from the `module` header
	Vars    []*VarDecl
	Funcs   []*FuncDecl
	Externs []*ExternDecl
	Lines   int // number of source lines, for memory-per-line accounting
}

// VarDecl is a module-level variable declaration.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init int64 // initial value; arrays are zero-initialized
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    Type
	Body   *BlockStmt
}

// ExternDecl declares a symbol defined in another module.
type ExternDecl struct {
	Pos    Pos
	Name   string
	IsFunc bool
	Params []Param // functions only
	Ret    Type    // functions only
	Type   Type    // variables only
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// LocalDecl declares a function-local variable (int or bool).
type LocalDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // nil means zero value
}

// AssignStmt assigns to a variable or to an element of a module-level array.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post are assignments or
// local declarations (Init only); any part may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // *LocalDecl or *AssignStmt, or nil
	Cond Expr // nil means true
	Post Stmt // *AssignStmt or nil
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void return
}

func (*BlockStmt) stmtNode()  {}
func (*LocalDecl) stmtNode()  {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode() {}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	Pos Pos
	Val bool
}

// VarRef names a local variable, parameter, or module-level scalar.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an element of a module-level array.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function by name.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	Op  TokKind // TokMinus or TokBang
	X   Expr
}

// BinaryExpr is a binary operation. && and || short-circuit.
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	L, R Expr
}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Position reports the source position of the expression.
func (e *IntLit) Position() Pos     { return e.Pos }
func (e *BoolLit) Position() Pos    { return e.Pos }
func (e *VarRef) Position() Pos     { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }

// countLines reports the number of newline-terminated lines in src,
// counting a trailing partial line.
func countLines(src string) int {
	if src == "" {
		return 0
	}
	n := strings.Count(src, "\n")
	if !strings.HasSuffix(src, "\n") {
		n++
	}
	return n
}
