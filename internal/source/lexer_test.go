package source

import (
	"strings"
	"testing"
)

func TestLexBasicTokens(t *testing.T) {
	src := `module m; var x int = 42; func f(a int) int { return a + x; }`
	toks, err := LexAll("t.minc", src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	want := []TokKind{
		TokModule, TokIdent, TokSemi,
		TokVar, TokIdent, TokTypeInt, TokAssign, TokInt, TokSemi,
		TokFunc, TokIdent, TokLParen, TokIdent, TokTypeInt, TokRParen, TokTypeInt,
		TokLBrace, TokReturn, TokIdent, TokPlus, TokIdent, TokSemi, TokRBrace,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := []struct {
		src  string
		want TokKind
	}{
		{"==", TokEq}, {"!=", TokNe}, {"<=", TokLe}, {">=", TokGe},
		{"<", TokLt}, {">", TokGt}, {"&&", TokAndAnd}, {"||", TokOrOr},
		{"!", TokBang}, {"=", TokAssign}, {"+", TokPlus}, {"-", TokMinus},
		{"*", TokStar}, {"/", TokSlash}, {"%", TokPercent},
	}
	for _, tc := range cases {
		toks, err := LexAll("t", tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if len(toks) != 1 || toks[0].Kind != tc.want {
			t.Errorf("%q: got %v, want single %s", tc.src, toks, tc.want)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := "// line comment\nmodule /* block\ncomment */ m;"
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if len(toks) != 3 || toks[0].Kind != TokModule || toks[1].Text != "m" {
		t.Fatalf("unexpected tokens: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	src := "module m;\n  var x int;"
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if toks[3].Kind != TokVar {
		t.Fatalf("token 3 is %v, want var", toks[3])
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("var position = %v, want 2:3", toks[3].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"@",
		"123abc",
		"/* unterminated",
		"&",
		"|x",
		"99999999999999999999999999",
	}
	for _, src := range cases {
		if _, err := LexAll("t", src); err == nil {
			t.Errorf("%q: expected lex error, got none", src)
		}
	}
}

func TestLexEOFIsSticky(t *testing.T) {
	l := NewLexer("t", "x")
	if tok, err := l.Next(); err != nil || tok.Kind != TokIdent {
		t.Fatalf("first token: %v, %v", tok, err)
	}
	for i := 0; i < 3; i++ {
		tok, err := l.Next()
		if err != nil || tok.Kind != TokEOF {
			t.Fatalf("expected sticky EOF, got %v, %v", tok, err)
		}
	}
}

func TestLexErrorMessageHasPosition(t *testing.T) {
	_, err := LexAll("file.minc", "module m;\n@")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "file.minc:2:1") {
		t.Errorf("error %q does not mention position file.minc:2:1", err)
	}
}

func TestCountLines(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a\n", 1},
		{"a\nb", 2},
		{"a\nb\n", 2},
	}
	for _, tc := range cases {
		if got := countLines(tc.src); got != tc.want {
			t.Errorf("countLines(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}
