package source

import "fmt"

// Parser is a recursive-descent parser for MinC. Use Parse.
type Parser struct {
	lex  *Lexer
	file string
	tok  Token
	err  error
}

// Parse parses one MinC source module.
func Parse(file, src string) (*File, error) {
	p := &Parser{lex: NewLexer(file, src), file: file}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	f, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	f.Name = file
	f.Lines = countLines(src)
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokEOF}
		return
	}
	p.tok = t
}

func (p *Parser) errorf(format string, args ...any) error {
	if p.err != nil {
		return p.err
	}
	return &Error{File: p.file, Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t, p.err
}

func (p *Parser) accept(k TokKind) bool {
	if p.err == nil && p.tok.Kind == k {
		p.next()
		return p.err == nil
	}
	return false
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	if _, err := p.expect(TokModule); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	f.Module = name.Text
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokVar:
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, d)
		case TokFunc:
			d, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, d)
		case TokExtern:
			d, err := p.parseExternDecl()
			if err != nil {
				return nil, err
			}
			f.Externs = append(f.Externs, d)
		default:
			return nil, p.errorf("expected declaration, found %s", p.tok)
		}
	}
	return f, p.err
}

func (p *Parser) parseType() (Type, error) {
	switch p.tok.Kind {
	case TokTypeInt:
		p.next()
		return Type{Kind: TypeInt}, p.err
	case TokTypeBool:
		p.next()
		return Type{Kind: TypeBool}, p.err
	case TokLBracket:
		p.next()
		n, err := p.expect(TokInt)
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TokTypeInt); err != nil {
			return Type{}, err
		}
		if n.Int <= 0 {
			return Type{}, &Error{File: p.file, Pos: n.Pos, Msg: "array length must be positive"}
		}
		return Type{Kind: TypeArray, Elems: n.Int}, nil
	}
	return Type{}, p.errorf("expected type, found %s", p.tok)
}

func (p *Parser) parseVarDecl() (*VarDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokVar); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: pos, Name: name.Text, Type: typ}
	if p.accept(TokAssign) {
		neg := p.accept(TokMinus)
		v, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if typ.Kind != TypeInt {
			return nil, &Error{File: p.file, Pos: v.Pos, Msg: "initializer allowed only for int variables"}
		}
		d.Init = v.Int
		if neg {
			d.Init = -d.Init
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseParams() ([]Param, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Param
	if p.tok.Kind != TokRParen {
		for {
			pos := p.tok.Pos
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if typ.Kind == TypeArray {
				return nil, &Error{File: p.file, Pos: pos, Msg: "array parameters are not supported"}
			}
			params = append(params, Param{Pos: pos, Name: name.Text, Type: typ})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseRetType() (Type, error) {
	if p.tok.Kind == TokTypeInt || p.tok.Kind == TokTypeBool {
		return p.parseType()
	}
	return Type{Kind: TypeVoid}, nil
}

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokFunc); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	ret, err := p.parseRetType()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: pos, Name: name.Text, Params: params, Ret: ret, Body: body}, nil
}

func (p *Parser) parseExternDecl() (*ExternDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokExtern); err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokFunc:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		ret, err := p.parseRetType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExternDecl{Pos: pos, Name: name.Text, IsFunc: true, Params: params, Ret: ret}, nil
	case TokVar:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExternDecl{Pos: pos, Name: name.Text, Type: typ}, nil
	}
	return nil, p.errorf("expected func or var after extern, found %s", p.tok)
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return nil, p.errorf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, p.err
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokVar:
		return p.parseLocalDecl(true)
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokReturn:
		return p.parseReturn()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseLocalDecl(wantSemi bool) (*LocalDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokVar); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ.Kind == TypeArray {
		return nil, &Error{File: p.file, Pos: pos, Msg: "array variables must be module-level"}
	}
	d := &LocalDecl{Pos: pos, Name: name.Text, Type: typ}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if wantSemi {
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseSimpleStmt parses an assignment or expression statement without
// consuming a trailing semicolon.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.tok.Pos
	if p.tok.Kind == TokIdent {
		name := p.tok.Text
		p.next()
		switch p.tok.Kind {
		case TokAssign:
			p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Name: name, Value: v}, nil
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokAssign {
				p.next()
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: pos, Name: name, Index: idx, Value: v}, nil
			}
			// An index expression used as a statement: re-wrap as expr.
			e, err := p.parseExprSuffix(&IndexExpr{Pos: pos, Name: name, Index: idx})
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, X: e}, nil
		case TokLParen:
			call, err := p.parseCallArgs(pos, name)
			if err != nil {
				return nil, err
			}
			e, err := p.parseExprSuffix(call)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, X: e}, nil
		default:
			e, err := p.parseExprSuffix(&VarRef{Pos: pos, Name: name})
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, X: e}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: e}, nil
}

// parseExprSuffix continues expression parsing given an already-parsed
// primary expression (used when statement parsing has consumed a prefix).
func (p *Parser) parseExprSuffix(primary Expr) (Expr, error) {
	return p.parseBinaryRHS(0, primary)
}

func (p *Parser) parseIf() (*IfStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokIf); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.tok.Kind == TokIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (*WhileStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (*ForStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokFor); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: pos}
	if p.tok.Kind != TokSemi {
		if p.tok.Kind == TokVar {
			d, err := p.parseLocalDecl(false)
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) parseReturn() (*ReturnStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokReturn); err != nil {
		return nil, err
	}
	s := &ReturnStmt{Pos: pos}
	if p.tok.Kind != TokSemi {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Value = v
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// Binary operator precedence, higher binds tighter.
func precOf(k TokKind) int {
	switch k {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokEq, TokNe:
		return 3
	case TokLt, TokLe, TokGt, TokGe:
		return 4
	case TokPlus, TokMinus:
		return 5
	case TokStar, TokSlash, TokPercent:
		return 6
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryRHS(0, lhs)
}

func (p *Parser) parseBinaryRHS(minPrec int, lhs Expr) (Expr, error) {
	for {
		prec := precOf(p.tok.Kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		for {
			nprec := precOf(p.tok.Kind)
			if nprec <= prec {
				break
			}
			rhs, err = p.parseBinaryRHS(nprec, rhs)
			if err != nil {
				return nil, err
			}
		}
		lhs = &BinaryExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case TokMinus, TokBang:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parseCallArgs(pos Pos, name string) (*CallExpr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Pos: pos, Name: name}
	if p.tok.Kind != TokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokInt:
		v := p.tok.Int
		p.next()
		return &IntLit{Pos: pos, Val: v}, p.err
	case TokTrue:
		p.next()
		return &BoolLit{Pos: pos, Val: true}, p.err
	case TokFalse:
		p.next()
		return &BoolLit{Pos: pos, Val: false}, p.err
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := p.tok.Text
		p.next()
		switch p.tok.Kind {
		case TokLParen:
			return p.parseCallArgs(pos, name)
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: pos, Name: name, Index: idx}, nil
		}
		return &VarRef{Pos: pos, Name: name}, p.err
	}
	return nil, p.errorf("expected expression, found %s", p.tok)
}
