// Package callgraph builds and analyzes the program call graph. The
// call graph is a global object in the paper's NAIM taxonomy
// (Figure 3): it is always memory resident, refers to functions only
// by PID, and is rebuilt from scratch rather than kept incrementally
// up to date.
package callgraph

import (
	"sort"

	"cmo/internal/il"
)

// Edge is one static call edge with the number of distinct sites.
type Edge struct {
	Caller, Callee il.PID
	Sites          int
}

// Graph is the program call graph over defined functions.
type Graph struct {
	// Callees[pid] lists distinct callee PIDs in first-seen order.
	Callees map[il.PID][]il.PID
	// Callers[pid] lists distinct caller PIDs.
	Callers map[il.PID][]il.PID
	// SiteCount[{a,b}] is the number of static call sites a->b.
	SiteCount map[[2]il.PID]int
	// PIDs is the set of defined functions, in PID order.
	PIDs []il.PID

	scc    map[il.PID]int // SCC id per function
	sccCnt int
}

// Build constructs the call graph, pulling each function body once
// through src (typically the NAIM loader).
func Build(prog *il.Program, src func(il.PID) *il.Function) *Graph {
	g := &Graph{
		Callees:   make(map[il.PID][]il.PID),
		Callers:   make(map[il.PID][]il.PID),
		SiteCount: make(map[[2]il.PID]int),
		PIDs:      prog.FuncPIDs(),
	}
	for _, pid := range g.PIDs {
		f := src(pid)
		if f == nil {
			continue
		}
		seen := make(map[il.PID]bool)
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != il.Call {
					continue
				}
				g.SiteCount[[2]il.PID{pid, in.Sym}]++
				if !seen[in.Sym] {
					seen[in.Sym] = true
					g.Callees[pid] = append(g.Callees[pid], in.Sym)
					g.Callers[in.Sym] = append(g.Callers[in.Sym], pid)
				}
			}
		}
	}
	g.computeSCC()
	return g
}

// FromEdges constructs the graph from pre-collected edges instead of
// re-reading bodies — for callers (internal/ipa) that already scanned
// each function once and should not pull every body a second time.
// callees lists each function's distinct callee PIDs in first-seen
// order; sites carries per-edge static site counts (nil for none).
// The pid slice is not copied; the maps are shared, not copied.
func FromEdges(pids []il.PID, callees map[il.PID][]il.PID, sites map[[2]il.PID]int) *Graph {
	g := &Graph{
		Callees:   callees,
		Callers:   make(map[il.PID][]il.PID),
		SiteCount: sites,
		PIDs:      pids,
	}
	if g.Callees == nil {
		g.Callees = make(map[il.PID][]il.PID)
	}
	if g.SiteCount == nil {
		g.SiteCount = make(map[[2]il.PID]int)
	}
	for _, pid := range pids {
		for _, c := range g.Callees[pid] {
			g.Callers[c] = append(g.Callers[c], pid)
		}
	}
	g.computeSCC()
	return g
}

// computeSCC runs Tarjan's algorithm iteratively (generated programs
// can have deep call chains) over the call graph.
func (g *Graph) computeSCC() {
	g.scc = make(map[il.PID]int, len(g.PIDs))
	index := make(map[il.PID]int, len(g.PIDs))
	lowlink := make(map[il.PID]int, len(g.PIDs))
	onStack := make(map[il.PID]bool, len(g.PIDs))
	var stack []il.PID
	next := 0

	type frame struct {
		v  il.PID
		ci int
	}
	for _, root := range g.PIDs {
		if _, done := index[root]; done {
			continue
		}
		work := []frame{{v: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ci < len(g.Callees[f.v]) {
				w := g.Callees[f.v][f.ci]
				f.ci++
				if _, seen := index[w]; !seen {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] {
					if index[w] < lowlink[f.v] {
						lowlink[f.v] = index[w]
					}
				}
				continue
			}
			// Pop.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.scc[w] = g.sccCnt
					if w == v {
						break
					}
				}
				g.sccCnt++
			}
		}
	}
}

// SameSCC reports whether two functions are mutually recursive (or
// identical).
func (g *Graph) SameSCC(a, b il.PID) bool { return g.scc[a] == g.scc[b] }

// BottomUp returns functions in callee-before-caller order (reverse
// topological order of SCCs), the order the inliner processes them so
// that already-inlined callees are seen by their callers. Ties are
// broken by PID for determinism.
func (g *Graph) BottomUp() []il.PID {
	// Tarjan assigns SCC ids in reverse topological order of the
	// condensation: an SCC gets its id only after all SCCs reachable
	// from it. So ascending SCC id == callees first.
	out := make([]il.PID, len(g.PIDs))
	copy(out, g.PIDs)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := g.scc[out[i]], g.scc[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// Reachable returns the set of functions reachable from entry
// (including entry itself).
func (g *Graph) Reachable(entry il.PID) map[il.PID]bool {
	seen := map[il.PID]bool{entry: true}
	work := []il.PID{entry}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, w := range g.Callees[v] {
			if !seen[w] {
				seen[w] = true
				work = append(work, w)
			}
		}
	}
	return seen
}
