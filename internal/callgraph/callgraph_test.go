package callgraph

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/source"
)

func build(t *testing.T, src string) (*il.Program, map[il.PID]*il.Function, *Graph) {
	t.Helper()
	f, err := source.Parse("t.minc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := source.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := lower.Modules([]*source.File{f})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	g := Build(res.Prog, func(p il.PID) *il.Function { return res.Funcs[p] })
	return res.Prog, res.Funcs, g
}

const graphSrc = `module m;
func leaf(x int) int { return x + 1; }
func mid(x int) int { return leaf(x) + leaf(x * 2); }
func top(x int) int { return mid(x) + leaf(x); }
func recA(n int) int { if (n <= 0) { return 0; } return recB(n - 1); }
func recB(n int) int { return recA(n); }
func island() int { return 7; }
func main() int { return top(3) + recA(2); }`

func TestGraphEdges(t *testing.T) {
	prog, _, g := build(t, graphSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	// mid calls leaf at two sites.
	if got := g.SiteCount[[2]il.PID{pid("mid"), pid("leaf")}]; got != 2 {
		t.Errorf("mid->leaf sites = %d, want 2", got)
	}
	// top's callees include mid and leaf.
	found := map[il.PID]bool{}
	for _, c := range g.Callees[pid("top")] {
		found[c] = true
	}
	if !found[pid("mid")] || !found[pid("leaf")] {
		t.Errorf("top callees wrong: %v", g.Callees[pid("top")])
	}
	// leaf's callers include mid and top.
	callers := map[il.PID]bool{}
	for _, c := range g.Callers[pid("leaf")] {
		callers[c] = true
	}
	if !callers[pid("mid")] || !callers[pid("top")] {
		t.Errorf("leaf callers wrong: %v", g.Callers[pid("leaf")])
	}
}

func TestSCC(t *testing.T) {
	prog, _, g := build(t, graphSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	if !g.SameSCC(pid("recA"), pid("recB")) {
		t.Error("recA/recB should share an SCC")
	}
	if g.SameSCC(pid("leaf"), pid("mid")) {
		t.Error("leaf and mid are not mutually recursive")
	}
	if !g.SameSCC(pid("leaf"), pid("leaf")) {
		t.Error("a function shares its own SCC")
	}
}

func TestBottomUpOrder(t *testing.T) {
	prog, _, g := build(t, graphSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	order := g.BottomUp()
	pos := make(map[il.PID]int)
	for i, p := range order {
		pos[p] = i
	}
	if len(order) != len(g.PIDs) {
		t.Fatalf("order has %d entries, want %d", len(order), len(g.PIDs))
	}
	if !(pos[pid("leaf")] < pos[pid("mid")] && pos[pid("mid")] < pos[pid("top")]) {
		t.Errorf("bottom-up order violated: leaf=%d mid=%d top=%d",
			pos[pid("leaf")], pos[pid("mid")], pos[pid("top")])
	}
	if !(pos[pid("top")] < pos[pid("main")]) {
		t.Errorf("main should come after top")
	}
}

func TestReachable(t *testing.T) {
	prog, _, g := build(t, graphSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	r := g.Reachable(pid("main"))
	for _, n := range []string{"main", "top", "mid", "leaf", "recA", "recB"} {
		if !r[pid(n)] {
			t.Errorf("%s should be reachable", n)
		}
	}
	if r[pid("island")] {
		t.Error("island should be unreachable")
	}
}

func TestBottomUpDeterministic(t *testing.T) {
	_, _, g1 := build(t, graphSrc)
	_, _, g2 := build(t, graphSrc)
	o1, o2 := g1.BottomUp(), g2.BottomUp()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("BottomUp not deterministic")
		}
	}
}
