package ipa

import (
	"sort"
	"strings"

	"cmo/internal/callgraph"
	"cmo/internal/il"
	"cmo/internal/obs"
)

// Purity classifies a function by its transitive effects.
type Purity uint8

const (
	// Neither: the function may write globals or call out of scope.
	Neither Purity = iota
	// Pure: no writes and no out-of-scope calls, but it may read
	// global state — two calls compute the same value as long as no
	// write intervenes.
	Pure
	// Const: no global reads or writes and no out-of-scope calls —
	// the result depends only on the arguments.
	Const
)

func (p Purity) String() string {
	switch p {
	case Const:
		return "const"
	case Pure:
		return "pure"
	}
	return "neither"
}

// Summary is one function's transitive side-effect summary: the
// globals it may write (MOD) and read (REF), closed over everything
// it can call. Top bits stand for "any global" — the conservative
// answer for effects the analysis cannot see.
type Summary struct {
	// Mod is the set of globals (scalar and array symbols) the
	// function or anything it calls may store. Meaningless when
	// ModTop is set.
	Mod map[il.PID]bool
	// Ref is the set of globals the function or anything it calls
	// may load. Meaningless when RefTop is set.
	Ref map[il.PID]bool
	// ModTop / RefTop widen the respective set to "every global".
	ModTop bool
	RefTop bool
	// CallsOut reports that execution may leave the analyzed world: a
	// callee outside the scope, a callee with no body, or a profiling
	// probe. Such a function can never be Pure or Const.
	CallsOut bool
	// Purity is derived from the final sets (see Purity).
	Purity Purity
}

// Top returns the all-effects summary, the meaning of "no summary".
func Top() *Summary {
	return &Summary{ModTop: true, RefTop: true, CallsOut: true, Purity: Neither}
}

// Mods reports whether the function may store global g.
func (s *Summary) Mods(g il.PID) bool { return s.ModTop || s.Mod[g] }

// Refs reports whether the function may load global g.
func (s *Summary) Refs(g il.PID) bool { return s.RefTop || s.Ref[g] }

// WritesAnything reports whether the function may store any global.
func (s *Summary) WritesAnything() bool { return s.ModTop || len(s.Mod) > 0 }

// Fingerprint renders the summary as a stable, PID-free string:
// sorted global names, so two builds that intern PIDs differently
// still agree. HLO's replay records embed it so cached transforms
// invalidate when a callee's side effects change.
func (s *Summary) Fingerprint(prog *il.Program) string {
	var sb strings.Builder
	sb.WriteString(s.Purity.String())
	if s.CallsOut {
		sb.WriteString(";out")
	}
	sb.WriteString(";mod=")
	writeSet(&sb, prog, s.Mod, s.ModTop)
	sb.WriteString(";ref=")
	writeSet(&sb, prog, s.Ref, s.RefTop)
	return sb.String()
}

func writeSet(sb *strings.Builder, prog *il.Program, set map[il.PID]bool, top bool) {
	if top {
		sb.WriteByte('*')
		return
	}
	names := make([]string, 0, len(set))
	for g := range set {
		names = append(names, prog.Sym(g).Name)
	}
	sort.Strings(names)
	sb.WriteString(strings.Join(names, ","))
}

// Summaries maps each analyzed function to its summary. A missing
// entry means Top: the function was out of scope (or had no body)
// and nothing may be assumed about it.
type Summaries map[il.PID]*Summary

// Options configures one analysis.
type Options struct {
	// Scope restricts the analysis to these functions (nil = every
	// defined function). Calls leaving the scope widen to Top — this
	// is selectivity's decay: routines not selected for optimization
	// are summarized as "may do anything".
	Scope map[il.PID]bool
	// MaxSet caps MOD/REF set size before widening to Top (0 means
	// DefaultMaxSet). The cap bounds summary memory on programs with
	// very large global populations.
	MaxSet int
	// Span is the trace span the analysis nests under (the driver's
	// "ipa" span). The zero Span records nothing.
	Span obs.Span
}

// DefaultMaxSet is the default MOD/REF widening threshold.
const DefaultMaxSet = 4096

// Stats reports what the analysis found.
type Stats struct {
	Functions int // functions summarized
	SCCs      int // strongly connected components processed
	ConstFns  int
	PureFns   int
	TopFns    int // widened to Top (out-of-scope reach, probes, cap)
}

// Result is the outcome of one analysis.
type Result struct {
	Summaries Summaries
	Stats     Stats
}

// Source provides function bodies, pinned from Function until the
// matching DoneWith (the NAIM loader contract).
type Source interface {
	Function(pid il.PID) *il.Function
	DoneWith(pid il.PID)
}

// directEffects is one function's own effects, before propagation.
type directEffects struct {
	mod, ref map[il.PID]bool
	callsOut bool // Probe: an effect outside the global model
	callees  []il.PID
}

// Analyze computes MOD/REF summaries for every in-scope function with
// a body: one scan per body, then a bottom-up SCC fixpoint over the
// call graph. The result is deterministic: scan order is PID order
// and propagation order is the callgraph's canonical bottom-up order.
func Analyze(prog *il.Program, src Source, opts Options) *Result {
	maxSet := opts.MaxSet
	if maxSet <= 0 {
		maxSet = DefaultMaxSet
	}
	inScope := func(pid il.PID) bool { return opts.Scope == nil || opts.Scope[pid] }

	sp := opts.Span.Child("ipa scan")
	direct := make(map[il.PID]*directEffects)
	callees := make(map[il.PID][]il.PID)
	sites := make(map[[2]il.PID]int)
	var pids []il.PID
	for _, pid := range prog.FuncPIDs() {
		if !inScope(pid) {
			continue
		}
		f := src.Function(pid)
		if f == nil {
			continue
		}
		d := &directEffects{mod: make(map[il.PID]bool), ref: make(map[il.PID]bool)}
		seen := make(map[il.PID]bool)
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				switch in.Op {
				case il.LoadG, il.LoadX:
					d.ref[in.Sym] = true
				case il.StoreG, il.StoreX:
					d.mod[in.Sym] = true
				case il.Probe:
					d.callsOut = true
				case il.Call:
					sites[[2]il.PID{pid, in.Sym}]++
					if !seen[in.Sym] {
						seen[in.Sym] = true
						d.callees = append(d.callees, in.Sym)
					}
				}
			}
		}
		src.DoneWith(pid)
		direct[pid] = d
		callees[pid] = d.callees
		pids = append(pids, pid)
	}
	sp.End()

	sp = opts.Span.Child("ipa propagate")
	g := callgraph.FromEdges(pids, callees, sites)
	res := &Result{Summaries: make(Summaries, len(pids))}
	res.Stats.Functions = len(pids)

	order := g.BottomUp()
	// BottomUp emits SCC members adjacently in ascending SCC id
	// (callees first); process one component at a time.
	for lo := 0; lo < len(order); {
		hi := lo + 1
		for hi < len(order) && g.SameSCC(order[lo], order[hi]) {
			hi++
		}
		group := order[lo:hi]
		res.Stats.SCCs++
		// Seed each member with its direct effects.
		for _, pid := range group {
			d := direct[pid]
			s := &Summary{
				Mod:      make(map[il.PID]bool, len(d.mod)),
				Ref:      make(map[il.PID]bool, len(d.ref)),
				CallsOut: d.callsOut,
			}
			for m := range d.mod {
				s.Mod[m] = true
			}
			for r := range d.ref {
				s.Ref[r] = true
			}
			// The cap applies to direct effects too, not just merges —
			// it bounds summary memory wherever the sets come from.
			if len(s.Mod) > maxSet {
				s.Mod, s.ModTop = nil, true
			}
			if len(s.Ref) > maxSet {
				s.Ref, s.RefTop = nil, true
			}
			res.Summaries[pid] = s
		}
		// Union fixpoint over the component. Callees in earlier SCCs
		// are final; callees inside the group evolve until stable;
		// callees with no summary (out of scope, no body) are Top.
		for changed := true; changed; {
			changed = false
			for _, pid := range group {
				s := res.Summaries[pid]
				for _, c := range direct[pid].callees {
					cs := res.Summaries[c]
					if cs == nil {
						cs = Top()
					}
					if mergeInto(s, cs, maxSet) {
						changed = true
					}
				}
			}
		}
		lo = hi
	}
	// Derive purity and count outcomes.
	for _, pid := range pids {
		s := res.Summaries[pid]
		switch {
		case !s.CallsOut && !s.ModTop && !s.RefTop && len(s.Mod) == 0 && len(s.Ref) == 0:
			s.Purity = Const
			res.Stats.ConstFns++
		case !s.CallsOut && !s.ModTop && len(s.Mod) == 0:
			s.Purity = Pure
			res.Stats.PureFns++
		default:
			s.Purity = Neither
		}
		if s.ModTop || s.RefTop || s.CallsOut {
			res.Stats.TopFns++
		}
	}
	sp.End()
	return res
}

// mergeInto folds src into dst, widening past maxSet, and reports
// whether dst changed.
func mergeInto(dst, src *Summary, maxSet int) bool {
	changed := false
	if src.CallsOut && !dst.CallsOut {
		dst.CallsOut = true
		changed = true
	}
	if mergeSet(&dst.Mod, &dst.ModTop, src.Mod, src.ModTop, maxSet) {
		changed = true
	}
	if mergeSet(&dst.Ref, &dst.RefTop, src.Ref, src.RefTop, maxSet) {
		changed = true
	}
	return changed
}

func mergeSet(dst *map[il.PID]bool, dstTop *bool, src map[il.PID]bool, srcTop bool, maxSet int) bool {
	if *dstTop {
		return false
	}
	if srcTop {
		*dstTop = true
		*dst = nil
		return true
	}
	changed := false
	for g := range src {
		if !(*dst)[g] {
			(*dst)[g] = true
			changed = true
		}
	}
	if len(*dst) > maxSet {
		*dstTop = true
		*dst = nil
		changed = true
	}
	return changed
}
