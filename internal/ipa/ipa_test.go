package ipa_test

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/ipa"
)

// builder assembles a tiny one-module program; bodies are supplied
// per test through a pin-counting source so every test doubles as a
// check of the Function/DoneWith discipline.
type builder struct {
	p   *il.Program
	m   *il.Module
	fns map[il.PID]*il.Function
}

func newBuilder() *builder {
	p := il.NewProgram()
	return &builder{p: p, m: p.AddModule("m"), fns: map[il.PID]*il.Function{}}
}

func (b *builder) global(name string) il.PID {
	pid, _ := b.p.Intern(name, il.SymGlobal)
	s := b.p.Sym(pid)
	s.Module, s.Type = b.m.Index, il.I64
	b.m.Defs = append(b.m.Defs, pid)
	return pid
}

func (b *builder) fn(name string, body ...il.Instr) il.PID {
	pid, _ := b.p.Intern(name, il.SymFunc)
	s := b.p.Sym(pid)
	s.Module = b.m.Index
	s.Sig = il.Signature{Ret: il.I64}
	b.m.Defs = append(b.m.Defs, pid)
	if body != nil {
		if body[len(body)-1].Op != il.Ret {
			body = append(body, il.Instr{Op: il.Ret, A: il.ConstVal(0)})
		}
		b.fns[pid] = &il.Function{
			Name: name, PID: pid, NRegs: 8, Ret: il.I64,
			Blocks: []*il.Block{{Instrs: body, T: -1, F: -1}},
		}
	}
	return pid
}

// countingSource counts outstanding pins; Analyze must end balanced.
type countingSource struct {
	fns    map[il.PID]*il.Function
	pinned map[il.PID]int
}

func (s *countingSource) Function(pid il.PID) *il.Function {
	if s.fns[pid] == nil {
		return nil
	}
	s.pinned[pid]++
	return s.fns[pid]
}

func (s *countingSource) DoneWith(pid il.PID) { s.pinned[pid]-- }

func analyze(t *testing.T, b *builder, opts ipa.Options) *ipa.Result {
	t.Helper()
	src := &countingSource{fns: b.fns, pinned: map[il.PID]int{}}
	res := ipa.Analyze(b.p, src, opts)
	for pid, n := range src.pinned {
		if n != 0 {
			t.Errorf("%s left %d pins outstanding", b.p.Sym(pid).Name, n)
		}
	}
	return res
}

func call(dst il.Reg, callee il.PID) il.Instr {
	return il.Instr{Op: il.Call, Dst: dst, Sym: callee}
}

func TestDirectEffectsAndPurity(t *testing.T) {
	b := newBuilder()
	g := b.global("g")
	h := b.global("h")
	writer := b.fn("writer", il.Instr{Op: il.StoreG, Sym: g, A: il.ConstVal(1)})
	reader := b.fn("reader", il.Instr{Op: il.LoadG, Dst: 1, Sym: h})
	leaf := b.fn("leaf", il.Instr{Op: il.Ret, A: il.ConstVal(42)})

	res := analyze(t, b, ipa.Options{})
	if s := res.Summaries[writer]; !s.Mods(g) || s.Refs(g) || s.Purity != ipa.Neither {
		t.Errorf("writer summary wrong: %s", s.Fingerprint(b.p))
	}
	if s := res.Summaries[reader]; !s.Refs(h) || s.WritesAnything() || s.Purity != ipa.Pure {
		t.Errorf("reader summary wrong: %s", s.Fingerprint(b.p))
	}
	if s := res.Summaries[leaf]; s.Purity != ipa.Const {
		t.Errorf("leaf summary wrong: %s", s.Fingerprint(b.p))
	}
	if res.Stats.Functions != 3 || res.Stats.ConstFns != 1 || res.Stats.PureFns != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestTransitivePropagation(t *testing.T) {
	b := newBuilder()
	g := b.global("g")
	writer := b.fn("writer", il.Instr{Op: il.StoreG, Sym: g, A: il.ConstVal(1)})
	mid := b.fn("mid", call(1, writer))
	top := b.fn("top", call(1, mid))

	res := analyze(t, b, ipa.Options{})
	for _, pid := range []il.PID{mid, top} {
		s := res.Summaries[pid]
		if !s.Mods(g) || s.ModTop || s.Purity != ipa.Neither {
			t.Errorf("%s summary wrong: %s", b.p.Sym(pid).Name, s.Fingerprint(b.p))
		}
	}
}

func TestSCCFixpoint(t *testing.T) {
	// even and odd call each other; odd also writes g. Both members of
	// the cycle must converge to Mod={g}.
	b := newBuilder()
	g := b.global("g")
	even, _ := b.p.Intern("even", il.SymFunc)
	odd := b.fn("odd",
		il.Instr{Op: il.StoreG, Sym: g, A: il.ConstVal(1)},
		call(1, even))
	b.fn("even", call(1, odd))

	res := analyze(t, b, ipa.Options{})
	for _, pid := range []il.PID{even, odd} {
		s := res.Summaries[pid]
		if !s.Mods(g) || s.ModTop {
			t.Errorf("%s summary wrong: %s", b.p.Sym(pid).Name, s.Fingerprint(b.p))
		}
	}
	if res.Stats.SCCs != 1 {
		t.Errorf("SCCs = %d, want 1 (one two-member component)", res.Stats.SCCs)
	}
}

func TestOutOfScopeCalleeWidensToTop(t *testing.T) {
	b := newBuilder()
	outside := b.fn("outside", il.Instr{Op: il.Ret, A: il.ConstVal(0)})
	caller := b.fn("caller", call(1, outside))

	res := analyze(t, b, ipa.Options{Scope: map[il.PID]bool{caller: true}})
	if res.Summaries[outside] != nil {
		t.Fatal("out-of-scope function must not be summarized")
	}
	s := res.Summaries[caller]
	if !s.ModTop || !s.RefTop || !s.CallsOut || s.Purity != ipa.Neither {
		t.Errorf("caller of out-of-scope code must be Top, got %s", s.Fingerprint(b.p))
	}
	if res.Stats.TopFns != 1 {
		t.Errorf("TopFns = %d, want 1", res.Stats.TopFns)
	}
}

func TestBodylessCalleeWidensToTop(t *testing.T) {
	b := newBuilder()
	ext := b.fn("ext") // declared, no body
	caller := b.fn("caller", call(1, ext))

	res := analyze(t, b, ipa.Options{})
	if s := res.Summaries[caller]; !s.ModTop || !s.RefTop || !s.CallsOut {
		t.Errorf("caller of bodyless code must be Top, got %s", s.Fingerprint(b.p))
	}
}

func TestProbeDeniesPurity(t *testing.T) {
	b := newBuilder()
	probed := b.fn("probed", il.Instr{Op: il.Probe, Sym: 0})

	res := analyze(t, b, ipa.Options{})
	s := res.Summaries[probed]
	if !s.CallsOut || s.Purity != ipa.Neither {
		t.Errorf("probed function must be calls-out/neither, got %s", s.Fingerprint(b.p))
	}
	if s.ModTop || s.RefTop {
		t.Errorf("a probe alone must not widen the sets: %s", s.Fingerprint(b.p))
	}
}

func TestMaxSetWidening(t *testing.T) {
	b := newBuilder()
	g1 := b.global("g1")
	g2 := b.global("g2")
	wide := b.fn("wide",
		il.Instr{Op: il.StoreG, Sym: g1, A: il.ConstVal(1)},
		il.Instr{Op: il.StoreG, Sym: g2, A: il.ConstVal(2)})

	res := analyze(t, b, ipa.Options{MaxSet: 1})
	if s := res.Summaries[wide]; !s.ModTop {
		t.Errorf("two-global MOD under MaxSet=1 must widen to Top, got %s", s.Fingerprint(b.p))
	}
}

func TestFingerprintIsStableAndNameBased(t *testing.T) {
	b := newBuilder()
	gb := b.global("beta")
	ga := b.global("alpha")
	f := b.fn("f",
		il.Instr{Op: il.StoreG, Sym: gb, A: il.ConstVal(1)},
		il.Instr{Op: il.StoreG, Sym: ga, A: il.ConstVal(2)},
		il.Instr{Op: il.LoadG, Dst: 1, Sym: gb})

	res := analyze(t, b, ipa.Options{})
	got := res.Summaries[f].Fingerprint(b.p)
	// Sorted by name regardless of interning order, so two builds that
	// intern PIDs differently agree.
	want := "neither;mod=alpha,beta;ref=beta"
	if got != want {
		t.Errorf("Fingerprint = %q, want %q", got, want)
	}
	if top := ipa.Top().Fingerprint(b.p); top != "neither;out;mod=*;ref=*" {
		t.Errorf("Top fingerprint = %q", top)
	}
}

func TestAnalyzeIsDeterministic(t *testing.T) {
	b := newBuilder()
	g := b.global("g")
	w := b.fn("w", il.Instr{Op: il.StoreG, Sym: g, A: il.ConstVal(1)})
	r := b.fn("r", il.Instr{Op: il.LoadG, Dst: 1, Sym: g})
	m := b.fn("m", call(1, w), call(2, r))

	first := analyze(t, b, ipa.Options{})
	for i := 0; i < 5; i++ {
		again := analyze(t, b, ipa.Options{})
		for _, pid := range []il.PID{w, r, m} {
			a, z := first.Summaries[pid].Fingerprint(b.p), again.Summaries[pid].Fingerprint(b.p)
			if a != z {
				t.Fatalf("run %d: %s fingerprint changed: %q vs %q", i, b.p.Sym(pid).Name, a, z)
			}
		}
	}
}
