// Package ipa is the summary-based interprocedural side-effect
// analysis sitting between selectivity and HLO: for every function in
// the optimization scope it computes the sets of globals the function
// (transitively) reads and writes — the classic MOD/REF sets — plus a
// purity classification and a may-call-out-of-scope bit, in the style
// of GCC's link-time ipa-reference and ipa-pure-const passes.
//
// The analysis is deliberately small and summary-shaped:
//
//   - One scan pulls each in-scope body once (pin discipline: Function
//     then DoneWith) and records its direct effects — LoadG/LoadX into
//     REF, StoreG/StoreX into MOD, Probe as an out-of-model effect —
//     and its distinct call edges.
//   - The edges feed internal/callgraph (FromEdges), and summaries are
//     propagated callee-to-caller in bottom-up SCC order with a union
//     fixpoint inside each SCC, so mutual recursion converges.
//   - Any call edge leaving the analyzed world — a callee outside the
//     scope, a callee with no body, a Probe — conservatively widens
//     the caller to Top: MOD = REF = everything, CallsOut set. The
//     same widening caps runaway set growth (Options.MaxSet).
//
// A summary is therefore a conservative over-approximation of the
// function's transitive effects at the moment of analysis, and it
// stays one under every HLO transform: inlining and unrolling only
// copy effects the transitive summary already contained, constant
// promotion and the ipa-gated transforms only remove them, and a
// clone inherits its original's summary (a specialization's effects
// are a subset). internal/analyze's AuditFacts re-derives ground
// truth after HLO and proves exactly this containment.
//
// Purity is derived from the final sets: a Const function touches no
// global state at all and may be CSE'd freely; a Pure function may
// read globals but writes nothing, so duplicate calls between writes
// compute the same value. Both may still trap (Div, LoadX out of
// bounds), which is why HLO only ever replaces a *later* duplicate
// call with the earlier call's result — execution reaches the
// duplicate only if the first call completed.
//
// Summaries are canonically fingerprintable (Summary.Fingerprint is
// PID-free, built from symbol names) so HLO's replay records can key
// on the callee summaries a transform consulted: a warm rebuild
// replays only while every consulted summary is unchanged, and an
// edit to a callee's side effects invalidates exactly its dependents.
package ipa
