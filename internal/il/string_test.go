package il

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	ops := []Op{Nop, Const, Copy, Add, Sub, Mul, Div, Rem, Neg, Not,
		Eq, Ne, Lt, Le, Gt, Ge, LoadG, StoreG, LoadX, StoreX, Call, Probe, Ret, Jmp, Br}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name", op)
		}
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Op(200).String(), "Op(") {
		t.Error("unknown op should print numerically")
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	for _, tc := range []struct {
		t    Type
		want string
	}{{Void, "void"}, {I64, "i64"}, {B1, "b1"}, {ArrayI64, "[]i64"}} {
		if tc.t.String() != tc.want {
			t.Errorf("%d prints %q, want %q", tc.t, tc.t.String(), tc.want)
		}
	}
	if !strings.HasPrefix(Type(99).String(), "Type(") {
		t.Error("unknown type should print numerically")
	}
	if SymFunc.String() != "func" || SymGlobal.String() != "global" {
		t.Error("SymKind strings wrong")
	}
	if !strings.HasPrefix(SymKind(9).String(), "SymKind(") {
		t.Error("unknown kind should print numerically")
	}
}

func TestValueStrings(t *testing.T) {
	if ConstVal(-7).String() != "-7" {
		t.Errorf("const prints %q", ConstVal(-7).String())
	}
	if RegVal(12).String() != "r12" {
		t.Errorf("reg prints %q", RegVal(12).String())
	}
	if None().String() != "_" {
		t.Errorf("none prints %q", None().String())
	}
}

func TestInstrStringsAllOps(t *testing.T) {
	instrs := []Instr{
		{Op: Nop},
		{Op: Const, Dst: 1, A: ConstVal(5)},
		{Op: Copy, Dst: 1, A: RegVal(2)},
		{Op: Add, Dst: 1, A: RegVal(2), B: ConstVal(3)},
		{Op: Div, Dst: 1, A: RegVal(2), B: RegVal(3)},
		{Op: Neg, Dst: 1, A: RegVal(2)},
		{Op: Not, Dst: 1, A: RegVal(2)},
		{Op: Lt, Dst: 1, A: RegVal(2), B: RegVal(3)},
		{Op: LoadG, Dst: 1, Sym: 7},
		{Op: StoreG, Sym: 7, A: RegVal(1)},
		{Op: LoadX, Dst: 1, Sym: 7, A: RegVal(2)},
		{Op: StoreX, Sym: 7, A: RegVal(2), B: ConstVal(9)},
		{Op: Call, Dst: 1, Sym: 3, Args: []Value{RegVal(2), ConstVal(4)}},
		{Op: Call, Sym: 3},
		{Op: Probe, A: ConstVal(11)},
		{Op: Ret, A: RegVal(1)},
		{Op: Ret},
		{Op: Jmp},
		{Op: Br, A: RegVal(1)},
	}
	for _, in := range instrs {
		s := in.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("instr %v prints %q", in.Op, s)
		}
	}
}

func TestBlockTerm(t *testing.T) {
	b := &Block{Instrs: []Instr{{Op: Nop}, {Op: Ret, A: ConstVal(1)}}}
	if b.Term().Op != Ret {
		t.Errorf("Term = %v", b.Term().Op)
	}
}

// TestInterpArithmeticMatchesGo: every arithmetic/compare op agrees
// with Go's int64 semantics (wrapping, truncation toward zero).
func TestInterpArithmeticMatchesGo(t *testing.T) {
	prog := NewProgram()
	mod := prog.AddModule("m")
	mk := func(op Op) PID {
		pid, _ := prog.Intern("op_"+op.String(), SymFunc)
		s := prog.Sym(pid)
		s.Module = mod.Index
		s.Sig = Signature{Params: []Type{I64, I64}, Ret: I64}
		return pid
	}
	fns := map[PID]*Function{}
	ops := []Op{Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge}
	pids := map[Op]PID{}
	for _, op := range ops {
		pid := mk(op)
		pids[op] = pid
		fns[pid] = &Function{
			Name: "op_" + op.String(), PID: pid, NParams: 2, Ret: I64, NRegs: 4,
			Blocks: []*Block{{Instrs: []Instr{
				{Op: op, Dst: 3, A: RegVal(1), B: RegVal(2)},
				{Op: Ret, A: RegVal(3)},
			}, T: -1, F: -1}},
		}
	}
	it := NewInterp(prog, func(p PID) *Function { return fns[p] })
	model := func(op Op, a, b int64) (int64, bool) {
		switch op {
		case Add:
			return a + b, true
		case Sub:
			return a - b, true
		case Mul:
			return a * b, true
		case Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case Rem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case Eq:
			return b2i(a == b), true
		case Ne:
			return b2i(a != b), true
		case Lt:
			return b2i(a < b), true
		case Le:
			return b2i(a <= b), true
		case Gt:
			return b2i(a > b), true
		case Ge:
			return b2i(a >= b), true
		}
		return 0, false
	}
	for _, op := range ops {
		op := op
		f := func(a, b int64) bool {
			want, ok := model(op, a, b)
			got, err := it.Run("op_"+op.String(), []int64{a, b}, 0)
			if !ok {
				return err == ErrDivZero
			}
			return err == nil && got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
	// Division overflow edge: MinInt64 / -1 panics in Go; the
	// interpreter inherits Go semantics, so it would panic too — the
	// workload generators only divide by positive constants, and the
	// machine shares the behavior. Document by checking both traps
	// the same way is out of scope for quick.Check's default ranges.
}

func TestInterpNegNotCopy(t *testing.T) {
	prog := NewProgram()
	mod := prog.AddModule("m")
	pid, _ := prog.Intern("f", SymFunc)
	s := prog.Sym(pid)
	s.Module = mod.Index
	s.Sig = Signature{Params: []Type{I64}, Ret: I64}
	f := &Function{Name: "f", PID: pid, NParams: 1, Ret: I64, NRegs: 5,
		Blocks: []*Block{{Instrs: []Instr{
			{Op: Neg, Dst: 2, A: RegVal(1)},
			{Op: Not, Dst: 3, A: RegVal(2)},
			{Op: Copy, Dst: 4, A: RegVal(3)},
			{Op: Add, Dst: 4, A: RegVal(4), B: RegVal(2)},
			{Op: Ret, A: RegVal(4)},
		}, T: -1, F: -1}}}
	it := NewInterp(prog, func(PID) *Function { return f })
	// f(x) = not(-x) + (-x); for x=5: not(-5)=0, -5 => -5.
	got, err := it.Run("f", []int64{5}, 0)
	if err != nil || got != -5 {
		t.Errorf("f(5) = %d, %v; want -5", got, err)
	}
	// For x=0: not(0)=1, -0=0 => 1.
	got, err = it.Run("f", []int64{0}, 0)
	if err != nil || got != 1 {
		t.Errorf("f(0) = %d, %v; want 1", got, err)
	}
}
