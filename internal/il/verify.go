package il

import "fmt"

// Verify checks the structural invariants of a function body against
// the program symbol table. The optimizer runs it after every pass in
// tests; it is the first line of defense the paper's section 6.3
// debugging methodology relies on (shrinking a miscompile needs a
// trustworthy IR checker).
func Verify(p *Program, f *Function) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("il: verify %s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return errf("no blocks")
	}
	// Parameters arrive in registers 1..NParams, so a function with
	// parameters needs NRegs > NParams. The explicit parentheses
	// matter: && binds tighter than ||, and without them a future
	// reordering of the clauses would silently change which condition
	// gates the range check.
	if f.NParams < 0 || (f.NParams > 0 && Reg(f.NParams)+1 > f.NRegs) {
		return errf("NRegs=%d too small for %d params", f.NRegs, f.NParams)
	}
	checkVal := func(bi, ii int, v Value, what string) error {
		if v.IsConst {
			return nil
		}
		if v.Reg >= f.NRegs {
			return errf("b%d/%d: %s register r%d out of range (NRegs=%d)", bi, ii, what, v.Reg, f.NRegs)
		}
		return nil
	}
	checkSym := func(bi, ii int, pid PID, kind SymKind, typ Type) error {
		if int(pid) >= len(p.Syms) {
			return errf("b%d/%d: dangling PID %d", bi, ii, pid)
		}
		s := p.Syms[pid]
		if s.Kind != kind {
			return errf("b%d/%d: symbol %s is %s, want %s", bi, ii, s.Name, s.Kind, kind)
		}
		if kind == SymGlobal && typ != Void && s.Type != typ {
			return errf("b%d/%d: global %s has type %s, want %s", bi, ii, s.Name, s.Type, typ)
		}
		return nil
	}
	sawRet := false
	var probeIDs map[int64]int // lazily allocated: most functions carry no probes
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return errf("b%d: empty block", bi)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					return errf("b%d: last instruction %s is not a terminator", bi, in)
				}
				return errf("b%d/%d: terminator %s in block middle", bi, ii, in)
			}
			if in.Dst >= f.NRegs && in.Dst != 0 {
				return errf("b%d/%d: destination r%d out of range", bi, ii, in.Dst)
			}
			switch in.Op {
			case Const:
				if !in.A.IsConst {
					return errf("b%d/%d: const with non-constant operand", bi, ii)
				}
				if in.Dst == 0 {
					return errf("b%d/%d: const with no destination", bi, ii)
				}
			case Copy, Neg, Not:
				if err := checkVal(bi, ii, in.A, "operand"); err != nil {
					return err
				}
				if in.Dst == 0 {
					return errf("b%d/%d: %s with no destination", bi, ii, in.Op)
				}
			case Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge:
				if err := checkVal(bi, ii, in.A, "left"); err != nil {
					return err
				}
				if err := checkVal(bi, ii, in.B, "right"); err != nil {
					return err
				}
				if in.Dst == 0 {
					return errf("b%d/%d: %s with no destination", bi, ii, in.Op)
				}
			case LoadG:
				if err := checkSym(bi, ii, in.Sym, SymGlobal, I64); err != nil {
					return err
				}
			case StoreG:
				if err := checkSym(bi, ii, in.Sym, SymGlobal, I64); err != nil {
					return err
				}
				if err := checkVal(bi, ii, in.A, "value"); err != nil {
					return err
				}
			case LoadX, StoreX:
				if err := checkSym(bi, ii, in.Sym, SymGlobal, ArrayI64); err != nil {
					return err
				}
				if err := checkVal(bi, ii, in.A, "index"); err != nil {
					return err
				}
				if in.Op == StoreX {
					if err := checkVal(bi, ii, in.B, "value"); err != nil {
						return err
					}
				}
			case Call:
				if err := checkSym(bi, ii, in.Sym, SymFunc, Void); err != nil {
					return err
				}
				sym := p.Syms[in.Sym]
				if len(sym.Sig.Params) != len(in.Args) {
					return errf("b%d/%d: call %s with %d args, want %d", bi, ii, sym.Name, len(in.Args), len(sym.Sig.Params))
				}
				for ai, a := range in.Args {
					if err := checkVal(bi, ii, a, fmt.Sprintf("arg %d", ai)); err != nil {
						return err
					}
				}
				if in.Dst != 0 && sym.Sig.Ret == Void {
					return errf("b%d/%d: call to void %s assigns r%d", bi, ii, sym.Name, in.Dst)
				}
			case Probe:
				if !in.A.IsConst || in.A.Const < 0 {
					return errf("b%d/%d: probe with bad counter id", bi, ii)
				}
				// Probe counters are program-unique (profile.Instrument
				// allocates them globally); two probes bumping the same
				// counter in one function would double-count and skew
				// every profile-guided decision downstream.
				if prev, dup := probeIDs[in.A.Const]; dup {
					return errf("b%d/%d: duplicate probe counter id %d (first in b%d)", bi, ii, in.A.Const, prev)
				}
				if probeIDs == nil {
					probeIDs = make(map[int64]int)
				}
				probeIDs[in.A.Const] = bi
			case Ret:
				sawRet = true
				if f.Ret == Void && !in.A.IsNone() {
					return errf("b%d: void function returns a value", bi)
				}
				if f.Ret != Void && in.A.IsNone() {
					return errf("b%d: missing return value", bi)
				}
				if err := checkVal(bi, ii, in.A, "return"); err != nil {
					return err
				}
			case Jmp:
				if int(b.T) >= len(f.Blocks) || b.T < 0 {
					return errf("b%d: jmp target b%d out of range", bi, b.T)
				}
			case Br:
				if err := checkVal(bi, ii, in.A, "condition"); err != nil {
					return err
				}
				if int(b.T) >= len(f.Blocks) || b.T < 0 {
					return errf("b%d: br true target b%d out of range", bi, b.T)
				}
				if int(b.F) >= len(f.Blocks) || b.F < 0 {
					return errf("b%d: br false target b%d out of range", bi, b.F)
				}
			case Nop:
				// always fine
			default:
				return errf("b%d/%d: unknown op %d", bi, ii, in.Op)
			}
		}
	}
	// Every block ends in a terminator (checked above), so control can
	// never fall off the end of a block — but a function whose blocks
	// are all Jmp/Br can still never return. The frontend always emits
	// a Ret (even for void functions and infinite loops, whose trailing
	// Ret block survives until branch folding proves it unreachable),
	// so a Ret-free function reaching the verifier means a transform
	// deleted the exit path.
	if !sawRet {
		return errf("no ret: control cannot leave the function")
	}
	return nil
}
