// Package il defines the common intermediate language shared by every
// stage of the pipeline: frontends lower into it, the high-level
// optimizer (HLO, internal/hlo) transforms it across module boundaries,
// and the low-level optimizer (LLO, internal/llo) consumes it to emit
// VPA machine code.
//
// The object model follows the paper's Figure 3 discipline:
//
//   - Global objects (Program, Symbol, the call graph) are always
//     memory resident and are referred to *upward* by transitory
//     objects via persistent identifiers (PIDs).
//   - Transitory objects (Function bodies) can be compacted into a
//     relocatable byte form and offloaded; only the NAIM loader
//     (internal/naim) holds downward references, via handles.
//   - Derived objects (dominators, liveness, loops — internal/ir) are
//     never stored on the IR; they are recomputed from scratch on
//     demand and freely discarded.
package il

import "fmt"

// PID is a persistent identifier: a stable index into the program-wide
// symbol table. Relocatable (compacted) IR refers to symbols only by
// PID, which is what makes the compact form position-independent
// (paper section 4.2.1).
type PID uint32

// NoPID marks an absent symbol reference.
const NoPID = PID(0xFFFFFFFF)

// Reg is a virtual register local to one function. Register 0 is
// never used; parameters arrive in registers 1..NParams.
type Reg uint32

// Type is an IL-level type.
type Type uint8

// IL types. Arrays are always arrays of I64; Bool values are I64
// values constrained to 0 or 1.
const (
	Void Type = iota
	I64
	B1
	ArrayI64
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I64:
		return "i64"
	case B1:
		return "b1"
	case ArrayI64:
		return "[]i64"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Op is an IL operation code.
type Op uint8

// IL operations. The final instruction of every block must be a
// terminator (Ret, Jmp, or Br); terminators may not appear elsewhere.
const (
	Nop Op = iota

	// Dst = Const (A unused; constant in Instr.A as const value).
	Const
	// Dst = A.
	Copy

	// Dst = A op B (integer arithmetic).
	Add
	Sub
	Mul
	Div // traps (halts the machine) on divide by zero
	Rem
	Neg // Dst = -A
	Not // Dst = !A (A is 0 or 1)

	// Dst = A cmp B, yielding 0 or 1.
	Eq
	Ne
	Lt
	Le
	Gt
	Ge

	// Dst = value of global scalar Sym.
	LoadG
	// Global scalar Sym = A.
	StoreG
	// Dst = Sym[A]; traps on out-of-bounds index.
	LoadX
	// Sym[A] = B; traps on out-of-bounds index.
	StoreX

	// Dst = call Sym(Args...). Dst == 0 for void calls.
	Call

	// Profiling probe: bump counter A.Const (inserted by +I builds).
	Probe

	// Terminators.
	Ret // return A (Ret with A.Reg==0 and !A.IsConst returns void)
	Jmp // goto block T
	Br  // if A != 0 goto block T else block F
)

var opNames = [...]string{
	Nop: "nop", Const: "const", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Neg: "neg", Not: "not",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	LoadG: "loadg", StoreG: "storeg", LoadX: "loadx", StoreX: "storex",
	Call: "call", Probe: "probe",
	Ret: "ret", Jmp: "jmp", Br: "br",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == Ret || o == Jmp || o == Br }

// Value is an instruction operand: either a virtual register or an
// immediate constant.
type Value struct {
	Const   int64
	Reg     Reg
	IsConst bool
}

// ConstVal returns an immediate operand.
func ConstVal(c int64) Value { return Value{Const: c, IsConst: true} }

// RegVal returns a register operand.
func RegVal(r Reg) Value { return Value{Reg: r} }

// None returns the absent operand (used for void returns).
func None() Value { return Value{} }

// IsNone reports whether the operand is absent.
func (v Value) IsNone() bool { return !v.IsConst && v.Reg == 0 }

func (v Value) String() string {
	switch {
	case v.IsConst:
		return fmt.Sprintf("%d", v.Const)
	case v.Reg == 0:
		return "_"
	default:
		return fmt.Sprintf("r%d", v.Reg)
	}
}

// Instr is one IL instruction. Which fields are meaningful depends on
// Op; unused fields are zero.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Value
	Sym  PID     // LoadG/StoreG/LoadX/StoreX/Call
	Args []Value // Call only
}

func (in Instr) String() string {
	switch in.Op {
	case Const:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.A.Const)
	case Copy, Neg, Not:
		return fmt.Sprintf("r%d = %s %s", in.Dst, in.Op, in.A)
	case Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	case LoadG:
		return fmt.Sprintf("r%d = loadg @%d", in.Dst, in.Sym)
	case StoreG:
		return fmt.Sprintf("storeg @%d, %s", in.Sym, in.A)
	case LoadX:
		return fmt.Sprintf("r%d = loadx @%d[%s]", in.Dst, in.Sym, in.A)
	case StoreX:
		return fmt.Sprintf("storex @%d[%s], %s", in.Sym, in.A, in.B)
	case Call:
		s := ""
		for i, a := range in.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		if in.Dst == 0 {
			return fmt.Sprintf("call @%d(%s)", in.Sym, s)
		}
		return fmt.Sprintf("r%d = call @%d(%s)", in.Dst, in.Sym, s)
	case Probe:
		return fmt.Sprintf("probe %d", in.A.Const)
	case Ret:
		if in.A.IsNone() {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.A)
	case Jmp:
		return "jmp"
	case Br:
		return fmt.Sprintf("br %s", in.A)
	case Nop:
		return "nop"
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// Block is a basic block: zero or more straight-line instructions
// followed by exactly one terminator. T and F index into
// Function.Blocks: Jmp uses T; Br uses T (taken when A != 0) and F.
type Block struct {
	Instrs []Instr
	T, F   int32

	// Freq is the profile-correlated execution count of this block
	// (0 when no profile is attached). Profile annotations are input
	// data, not derived data, so they live on the block.
	Freq int64
}

// Term returns the block's terminator instruction.
func (b *Block) Term() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// Function is the transitory IR for one routine (a NAIM pool). All
// symbol references are PIDs into the owning Program.
type Function struct {
	Name    string
	PID     PID
	NParams int
	Ret     Type
	NRegs   Reg // one past the highest used register
	Blocks  []*Block

	// SrcLines is the number of MinC source lines this routine was
	// lowered from, used for memory-per-line accounting (Figure 4).
	SrcLines int

	// Calls is the profile-correlated call count of the function
	// entry (0 when no profile is attached).
	Calls int64
}

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	f.NRegs++
	return f.NRegs - 1
}

// NumInstrs counts instructions across all blocks; it is the
// optimizer's size metric for inlining budgets.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Clone returns a deep copy of the function body. Handy for inlining
// and for tests comparing before/after.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:     f.Name,
		PID:      f.PID,
		NParams:  f.NParams,
		Ret:      f.Ret,
		NRegs:    f.NRegs,
		SrcLines: f.SrcLines,
		Calls:    f.Calls,
		Blocks:   make([]*Block, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		nb := &Block{T: b.T, F: b.F, Freq: b.Freq, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if nb.Instrs[j].Args != nil {
				args := make([]Value, len(nb.Instrs[j].Args))
				copy(args, nb.Instrs[j].Args)
				nb.Instrs[j].Args = args
			}
		}
		nf.Blocks[i] = nb
	}
	return nf
}
