package il

import (
	"fmt"
	"sort"
)

// SymKind distinguishes the kinds of program-wide symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymGlobal
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymGlobal:
		return "global"
	}
	return fmt.Sprintf("SymKind(%d)", uint8(k))
}

// Symbol is one entry in the program-wide symbol table: a function or
// a global variable. Symbols are global objects in the NAIM sense —
// always memory resident — and are the anchors that PIDs resolve to.
type Symbol struct {
	PID    PID
	Name   string
	Kind   SymKind
	Module int32 // defining module index, -1 while unresolved

	// Function symbols.
	Sig Signature

	// Global symbols.
	Type  Type
	Elems int64 // element count for ArrayI64, else 0
	Init  int64 // initial value for I64 globals
}

// Signature is a function's IL-level type.
type Signature struct {
	Params []Type
	Ret    Type
}

// Equal reports whether two signatures agree exactly.
func (s Signature) Equal(o Signature) bool {
	if s.Ret != o.Ret || len(s.Params) != len(o.Params) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

func (s Signature) String() string {
	out := "("
	for i, p := range s.Params {
		if i > 0 {
			out += ", "
		}
		out += p.String()
	}
	return out + ") " + s.Ret.String()
}

// Module is the per-module symbol table: the list of symbols the
// module defines and the externs it imports. It is a transitory
// object — compactable by the NAIM loader once initial scanning is
// done (threshold 2 in Figure 5).
type Module struct {
	Name    string
	Index   int32
	Defs    []PID // symbols defined here (functions and globals)
	Externs []PID // symbols referenced but defined elsewhere
	Lines   int   // total source lines, for accounting
}

// Program is the program-wide, always-resident root object: the
// global symbol table plus the module list. Function bodies hang off
// it only indirectly, through the NAIM loader.
type Program struct {
	Syms    []*Symbol
	Modules []*Module

	byName map[string]PID
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byName: make(map[string]PID)}
}

// Lookup returns the symbol with the given name, or nil.
func (p *Program) Lookup(name string) *Symbol {
	if pid, ok := p.byName[name]; ok {
		return p.Syms[pid]
	}
	return nil
}

// Sym returns the symbol for a PID. It panics on a dangling PID,
// which always indicates a compiler bug.
func (p *Program) Sym(pid PID) *Symbol {
	if int(pid) >= len(p.Syms) {
		panic(fmt.Sprintf("il: dangling PID %d (symtab has %d entries)", pid, len(p.Syms)))
	}
	return p.Syms[pid]
}

// Intern returns the PID for name, creating an unresolved symbol of
// the given kind if it is not yet present. Conflicting kinds for the
// same name return an error.
func (p *Program) Intern(name string, kind SymKind) (PID, error) {
	if pid, ok := p.byName[name]; ok {
		if p.Syms[pid].Kind != kind {
			return NoPID, fmt.Errorf("il: symbol %s redeclared as %s (was %s)", name, kind, p.Syms[pid].Kind)
		}
		return pid, nil
	}
	pid := PID(len(p.Syms))
	p.Syms = append(p.Syms, &Symbol{PID: pid, Name: name, Kind: kind, Module: -1})
	p.byName[name] = pid
	return pid, nil
}

// AddModule appends a new empty module and returns it.
func (p *Program) AddModule(name string) *Module {
	m := &Module{Name: name, Index: int32(len(p.Modules))}
	p.Modules = append(p.Modules, m)
	return m
}

// FuncPIDs returns the PIDs of all defined function symbols in PID
// order. PID order is the canonical deterministic iteration order for
// whole-program passes (the paper's section 6.2 reproducibility rule:
// never order by memory address — here, never range over Go maps).
func (p *Program) FuncPIDs() []PID {
	var out []PID
	for _, s := range p.Syms {
		if s.Kind == SymFunc && s.Module >= 0 {
			out = append(out, s.PID)
		}
	}
	return out
}

// GlobalPIDs returns the PIDs of all defined global symbols in PID order.
func (p *Program) GlobalPIDs() []PID {
	var out []PID
	for _, s := range p.Syms {
		if s.Kind == SymGlobal && s.Module >= 0 {
			out = append(out, s.PID)
		}
	}
	return out
}

// Validate checks cross-module consistency after all modules have
// been registered: every referenced symbol must be defined exactly
// once, and extern signatures must match the definition (the paper's
// section 6.3 notes mismatched interfaces as a common CMO hazard —
// we reject them).
func (p *Program) Validate() error {
	var missing []string
	for _, s := range p.Syms {
		if s.Module < 0 {
			missing = append(missing, s.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("il: undefined symbols: %v", missing)
	}
	return nil
}
