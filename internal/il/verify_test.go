package il

import (
	"strings"
	"testing"
)

// verifyProg builds a minimal program for Verify tests.
func verifyProg(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	p.AddModule("m")
	return p
}

func fnWith(nparams int, nregs Reg, blocks []*Block) *Function {
	return &Function{Name: "f", NParams: nparams, Ret: I64, NRegs: nregs, Blocks: blocks}
}

func oneRet() []*Block {
	return []*Block{{Instrs: []Instr{{Op: Ret, A: ConstVal(0)}}, T: -1, F: -1}}
}

// TestVerifyNParamsBoundaries pins the operator-precedence fix: the
// range check applies only when the function actually has parameters,
// and negative counts are rejected outright.
func TestVerifyNParamsBoundaries(t *testing.T) {
	p := verifyProg(t)
	cases := []struct {
		name    string
		nparams int
		nregs   Reg
		ok      bool
	}{
		{"negative params", -1, 4, false},
		{"zero params zero extra regs", 0, 1, true},
		// One param lives in r1, so NRegs must be at least 2.
		{"one param exact regs", 1, 2, true},
		{"one param too few regs", 1, 1, false},
		{"three params exact", 3, 4, true},
		{"three params one short", 3, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := oneRet()
			if tc.nparams > 0 {
				// Return a param so the body is plausible.
				body[0].Instrs[0].A = RegVal(1)
			}
			err := Verify(p, fnWith(tc.nparams, tc.nregs, body))
			if tc.ok && err != nil {
				t.Errorf("Verify rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Error("Verify accepted")
				} else if !strings.Contains(err.Error(), "params") {
					t.Errorf("wrong error: %v", err)
				}
			}
		})
	}
}

func TestVerifyRejectsDuplicateProbeIDs(t *testing.T) {
	p := verifyProg(t)
	f := fnWith(0, 1, []*Block{
		{Instrs: []Instr{{Op: Probe, A: ConstVal(3)}, {Op: Jmp}}, T: 1, F: -1},
		{Instrs: []Instr{{Op: Probe, A: ConstVal(3)}, {Op: Ret, A: ConstVal(0)}}, T: -1, F: -1},
	})
	err := Verify(p, f)
	if err == nil || !strings.Contains(err.Error(), "duplicate probe counter id 3") {
		t.Fatalf("want duplicate-probe error, got %v", err)
	}
	if !strings.Contains(err.Error(), "first in b0") {
		t.Errorf("error should locate the first occurrence: %v", err)
	}
	// Distinct ids across blocks are fine.
	f.Blocks[1].Instrs[0].A = ConstVal(4)
	if err := Verify(p, f); err != nil {
		t.Errorf("distinct probe ids rejected: %v", err)
	}
}

func TestVerifyRejectsRetFreeFunctions(t *testing.T) {
	p := verifyProg(t)
	// Two blocks jumping at each other: every block is terminated, but
	// control can never leave — the shape a transform that deleted the
	// exit path leaves behind.
	f := fnWith(0, 1, []*Block{
		{Instrs: []Instr{{Op: Jmp}}, T: 1, F: -1},
		{Instrs: []Instr{{Op: Jmp}}, T: 0, F: -1},
	})
	err := Verify(p, f)
	if err == nil || !strings.Contains(err.Error(), "no ret") {
		t.Fatalf("want no-ret error, got %v", err)
	}
	// An unreachable Ret block (the frontend's infinite-loop shape)
	// satisfies the check.
	f.Blocks = append(f.Blocks, oneRet()...)
	if err := Verify(p, f); err != nil {
		t.Errorf("unreachable trailing ret rejected: %v", err)
	}
}
