package il

import (
	"strings"
	"testing"
)

// buildProg assembles a tiny hand-written program:
//
//	var g = 10
//	var arr [4]int
//	func double(x) { return x + x }
//	func main() { arr[0] = double(g); return arr[0] + 1 }
func buildProg(t *testing.T) (*Program, map[PID]*Function) {
	t.Helper()
	p := NewProgram()
	m := p.AddModule("m")
	gpid, err := p.Intern("g", SymGlobal)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Sym(gpid)
	g.Module = m.Index
	g.Type = I64
	g.Init = 10

	apid, _ := p.Intern("arr", SymGlobal)
	a := p.Sym(apid)
	a.Module = m.Index
	a.Type = ArrayI64
	a.Elems = 4

	dpid, _ := p.Intern("double", SymFunc)
	d := p.Sym(dpid)
	d.Module = m.Index
	d.Sig = Signature{Params: []Type{I64}, Ret: I64}

	mpid, _ := p.Intern("main", SymFunc)
	mn := p.Sym(mpid)
	mn.Module = m.Index
	mn.Sig = Signature{Ret: I64}

	double := &Function{
		Name: "double", PID: dpid, NParams: 1, Ret: I64, NRegs: 3,
		Blocks: []*Block{{
			Instrs: []Instr{
				{Op: Add, Dst: 2, A: RegVal(1), B: RegVal(1)},
				{Op: Ret, A: RegVal(2)},
			},
			T: -1, F: -1,
		}},
	}
	main := &Function{
		Name: "main", PID: mpid, Ret: I64, NRegs: 4,
		Blocks: []*Block{{
			Instrs: []Instr{
				{Op: LoadG, Dst: 1, Sym: gpid},
				{Op: Call, Dst: 2, Sym: dpid, Args: []Value{RegVal(1)}},
				{Op: StoreX, Sym: apid, A: ConstVal(0), B: RegVal(2)},
				{Op: LoadX, Dst: 3, Sym: apid, A: ConstVal(0)},
				{Op: Add, Dst: 3, A: RegVal(3), B: ConstVal(1)},
				{Op: Ret, A: RegVal(3)},
			},
			T: -1, F: -1,
		}},
	}
	fns := map[PID]*Function{dpid: double, mpid: main}
	for _, f := range fns {
		if err := Verify(p, f); err != nil {
			t.Fatalf("verify: %v", err)
		}
	}
	return p, fns
}

func TestInterpBasics(t *testing.T) {
	p, fns := buildProg(t)
	it := NewInterp(p, func(pid PID) *Function { return fns[pid] })
	got, err := it.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 21 {
		t.Errorf("main() = %d, want 21", got)
	}
	if it.Steps() == 0 {
		t.Error("no steps recorded")
	}
}

func TestInterpSetAndGetGlobal(t *testing.T) {
	p, fns := buildProg(t)
	it := NewInterp(p, func(pid PID) *Function { return fns[pid] })
	if err := it.SetGlobal("g", 100); err != nil {
		t.Fatal(err)
	}
	got, err := it.Run("main", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 201 {
		t.Errorf("main() = %d, want 201", got)
	}
	v, err := it.Global("g")
	if err != nil || v != 100 {
		t.Errorf("Global(g) = %d, %v", v, err)
	}
	if err := it.SetGlobal("arr", 1); err == nil {
		t.Error("SetGlobal on array should fail")
	}
	if err := it.SetGlobal("nope", 1); err == nil {
		t.Error("SetGlobal on missing global should fail")
	}
}

func TestInterpReset(t *testing.T) {
	p, fns := buildProg(t)
	it := NewInterp(p, func(pid PID) *Function { return fns[pid] })
	it.SetGlobal("g", 50)
	it.Reset()
	v, _ := it.Global("g")
	if v != 10 {
		t.Errorf("after Reset g = %d, want initial 10", v)
	}
}

func TestInterpTraps(t *testing.T) {
	p := NewProgram()
	m := p.AddModule("m")
	apid, _ := p.Intern("arr", SymGlobal)
	a := p.Sym(apid)
	a.Module, a.Type, a.Elems = m.Index, ArrayI64, 2

	mk := func(name string, blocks []*Block) PID {
		pid, _ := p.Intern(name, SymFunc)
		s := p.Sym(pid)
		s.Module = m.Index
		s.Sig = Signature{Ret: I64}
		return pid
	}
	divz := mk("divz", nil)
	oob := mk("oob", nil)
	spin := mk("spin", nil)
	rec := mk("rec", nil)

	fns := map[PID]*Function{
		divz: {Name: "divz", PID: divz, Ret: I64, NRegs: 2, Blocks: []*Block{{
			Instrs: []Instr{{Op: Div, Dst: 1, A: ConstVal(1), B: ConstVal(0)}, {Op: Ret, A: RegVal(1)}}, T: -1, F: -1}}},
		oob: {Name: "oob", PID: oob, Ret: I64, NRegs: 2, Blocks: []*Block{{
			Instrs: []Instr{{Op: LoadX, Dst: 1, Sym: apid, A: ConstVal(5)}, {Op: Ret, A: RegVal(1)}}, T: -1, F: -1}}},
		// spin mirrors what the frontend emits for an infinite loop: the
		// trailing Ret block is unreachable but present (Verify requires
		// at least one Ret).
		spin: {Name: "spin", PID: spin, Ret: I64, NRegs: 1, Blocks: []*Block{
			{Instrs: []Instr{{Op: Jmp}}, T: 0, F: -1},
			{Instrs: []Instr{{Op: Ret, A: ConstVal(0)}}, T: -1, F: -1}}},
		rec: {Name: "rec", PID: rec, Ret: I64, NRegs: 2, Blocks: []*Block{{
			Instrs: []Instr{{Op: Call, Dst: 1, Sym: rec}, {Op: Ret, A: RegVal(1)}}, T: -1, F: -1}}},
	}
	for n, f := range fns {
		if err := Verify(p, f); err != nil {
			t.Fatalf("verify %v: %v", n, err)
		}
	}
	it := NewInterp(p, func(pid PID) *Function { return fns[pid] })
	if _, err := it.Run("divz", nil, 0); err != ErrDivZero {
		t.Errorf("divz: err = %v, want ErrDivZero", err)
	}
	if _, err := it.Run("oob", nil, 0); err != ErrBounds {
		t.Errorf("oob: err = %v, want ErrBounds", err)
	}
	if _, err := it.Run("spin", nil, 1000); err != ErrStepLimit {
		t.Errorf("spin: err = %v, want ErrStepLimit", err)
	}
	if _, err := it.Run("rec", nil, 0); err != ErrDepth {
		t.Errorf("rec: err = %v, want ErrDepth", err)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	p, fns := buildProg(t)
	var mainFn *Function
	for _, f := range fns {
		if f.Name == "main" {
			mainFn = f
		}
	}
	cases := []struct {
		name   string
		mutate func(*Function)
		frag   string
	}{
		{"no blocks", func(f *Function) { f.Blocks = nil }, "no blocks"},
		{"empty block", func(f *Function) { f.Blocks[0].Instrs = nil }, "empty block"},
		{"mid terminator", func(f *Function) {
			f.Blocks[0].Instrs[0] = Instr{Op: Ret, A: ConstVal(1)}
		}, "terminator"},
		{"no terminator", func(f *Function) {
			f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = Instr{Op: Nop}
		}, "not a terminator"},
		{"reg out of range", func(f *Function) {
			f.Blocks[0].Instrs[4] = Instr{Op: Add, Dst: 3, A: RegVal(99), B: ConstVal(1)}
		}, "out of range"},
		{"bad jump", func(f *Function) {
			f.Blocks[0].T = 7
			f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = Instr{Op: Jmp}
		}, "out of range"},
		{"call arity", func(f *Function) {
			for i := range f.Blocks[0].Instrs {
				if f.Blocks[0].Instrs[i].Op == Call {
					f.Blocks[0].Instrs[i].Args = nil
				}
			}
		}, "args"},
		{"void mismatch", func(f *Function) {
			f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = Instr{Op: Ret, A: None()}
		}, "missing return value"},
	}
	for _, tc := range cases {
		f := mainFn.Clone()
		tc.mutate(f)
		err := Verify(p, f)
		if err == nil {
			t.Errorf("%s: expected verify error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.frag)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, fns := buildProg(t)
	var mainFn *Function
	for _, f := range fns {
		if f.Name == "main" {
			mainFn = f
		}
	}
	c := mainFn.Clone()
	c.Blocks[0].Instrs[0].Dst = 99
	for i := range c.Blocks[0].Instrs {
		if c.Blocks[0].Instrs[i].Op == Call {
			c.Blocks[0].Instrs[i].Args[0] = ConstVal(777)
		}
	}
	if mainFn.Blocks[0].Instrs[0].Dst == 99 {
		t.Error("Clone shares instruction storage")
	}
	for _, in := range mainFn.Blocks[0].Instrs {
		if in.Op == Call && in.Args[0].IsConst {
			t.Error("Clone shares call args")
		}
	}
}

func TestInternAndLookup(t *testing.T) {
	p := NewProgram()
	pid1, err := p.Intern("x", SymGlobal)
	if err != nil {
		t.Fatal(err)
	}
	pid2, err := p.Intern("x", SymGlobal)
	if err != nil || pid1 != pid2 {
		t.Errorf("re-intern: pid %d vs %d, err %v", pid1, pid2, err)
	}
	if _, err := p.Intern("x", SymFunc); err == nil {
		t.Error("kind conflict not detected")
	}
	if p.Lookup("x") == nil || p.Lookup("y") != nil {
		t.Error("Lookup misbehaves")
	}
}

func TestValidateUndefined(t *testing.T) {
	p := NewProgram()
	p.Intern("ghost", SymFunc)
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Validate: %v", err)
	}
}

func TestPIDOrderIteration(t *testing.T) {
	p := NewProgram()
	m := p.AddModule("m")
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		pid, _ := p.Intern(n, SymFunc)
		p.Sym(pid).Module = m.Index
	}
	pids := p.FuncPIDs()
	if len(pids) != 3 {
		t.Fatalf("got %d pids", len(pids))
	}
	// PID order must be intern order, not name order.
	for i, n := range names {
		if p.Sym(pids[i]).Name != n {
			t.Errorf("pid %d is %s, want %s", i, p.Sym(pids[i]).Name, n)
		}
	}
}

func TestPrintStable(t *testing.T) {
	p, fns := buildProg(t)
	get := func(pid PID) *Function { return fns[pid] }
	s1 := PrintProgram(p, get)
	s2 := PrintProgram(p, get)
	if s1 != s2 {
		t.Error("PrintProgram not deterministic")
	}
	if !strings.Contains(s1, "func main") || !strings.Contains(s1, "call double") {
		t.Errorf("print output missing expected text:\n%s", s1)
	}
}

func TestProbeCounting(t *testing.T) {
	p := NewProgram()
	m := p.AddModule("m")
	pid, _ := p.Intern("f", SymFunc)
	s := p.Sym(pid)
	s.Module = m.Index
	s.Sig = Signature{Ret: I64}
	// Counter 2 is bumped twice by executing its probe twice (a two-trip
	// loop); duplicate probe ids within one function are rejected by
	// Verify, so accumulation must come from control flow.
	f := &Function{Name: "f", PID: pid, Ret: I64, NRegs: 2, Blocks: []*Block{
		{Instrs: []Instr{
			{Op: Const, Dst: 1, A: ConstVal(0)},
			{Op: Jmp},
		}, T: 1, F: -1},
		{Instrs: []Instr{
			{Op: Probe, A: ConstVal(2)},
			{Op: Add, Dst: 1, A: RegVal(1), B: ConstVal(1)},
			{Op: Lt, Dst: 1, A: RegVal(1), B: ConstVal(2)},
			{Op: Br, A: RegVal(1)},
		}, T: 1, F: 2},
		{Instrs: []Instr{
			{Op: Probe, A: ConstVal(0)},
			{Op: Ret, A: ConstVal(0)},
		}, T: -1, F: -1}}}
	if err := Verify(p, f); err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p, func(PID) *Function { return f })
	if _, err := it.Run("f", nil, 0); err != nil {
		t.Fatal(err)
	}
	if len(it.Probes) != 3 || it.Probes[2] != 2 || it.Probes[0] != 1 {
		t.Errorf("probes = %v, want [1 0 2]", it.Probes)
	}
}

func TestSignatureEqual(t *testing.T) {
	a := Signature{Params: []Type{I64, B1}, Ret: I64}
	b := Signature{Params: []Type{I64, B1}, Ret: I64}
	c := Signature{Params: []Type{I64}, Ret: I64}
	d := Signature{Params: []Type{I64, B1}, Ret: Void}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Signature.Equal misbehaves")
	}
}

func TestNumInstrsAndNewReg(t *testing.T) {
	_, fns := buildProg(t)
	for _, f := range fns {
		if f.Name != "main" {
			continue
		}
		if got := f.NumInstrs(); got != 6 {
			t.Errorf("NumInstrs = %d, want 6", got)
		}
		before := f.NRegs
		r := f.NewReg()
		if r != before || f.NRegs != before+1 {
			t.Errorf("NewReg: got r%d, NRegs %d -> %d", r, before, f.NRegs)
		}
	}
}
