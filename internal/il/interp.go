package il

import (
	"errors"
	"fmt"
)

// Interp is a direct reference interpreter for IL programs. It is the
// semantic oracle of the repository: every optimization level of the
// real pipeline is differential-tested against it (run the same
// program through the interpreter and through the VPA simulator, and
// the results must agree). This is the automated analogue of the
// paper's section 6.3 advice on isolating optimizer-induced behavior
// changes.
type Interp struct {
	prog    *Program
	fn      func(PID) *Function
	scalars []int64
	arrays  [][]int64
	steps   int64
	limit   int64
	depth   int
	Probes  []int64 // counter array indexed by probe id
}

// Interpreter failure modes.
var (
	ErrStepLimit = errors.New("il: interpreter step limit exceeded")
	ErrDepth     = errors.New("il: interpreter call depth exceeded")
	ErrDivZero   = errors.New("il: division by zero")
	ErrBounds    = errors.New("il: array index out of bounds")
)

const maxDepth = 10000

// NewInterp returns an interpreter over the program. fn resolves a
// function PID to its body (typically the NAIM loader's Function
// method, or a plain map in tests). Globals start at their declared
// initial values.
func NewInterp(p *Program, fn func(PID) *Function) *Interp {
	it := &Interp{
		prog:    p,
		fn:      fn,
		scalars: make([]int64, len(p.Syms)),
		arrays:  make([][]int64, len(p.Syms)),
	}
	it.Reset()
	return it
}

// Reset restores all globals to their initial values and clears
// probe counters.
func (it *Interp) Reset() {
	for _, s := range it.prog.Syms {
		if s.Kind != SymGlobal {
			continue
		}
		if s.Type == ArrayI64 {
			it.arrays[s.PID] = make([]int64, s.Elems)
		} else {
			it.scalars[s.PID] = s.Init
		}
	}
	it.steps = 0
	it.depth = 0
	for i := range it.Probes {
		it.Probes[i] = 0
	}
}

// SetGlobal overrides a scalar global before a run (the harness uses
// this to feed "input data sets" to generated programs).
func (it *Interp) SetGlobal(name string, v int64) error {
	s := it.prog.Lookup(name)
	if s == nil || s.Kind != SymGlobal || s.Type == ArrayI64 {
		return fmt.Errorf("il: no scalar global %q", name)
	}
	it.scalars[s.PID] = v
	return nil
}

// Global reads a scalar global after a run.
func (it *Interp) Global(name string) (int64, error) {
	s := it.prog.Lookup(name)
	if s == nil || s.Kind != SymGlobal || s.Type == ArrayI64 {
		return 0, fmt.Errorf("il: no scalar global %q", name)
	}
	return it.scalars[s.PID], nil
}

// Steps reports how many instructions the last Run executed.
func (it *Interp) Steps() int64 { return it.steps }

// Run executes the named entry function with the given arguments,
// with a hard step budget (0 means a default of 1e9).
func (it *Interp) Run(entry string, args []int64, limit int64) (int64, error) {
	s := it.prog.Lookup(entry)
	if s == nil || s.Kind != SymFunc {
		return 0, fmt.Errorf("il: no function %q", entry)
	}
	if limit <= 0 {
		limit = 1e9
	}
	it.limit = limit
	it.steps = 0
	it.depth = 0
	return it.call(s.PID, args)
}

func (it *Interp) call(pid PID, args []int64) (int64, error) {
	f := it.fn(pid)
	if f == nil {
		return 0, fmt.Errorf("il: function %s has no body", it.prog.Syms[pid].Name)
	}
	it.depth++
	if it.depth > maxDepth {
		return 0, ErrDepth
	}
	defer func() { it.depth-- }()

	regs := make([]int64, f.NRegs)
	for i, a := range args {
		regs[i+1] = a
	}
	val := func(v Value) int64 {
		if v.IsConst {
			return v.Const
		}
		return regs[v.Reg]
	}
	bi := int32(0)
	for {
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			it.steps++
			if it.steps > it.limit {
				return 0, ErrStepLimit
			}
			switch in.Op {
			case Nop:
			case Const:
				regs[in.Dst] = in.A.Const
			case Copy:
				regs[in.Dst] = val(in.A)
			case Add:
				regs[in.Dst] = val(in.A) + val(in.B)
			case Sub:
				regs[in.Dst] = val(in.A) - val(in.B)
			case Mul:
				regs[in.Dst] = val(in.A) * val(in.B)
			case Div:
				d := val(in.B)
				if d == 0 {
					return 0, ErrDivZero
				}
				regs[in.Dst] = val(in.A) / d
			case Rem:
				d := val(in.B)
				if d == 0 {
					return 0, ErrDivZero
				}
				regs[in.Dst] = val(in.A) % d
			case Neg:
				regs[in.Dst] = -val(in.A)
			case Not:
				if val(in.A) == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case Eq:
				regs[in.Dst] = b2i(val(in.A) == val(in.B))
			case Ne:
				regs[in.Dst] = b2i(val(in.A) != val(in.B))
			case Lt:
				regs[in.Dst] = b2i(val(in.A) < val(in.B))
			case Le:
				regs[in.Dst] = b2i(val(in.A) <= val(in.B))
			case Gt:
				regs[in.Dst] = b2i(val(in.A) > val(in.B))
			case Ge:
				regs[in.Dst] = b2i(val(in.A) >= val(in.B))
			case LoadG:
				regs[in.Dst] = it.scalars[in.Sym]
			case StoreG:
				it.scalars[in.Sym] = val(in.A)
			case LoadX:
				arr := it.arrays[in.Sym]
				idx := val(in.A)
				if idx < 0 || idx >= int64(len(arr)) {
					return 0, ErrBounds
				}
				regs[in.Dst] = arr[idx]
			case StoreX:
				arr := it.arrays[in.Sym]
				idx := val(in.A)
				if idx < 0 || idx >= int64(len(arr)) {
					return 0, ErrBounds
				}
				arr[idx] = val(in.B)
			case Call:
				cargs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = val(a)
				}
				r, err := it.call(in.Sym, cargs)
				if err != nil {
					return 0, err
				}
				if in.Dst != 0 {
					regs[in.Dst] = r
				}
			case Probe:
				id := in.A.Const
				for int64(len(it.Probes)) <= id {
					it.Probes = append(it.Probes, 0)
				}
				it.Probes[id]++
			case Ret:
				if in.A.IsNone() {
					return 0, nil
				}
				return val(in.A), nil
			case Jmp:
				bi = b.T
			case Br:
				if val(in.A) != 0 {
					bi = b.T
				} else {
					bi = b.F
				}
			default:
				return 0, fmt.Errorf("il: interpreter: unknown op %s", in.Op)
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
