package il

import (
	"fmt"
	"strings"
)

// Print renders the function as stable, human-readable text. The
// output is deterministic and is used by tests to compare IR (e.g.
// compaction round-trips must reproduce it byte for byte).
func (f *Function) Print(p *Program) string {
	var sb strings.Builder
	symName := func(pid PID) string {
		if p != nil && int(pid) < len(p.Syms) {
			return p.Syms[pid].Name
		}
		return fmt.Sprintf("@%d", pid)
	}
	fmt.Fprintf(&sb, "func %s (params=%d, ret=%s, regs=%d)\n", f.Name, f.NParams, f.Ret, f.NRegs)
	for i, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", i)
		if b.Freq != 0 {
			fmt.Fprintf(&sb, " ; freq=%d", b.Freq)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			s := in.String()
			// Replace @pid with names for readability.
			if in.Sym != 0 || in.Op == LoadG || in.Op == StoreG || in.Op == LoadX || in.Op == StoreX || in.Op == Call {
				s = strings.Replace(s, fmt.Sprintf("@%d", in.Sym), symName(in.Sym), 1)
			}
			switch in.Op {
			case Jmp:
				s = fmt.Sprintf("jmp b%d", b.T)
			case Br:
				s = fmt.Sprintf("br %s, b%d, b%d", in.A, b.T, b.F)
			}
			fmt.Fprintf(&sb, "  %s\n", s)
		}
	}
	return sb.String()
}

// PrintProgram renders every defined function (in PID order) plus the
// global table; used in golden tests and compiler diagnostics.
func PrintProgram(p *Program, fn func(PID) *Function) string {
	var sb strings.Builder
	for _, pid := range p.GlobalPIDs() {
		s := p.Syms[pid]
		if s.Type == ArrayI64 {
			fmt.Fprintf(&sb, "var %s [%d]i64\n", s.Name, s.Elems)
		} else {
			fmt.Fprintf(&sb, "var %s i64 = %d\n", s.Name, s.Init)
		}
	}
	for _, pid := range p.FuncPIDs() {
		f := fn(pid)
		if f == nil {
			fmt.Fprintf(&sb, "func %s (unloaded)\n", p.Syms[pid].Name)
			continue
		}
		sb.WriteString(f.Print(p))
	}
	return sb.String()
}
