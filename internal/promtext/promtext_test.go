package promtext

import (
	"math"
	"strings"
	"testing"
)

const sample = `# HELP cmod_build_duration_seconds Wall time per build.
# TYPE cmod_build_duration_seconds histogram
cmod_build_duration_seconds_bucket{le="0.01"} 1
cmod_build_duration_seconds_bucket{le="0.1"} 3
cmod_build_duration_seconds_bucket{le="+Inf"} 4
cmod_build_duration_seconds_sum 1.25
cmod_build_duration_seconds_count 4
# TYPE cmod_build_stage_seconds histogram
cmod_build_stage_seconds_bucket{stage="hlo",le="0.01"} 2
cmod_build_stage_seconds_bucket{stage="hlo",le="+Inf"} 2
cmod_build_stage_seconds_sum{stage="hlo"} 0.004
cmod_build_stage_seconds_count{stage="hlo"} 2
# TYPE cmod_builds_total counter
cmod_builds_total{outcome="ok"} 4
# TYPE cmod_uptime_seconds gauge
cmod_uptime_seconds 33.5
# TYPE cmod_serve_completed untyped
cmod_serve_completed 4
`

func TestParse(t *testing.T) {
	m, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	f := m["cmod_build_duration_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("duration family = %+v, want histogram", f)
	}
	if f.Help != "Wall time per build." {
		t.Errorf("help = %q", f.Help)
	}
	// All 5 samples (buckets, sum, count) collapse onto the family.
	if len(f.Samples) != 5 {
		t.Errorf("duration family has %d samples, want 5", len(f.Samples))
	}
	bs := m.HistogramBuckets("cmod_build_duration_seconds", "", "")
	if len(bs) != 3 || !math.IsInf(bs[2].UpperBound, 1) || bs[2].CumulativeCount != 4 {
		t.Errorf("buckets = %+v", bs)
	}
	sum, count := m.SumCount("cmod_build_duration_seconds", "", "")
	if sum != 1.25 || count != 4 {
		t.Errorf("sum/count = %v/%v", sum, count)
	}
	if bs := m.HistogramBuckets("cmod_build_stage_seconds", "stage", "hlo"); len(bs) != 2 {
		t.Errorf("stage buckets = %+v", bs)
	}
	if v, ok := m.Value("cmod_uptime_seconds"); !ok || v != 33.5 {
		t.Errorf("uptime = %v %v", v, ok)
	}
	if f := m["cmod_builds_total"]; f.Type != "counter" || f.Samples[0].Label("outcome") != "ok" {
		t.Errorf("builds_total = %+v", f)
	}
}

func TestQuantile(t *testing.T) {
	bs := []Bucket{
		{0.01, 10},
		{0.1, 60},
		{1, 100},
		{math.Inf(1), 100},
	}
	// p50: rank 50, inside (0.01, 0.1] with 50 obs: 0.01 + 0.09*40/50.
	if got, want := Quantile(0.5, bs), 0.01+0.09*40/50; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99 lands in (0.1, 1].
	if got := Quantile(0.99, bs); got <= 0.1 || got > 1 {
		t.Errorf("p99 = %v, want in (0.1, 1]", got)
	}
	if Quantile(0.5, nil) != 0 {
		t.Error("empty buckets should give 0")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`metric{le=0.1} 3`,         // unquoted label value
		`metric{x="a} 3`,           // unterminated quote
		`1metric 3`,                // bad name
		`metric`,                   // no value
		`metric 1 1234567890`,      // timestamps unsupported
		`metric{x="a"} notanumber`, // bad value
		"# TYPE metric funky",      // bad type
		`metric{bad-label="x"} 1`,  // bad label name
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse accepted malformed line %q", bad)
		}
	}
}
