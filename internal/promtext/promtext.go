// Package promtext is a minimal parser for the Prometheus text
// exposition format (version 0.0.4) — just enough to validate and
// consume what the cmod daemon's /metrics endpoint emits, with no
// external promtool or client_golang dependency. cmd/cmostat uses it
// to compute quantiles from histogram buckets, and the serve tests use
// it to prove the exposition is well-formed.
//
// Supported: # HELP and # TYPE comments, sample lines with optional
// label sets, +Inf/-Inf/NaN values, counter/gauge/histogram/untyped
// types. Unsupported (and rejected): escapes beyond \\ \" \n in label
// values, exemplars, and timestamps — cmod emits none of them.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name, its label set, and a
// value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Family groups the samples of one metric family (shared name prefix:
// a histogram family owns its _bucket/_sum/_count samples).
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | untyped ("" if no TYPE line)
	Help    string
	Samples []Sample
}

// Metrics is a parsed exposition, keyed by family name.
type Metrics map[string]*Family

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// familyOf maps a sample name to its family: histogram sample suffixes
// collapse onto the family that TYPE-declared them.
func familyOf(m Metrics, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := m[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// Parse reads a text exposition, validating names, label syntax, and
// values. It returns an error for any line it cannot understand — the
// point is to catch malformed output, not to skip it.
func Parse(r io.Reader) (Metrics, error) {
	m := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(m, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(m, s.Name)
		f := m[fam]
		if f == nil {
			f = &Family{Name: fam}
			m[fam] = f
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseComment(m Metrics, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		name := fields[2]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		typ := ""
		if len(fields) == 4 {
			typ = strings.TrimSpace(fields[3])
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid TYPE %q for %s", typ, name)
		}
		f := m[name]
		if f == nil {
			f = &Family{Name: name}
			m[name] = f
		}
		f.Type = typ
	case "HELP":
		name := fields[2]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		f := m[name]
		if f == nil {
			f = &Family{Name: name}
			m[name] = f
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Name.
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:i]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	// Labels.
	if rest[0] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	// Value.
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("trailing tokens after value in %q (timestamps unsupported)", line)
	}
	v, err := parseFloat(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(text string, into map[string]string) error {
	for text != "" {
		eq := strings.IndexByte(text, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", text)
		}
		key := text[:eq]
		if !labelRE.MatchString(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest := text[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		val, n, err := unquote(rest)
		if err != nil {
			return fmt.Errorf("label %s: %w", key, err)
		}
		into[key] = val
		text = rest[n:]
		text = strings.TrimPrefix(text, ",")
	}
	return nil
}

// unquote reads a leading double-quoted string, returning the decoded
// value and how many input bytes it consumed.
func unquote(s string) (string, int, error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\', '"':
				sb.WriteByte(s[i])
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			sb.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the value of the family's single unlabeled sample (or
// its first sample), and whether one exists.
func (m Metrics) Value(name string) (float64, bool) {
	f := m[name]
	if f == nil || len(f.Samples) == 0 {
		return 0, false
	}
	return f.Samples[0].Value, true
}

// HistogramBuckets reconstructs the (bound, cumulative count) pairs of
// one histogram series, selected by an optional label match, sorted by
// bound with +Inf last. It returns nil if the family is missing or not
// a histogram.
func (m Metrics) HistogramBuckets(name string, matchKey, matchVal string) []Bucket {
	f := m[name]
	if f == nil {
		return nil
	}
	var out []Bucket
	for _, s := range f.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		if matchKey != "" && s.Labels[matchKey] != matchVal {
			continue
		}
		le, err := parseFloat(s.Labels["le"])
		if err != nil {
			continue
		}
		out = append(out, Bucket{UpperBound: le, CumulativeCount: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpperBound < out[j].UpperBound })
	return out
}

// SumCount returns a histogram series' _sum and _count samples.
func (m Metrics) SumCount(name string, matchKey, matchVal string) (sum, count float64) {
	f := m[name]
	if f == nil {
		return 0, 0
	}
	for _, s := range f.Samples {
		if matchKey != "" && s.Labels[matchKey] != matchVal {
			continue
		}
		switch s.Name {
		case name + "_sum":
			sum = s.Value
		case name + "_count":
			count = s.Value
		}
	}
	return sum, count
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound      float64
	CumulativeCount float64
}

// Quantile estimates the q-th quantile from cumulative buckets by
// linear interpolation — the same estimate Prometheus's histogram_quantile
// computes. Returns 0 on an empty series.
func Quantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].CumulativeCount
	if total == 0 {
		return 0
	}
	rank := q * total
	var prevBound, prevCount float64
	for _, b := range buckets {
		if b.CumulativeCount >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return prevBound
			}
			inBucket := b.CumulativeCount - prevCount
			if inBucket == 0 {
				return b.UpperBound
			}
			return prevBound + (b.UpperBound-prevBound)*(rank-prevCount)/inBucket
		}
		prevBound, prevCount = b.UpperBound, b.CumulativeCount
	}
	return prevBound
}
