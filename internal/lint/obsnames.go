package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// ObsNames enforces the internal/obs naming conventions (see the
// "Naming conventions" section of internal/obs/doc.go) on every name
// passed as a string literal:
//
//   - span names (Span.Child, Span.ChildDetail, Trace.StartSpan) are
//     stable aggregation identities: short lower-case words separated
//     by single spaces, never dotted, never carrying per-instance
//     data — that goes in ChildDetail's detail argument;
//   - trace counter names are dotted subsystem.measure paths
//     (naim.cache_hits, session.frontend_hits); a registry counter
//     accessed through the same method name instead carries a full
//     Prometheus series name (cmod_*_total);
//   - registry series (Registry.Histogram, Registry.Gauge, SetHelp,
//     obs.LabeledName families) follow Prometheus conventions: a full
//     metric name under the cmod_ product prefix.
//
// Only literal names are checked — a name built at runtime is
// invisible to a syntactic pass — which matches the conventions'
// intent: these names are supposed to be literals, so exporters stay
// diffable across builds.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "span, counter, and metric name literals follow the internal/obs conventions",
	Run:  runObsNames,
}

var (
	// "hlo", "naim compact", "ipa propagate" — words of
	// [a-z0-9_-], single spaces, leading letter.
	spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_-]*( [a-z0-9_-]+)*$`)
	// "naim.cache_hits", "session.hlo_replay_misses".
	counterNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	// "cmod_build_duration_seconds", "cmod_builds_total".
	metricNameRE = regexp.MustCompile(`^cmod_[a-z0-9_]+$`)
)

func runObsNames(p *Pass) {
	ast.Inspect(p.File, func(n ast.Node) bool {
		_, method, call, ok := selectorCall(n)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, lit, isLit := stringLit(call.Args[0])
		if !isLit {
			return true
		}
		switch method {
		case "Child", "ChildDetail", "StartSpan":
			if !spanNameRE.MatchString(name) {
				p.Reportf(lit.Pos(), "span name %q is not lower-case space-separated words (see internal/obs naming conventions)", name)
			}
		case "Counter":
			if !counterNameRE.MatchString(name) && !metricNameRE.MatchString(name) {
				p.Reportf(lit.Pos(), "counter name %q is not a dotted subsystem.measure path or a cmod_* series (see internal/obs naming conventions)", name)
			}
		case "Histogram", "Gauge", "SetHelp", "LabeledName":
			if !metricNameRE.MatchString(name) {
				p.Reportf(lit.Pos(), "metric name %q is not a cmod_-prefixed Prometheus series (see internal/obs naming conventions)", name)
			}
		}
		return true
	})
}

// stringLit unwraps an expression into its string-literal value.
func stringLit(e ast.Expr) (string, *ast.BasicLit, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", nil, false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", nil, false
	}
	return s, lit, true
}
