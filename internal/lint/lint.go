// Package lint is a small stdlib-only analysis framework — the shape
// of golang.org/x/tools/go/analysis without the dependency — carrying
// this repository's own invariant checkers. The toolchain image has
// no module proxy access, so the framework works on bare syntax
// (go/ast + go/parser, no type information): every analyzer here is a
// syntactic heuristic, tuned so the real APIs it polices (the NAIM
// pin protocol, the internal/obs naming conventions) are matched
// without false positives on this codebase.
//
// An Analyzer inspects one parsed file at a time and reports
// positioned findings through its Pass. The cmd/cmolint driver runs
// every analyzer over the repository's production sources (testdata
// and _test.go files are excluded: fixtures and tests violate the
// invariants on purpose — leaking a pin is how the pin-leak counter
// is tested). The linttest subpackage runs analyzers over fixture
// files annotated with `// want "regexp"` comments, the analysistest
// convention.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a resolved position and a message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one file through one analyzer.
type Pass struct {
	Fset *token.FileSet
	File *ast.File

	analyzer string
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the repository's analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PinDiscipline, ObsNames}
}

// Run applies every analyzer to every file and returns the findings
// sorted by position (file, line, column) then analyzer name.
func Run(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, a := range analyzers {
			p := &Pass{
				Fset:     fset,
				File:     f,
				analyzer: a.Name,
				report:   func(d Diagnostic) { out = append(out, d) },
			}
			a.Run(p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// receiverText renders the receiver expression of a selector call
// (`loader` in loader.Function(pid), `p.src` in p.src.DoneWith(pid))
// as stable source text, or "" when the expression is something the
// syntactic matcher cannot name reliably (an index expression, a call
// result, ...).
func receiverText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := receiverText(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return receiverText(x.X)
	}
	return ""
}

// selectorCall decomposes a call of the shape recv.Method(args...),
// returning ok=false for anything else.
func selectorCall(n ast.Node) (recv string, method string, call *ast.CallExpr, ok bool) {
	c, isCall := n.(*ast.CallExpr)
	if !isCall {
		return "", "", nil, false
	}
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	return receiverText(sel.X), sel.Sel.Name, c, true
}
