package lint

import (
	"go/ast"
	"go/token"
)

// PinDiscipline enforces the NAIM loader's pin protocol at call
// sites: a body checked out with src.Function(pid) stays pinned —
// immune to compaction and budget accounting — until the matching
// src.DoneWith(pid). A function that takes pins on some source and
// never releases any of them is the repository's canonical leak shape
// (it shows up as the naim.pin_leaks counter at phase close).
//
// The check is syntactic: inside each function declaration, every
// receiver expression that appears in a one-argument `.Function(x)`
// call must also appear in at least one `.DoneWith(y)` call anywhere
// in the same declaration (a defer, a loop body, and a nested closure
// all count — ownership transfer across functions does not happen in
// this codebase). The one-argument shape keeps package-level helpers
// like analyze.Function(prog, f, level) out of scope.
var PinDiscipline = &Analyzer{
	Name: "pindiscipline",
	Doc:  "every src.Function(pid) pin needs a src.DoneWith release in the same function",
	Run:  runPinDiscipline,
}

func runPinDiscipline(p *Pass) {
	for _, decl := range p.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// First Function-call position per receiver, and the set of
		// receivers released by a DoneWith.
		pins := map[string]token.Pos{}
		released := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			recv, method, call, ok := selectorCall(n)
			if !ok || recv == "" {
				return true
			}
			switch method {
			case "Function":
				if len(call.Args) == 1 {
					if _, seen := pins[recv]; !seen {
						pins[recv] = call.Pos()
					}
				}
			case "DoneWith":
				released[recv] = true
			}
			return true
		})
		for recv, pos := range pins {
			if !released[recv] {
				p.Reportf(pos, "%s.Function pins a body but this function never calls %s.DoneWith", recv, recv)
			}
		}
	}
}
