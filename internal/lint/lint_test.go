package lint_test

import (
	"testing"

	"cmo/internal/lint"
	"cmo/internal/lint/linttest"
)

// Each analyzer must catch exactly the violations its fixture seeds —
// no more (false positives on the clean shapes) and no fewer.

func TestPinDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/pin", lint.PinDiscipline)
}

func TestObsNames(t *testing.T) {
	linttest.Run(t, "testdata/obs", lint.ObsNames)
}

// The full suite over a fixture directory must only produce each
// analyzer's own findings — the pin fixture is obs-clean and vice
// versa.
func TestSuiteCrossClean(t *testing.T) {
	linttest.Run(t, "testdata/pin", lint.All()...)
	linttest.Run(t, "testdata/obs", lint.All()...)
}
