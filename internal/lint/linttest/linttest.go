// Package linttest runs lint analyzers over fixture directories, the
// way golang.org/x/tools/go/analysis/analysistest does: each fixture
// file annotates the lines where findings are expected with
//
//	expr // want "regexp"
//
// comments, and the runner fails on findings without a matching
// expectation and on expectations no finding matched. Fixtures live
// under testdata, so the go tool never builds them and they are free
// to violate the invariants being tested.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"cmo/internal/lint"
)

// TB is the subset of *testing.T the runner needs; an interface so
// this package does not import testing into non-test builds.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRE extracts the quoted pattern of one want comment; both
// forms analysistest accepts — `// want "pat"` and "// want `pat`" —
// are recognized.
var wantRE = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one `// want` annotation: a pattern anchored to a
// file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run parses every .go file in dir, applies the analyzers, and checks
// the findings against the fixtures' want annotations.
func Run(t TB, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					src := m[1]
					if m[2] != "" {
						src = m[2]
					}
					pat, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("linttest: %s: bad want pattern %q: %v", path, src, err)
					}
					wants = append(wants, &expectation{
						file:    path,
						line:    fset.Position(c.Pos()).Line,
						pattern: pat,
					})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range lint.Run(fset, files, analyzers) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
