// Package obsfix seeds internal/obs naming violations for the
// linttest runner. Never built (testdata) — it only needs to parse.
package obsfix

type span struct{}

func (span) Child(name string) span               { return span{} }
func (span) ChildDetail(name, detail string) span { return span{} }
func (span) End() int64                           { return 0 }

type trace struct{}

func (trace) StartSpan(name string) span { return span{} }
func (trace) Counter(name string) *int   { return nil }

type registry struct{}

func (registry) Histogram(name string, bounds []float64) *int { return nil }
func (registry) Gauge(name string, fn func() float64)         {}
func (registry) SetHelp(family, help string)                  {}

func spans(tr trace, sp span) {
	sp.Child("hlo")                               // conventional phase name
	sp.Child("naim compact")                      // subsystem-prefixed span
	sp.Child("ipa propagate")                     // multi-word span
	tr.StartSpan("build")                         // root span
	sp.ChildDetail("codegen", "Module.With.Dots") // detail may carry anything
	sp.Child("HLO")                               // want `span name "HLO" is not lower-case`
	sp.Child("ipa.scan")                          // want `span name "ipa\.scan" is not lower-case`
	sp.Child("naim  compact")                     // want `span name "naim  compact" is not lower-case`
	tr.StartSpan("Build hlo")                     // want `span name "Build hlo" is not lower-case`
}

func counters(tr trace) {
	tr.Counter("naim.cache_hits").Add()          // dotted subsystem.measure
	tr.Counter("session.hlo_replay_hits").Add()  // dotted subsystem.measure
	tr.Counter("cmod_ledger_errors_total").Add() // registry series via the same method
	tr.Counter("cachehits").Add()                // want `counter name "cachehits" is not a dotted`
	tr.Counter("Naim.hits").Add()                // want `counter name "Naim\.hits" is not a dotted`
}

func series(reg registry) {
	reg.Histogram("cmod_build_duration_seconds", nil) // full Prometheus name
	reg.Gauge("cmod_queue_depth", nil)                // full Prometheus name
	reg.SetHelp("cmod_builds_total", "builds by outcome")
	reg.Histogram("build_duration_seconds", nil) // want `metric name "build_duration_seconds" is not a cmod_-prefixed`
	reg.Gauge("queueDepth", nil)                 // want `metric name "queueDepth" is not a cmod_-prefixed`
}
