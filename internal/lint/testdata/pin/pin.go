// Package pin seeds pin-discipline violations for the linttest
// runner. It is never built by the go tool (testdata) — it only needs
// to parse.
package pin

type loaderT struct{}

func (loaderT) Function(pid int) *int { return nil }
func (loaderT) DoneWith(pid int)      {}

type wrap struct{ src loaderT }

// leaky pins bodies and never releases any — the canonical leak.
func leaky(loader loaderT, pids []int) {
	for _, pid := range pids {
		_ = loader.Function(pid) // want `loader\.Function pins a body but this function never calls loader\.DoneWith`
	}
}

// clean pairs every pin with an in-loop release.
func clean(loader loaderT, pids []int) {
	for _, pid := range pids {
		f := loader.Function(pid)
		_ = f
		loader.DoneWith(pid)
	}
}

// deferred releases through a defer — still a release.
func deferred(loader loaderT, pid int) {
	_ = loader.Function(pid)
	defer loader.DoneWith(pid)
}

// nestedLeak pins through a dotted receiver and never releases it.
func (w wrap) nestedLeak(pid int) {
	_ = w.src.Function(pid) // want `w\.src\.Function pins a body but this function never calls w\.src\.DoneWith`
}

// nestedClean pairs the dotted receiver's pin with its release.
func (w wrap) nestedClean(pid int) *int {
	f := w.src.Function(pid)
	w.src.DoneWith(pid)
	return f
}

// mixed releases one source but leaks the other: only the leaked
// receiver is reported.
func mixed(a, b loaderT, pid int) {
	_ = a.Function(pid)
	a.DoneWith(pid)
	_ = b.Function(pid) // want `b\.Function pins a body but this function never calls b\.DoneWith`
}

// closureRelease pins in the body and releases inside a nested
// closure — the release still counts (same declaration).
func closureRelease(loader loaderT, pid int) func() {
	_ = loader.Function(pid)
	return func() { loader.DoneWith(pid) }
}

// notAPin calls a package-style helper whose arity rules it out of
// the one-argument pin shape.
func notAPin(pid int) {
	analyze.Function(nil, pid, 3)
}

var analyze struct{ Function func(a any, pid, level int) }
