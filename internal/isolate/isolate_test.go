package isolate

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestBisectOpsFindsCulprit(t *testing.T) {
	for culprit := 1; culprit <= 50; culprit += 7 {
		fails := func(k int) (bool, error) { return k >= culprit, nil }
		got, err := BisectOps(64, fails)
		if err != nil {
			t.Fatalf("culprit %d: %v", culprit, err)
		}
		if got != culprit {
			t.Errorf("culprit %d: bisect found %d", culprit, got)
		}
	}
}

func TestBisectOpsLogarithmicProbes(t *testing.T) {
	culprit := 777
	probes := 0
	fails := func(k int) (bool, error) {
		probes++
		return k >= culprit, nil
	}
	got, err := BisectOps(1024, fails)
	if err != nil || got != culprit {
		t.Fatalf("got %d, %v", got, err)
	}
	if probes > 14 {
		t.Errorf("bisect used %d probes for hi=1024 (want <= 14)", probes)
	}
}

func TestBisectOpsEdgeCases(t *testing.T) {
	if _, err := BisectOps(10, func(int) (bool, error) { return false, nil }); !errors.Is(err, ErrNotReproducible) {
		t.Errorf("never-failing: %v", err)
	}
	if _, err := BisectOps(10, func(int) (bool, error) { return true, nil }); !errors.Is(err, ErrAlwaysFails) {
		t.Errorf("always-failing: %v", err)
	}
	if _, err := BisectOps(0, nil); err == nil {
		t.Error("invalid bound accepted")
	}
	boom := errors.New("boom")
	if _, err := BisectOps(10, func(int) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("probe error not propagated: %v", err)
	}
}

func TestBisectOpsProperty(t *testing.T) {
	f := func(seed uint16) bool {
		hi := 1 + int(seed%500)
		culprit := 1 + int(seed)%hi
		got, err := BisectOps(hi, func(k int) (bool, error) { return k >= culprit, nil })
		return err == nil && got == culprit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// failsWhenContains builds a ddmin predicate: the "bug" reproduces
// exactly when all the named elements are present together (the
// paper's "on one occasion we found a bug that required eight modules
// to be compiled under CMO").
func failsWhenContains(need []int) func([]int) (bool, error) {
	return func(include []int) (bool, error) {
		have := make(map[int]bool, len(include))
		for _, i := range include {
			have[i] = true
		}
		for _, n := range need {
			if !have[n] {
				return false, nil
			}
		}
		return true, nil
	}
}

func TestMinimizeSetSingle(t *testing.T) {
	got, err := MinimizeSet(30, failsWhenContains([]int{17}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 17 {
		t.Errorf("got %v, want [17]", got)
	}
}

func TestMinimizeSetConjunction(t *testing.T) {
	need := []int{2, 9, 23}
	got, err := MinimizeSet(30, failsWhenContains(need))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != len(need) {
		t.Fatalf("got %v, want %v", got, need)
	}
	for i := range need {
		if got[i] != need[i] {
			t.Fatalf("got %v, want %v", got, need)
		}
	}
}

func TestMinimizeSetEightModules(t *testing.T) {
	// The paper's worst case: eight modules needed together.
	need := []int{1, 4, 5, 11, 19, 33, 40, 47}
	got, err := MinimizeSet(48, failsWhenContains(need))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != len(need) {
		t.Fatalf("got %d elements %v, want 8 %v", len(got), got, need)
	}
	for i := range need {
		if got[i] != need[i] {
			t.Fatalf("got %v, want %v", got, need)
		}
	}
}

func TestMinimizeSetResultIsOneMinimal(t *testing.T) {
	need := []int{3, 7}
	pred := failsWhenContains(need)
	got, err := MinimizeSet(16, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Removing any single element must make the failure vanish.
	for drop := range got {
		sub := append(append([]int(nil), got[:drop]...), got[drop+1:]...)
		if len(sub) == 0 {
			continue
		}
		ok, _ := pred(sub)
		if ok {
			t.Errorf("result %v not 1-minimal: still fails without %d", got, got[drop])
		}
	}
}

func TestMinimizeSetErrors(t *testing.T) {
	if _, err := MinimizeSet(10, func([]int) (bool, error) { return false, nil }); !errors.Is(err, ErrNotReproducible) {
		t.Errorf("never-failing: %v", err)
	}
	if _, err := MinimizeSet(0, nil); err == nil {
		t.Error("empty universe accepted")
	}
	boom := errors.New("boom")
	if _, err := MinimizeSet(4, func([]int) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("probe error not propagated: %v", err)
	}
}

func TestMinimizeSetProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n := 4 + int(seed%40)
		// Choose 1..4 needed elements deterministically from the seed.
		var need []int
		k := 1 + int(seed>>8)%4
		for i := 0; i < k; i++ {
			e := int(seed>>(3*i)) % n
			dup := false
			for _, x := range need {
				if x == e {
					dup = true
				}
			}
			if !dup {
				need = append(need, e)
			}
		}
		got, err := MinimizeSet(n, failsWhenContains(need))
		if err != nil {
			return false
		}
		if len(got) != len(need) {
			return false
		}
		sort.Ints(got)
		sort.Ints(need)
		for i := range need {
			if got[i] != need[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
