// Package isolate automates the paper's section-6.3 methodology for
// diagnosing optimizer-induced behavior changes: "Both of these
// reductions can in principle be automated. Binary search is an
// effective technique to eliminate irrelevant optimizer actions first
// in bulk, and then in smaller units."
//
// Two reducers are provided, matching the paper's two dimensions:
//
//   - MinimizeSet shrinks the *amount of code exposed to the
//     optimizer* — a delta-debugging minimizer over module sets,
//     because "pure binary search on the modules has limited
//     applicability [since] often several modules will need to be
//     optimized together to demonstrate the problem";
//   - BisectOps pinpoints the *single optimizer operation* that flips
//     a build from working to failing, using the deterministic
//     operation limits the compiler exposes (cmo.Options.MaxInlines),
//     following Whalley's automatic isolation of compiler errors
//     (paper reference [18]).
//
// Both require the compiler's section-6.2 determinism guarantee: the
// same inputs and limits always reproduce the same build.
package isolate

import (
	"errors"
	"fmt"
)

// ErrNotReproducible reports that the failure predicate did not hold
// even with everything enabled (nothing to isolate).
var ErrNotReproducible = errors.New("isolate: failure does not reproduce with the full configuration")

// ErrAlwaysFails reports that the failure holds even with nothing
// enabled, so the probe is not measuring an optimizer action.
var ErrAlwaysFails = errors.New("isolate: failure reproduces even with the feature disabled entirely")

// BisectOps finds the smallest operation count k in [1, hi] at which
// fails(k) holds, assuming monotonicity (once the faulty operation is
// included, it stays included: fails(i) implies fails(j) for j >= i).
// fails(0) must be false and fails(hi) true; the returned k
// identifies the k'th operation as the culprit.
func BisectOps(hi int, fails func(k int) (bool, error)) (int, error) {
	if hi < 1 {
		return 0, fmt.Errorf("isolate: invalid operation bound %d", hi)
	}
	ok, err := fails(0)
	if err != nil {
		return 0, err
	}
	if ok {
		return 0, ErrAlwaysFails
	}
	ok, err = fails(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, ErrNotReproducible
	}
	lo, high := 0, hi // invariant: fails(lo) == false, fails(high) == true
	for high-lo > 1 {
		mid := lo + (high-lo)/2
		ok, err := fails(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			high = mid
		} else {
			lo = mid
		}
	}
	return high, nil
}

// MinimizeSet returns a 1-minimal subset of {0..n-1} on which fails
// still holds: removing any single element of the result makes the
// failure disappear. It implements the ddmin algorithm (Zeller's
// delta debugging), the systematic version of the paper's manual
// divide and conquer over modules.
func MinimizeSet(n int, fails func(include []int) (bool, error)) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("isolate: empty universe")
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	ok, err := fails(all)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotReproducible
	}

	cur := all
	granularity := 2
	for len(cur) > 1 {
		chunk := (len(cur) + granularity - 1) / granularity
		reduced := false
		// Try removing each chunk (testing its complement).
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			complement := make([]int, 0, len(cur)-(end-start))
			complement = append(complement, cur[:start]...)
			complement = append(complement, cur[end:]...)
			if len(complement) == 0 {
				continue
			}
			ok, err := fails(complement)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = complement
				granularity = max2(granularity-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if granularity >= len(cur) {
				break
			}
			granularity = min2(granularity*2, len(cur))
		}
	}
	return cur, nil
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
