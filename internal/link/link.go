// Package link builds executable VPA images from compiled functions.
// It plays the role of the HP-UX linker in the paper's pipeline
// (Figure 2): it resolves symbols, relocates code, lays out the data
// segment, and — when profile data is available — clusters
// frequently-calling routines together in the final program image
// (Pettis–Hansen code positioning, paper's reference [13]).
//
// In CMO mode the linker is also the component that routes IL objects
// back through the optimizer; that orchestration lives in the cmo
// facade package, which calls into here for the final image.
package link

import (
	"fmt"
	"sort"

	"cmo/internal/il"
	"cmo/internal/obs"
	"cmo/internal/vpa"
)

// Edge is a weighted call-graph edge used for routine clustering.
type Edge struct {
	Caller, Callee il.PID
	Count          int64
}

// Options controls image construction.
type Options struct {
	// Entry is the entry function name (normally "main").
	Entry string
	// Cluster enables profile-guided routine clustering using Edges.
	Cluster bool
	// Edges are the profiled call-graph edges (required for Cluster).
	Edges []Edge
	// NumProbes sizes the profile counter array (instrumented builds).
	NumProbes int
	// Omit lists functions proven dead by whole-program analysis;
	// they are left out of the image (shrinking it and improving
	// I-cache behavior). Omitting a function that is still called
	// is a link error.
	Omit map[il.PID]bool
	// Span is the trace span link work nests under (the driver's
	// "link" phase span). Zero Span = tracing off.
	Span obs.Span
}

// Link assembles an image from per-function machine code. code must
// contain an entry for every defined function symbol (minus Omit);
// the emitted instruction .Sym fields hold PIDs and are relocated —
// in place — to image indexes here, so each compiled function may be
// linked only once (recompile or copy to link again).
func Link(prog *il.Program, code map[il.PID]*vpa.Func, opts Options) (*vpa.Image, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	entrySym := prog.Lookup(opts.Entry)
	if entrySym == nil || entrySym.Kind != il.SymFunc {
		return nil, fmt.Errorf("link: no entry function %q", opts.Entry)
	}

	funcPIDs := prog.FuncPIDs()
	if len(opts.Omit) > 0 {
		kept := funcPIDs[:0]
		for _, pid := range funcPIDs {
			if !opts.Omit[pid] {
				kept = append(kept, pid)
			}
		}
		funcPIDs = kept
		if opts.Omit[entrySym.PID] {
			return nil, fmt.Errorf("link: entry %s is omitted", opts.Entry)
		}
	}
	for _, pid := range funcPIDs {
		if code[pid] == nil {
			return nil, fmt.Errorf("link: missing code for %s", prog.Sym(pid).Name)
		}
	}
	order := funcPIDs
	if opts.Cluster && len(opts.Edges) > 0 {
		sp := opts.Span.Child("cluster")
		order = clusterOrder(funcPIDs, entrySym.PID, opts.Edges)
		sp.End()
	}

	img := &vpa.Image{NumProbes: opts.NumProbes}

	// Data segment: globals in PID order.
	globalIdx := make(map[il.PID]int32)
	for _, pid := range prog.GlobalPIDs() {
		s := prog.Sym(pid)
		g := vpa.Global{Name: s.Name, Words: 1, Init: s.Init}
		if s.Type == il.ArrayI64 {
			g.Words = s.Elems
			g.Init = 0
		}
		globalIdx[pid] = int32(len(img.Globals))
		img.Globals = append(img.Globals, g)
	}

	// Code: in cluster order, with relocation.
	rsp := opts.Span.Child("relocate")
	funcIdx := make(map[il.PID]int32)
	for _, pid := range order {
		funcIdx[pid] = int32(len(img.Funcs))
		img.Funcs = append(img.Funcs, code[pid])
	}
	for _, pid := range order {
		f := code[pid]
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case vpa.CALL:
				idx, ok := funcIdx[il.PID(in.Sym)]
				if !ok {
					callee := il.PID(in.Sym)
					if opts.Omit[callee] && int(callee) < len(prog.Syms) {
						// The most diagnosable form of this failure:
						// whole-program DCE removed a function that is
						// still called. Name it.
						return nil, fmt.Errorf("link: %s: call to %s, which dead-code elimination omitted from the image (unsound DCE)",
							f.Name, prog.Syms[callee].Name)
					}
					return nil, fmt.Errorf("link: %s: call to unknown PID %d", f.Name, in.Sym)
				}
				in.Sym = idx
			case vpa.LDG, vpa.STG, vpa.LDX, vpa.STX:
				idx, ok := globalIdx[il.PID(in.Sym)]
				if !ok {
					return nil, fmt.Errorf("link: %s: reference to unknown global PID %d", f.Name, in.Sym)
				}
				in.Sym = idx
			}
		}
	}
	rsp.End()
	img.Entry = funcIdx[entrySym.PID]
	fsp := opts.Span.Child("finalize")
	img.Finalize()
	err := img.Validate()
	fsp.End()
	if err != nil {
		return nil, err
	}
	return img, nil
}

// clusterOrder computes a Pettis–Hansen-style function layout: merge
// function sequences along call edges in decreasing weight order, so
// hot caller/callee pairs become adjacent in the image; then place
// the sequences hottest-first, starting with the entry's sequence.
func clusterOrder(pids []il.PID, entry il.PID, edges []Edge) []il.PID {
	// Aggregate duplicate edges deterministically.
	type key struct{ a, b il.PID }
	agg := make(map[key]int64)
	var keys []key
	for _, e := range edges {
		if e.Caller == e.Callee || e.Count <= 0 {
			continue
		}
		k := key{e.Caller, e.Callee}
		if _, ok := agg[k]; !ok {
			keys = append(keys, k)
		}
		agg[k] += e.Count
	}
	sort.Slice(keys, func(i, j int) bool {
		wi, wj := agg[keys[i]], agg[keys[j]]
		if wi != wj {
			return wi > wj
		}
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})

	// Union-find over sequences; each root owns an ordered chain.
	parent := make(map[il.PID]il.PID, len(pids))
	chain := make(map[il.PID][]il.PID, len(pids))
	weight := make(map[il.PID]int64, len(pids))
	for _, p := range pids {
		parent[p] = p
		chain[p] = []il.PID{p}
	}
	var find func(p il.PID) il.PID
	find = func(p il.PID) il.PID {
		for parent[p] != p {
			parent[p] = parent[parent[p]]
			p = parent[p]
		}
		return p
	}
	for _, k := range keys {
		if _, ok := parent[k.a]; !ok {
			continue // endpoint omitted from the image
		}
		if _, ok := parent[k.b]; !ok {
			continue
		}
		ra, rb := find(k.a), find(k.b)
		if ra == rb {
			continue
		}
		// Concatenate callee's chain after caller's.
		parent[rb] = ra
		chain[ra] = append(chain[ra], chain[rb]...)
		weight[ra] += weight[rb] + agg[key{k.a, k.b}]
		delete(chain, rb)
	}

	// Order sequences: entry's first, then by weight desc, then by
	// root PID for determinism.
	var roots []il.PID
	for _, p := range pids {
		if find(p) == p {
			roots = append(roots, p)
		}
	}
	entryRoot := find(entry)
	sort.Slice(roots, func(i, j int) bool {
		if roots[i] == entryRoot {
			return true
		}
		if roots[j] == entryRoot {
			return false
		}
		wi, wj := weight[roots[i]], weight[roots[j]]
		if wi != wj {
			return wi > wj
		}
		return roots[i] < roots[j]
	})
	out := make([]il.PID, 0, len(pids))
	for _, r := range roots {
		out = append(out, chain[r]...)
	}
	return out
}
