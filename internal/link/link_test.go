package link

import (
	"strings"
	"testing"

	"cmo/internal/il"
	"cmo/internal/llo"
	"cmo/internal/lower"
	"cmo/internal/source"
	"cmo/internal/vpa"
)

func buildCode(t *testing.T, srcs ...string) (*il.Program, map[il.PID]*vpa.Func) {
	t.Helper()
	var files []*source.File
	for i, s := range srcs {
		f, err := source.Parse(string(rune('a'+i))+".minc", s)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := source.Check(f); err != nil {
			t.Fatalf("check: %v", err)
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	code := make(map[il.PID]*vpa.Func)
	for pid, f := range res.Funcs {
		mf, err := llo.Compile(res.Prog, f, llo.Options{Level: 2})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		code[pid] = mf
	}
	return res.Prog, code
}

const linkSrc = `module m;
var g int = 2;
func a(x int) int { return x + g; }
func b(x int) int { return a(x) * 2; }
func c(x int) int { return b(x) + a(x); }
func island() int { return 9; }
func main() int { return c(5); }
`

func TestLinkBasics(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	img, err := Link(prog, code, Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := vpa.NewMachine(img, vpa.DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 21 {
		t.Errorf("got %d, want 21", got)
	}
	if img.FuncIndex("main") != img.Entry {
		t.Error("entry index wrong")
	}
	if img.GlobalIndex("g") < 0 {
		t.Error("global g missing from image")
	}
}

func TestLinkMissingEntry(t *testing.T) {
	prog, code := buildCode(t, `module m; func f() int { return 1; } func main() int { return f(); }`)
	if _, err := Link(prog, code, Options{Entry: "nope"}); err == nil {
		t.Error("missing entry not reported")
	}
}

func TestLinkMissingCode(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	delete(code, prog.Lookup("a").PID)
	if _, err := Link(prog, code, Options{}); err == nil || !strings.Contains(err.Error(), "missing code") {
		t.Errorf("missing code not reported: %v", err)
	}
}

func TestLinkOmit(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	island := prog.Lookup("island").PID
	img, err := Link(prog, code, Options{Omit: map[il.PID]bool{island: true}})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if img.FuncIndex("island") != -1 {
		t.Error("omitted function still in image")
	}
	m := vpa.NewMachine(img, vpa.DefaultConfig())
	if got, err := m.Run(nil, 0); err != nil || got != 21 {
		t.Errorf("run after omit: got %d, %v; want 21", got, err)
	}
	// Omitting the entry is an error.
	mainPID := prog.Lookup("main").PID
	if _, err := Link(prog, code, Options{Omit: map[il.PID]bool{mainPID: true}}); err == nil {
		t.Error("omitting entry not reported")
	}
}

func TestClusteringPlacesHotPairAdjacent(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	edges := []Edge{
		{Caller: pid("main"), Callee: pid("c"), Count: 10},
		{Caller: pid("c"), Callee: pid("b"), Count: 1000}, // hottest
		{Caller: pid("b"), Callee: pid("a"), Count: 100},
		{Caller: pid("c"), Callee: pid("a"), Count: 5},
	}
	img, err := Link(prog, code, Options{Cluster: true, Edges: edges})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	// c and b (the hottest pair) must be adjacent in the layout.
	ci, bi := img.FuncIndex("c"), img.FuncIndex("b")
	if bi != ci+1 {
		t.Errorf("hot pair not adjacent: c at %d, b at %d", ci, bi)
	}
	// The entry's chain is placed first.
	if img.FuncIndex("main") != 0 {
		t.Errorf("entry sequence not first: main at %d", img.FuncIndex("main"))
	}
	// Behavior unchanged by layout.
	m := vpa.NewMachine(img, vpa.DefaultConfig())
	if got, err := m.Run(nil, 0); err != nil || got != 21 {
		t.Errorf("clustered image wrong: %d, %v", got, err)
	}
}

func TestClusteringDeterministic(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	edges := []Edge{
		{Caller: pid("main"), Callee: pid("c"), Count: 7},
		{Caller: pid("c"), Callee: pid("b"), Count: 7}, // tie
	}
	order := func() string {
		img, err := Link(prog, clone(code), Options{Cluster: true, Edges: edges})
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, f := range img.Funcs {
			names = append(names, f.Name)
		}
		return strings.Join(names, ",")
	}
	if order() != order() {
		t.Error("clustering not deterministic under ties")
	}
}

func TestClusteringIgnoresBogusEdges(t *testing.T) {
	prog, code := buildCode(t, linkSrc)
	pid := func(n string) il.PID { return prog.Lookup(n).PID }
	edges := []Edge{
		{Caller: pid("main"), Callee: pid("main"), Count: 50}, // self edge
		{Caller: pid("c"), Callee: pid("b"), Count: 0},        // zero count
		{Caller: il.PID(4000), Callee: pid("b"), Count: 9},    // unknown caller
	}
	img, err := Link(prog, clone(code), Options{Cluster: true, Edges: edges})
	if err != nil {
		t.Fatalf("link with bogus edges: %v", err)
	}
	m := vpa.NewMachine(img, vpa.DefaultConfig())
	if got, err := m.Run(nil, 0); err != nil || got != 21 {
		t.Errorf("got %d, %v", got, err)
	}
}

// clone duplicates code maps since Link relocates in place.
func clone(code map[il.PID]*vpa.Func) map[il.PID]*vpa.Func {
	out := make(map[il.PID]*vpa.Func, len(code))
	for pid, f := range code {
		nf := &vpa.Func{Name: f.Name, NSlots: f.NSlots, Code: append([]vpa.Instr(nil), f.Code...)}
		out[pid] = nf
	}
	return out
}
