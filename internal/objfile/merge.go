package objfile

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/naim"
	"cmo/internal/vpa"
)

// Linkable is the result of merging object files into one program:
// a fresh program-wide symbol table, machine code with global PIDs,
// and (when every object carries IL) the IL bodies ready for the
// optimizer — the linker-side entry into CMO (paper Figure 2).
type Linkable struct {
	Prog *il.Program
	Code map[il.PID]*vpa.Func
	IL   map[il.PID]*il.Function
	// AllIL reports whether every object carried IL, i.e. whether
	// link-time CMO is possible.
	AllIL bool
}

// Merge interns every object's symbols into a program-wide table,
// checks cross-module interface agreement, and remaps all local PIDs
// to global ones.
func Merge(objs []*Object) (*Linkable, error) {
	prog := il.NewProgram()
	ln := &Linkable{
		Prog:  prog,
		Code:  make(map[il.PID]*vpa.Func),
		IL:    make(map[il.PID]*il.Function),
		AllIL: len(objs) > 0,
	}
	remaps := make([][]il.PID, len(objs))

	// Pass 1: definitions.
	for oi, o := range objs {
		mod := prog.AddModule(o.Module)
		mod.Lines = o.Lines
		remaps[oi] = make([]il.PID, len(o.Syms))
		for i := range remaps[oi] {
			remaps[oi][i] = il.NoPID
		}
		for li, s := range o.Syms {
			if !s.Defined {
				continue
			}
			pid, err := prog.Intern(s.Name, s.Kind)
			if err != nil {
				return nil, fmt.Errorf("objfile: module %s: %w", o.Module, err)
			}
			sym := prog.Sym(pid)
			if sym.Module >= 0 {
				return nil, fmt.Errorf("objfile: %s defined in both %s and %s",
					s.Name, prog.Modules[sym.Module].Name, o.Module)
			}
			sym.Module = mod.Index
			if s.Kind == il.SymGlobal {
				sym.Type = s.Type
				sym.Elems = s.Elems
				sym.Init = s.Init
			} else {
				sym.Sig = il.Signature{Params: s.Params, Ret: s.Ret}
			}
			mod.Defs = append(mod.Defs, pid)
			remaps[oi][li] = pid
		}
	}

	// Pass 2: externs, with interface checking (paper section 6.3:
	// mismatched interfaces "only show up with interprocedural
	// optimization"; we reject them at link time).
	for oi, o := range objs {
		mod := prog.Modules[oi]
		for li, s := range o.Syms {
			if s.Defined {
				continue
			}
			pid, err := prog.Intern(s.Name, s.Kind)
			if err != nil {
				return nil, fmt.Errorf("objfile: module %s: %w", o.Module, err)
			}
			sym := prog.Sym(pid)
			if sym.Module >= 0 {
				if s.Kind == il.SymFunc {
					want := il.Signature{Params: s.Params, Ret: s.Ret}
					if !sym.Sig.Equal(want) {
						return nil, fmt.Errorf("objfile: module %s: extern %s%s does not match definition %s%s",
							o.Module, s.Name, want, s.Name, sym.Sig)
					}
				} else if sym.Type != s.Type || sym.Elems != s.Elems {
					return nil, fmt.Errorf("objfile: module %s: extern var %s type mismatch", o.Module, s.Name)
				}
			}
			mod.Externs = append(mod.Externs, pid)
			remaps[oi][li] = pid
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	// Pass 3: remap code and IL.
	for oi, o := range objs {
		remap := remaps[oi]
		lookup := func(local int32) (il.PID, error) {
			if local < 0 || int(local) >= len(remap) || remap[local] == il.NoPID {
				return il.NoPID, fmt.Errorf("objfile: module %s: dangling local PID %d", o.Module, local)
			}
			return remap[local], nil
		}
		for _, fe := range o.Funcs {
			pid, err := lookup(int32(fe.LocalPID))
			if err != nil {
				return nil, err
			}
			code := fe.Code
			for i := range code.Code {
				in := &code.Code[i]
				switch in.Op {
				case vpa.CALL, vpa.LDG, vpa.STG, vpa.LDX, vpa.STX:
					g, err := lookup(in.Sym)
					if err != nil {
						return nil, err
					}
					in.Sym = int32(g)
				}
			}
			ln.Code[pid] = code
		}
		if len(o.IL) == 0 {
			ln.AllIL = false
			continue
		}
		for _, e := range o.IL {
			pid, err := lookup(int32(e.LocalPID))
			if err != nil {
				return nil, err
			}
			f, err := naim.DecodeFunc(prog, e.Blob)
			if err != nil {
				return nil, fmt.Errorf("objfile: module %s: embedded IL for %s: %w",
					o.Module, prog.Sym(pid).Name, err)
			}
			f.PID = pid
			f.Name = prog.Sym(pid).Name
			for _, b := range f.Blocks {
				for ii := range b.Instrs {
					in := &b.Instrs[ii]
					switch in.Op {
					case il.LoadG, il.StoreG, il.LoadX, il.StoreX, il.Call:
						g, err := lookup(int32(in.Sym))
						if err != nil {
							return nil, err
						}
						in.Sym = g
					}
				}
			}
			if err := il.Verify(prog, f); err != nil {
				return nil, fmt.Errorf("objfile: module %s: %w", o.Module, err)
			}
			ln.IL[pid] = f
		}
	}
	return ln, nil
}
