package objfile

import (
	"fmt"

	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/llo"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/source"
)

// CompileModule compiles one MinC source module into an object file:
// machine code at the given LLO level, plus embedded relocatable IL
// when withIL is set (the -O4 "fat object" a CMO link consumes).
// intraHLO runs the high-level optimizer over the single module
// (+O3): inlining, cloning, and loop transformations within module
// boundaries, with everything exported treated as externally callable
// and every global as externally stored — the conservatism that
// link-time CMO exists to remove. Cross-module references stay
// symbolic; the linker resolves them.
func CompileModule(file *source.File, lloLevel int, withIL, intraHLO bool) (*Object, error) {
	res, err := lower.ModulesLoose([]*source.File{file})
	if err != nil {
		return nil, err
	}
	prog := res.Prog
	if intraHLO {
		scope := make(map[il.PID]bool)
		extCalled := make(map[il.PID]bool)
		extStored := make(map[il.PID]bool)
		for _, s := range prog.Syms {
			switch s.Kind {
			case il.SymFunc:
				if s.Module >= 0 {
					scope[s.PID] = true
					extCalled[s.PID] = true
				}
			case il.SymGlobal:
				extStored[s.PID] = true
			}
		}
		if _, err := hlo.Optimize(prog, hlo.MapSource(res.Funcs), hlo.Options{
			Scope:            scope,
			Selected:         scope,
			ExternallyCalled: extCalled,
			ExternStored:     extStored,
			AllowNoEntry:     true,
		}); err != nil {
			return nil, fmt.Errorf("objfile: +O3 optimization of %s: %w", file.Module, err)
		}
	}
	o := &Object{Module: file.Module, Lines: file.Lines}

	// Module-local symbol table: local PID == program PID of the
	// single-file program.
	for _, s := range prog.Syms {
		e := SymEntry{
			Name:    s.Name,
			Kind:    s.Kind,
			Defined: s.Module >= 0,
			Type:    s.Type,
			Elems:   s.Elems,
			Init:    s.Init,
			Ret:     s.Sig.Ret,
		}
		e.Params = append(e.Params, s.Sig.Params...)
		o.Syms = append(o.Syms, e)
	}

	for _, pid := range prog.FuncPIDs() {
		f := res.Funcs[pid]
		mf, err := llo.Compile(prog, f, llo.Options{Level: lloLevel})
		if err != nil {
			return nil, fmt.Errorf("objfile: compiling %s: %w", f.Name, err)
		}
		o.Funcs = append(o.Funcs, FuncEntry{LocalPID: uint32(pid), Code: mf})
		if withIL {
			o.IL = append(o.IL, ILEntry{LocalPID: uint32(pid), Blob: naim.EncodeFunc(f, nil)})
		}
	}
	return o, nil
}

// CompileSource is CompileModule from raw text.
func CompileSource(name, text string, lloLevel int, withIL, intraHLO bool) (*Object, error) {
	f, err := source.Parse(name, text)
	if err != nil {
		return nil, err
	}
	if err := source.Check(f); err != nil {
		return nil, err
	}
	return CompileModule(f, lloLevel, withIL, intraHLO)
}

// FuncPIDsWithIL lists the merged program's functions that have IL
// bodies, in PID order.
func (l *Linkable) FuncPIDsWithIL() []il.PID {
	var out []il.PID
	for _, pid := range l.Prog.FuncPIDs() {
		if l.IL[pid] != nil {
			out = append(out, pid)
		}
	}
	return out
}
