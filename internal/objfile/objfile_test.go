package objfile

import (
	"bytes"
	"strings"
	"testing"

	"cmo/internal/il"
	"cmo/internal/link"
	"cmo/internal/vpa"
)

const modA = `module a;
extern func twice(x int) int;
extern var base int;
var local int = 5;
func main() int { return twice(base) + twice(local); }
`

const modB = `module b;
var base int = 10;
func twice(x int) int { return x * 2; }
func helper() int { return twice(1); }
`

func compileBoth(t *testing.T, withIL bool) []*Object {
	t.Helper()
	var objs []*Object
	for _, m := range []struct{ name, text string }{{"a", modA}, {"b", modB}} {
		o, err := CompileSource(m.name+".minc", m.text, 2, withIL, false)
		if err != nil {
			t.Fatalf("compile %s: %v", m.name, err)
		}
		objs = append(objs, o)
	}
	return objs
}

func TestObjectEncodeDecodeRoundTrip(t *testing.T) {
	for _, withIL := range []bool{false, true} {
		objs := compileBoth(t, withIL)
		for _, o := range objs {
			var buf bytes.Buffer
			if err := o.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			back, err := DecodeObject(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.Module != o.Module || back.Lines != o.Lines {
				t.Errorf("header lost: %+v", back)
			}
			if len(back.Syms) != len(o.Syms) || len(back.Funcs) != len(o.Funcs) || len(back.IL) != len(o.IL) {
				t.Fatalf("section sizes differ")
			}
			for i := range o.Syms {
				a, b := o.Syms[i], back.Syms[i]
				if a.Name != b.Name || a.Kind != b.Kind || a.Defined != b.Defined ||
					a.Type != b.Type || a.Elems != b.Elems || a.Init != b.Init ||
					a.Ret != b.Ret || len(a.Params) != len(b.Params) {
					t.Errorf("sym %d differs: %+v vs %+v", i, a, b)
				}
			}
			for i := range o.Funcs {
				a, b := o.Funcs[i], back.Funcs[i]
				if a.LocalPID != b.LocalPID || a.Code.Name != b.Code.Name || len(a.Code.Code) != len(b.Code.Code) {
					t.Fatalf("func %d header differs", i)
				}
				for j := range a.Code.Code {
					if a.Code.Code[j] != b.Code.Code[j] {
						t.Errorf("func %d instr %d: %v != %v", i, j, a.Code.Code[j], b.Code.Code[j])
					}
				}
			}
			for i := range o.IL {
				if !bytes.Equal(o.IL[i].Blob, back.IL[i].Blob) {
					t.Errorf("IL blob %d differs", i)
				}
			}
		}
	}
}

func TestMergeAndLink(t *testing.T) {
	objs := compileBoth(t, true)
	ln, err := Merge(objs)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !ln.AllIL {
		t.Error("AllIL false despite IL objects")
	}
	// Remapped IL must verify and agree with direct interpretation.
	it := il.NewInterp(ln.Prog, func(p il.PID) *il.Function { return ln.IL[p] })
	want, err := it.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("interp on merged IL: %v", err)
	}
	if want != 30 {
		t.Errorf("merged IL computes %d, want 30", want)
	}
	// The machine-code path must agree.
	img, err := link.Link(ln.Prog, ln.Code, link.Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := vpa.NewMachine(img, vpa.DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if got != want {
		t.Errorf("machine %d != interp %d", got, want)
	}
}

func TestMergeDetectsDuplicateDefinition(t *testing.T) {
	o1, err := CompileSource("a.minc", "module a; func f() int { return 1; }", 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CompileSource("b.minc", "module b; func f() int { return 2; }", 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*Object{o1, o2}); err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Errorf("duplicate not detected: %v", err)
	}
}

func TestMergeDetectsInterfaceMismatch(t *testing.T) {
	o1, err := CompileSource("a.minc", `module a; extern func g(x int) int; func main() int { return g(1); }`, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CompileSource("b.minc", `module b; func g(x int, y int) int { return x + y; }`, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*Object{o1, o2}); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("interface mismatch not detected: %v", err)
	}
}

func TestMergeDetectsUndefined(t *testing.T) {
	o1, err := CompileSource("a.minc", `module a; extern func ghost() int; func main() int { return ghost(); }`, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*Object{o1}); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined symbol not detected: %v", err)
	}
}

func TestMergeWithoutIL(t *testing.T) {
	objs := compileBoth(t, false)
	ln, err := Merge(objs)
	if err != nil {
		t.Fatal(err)
	}
	if ln.AllIL {
		t.Error("AllIL true without IL sections")
	}
	if len(ln.FuncPIDsWithIL()) != 0 {
		t.Error("IL functions reported without IL")
	}
}

func TestImageRoundTrip(t *testing.T) {
	objs := compileBoth(t, false)
	ln, err := Merge(objs)
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(ln.Prog, ln.Code, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Disasm() != img.Disasm() {
		t.Error("image round trip differs")
	}
	m := vpa.NewMachine(back, vpa.DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil || got != 30 {
		t.Errorf("decoded image runs to %d, %v; want 30", got, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeObject(strings.NewReader("not an object")); err == nil {
		t.Error("garbage object accepted")
	}
	if _, err := DecodeImage(strings.NewReader("not an image")); err == nil {
		t.Error("garbage image accepted")
	}
	// Truncations must error, not panic.
	objs := compileBoth(t, true)
	var buf bytes.Buffer
	objs[0].Encode(&buf)
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := DecodeObject(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated object (at %d) accepted", cut)
		}
	}
}

const modC = `module c;
var factor int = 4;
func tiny(x int) int { return x * factor; }
func driver(n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + tiny(i); }
	return s;
}
func main() int { return driver(10); }
`

// TestCompileModuleIntraHLO checks +O3 separate compilation: the
// within-module call gets inlined, every routine survives (any of
// them could be called from other modules), and behavior is intact.
func TestCompileModuleIntraHLO(t *testing.T) {
	plain, err := CompileSource("c.minc", modC, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := CompileSource("c.minc", modC, 2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	// All functions still present (conservatively exported).
	if len(opt.Funcs) != len(plain.Funcs) {
		t.Errorf("+O3 dropped functions: %d vs %d", len(opt.Funcs), len(plain.Funcs))
	}
	run := func(objs []*Object) int64 {
		ln, err := Merge(objs)
		if err != nil {
			t.Fatal(err)
		}
		img, err := link.Link(ln.Prog, ln.Code, link.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := vpa.NewMachine(img, vpa.DefaultConfig())
		v, err := m.Run(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	vPlain := run([]*Object{plain})
	vOpt := run([]*Object{opt})
	if vPlain != vOpt {
		t.Fatalf("+O3 changed result: %d vs %d", vOpt, vPlain)
	}
	// driver's call to tiny must have been inlined away.
	var driverCode []vpa.Instr
	for _, f := range opt.Funcs {
		if f.Code.Name == "driver" {
			driverCode = f.Code.Code
		}
	}
	for _, in := range driverCode {
		if in.Op == vpa.CALL {
			t.Error("+O3 did not inline the within-module call")
		}
	}
}
