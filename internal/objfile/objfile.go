// Package objfile defines the on-disk artifacts of the toolchain:
// relocatable object files and executable images.
//
// An object file carries the module's machine code (always) and,
// when compiled for CMO, the module's IL in the NAIM relocatable
// encoding. This is the paper's deployment story (section 6.1): all
// persistent information lives in ordinary object files so that
// make-based builds keep working — "when the linker encounters these
// IL objects, it sends them to the optimizer and code-generator for
// further processing". Symbol references inside an object use
// module-local PIDs; the linker interns names into the program-wide
// symbol table and remaps.
package objfile

import (
	"errors"
	"fmt"
	"io"

	"cmo/internal/il"
	"cmo/internal/vpa"
)

// Object is one relocatable object file in memory.
type Object struct {
	Module string
	Lines  int
	// Syms is the module-local symbol table; indexes are the local
	// PIDs used by Code and IL.
	Syms []SymEntry
	// Funcs is the compiled machine code for each defined function.
	Funcs []FuncEntry
	// IL holds the NAIM-encoded IL of each defined function when the
	// object was compiled for cross-module optimization.
	IL []ILEntry
}

// SymEntry describes one module-local symbol.
type SymEntry struct {
	Name    string
	Kind    il.SymKind
	Defined bool
	// Globals.
	Type  il.Type
	Elems int64
	Init  int64
	// Functions.
	Params []il.Type
	Ret    il.Type
}

// FuncEntry is machine code with module-local symbol references.
type FuncEntry struct {
	LocalPID uint32
	Code     *vpa.Func
}

// ILEntry is one function's relocatable IL blob (module-local PIDs).
type ILEntry struct {
	LocalPID uint32
	Blob     []byte
}

// HasIL reports whether the object can participate in CMO.
func (o *Object) HasIL() bool { return len(o.IL) > 0 }

var (
	objMagic   = []byte("VPAO\x01")
	imgMagic   = []byte("VPAX\x01")
	errBadData = errors.New("objfile: malformed file")
)

// ---------------------------------------------------------------------------
// Binary writer/reader helpers.

type writer struct {
	w   io.Writer
	err error
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) uvarint(v uint64) {
	var buf [10]byte
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	w.bytes(buf[:n+1])
}

func (w *writer) varint(v int64) { w.uvarint(uint64(v<<1) ^ uint64(v>>63)) }

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.bytes([]byte(s))
}

func (w *writer) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.bytes(b)
}

type rdr struct {
	r   io.Reader
	err error
	one [1]byte
}

func (r *rdr) fail() {
	if r.err == nil {
		r.err = errBadData
	}
}

func (r *rdr) byte() byte {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, r.one[:]); err != nil {
		r.err = err
		return 0
	}
	return r.one[0]
}

func (r *rdr) uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		c := r.byte()
		if r.err != nil {
			return 0
		}
		v |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			r.fail()
			return 0
		}
	}
}

func (r *rdr) varint() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// capLen guards length prefixes against hostile/corrupt input.
func (r *rdr) capLen(n uint64, limit int) int {
	if r.err != nil {
		return 0
	}
	if n > uint64(limit) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *rdr) str() string {
	n := r.capLen(r.uvarint(), 1<<20)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *rdr) blob() []byte {
	n := r.capLen(r.uvarint(), 1<<28)
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}

// ---------------------------------------------------------------------------
// Object encoding.

// Encode writes the object to w.
func (o *Object) Encode(out io.Writer) error {
	w := &writer{w: out}
	w.bytes(objMagic)
	w.str(o.Module)
	w.uvarint(uint64(o.Lines))

	w.uvarint(uint64(len(o.Syms)))
	for _, s := range o.Syms {
		w.str(s.Name)
		w.bytes([]byte{byte(s.Kind), b2b(s.Defined), byte(s.Type), byte(s.Ret)})
		w.varint(s.Elems)
		w.varint(s.Init)
		w.uvarint(uint64(len(s.Params)))
		for _, p := range s.Params {
			w.bytes([]byte{byte(p)})
		}
	}

	w.uvarint(uint64(len(o.Funcs)))
	for _, f := range o.Funcs {
		w.uvarint(uint64(f.LocalPID))
		w.str(f.Code.Name)
		w.uvarint(uint64(f.Code.NSlots))
		w.uvarint(uint64(len(f.Code.Code)))
		for _, in := range f.Code.Code {
			encodeInstr(w, in)
		}
	}

	w.uvarint(uint64(len(o.IL)))
	for _, e := range o.IL {
		w.uvarint(uint64(e.LocalPID))
		w.blob(e.Blob)
	}
	return w.err
}

// DecodeObject reads an object from r.
func DecodeObject(in io.Reader) (*Object, error) {
	r := &rdr{r: in}
	magic := make([]byte, len(objMagic))
	if _, err := io.ReadFull(in, magic); err != nil {
		return nil, fmt.Errorf("objfile: reading magic: %w", err)
	}
	if string(magic) != string(objMagic) {
		return nil, fmt.Errorf("objfile: not a VPA object file")
	}
	o := &Object{}
	o.Module = r.str()
	o.Lines = int(r.uvarint())

	nsyms := r.capLen(r.uvarint(), 1<<22)
	for i := 0; i < nsyms && r.err == nil; i++ {
		var s SymEntry
		s.Name = r.str()
		s.Kind = il.SymKind(r.byte())
		s.Defined = r.byte() != 0
		s.Type = il.Type(r.byte())
		s.Ret = il.Type(r.byte())
		s.Elems = r.varint()
		s.Init = r.varint()
		np := r.capLen(r.uvarint(), 64)
		for j := 0; j < np && r.err == nil; j++ {
			s.Params = append(s.Params, il.Type(r.byte()))
		}
		o.Syms = append(o.Syms, s)
	}

	nfuncs := r.capLen(r.uvarint(), 1<<22)
	for i := 0; i < nfuncs && r.err == nil; i++ {
		var f FuncEntry
		f.LocalPID = uint32(r.uvarint())
		name := r.str()
		nslots := int(r.uvarint())
		ninstr := r.capLen(r.uvarint(), 1<<26)
		code := make([]vpa.Instr, 0, ninstr)
		for j := 0; j < ninstr && r.err == nil; j++ {
			code = append(code, decodeInstr(r))
		}
		f.Code = &vpa.Func{Name: name, NSlots: nslots, Code: code}
		o.Funcs = append(o.Funcs, f)
	}

	nil_ := r.capLen(r.uvarint(), 1<<22)
	for i := 0; i < nil_ && r.err == nil; i++ {
		var e ILEntry
		e.LocalPID = uint32(r.uvarint())
		e.Blob = r.blob()
		o.IL = append(o.IL, e)
	}
	if r.err != nil {
		return nil, fmt.Errorf("objfile: decoding %s: %w", o.Module, r.err)
	}
	return o, nil
}

func encodeInstr(w *writer, in vpa.Instr) {
	w.bytes([]byte{byte(in.Op), in.Rd, in.Ra, in.Rb, b2b(in.ImmB)})
	w.varint(in.Imm)
	w.varint(int64(in.Sym))
	w.varint(int64(in.Target))
}

func decodeInstr(r *rdr) vpa.Instr {
	var in vpa.Instr
	in.Op = vpa.OpCode(r.byte())
	in.Rd = r.byte()
	in.Ra = r.byte()
	in.Rb = r.byte()
	in.ImmB = r.byte() != 0
	in.Imm = r.varint()
	in.Sym = int32(r.varint())
	in.Target = int32(r.varint())
	return in
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Image encoding (executables).

// EncodeImage writes a finalized executable image.
func EncodeImage(out io.Writer, img *vpa.Image) error {
	w := &writer{w: out}
	w.bytes(imgMagic)
	w.uvarint(uint64(img.Entry))
	w.uvarint(uint64(img.NumProbes))
	w.uvarint(uint64(len(img.Globals)))
	for _, g := range img.Globals {
		w.str(g.Name)
		w.varint(g.Words)
		w.varint(g.Init)
	}
	w.uvarint(uint64(len(img.Funcs)))
	for _, f := range img.Funcs {
		w.str(f.Name)
		w.uvarint(uint64(f.NSlots))
		w.uvarint(uint64(len(f.Code)))
		for _, in := range f.Code {
			encodeInstr(w, in)
		}
	}
	return w.err
}

// DecodeImage reads an executable image and finalizes it.
func DecodeImage(in io.Reader) (*vpa.Image, error) {
	r := &rdr{r: in}
	magic := make([]byte, len(imgMagic))
	if _, err := io.ReadFull(in, magic); err != nil {
		return nil, fmt.Errorf("objfile: reading magic: %w", err)
	}
	if string(magic) != string(imgMagic) {
		return nil, fmt.Errorf("objfile: not a VPA executable image")
	}
	img := &vpa.Image{}
	img.Entry = int32(r.uvarint())
	img.NumProbes = int(r.uvarint())
	ng := r.capLen(r.uvarint(), 1<<22)
	for i := 0; i < ng && r.err == nil; i++ {
		var g vpa.Global
		g.Name = r.str()
		g.Words = r.varint()
		g.Init = r.varint()
		img.Globals = append(img.Globals, g)
	}
	nf := r.capLen(r.uvarint(), 1<<22)
	for i := 0; i < nf && r.err == nil; i++ {
		name := r.str()
		nslots := int(r.uvarint())
		ninstr := r.capLen(r.uvarint(), 1<<26)
		code := make([]vpa.Instr, 0, ninstr)
		for j := 0; j < ninstr && r.err == nil; j++ {
			code = append(code, decodeInstr(r))
		}
		img.Funcs = append(img.Funcs, &vpa.Func{Name: name, NSlots: nslots, Code: code})
	}
	if r.err != nil {
		return nil, fmt.Errorf("objfile: decoding image: %w", r.err)
	}
	img.Finalize()
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
