package hlo

import (
	"sort"

	"cmo/internal/il"
	"cmo/internal/profile"
	"cmo/internal/xform"
)

// inlineAll processes functions bottom-up (callees before callers) so
// that bodies spliced into a caller have already received their own
// inlining, and schedules each caller's inline candidates grouped by
// callee so that repeated pulls of the same callee body hit the NAIM
// expanded-pool cache (paper section 4.3: "HLO's inliner tries to
// carefully schedule inlines so that cross-module inlines from the
// same pair of modules are processed one after another").
func (p *pass) inlineAll() {
	inc := p.incremental()
	var h0 map[il.PID]string
	if inc != nil {
		h0 = p.prehashScope(inc)
	}
	for _, pid := range p.bottomUp() {
		if !p.selected[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		if inc != nil && p.replayInline(inc, pid, h0) {
			continue
		}
		opsBefore := len(p.res.InlineOps)
		changed := p.inlineFunction(pid)
		if inc != nil {
			p.storeInlineRecord(inc, pid, h0, changed, p.res.InlineOps[opsBefore:])
		}
	}
}

// candidate is one call site eligible for inlining.
type candidate struct {
	block int32
	instr int
	site  profile.SiteKey
	pid   il.PID // callee
	freq  int64
}

// inlineFunction runs the live inline stage on one caller; the return
// reports whether the body was touched (some candidate was accepted,
// so splices and the local cleanup ran).
func (p *pass) inlineFunction(caller il.PID) bool {
	f := p.src.Function(caller)
	if f == nil {
		return false
	}
	origSize := f.NumInstrs()
	cap := origSize * p.opts.Budget.GrowthFactor
	if cap < p.opts.Budget.MinCap {
		cap = p.opts.Budget.MinCap
	}

	// Collect candidates with their profiled site counts. Block ids
	// here are the fresh post-lowering ids the profile was keyed on.
	var cands []candidate
	for bi, b := range f.Blocks {
		seq := int32(0)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != il.Call {
				continue
			}
			key := profile.SiteKey{
				Fn:     f.Name,
				Block:  int32(bi),
				Seq:    seq,
				Callee: p.prog.Sym(in.Sym).Name,
			}
			seq++
			cands = append(cands, candidate{
				block: int32(bi),
				instr: ii,
				site:  key,
				pid:   in.Sym,
				freq:  p.siteFreqs[key],
			})
		}
	}

	// Decide, then order the accepted inlines: by callee module, then
	// callee PID, then position — the cache-friendly schedule. Within
	// one block, later sites must be spliced before earlier ones so
	// that remaining instruction indexes stay valid; the splice
	// routine re-locates sites by (block, index) recorded *before*
	// any mutation, so we process per block in descending index order
	// within the callee grouping.
	var accepted []candidate
	curSize := origSize
	for _, c := range cands {
		calleeSym := p.prog.Sym(c.pid)
		if calleeSym.Module < 0 {
			continue
		}
		calleeSize := p.size[c.pid]
		if !p.shouldInline(caller, c.pid, calleeSize, c.freq) {
			continue
		}
		if curSize+calleeSize > cap {
			continue
		}
		curSize += calleeSize
		accepted = append(accepted, c)
	}
	if len(accepted) == 0 {
		p.src.DoneWith(caller)
		return false
	}
	if p.opts.NoScheduleLocality {
		// Ablation mode: deterministically interleave callees so that
		// consecutive inlines touch different pools (the worst case
		// for the expanded-pool cache).
		sort.SliceStable(accepted, func(i, j int) bool {
			bi := (accepted[i].block*31 + int32(accepted[i].instr)) % 7
			bj := (accepted[j].block*31 + int32(accepted[j].instr)) % 7
			if bi != bj {
				return bi < bj
			}
			return accepted[i].pid > accepted[j].pid
		})
	} else {
		sort.SliceStable(accepted, func(i, j int) bool {
			mi := p.prog.Sym(accepted[i].pid).Module
			mj := p.prog.Sym(accepted[j].pid).Module
			if mi != mj {
				return mi < mj
			}
			if accepted[i].pid != accepted[j].pid {
				return accepted[i].pid < accepted[j].pid
			}
			if accepted[i].block != accepted[j].block {
				return accepted[i].block < accepted[j].block
			}
			return accepted[i].instr > accepted[j].instr
		})
	}

	// Splicing shifts instructions: an earlier splice at (b, i) moves
	// instructions after i into a new tail block. Track per (block)
	// how sites relocate: we only ever splice within the *original*
	// block at positions below previously spliced ones, except that
	// the callee-module grouping breaks descending order across
	// groups. Re-locate each site by scanning for the recorded call
	// instruction identity instead.
	for _, c := range accepted {
		if p.opts.MaxInlines > 0 && p.res.Stats.Inlines >= p.opts.MaxInlines {
			break
		}
		callee := p.src.Function(c.pid)
		if callee == nil {
			continue
		}
		bi, ii, ok := locateSite(f, c)
		if !ok {
			continue
		}
		callerMod := p.prog.Sym(caller).Module
		calleeMod := p.prog.Sym(c.pid).Module
		calleeInstrs := callee.NumInstrs()
		splice(f, bi, ii, callee, c.freq)
		p.res.Stats.Inlines++
		p.res.Stats.InlinedInstrs += calleeInstrs
		p.res.InlineOps = append(p.res.InlineOps, InlineOp{Caller: caller, Callee: c.pid, SiteFreq: c.freq, Instrs: calleeInstrs})
		if callerMod != calleeMod {
			p.res.Stats.CrossModule++
		}
	}
	// The callees of this function are no longer needed here; their
	// pools can be reclaimed before we clean up the caller.
	for _, c := range accepted {
		p.src.DoneWith(c.pid)
	}
	xform.Optimize(f)
	p.size[caller] = f.NumInstrs()
	p.src.DoneWith(caller)
	return true
}

// shouldInline applies the budget rules.
func (p *pass) shouldInline(caller, callee il.PID, calleeSize int, freq int64) bool {
	if !p.scope[callee] {
		return false // callee's IL was not routed into the optimizer
	}
	if caller == callee || p.sccOf[caller] == p.sccOf[callee] {
		return false // never inline within a recursion cycle
	}
	if calleeSize == 0 {
		return false
	}
	b := p.opts.Budget
	if calleeSize <= b.TinySize {
		return true
	}
	if p.opts.DB != nil && freq >= b.HotMin && calleeSize <= b.HotMaxSize {
		return true
	}
	return calleeSize <= b.ColdMaxSize
}

// locateSite finds the current position of a candidate's call
// instruction. Splices only move instructions from a block's suffix
// into fresh tail blocks, so the site is either still in its original
// block or in one of the tail blocks appended since; we search the
// caller for the n'th call to the callee matching the original
// ordering by scanning blocks in id order starting at the original
// block. Sites are unique because each splice deletes the call it
// inlines.
func locateSite(f *il.Function, c candidate) (int32, int, bool) {
	// Fast path: unchanged position.
	if int(c.block) < len(f.Blocks) {
		b := f.Blocks[c.block]
		if c.instr < len(b.Instrs) {
			in := &b.Instrs[c.instr]
			if in.Op == il.Call && in.Sym == c.pid {
				return c.block, c.instr, true
			}
		}
	}
	// Slow path: the call moved into a tail block. Scan all blocks
	// for a call to this callee; counts per candidate stay unique
	// because earlier splices removed their own call instructions.
	// We prefer the earliest remaining occurrence, which preserves
	// the original relative order.
	for bi := range f.Blocks {
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == il.Call && in.Sym == c.pid {
				return int32(bi), ii, true
			}
		}
	}
	return 0, 0, false
}

// splice inlines callee at instruction (bi, ii) of f, which must be a
// Call to it. siteFreq scales the callee's profile annotations into
// the caller.
func splice(f *il.Function, bi int32, ii int, callee *il.Function, siteFreq int64) {
	b := f.Blocks[bi]
	call := b.Instrs[ii]

	regOff := f.NRegs - 1 // callee reg r maps to r + regOff
	f.NRegs += callee.NRegs - 1
	blockOff := int32(len(f.Blocks))
	tailIdx := blockOff + int32(len(callee.Blocks))

	mapReg := func(r il.Reg) il.Reg {
		if r == 0 {
			return 0
		}
		return r + regOff
	}
	mapVal := func(v il.Value) il.Value {
		if v.IsConst || v.Reg == 0 {
			return v
		}
		return il.RegVal(v.Reg + regOff)
	}

	// Tail block: everything after the call, inheriting the block's
	// terminator targets and frequency.
	tail := &il.Block{
		Instrs: append([]il.Instr(nil), b.Instrs[ii+1:]...),
		T:      b.T,
		F:      b.F,
		Freq:   b.Freq,
	}

	// Head: retain the prefix, bind arguments, jump into the body.
	head := b.Instrs[:ii:ii]
	for pi := 0; pi < callee.NParams; pi++ {
		dst := mapReg(il.Reg(pi + 1))
		a := call.Args[pi]
		if a.IsConst {
			head = append(head, il.Instr{Op: il.Const, Dst: dst, A: a})
		} else {
			head = append(head, il.Instr{Op: il.Copy, Dst: dst, A: a})
		}
	}
	head = append(head, il.Instr{Op: il.Jmp})
	b.Instrs = head
	b.T, b.F = blockOff, -1

	// Profile scaling for the inlined body.
	scale := func(freq int64) int64 {
		if siteFreq <= 0 || callee.Calls <= 0 {
			return 0
		}
		return freq * siteFreq / callee.Calls
	}

	// Copy the callee body with registers and block ids remapped and
	// returns rewritten to (copy result; jump to tail).
	for _, cb := range callee.Blocks {
		nb := &il.Block{
			Instrs: make([]il.Instr, 0, len(cb.Instrs)+1),
			T:      -1,
			F:      -1,
			Freq:   scale(cb.Freq),
		}
		for _, cin := range cb.Instrs {
			in := cin
			in.Dst = mapReg(in.Dst)
			in.A = mapVal(in.A)
			in.B = mapVal(in.B)
			if in.Args != nil {
				args := make([]il.Value, len(in.Args))
				for i, a := range in.Args {
					args[i] = mapVal(a)
				}
				in.Args = args
			}
			switch in.Op {
			case il.Ret:
				if call.Dst != 0 {
					if in.A.IsConst {
						nb.Instrs = append(nb.Instrs, il.Instr{Op: il.Const, Dst: call.Dst, A: in.A})
					} else if !in.A.IsNone() {
						nb.Instrs = append(nb.Instrs, il.Instr{Op: il.Copy, Dst: call.Dst, A: in.A})
					}
				}
				nb.Instrs = append(nb.Instrs, il.Instr{Op: il.Jmp})
				nb.T = tailIdx
			case il.Jmp:
				nb.Instrs = append(nb.Instrs, in)
				nb.T = cb.T + blockOff
			case il.Br:
				nb.Instrs = append(nb.Instrs, in)
				nb.T = cb.T + blockOff
				nb.F = cb.F + blockOff
			default:
				nb.Instrs = append(nb.Instrs, in)
			}
		}
		f.Blocks = append(f.Blocks, nb)
	}
	f.Blocks = append(f.Blocks, tail)
	f.SrcLines += callee.SrcLines
}
