package hlo

import (
	"strings"
	"testing"

	"cmo/internal/il"
)

// cloneSrc: work() is too large to inline (over ColdMaxSize) and is
// called with two distinct constant mode groups plus one varying
// site, so cloning — not inlining, not IPCP — is the transformation
// that can specialize it.
const cloneSrc = `module m;
var sink int;
func work(mode int, x int) int {
	var a int = x * 3 + mode; var b int = a - x * 2; var c int = b * a + mode;
	var d int = c % 991; var e int = d + a - b + c * 2;
	var f int = e * 3 - d + a; var g int = f % 313 + b; var h int = g * 2 - e;
	var i int = h + f - g + d; var j int = i * 2 - h + e - d + c - b + a;
	var k int = j % 771 + i - h + g - f + e - d + c;
	var l int = k * 2 + j - i + h - g + f - e + d;
	var n int = l % 577 + k - j + i - h + g - f;
	var o int = n * 3 - l + k - j + i - h;
	var p int = o % 421 + n - l + k - j;
	if (mode == 1) { p = p + a * 7; } else { p = p - b * 3; }
	if (mode == 2) { p = p * 2 + c; }
	return p + o + n + l + k + j + i + h + g + f + e + d + c + b + a;
}
func caller1(x int) int { return work(1, x) + work(1, x + 5); }
func caller2(x int) int { return work(2, x) + work(2, x * 3); }
func caller3(x int, m int) int { return work(m, x); }
func main() int {
	var s int = 0;
	for (var it int = 0; it < 40; it = it + 1) {
		s = s + caller1(it) % 100003 + caller2(it + 7) % 100003 + caller3(it, it % 3) % 100003;
		if (s > 1000000000) { s = s % 268435455; }
	}
	sink = s;
	return s % 1000003;
}`

func TestCloningSpecializesConstantGroups(t *testing.T) {
	prog, fns := build(t, cloneSrc)
	work, res := optimize(t, prog, fns, Options{})
	if res.Stats.Clones < 2 {
		t.Fatalf("Clones = %d, want >= 2 (mode=1 and mode=2 groups)", res.Stats.Clones)
	}
	// The clones exist as program symbols with verified bodies.
	cloneCount := 0
	for _, pid := range prog.FuncPIDs() {
		name := prog.Sym(pid).Name
		if !strings.Contains(name, "$clone") {
			continue
		}
		cloneCount++
		body := work[pid]
		if body == nil {
			t.Fatalf("clone %s has no body", name)
		}
		if err := il.Verify(prog, body); err != nil {
			t.Fatalf("clone %s does not verify: %v", name, err)
		}
		// Specialization: the baked-in constant must have made the
		// clone's mode-dependent branches foldable, so the clone is
		// smaller than the original.
		origBody := work[prog.Lookup("work").PID]
		if body.NumInstrs() >= origBody.NumInstrs() {
			t.Errorf("clone %s (%d instrs) not smaller than original (%d)",
				name, body.NumInstrs(), origBody.NumInstrs())
		}
	}
	if cloneCount != res.Stats.Clones {
		t.Errorf("symbol table has %d clones, stats say %d", cloneCount, res.Stats.Clones)
	}
	// The constant-group call sites must have been redirected; the
	// varying site (caller3) must still target the original.
	workPID := prog.Lookup("work").PID
	targets := map[string]map[string]bool{}
	for _, caller := range []string{"caller1", "caller2", "caller3"} {
		f := work[prog.Lookup(caller).PID]
		targets[caller] = map[string]bool{}
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				if in := &b.Instrs[ii]; in.Op == il.Call {
					targets[caller][prog.Sym(in.Sym).Name] = true
				}
			}
		}
		_ = workPID
	}
	if targets["caller1"]["work"] || targets["caller2"]["work"] {
		t.Errorf("constant-group sites still call the original: %v", targets)
	}
	if !targets["caller3"]["work"] {
		t.Errorf("varying site redirected away from the original: %v", targets)
	}
}

func TestCloningDisabledWithoutInstaller(t *testing.T) {
	prog, fns := build(t, cloneSrc)
	// A FuncSource without InstallFunc cannot receive new bodies, so
	// the cloning pass must decline gracefully.
	res, err := Optimize(prog, bareSource{m: fns}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Clones != 0 {
		t.Errorf("cloning happened without an Installer: %d", res.Stats.Clones)
	}
}

// bareSource hides MapSource's InstallFunc.
type bareSource struct{ m MapSource }

func (b bareSource) Function(pid il.PID) *il.Function { return b.m[pid] }
func (b bareSource) DoneWith(il.PID)                  {}

func TestCloneNamesDoNotCollide(t *testing.T) {
	prog, fns := build(t, cloneSrc)
	_, res := optimize(t, prog, fns, Options{})
	seen := map[string]bool{}
	for _, pid := range prog.FuncPIDs() {
		name := prog.Sym(pid).Name
		if seen[name] {
			t.Fatalf("duplicate symbol %s", name)
		}
		seen[name] = true
	}
	_ = res
}
