package hlo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cmo/internal/il"
	"cmo/internal/profile"
	"cmo/internal/xform"
)

// Procedure cloning (paper section 3 lists it among HLO's
// transformations, right after inlining): when different groups of
// call sites pass different — but within each group, identical —
// constant arguments, IPCP must give up. Cloning specializes the
// callee per constant signature and redirects each group to its
// clone; ordinary constant propagation then does the rest inside each
// specialization. Cloning runs after inlining, so it applies exactly
// where inlining declined (callees too big or sites too cold) but
// specialization still pays.

// Cloning budget.
const (
	cloneMaxSize     = 150 // callee size eligible for cloning
	clonesPerCallee  = 2   // specializations per original
	cloneMinSites    = 2   // static sites required to justify a clone
	cloneMinSiteFreq = 8   // or a group at least this hot
)

// Installer is the optional FuncSource extension that lets HLO add
// newly created bodies (clones) to the pool store. naim.Loader and
// MapSource both satisfy it.
type Installer interface {
	InstallFunc(f *il.Function)
}

// InstallFunc adds a body to a MapSource.
func (m MapSource) InstallFunc(f *il.Function) { m[f.PID] = f }

// constSig is a callee's constant-argument signature at one call
// site: comma-separated constants with "." for non-constant slots.
type constSig string

func sigOf(in *il.Instr) (constSig, int) {
	parts := make([]string, len(in.Args))
	consts := 0
	for i, a := range in.Args {
		if a.IsConst {
			consts++
			parts[i] = strconv.FormatInt(a.Const, 10)
		} else {
			parts[i] = "."
		}
	}
	return constSig(strings.Join(parts, ",")), consts
}

// parseSig decodes a signature back to per-param values (nil = not
// constant).
func parseSig(sig constSig) []*int64 {
	if sig == "" {
		return nil
	}
	parts := strings.Split(string(sig), ",")
	out := make([]*int64, len(parts))
	for i, p := range parts {
		if p == "." {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			continue
		}
		out[i] = &v
	}
	return out
}

// cloneSite locates one candidate call site.
type cloneSite struct {
	caller il.PID
	block  int32
	instr  int
	sig    constSig
	freq   int64
}

func cloneGroupWeight(g []cloneSite) int64 {
	var w int64
	for _, s := range g {
		w += s.freq
	}
	return w
}

// cloneAll performs the cloning pass over the selected functions.
func (p *pass) cloneAll() {
	installer, ok := p.src.(Installer)
	if !ok {
		return // the pool store cannot accept new bodies
	}

	byCallee := make(map[il.PID][]cloneSite)
	var calleeOrder []il.PID
	for _, caller := range p.bottomUp() {
		if !p.selected[caller] {
			continue
		}
		f := p.src.Function(caller)
		if f == nil {
			continue
		}
		for bi, b := range f.Blocks {
			seq := int32(0)
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != il.Call {
					continue
				}
				key := profile.SiteKey{
					Fn:     f.Name,
					Block:  int32(bi),
					Seq:    seq,
					Callee: p.prog.Sym(in.Sym).Name,
				}
				seq++
				callee := in.Sym
				if !p.scope[callee] || callee == caller || p.sccOf[callee] == p.sccOf[caller] {
					continue
				}
				sig, consts := sigOf(in)
				if consts == 0 {
					continue
				}
				if _, seen := byCallee[callee]; !seen {
					calleeOrder = append(calleeOrder, callee)
				}
				byCallee[callee] = append(byCallee[callee], cloneSite{
					caller: caller, block: int32(bi), instr: ii,
					sig: sig, freq: p.siteFreqs[key],
				})
			}
		}
		p.src.DoneWith(caller)
	}
	sort.Slice(calleeOrder, func(i, j int) bool { return calleeOrder[i] < calleeOrder[j] })

	for _, callee := range calleeOrder {
		sym := p.prog.Sym(callee)
		if sym.Module < 0 || p.size[callee] == 0 || p.size[callee] > cloneMaxSize {
			continue
		}
		groups := make(map[constSig][]cloneSite)
		var sigs []constSig
		for _, s := range byCallee[callee] {
			if _, seen := groups[s.sig]; !seen {
				sigs = append(sigs, s.sig)
			}
			groups[s.sig] = append(groups[s.sig], s)
		}
		if len(sigs) < 2 {
			continue // a single signature is IPCP's job
		}
		sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
		sort.SliceStable(sigs, func(i, j int) bool {
			wi, wj := cloneGroupWeight(groups[sigs[i]]), cloneGroupWeight(groups[sigs[j]])
			if wi != wj {
				return wi > wj
			}
			return len(groups[sigs[i]]) > len(groups[sigs[j]])
		})
		made := 0
		for _, sig := range sigs {
			if made >= clonesPerCallee {
				break
			}
			g := groups[sig]
			if len(g) < cloneMinSites && cloneGroupWeight(g) < cloneMinSiteFreq {
				continue
			}
			if p.makeClone(installer, callee, sig, g) {
				made++
			}
		}
	}
}

// makeClone specializes callee for one signature and redirects the
// group's call sites to the specialization. Reports success.
func (p *pass) makeClone(installer Installer, callee il.PID, sig constSig, group []cloneSite) bool {
	orig := p.src.Function(callee)
	if orig == nil {
		return false
	}
	consts := parseSig(sig)
	if len(consts) != orig.NParams {
		return false
	}
	name := fmt.Sprintf("%s$clone%d", orig.Name, p.res.Stats.Clones)
	pid, err := p.prog.Intern(name, il.SymFunc)
	if err != nil {
		return false
	}
	nsym := p.prog.Sym(pid)
	osym := p.prog.Sym(callee)
	nsym.Module = osym.Module
	nsym.Sig = il.Signature{Params: append([]il.Type(nil), osym.Sig.Params...), Ret: osym.Sig.Ret}
	// Note: the clone is intentionally NOT appended to the module's
	// Defs list — the module symbol table may already live in its
	// compacted NAIM form, and the program-wide symbol table is the
	// authoritative function registry at this stage.

	clone := orig.Clone()
	clone.Name = name
	clone.PID = pid
	// Bake the constant parameters into the entry; local cleanup
	// propagates them through the body.
	var pre []il.Instr
	for i, c := range consts {
		if c != nil {
			pre = append(pre, il.Instr{Op: il.Const, Dst: il.Reg(i + 1), A: il.ConstVal(*c)})
		}
	}
	clone.Calls = cloneGroupWeight(group)
	clone.Blocks[0].Instrs = append(pre, clone.Blocks[0].Instrs...)
	xform.Optimize(clone)

	installer.InstallFunc(clone)
	p.selected[pid] = true
	p.scope[pid] = true
	p.sccOf[pid] = p.sccOf[callee]
	p.size[pid] = clone.NumInstrs()
	if p.summaries != nil {
		// The clone is the original specialized to constant parameters,
		// so its effects are a subset of the original's — the original's
		// summary is a sound (if slightly wide) summary for it.
		if s := p.summaries[callee]; s != nil {
			p.summaries[pid] = s
		}
	}
	p.src.DoneWith(pid)

	redirected := 0
	for _, s := range group {
		f := p.src.Function(s.caller)
		if f == nil || int(s.block) >= len(f.Blocks) || s.instr >= len(f.Blocks[s.block].Instrs) {
			continue
		}
		in := &f.Blocks[s.block].Instrs[s.instr]
		if in.Op != il.Call || in.Sym != callee {
			continue
		}
		if got, _ := sigOf(in); got != sig {
			continue
		}
		in.Sym = pid
		redirected++
		p.src.DoneWith(s.caller)
	}
	p.src.DoneWith(callee)
	if redirected == 0 {
		return false
	}
	p.res.Stats.Clones++
	return true
}
