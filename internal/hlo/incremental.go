package hlo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"cmo/internal/il"
)

// Incremental replay: with a session repository behind the build, the
// two per-function HLO stages that dominate optimization time —
// inlining and the interprocedural/local pipeline — consult cached
// transform records before doing work. A record's key encodes the
// function's complete input set, so replay is sound by construction:
//
//   - The inline stage keys on the transitive callee closure — for
//     every function reachable through call edges from the caller, its
//     name, pre-inline content hash, and scope/selected/defined bits.
//     Bottom-up inlining makes a caller's outcome a pure function of
//     that closure (callee post-inline bodies are themselves pure
//     functions of their sub-closures), so an edit to one module
//     invalidates exactly the functions whose closure reaches into it:
//     the dependents. Everything else replays.
//
//   - The interproc stage keys on the post-clone body hash plus the
//     facts it consults: the constant-argument lattice for the
//     function's parameters, its entry/externally-called bits, and for
//     every global it loads the (stored ⊔ volatile, initial value)
//     summary. That fact list is the invalidation edge set: a store
//     added anywhere to a previously constant global changes the fact
//     string of every function that loads it — and only of those.
//
// Whole-program facts (scan, SCC, clone, dead-function elimination)
// always run live; they are cheap relative to the per-function
// transforms and globally coupled, so caching them would buy little
// and risk much. MaxInlines > 0 disables replay outright: the global
// operation cap couples every function's outcome to every other's.
//
// Records never influence *what* the pipeline produces — a warm run
// must be byte-identical to a cold one — so every decode error or
// mismatch simply falls back to the live path.

// Incremental connects HLO to the session's artifact repository. All
// closures are supplied by the driver (package cmo), keeping this
// package free of any dependency on the repository implementation.
type Incremental struct {
	// OptionsFP fingerprints every build input outside function bodies
	// that can steer HLO: optimization level, budget, the full profile
	// database content, entry name, volatile set, toolchain version.
	OptionsFP string
	// Hash returns a stable, PID-independent content hash of a body.
	Hash func(f *il.Function) string
	// Load fetches a record; ok=false on miss.
	Load func(kind string, parts ...string) ([]byte, bool)
	// Store persists a record (best-effort; the cache is advisory).
	Store func(kind string, blob []byte, parts ...string)
	// Encode/Decode convert bodies to and from the portable form.
	Encode func(f *il.Function) []byte
	Decode func(pid il.PID, blob []byte) (*il.Function, error)
}

const (
	inlineRecMagic    = 0xC1
	interprocRecMagic = 0xC2
)

var errRecord = errors.New("hlo: corrupt transform record")

// incremental returns the replay hook, or nil when replay is off for
// this run.
func (p *pass) incremental() *Incremental {
	inc := p.opts.Incremental
	if inc == nil {
		return nil
	}
	if p.opts.MaxInlines > 0 {
		// The global inline cap makes one function's outcome depend on
		// how many operations every earlier function performed; no
		// per-function key can capture that.
		return nil
	}
	return inc
}

func b2c(b bool) byte {
	if b {
		return '1'
	}
	return '0'
}

// prehashScope computes the pre-inline content hash of every in-scope
// body, the closure fingerprints' raw material.
func (p *pass) prehashScope(inc *Incremental) map[il.PID]string {
	h0 := make(map[il.PID]string)
	for _, pid := range p.prog.FuncPIDs() {
		if !p.scope[pid] {
			continue
		}
		if f := p.src.Function(pid); f != nil {
			h0[pid] = inc.Hash(f)
			p.src.DoneWith(pid)
		}
	}
	return h0
}

// inlineClosureFP renders the transitive callee closure of root as a
// stable string: member functions sorted by name, each contributing
// its name, pre-inline hash, and the bits the inliner consults.
func (p *pass) inlineClosureFP(root il.PID, h0 map[il.PID]string) string {
	seen := map[il.PID]bool{root: true}
	work := []il.PID{root}
	var members []il.PID
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		members = append(members, v)
		for _, w := range p.callees[v] {
			if !seen[w] {
				seen[w] = true
				work = append(work, w)
			}
		}
	}
	sort.Slice(members, func(i, j int) bool {
		return p.prog.Sym(members[i]).Name < p.prog.Sym(members[j]).Name
	})
	var sb strings.Builder
	sb.WriteString(p.prog.Sym(root).Name)
	sb.WriteByte('\n')
	for _, m := range members {
		sym := p.prog.Sym(m)
		sb.WriteString(sym.Name)
		sb.WriteByte('\x00')
		sb.WriteString(h0[m])
		sb.WriteByte('\x00')
		sb.WriteByte(b2c(p.scope[m]))
		sb.WriteByte(b2c(p.selected[m]))
		sb.WriteByte(b2c(sym.Module >= 0))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// inlineRecOp is one replayed inline operation.
type inlineRecOp struct {
	callee string
	freq   int64
	instrs int64
}

func encodeInlineRecord(changed bool, body []byte, ops []inlineRecOp) []byte {
	b := []byte{inlineRecMagic, b2c(changed)}
	if changed {
		b = binary.AppendUvarint(b, uint64(len(body)))
		b = append(b, body...)
	}
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		b = binary.AppendUvarint(b, uint64(len(op.callee)))
		b = append(b, op.callee...)
		b = binary.AppendVarint(b, op.freq)
		b = binary.AppendVarint(b, op.instrs)
	}
	return b
}

type recReader struct {
	b   []byte
	off int
	err error
}

func (r *recReader) fail() {
	if r.err == nil {
		r.err = errRecord
	}
}

func (r *recReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *recReader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *recReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *recReader) take(n uint64) []byte {
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func decodeInlineRecord(blob []byte) (changed bool, body []byte, ops []inlineRecOp, err error) {
	r := &recReader{b: blob}
	if r.byte() != inlineRecMagic {
		return false, nil, nil, errRecord
	}
	changed = r.byte() == '1'
	if changed {
		body = r.take(r.u())
	}
	n := r.u()
	if r.err != nil || n > uint64(len(blob)) {
		return false, nil, nil, errRecord
	}
	for j := uint64(0); j < n; j++ {
		op := inlineRecOp{callee: string(r.take(r.u()))}
		op.freq = r.i()
		op.instrs = r.i()
		ops = append(ops, op)
	}
	if r.err != nil {
		return false, nil, nil, r.err
	}
	if r.off != len(blob) {
		return false, nil, nil, errRecord
	}
	return changed, body, ops, nil
}

// replayInline tries to satisfy one caller's inline stage from a
// cached record. It returns true when the record was applied: the
// caller's post-inline body is installed and every statistic the live
// path would have produced is reproduced.
func (p *pass) replayInline(inc *Incremental, caller il.PID, h0 map[il.PID]string) bool {
	fp := p.inlineClosureFP(caller, h0)
	blob, ok := inc.Load("hlo/inline", inc.OptionsFP, fp)
	if !ok {
		return false
	}
	changed, body, ops, err := decodeInlineRecord(blob)
	if err != nil {
		return false
	}
	// Resolve every replayed operation before mutating anything.
	type resolved struct {
		callee il.PID
		freq   int64
		instrs int64
	}
	rops := make([]resolved, 0, len(ops))
	for _, op := range ops {
		sym := p.prog.Lookup(op.callee)
		if sym == nil {
			return false
		}
		rops = append(rops, resolved{callee: sym.PID, freq: op.freq, instrs: op.instrs})
	}
	f := p.src.Function(caller)
	if f == nil {
		return false
	}
	if changed {
		nf, err := inc.Decode(caller, body)
		if err != nil {
			p.src.DoneWith(caller)
			return false
		}
		*f = *nf
	}
	callerMod := p.prog.Sym(caller).Module
	for _, op := range rops {
		p.res.Stats.Inlines++
		p.res.Stats.InlinedInstrs += int(op.instrs)
		p.res.InlineOps = append(p.res.InlineOps, InlineOp{
			Caller: caller, Callee: op.callee, SiteFreq: op.freq, Instrs: int(op.instrs),
		})
		if p.prog.Sym(op.callee).Module != callerMod {
			p.res.Stats.CrossModule++
		}
	}
	p.size[caller] = f.NumInstrs()
	p.src.DoneWith(caller)
	p.res.Stats.ReplayHits++
	return true
}

// storeInlineRecord persists one caller's inline-stage outcome.
func (p *pass) storeInlineRecord(inc *Incremental, caller il.PID, h0 map[il.PID]string, changed bool, ops []InlineOp) {
	f := p.src.Function(caller)
	if f == nil {
		return
	}
	var body []byte
	if changed {
		body = inc.Encode(f)
	}
	p.src.DoneWith(caller)
	recOps := make([]inlineRecOp, len(ops))
	for i, op := range ops {
		recOps[i] = inlineRecOp{
			callee: p.prog.Sym(op.Callee).Name,
			freq:   op.SiteFreq,
			instrs: int64(op.Instrs),
		}
	}
	fp := p.inlineClosureFP(caller, h0)
	inc.Store("hlo/inline", encodeInlineRecord(changed, body, recOps), inc.OptionsFP, fp)
	p.res.Stats.ReplayMisses++
}

// interprocFactsFP renders the facts the interproc stage consults for
// one function: the parameter lattice, the entry and externally-called
// bits, and for each loaded global its promotion-relevant summary.
func (p *pass) interprocFactsFP(pid il.PID, f *il.Function, entryPID il.PID) string {
	var sb strings.Builder
	sb.WriteByte(b2c(pid == entryPID))
	sb.WriteByte(b2c(p.opts.ExternallyCalled[pid]))
	sb.WriteByte('\n')
	if st := p.args[pid]; st != nil {
		for i := 0; i < f.NParams && i < len(st.state); i++ {
			fmt.Fprintf(&sb, "p%d:%d:%d\n", i, st.state[i], st.val[i])
		}
	}
	// Globals the body loads, in first-appearance order (body order is
	// part of the key's body hash, so this order is stable).
	seen := make(map[il.PID]bool)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != il.LoadG || seen[in.Sym] {
				continue
			}
			seen[in.Sym] = true
			sym := p.prog.Sym(in.Sym)
			fmt.Fprintf(&sb, "g:%s:%c:%d\n", sym.Name,
				b2c(p.stored[in.Sym] || p.opts.Volatile[in.Sym]), sym.Init)
		}
	}
	return sb.String()
}

// ipOutcome is what one function's interproc stage did.
type ipOutcome struct {
	ipcpParams   []int
	ipcpVals     []int64
	constGlobals int
	promoted     []il.PID
	unrolled     bool
}

func (p *pass) encodeInterprocRecord(body []byte, out *ipOutcome) []byte {
	b := []byte{interprocRecMagic}
	b = binary.AppendUvarint(b, uint64(len(body)))
	b = append(b, body...)
	b = binary.AppendUvarint(b, uint64(len(out.ipcpParams)))
	for i := range out.ipcpParams {
		b = binary.AppendUvarint(b, uint64(out.ipcpParams[i]))
		b = binary.AppendVarint(b, out.ipcpVals[i])
	}
	b = binary.AppendUvarint(b, uint64(out.constGlobals))
	b = binary.AppendUvarint(b, uint64(len(out.promoted)))
	for _, g := range out.promoted {
		name := p.prog.Sym(g).Name
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	b = append(b, b2c(out.unrolled))
	return b
}

func (p *pass) decodeInterprocRecord(blob []byte) (body []byte, out *ipOutcome, err error) {
	r := &recReader{b: blob}
	if r.byte() != interprocRecMagic {
		return nil, nil, errRecord
	}
	body = r.take(r.u())
	out = &ipOutcome{}
	n := r.u()
	if r.err != nil || n > uint64(len(blob)) {
		return nil, nil, errRecord
	}
	for j := uint64(0); j < n; j++ {
		out.ipcpParams = append(out.ipcpParams, int(r.u()))
		out.ipcpVals = append(out.ipcpVals, r.i())
	}
	out.constGlobals = int(r.u())
	ng := r.u()
	if r.err != nil || ng > uint64(len(blob)) {
		return nil, nil, errRecord
	}
	for j := uint64(0); j < ng; j++ {
		name := string(r.take(r.u()))
		sym := p.prog.Lookup(name)
		if sym == nil {
			return nil, nil, fmt.Errorf("hlo: record promotes unknown global %q", name)
		}
		out.promoted = append(out.promoted, sym.PID)
	}
	out.unrolled = r.byte() == '1'
	if r.err != nil || r.off != len(blob) {
		return nil, nil, errRecord
	}
	return body, out, nil
}

// applyIPOutcome reproduces one function's interproc statistics and
// whole-program fact updates.
func (p *pass) applyIPOutcome(pid il.PID, out *ipOutcome) {
	for i := range out.ipcpParams {
		p.res.Stats.IPCPParams++
		p.ipcpFacts = append(p.ipcpFacts, IPCPFact{Fn: pid, Param: out.ipcpParams[i], Val: out.ipcpVals[i]})
	}
	p.res.Stats.ConstGlobals += out.constGlobals
	for _, g := range out.promoted {
		p.promoted[g] = true
	}
	if out.unrolled {
		p.res.Stats.Unrolled++
	}
	p.res.Stats.OptimizedFns++
}

// replayInterproc tries to satisfy one function's interproc stage from
// a cached record keyed by its post-clone body hash and fact string.
func (p *pass) replayInterproc(inc *Incremental, pid il.PID, f *il.Function, entryPID il.PID) bool {
	facts := p.interprocFactsFP(pid, f, entryPID)
	blob, ok := inc.Load("hlo/interproc", inc.OptionsFP, p.prog.Sym(pid).Name, inc.Hash(f), facts)
	if !ok {
		return false
	}
	body, out, err := p.decodeInterprocRecord(blob)
	if err != nil {
		return false
	}
	nf, err := inc.Decode(pid, body)
	if err != nil {
		return false
	}
	*f = *nf
	p.applyIPOutcome(pid, out)
	p.res.Stats.ReplayHits++
	return true
}

// storeInterprocRecord persists one function's interproc outcome under
// the key computed *before* the stage mutated the body.
func (p *pass) storeInterprocRecord(inc *Incremental, pid il.PID, f *il.Function, preHash, facts string, out *ipOutcome) {
	blob := p.encodeInterprocRecord(inc.Encode(f), out)
	inc.Store("hlo/interproc", blob, inc.OptionsFP, p.prog.Sym(pid).Name, preHash, facts)
	p.res.Stats.ReplayMisses++
}
