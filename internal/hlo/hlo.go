package hlo

import (
	"fmt"
	"sort"

	"cmo/internal/il"
	"cmo/internal/ipa"
	"cmo/internal/obs"
	"cmo/internal/profile"
	"cmo/internal/xform"
)

// FuncSource provides function bodies on demand. The returned body is
// owned by the source; HLO mutates it in place. DoneWith hints that
// the body will not be touched again soon and may be compacted or
// offloaded. Implementations must be safe for concurrent use: the
// parallel pipeline phases (codegen, selectivity enumeration,
// verification, out-of-scope summarization) call Function/DoneWith
// from many goroutines at once. The NAIM loader pins a body from
// Function until the matching DoneWith, so a checked-out body is
// never compacted out from under its holder.
type FuncSource interface {
	Function(pid il.PID) *il.Function
	DoneWith(pid il.PID)
}

// MapSource is a trivial FuncSource over a map, for tests and for
// NAIM-less compilation.
type MapSource map[il.PID]*il.Function

// Function returns the mapped body.
func (m MapSource) Function(pid il.PID) *il.Function { return m[pid] }

// DoneWith is a no-op for MapSource.
func (m MapSource) DoneWith(il.PID) {}

// InlineBudget tunes the inliner.
type InlineBudget struct {
	// TinySize: callees at or below this size are always inlined.
	TinySize int
	// HotMaxSize: with profiles, hot sites inline callees up to this size.
	HotMaxSize int
	// HotMin: minimum profiled site count to be considered hot.
	HotMin int64
	// ColdMaxSize: every site with a callee at or below this size is
	// inlined regardless of profile. Without profiles this is the
	// only rule beyond TinySize and is set high ("thorough
	// optimization of all routines" — the non-PBO mode whose cost
	// section 5 laments); with profiles it is a modest static floor
	// under the hot-site rule.
	ColdMaxSize int
	// GrowthFactor and MinCap bound the post-inlining size of a
	// caller: cap = max(origSize*GrowthFactor, MinCap).
	GrowthFactor int
	MinCap       int
}

// DefaultBudget returns the standard budgets; pbo selects the
// profile-aware variant.
func DefaultBudget(pbo bool) InlineBudget {
	if pbo {
		return InlineBudget{
			TinySize:     8,
			HotMaxSize:   200,
			HotMin:       8,
			ColdMaxSize:  40,
			GrowthFactor: 4,
			MinCap:       600,
		}
	}
	return InlineBudget{
		TinySize:     8,
		HotMaxSize:   0,
		HotMin:       0,
		ColdMaxSize:  80,
		GrowthFactor: 8,
		MinCap:       1200,
	}
}

// Options configures an HLO run.
type Options struct {
	// DB supplies profile data (nil for pure CMO).
	DB *profile.DB
	// Scope is the coarse-grained selectivity set: the functions of
	// the modules compiled in CMO mode. HLO scans and may transform
	// only these; everything else bypasses HLO entirely (nil means
	// the whole program is in scope). Callees outside the scope are
	// never inlined — their IL was not routed to the optimizer.
	Scope map[il.PID]bool
	// Selected is the fine-grained selectivity set: only these
	// functions are optimized (nil means all in-scope functions).
	// Unselected in-scope functions are still scanned once for
	// whole-program facts but never transformed (paper section 5).
	Selected map[il.PID]bool
	// ExternallyCalled marks in-scope functions that may be called
	// from outside the scope; IPCP must not specialize them and dead
	// function elimination must keep them. Supplied by the driver,
	// which sees the non-CMO modules.
	ExternallyCalled map[il.PID]bool
	// ExternStored marks globals stored by code outside the scope;
	// they are never promoted to constants.
	ExternStored map[il.PID]bool
	// Volatile marks globals whose values are supplied externally
	// (program inputs); they are never treated as link-time constants.
	Volatile map[il.PID]bool
	// Summaries, when non-nil, supplies the interprocedural MOD/REF
	// and purity summaries (internal/ipa) and enables the fact-gated
	// transforms that consult them: global-load forwarding across
	// calls that provably don't MOD the global ("gforward"), dead
	// global-store elimination across non-REF calls ("gdse"), and CSE
	// of const/pure calls ("purecse"). A callee with no summary is
	// treated as Top — it may do anything — so a partial table is
	// always safe. Clones made mid-run inherit their original's
	// summary (a specialization's effects are a subset).
	Summaries ipa.Summaries
	// Entry is the program entry function name (default "main").
	Entry string
	// AllowNoEntry permits optimizing a program fragment with no
	// entry function — the separate-compilation (+O3 in cmoc) case,
	// where every routine must be treated as externally callable and
	// dead-function elimination is disabled.
	AllowNoEntry bool
	// Budget tunes inlining; zero value means DefaultBudget(DB != nil).
	Budget InlineBudget
	// NoScheduleLocality disables the inliner's cache-friendly
	// candidate ordering (group by callee module, then callee); used
	// only by the ablation experiment that measures how much the
	// paper's section-4.3 schedule buys.
	NoScheduleLocality bool
	// MaxInlines caps the number of inline operations performed
	// (0 = unlimited). This is the paper's section-6.3 "controllable
	// operation limit": because compilation is deterministic, binary
	// searching over this limit pinpoints the single inline that
	// flips a program from working to failing (see internal/isolate).
	MaxInlines int
	// Span is the trace span this HLO run nests under (the driver's
	// "hlo" phase span). The zero Span disables trace emission; the
	// per-transform sub-spans (scan, inline, clone, ipcp, dce) then
	// cost nothing beyond a clock read each.
	Span obs.Span
	// Check, when non-nil, is invoked after each named transform
	// (scan, inline, clone, ipcp, dce) with that transform's name. A
	// non-nil return aborts the run; Optimize wraps it so the failure
	// names the transform that broke the invariant. The driver points
	// this at internal/analyze when Options.Verify is enabled.
	Check func(transform string) error
	// Incremental, when non-nil, lets the per-function inline and
	// interproc stages replay cached transform records instead of
	// re-optimizing functions whose inputs are unchanged (see
	// incremental.go). Replay never changes what the run produces —
	// only how much of it is recomputed. Ignored when MaxInlines > 0.
	Incremental *Incremental
	// Cancel, when non-nil, is polled at per-function granularity
	// inside every transform loop (scan, inline, interproc, dce). A
	// non-nil return aborts the run: Optimize returns that error
	// verbatim, with every FuncSource checkout already returned — a
	// cancelled run never leaves a pinned body behind. The driver
	// points this at the build context (Options.Context in package
	// cmo); the serving daemon uses it to enforce per-request
	// deadlines mid-HLO.
	Cancel func() error
}

// Stats reports what HLO did.
type Stats struct {
	Inlines       int
	Clones        int
	IPCPParams    int
	ConstGlobals  int // LoadG instructions replaced by constants
	DeadFuncs     int
	ScannedFuncs  int
	OptimizedFns  int
	Unrolled      int // functions in which loops were fully unrolled
	CrossModule   int // inlines whose caller and callee differ in module
	InlinedInstrs int
	// Outcome of the ipa-gated transforms (runs with Options.Summaries).
	GLoadsForwarded int // LoadG replaced by a known value ("gforward")
	GStoresKilled   int // dead StoreG removed ("gdse")
	PureCSEs        int // duplicate const/pure calls reused ("purecse")
	// Incremental replay outcome (runs with Options.Incremental): how
	// many per-function transform stages were replayed from cached
	// records versus recomputed live.
	ReplayHits   int
	ReplayMisses int
}

// InlineOp records one performed inline operation, in execution
// order. The log is the diagnostic the paper's section 6.2 calls for
// ("good compiler diagnostics on what the compiler is optimizing are
// essential") and the unit the section-6.3 isolation machinery counts.
type InlineOp struct {
	Caller, Callee il.PID
	SiteFreq       int64
	// Instrs is the callee body size at splice time (the instructions
	// the operation copied into the caller).
	Instrs int
}

// Result is the outcome of an HLO run.
type Result struct {
	Stats Stats
	// Dead lists functions proven unreachable from the entry; the
	// linker omits them from the image.
	Dead []il.PID
	// InlineOps is the ordered log of performed inlines.
	InlineOps []InlineOp
	// Facts publishes the whole-program summary facts this run relied
	// on, for the driver's soundness audit (internal/analyze
	// AuditFacts). Maps are shared with the pass, not copied.
	Facts Facts
}

// Facts records the summary facts HLO acted on: which globals it
// believed were never stored, which functions it believed had no
// outside callers, and the irreversible decisions (promotions, IPCP
// pins) it made on the strength of those beliefs. The selectivity
// design (paper section 5) means some of these facts summarize code
// HLO never re-reads, so the driver can audit them against a full
// rescan.
type Facts struct {
	// Scope mirrors Options.Scope (nil = whole program).
	Scope map[il.PID]bool
	// Stored is the stored-global summary: ExternStored merged with
	// every store the initial scan saw.
	Stored map[il.PID]bool
	// ExternallyCalled mirrors Options.ExternallyCalled.
	ExternallyCalled map[il.PID]bool
	// Volatile mirrors Options.Volatile.
	Volatile map[il.PID]bool
	// Promoted lists globals whose loads were replaced by constants.
	Promoted map[il.PID]bool
	// IPCP lists the parameters pinned to constants.
	IPCP []IPCPFact
	// Dead is Result.Dead as a set.
	Dead map[il.PID]bool
	// Summaries is the MOD/REF table the ipa-gated transforms
	// consulted, including entries copied onto clones made mid-run
	// (nil when the run had no summaries). The audit proves each
	// entry conservative over a full post-HLO rescan.
	Summaries ipa.Summaries
}

// IPCPFact records one interprocedural constant-propagation decision:
// parameter Param (0-based) of Fn was pinned to Val.
type IPCPFact struct {
	Fn    il.PID
	Param int
	Val   int64
}

type argState struct {
	// lattice per parameter: 0 = no call seen, 1 = constant, 2 = varying
	state []uint8
	val   []int64
}

// pass carries the state of one HLO run.
type pass struct {
	prog *il.Program
	src  FuncSource
	opts Options
	res  *Result
	// cancelErr latches the first error Options.Cancel reported; the
	// transform loops drain without further work once it is set.
	cancelErr error

	callees   map[il.PID][]il.PID
	callers   map[il.PID][]il.PID
	sccOf     map[il.PID]int
	stored    map[il.PID]bool // globals that are stored anywhere
	args      map[il.PID]*argState
	size      map[il.PID]int
	scope     map[il.PID]bool
	selected  map[il.PID]bool
	siteFreqs map[profile.SiteKey]int64
	promoted  map[il.PID]bool // globals promoted to constants
	ipcpFacts []IPCPFact

	// ipa-gated transform state (nil/empty when Options.Summaries is
	// nil). summaries is a private copy so clone entries added mid-run
	// never mutate the caller's table.
	summaries   ipa.Summaries
	ipaReplayed map[il.PID]bool      // functions satisfied from a replay record
	ipaKeys     map[il.PID][2]string // preHash, factsFP captured before gforward
	ipaDeltas   map[il.PID]*ipaOutcome
}

// Optimize runs the full HLO pipeline over the program.
func Optimize(prog *il.Program, src FuncSource, opts Options) (*Result, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.Budget == (InlineBudget{}) {
		opts.Budget = DefaultBudget(opts.DB != nil)
	}
	entryPID := il.NoPID
	if entry := prog.Lookup(opts.Entry); entry != nil && entry.Kind == il.SymFunc {
		entryPID = entry.PID
	} else if !opts.AllowNoEntry {
		return nil, fmt.Errorf("hlo: no entry function %q", opts.Entry)
	}
	p := &pass{
		prog: prog,
		src:  src,
		opts: opts,
		res:  &Result{},
	}
	p.scope = opts.Scope
	if p.scope == nil {
		p.scope = make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			p.scope[pid] = true
		}
	}
	p.selected = opts.Selected
	if p.selected == nil {
		p.selected = make(map[il.PID]bool)
		for _, pid := range prog.FuncPIDs() {
			if p.scope[pid] {
				p.selected[pid] = true
			}
		}
	} else {
		// The fine-grained set can never exceed the coarse set.
		narrowed := make(map[il.PID]bool, len(p.selected))
		for pid := range p.selected {
			if p.scope[pid] {
				narrowed[pid] = true
			}
		}
		p.selected = narrowed
	}
	p.siteFreqs = make(map[profile.SiteKey]int64)
	if opts.DB != nil {
		for k, v := range opts.DB.Sites {
			p.siteFreqs[k] = v
		}
	}
	if opts.Summaries != nil {
		p.summaries = make(ipa.Summaries, len(opts.Summaries))
		for pid, s := range opts.Summaries {
			p.summaries[pid] = s
		}
	}

	// check re-verifies the program after a named transform; the
	// wrapped error is the paper's section-6.3 dream diagnostic: it
	// says which transform broke which invariant in which function.
	check := func(transform string) error {
		if opts.Check == nil {
			return nil
		}
		if err := opts.Check(transform); err != nil {
			return fmt.Errorf("hlo: verification failed after %s: %w", transform, err)
		}
		return nil
	}

	// Per-transform spans: the phase-level breakdown behind the
	// paper's Figure 5/6 compile-time measurements. After each
	// transform the latched cancellation error (if any) is surfaced
	// before the transform's verification pass runs — a cancelled run
	// must report the deadline, not a half-checked invariant.
	sp := opts.Span.Child("scan")
	p.initialScan()
	sp.End()
	if p.cancelErr != nil {
		return nil, p.cancelErr
	}
	if err := check("scan"); err != nil {
		return nil, err
	}
	sp = opts.Span.Child("inline")
	p.inlineAll()
	sp.End()
	if p.cancelErr != nil {
		return nil, p.cancelErr
	}
	if err := check("inline"); err != nil {
		return nil, err
	}
	sp = opts.Span.Child("clone")
	p.cloneAll()
	sp.End()
	if p.cancelErr != nil {
		return nil, p.cancelErr
	}
	if err := check("clone"); err != nil {
		return nil, err
	}
	sp = opts.Span.Child("ipcp")
	p.interproc()
	sp.End()
	if p.cancelErr != nil {
		return nil, p.cancelErr
	}
	if err := check("ipcp"); err != nil {
		return nil, err
	}
	if p.summaries != nil {
		// The ipa-gated transforms: each is a named transform of its
		// own so a verification failure names the one that broke the
		// invariant. All three share one replay record per function
		// (the first stage replays it, the last stores it), so the
		// loops skip functions already satisfied from the cache.
		for _, stage := range []struct {
			name string
			run  func()
		}{
			{"gforward", p.ipaForwardAll},
			{"gdse", p.ipaDSEAll},
			{"purecse", p.ipaCSEAll},
		} {
			sp = opts.Span.Child(stage.name)
			stage.run()
			sp.End()
			if p.cancelErr != nil {
				return nil, p.cancelErr
			}
			if err := check(stage.name); err != nil {
				return nil, err
			}
		}
	}
	if entryPID != il.NoPID {
		sp = opts.Span.Child("dce")
		p.deadFunctions(entryPID)
		sp.End()
		if p.cancelErr != nil {
			return nil, p.cancelErr
		}
		if err := check("dce"); err != nil {
			return nil, err
		}
	}
	p.res.Facts = Facts{
		Scope:            opts.Scope,
		Stored:           p.stored,
		ExternallyCalled: opts.ExternallyCalled,
		Volatile:         opts.Volatile,
		Promoted:         p.promoted,
		IPCP:             p.ipcpFacts,
		Dead:             make(map[il.PID]bool, len(p.res.Dead)),
		Summaries:        p.summaries,
	}
	for _, pid := range p.res.Dead {
		p.res.Facts.Dead[pid] = true
	}
	return p.res, nil
}

// canceled polls Options.Cancel, latching the first error it reports.
// Transform loops call it between checkouts — never while holding one
// — so an aborted run's pin count is already balanced when Optimize
// returns the latched error.
func (p *pass) canceled() bool {
	if p.cancelErr != nil {
		return true
	}
	if p.opts.Cancel == nil {
		return false
	}
	if err := p.opts.Cancel(); err != nil {
		p.cancelErr = err
		return true
	}
	return false
}

// initialScan reads every module's code once, building the call
// graph, the stored-global set, the constant-argument lattice, and
// function sizes — the whole-program facts that require examining all
// routines, selected or not (paper section 5: "information about
// routines not selected for optimization can influence the
// optimization of selected routines").
func (p *pass) initialScan() {
	p.callees = make(map[il.PID][]il.PID)
	p.callers = make(map[il.PID][]il.PID)
	p.stored = make(map[il.PID]bool)
	p.args = make(map[il.PID]*argState)
	p.size = make(map[il.PID]int)
	for pid := range p.opts.ExternStored {
		p.stored[pid] = true
	}

	for _, pid := range p.prog.FuncPIDs() {
		if !p.scope[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		p.res.Stats.ScannedFuncs++
		p.size[pid] = f.NumInstrs()
		seen := make(map[il.PID]bool)
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				switch in.Op {
				case il.StoreG, il.StoreX:
					p.stored[in.Sym] = true
				case il.Call:
					if !seen[in.Sym] {
						seen[in.Sym] = true
						p.callees[pid] = append(p.callees[pid], in.Sym)
						p.callers[in.Sym] = append(p.callers[in.Sym], pid)
					}
					p.meetArgs(in)
				}
			}
		}
		p.src.DoneWith(pid)
	}
	p.computeSCC()
}

// meetArgs folds one call's arguments into the callee's lattice.
func (p *pass) meetArgs(in *il.Instr) {
	st := p.args[in.Sym]
	if st == nil {
		st = &argState{state: make([]uint8, len(in.Args)), val: make([]int64, len(in.Args))}
		p.args[in.Sym] = st
	}
	for i, a := range in.Args {
		if i >= len(st.state) {
			break
		}
		switch {
		case !a.IsConst:
			st.state[i] = 2
		case st.state[i] == 0:
			st.state[i] = 1
			st.val[i] = a.Const
		case st.state[i] == 1 && st.val[i] != a.Const:
			st.state[i] = 2
		}
	}
}

// computeSCC labels mutual-recursion groups (iterative Tarjan).
func (p *pass) computeSCC() {
	p.sccOf = make(map[il.PID]int)
	index := make(map[il.PID]int)
	low := make(map[il.PID]int)
	onStack := make(map[il.PID]bool)
	var stack []il.PID
	next, comp := 0, 0
	type frame struct {
		v  il.PID
		ci int
	}
	for _, root := range p.prog.FuncPIDs() {
		if _, done := index[root]; done {
			continue
		}
		work := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ci < len(p.callees[f.v]) {
				w := p.callees[f.v][f.ci]
				f.ci++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				pp := work[len(work)-1].v
				if low[v] < low[pp] {
					low[pp] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					p.sccOf[w] = comp
					if w == v {
						break
					}
				}
				comp++
			}
		}
	}
}

// bottomUp returns defined functions callee-first (ascending SCC id,
// which Tarjan emits in reverse topological order), PID tie-break.
func (p *pass) bottomUp() []il.PID {
	out := p.prog.FuncPIDs()
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := p.sccOf[out[i]], p.sccOf[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// interproc applies interprocedural constant propagation and
// constant-global promotion to the selected functions, then runs the
// standard local pipeline on each. With replay enabled, a function
// whose post-clone body and facts match a cached record skips the
// whole stage and installs the recorded outcome.
func (p *pass) interproc() {
	entryPID := il.NoPID
	if entry := p.prog.Lookup(p.opts.Entry); entry != nil {
		entryPID = entry.PID
	}
	p.promoted = make(map[il.PID]bool)
	inc := p.incremental()
	for _, pid := range p.bottomUp() {
		if !p.selected[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		var preHash, facts string
		if inc != nil {
			if p.replayInterproc(inc, pid, f, entryPID) {
				p.src.DoneWith(pid)
				continue
			}
			// Key material must predate the mutations below.
			preHash = inc.Hash(f)
			facts = p.interprocFactsFP(pid, f, entryPID)
		}
		out := p.interprocOne(pid, f, entryPID)
		if inc != nil {
			p.storeInterprocRecord(inc, pid, f, preHash, facts, out)
		}
		p.src.DoneWith(pid)
	}
}

// interprocOne runs the live interproc stage on one function and
// returns what it did (the replayable outcome).
func (p *pass) interprocOne(pid il.PID, f *il.Function, entryPID il.PID) *ipOutcome {
	out := &ipOutcome{}

	// IPCP: a parameter whose every (pre-inline) caller passes
	// the same constant becomes a constant at entry. The entry
	// function's parameters come from the outside world, and
	// functions callable from outside the CMO scope have unseen
	// callers.
	if st := p.args[pid]; st != nil && pid != entryPID && !p.opts.ExternallyCalled[pid] {
		for i := 0; i < f.NParams && i < len(st.state); i++ {
			if st.state[i] == 1 {
				entryBlock := f.Blocks[0]
				pre := []il.Instr{{Op: il.Const, Dst: il.Reg(i + 1), A: il.ConstVal(st.val[i])}}
				entryBlock.Instrs = append(pre, entryBlock.Instrs...)
				out.ipcpParams = append(out.ipcpParams, i)
				out.ipcpVals = append(out.ipcpVals, st.val[i])
			}
		}
	}

	// Constant-global promotion: loads of globals never stored
	// anywhere in the program (and not marked volatile) become
	// constants.
	promotedHere := make(map[il.PID]bool)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != il.LoadG || p.stored[in.Sym] || p.opts.Volatile[in.Sym] {
				continue
			}
			sym := p.prog.Sym(in.Sym)
			if !promotedHere[in.Sym] {
				promotedHere[in.Sym] = true
				out.promoted = append(out.promoted, in.Sym)
			}
			*in = il.Instr{Op: il.Const, Dst: in.Dst, A: il.ConstVal(sym.Init)}
			out.constGlobals++
		}
	}

	// Loop transformations: fully unroll small counted loops
	// (often exposed only now, after IPCP and constant-global
	// promotion turned trip counts into constants).
	xform.Optimize(f)
	if xform.UnrollLoops(f, 256) {
		out.unrolled = true
		xform.Optimize(f)
	}
	p.applyIPOutcome(pid, out)
	return out
}

// deadFunctions finds functions unreachable from the entry after all
// transformations. Selected functions are re-scanned (inlining may
// have removed their last reference to a callee); unselected bodies
// kept their initial-scan edges.
func (p *pass) deadFunctions(entry il.PID) {
	adj := make(map[il.PID][]il.PID)
	for _, pid := range p.prog.FuncPIDs() {
		if p.canceled() {
			return
		}
		if !p.scope[pid] {
			// Outside the CMO scope nothing was scanned; such
			// functions are kept and their call edges are unknown
			// here (the driver accounts for them through
			// ExternallyCalled).
			continue
		}
		if !p.selected[pid] {
			adj[pid] = p.callees[pid]
			continue
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		seen := make(map[il.PID]bool)
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				if in := &b.Instrs[ii]; in.Op == il.Call && !seen[in.Sym] {
					seen[in.Sym] = true
					adj[pid] = append(adj[pid], in.Sym)
				}
			}
		}
		p.src.DoneWith(pid)
	}
	// Roots: the entry plus everything reachable from outside the
	// scope.
	reach := map[il.PID]bool{entry: true}
	work := []il.PID{entry}
	for _, pid := range p.prog.FuncPIDs() {
		if (!p.scope[pid] || p.opts.ExternallyCalled[pid]) && !reach[pid] {
			reach[pid] = true
			work = append(work, pid)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, w := range adj[v] {
			if !reach[w] {
				reach[w] = true
				work = append(work, w)
			}
		}
	}
	for _, pid := range p.prog.FuncPIDs() {
		if !reach[pid] {
			p.res.Dead = append(p.res.Dead, pid)
		}
	}
	p.res.Stats.DeadFuncs = len(p.res.Dead)
}
