package hlo

import (
	"encoding/binary"
	"strings"

	"cmo/internal/il"
	"cmo/internal/ipa"
	"cmo/internal/xform"
)

// The ipa-gated transforms. With Options.Summaries supplied, three
// additional named transforms run between ipcp and dce, each using
// the interprocedural MOD/REF summaries to optimize *across* call
// instructions that the purely local pipeline must treat as barriers:
//
//   - gforward: within a block, a LoadG whose global's current value
//     is known (from an earlier StoreG or LoadG) becomes a Const or
//     Copy — surviving across calls whose callee provably does not
//     MOD that global.
//   - gdse: within a block, a StoreG overwritten by a later StoreG to
//     the same global with no intervening LoadG becomes a Nop —
//     surviving across calls whose callee provably does not REF it.
//   - purecse: within a block, a call to a const (or pure) function
//     that duplicates an earlier call with identical operands reuses
//     the earlier result. Pure entries (which may read globals) are
//     invalidated by any store or by any call that may write; const
//     entries only by operand redefinition. Only a *later* duplicate
//     is replaced, so a call that would trap still traps first —
//     trap equivalence is preserved.
//
// A callee without a summary is Top ("may do anything"), so every
// rewrite is gated on positive knowledge. Volatile globals are never
// tracked. All three transforms are block-local: the facts they need
// cross *calls*, not control flow, which is where the summaries pay.
//
// Replay: the three stages share one record per function (kind
// "hlo/ipa"), keyed on the post-ipcp body hash plus ipaFactsFP — the
// summary fingerprint of every callee the body mentions and the
// volatile bit of every global it touches. Editing a callee so its
// side effects change flips its summary fingerprint and invalidates
// exactly the callers whose transforms consulted it. The first stage
// replays the record (installing the final body); the later stages
// skip replayed functions; the last stage stores fresh records.

// ipaTopSummary is the shared "no knowledge" summary.
var ipaTopSummary = ipa.Top()

// summaryOf returns the callee's summary, or Top when it has none.
func (p *pass) summaryOf(callee il.PID) *ipa.Summary {
	if s := p.summaries[callee]; s != nil {
		return s
	}
	return ipaTopSummary
}

// ipaOutcome is what the three ipa-gated stages did to one function.
type ipaOutcome struct {
	fwd, dse, cse int64
	changed       bool
}

// ipaForwardAll runs the gforward stage over the selected functions,
// consulting (and on miss, preparing) the shared replay record.
func (p *pass) ipaForwardAll() {
	inc := p.incremental()
	p.ipaReplayed = make(map[il.PID]bool)
	p.ipaKeys = make(map[il.PID][2]string)
	p.ipaDeltas = make(map[il.PID]*ipaOutcome)
	for _, pid := range p.bottomUp() {
		if !p.selected[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		if inc != nil && p.replayIPA(inc, pid, f) {
			p.src.DoneWith(pid)
			continue
		}
		d := &ipaOutcome{}
		p.ipaDeltas[pid] = d
		if n := p.forwardGlobals(f); n > 0 {
			d.fwd = int64(n)
			d.changed = true
			p.res.Stats.GLoadsForwarded += n
		}
		p.src.DoneWith(pid)
	}
}

// ipaDSEAll runs the gdse stage over the functions the gforward loop
// did not satisfy from the cache.
func (p *pass) ipaDSEAll() {
	for _, pid := range p.bottomUp() {
		if !p.selected[pid] || p.ipaReplayed[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		d := p.ipaDeltas[pid]
		if d == nil {
			d = &ipaOutcome{}
			p.ipaDeltas[pid] = d
		}
		if n := p.deadGlobalStores(f); n > 0 {
			d.dse = int64(n)
			d.changed = true
			p.res.Stats.GStoresKilled += n
		}
		p.src.DoneWith(pid)
	}
}

// ipaCSEAll runs the purecse stage, then cleans up changed bodies and
// stores the shared replay record.
func (p *pass) ipaCSEAll() {
	inc := p.incremental()
	for _, pid := range p.bottomUp() {
		if !p.selected[pid] || p.ipaReplayed[pid] {
			continue
		}
		if p.canceled() {
			return
		}
		f := p.src.Function(pid)
		if f == nil {
			continue
		}
		d := p.ipaDeltas[pid]
		if d == nil {
			d = &ipaOutcome{}
			p.ipaDeltas[pid] = d
		}
		if n := p.cseConstPureCalls(f); n > 0 {
			d.cse = int64(n)
			d.changed = true
			p.res.Stats.PureCSEs += n
		}
		if d.changed {
			// One local cleanup for the three stages: fold the Copies,
			// drop the Nops, shrink what forwarding exposed.
			xform.Optimize(f)
			p.size[pid] = f.NumInstrs()
		}
		if inc != nil {
			p.storeIPARecord(inc, pid, f, d)
		}
		p.src.DoneWith(pid)
	}
}

// forwardGlobals is the gforward transform body: block-local known-
// value tracking for scalar globals, with callee MOD summaries
// deciding which calls kill which entries.
func (p *pass) forwardGlobals(f *il.Function) int {
	count := 0
	for _, b := range f.Blocks {
		// avail[g] is the value global g currently holds: a constant,
		// or a register that has not been redefined since.
		avail := make(map[il.PID]il.Value)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			wasLoadG := in.Op == il.LoadG
			// Use phase: rewrite a redundant load of a known global.
			if wasLoadG && !p.opts.Volatile[in.Sym] {
				if v, ok := avail[in.Sym]; ok {
					if v.IsConst {
						*in = il.Instr{Op: il.Const, Dst: in.Dst, A: v}
						count++
					} else if v.Reg != in.Dst {
						*in = il.Instr{Op: il.Copy, Dst: in.Dst, A: v}
						count++
					}
				}
			}
			// Barrier phase: calls kill what their callee may MOD.
			switch in.Op {
			case il.Call:
				s := p.summaryOf(in.Sym)
				if s.ModTop || s.CallsOut {
					clear(avail)
				} else {
					for g := range avail {
						if s.Mod[g] {
							delete(avail, g)
						}
					}
				}
			case il.Probe:
				clear(avail)
			}
			// Redefinition phase: a new value in Dst invalidates every
			// entry held in that register.
			if in.Dst != 0 {
				for g, v := range avail {
					if !v.IsConst && v.Reg == in.Dst {
						delete(avail, g)
					}
				}
			}
			// Gen phase: stores and (surviving) loads establish values.
			switch {
			case in.Op == il.StoreG && !p.opts.Volatile[in.Sym]:
				avail[in.Sym] = in.A
			case wasLoadG && in.Op == il.LoadG && !p.opts.Volatile[in.Sym]:
				avail[in.Sym] = il.RegVal(in.Dst)
			}
		}
	}
	return count
}

// deadGlobalStores is the gdse transform body: a StoreG is dead when
// a later StoreG to the same global follows in the block with no
// intervening LoadG of it and no call that may REF it. Death is with
// respect to the machine's observable outputs (return value, probes):
// like the local DCE's removal of potentially-trapping dead loads, a
// trap between the two stores leaves the global holding an older
// value, which no surviving instruction can read.
func (p *pass) deadGlobalStores(f *il.Function) int {
	count := 0
	for _, b := range f.Blocks {
		// pending[g] indexes the latest StoreG to g that nothing has
		// read yet. Entries surviving to the block's end are kept:
		// successors may read them.
		pending := make(map[il.PID]int)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case il.LoadG:
				delete(pending, in.Sym)
			case il.StoreG:
				if p.opts.Volatile[in.Sym] {
					break
				}
				if prev, ok := pending[in.Sym]; ok {
					b.Instrs[prev] = il.Instr{Op: il.Nop}
					count++
				}
				pending[in.Sym] = ii
			case il.Call:
				s := p.summaryOf(in.Sym)
				if s.RefTop || s.CallsOut {
					clear(pending)
				} else {
					for g := range pending {
						if s.Ref[g] {
							delete(pending, g)
						}
					}
				}
			case il.Probe:
				clear(pending)
			}
		}
	}
	return count
}

// cseEntry is one available const/pure call result.
type cseEntry struct {
	result  il.Reg
	pure    bool // Pure (may read globals) as opposed to Const
	argRegs []il.Reg
}

// cseConstPureCalls is the purecse transform body.
func (p *pass) cseConstPureCalls(f *il.Function) int {
	count := 0
	var keyb strings.Builder
	for _, b := range f.Blocks {
		avail := make(map[string]*cseEntry)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			insertKey := ""
			var insertEntry *cseEntry
			if in.Op == il.Call && in.Dst != 0 {
				s := p.summaryOf(in.Sym)
				if s.Purity == ipa.Const || s.Purity == ipa.Pure {
					keyb.Reset()
					keyb.WriteString(p.prog.Sym(in.Sym).Name)
					for _, a := range in.Args {
						keyb.WriteByte(':')
						keyb.WriteString(a.String())
					}
					key := keyb.String()
					if e, ok := avail[key]; ok {
						*in = il.Instr{Op: il.Copy, Dst: in.Dst, A: il.RegVal(e.result)}
						count++
					} else {
						insertKey = key
						insertEntry = &cseEntry{result: in.Dst, pure: s.Purity == ipa.Pure}
						for _, a := range in.Args {
							if !a.IsConst {
								insertEntry.argRegs = append(insertEntry.argRegs, a.Reg)
							}
						}
					}
				}
			}
			// Barrier phase: writes invalidate pure entries (their
			// results depend on global state); probes invalidate all.
			switch in.Op {
			case il.Call:
				s := p.summaryOf(in.Sym)
				if s.WritesAnything() || s.CallsOut {
					for k, e := range avail {
						if e.pure {
							delete(avail, k)
						}
					}
				}
			case il.StoreG, il.StoreX:
				for k, e := range avail {
					if e.pure {
						delete(avail, k)
					}
				}
			case il.Probe:
				clear(avail)
			}
			// Redefinition phase: Dst overwrite invalidates entries
			// whose result or operands lived there.
			if in.Dst != 0 {
				for k, e := range avail {
					if e.result == in.Dst {
						delete(avail, k)
						continue
					}
					for _, r := range e.argRegs {
						if r == in.Dst {
							delete(avail, k)
							break
						}
					}
				}
			}
			if insertKey != "" {
				avail[insertKey] = insertEntry
			}
		}
	}
	return count
}

// ipaFactsFP renders the facts the ipa-gated transforms consult for
// one function: every callee the body mentions with its summary
// fingerprint (⊤ for none), and every global it touches with its
// volatile bit. First-appearance body order is stable because the
// record key also contains the body hash.
func (p *pass) ipaFactsFP(f *il.Function) string {
	var sb strings.Builder
	seenC := make(map[il.PID]bool)
	seenG := make(map[il.PID]bool)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Op {
			case il.Call:
				if seenC[in.Sym] {
					continue
				}
				seenC[in.Sym] = true
				sb.WriteString("c:")
				sb.WriteString(p.prog.Sym(in.Sym).Name)
				sb.WriteByte('\x00')
				if s := p.summaries[in.Sym]; s != nil {
					sb.WriteString(s.Fingerprint(p.prog))
				} else {
					sb.WriteString("⊤")
				}
				sb.WriteByte('\n')
			case il.LoadG, il.StoreG, il.LoadX, il.StoreX:
				if seenG[in.Sym] {
					continue
				}
				seenG[in.Sym] = true
				sb.WriteString("g:")
				sb.WriteString(p.prog.Sym(in.Sym).Name)
				sb.WriteByte(':')
				sb.WriteByte(b2c(p.opts.Volatile[in.Sym]))
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

const ipaRecMagic = 0xC3

func encodeIPARecord(d *ipaOutcome, body []byte) []byte {
	b := []byte{ipaRecMagic, b2c(d.changed)}
	if d.changed {
		b = binary.AppendUvarint(b, uint64(len(body)))
		b = append(b, body...)
	}
	b = binary.AppendVarint(b, d.fwd)
	b = binary.AppendVarint(b, d.dse)
	b = binary.AppendVarint(b, d.cse)
	return b
}

func decodeIPARecord(blob []byte) (d *ipaOutcome, body []byte, err error) {
	r := &recReader{b: blob}
	if r.byte() != ipaRecMagic {
		return nil, nil, errRecord
	}
	d = &ipaOutcome{changed: r.byte() == '1'}
	if d.changed {
		body = r.take(r.u())
	}
	d.fwd = r.i()
	d.dse = r.i()
	d.cse = r.i()
	if r.err != nil || r.off != len(blob) {
		return nil, nil, errRecord
	}
	return d, body, nil
}

// replayIPA tries to satisfy all three ipa-gated stages for one
// function from a cached record. On a miss the computed key material
// is stashed so the purecse loop can store a fresh record under the
// *pre*-transform key.
func (p *pass) replayIPA(inc *Incremental, pid il.PID, f *il.Function) bool {
	preHash := inc.Hash(f)
	facts := p.ipaFactsFP(f)
	name := p.prog.Sym(pid).Name
	miss := func() bool {
		p.ipaKeys[pid] = [2]string{preHash, facts}
		return false
	}
	blob, ok := inc.Load("hlo/ipa", inc.OptionsFP, name, preHash, facts)
	if !ok {
		return miss()
	}
	d, body, err := decodeIPARecord(blob)
	if err != nil {
		return miss()
	}
	if d.changed {
		nf, err := inc.Decode(pid, body)
		if err != nil {
			return miss()
		}
		*f = *nf
		p.size[pid] = f.NumInstrs()
	}
	p.res.Stats.GLoadsForwarded += int(d.fwd)
	p.res.Stats.GStoresKilled += int(d.dse)
	p.res.Stats.PureCSEs += int(d.cse)
	p.res.Stats.ReplayHits++
	p.ipaReplayed[pid] = true
	return true
}

// storeIPARecord persists one function's combined ipa-stage outcome
// under the key captured before the first stage mutated the body.
func (p *pass) storeIPARecord(inc *Incremental, pid il.PID, f *il.Function, d *ipaOutcome) {
	keys, ok := p.ipaKeys[pid]
	if !ok {
		return
	}
	var body []byte
	if d.changed {
		body = inc.Encode(f)
	}
	inc.Store("hlo/ipa", encodeIPARecord(d, body), inc.OptionsFP, p.prog.Sym(pid).Name, keys[0], keys[1])
	p.res.Stats.ReplayMisses++
}
