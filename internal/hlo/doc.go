// Package hlo is the high-level optimizer: the interprocedural,
// cross-module stage of the pipeline (paper Figure 2). It runs at
// +O4, consumes IL for many modules at once, and performs
// profile-aware inlining, interprocedural constant propagation,
// constant-global promotion, and whole-program dead function
// elimination, delegating function-local cleanup to internal/xform.
//
// HLO never holds function bodies directly: it pulls them through a
// FuncSource (in production the NAIM loader, internal/naim) and
// signals with DoneWith when a body may be unloaded. The access
// pattern is deliberately phased — one initial scan of everything
// (the paper's "minimum amount of analysis ... as the code and data
// are read in"), then repeated touches of only the selected hot
// functions — because that locality is what makes the NAIM expanded-
// pool cache effective (paper section 4.3).
//
// Transforms run in a fixed order — scan, inline, clone, ipcp, dce —
// and that order is part of the deterministic contract: given the
// same inputs, HLO produces the same IL byte for byte, regardless of
// Jobs, NAIM level, or cache warmth. Options.Cancel threads build
// cancellation in at per-function granularity; a cancelled Optimize
// returns with every checkout returned to the source.
//
// # Replay-key invariants (incremental.go)
//
// With a session repository behind the build, the two per-function
// stages that dominate optimization time consult cached transform
// records. Soundness is by key construction, never by invalidation
// logic:
//
//   - An inline record's key covers the caller's transitive callee
//     closure: for every function reachable through call edges, its
//     name, pre-inline content hash, and scope/selected/defined bits.
//     Bottom-up inlining makes the caller's outcome a pure function
//     of exactly that closure.
//   - An interproc record's key covers the post-clone body hash plus
//     every fact the transform consults: the constant-argument
//     lattice for the parameters, entry/externally-called bits, and
//     a (stored ⊔ volatile, initial value) summary per loaded global.
//
// Anything not captured in a key runs live every time (scan, SCC,
// clone, dead-function elimination — globally coupled and cheap), and
// any decode error or key mismatch falls back to the live path.
// Records may change only how fast the answer arrives, never the
// answer: warm and cold runs are byte-identical.
package hlo
