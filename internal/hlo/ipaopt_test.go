package hlo

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/ipa"
)

// ipaPass builds the minimal pass state the ipa-gated transform
// bodies need: program, options, and a summary table.
func ipaPass(prog *il.Program, sums ipa.Summaries, volatiles map[il.PID]bool) *pass {
	return &pass{
		prog:      prog,
		opts:      Options{Volatile: volatiles},
		res:       &Result{},
		size:      map[il.PID]int{},
		summaries: sums,
	}
}

// ipaProg hand-assembles a program with two globals and three callees
// whose summaries span the purity lattice: a const function, a pure
// reader of g, and a writer of g.
type ipaProg struct {
	prog                *il.Program
	g, h                il.PID
	constFn, pureFn, wg il.PID
	sums                ipa.Summaries
}

func newIPAProg() *ipaProg {
	p := il.NewProgram()
	m := p.AddModule("m")
	def := func(name string, kind il.SymKind) il.PID {
		pid, _ := p.Intern(name, kind)
		s := p.Sym(pid)
		s.Module = m.Index
		if kind == il.SymFunc {
			s.Sig = il.Signature{Ret: il.I64, Params: []il.Type{il.I64}}
		} else {
			s.Type = il.I64
		}
		m.Defs = append(m.Defs, pid)
		return pid
	}
	ip := &ipaProg{prog: p}
	ip.g = def("g", il.SymGlobal)
	ip.h = def("h", il.SymGlobal)
	ip.constFn = def("cf", il.SymFunc)
	ip.pureFn = def("pf", il.SymFunc)
	ip.wg = def("wg", il.SymFunc)
	ip.sums = ipa.Summaries{
		ip.constFn: {Purity: ipa.Const},
		ip.pureFn:  {Ref: map[il.PID]bool{ip.g: true}, Purity: ipa.Pure},
		ip.wg:      {Mod: map[il.PID]bool{ip.g: true}, Purity: ipa.Neither},
	}
	return ip
}

func oneBlock(instrs ...il.Instr) *il.Function {
	return &il.Function{Name: "t", NRegs: 16, Ret: il.I64,
		Blocks: []*il.Block{{Instrs: instrs, T: -1, F: -1}}}
}

func TestForwardGlobalsAcrossNonModCall(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(5)},
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.constFn, Args: []il.Value{il.ConstVal(0)}},
		il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.forwardGlobals(f); n != 1 {
		t.Fatalf("forwarded %d loads, want 1", n)
	}
	in := f.Blocks[0].Instrs[2]
	if in.Op != il.Const || !in.A.IsConst || in.A.Const != 5 {
		t.Errorf("load not forwarded to Const 5: %+v", in)
	}
}

func TestForwardGlobalsKilledByModCall(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(5)},
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.wg, Args: []il.Value{il.ConstVal(0)}},
		il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.forwardGlobals(f); n != 0 {
		t.Fatalf("forwarded %d loads across a MOD call, want 0", n)
	}
}

func TestForwardGlobalsUnsummarizedCalleeIsTop(t *testing.T) {
	ip := newIPAProg()
	unknown, _ := ip.prog.Intern("mystery", il.SymFunc)
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(5)},
		il.Instr{Op: il.Call, Dst: 1, Sym: unknown, Args: []il.Value{il.ConstVal(0)}},
		il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.forwardGlobals(f); n != 0 {
		t.Fatalf("forwarded %d loads across an unsummarized call, want 0", n)
	}
}

func TestForwardGlobalsVolatileNeverTracked(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(5)},
		il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, map[il.PID]bool{ip.g: true})
	if n := p.forwardGlobals(f); n != 0 {
		t.Fatalf("forwarded %d volatile loads, want 0", n)
	}
}

func TestForwardGlobalsRegisterRedefinition(t *testing.T) {
	// The forwarded value lives in a register that is then redefined:
	// the entry must die with it.
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
		il.Instr{Op: il.Const, Dst: 2, A: il.ConstVal(9)}, // clobbers r2
		il.Instr{Op: il.LoadG, Dst: 3, Sym: ip.g},         // must NOT copy r2
		il.Instr{Op: il.Ret, A: il.RegVal(3)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.forwardGlobals(f); n != 0 {
		t.Fatalf("forwarded %d loads from a clobbered register, want 0", n)
	}
}

func TestDeadGlobalStoresAcrossNonRefCall(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(1)},
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.constFn, Args: []il.Value{il.ConstVal(0)}},
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(2)},
		il.Instr{Op: il.Ret, A: il.ConstVal(0)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.deadGlobalStores(f); n != 1 {
		t.Fatalf("killed %d stores, want 1", n)
	}
	if f.Blocks[0].Instrs[0].Op != il.Nop {
		t.Errorf("overwritten store not Nopped: %+v", f.Blocks[0].Instrs[0])
	}
	if f.Blocks[0].Instrs[2].Op != il.StoreG {
		t.Errorf("surviving store clobbered: %+v", f.Blocks[0].Instrs[2])
	}
}

func TestDeadGlobalStoresKeptAcrossRefCall(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(1)},
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.pureFn, Args: []il.Value{il.ConstVal(0)}},
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(2)},
		il.Instr{Op: il.Ret, A: il.ConstVal(0)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.deadGlobalStores(f); n != 0 {
		t.Fatalf("killed %d stores the pure callee reads, want 0", n)
	}
}

func TestDeadGlobalStoresLastStoreSurvivesBlock(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(1)},
		il.Instr{Op: il.Ret, A: il.ConstVal(0)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.deadGlobalStores(f); n != 0 {
		t.Fatalf("killed %d end-of-block stores, want 0 (successors may read)", n)
	}
}

func TestPureCSEConstCall(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.constFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.StoreG, Sym: ip.h, A: il.RegVal(1)}, // const entries survive stores
		il.Instr{Op: il.Call, Dst: 2, Sym: ip.constFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.cseConstPureCalls(f); n != 1 {
		t.Fatalf("reused %d const calls, want 1", n)
	}
	in := f.Blocks[0].Instrs[2]
	if in.Op != il.Copy || in.A.IsConst || in.A.Reg != 1 {
		t.Errorf("duplicate const call not rewritten to Copy r1: %+v", in)
	}
}

func TestPureCSEPureCallInvalidatedByStore(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.pureFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(0)}, // changes what pf reads
		il.Instr{Op: il.Call, Dst: 2, Sym: ip.pureFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.cseConstPureCalls(f); n != 0 {
		t.Fatalf("reused %d pure calls across a store, want 0", n)
	}
}

func TestPureCSEPureCallReusedWhenNothingWrites(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.pureFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.Call, Dst: 2, Sym: ip.constFn, Args: []il.Value{il.RegVal(1)}}, // const call: no writes
		il.Instr{Op: il.Call, Dst: 3, Sym: ip.pureFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.Ret, A: il.RegVal(3)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.cseConstPureCalls(f); n != 1 {
		t.Fatalf("reused %d pure calls, want 1", n)
	}
}

func TestPureCSEDifferentArgsNotReused(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.constFn, Args: []il.Value{il.ConstVal(7)}},
		il.Instr{Op: il.Call, Dst: 2, Sym: ip.constFn, Args: []il.Value{il.ConstVal(8)}},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.cseConstPureCalls(f); n != 0 {
		t.Fatalf("reused %d calls with distinct args, want 0", n)
	}
}

func TestPureCSEArgRedefinitionInvalidates(t *testing.T) {
	ip := newIPAProg()
	f := oneBlock(
		il.Instr{Op: il.Const, Dst: 4, A: il.ConstVal(7)},
		il.Instr{Op: il.Call, Dst: 1, Sym: ip.constFn, Args: []il.Value{il.RegVal(4)}},
		il.Instr{Op: il.Const, Dst: 4, A: il.ConstVal(8)}, // r4 now holds a new value
		il.Instr{Op: il.Call, Dst: 2, Sym: ip.constFn, Args: []il.Value{il.RegVal(4)}},
		il.Instr{Op: il.Ret, A: il.RegVal(2)},
	)
	p := ipaPass(ip.prog, ip.sums, nil)
	if n := p.cseConstPureCalls(f); n != 0 {
		t.Fatalf("reused %d calls whose register operand changed, want 0", n)
	}
}

// End-to-end: a MinC program whose only cross-call redundancy needs
// the summaries. The optimize helper asserts the interpreted result
// is unchanged; the stats prove the ipa transforms fired.
func TestIPATransformsEndToEnd(t *testing.T) {
	prog, fns := build(t, `
module m;
var acc int = 0;
var bias int = 3;

func pureScale(x int) int {
	return x * bias;
}

func main() int {
	acc = 10;
	var a int = pureScale(2);
	var b int = acc;
	acc = 1;
	acc = a + b + pureScale(2);
	return acc;
}
`)
	sums := ipa.Analyze(prog, MapSource(fns), ipa.Options{}).Summaries
	_, res := optimize(t, prog, fns, Options{Summaries: sums})
	s := res.Stats
	if s.GLoadsForwarded+s.GStoresKilled+s.PureCSEs == 0 {
		t.Errorf("no ipa transform fired: %+v", s)
	}
}

// FuzzCalleeTamper drives the replay-invalidation property: whenever
// a tampered callee body changes the callee's summary fingerprint,
// the caller's ipaFactsFP — the string inside its replay key — must
// change too, so a warm rebuild cannot reuse transforms computed
// against the old side effects.
func FuzzCalleeTamper(f *testing.F) {
	f.Add(uint8(0), uint8(0), int64(1))
	f.Add(uint8(1), uint8(1), int64(2))
	f.Add(uint8(2), uint8(0), int64(3))
	f.Add(uint8(3), uint8(1), int64(-4))
	f.Fuzz(func(t *testing.T, opSel, gSel uint8, val int64) {
		ip := newIPAProg()
		callee := ip.pureFn
		calleeBody := oneBlock(
			il.Instr{Op: il.LoadG, Dst: 1, Sym: ip.g},
			il.Instr{Op: il.Ret, A: il.RegVal(1)},
		)
		calleeBody.Name, calleeBody.PID, calleeBody.NParams = "pf", callee, 1
		caller := oneBlock(
			il.Instr{Op: il.StoreG, Sym: ip.g, A: il.ConstVal(5)},
			il.Instr{Op: il.Call, Dst: 1, Sym: callee, Args: []il.Value{il.ConstVal(0)}},
			il.Instr{Op: il.LoadG, Dst: 2, Sym: ip.g},
			il.Instr{Op: il.Ret, A: il.RegVal(2)},
		)
		fns := map[il.PID]*il.Function{callee: calleeBody}
		summarize := func() ipa.Summaries {
			return ipa.Analyze(ip.prog, MapSource(fns), ipa.Options{}).Summaries
		}
		before := summarize()
		fpBefore := ipaPass(ip.prog, before, nil).ipaFactsFP(caller)

		// Tamper: insert one effectful instruction into the callee.
		g := ip.g
		if gSel%2 == 1 {
			g = ip.h
		}
		var tamper il.Instr
		switch opSel % 4 {
		case 0:
			tamper = il.Instr{Op: il.StoreG, Sym: g, A: il.ConstVal(val)}
		case 1:
			tamper = il.Instr{Op: il.LoadG, Dst: 2, Sym: g}
		case 2:
			tamper = il.Instr{Op: il.Probe, Sym: 0}
		case 3:
			// Effect-free tampering: the summary must NOT change, and
			// the facts fingerprint must not either (the body hash key
			// component covers body edits).
			tamper = il.Instr{Op: il.Const, Dst: 3, A: il.ConstVal(val)}
		}
		instrs := calleeBody.Blocks[0].Instrs
		calleeBody.Blocks[0].Instrs = append([]il.Instr{tamper}, instrs...)

		after := summarize()
		fpAfter := ipaPass(ip.prog, after, nil).ipaFactsFP(caller)

		sumChanged := before[callee].Fingerprint(ip.prog) != after[callee].Fingerprint(ip.prog)
		fpChanged := fpBefore != fpAfter
		if sumChanged != fpChanged {
			t.Fatalf("callee summary changed=%v but caller facts changed=%v\nbefore: %q\nafter:  %q",
				sumChanged, fpChanged, fpBefore, fpAfter)
		}
		if opSel%4 == 0 && !fpChanged {
			t.Fatalf("a new store to %s left the caller's replay facts unchanged: %q", ip.prog.Sym(g).Name, fpBefore)
		}
	})
}
