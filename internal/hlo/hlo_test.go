package hlo

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/profile"
	"cmo/internal/source"
)

func build(t *testing.T, srcs ...string) (*il.Program, map[il.PID]*il.Function) {
	t.Helper()
	var files []*source.File
	for i, s := range srcs {
		f, err := source.Parse(string(rune('a'+i))+".minc", s)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := source.Check(f); err != nil {
			t.Fatalf("check: %v", err)
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Prog, res.Funcs
}

func interp(t *testing.T, prog *il.Program, fns map[il.PID]*il.Function) int64 {
	t.Helper()
	it := il.NewInterp(prog, func(p il.PID) *il.Function { return fns[p] })
	v, err := it.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return v
}

// optimize clones all bodies, runs HLO on the clones, verifies them,
// and checks the result matches the unoptimized program.
func optimize(t *testing.T, prog *il.Program, fns map[il.PID]*il.Function, opts Options) (map[il.PID]*il.Function, *Result) {
	t.Helper()
	want := interp(t, prog, fns)
	work := make(map[il.PID]*il.Function, len(fns))
	for pid, f := range fns {
		work[pid] = f.Clone()
	}
	res, err := Optimize(prog, MapSource(work), opts)
	if err != nil {
		t.Fatalf("hlo: %v", err)
	}
	for pid, f := range work {
		if err := il.Verify(prog, f); err != nil {
			t.Fatalf("verify %s after HLO: %v\n%s", f.Name, err, f.Print(prog))
		}
		_ = pid
	}
	if got := interp(t, prog, work); got != want {
		t.Fatalf("HLO changed program result: %d != %d", got, want)
	}
	return work, res
}

// trainDB runs an instrumented build to produce a profile database.
func trainDB(t *testing.T, prog *il.Program, fns map[il.PID]*il.Function) *profile.DB {
	t.Helper()
	inst, m := profile.Instrument(prog, fns)
	it := il.NewInterp(prog, func(p il.PID) *il.Function { return inst[p] })
	if _, err := it.Run("main", nil, 0); err != nil {
		t.Fatalf("training run: %v", err)
	}
	counters := make([]int64, m.NumProbes())
	copy(counters, it.Probes)
	db := profile.FromCounters(m, counters)
	db.Apply(fns)
	return db
}

const crossModuleSrc1 = `module app;
extern func scale(x int) int;
extern func offset(x int) int;
func main() int {
	var s int = 0;
	for (var i int = 0; i < 50; i = i + 1) {
		s = s + scale(i) + offset(i);
	}
	return s;
}`

const crossModuleSrc2 = `module lib;
var factor int = 3;
func scale(x int) int { return x * factor; }
func offset(x int) int { return x + 7; }
func unused_helper(x int) int { return x * 99; }
`

func countOp(fns map[il.PID]*il.Function, op il.Op) int {
	n := 0
	for _, f := range fns {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestCMOInlinesAcrossModules(t *testing.T) {
	prog, fns := build(t, crossModuleSrc1, crossModuleSrc2)
	work, res := optimize(t, prog, fns, Options{})
	if res.Stats.Inlines == 0 || res.Stats.CrossModule == 0 {
		t.Errorf("no cross-module inlining happened: %+v", res.Stats)
	}
	mainFn := work[prog.Lookup("main").PID]
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.Call {
				t.Errorf("call to %s survived inlining in main", prog.Sym(in.Sym).Name)
			}
		}
	}
}

func TestDeadFunctionElimination(t *testing.T) {
	prog, fns := build(t, crossModuleSrc1, crossModuleSrc2)
	_, res := optimize(t, prog, fns, Options{})
	foundDead := false
	for _, pid := range res.Dead {
		if prog.Sym(pid).Name == "unused_helper" {
			foundDead = true
		}
		if prog.Sym(pid).Name == "main" {
			t.Error("main marked dead")
		}
	}
	if !foundDead {
		t.Error("unused_helper not found dead")
	}
	// After inlining, scale/offset have no remaining callers either.
	deadNames := map[string]bool{}
	for _, pid := range res.Dead {
		deadNames[prog.Sym(pid).Name] = true
	}
	if !deadNames["scale"] || !deadNames["offset"] {
		t.Errorf("fully inlined callees not dead: %v", deadNames)
	}
}

func TestIPCPConstantArguments(t *testing.T) {
	prog, fns := build(t, `module m;
func fma(a int, b int, c int) int { return a * b + c; }
func big(a int, b int, c int) int {
	var s int = 0;
	for (var i int = 0; i < c; i = i + 1) {
		s = s + fma(a, b, i) * fma(a, b, i + 1) + fma(a, b, i + 2) - fma(a, b, i + 3)
		      + fma(a, b, i + 4) * fma(a, b, i + 5) + fma(a, b, i + 6) + fma(a, b, i + 7)
		      + fma(a, b, i + 8) - fma(a, b, i + 9) + fma(a, b, i + 10) + fma(a, b, i + 11);
	}
	return s;
}
func main() int { return big(2, 5, 4) + big(2, 5, 9); }`)
	// big is too large to inline without profiles, and is always
	// called with a=2, b=5 -> IPCP should constant-fold its params.
	work, res := optimize(t, prog, fns, Options{})
	if res.Stats.IPCPParams < 2 {
		t.Errorf("IPCPParams = %d, want >= 2 (a and b of big)", res.Stats.IPCPParams)
	}
	_ = work
}

func TestConstGlobalPromotion(t *testing.T) {
	prog, fns := build(t, `module m;
var tuning int = 13;
var mutated int = 5;
func main() int {
	var s int = 0;
	mutated = mutated + 1;
	for (var i int = 0; i < 10; i = i + 1) { s = s + tuning * i + mutated; }
	return s;
}`)
	work, res := optimize(t, prog, fns, Options{})
	if res.Stats.ConstGlobals == 0 {
		t.Error("tuning not promoted to constant")
	}
	mainFn := work[prog.Lookup("main").PID]
	tuningPID := prog.Lookup("tuning").PID
	mutatedPID := prog.Lookup("mutated").PID
	loadsTuning, loadsMutated := 0, 0
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.LoadG && in.Sym == tuningPID {
				loadsTuning++
			}
			if in.Op == il.LoadG && in.Sym == mutatedPID {
				loadsMutated++
			}
		}
	}
	if loadsTuning != 0 {
		t.Errorf("%d loads of never-stored global survive", loadsTuning)
	}
	if loadsMutated == 0 {
		t.Error("loads of mutated global must survive")
	}
}

func TestVolatileGlobalNotPromoted(t *testing.T) {
	prog, fns := build(t, `module m;
var input int = 1;
func main() int { return input * 10; }`)
	vol := map[il.PID]bool{prog.Lookup("input").PID: true}
	work, res := optimize(t, prog, fns, Options{Volatile: vol})
	if res.Stats.ConstGlobals != 0 {
		t.Error("volatile global promoted to constant")
	}
	mainFn := work[prog.Lookup("main").PID]
	if countOp(map[il.PID]*il.Function{0: mainFn}, il.LoadG) == 0 {
		t.Error("volatile load disappeared")
	}
}

func TestRecursionNotInlined(t *testing.T) {
	prog, fns := build(t, `module m;
func even(n int) bool { if (n == 0) { return true; } return odd(n - 1); }
func odd(n int) bool { if (n == 0) { return false; } return even(n - 1); }
func main() int { if (even(10)) { return 1; } return 0; }`)
	work, _ := optimize(t, prog, fns, Options{})
	// even/odd are mutually recursive; each body must still contain a
	// call (the cycle cannot be fully flattened).
	evenFn := work[prog.Lookup("even").PID]
	oddFn := work[prog.Lookup("odd").PID]
	if countOp(map[il.PID]*il.Function{0: evenFn}, il.Call)+
		countOp(map[il.PID]*il.Function{1: oddFn}, il.Call) == 0 {
		t.Error("recursive cycle disappeared entirely")
	}
}

func TestFineGrainedSelectivity(t *testing.T) {
	prog, fns := build(t, crossModuleSrc1, crossModuleSrc2)
	mainPID := prog.Lookup("main").PID
	scalePID := prog.Lookup("scale").PID
	// Select only scale: main must remain byte-for-byte untouched.
	before := fns[mainPID].Print(prog)
	work := make(map[il.PID]*il.Function)
	for pid, f := range fns {
		work[pid] = f.Clone()
	}
	_, err := Optimize(prog, MapSource(work), Options{
		Selected: map[il.PID]bool{scalePID: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if work[mainPID].Print(prog) != before {
		t.Error("unselected function was modified")
	}
	if got := interp(t, prog, work); got != interp(t, prog, fns) {
		t.Error("selective optimization changed behavior")
	}
}

func TestPBOInliningUsesProfile(t *testing.T) {
	// hotfn is called 1000x from a loop, coldfn once; both are above
	// TinySize. With a profile, only the hot site should inline.
	src := `module m;
var sink int;
func hotfn(x int) int {
	var a int = x * 3; var b int = a + x; var c int = b * a - x;
	var d int = c % 1000; var e int = d + a + b + c;
	var f int = e * 2 - d; var g int = f + a * b; var h int = g % 313;
	var i int = h - f + e; var j int = i * 2 + d - c + b - a;
	var k int = j % 771 + i - h + g - f + e - d;
	return e - d + x * 2 - a + b - c + d * 3 + e + f - g + h - i + j - k;
}
func coldfn(x int) int {
	var a int = x * 5; var b int = a - x; var c int = b * a + x;
	var d int = c % 777; var e int = d - a - b + c;
	var f int = e * 3 + d; var g int = f - a * c; var h int = g % 217;
	var i int = h + f - e; var j int = i * 3 - d + c - b + a;
	var k int = j % 917 - i + h - g + f - e + d;
	return e + d - x * 9 + a - b + c - d * 2 - e + f + g - h + i - j + k;
}
func main() int {
	var s int = 0;
	for (var i int = 0; i < 1000; i = i + 1) { s = s + hotfn(i); }
	sink = coldfn(3);
	return s + sink;
}`
	prog, fns := build(t, src)
	db := trainDB(t, prog, fns)
	work, res := optimize(t, prog, fns, Options{DB: db})
	if res.Stats.Inlines == 0 {
		t.Fatal("no inlining with profile")
	}
	mainFn := work[prog.Lookup("main").PID]
	hotPID := prog.Lookup("hotfn").PID
	coldPID := prog.Lookup("coldfn").PID
	hotCalls, coldCalls := 0, 0
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.Call && in.Sym == hotPID {
				hotCalls++
			}
			if in.Op == il.Call && in.Sym == coldPID {
				coldCalls++
			}
		}
	}
	if hotCalls != 0 {
		t.Error("hot call site not inlined under PBO")
	}
	if coldCalls == 0 {
		t.Error("cold call site inlined despite profile saying cold")
	}
}

func TestHLODeterministic(t *testing.T) {
	run := func() string {
		prog, fns := build(t, crossModuleSrc1, crossModuleSrc2)
		work := make(map[il.PID]*il.Function)
		for pid, f := range fns {
			work[pid] = f.Clone()
		}
		if _, err := Optimize(prog, MapSource(work), Options{}); err != nil {
			t.Fatal(err)
		}
		return il.PrintProgram(prog, func(p il.PID) *il.Function { return work[p] })
	}
	if run() != run() {
		t.Error("HLO output not deterministic")
	}
}

func TestMissingEntry(t *testing.T) {
	prog, fns := build(t, `module m; func f() int { return 1; } func main() int { return f(); }`)
	if _, err := Optimize(prog, MapSource(fns), Options{Entry: "nonexistent"}); err == nil {
		t.Error("expected error for missing entry")
	}
}

func TestInlineGrowthCap(t *testing.T) {
	// A caller with very many call sites must stop inlining at the
	// growth cap rather than exploding.
	src := `module m;
func helper(x int) int {
	var a int = x + 1; var b int = a * 2; var c int = b - x;
	var d int = c * a; var e int = d % 97;
	var f int = e * 3 - a; var g int = f + b * c; var h int = g % 31;
	var i int = h * d - e; var j int = i + f - g + h;
	var k int = j * 2 + a - b; var l int = k % 13 + c;
	var n int = l * j - k; var o int = n + i - h + g - f;
	var p int = o % 7 + e * d; var q int = p - n + l - k + j;
	return a + b + c + d + e + f + g + h + i + j + k + l + n + o + p + q;
}
func main() int {
	var s int = 0;
`
	for i := 0; i < 120; i++ {
		src += "\ts = s + helper(s);\n"
	}
	src += "\treturn s;\n}"
	prog, fns := build(t, src)
	work, res := optimize(t, prog, fns, Options{})
	mainFn := work[prog.Lookup("main").PID]
	budget := DefaultBudget(false)
	cap := 0
	for _, f := range fns {
		if f.Name == "main" {
			cap = f.NumInstrs() * budget.GrowthFactor
		}
	}
	if cap > 0 && mainFn.NumInstrs() > cap+budget.MinCap {
		t.Errorf("caller grew to %d instrs, cap was %d", mainFn.NumInstrs(), cap)
	}
	if res.Stats.Inlines == 0 {
		t.Error("no inlining at all")
	}
	remaining := 0
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.Call {
				remaining++
			}
		}
	}
	if remaining == 0 {
		t.Error("growth cap did not stop inlining (all 120 sites inlined)")
	}
}

func TestSpliceVerifies(t *testing.T) {
	prog, fns := build(t, `module m;
func inner(a int, b int) int {
	if (a > b) { return a - b; }
	return b - a;
}
func main() int {
	var x int = inner(3, 9);
	var y int = inner(9, 3);
	return x * 100 + y;
}`)
	want := interp(t, prog, fns)
	mainFn := fns[prog.Lookup("main").PID]
	innerFn := fns[prog.Lookup("inner").PID]
	// Manually splice the first call site.
	for bi, b := range mainFn.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == il.Call {
				splice(mainFn, int32(bi), ii, innerFn, 0)
				if err := il.Verify(prog, mainFn); err != nil {
					t.Fatalf("verify after splice: %v\n%s", err, mainFn.Print(prog))
				}
				got := interp(t, prog, fns)
				if got != want {
					t.Fatalf("splice changed result: %d != %d", got, want)
				}
				return
			}
		}
	}
	t.Fatal("no call found")
}
