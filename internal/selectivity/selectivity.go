// Package selectivity implements the paper's profile-driven
// selectivity framework (section 5): deciding where the optimizer
// spends its time.
//
// Coarse-grained selectivity ranks every static call site in the
// program by profiled call frequency, retains a user-chosen
// percentage of the hottest sites, and selects for CMO exactly the
// modules containing the callers and callees of those sites. The
// remaining modules bypass HLO entirely and are compiled at the
// default optimization level.
//
// Fine-grained selectivity further restricts HLO's transformation
// work inside the selected modules to the routines participating in
// selected sites; all other routines are scanned once for
// whole-program facts and then left unloaded.
package selectivity

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cmo/internal/il"
	"cmo/internal/profile"
)

// Site is one static call site with its profiled count.
type Site struct {
	Key    profile.SiteKey
	Caller il.PID
	Callee il.PID
	Count  int64
}

// Choice is the outcome of selection.
type Choice struct {
	// Percent is the selection parameter that produced this choice.
	Percent float64
	// Sites are the selected call sites, hottest first.
	Sites []Site
	// Modules are the coarse-grained CMO module set (indexes into
	// Program.Modules).
	Modules map[int32]bool
	// Funcs is the fine-grained set of routines HLO may transform.
	Funcs map[il.PID]bool
	// TotalSites is the number of static call sites in the program.
	TotalSites int
	// SelectedLines approximates how many source lines the selected
	// modules contain.
	SelectedLines int
}

// EnumerateSites lists every static call site in the program, pulling
// bodies through src. Order is deterministic (PID, block, sequence).
func EnumerateSites(prog *il.Program, src func(il.PID) *il.Function, db *profile.DB) []Site {
	return EnumerateSitesJobs(prog, src, db, 1)
}

// siteScan collects one routine's call sites into dst.
func siteScan(prog *il.Program, pid il.PID, f *il.Function, db *profile.DB, dst *[]Site) {
	for bi, b := range f.Blocks {
		seq := int32(0)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != il.Call {
				continue
			}
			key := profile.SiteKey{
				Fn:     f.Name,
				Block:  int32(bi),
				Seq:    seq,
				Callee: prog.Sym(in.Sym).Name,
			}
			seq++
			var count int64
			if db != nil {
				count = db.SiteCount(key)
			}
			*dst = append(*dst, Site{Key: key, Caller: pid, Callee: in.Sym, Count: count})
		}
	}
}

// EnumerateSitesJobs is EnumerateSites fanned out over jobs
// goroutines. src must be safe for concurrent use (the NAIM loader
// is). Each routine's sites land in a per-PID slot and the slots are
// concatenated in PID order, so the result is byte-for-byte the
// sequential enumeration at any job count.
func EnumerateSitesJobs(prog *il.Program, src func(il.PID) *il.Function, db *profile.DB, jobs int) []Site {
	pids := prog.FuncPIDs()
	if jobs > len(pids) {
		jobs = len(pids)
	}
	if jobs <= 1 {
		var sites []Site
		for _, pid := range pids {
			if f := src(pid); f != nil {
				siteScan(prog, pid, f, db, &sites)
			}
		}
		return sites
	}
	slots := make([][]Site, len(pids))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pids) {
					return
				}
				if f := src(pids[i]); f != nil {
					siteScan(prog, pids[i], f, db, &slots[i])
				}
			}
		}()
	}
	wg.Wait()
	var sites []Site
	for _, s := range slots {
		sites = append(sites, s...)
	}
	return sites
}

// Select applies the user's selection percentage to the program's
// call sites. percent is clamped to [0, 100]; 0 selects nothing
// (pure default-level compilation) and 100 selects every site.
func Select(prog *il.Program, src func(il.PID) *il.Function, db *profile.DB, percent float64) *Choice {
	return SelectJobs(prog, src, db, percent, 1)
}

// SelectJobs is Select with the site enumeration fanned out over jobs
// goroutines (src must be concurrency-safe). The ranking, cut, and
// resulting Choice are identical at any job count.
func SelectJobs(prog *il.Program, src func(il.PID) *il.Function, db *profile.DB, percent float64, jobs int) *Choice {
	if percent < 0 {
		percent = 0
	}
	if percent > 100 {
		percent = 100
	}
	sites := EnumerateSitesJobs(prog, src, db, jobs)
	// Hottest first; deterministic tie-break on the key.
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].Count != sites[j].Count {
			return sites[i].Count > sites[j].Count
		}
		a, b := sites[i].Key, sites[j].Key
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Callee < b.Callee
	})
	keep := int(math.Ceil(float64(len(sites)) * percent / 100))
	if keep > len(sites) {
		keep = len(sites)
	}
	ch := &Choice{
		Percent:    percent,
		Sites:      sites[:keep],
		Modules:    make(map[int32]bool),
		Funcs:      make(map[il.PID]bool),
		TotalSites: len(sites),
	}
	for _, s := range ch.Sites {
		ch.Funcs[s.Caller] = true
		ch.Funcs[s.Callee] = true
		if m := prog.Sym(s.Caller).Module; m >= 0 {
			ch.Modules[m] = true
		}
		if m := prog.Sym(s.Callee).Module; m >= 0 {
			ch.Modules[m] = true
		}
	}
	for mi := range ch.Modules {
		ch.SelectedLines += prog.Modules[mi].Lines
	}
	return ch
}

// ModuleFuncs returns the defined functions of the selected modules
// (the coarse-grained CMO compilation set), in PID order.
func (c *Choice) ModuleFuncs(prog *il.Program) []il.PID {
	var out []il.PID
	for _, pid := range prog.FuncPIDs() {
		if c.Modules[prog.Sym(pid).Module] {
			out = append(out, pid)
		}
	}
	return out
}

// ScopeSet returns ModuleFuncs as a membership set — the form every
// downstream scope consumer takes (hlo.Options.Scope,
// ipa.Options.Scope), where a routine outside the set is summarized
// conservatively rather than transformed.
func (c *Choice) ScopeSet(prog *il.Program) map[il.PID]bool {
	set := make(map[il.PID]bool)
	for _, pid := range c.ModuleFuncs(prog) {
		set[pid] = true
	}
	return set
}
