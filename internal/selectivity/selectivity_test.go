package selectivity

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/profile"
	"cmo/internal/source"
)

const multiModSrc0 = `module hotmod;
extern func coldwork(x int) int;
func hotwork(x int) int { return x * 3; }
func main() int {
	var s int = 0;
	for (var i int = 0; i < 100; i = i + 1) { s = s + hotwork(i); }
	s = s + coldwork(s);
	return s;
}`

const multiModSrc1 = `module coldmod;
func coldwork(x int) int { return x - 1; }
`

const multiModSrc2 = `module deadmod;
func neverCalled(x int) int { return x; }
func alsoNever() int { return neverCalled(3); }
`

func setup(t *testing.T) (*il.Program, map[il.PID]*il.Function, *profile.DB) {
	t.Helper()
	var files []*source.File
	for i, s := range []string{multiModSrc0, multiModSrc1, multiModSrc2} {
		f, err := source.Parse(string(rune('a'+i))+".minc", s)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := source.Check(f); err != nil {
			t.Fatalf("check: %v", err)
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	inst, m := profile.Instrument(res.Prog, res.Funcs)
	it := il.NewInterp(res.Prog, func(p il.PID) *il.Function { return inst[p] })
	if _, err := it.Run("main", nil, 0); err != nil {
		t.Fatalf("train: %v", err)
	}
	counters := make([]int64, m.NumProbes())
	copy(counters, it.Probes)
	return res.Prog, res.Funcs, profile.FromCounters(m, counters)
}

func src(fns map[il.PID]*il.Function) func(il.PID) *il.Function {
	return func(p il.PID) *il.Function { return fns[p] }
}

func TestEnumerateSites(t *testing.T) {
	prog, fns, db := setup(t)
	sites := EnumerateSites(prog, src(fns), db)
	// main->hotwork, main->coldwork, alsoNever->neverCalled.
	if len(sites) != 3 {
		t.Fatalf("found %d sites, want 3", len(sites))
	}
	counts := map[string]int64{}
	for _, s := range sites {
		counts[s.Key.Callee] = s.Count
	}
	if counts["hotwork"] != 100 || counts["coldwork"] != 1 || counts["neverCalled"] != 0 {
		t.Errorf("site counts wrong: %v", counts)
	}
}

func TestSelectZeroPercent(t *testing.T) {
	prog, fns, db := setup(t)
	ch := Select(prog, src(fns), db, 0)
	if len(ch.Sites) != 0 || len(ch.Modules) != 0 || len(ch.Funcs) != 0 {
		t.Errorf("0%% selected something: %+v", ch)
	}
	if ch.TotalSites != 3 {
		t.Errorf("TotalSites = %d, want 3", ch.TotalSites)
	}
}

func TestSelectHottestFirst(t *testing.T) {
	prog, fns, db := setup(t)
	// 34% of 3 sites = 2 sites... use 33.4 -> ceil(1.002) = 2. Use a
	// small percentage that keeps exactly one site.
	ch := Select(prog, src(fns), db, 1)
	if len(ch.Sites) != 1 {
		t.Fatalf("selected %d sites, want 1", len(ch.Sites))
	}
	if ch.Sites[0].Key.Callee != "hotwork" {
		t.Errorf("hottest site is %s, want hotwork", ch.Sites[0].Key.Callee)
	}
	// hotmod contains both caller and callee.
	if len(ch.Modules) != 1 {
		t.Errorf("modules = %v, want just hotmod", ch.Modules)
	}
	if !ch.Funcs[prog.Lookup("main").PID] || !ch.Funcs[prog.Lookup("hotwork").PID] {
		t.Error("caller/callee functions not selected")
	}
	if ch.Funcs[prog.Lookup("coldwork").PID] {
		t.Error("cold function selected at 1%")
	}
}

func TestSelectPullsInCalleeModule(t *testing.T) {
	prog, fns, db := setup(t)
	// 60% of 3 sites -> ceil(1.8) = 2: hotwork site and coldwork site; coldmod
	// must join the CMO set because it defines the callee.
	ch := Select(prog, src(fns), db, 60)
	if len(ch.Sites) != 2 {
		t.Fatalf("selected %d sites, want 2", len(ch.Sites))
	}
	coldMod := prog.Lookup("coldwork").Module
	_ = coldMod
	sym := prog.Lookup("coldwork")
	if !ch.Modules[sym.Module] {
		t.Error("callee module not selected")
	}
}

func TestSelectHundredPercent(t *testing.T) {
	prog, fns, db := setup(t)
	ch := Select(prog, src(fns), db, 100)
	if len(ch.Sites) != 3 {
		t.Errorf("selected %d sites, want all 3", len(ch.Sites))
	}
	// All three modules participate (deadmod has a site too).
	if len(ch.Modules) != 3 {
		t.Errorf("modules = %v, want all 3", ch.Modules)
	}
	if ch.SelectedLines == 0 {
		t.Error("SelectedLines not accumulated")
	}
}

func TestSelectWithoutProfile(t *testing.T) {
	prog, fns, _ := setup(t)
	ch := Select(prog, src(fns), nil, 50)
	// Without a profile all counts are zero; selection still picks
	// deterministically by key order.
	if len(ch.Sites) != 2 {
		t.Errorf("selected %d sites, want ceil(1.5)=2", len(ch.Sites))
	}
}

func TestSelectClamping(t *testing.T) {
	prog, fns, db := setup(t)
	if got := Select(prog, src(fns), db, -5); len(got.Sites) != 0 {
		t.Error("negative percent not clamped")
	}
	if got := Select(prog, src(fns), db, 250); len(got.Sites) != 3 {
		t.Error("percent > 100 not clamped")
	}
}

func TestModuleFuncs(t *testing.T) {
	prog, fns, db := setup(t)
	ch := Select(prog, src(fns), db, 1)
	pids := ch.ModuleFuncs(prog)
	names := map[string]bool{}
	for _, pid := range pids {
		names[prog.Sym(pid).Name] = true
	}
	// hotmod defines main and hotwork.
	if !names["main"] || !names["hotwork"] {
		t.Errorf("ModuleFuncs missing hotmod functions: %v", names)
	}
	if names["coldwork"] || names["neverCalled"] {
		t.Errorf("ModuleFuncs leaked other modules: %v", names)
	}
}

func TestScopeSet(t *testing.T) {
	prog, fns, db := setup(t)
	ch := Select(prog, src(fns), db, 1)
	set := ch.ScopeSet(prog)
	pids := ch.ModuleFuncs(prog)
	if len(set) != len(pids) {
		t.Fatalf("ScopeSet has %d members, ModuleFuncs %d", len(set), len(pids))
	}
	for _, pid := range pids {
		if !set[pid] {
			t.Errorf("ScopeSet missing %s", prog.Sym(pid).Name)
		}
	}
}

func TestSelectJobsInvariant(t *testing.T) {
	prog, fns, db := setup(t)
	want := EnumerateSites(prog, src(fns), db)
	for _, jobs := range []int{2, 4, 8} {
		got := EnumerateSitesJobs(prog, src(fns), db, jobs)
		if len(got) != len(want) {
			t.Fatalf("jobs=%d: %d sites, want %d", jobs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d: site %d = %+v, want %+v", jobs, i, got[i], want[i])
			}
		}
	}
	seq := Select(prog, src(fns), db, 60)
	for _, jobs := range []int{2, 8} {
		par := SelectJobs(prog, src(fns), db, 60, jobs)
		if len(par.Sites) != len(seq.Sites) {
			t.Fatalf("jobs=%d: selected %d sites, want %d", jobs, len(par.Sites), len(seq.Sites))
		}
		for i := range seq.Sites {
			if par.Sites[i].Key != seq.Sites[i].Key {
				t.Fatalf("jobs=%d: site %d ranked differently", jobs, i)
			}
		}
		if len(par.Modules) != len(seq.Modules) || len(par.Funcs) != len(seq.Funcs) {
			t.Fatalf("jobs=%d: module/func sets differ from sequential", jobs)
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	prog, fns, db := setup(t)
	a := Select(prog, src(fns), db, 60)
	b := Select(prog, src(fns), db, 60)
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("site counts differ")
	}
	for i := range a.Sites {
		if a.Sites[i].Key != b.Sites[i].Key {
			t.Fatal("selection not deterministic")
		}
	}
}
