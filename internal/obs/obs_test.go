package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests. It
// is not goroutine-safe; concurrent tests use the real clock.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) tick(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) clock() time.Time     { return c.now }

func TestSpanHierarchy(t *testing.T) {
	fc := newFakeClock()
	tr := newTraceClocked(fc.clock)

	root := tr.StartSpan("build")
	if !root.Enabled() {
		t.Fatal("root span on a live trace should be enabled")
	}
	fc.tick(time.Millisecond)
	child := root.ChildDetail("frontend", "8 modules")
	fc.tick(2 * time.Millisecond)
	if d := child.End(); d != 2*time.Millisecond.Nanoseconds() {
		t.Errorf("child duration = %d, want 2ms", d)
	}
	fc.tick(time.Millisecond)
	if d := root.End(); d != 4*time.Millisecond.Nanoseconds() {
		t.Errorf("root duration = %d, want 4ms", d)
	}

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: the child ends first.
	c, r := spans[0], spans[1]
	if c.Name != "frontend" || r.Name != "build" {
		t.Fatalf("span order = %q, %q; want frontend, build", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Errorf("child.Parent = %d, want root ID %d", c.Parent, r.ID)
	}
	if r.Parent != 0 {
		t.Errorf("root.Parent = %d, want 0", r.Parent)
	}
	if c.Detail != "8 modules" {
		t.Errorf("child.Detail = %q", c.Detail)
	}
	if r.Start != 0 || c.Start != time.Millisecond.Nanoseconds() {
		t.Errorf("starts = %d, %d; want 0, 1ms", r.Start, c.Start)
	}
}

func TestSpanEventAndElapsed(t *testing.T) {
	fc := newFakeClock()
	tr := newTraceClocked(fc.clock)
	sp := tr.StartSpan("phase")
	fc.tick(3 * time.Millisecond)
	if e := sp.Elapsed(); e != 3*time.Millisecond.Nanoseconds() {
		t.Errorf("Elapsed = %d, want 3ms", e)
	}
	sp.Event("checkpoint")
	tr.Event("global")
	sp.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "checkpoint" || evs[0].Parent == 0 {
		t.Errorf("span event = %+v, want checkpoint with non-zero parent", evs[0])
	}
	if evs[1].Name != "global" || evs[1].Parent != 0 {
		t.Errorf("trace event = %+v, want global at root", evs[1])
	}
}

func TestCounter(t *testing.T) {
	tr := NewTrace()
	c := tr.Counter("naim.cache_hits")
	if c2 := tr.Counter("naim.cache_hits"); c2 != c {
		t.Fatal("Counter should return the same instance for the same name")
	}
	c.Add(5)
	c.Add(-2)
	if v := c.Value(); v != 3 {
		t.Errorf("Value = %d, want 3", v)
	}
	c.Set(10)
	if v := c.Value(); v != 10 {
		t.Errorf("after Set, Value = %d, want 10", v)
	}
	if n := c.Name(); n != "naim.cache_hits" {
		t.Errorf("Name = %q", n)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("build")
	if sp.Enabled() {
		t.Fatal("span from nil trace should be disabled")
	}
	if sp.Trace() != nil {
		t.Fatal("disabled span should report a nil trace")
	}
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("disabled span End = %d, want a real positive duration", d)
	}
	child := sp.Child("phase")
	child.Event("e")
	child.End()
	tr.Event("global")
	if c := tr.Counter("n"); c != nil {
		t.Errorf("Counter on nil trace = %v, want nil", c)
	}
	var cnt *Counter
	cnt.Add(1)
	cnt.Set(2)
	if v := cnt.Value(); v != 0 {
		t.Errorf("nil counter Value = %d, want 0", v)
	}
	if n := cnt.Name(); n != "" {
		t.Errorf("nil counter Name = %q, want empty", n)
	}
	if s := tr.Spans(); s != nil {
		t.Errorf("nil trace Spans = %v, want nil", s)
	}
	if e := tr.Events(); e != nil {
		t.Errorf("nil trace Events = %v, want nil", e)
	}
}

// TestNilTraceAllocFree pins the zero-cost contract: the disabled hot
// path performs no heap allocation per span/event/counter operation.
func TestNilTraceAllocFree(t *testing.T) {
	var tr *Trace
	cnt := tr.Counter("n") // nil
	allocs := testing.AllocsPerRun(200, func() {
		root := tr.StartSpan("build")
		phase := root.Child("hlo")
		leaf := phase.ChildDetail("naim compact", "m0")
		leaf.Event("e")
		leaf.End()
		_ = phase.Elapsed()
		phase.End()
		root.End()
		tr.Event("global")
		cnt.Add(1)
	})
	if allocs != 0 {
		t.Errorf("nil-trace path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentEmission exercises the goroutine-safety contract (run
// under -race): many workers record spans, events, and counters into
// one trace, as Jobs > 1 pipeline phases do.
func TestConcurrentEmission(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan("build")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.ChildDetail("codegen", "fn")
				sp.Event("emit")
				tr.Counter("units").Add(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	if got, want := len(tr.Spans()), workers*perWorker+1; got != want {
		t.Errorf("got %d spans, want %d", got, want)
	}
	if got, want := len(tr.Events()), workers*perWorker; got != want {
		t.Errorf("got %d events, want %d", got, want)
	}
	if got, want := tr.Counter("units").Value(), int64(workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	ids := make(map[uint64]bool)
	for _, s := range tr.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = true
	}
}
