package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Chrome trace-event JSON.

// WriteChromeTrace renders the trace in the Chrome trace-event JSON
// array format, loadable in chrome://tracing and Perfetto. Spans
// become complete ("X") events with microsecond timestamps; instant
// events become thread-scoped "i" events on their enclosing span's
// track. Tracks (tids) are assigned so that nested spans share a track
// with their ancestors while overlapping siblings (concurrent phases)
// get distinct tracks — Chrome nests X events on one track by time
// containment, so the visual hierarchy matches the span hierarchy.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	spans := t.Spans()
	events := t.Events()
	lane := assignLanes(spans)

	var sb strings.Builder
	sb.WriteString("[\n")
	sb.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"cmo build pipeline"}}`)

	// Spans, sorted by start for a readable file (Chrome does not
	// require ordering; determinism helps diffing and golden tests).
	order := sortedSpanOrder(spans)
	for _, i := range order {
		s := spans[i]
		sb.WriteString(",\n")
		fmt.Fprintf(&sb, `{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s`,
			strconv.Quote(s.Name), lane[s.ID]+1, micros(s.Start), micros(s.Dur))
		if s.Detail != "" {
			fmt.Fprintf(&sb, `,"args":{"detail":%s}`, strconv.Quote(s.Detail))
		}
		sb.WriteString("}")
	}

	// Instant events ride on their parent span's track.
	evs := append([]EventRecord(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	for _, e := range evs {
		tid := 1
		if l, ok := lane[e.Parent]; ok {
			tid = l + 1
		}
		sb.WriteString(",\n")
		fmt.Fprintf(&sb, `{"name":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s}`,
			strconv.Quote(e.Name), tid, micros(e.Ts))
	}

	// Counter totals as a final snapshot ("C") event, in the one
	// sorted order CounterSnapshot defines for every renderer.
	for _, c := range t.CounterSnapshot() {
		sb.WriteString(",\n")
		fmt.Fprintf(&sb, `{"name":%s,"ph":"C","pid":1,"ts":%s,"args":{"value":%d}}`,
			strconv.Quote(c.Name), micros(t.latestNanos(spans, events)), c.Value)
	}
	sb.WriteString("\n]\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// micros renders nanoseconds as microseconds with fixed three-decimal
// precision (the trace-event format's ts/dur unit).
func micros(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// sortedSpanOrder returns span indexes ordered by (start, -dur, id):
// parents before the children they enclose.
func sortedSpanOrder(spans []SpanRecord) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		x, y := spans[order[a]], spans[order[b]]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.Dur != y.Dur {
			return x.Dur > y.Dur
		}
		return x.ID < y.ID
	})
	return order
}

// assignLanes maps each span ID to a track such that a span shares a
// track with any span that fully contains it in time, while spans that
// merely overlap (concurrent siblings) are pushed to fresh tracks.
func assignLanes(spans []SpanRecord) map[uint64]int {
	type ival struct{ start, end int64 }
	var lanes [][]ival // per lane: stack of open enclosing intervals
	lane := make(map[uint64]int, len(spans))
	for _, i := range sortedSpanOrder(spans) {
		s := spans[i]
		iv := ival{s.Start, s.Start + s.Dur}
		placed := false
		for li := range lanes {
			st := lanes[li]
			for len(st) > 0 && st[len(st)-1].end <= iv.start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || (st[len(st)-1].start <= iv.start && st[len(st)-1].end >= iv.end) {
				lanes[li] = append(st, iv)
				lane[s.ID] = li
				placed = true
				break
			}
			lanes[li] = st
		}
		if !placed {
			lanes = append(lanes, []ival{iv})
			lane[s.ID] = len(lanes) - 1
		}
	}
	return lane
}

func (t *Trace) latestNanos(spans []SpanRecord, events []EventRecord) int64 {
	var max int64
	for _, s := range spans {
		if e := s.Start + s.Dur; e > max {
			max = e
		}
	}
	for _, e := range events {
		if e.Ts > max {
			max = e.Ts
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// Phase tree.

// PhaseTree renders the span hierarchy as stable, diffable text: one
// line per distinct span name at each level, in first-start order,
// with repeat counts — no timestamps or durations, so two builds of
// the same program produce byte-identical trees regardless of machine
// speed or Jobs-induced interleaving.
func (t *Trace) PhaseTree() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	children := make(map[uint64][]int)
	for _, i := range sortedSpanOrder(spans) {
		children[spans[i].Parent] = append(children[spans[i].Parent], i)
	}
	var sb strings.Builder
	var render func(parent uint64, depth int)
	render = func(parent uint64, depth int) {
		// Aggregate same-name siblings, keeping first-start order.
		type group struct {
			name string
			n    int
			kids []uint64
		}
		var groups []*group
		byName := make(map[string]*group)
		for _, i := range children[parent] {
			s := spans[i]
			g := byName[s.Name]
			if g == nil {
				g = &group{name: s.Name}
				byName[s.Name] = g
				groups = append(groups, g)
			}
			g.n++
			g.kids = append(g.kids, s.ID)
		}
		for _, g := range groups {
			sb.WriteString(strings.Repeat("  ", depth))
			sb.WriteString(g.name)
			if g.n > 1 {
				fmt.Fprintf(&sb, " ×%d", g.n)
			}
			sb.WriteString("\n")
			// Children of every instance of the group render together
			// (they aggregate by name below anyway).
			for _, id := range g.kids {
				if len(children[id]) > 0 {
					render(id, depth+1)
					break // one representative: same-name siblings repeat structure
				}
			}
		}
	}
	render(0, 0)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Metrics JSON.

// WriteMetrics renders a machine-readable snapshot: every counter, and
// per-span-name duration aggregates (count, total, max). Keys are
// sorted, so the output is deterministic given deterministic inputs.
func (t *Trace) WriteMetrics(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	type agg struct {
		count int64
		total int64
		max   int64
	}
	aggs := make(map[string]*agg)
	for _, s := range t.Spans() {
		a := aggs[s.Name]
		if a == nil {
			a = &agg{}
			aggs[s.Name] = a
		}
		a.count++
		a.total += s.Dur
		if s.Dur > a.max {
			a.max = s.Dur
		}
	}
	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("{\n  \"counters\": {")
	for i, c := range t.CounterSnapshot() {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "\n    %s: %d", strconv.Quote(c.Name), c.Value)
	}
	sb.WriteString("\n  },\n  \"spans\": {")
	for i, n := range names {
		if i > 0 {
			sb.WriteString(",")
		}
		a := aggs[n]
		fmt.Fprintf(&sb, "\n    %s: {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d}",
			strconv.Quote(n), a.count, a.total, a.max)
	}
	sb.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
