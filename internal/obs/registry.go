package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is the daemon-lifetime aggregation point: where per-build
// traces die with their build, the registry's counters, histograms,
// and gauges live as long as the process and answer fleet questions —
// p99 build latency over the last hour, hit rates, queue pressure —
// without retaining a single whole trace.
//
// Identities follow Prometheus naming: a metric name, optionally with
// a fixed label set baked in ("cmod_build_stage_seconds{stage=\"hlo\"}",
// built with LabeledName). The family — the part before '{' — groups
// series for HELP/TYPE in the exposition. All lookups are
// lock-protected but expected to happen once at setup; the returned
// Counter/Histogram pointers are then lock-free on the hot path.
//
// A nil *Registry is valid everywhere and disables all recording:
// every getter returns the nil no-op form of its instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() float64
	help     map[string]string // family -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() float64),
		help:     make(map[string]string),
	}
}

// LabeledName renders a metric identity with a fixed label set:
// LabeledName("x_seconds", "stage", "hlo") == `x_seconds{stage="hlo"}`.
// Pairs must come key, value, key, value, …; keys render in the order
// given (pass them sorted if multiple series of one family must sort
// deterministically).
func LabeledName(name string, pairs ...string) string {
	if len(pairs) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", pairs[i], pairs[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// familyOf strips the label suffix from an identity.
func familyOf(identity string) string {
	if i := strings.IndexByte(identity, '{'); i >= 0 {
		return identity[:i]
	}
	return identity
}

// Counter returns the named cumulative counter, creating it on first
// use. Nil registry returns nil (a valid no-op counter).
func (r *Registry) Counter(identity string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[identity]
	if c == nil {
		c = &Counter{name: identity}
		r.counters[identity] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the first bounds).
// Nil registry returns nil (a valid no-op histogram).
func (r *Registry) Histogram(identity string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[identity]
	if h == nil {
		h = newHistogram(identity, bounds)
		r.hists[identity] = h
	}
	return h
}

// Gauge registers a callback sampled at exposition time — the shape
// live figures (queue depth, open sessions, uptime) want, since the
// truth already lives in the server's own state. Re-registering a name
// replaces the callback. No-op on nil.
func (r *Registry) Gauge(identity string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[identity] = fn
	r.mu.Unlock()
}

// SetHelp attaches a HELP line to a metric family. No-op on nil.
func (r *Registry) SetHelp(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = help
	r.mu.Unlock()
}

// Histograms returns a sorted snapshot of every histogram — the
// inspector's raw material.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]HistogramSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	return out
}

// CounterValues returns a sorted snapshot of every registry counter.
func (r *Registry) CounterValues() []CounterValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]CounterValue, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, CounterValue{Name: name, Value: c.Value()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
