package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 2, 10))
	for _, v := range []float64{0.0005, 0.003, 0.003, 0.1, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 0.0005+0.003+0.003+0.1+5000; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if s.Min != 0.0005 || s.Max != 5000 {
		t.Errorf("min/max = %v/%v, want 0.0005/5000", s.Min, s.Max)
	}
	// 0.0005 lands in the first (le=0.001) bucket; 5000 beyond the
	// last bound lands in the +Inf bucket.
	if s.Counts[0] != 1 {
		t.Errorf("first bucket = %d, want 1", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	// A value exactly on a bound belongs to that bound's bucket (le
	// semantics): 0.001*2 == 0.002 is bounds[1].
	h2 := r.Histogram("edge_seconds", []float64{1, 2, 4})
	h2.Observe(2)
	if s2 := h2.Snapshot(); s2.Counts[1] != 1 {
		t.Errorf("on-bound observation in bucket %v, want index 1", s2.Counts)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram("q", ExpBuckets(1, 2, 12))
	// 1000 observations uniform in [0, 100).
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 10)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.5, 50, 15}, // bucket (32,64] interpolated
		{0.9, 90, 15}, // bucket (64,128] clamped to max
		{0.99, 99, 10},
		{0, 0, 0.001},
		{1, 99.9, 0.001},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram("conc", ExpBuckets(1, 2, 8))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	// Concurrent snapshots must always be internally consistent:
	// Count == sum of bucket counts (by construction) and monotone.
	var last int64
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		var sum int64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Count {
			t.Errorf("torn snapshot: bucket sum %d != count %d", sum, s.Count)
		}
		if s.Count < last {
			t.Errorf("count went backwards: %d -> %d", last, s.Count)
		}
		last = s.Count
		select {
		case <-done:
			if f := h.Snapshot(); f.Count != workers*per {
				t.Errorf("final count = %d, want %d", f.Count, workers*per)
			}
			return
		default:
		}
	}
}

func TestRegistryPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("cmod_build_duration_seconds", "Wall time per build.")
	h := r.Histogram("cmod_build_duration_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(50)
	for _, stage := range []string{"frontend", "hlo"} {
		sh := r.Histogram(LabeledName("cmod_build_stage_seconds", "stage", stage), []float64{0.01, 0.1})
		sh.Observe(0.02)
	}
	r.Counter(LabeledName("cmod_builds_total", "outcome", "ok")).Add(3)
	r.Gauge("cmod_uptime_seconds", func() float64 { return 12.5 })
	extra := []CounterValue{
		{Name: "serve.completed", Value: 3},
		{Name: "session.frontend_hits", Value: 8},
	}

	var a, b strings.Builder
	if err := r.WritePrometheus(&a, "cmod", extra); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b, "cmod", extra); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("exposition not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE cmod_build_duration_seconds histogram",
		"# HELP cmod_build_duration_seconds Wall time per build.",
		`cmod_build_duration_seconds_bucket{le="0.01"} 1`,
		`cmod_build_duration_seconds_bucket{le="+Inf"} 3`,
		"cmod_build_duration_seconds_count 3",
		`cmod_build_stage_seconds_bucket{stage="frontend",le="0.1"} 1`,
		`cmod_build_stage_seconds_sum{stage="hlo"}`,
		`cmod_builds_total{outcome="ok"} 3`,
		"# TYPE cmod_uptime_seconds gauge",
		"cmod_uptime_seconds 12.5",
		"# TYPE cmod_serve_completed untyped",
		"cmod_serve_completed 3",
		"cmod_session_frontend_hits 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several labeled series.
	if n := strings.Count(out, "# TYPE cmod_build_stage_seconds histogram"); n != 1 {
		t.Errorf("stage family has %d TYPE headers, want 1", n)
	}
}

func TestCounterSnapshotSorted(t *testing.T) {
	tr := NewTrace()
	for _, n := range []string{"z.last", "a.first", "m.mid"} {
		tr.Counter(n).Add(1)
	}
	snap := tr.CounterSnapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	var nt *Trace
	if nt.CounterSnapshot() != nil {
		t.Error("nil trace snapshot should be nil")
	}
}

func TestMergeCounters(t *testing.T) {
	dst, src := NewTrace(), NewTrace()
	dst.Counter("shared").Add(2)
	src.Counter("shared").Add(3)
	src.Counter("fresh").Add(7)
	dst.MergeCounters(src)
	if got := dst.Counter("shared").Value(); got != 5 {
		t.Errorf("shared = %d, want 5", got)
	}
	if got := dst.Counter("fresh").Value(); got != 7 {
		t.Errorf("fresh = %d, want 7", got)
	}
	dst.MergeCounters(nil) // no-op
	var nt *Trace
	nt.MergeCounters(src) // no-op
}

// TestObsDisabledZeroAlloc extends the TestVerifyOffZeroAlloc contract
// to the new instruments: every disabled obs path — nil registry, nil
// histogram, nil counter, spans from a nil trace — must allocate
// nothing, so a daemon with telemetry off (or a plain CLI build) pays
// only nil checks.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var reg *Registry
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		h := reg.Histogram("x", nil)
		h.Observe(1.5)
		h.ObserveNanos(12345)
		reg.Counter("c").Add(1)
		reg.Gauge("g", nil)
		sp := tr.StartSpan("s")
		sp.Child("c").End()
		sp.End()
		tr.Counter("tc").Add(1)
		tr.MergeCounters(nil)
	})
	if allocs != 0 {
		t.Errorf("disabled obs paths allocate %.1f times per op, want 0", allocs)
	}
}
