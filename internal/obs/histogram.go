package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution recorder built for the
// daemon's lifetime: many builds observe into it concurrently, a
// scraper snapshots it concurrently, and neither ever takes a lock.
// Each bucket is an independent atomic counter; sum, min, and max are
// atomics updated with CAS loops. A snapshot is therefore not a
// perfectly consistent cut — an observation landing mid-snapshot may
// be counted in a bucket but not yet in the sum — but every individual
// figure is monotone and the bucket counts are always internally
// consistent (Snapshot derives Count from the buckets themselves, so
// the +Inf cumulative bucket equals _count by construction, which is
// the invariant Prometheus clients rely on).
//
// A nil *Histogram ignores all observations, so callers cache the
// pointer once and observe unconditionally — the disabled path is one
// nil check, zero allocations.
type Histogram struct {
	name   string
	bounds []float64 // sorted strict upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, +Inf until first observation
	max    atomic.Uint64 // float64 bits, -Inf until first observation
}

func newHistogram(name string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		name:   name,
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// ExpBuckets returns n exponential upper bounds: start, start*factor,
// start*factor², ... — the shape latency and byte distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds starting at
// start — the shape bounded ratios (hit rates) want.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Name reports the histogram's registration name (including any label
// suffix), "" for nil.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. Safe for concurrent use; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket index: first bound >= v (le semantics), else the +Inf
	// bucket. The bounds slice is immutable after construction, so the
	// search is lock-free.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	casAdd(&h.sum, v)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

// ObserveNanos records a duration given in nanoseconds as seconds —
// the unit every *_seconds histogram is registered in.
func (h *Histogram) ObserveNanos(ns int64) {
	if h == nil {
		return
	}
	h.Observe(float64(ns) / 1e9)
}

func casAdd(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is one scrape of a histogram: per-bucket counts
// (non-cumulative, one per bound plus the final +Inf bucket), the
// derived total count, and the sum/min/max of observed values.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Min    float64 // zero value when Count == 0
	Max    float64
}

// Snapshot reads the histogram's current state. Count is the sum of
// the bucket counts read in one pass, so Count and Counts always agree
// even while observations land concurrently.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	return s
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank, clamped to
// the observed [Min, Max]. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		v := lo + (hi-lo)*(rank-prev)/float64(c)
		return clamp(v, s.Min, s.Max)
	}
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
