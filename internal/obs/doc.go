// Package obs is the build pipeline's observability layer: a
// lightweight, zero-dependency tracing and metrics facility in the
// spirit of the paper's section 6.2 — "good compiler diagnostics on
// what the compiler is optimizing are essential" — extended from
// *what* was optimized (cmo.SelectionReport) to *when* and *at what
// cost* (the measurements behind the paper's Figures 4-6).
//
// The model is deliberately small:
//
//   - A Trace collects hierarchical Spans (timed intervals), instant
//     Events, and named Counters. All recording is goroutine-safe, so
//     Jobs > 1 pipeline phases can emit concurrently.
//   - A Span is a plain value, not a pointer: starting one performs no
//     heap allocation, and a span started from a nil *Trace is a cheap
//     no-op that records nothing. Disabled spans still read the
//     monotonic clock, so durations derived from Span.End (the
//     pipeline's BuildStats fields) stay live when tracing is off —
//     exactly the cost the hand-rolled time.Since bookkeeping paid.
//   - Exporters (export.go) render a trace as Chrome trace-event JSON
//     (chrome://tracing, Perfetto), a stable phase tree for diffing,
//     and a machine-readable metrics snapshot (WriteMetrics, the body
//     of the cmod daemon's /metrics.json endpoint).
//   - A Registry (registry.go) aggregates *across* traces: lock-free
//     Histograms (histogram.go) of per-build figures, monotonic
//     Counters, and sampled-at-scrape Gauges, rendered in Prometheus
//     text exposition format (prometheus.go, the cmod daemon's
//     /metrics endpoint). A registry holds fixed-size buckets, never
//     spans, so it is safe to keep for a server's whole life.
//
// # Naming conventions
//
// Span names are stable identities that exporters aggregate by, so
// they are short, lower-case, and never carry per-instance data — the
// varying part (module name, routine name, request id) goes in the
// detail argument of ChildDetail. Pipeline phases use bare names
// ("build", "frontend", "hlo", "llo", "link", "verify", "select");
// subsystem spans prefix their owner ("naim compact", "naim disk
// write", "serve build"). Counter names are dotted
// subsystem.measure paths — naim.cache_hits, session.frontend_hits,
// serve.queue_depth — and _nanos/_ns suffixes mark durations. A new
// span or counter name should follow the same shape or the phase
// tree and metrics snapshot stop being diffable across builds.
//
// Registry series follow Prometheus conventions instead: full metric
// names with a product prefix and a unit suffix
// (cmod_build_duration_seconds, cmod_build_naim_peak_bytes), counters
// ending in _total, and label dimensions attached with
// LabeledName("cmod_build_stage_seconds", "stage", "hlo") — the part
// before the brace is the family, and every series of a family must
// carry the same label keys. Trace counters crossing into an
// exposition are sanitized by SanitizeMetricName: dots become
// underscores under the same prefix (session.frontend_hits ->
// cmod_session_frontend_hits), rendered untyped so their trace-side
// names stay canonical.
package obs
