package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleTrace builds a deterministic pipeline-shaped trace: the same
// hierarchy the real build emits (frontend/hlo/llo/link with NAIM
// loader activity nested under hlo), on a fake clock.
func sampleTrace() *Trace {
	fc := newFakeClock()
	tr := newTraceClocked(fc.clock)
	ms := func(n int) { fc.tick(time.Duration(n) * time.Millisecond) }

	root := tr.StartSpan("build")
	fe := root.Child("frontend")
	p1 := fe.ChildDetail("parse", "app.minc")
	ms(2)
	p1.End()
	p2 := fe.ChildDetail("parse", "lib.minc")
	ms(1)
	p2.End()
	lw := fe.Child("lower")
	ms(1)
	lw.End()
	fe.End()

	hlo := root.Child("hlo")
	inl := hlo.Child("inline")
	ms(3)
	inl.End()
	cp := hlo.ChildDetail("naim compact", "lib")
	ms(1)
	cp.End()
	ex := hlo.ChildDetail("naim expand", "lib")
	ms(1)
	ex.End()
	hlo.Event("select done")
	hlo.End()

	llo := root.Child("llo")
	c1 := llo.ChildDetail("codegen", "main")
	ms(2)
	c1.End()
	c2 := llo.ChildDetail("codegen", "helper")
	ms(1)
	c2.End()
	llo.End()

	lk := root.Child("link")
	ms(1)
	lk.End()
	root.End()

	tr.Counter("naim.cache_hits").Add(3)
	tr.Counter("naim.cache_misses").Add(1)
	tr.Counter("naim.compactions").Add(1)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceValidJSON checks the exporter's output parses as a
// trace-event array with the fields Chrome/Perfetto require.
func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
		if ph == "X" {
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("X event missing numeric ts: %v", e)
			}
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("X event missing numeric dur: %v", e)
			}
		}
	}
	if phases["X"] == 0 || phases["i"] == 0 || phases["C"] == 0 || phases["M"] == 0 {
		t.Errorf("phase mix = %v, want X, i, C, and M events", phases)
	}
	for _, want := range []string{"build", "frontend", "hlo", "llo", "link", "naim compact", "naim expand", "naim.cache_hits"} {
		if !names[want] {
			t.Errorf("trace is missing an event named %q", want)
		}
	}
}

func TestNilTraceExports(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("nil Chrome trace = %q, want empty array", got)
	}
	buf.Reset()
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{}\n" {
		t.Errorf("nil metrics = %q, want empty object", got)
	}
	if got := tr.PhaseTree(); got != "" {
		t.Errorf("nil phase tree = %q, want empty", got)
	}
}

// TestAssignLanes pins the track-assignment rule: nesting shares a
// lane, mere overlap (concurrent siblings) forces a new lane, and a
// later span reuses the first lane whose stack admits it.
func TestAssignLanes(t *testing.T) {
	spans := []SpanRecord{
		{ID: 1, Name: "root", Start: 0, Dur: 100},
		{ID: 2, Parent: 1, Name: "a", Start: 10, Dur: 30},
		{ID: 3, Parent: 1, Name: "b", Start: 20, Dur: 30}, // overlaps a
		{ID: 4, Parent: 2, Name: "a1", Start: 12, Dur: 5}, // nested in a
		{ID: 5, Parent: 1, Name: "c", Start: 60, Dur: 10}, // after both
	}
	lane := assignLanes(spans)
	want := map[uint64]int{1: 0, 2: 0, 4: 0, 3: 1, 5: 0}
	for id, wl := range want {
		if lane[id] != wl {
			t.Errorf("lane[%d] = %d, want %d (full map: %v)", id, lane[id], wl, lane)
		}
	}
}

func TestPhaseTree(t *testing.T) {
	got := sampleTrace().PhaseTree()
	want := strings.Join([]string{
		"build",
		"  frontend",
		"    parse ×2",
		"    lower",
		"  hlo",
		"    inline",
		"    naim compact",
		"    naim expand",
		"  llo",
		"    codegen ×2",
		"  link",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("PhaseTree:\n%s\nwant:\n%s", got, want)
	}
	// Stability: a second identical trace renders byte-identically.
	if again := sampleTrace().PhaseTree(); again != got {
		t.Error("PhaseTree is not deterministic across identical traces")
	}
}

func TestWriteMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
		Spans    map[string]struct {
			Count   int64 `json:"count"`
			TotalNs int64 `json:"total_ns"`
			MaxNs   int64 `json:"max_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v\n%s", err, buf.String())
	}
	if m.Counters["naim.cache_hits"] != 3 || m.Counters["naim.cache_misses"] != 1 {
		t.Errorf("counters = %v", m.Counters)
	}
	cg := m.Spans["codegen"]
	if cg.Count != 2 {
		t.Errorf("codegen count = %d, want 2", cg.Count)
	}
	if cg.TotalNs != 3*time.Millisecond.Nanoseconds() {
		t.Errorf("codegen total = %d, want 3ms", cg.TotalNs)
	}
	if cg.MaxNs != 2*time.Millisecond.Nanoseconds() {
		t.Errorf("codegen max = %d, want 2ms", cg.MaxNs)
	}
	if m.Spans["build"].Count != 1 {
		t.Errorf("build count = %d, want 1", m.Spans["build"].Count)
	}
}
