package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span as stored by the trace. Times are
// nanoseconds relative to the trace epoch.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Detail string // optional high-cardinality payload (routine name, ...)
	Start  int64
	Dur    int64
}

// EventRecord is one instant event.
type EventRecord struct {
	Parent uint64 // enclosing span ID (0 = trace root)
	Name   string
	Ts     int64
}

// Trace accumulates spans, events, and counters for one build (or one
// benchmark session). The zero value is not usable; call NewTrace. A
// nil *Trace is valid everywhere and disables all recording.
type Trace struct {
	epoch time.Time
	clock func() time.Time // test hook; time.Now in production

	nextID atomic.Uint64

	mu       sync.Mutex
	spans    []SpanRecord
	events   []EventRecord
	counters map[string]*Counter
}

// NewTrace creates an empty trace whose epoch is now.
func NewTrace() *Trace {
	return &Trace{
		epoch:    time.Now(),
		clock:    time.Now,
		counters: make(map[string]*Counter),
	}
}

// newTraceClocked is the test constructor: a deterministic clock makes
// exporter output reproducible (golden files).
func newTraceClocked(clock func() time.Time) *Trace {
	t := &Trace{clock: clock, counters: make(map[string]*Counter)}
	t.epoch = clock()
	return t
}

func (t *Trace) now() time.Time {
	if t == nil {
		return time.Now()
	}
	return t.clock()
}

// StartSpan opens a root-level span. On a nil trace the returned span
// is disabled: it allocates nothing and records nothing, but End still
// reports a real duration.
func (t *Trace) StartSpan(name string) Span {
	s := Span{start: t.now()}
	if t == nil {
		return s
	}
	s.tr = t
	s.id = t.nextID.Add(1)
	s.name = name
	return s
}

// Event records an instant event at the trace root.
func (t *Trace) Event(name string) {
	if t == nil {
		return
	}
	ts := t.clock().Sub(t.epoch).Nanoseconds()
	t.mu.Lock()
	t.events = append(t.events, EventRecord{Name: name, Ts: ts})
	t.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil trace; a nil *Counter is a valid no-op receiver.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	c := t.counters[name]
	if c == nil {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	t.mu.Unlock()
	return c
}

// CounterValue is one counter's name and value in a snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// CounterSnapshot returns every counter's current value, sorted by
// name. This is the ONE ordering every renderer (Prometheus text,
// metrics JSON, Chrome trace counter events) uses, so goldens and
// scrapes never churn on map iteration order. Nil trace returns nil.
func (t *Trace) CounterSnapshot() []CounterValue {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CounterValue, 0, len(t.counters))
	for name, c := range t.counters {
		out = append(out, CounterValue{Name: name, Value: c.Value()})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeCounters adds src's counter values into t — how a long-lived
// aggregate trace absorbs a per-build trace's counters without
// retaining the build's spans. Nil t or src is a no-op.
func (t *Trace) MergeCounters(src *Trace) {
	if t == nil || src == nil {
		return
	}
	for _, c := range src.CounterSnapshot() {
		t.Counter(c.Name).Add(c.Value)
	}
}

// Spans returns a snapshot of the finished spans, in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	return out
}

// Events returns a snapshot of the recorded instant events.
func (t *Trace) Events() []EventRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]EventRecord(nil), t.events...)
	t.mu.Unlock()
	return out
}

// Span is a timed interval in the trace hierarchy. It is a value: copy
// it freely, start children from it, and call End exactly once on one
// copy. The zero Span (and any span descended from a nil trace) is
// disabled but still measures time.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	detail string
	start  time.Time
}

// Enabled reports whether the span records into a trace. Use it to
// guard work done only to decorate the trace (formatting a Detail
// string, looking up a symbol name).
func (s Span) Enabled() bool { return s.tr != nil }

// Trace returns the owning trace (nil for disabled spans).
func (s Span) Trace() *Trace { return s.tr }

// Child opens a sub-span.
func (s Span) Child(name string) Span {
	c := Span{start: s.tr.now()}
	if s.tr == nil {
		return c
	}
	c.tr = s.tr
	c.id = s.tr.nextID.Add(1)
	c.parent = s.id
	c.name = name
	return c
}

// ChildDetail opens a sub-span carrying a detail payload (rendered in
// the Chrome exporter's args). Detail is dropped on disabled spans.
func (s Span) ChildDetail(name, detail string) Span {
	c := s.Child(name)
	c.detail = detail
	return c
}

// End finishes the span and returns its duration in nanoseconds. The
// duration is measured even when the span is disabled, so callers can
// derive statistics from the same clock pair that feeds the trace.
func (s Span) End() int64 {
	end := s.tr.now()
	d := end.Sub(s.start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	if s.tr == nil {
		return d
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Detail: s.detail,
		Start:  s.start.Sub(s.tr.epoch).Nanoseconds(),
		Dur:    d,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
	return d
}

// Elapsed reports nanoseconds since the span started, without ending
// it.
func (s Span) Elapsed() int64 {
	return s.tr.now().Sub(s.start).Nanoseconds()
}

// Event records an instant event inside this span.
func (s Span) Event(name string) {
	if s.tr == nil {
		return
	}
	ts := s.tr.clock().Sub(s.tr.epoch).Nanoseconds()
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, EventRecord{Parent: s.id, Name: name, Ts: ts})
	s.tr.mu.Unlock()
}

// Counter is a named atomic counter/gauge. A nil *Counter ignores all
// updates, so callers cache the pointer once and update unconditionally.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Set stores an absolute value (gauge semantics).
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value reads the current value (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name reports the counter's registration name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}
