package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): the lingua franca
// every fleet scraper speaks. The writer renders the registry's
// counters, gauges, and histograms plus an optional extra set of
// untyped counters (the server trace's dotted-name counters, sanitized
// into metric names). Output is byte-deterministic for a fixed state:
// families and series are sorted, floats render with strconv's
// shortest form, and histogram buckets are cumulative with a final
// +Inf bucket equal to _count, as the format requires.

// PrometheusContentType is the Content-Type header for the exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an internal dotted counter name to a legal
// Prometheus metric name with the given prefix:
// "session.frontend_hits" -> prefix + "_session_frontend_hits".
func SanitizeMetricName(prefix, name string) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	if prefix != "" && !strings.HasSuffix(prefix, "_") {
		sb.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesLabels splits an identity into its family and the inner label
// text ("" when unlabeled): "x{a=\"b\"}" -> ("x", `a="b"`).
func seriesLabels(identity string) (family, labels string) {
	i := strings.IndexByte(identity, '{')
	if i < 0 {
		return identity, ""
	}
	return identity[:i], strings.TrimSuffix(identity[i+1:], "}")
}

// withLabel renders a sample name with the series labels plus one
// extra label (used for the histogram "le" label); extra may be empty.
func withLabel(family, labels, extraKey, extraVal string) string {
	if labels == "" && extraKey == "" {
		return family
	}
	var sb strings.Builder
	sb.WriteString(family)
	sb.WriteByte('{')
	sb.WriteString(labels)
	if extraKey != "" {
		if labels != "" {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. extra is an optional pre-sorted set of counters (typically
// Trace.CounterSnapshot) rendered as untyped series with their dotted
// names sanitized under extraPrefix.
func (r *Registry) WritePrometheus(w io.Writer, extraPrefix string, extra []CounterValue) error {
	var sb strings.Builder
	if r != nil {
		r.mu.Lock()
		counters := make([]string, 0, len(r.counters))
		for id := range r.counters {
			counters = append(counters, id)
		}
		gauges := make([]string, 0, len(r.gauges))
		for id := range r.gauges {
			gauges = append(gauges, id)
		}
		hists := make([]string, 0, len(r.hists))
		for id := range r.hists {
			hists = append(hists, id)
		}
		help := make(map[string]string, len(r.help))
		for k, v := range r.help {
			help[k] = v
		}
		counterByID := make(map[string]*Counter, len(r.counters))
		for id, c := range r.counters {
			counterByID[id] = c
		}
		gaugeByID := make(map[string]func() float64, len(r.gauges))
		for id, fn := range r.gauges {
			gaugeByID[id] = fn
		}
		histByID := make(map[string]*Histogram, len(r.hists))
		for id, h := range r.hists {
			histByID[id] = h
		}
		r.mu.Unlock()
		sort.Strings(counters)
		sort.Strings(gauges)
		sort.Strings(hists)

		emitHeader := func(family, typ string) {
			if h := help[family]; h != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", family, h)
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", family, typ)
		}
		lastFamily := ""
		for _, id := range counters {
			if f := familyOf(id); f != lastFamily {
				emitHeader(f, "counter")
				lastFamily = f
			}
			fmt.Fprintf(&sb, "%s %d\n", id, counterByID[id].Value())
		}
		lastFamily = ""
		for _, id := range gauges {
			if f := familyOf(id); f != lastFamily {
				emitHeader(f, "gauge")
				lastFamily = f
			}
			fmt.Fprintf(&sb, "%s %s\n", id, promFloat(gaugeByID[id]()))
		}
		lastFamily = ""
		for _, id := range hists {
			family, labels := seriesLabels(id)
			if family != lastFamily {
				emitHeader(family, "histogram")
				lastFamily = family
			}
			s := histByID[id].Snapshot()
			var cum int64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&sb, "%s %d\n", withLabel(family+"_bucket", labels, "le", promFloat(b)), cum)
			}
			// The +Inf bucket equals the derived count by construction.
			fmt.Fprintf(&sb, "%s %d\n", withLabel(family+"_bucket", labels, "le", "+Inf"), s.Count)
			fmt.Fprintf(&sb, "%s %s\n", withLabel(family+"_sum", labels, "", ""), promFloat(s.Sum))
			fmt.Fprintf(&sb, "%s %d\n", withLabel(family+"_count", labels, "", ""), s.Count)
		}
	}
	// Extra counters: internal dotted names surfaced as untyped series.
	lastFamily := ""
	for _, c := range extra {
		name := SanitizeMetricName(extraPrefix, c.Name)
		if name != lastFamily {
			fmt.Fprintf(&sb, "# TYPE %s untyped\n", name)
			lastFamily = name
		}
		fmt.Fprintf(&sb, "%s %d\n", name, c.Value)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
