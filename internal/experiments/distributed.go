package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	cmo "cmo"
	"cmo/internal/serve"
	"cmo/internal/workload"
)

// The distributed-backend figure: the same program built cold, warm
// with no edit, and warm after a one-function edit, across backend
// configurations from the NoPartition ablation to a two-daemon
// remote worker farm. The number that matters most is not a timing —
// it is the Identical column, which must be true at every point: the
// WHOPR-style backend split changes where partitions compile, never
// what they compile to.

// DistributedPoint is one build step under one backend
// configuration.
type DistributedPoint struct {
	// Name is "cold", "warm-noop", or "warm-edit1" (one cold function
	// in one module edited).
	Name       string `json:"name"`
	BuildNanos int64  `json:"build_nanos"`
	// Partition accounting for this build: total, replayed clean from
	// the repository, compiled by the local pool, compiled by remote
	// daemons, and remote failures retried locally.
	Partitions       int `json:"partitions"`
	PartitionsClean  int `json:"partitions_clean"`
	PartitionsLocal  int `json:"partitions_local"`
	PartitionsRemote int `json:"partitions_remote"`
	PartitionRetries int `json:"partition_retries"`
	// ImageReplay marks the whole-image replay path (warm-noop).
	ImageReplay bool `json:"image_replay"`
	// Identical records byte-identity against the NoPartition
	// baseline's image for the same step. Any false value is a bug,
	// not a data point.
	Identical bool `json:"identical"`
}

// DistributedRun is one backend configuration's cold → warm-noop →
// warm-edit1 trajectory.
type DistributedRun struct {
	// Config names the backend shape, e.g. "no-partition",
	// "local-w4-p4", "remote-2x-p8".
	Config string `json:"config"`
	// Workers is the local pool size; Partitions the requested
	// partition count; RemoteWorkers the daemon count farmed to.
	Workers       int                `json:"workers"`
	Partitions    int                `json:"partitions"`
	RemoteWorkers int                `json:"remote_workers"`
	Points        []DistributedPoint `json:"points"`
}

// DistributedRecord is the BENCH_distributed.json payload.
type DistributedRecord struct {
	Benchmark string           `json:"benchmark"`
	Modules   int              `json:"modules"`
	Runs      []DistributedRun `json:"runs"`
	// Identical is the headline: true only when every point of every
	// run was byte-identical to the NoPartition baseline.
	Identical bool `json:"identical"`
}

// distConfig describes one backend shape to sweep.
type distConfig struct {
	name       string
	workers    int
	partitions int
	remotes    int
}

// Distributed measures the partitioned backend across worker shapes.
// Remote configurations run against real daemons: serve.Server
// instances listening on loopback, exactly what `cmod` wraps.
func Distributed(cfg Config) (*DistributedRecord, error) {
	p := SpecPrograms(cfg)[2] // the gcc-like program: the multi-module one
	spec := p.Spec
	spec.Modules = cfg.scale(16)
	mods := sources(spec)

	// One edit used by every configuration: the first statement of a
	// statically reachable cold function (the workload's cold spine
	// keeps it live, so the edit survives DCE and dirties a real
	// partition).
	edited := append([]cmo.SourceModule(nil), mods...)
	edited[1].Text = strings.Replace(edited[1].Text,
		"\tvar acc int = a + ", "\tvar acc int = 1 + a + ", 1)
	if edited[1].Text == mods[1].Text {
		return nil, fmt.Errorf("distributed: edit did not apply to the generated workload")
	}

	rec := &DistributedRecord{Benchmark: spec.Name, Modules: spec.Modules, Identical: true}
	configs := []distConfig{
		{name: "no-partition"},
		{name: "local-w1-p4", workers: 1, partitions: 4},
		{name: "local-w4-p4", workers: 4, partitions: 4},
		{name: "remote-1x-p4", workers: 1, partitions: 4, remotes: 1},
		{name: "remote-2x-p8", workers: 2, partitions: 8, remotes: 2},
	}

	// Baseline images per step, from the first (NoPartition) run.
	baseline := map[string]string{}
	for _, dc := range configs {
		run, err := distributedRun(cfg, dc, mods, edited, baseline)
		if err != nil {
			return nil, err
		}
		rec.Runs = append(rec.Runs, *run)
		for _, pt := range run.Points {
			if !pt.Identical {
				rec.Identical = false
			}
		}
	}
	return rec, nil
}

func distributedRun(cfg Config, dc distConfig, mods, edited []cmo.SourceModule, baseline map[string]string) (*DistributedRun, error) {
	dir, err := os.MkdirTemp("", "cmo-bench-dist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var remoteURLs []string
	for i := 0; i < dc.remotes; i++ {
		url, stop, err := startWorkerDaemon()
		if err != nil {
			return nil, fmt.Errorf("distributed %s: worker daemon: %w", dc.name, err)
		}
		defer stop()
		remoteURLs = append(remoteURLs, url)
	}

	run := &DistributedRun{
		Config: dc.name, Workers: dc.workers,
		Partitions: dc.partitions, RemoteWorkers: dc.remotes,
	}
	step := func(name string, in []cmo.SourceModule) error {
		cfg.logf("distributed: %s, %s\n", dc.name, name)
		b, err := cmo.BuildSource(in, cmo.Options{
			Level:         cmo.O2,
			Volatile:      workload.InputGlobals(),
			Trace:         cfg.Trace,
			CacheDir:      dir,
			NoPartition:   dc.name == "no-partition",
			Partitions:    dc.partitions,
			Workers:       dc.workers,
			RemoteWorkers: remoteURLs,
		})
		if err != nil {
			return fmt.Errorf("distributed %s/%s: %w", dc.name, name, err)
		}
		dis := b.Image.Disasm()
		if _, ok := baseline[name]; !ok {
			baseline[name] = dis
		}
		run.Points = append(run.Points, DistributedPoint{
			Name:             name,
			BuildNanos:       b.Stats.TotalNanos,
			Partitions:       b.Stats.Partitions,
			PartitionsClean:  b.Stats.PartitionsClean,
			PartitionsLocal:  b.Stats.PartitionsLocal,
			PartitionsRemote: b.Stats.PartitionsRemote,
			PartitionRetries: b.Stats.PartitionRetries,
			ImageReplay:      b.Stats.GraphImageReplay,
			Identical:        dis == baseline[name],
		})
		return nil
	}
	if err := step("cold", mods); err != nil {
		return nil, err
	}
	if err := step("warm-noop", mods); err != nil {
		return nil, err
	}
	if err := step("warm-edit1", edited); err != nil {
		return nil, err
	}
	return run, nil
}

// startWorkerDaemon brings up a loopback daemon whose only job is
// serving POST /backend — the serve.Server cmod wraps, minus the
// fixed port.
func startWorkerDaemon() (url string, stop func(), err error) {
	srv := serve.New(serve.Config{MaxBuilds: 1, BackendSlots: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		srv.Drain()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// RenderDistributed formats the sweep as the report table.
func RenderDistributed(rec *DistributedRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Distributed backend: %s, %d modules (O2, vs the NoPartition ablation)\n",
		rec.Benchmark, rec.Modules)
	fmt.Fprintf(&sb, "%-13s  %-10s  %9s  %5s  %6s  %6s  %7s  %7s  %s\n",
		"config", "build", "build-ms", "parts", "clean", "local", "remote", "retries", "image")
	for _, run := range rec.Runs {
		for _, pt := range run.Points {
			img := "identical"
			switch {
			case !pt.Identical:
				img = "DIFFERS"
			case pt.ImageReplay:
				img = "replayed"
			}
			fmt.Fprintf(&sb, "%-13s  %-10s  %9.1f  %5d  %6d  %6d  %7d  %7d  %s\n",
				run.Config, pt.Name, float64(pt.BuildNanos)/1e6,
				pt.Partitions, pt.PartitionsClean, pt.PartitionsLocal,
				pt.PartitionsRemote, pt.PartitionRetries, img)
		}
	}
	verdict := "every image byte-identical across worker shapes"
	if !rec.Identical {
		verdict = "IMAGES DIFFER — the backend split is broken"
	}
	fmt.Fprintf(&sb, "headline: %s\n", verdict)
	return sb.String()
}

// WriteDistributedJSON writes the BENCH_distributed.json record.
func WriteDistributedJSON(w io.Writer, rec *DistributedRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
