package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	cmo "cmo"
	"cmo/internal/cas"
	"cmo/internal/serve"
	"cmo/internal/workload"
)

// The shared-cache figure: the same program built against a cmod CAS
// in every state a deployment will meet — absent, cold, warm, warm
// with a warm local repository on top, evicting under a tight disk
// cap, and dead. As with the distributed figure, the headline is not
// a timing: it is the Identical column, which must be true at every
// point. The remote level changes where artifacts come from, never
// what the linker emits.

// CASPoint is one build against one cache-service state.
type CASPoint struct {
	// Name is the service state this build saw: "local-only" (the
	// baseline, no remote configured), "remote-cold" (fresh local
	// repository, empty service), "remote-warm" (fresh local
	// repository, populated service), "both-warm" (warm local
	// repository too — the remote should not be consulted at all),
	// "remote-evict" (a cap far below the artifact footprint, so the
	// service evicts mid-build), and "remote-dead" (the URL answers
	// nothing; the client must absorb every failure).
	Name       string `json:"name"`
	BuildNanos int64  `json:"build_nanos"`
	// Remote-cache traffic for this build, from BuildStats.
	RemoteHits   int `json:"remote_hits"`
	RemoteMisses int `json:"remote_misses"`
	RemoteStores int `json:"remote_stores"`
	RemoteErrors int `json:"remote_errors"`
	// Local artifact-cache hits, to show the three levels trading off.
	LocalHits int `json:"local_hits"`
	// ImageReplay marks the whole-image replay path (both-warm).
	ImageReplay bool `json:"image_replay"`
	// Identical records byte-identity against the local-only baseline.
	// Any false value is a bug, not a data point.
	Identical bool `json:"identical"`
}

// CASRecord is the BENCH_cas.json payload.
type CASRecord struct {
	Benchmark string     `json:"benchmark"`
	Modules   int        `json:"modules"`
	Points    []CASPoint `json:"points"`
	// ServiceStats snapshots the warm daemon's store counters after
	// the sweep: puts from the cold fill, hits from the warm rebuild.
	ServiceHits      int64 `json:"service_hits"`
	ServicePuts      int64 `json:"service_puts"`
	ServiceEvictions int64 `json:"service_evictions"`
	// Identical is the headline: true only when every point was
	// byte-identical to the local-only baseline.
	Identical bool `json:"identical"`
}

// CAS measures the three-level cache against a real daemon: a
// serve.Server with a CAS store on loopback, exactly what
// `cmod -cas-dir` wraps.
func CAS(cfg Config) (*CASRecord, error) {
	p := SpecPrograms(cfg)[2] // the gcc-like program: the multi-module one
	spec := p.Spec
	spec.Modules = cfg.scale(16)
	mods := sources(spec)

	rec := &CASRecord{Benchmark: spec.Name, Modules: spec.Modules, Identical: true}
	var baseline string

	step := func(name, localDir, remote string, timeout time.Duration) error {
		cfg.logf("cas: %s\n", name)
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level:              cmo.O2,
			Volatile:           workload.InputGlobals(),
			Trace:              cfg.Trace,
			CacheDir:           localDir,
			RemoteCache:        remote,
			RemoteCacheTimeout: timeout,
		})
		if err != nil {
			return fmt.Errorf("cas %s: %w", name, err)
		}
		dis := b.Image.Disasm()
		if baseline == "" {
			baseline = dis
		}
		identical := dis == baseline
		if !identical {
			rec.Identical = false
		}
		rec.Points = append(rec.Points, CASPoint{
			Name:         name,
			BuildNanos:   b.Stats.TotalNanos,
			RemoteHits:   b.Stats.CacheRemoteHits,
			RemoteMisses: b.Stats.CacheRemoteMisses,
			RemoteStores: b.Stats.CacheRemoteStores,
			RemoteErrors: b.Stats.CacheRemoteErrors,
			LocalHits:    b.Stats.CacheHLOHits + b.Stats.CacheLLOHits,
			ImageReplay:  b.Stats.GraphImageReplay,
			Identical:    identical,
		})
		return nil
	}
	tmp := func(tag string) (string, error) {
		return os.MkdirTemp("", "cmo-bench-cas-"+tag+"-*")
	}

	// Baseline: no remote anywhere.
	localDir, err := tmp("local")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(localDir)
	if err := step("local-only", localDir, "", 0); err != nil {
		return nil, err
	}

	// One daemon serves the cold fill, the warm rebuild, and the
	// both-warm replay.
	store, url, stop, err := startCASDaemon(cas.Config{})
	if err != nil {
		return nil, fmt.Errorf("cas: daemon: %w", err)
	}
	defer stop()

	coldDir, err := tmp("cold")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(coldDir)
	if err := step("remote-cold", coldDir, url, 0); err != nil {
		return nil, err
	}
	warmDir, err := tmp("warm")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(warmDir)
	if err := step("remote-warm", warmDir, url, 0); err != nil {
		return nil, err
	}
	// Same local repository again: the dependency graph replays the
	// image; the remote level should see no traffic at all.
	if err := step("both-warm", warmDir, url, 0); err != nil {
		return nil, err
	}
	st := store.Stats()
	rec.ServiceHits, rec.ServicePuts = st.Hits, st.Puts

	// A second daemon with a cap far below one build's footprint:
	// eviction runs mid-build and identity must hold anyway.
	evStore, evURL, evStop, err := startCASDaemon(cas.Config{MaxBytes: 8 << 10})
	if err != nil {
		return nil, fmt.Errorf("cas: evicting daemon: %w", err)
	}
	defer evStop()
	evDir, err := tmp("evict")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(evDir)
	if err := step("remote-evict", evDir, evURL, 0); err != nil {
		return nil, err
	}
	rec.ServiceEvictions = evStore.Stats().Evictions

	// A service that died before the build started: connection refused
	// on every request until the breaker opens.
	deadDir, err := tmp("dead")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(deadDir)
	deadURL, err := deadAddr()
	if err != nil {
		return nil, err
	}
	if err := step("remote-dead", deadDir, deadURL, 200*time.Millisecond); err != nil {
		return nil, err
	}
	return rec, nil
}

// startCASDaemon brings up a loopback daemon whose CAS surface this
// sweep builds against — the serve.Server cmod wraps, minus the
// fixed port. stop drains the daemon (closing the store).
func startCASDaemon(cfg cas.Config) (store *cas.Store, url string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "cmo-bench-casd-*")
	if err != nil {
		return nil, "", nil, err
	}
	store, err = cas.OpenStore(dir, cfg)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	srv := serve.New(serve.Config{MaxBuilds: 1, CAS: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		srv.Drain()
		os.RemoveAll(dir)
	}
	return store, "http://" + ln.Addr().String(), stop, nil
}

// deadAddr returns a URL that was listening once and refuses now.
func deadAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url, nil
}

// RenderCAS formats the sweep as the report table.
func RenderCAS(rec *CASRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Shared cache service: %s, %d modules (O2, vs the local-only baseline)\n",
		rec.Benchmark, rec.Modules)
	fmt.Fprintf(&sb, "%-13s  %9s  %6s  %8s  %8s  %8s  %8s  %s\n",
		"service", "build-ms", "r-hits", "r-misses", "r-stores", "r-errors", "l-hits", "image")
	for _, pt := range rec.Points {
		img := "identical"
		switch {
		case !pt.Identical:
			img = "DIFFERS"
		case pt.ImageReplay:
			img = "replayed"
		}
		fmt.Fprintf(&sb, "%-13s  %9.1f  %6d  %8d  %8d  %8d  %8d  %s\n",
			pt.Name, float64(pt.BuildNanos)/1e6,
			pt.RemoteHits, pt.RemoteMisses, pt.RemoteStores, pt.RemoteErrors,
			pt.LocalHits, img)
	}
	fmt.Fprintf(&sb, "service: %d hits, %d puts; evicting daemon evicted %d\n",
		rec.ServiceHits, rec.ServicePuts, rec.ServiceEvictions)
	verdict := "every image byte-identical across cache-service states"
	if !rec.Identical {
		verdict = "IMAGES DIFFER — the remote cache level is broken"
	}
	fmt.Fprintf(&sb, "headline: %s\n", verdict)
	return sb.String()
}

// WriteCASJSON writes the BENCH_cas.json record.
func WriteCASJSON(w io.Writer, rec *CASRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
