package experiments

import (
	"fmt"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// Fig6Point is one x-position of Figure 6: the Mcad1-like application
// built with a given selectivity percentage.
type Fig6Point struct {
	Percent       float64
	SelectedSites int
	TotalSites    int
	SelectedLines int
	TotalLines    int
	BuildNanos    int64
	HLONanos      int64
	RunCycles     int64
	// Speedup is run-time improvement over the 0% (pure O2+P) build.
	Speedup float64
}

// Figure6 regenerates the selectivity sweep: as the selection
// percentage grows, compile time grows roughly with the amount of
// code optimized, while run time saturates once the hot 20 % or so of
// the application is covered (paper: "about 80% of the code has no
// appreciable effect on performance").
func Figure6(cfg Config) ([]Fig6Point, error) {
	p := McadPrograms(cfg)[0]
	mods := sources(p.Spec)
	db, err := cmo.Train(mods, []map[string]int64{trainInputs(p.Spec)}, cmo.Options{})
	if err != nil {
		return nil, fmt.Errorf("figure6 train: %w", err)
	}

	// Warm up the process (page cache, allocator) so the first sweep
	// point does not pay a cold-start premium.
	if _, err := cmo.BuildSource(mods, cmo.Options{
		Level: cmo.O4, PBO: true, DB: db, SelectPercent: 50,
		Volatile: workload.InputGlobals(),
	}); err != nil {
		return nil, fmt.Errorf("figure6 warmup: %w", err)
	}

	percents := []float64{0, 1, 2, 5, 10, 20, 40, 70, 100}
	var points []Fig6Point
	var baseCycles int64
	for _, pct := range percents {
		// Best-of-3 wall time: build timing is the one
		// non-deterministic measurement in the sweep.
		var b *cmo.Build
		var bestNanos int64
		for rep := 0; rep < 3; rep++ {
			nb, err := cmo.BuildSource(mods, cmo.Options{
				Level: cmo.O4, PBO: true, DB: db, SelectPercent: pct,
				Volatile: workload.InputGlobals(),
			})
			if err != nil {
				return nil, fmt.Errorf("figure6 %.0f%%: %w", pct, err)
			}
			if b == nil || nb.Stats.TotalNanos < bestNanos {
				b = nb
				bestNanos = nb.Stats.TotalNanos
			}
		}
		rr, err := b.Run(refInputs(p.Spec), 0)
		if err != nil {
			return nil, fmt.Errorf("figure6 run %.0f%%: %w", pct, err)
		}
		pt := Fig6Point{
			Percent:       pct,
			SelectedSites: b.Stats.SelectedSites,
			TotalSites:    b.Stats.TotalSites,
			SelectedLines: b.Stats.SelectedLines,
			TotalLines:    b.Stats.TotalLines,
			BuildNanos:    bestNanos,
			HLONanos:      b.Stats.HLONanos,
			RunCycles:     rr.Stats.Cycles,
		}
		if pct == 0 {
			baseCycles = pt.RunCycles
		}
		if baseCycles > 0 {
			pt.Speedup = float64(baseCycles) / float64(pt.RunCycles)
		}
		points = append(points, pt)
		cfg.logf("figure6: %5.1f%% sites=%5d/%5d lines=%6d/%6d hlo=%7.2f build=%8.2f ms run=%9d cycles speedup=%.3f\n",
			pct, pt.SelectedSites, pt.TotalSites, pt.SelectedLines, pt.TotalLines,
			ms(pt.HLONanos), ms(pt.BuildNanos), pt.RunCycles, pt.Speedup)
	}
	return points, nil
}

// RenderFigure6 formats the sweep.
func RenderFigure6(points []Fig6Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: selectivity sweep on the Mcad1-like application\n")
	sb.WriteString(fmt.Sprintf("%8s %12s %14s %12s %12s %9s\n",
		"percent", "sites", "lines in CMO", "build ms", "run cycles", "speedup"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%7.1f%% %6d/%-6d %7d/%-7d %12.2f %12d %9.3f\n",
			p.Percent, p.SelectedSites, p.TotalSites, p.SelectedLines, p.TotalLines,
			ms(p.BuildNanos), p.RunCycles, p.Speedup))
	}
	return sb.String()
}
