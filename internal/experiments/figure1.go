package experiments

import (
	"fmt"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// Fig1Row is one bar group of Figure 1: the speedups of +O2 +P (PBO),
// +O4 (CMO), and +O4 +P (CMO+PBO) relative to the program's baseline
// level.
type Fig1Row struct {
	Program  string
	Lines    int
	Baseline cmo.Level
	MCAD     bool

	SpeedupPBO  float64
	SpeedupCMO  float64
	SpeedupBoth float64

	// CMOCostFactor is pure CMO's *optimizer-phase* (HLO) time blowup
	// relative to the selective CMO+PBO build. The paper could not
	// compile the MCAD applications with pure CMO at all (section 5:
	// heap exhausted after ~1 GB and 40 hours of optimizer effort);
	// at our scaled-down size the build completes, and this factor is
	// the scaled analogue of that cost. (Total build time is
	// dominated by code generation, which both configurations pay
	// equally; the paper's blowup was in the optimizer.)
	CMOCostFactor float64

	// Cycle counts underlying the ratios, for the record.
	BaseCycles, PBOCycles, CMOCycles, BothCycles int64
}

// Figure1 regenerates the Figure 1 suite.
func Figure1(cfg Config) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, p := range AllPrograms(cfg) {
		row, err := figure1One(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("figure1 %s: %w", p.Spec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func figure1One(cfg Config, p Program) (Fig1Row, error) {
	mods := sources(p.Spec)
	row := Fig1Row{Program: p.Spec.Name, Lines: lines(mods), Baseline: p.Baseline, MCAD: p.MCAD}
	cfg.logf("figure1: %s (%d lines, %d modules)\n", p.Spec.Name, row.Lines, p.Spec.Modules)

	db, err := cmo.Train(mods, []map[string]int64{trainInputs(p.Spec)}, cmo.Options{})
	if err != nil {
		return row, fmt.Errorf("training: %w", err)
	}
	run := func(opt cmo.Options) (int64, int64, error) {
		opt.Volatile = workload.InputGlobals()
		b, err := cmo.BuildSource(mods, opt)
		if err != nil {
			return 0, 0, err
		}
		rr, err := b.Run(refInputs(p.Spec), 0)
		if err != nil {
			return 0, 0, err
		}
		return rr.Stats.Cycles, b.Stats.HLONanos, nil
	}

	var err2 error
	row.BaseCycles, _, err2 = run(cmo.Options{Level: p.Baseline})
	if err2 != nil {
		return row, fmt.Errorf("baseline: %w", err2)
	}
	row.PBOCycles, _, err2 = run(cmo.Options{Level: cmo.O2, PBO: true, DB: db})
	if err2 != nil {
		return row, fmt.Errorf("pbo: %w", err2)
	}
	var cmoBuild int64
	row.CMOCycles, cmoBuild, err2 = run(cmo.Options{Level: cmo.O4, SelectPercent: -1})
	if err2 != nil {
		return row, fmt.Errorf("cmo: %w", err2)
	}
	var bothBuild int64
	row.BothCycles, bothBuild, err2 = run(cmo.Options{Level: cmo.O4, PBO: true, DB: db, SelectPercent: p.ShipSelect})
	if err2 != nil {
		return row, fmt.Errorf("cmo+pbo: %w", err2)
	}

	row.SpeedupPBO = ratio(row.BaseCycles, row.PBOCycles)
	row.SpeedupCMO = ratio(row.BaseCycles, row.CMOCycles)
	row.SpeedupBoth = ratio(row.BaseCycles, row.BothCycles)
	if bothBuild > 0 {
		row.CMOCostFactor = float64(cmoBuild) / float64(bothBuild)
	}
	cfg.logf("figure1: %s PBO=%.3f CMO=%.3f CMO+PBO=%.3f (cmo build cost %.1fx)\n",
		p.Spec.Name, row.SpeedupPBO, row.SpeedupCMO, row.SpeedupBoth, row.CMOCostFactor)
	return row, nil
}

func ratio(base, v int64) float64 {
	if v <= 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// RenderFigure1 formats the rows as the paper's bar-chart data.
func RenderFigure1(rows []Fig1Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 1: speedup over baseline (+O2; +O1 for Mcad3)\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %6s | %8s %8s %8s | %s\n",
		"program", "lines", "base", "PBO", "CMO", "CMO+PBO", "pure-CMO optimizer cost"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %8d %6s | %8.3f %8.3f %8.3f | %.1fx\n",
			r.Program, r.Lines, r.Baseline, r.SpeedupPBO, r.SpeedupCMO, r.SpeedupBoth, r.CMOCostFactor))
	}
	return sb.String()
}
