package experiments

import (
	"fmt"
	"strings"
	"time"

	cmo "cmo"
	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/naim"
	"cmo/internal/source"
	"cmo/internal/workload"
)

// AblationResult is one design-decision measurement.
type AblationResult struct {
	Name     string
	Variant  string
	Metric   string
	Value    float64
	Baseline float64
	// Factor = Baseline metric / Variant metric (>1 means the design
	// decision pays).
	Factor float64
}

// lowerProgram builds IL for a generated spec.
func lowerProgram(spec workload.Spec) (*il.Program, map[il.PID]*il.Function, error) {
	var files []*source.File
	for _, m := range spec.Generate() {
		f, err := source.Parse(m.Name+".minc", m.Text)
		if err != nil {
			return nil, nil, err
		}
		if err := source.Check(f); err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	res, err := lower.Modules(files)
	if err != nil {
		return nil, nil, err
	}
	return res.Prog, res.Funcs, nil
}

// AblationSwizzle compares loading a routine from its relocatable
// form (decode + eager swizzle) against rebuilding it from source
// (re-parse + re-lower) — the Convex Application Compiler contrast of
// paper section 7: "since loading requires no rebuilding of the
// symbol table and IR information, it is very fast".
func AblationSwizzle(cfg Config) (AblationResult, error) {
	spec := SpecPrograms(cfg)[2].Spec
	mods := spec.Generate()
	prog, fns, err := lowerProgram(spec)
	if err != nil {
		return AblationResult{}, err
	}
	// Encode all functions.
	blobs := make(map[il.PID][]byte, len(fns))
	for pid, f := range fns {
		blobs[pid] = naim.EncodeFunc(f, nil)
	}

	const rounds = 20
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, pid := range prog.FuncPIDs() {
			if _, err := naim.DecodeFunc(prog, blobs[pid]); err != nil {
				return AblationResult{}, err
			}
		}
	}
	decode := time.Since(t0)

	t1 := time.Now()
	for r := 0; r < rounds; r++ {
		var files []*source.File
		for _, m := range mods {
			f, err := source.Parse(m.Name, m.Text)
			if err != nil {
				return AblationResult{}, err
			}
			files = append(files, f)
		}
		if _, err := lower.Modules(files); err != nil {
			return AblationResult{}, err
		}
	}
	rebuild := time.Since(t1)

	return AblationResult{
		Name:     "swizzle-vs-rebuild",
		Variant:  "decode relocatable pools",
		Metric:   "load ns (lower is better)",
		Value:    float64(decode.Nanoseconds()) / rounds,
		Baseline: float64(rebuild.Nanoseconds()) / rounds,
		Factor:   float64(rebuild.Nanoseconds()) / float64(decode.Nanoseconds()),
	}, nil
}

// AblationInlineSchedule measures the expanded-pool cache effect of
// the inliner's module-grouped schedule (paper section 4.3) against a
// deliberately interleaved schedule.
func AblationInlineSchedule(cfg Config) (AblationResult, error) {
	spec := McadPrograms(cfg)[0].Spec
	run := func(shuffled bool) (int64, error) {
		prog, fns, err := lowerProgram(spec)
		if err != nil {
			return 0, err
		}
		loader := naim.NewLoader(prog, naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 6})
		defer loader.Close()
		for _, pid := range prog.FuncPIDs() {
			loader.InstallFunc(fns[pid])
		}
		vol := map[il.PID]bool{}
		for _, n := range workload.InputGlobals() {
			if s := prog.Lookup(n); s != nil {
				vol[s.PID] = true
			}
		}
		if _, err := hlo.Optimize(prog, loader, hlo.Options{
			Volatile:           vol,
			NoScheduleLocality: shuffled,
		}); err != nil {
			return 0, err
		}
		return loader.Stats().CacheMisses, nil
	}
	scheduled, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	shuffled, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	f := 1.0
	if scheduled > 0 {
		f = float64(shuffled) / float64(scheduled)
	}
	return AblationResult{
		Name:     "inline-schedule-locality",
		Variant:  "module-grouped inline schedule",
		Metric:   "expanded-pool cache misses",
		Value:    float64(scheduled),
		Baseline: float64(shuffled),
		Factor:   f,
	}, nil
}

// AblationPoolCache measures the expanded-pool LRU cache itself: the
// same CMO compilation with a working cache versus a single-slot
// cache that compacts a pool the moment the optimizer looks away
// (paper section 4.3: the lazy unloader's cache "diminishes the
// effect our NAIM functionality has on compile time").
func AblationPoolCache(cfg Config) (AblationResult, error) {
	// A call-dense shape: many hot callers share callees, so the
	// repeated-touch traffic the cache absorbs dominates the
	// streaming sweeps.
	spec := workload.Spec{
		Name: "cachedense", Seed: 77,
		Modules: cfg.scale(24), HotPerModule: 6, ColdPerModule: 2, ColdStmts: 6,
		ArrayElems: 32,
	}
	run := func(slots int) (int64, error) {
		prog, fns, err := lowerProgram(spec)
		if err != nil {
			return 0, err
		}
		loader := naim.NewLoader(prog, naim.Config{ForceLevel: naim.LevelIR, CacheSlots: slots})
		defer loader.Close()
		for _, pid := range prog.FuncPIDs() {
			loader.InstallFunc(fns[pid])
		}
		vol := map[il.PID]bool{}
		for _, n := range workload.InputGlobals() {
			if s := prog.Lookup(n); s != nil {
				vol[s.PID] = true
			}
		}
		if _, err := hlo.Optimize(prog, loader, hlo.Options{Volatile: vol}); err != nil {
			return 0, err
		}
		return loader.Stats().Expansions, nil
	}
	cached, err := run(32)
	if err != nil {
		return AblationResult{}, err
	}
	uncached, err := run(1)
	if err != nil {
		return AblationResult{}, err
	}
	f := 1.0
	if cached > 0 {
		f = float64(uncached) / float64(cached)
	}
	return AblationResult{
		Name:     "expanded-pool-cache",
		Variant:  "32-slot LRU cache vs eager unload",
		Metric:   "pool expansions during HLO",
		Value:    float64(cached),
		Baseline: float64(uncached),
		Factor:   f,
	}, nil
}

// AblationThresholdOverhead verifies that NAIM machinery costs
// nothing when a compilation fits in memory (paper section 4.3:
// "imposes little or no overhead on compilations that fit").
func AblationThresholdOverhead(cfg Config) (AblationResult, error) {
	spec := SpecPrograms(cfg)[4].Spec // li-like, small
	mods := sources(spec)
	build := func(n naim.Config) (*cmo.Build, error) {
		return cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			NAIM:     n,
		})
	}
	off, err := build(naim.Config{ForceLevel: naim.LevelOff})
	if err != nil {
		return AblationResult{}, err
	}
	adaptive, err := build(naim.Config{ForceLevel: naim.Adaptive, BudgetBytes: off.Stats.NAIM.PeakBytes * 8})
	if err != nil {
		return AblationResult{}, err
	}
	if adaptive.Stats.NAIM.Compactions != 0 {
		return AblationResult{}, fmt.Errorf("thresholded NAIM compacted %d pools on a small compile",
			adaptive.Stats.NAIM.Compactions)
	}
	return AblationResult{
		Name:     "naim-threshold-overhead",
		Variant:  "adaptive NAIM, generous budget",
		Metric:   "compactions on an in-memory compile",
		Value:    float64(adaptive.Stats.NAIM.Compactions),
		Baseline: float64(off.Stats.NAIM.Compactions),
		Factor:   1,
	}, nil
}

// AblationMultiLayer measures the paper's section-8 layered strategy
// against the flat selective build: code generation gets cheaper
// (never-executed routines compile at O1) while run time stays put.
func AblationMultiLayer(cfg Config) (AblationResult, error) {
	p := McadPrograms(cfg)[0]
	mods := sources(p.Spec)
	db, err := cmo.Train(mods, []map[string]int64{trainInputs(p.Spec)}, cmo.Options{})
	if err != nil {
		return AblationResult{}, err
	}
	build := func(layered bool) (*cmo.Build, int64, error) {
		var best *cmo.Build
		var bestLLO int64
		for rep := 0; rep < 3; rep++ {
			b, err := cmo.BuildSource(mods, cmo.Options{
				Level: cmo.O4, PBO: true, DB: db, SelectPercent: p.ShipSelect,
				MultiLayer: layered,
				Volatile:   workload.InputGlobals(),
			})
			if err != nil {
				return nil, 0, err
			}
			if best == nil || b.Stats.LLONanos < bestLLO {
				best, bestLLO = b, b.Stats.LLONanos
			}
		}
		return best, bestLLO, nil
	}
	flat, flatLLO, err := build(false)
	if err != nil {
		return AblationResult{}, err
	}
	layered, layeredLLO, err := build(true)
	if err != nil {
		return AblationResult{}, err
	}
	// Sanity: identical program behavior.
	rFlat, err := flat.Run(refInputs(p.Spec), 0)
	if err != nil {
		return AblationResult{}, err
	}
	rLayered, err := layered.Run(refInputs(p.Spec), 0)
	if err != nil {
		return AblationResult{}, err
	}
	if rFlat.Value != rLayered.Value {
		return AblationResult{}, fmt.Errorf("multilayer changed program result: %d vs %d", rLayered.Value, rFlat.Value)
	}
	f := 1.0
	if layeredLLO > 0 {
		f = float64(flatLLO) / float64(layeredLLO)
	}
	return AblationResult{
		Name:     "multi-layer-codegen",
		Variant:  "hot=CMO+PBO / warm=O2 / cold=O1",
		Metric:   "code-generation ns (lower is better)",
		Value:    float64(layeredLLO),
		Baseline: float64(flatLLO),
		Factor:   f,
	}, nil
}

// Ablations runs the design-decision measurements.
func Ablations(cfg Config) ([]AblationResult, error) {
	var out []AblationResult
	for _, f := range []func(Config) (AblationResult, error){
		AblationSwizzle,
		AblationInlineSchedule,
		AblationPoolCache,
		AblationThresholdOverhead,
		AblationMultiLayer,
	} {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		cfg.logf("ablation: %-26s %s: %.0f vs %.0f (%.2fx)\n", r.Name, r.Metric, r.Value, r.Baseline, r.Factor)
		out = append(out, r)
	}
	return out, nil
}

// RenderAblations formats the results.
func RenderAblations(rs []AblationResult) string {
	var sb strings.Builder
	sb.WriteString("Design-decision ablations\n")
	sb.WriteString(fmt.Sprintf("%-26s %-34s %14s %14s %8s\n", "ablation", "metric", "with", "without", "factor"))
	for _, r := range rs {
		sb.WriteString(fmt.Sprintf("%-26s %-34s %14.0f %14.0f %7.2fx\n",
			r.Name, r.Metric, r.Value, r.Baseline, r.Factor))
	}
	return sb.String()
}
