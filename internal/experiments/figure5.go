package experiments

import (
	"fmt"
	"strings"

	cmo "cmo"
	"cmo/internal/naim"
	"cmo/internal/workload"
)

// Fig5Point is one configuration of Figure 5's time/space trade-off:
// the gcc-like program compiled with progressively more NAIM
// machinery pinned on.
type Fig5Point struct {
	Name      string
	Level     naim.Level
	PeakBytes int64
	HLONanos  int64
	// CompactNanos/DiskNanos break out where the extra time went.
	CompactNanos int64
	DiskNanos    int64
	Compactions  int64
	DiskWrites   int64
}

// Figure5 regenerates the NAIM dial: "NAIM off" keeps everything
// expanded; "IR compaction" evicts routine pools through the
// relocatable codec; "+ST compaction" also compacts module symbol
// tables; "+offload" pushes evicted pools to the disk repository.
// Memory falls monotonically; compile time rises with the compaction
// and disk traffic.
func Figure5(cfg Config) ([]Fig5Point, error) {
	// A gcc-like program, somewhat enlarged: the paper used 126.gcc.
	p := SpecPrograms(cfg)[2]
	spec := p.Spec
	spec.Modules = cfg.scale(24)
	mods := sources(spec)
	db, err := cmo.Train(mods, []map[string]int64{trainInputs(spec)}, cmo.Options{})
	if err != nil {
		return nil, fmt.Errorf("figure5 train: %w", err)
	}

	configs := []struct {
		name  string
		level naim.Level
		slots int
	}{
		{"NAIM off", naim.LevelOff, 0},
		{"IR compaction", naim.LevelIR, 6},
		{"+ST compaction", naim.LevelST, 6},
		{"+disk offload", naim.LevelDisk, 6},
	}
	var points []Fig5Point
	for _, c := range configs {
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, PBO: true, DB: db, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			NAIM:     naim.Config{ForceLevel: c.level, CacheSlots: c.slots},
			Trace:    cfg.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %w", c.name, err)
		}
		pt := Fig5Point{
			Name:         c.name,
			Level:        c.level,
			PeakBytes:    b.Stats.NAIM.PeakBytes,
			HLONanos:     b.Stats.HLONanos,
			CompactNanos: b.Stats.NAIM.CompactNanos,
			DiskNanos:    b.Stats.NAIM.DiskNanos,
			Compactions:  b.Stats.NAIM.Compactions,
			DiskWrites:   b.Stats.NAIM.DiskWrites,
		}
		points = append(points, pt)
		cfg.logf("figure5: %-14s peak=%9d B  hlo=%8.2f ms  compact=%6.2f ms  disk=%6.2f ms\n",
			c.name, pt.PeakBytes, ms(pt.HLONanos), ms(pt.CompactNanos), ms(pt.DiskNanos))
	}
	return points, nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// RenderFigure5 formats the dial.
func RenderFigure5(points []Fig5Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: HLO compile time vs memory (NAIM configurations)\n")
	sb.WriteString(fmt.Sprintf("%-16s %12s %12s %12s %12s %8s %6s\n",
		"config", "peak bytes", "hlo ms", "compact ms", "disk ms", "compact#", "disk#"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-16s %12d %12.2f %12.2f %12.2f %8d %6d\n",
			p.Name, p.PeakBytes, ms(p.HLONanos), ms(p.CompactNanos), ms(p.DiskNanos),
			p.Compactions, p.DiskWrites))
	}
	return sb.String()
}
