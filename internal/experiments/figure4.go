package experiments

import (
	"fmt"
	"strings"

	cmo "cmo"
	"cmo/internal/naim"
	"cmo/internal/workload"
)

// Fig4Point is one x-position of Figure 4: how much optimizer memory
// the compiler needed to CMO-compile the first N modules (= Lines
// lines) of the Mcad1-like application.
type Fig4Point struct {
	Modules      int
	Lines        int
	HLOPeak      int64 // NAIM-managed optimizer data (the "HLO" curve)
	CompilerPeak int64 // plus LLO and code buffers (the "overall" curve)
	NAIMLevel    naim.Level
	// Per-phase wall-clock breakdown of the measured build (span-
	// derived, see internal/obs): where compile time goes as the
	// program grows, alongside where memory goes.
	FrontendNanos int64
	HLONanos      int64
	LLONanos      int64
	LinkNanos     int64
	TotalNanos    int64
}

// Figure4 regenerates the memory-scaling curve: growing prefixes of
// the MCAD-like application compiled in CMO+PBO mode under one fixed
// NAIM budget. The HLO curve flattens as NAIM levels engage; the
// overall compiler curve keeps growing (LLO's appetite grows with
// inlined routine sizes — the effect the paper's Figure 4 caption
// describes).
func Figure4(cfg Config) ([]Fig4Point, error) {
	base := McadPrograms(cfg)[0]
	steps := []int{8, 16, 24, 32, 40, 48}

	// The budget is fixed across all sizes: a fraction of what the
	// full application would need fully expanded, so the thresholds
	// engage progressively as more code is compiled.
	budget := int64(0)
	{
		spec := base.Spec
		spec.Modules = cfg.scale(steps[len(steps)-1])
		mods := sources(spec)
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			NAIM:     naim.Config{ForceLevel: naim.LevelOff},
		})
		if err != nil {
			return nil, fmt.Errorf("figure4 calibration: %w", err)
		}
		budget = b.Stats.NAIM.PeakBytes / 4
	}
	cfg.logf("figure4: NAIM budget fixed at %d bytes\n", budget)

	var points []Fig4Point
	for _, n := range steps {
		spec := base.Spec
		spec.Modules = cfg.scale(n)
		mods := sources(spec)
		db, err := cmo.Train(mods, []map[string]int64{trainInputs(spec)}, cmo.Options{})
		if err != nil {
			return nil, fmt.Errorf("figure4 train n=%d: %w", n, err)
		}
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, PBO: true, DB: db, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			NAIM:     naim.Config{BudgetBytes: budget, ForceLevel: naim.Adaptive, CacheSlots: 24},
			Trace:    cfg.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("figure4 build n=%d: %w", n, err)
		}
		p := Fig4Point{
			Modules:       spec.Modules,
			Lines:         b.Stats.TotalLines,
			HLOPeak:       b.Stats.NAIM.PeakBytes,
			CompilerPeak:  b.Stats.CompilerPeakBytes + b.Stats.CodeBytes,
			NAIMLevel:     b.Stats.NAIMLevel,
			FrontendNanos: b.Stats.FrontendNanos,
			HLONanos:      b.Stats.HLONanos,
			LLONanos:      b.Stats.LLONanos,
			LinkNanos:     b.Stats.LinkNanos,
			TotalNanos:    b.Stats.TotalNanos,
		}
		points = append(points, p)
		cfg.logf("figure4: %3d modules %7d lines: HLO %8d B, compiler %8d B (naim %v, fe/hlo/llo/link %.1f/%.1f/%.1f/%.1f ms)\n",
			p.Modules, p.Lines, p.HLOPeak, p.CompilerPeak, p.NAIMLevel,
			ms(p.FrontendNanos), ms(p.HLONanos), ms(p.LLONanos), ms(p.LinkNanos))
	}
	return points, nil
}

// RenderFigure4 formats the curve data.
func RenderFigure4(points []Fig4Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: compiler and HLO memory vs lines compiled under CMO\n")
	sb.WriteString(fmt.Sprintf("%8s %9s %14s %14s %8s %10s %9s %9s\n",
		"modules", "lines", "HLO bytes", "compiler B", "naim", "HLO B/line", "hlo ms", "total ms"))
	for _, p := range points {
		perLine := float64(p.HLOPeak) / float64(p.Lines)
		sb.WriteString(fmt.Sprintf("%8d %9d %14d %14d %8v %10.1f %9.1f %9.1f\n",
			p.Modules, p.Lines, p.HLOPeak, p.CompilerPeak, p.NAIMLevel, perLine,
			ms(p.HLONanos), ms(p.TotalNanos)))
	}
	return sb.String()
}
