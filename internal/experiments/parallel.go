package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// ParallelPoint is one job-count measurement of the parallel-pipeline
// sweep: the same many-module program built at a fixed configuration
// with only Options.Jobs varied.
type ParallelPoint struct {
	Jobs int `json:"jobs"`
	// BuildNanos is the whole-pipeline wall time (frontend through
	// link) reported by the build's own span clock.
	BuildNanos int64 `json:"build_nanos"`
	// Speedup is the Jobs=1 wall time divided by this point's.
	Speedup float64 `json:"speedup"`
	// Identical records that the image was byte-identical to the
	// sequential build — the determinism contract the parallel paths
	// must keep. A sweep with any false value is a bug, not a data
	// point.
	Identical bool `json:"identical"`
	// LockWaitNanos is the summed shard-lock contention inside the
	// NAIM loader, the first place a saturated parallel build shows.
	LockWaitNanos int64 `json:"lock_wait_nanos"`
}

// ParallelRecord is the BENCH_parallel.json payload: the sweep plus
// its headline number, so the parallelism trajectory is comparable
// across commits.
type ParallelRecord struct {
	Benchmark string          `json:"benchmark"`
	Modules   int             `json:"modules"`
	Functions int             `json:"functions"`
	Points    []ParallelPoint `json:"points"`
	// SpeedupAt4 is the headline: wall-clock speedup of Jobs=4 over
	// Jobs=1.
	SpeedupAt4 float64 `json:"speedup_at_4"`
}

// Parallel sweeps Options.Jobs over {1, 2, 4, 8} on a gcc-like
// many-module program at O4 and measures end-to-end build wall time.
// Every point's image is checked byte-identical against the
// sequential build.
func Parallel(cfg Config) (*ParallelRecord, error) {
	p := SpecPrograms(cfg)[2] // the gcc-like program: the multi-module one
	spec := p.Spec
	spec.Modules = cfg.scale(24)
	mods := sources(spec)

	rec := &ParallelRecord{Benchmark: spec.Name, Modules: spec.Modules}
	var refDisasm string
	var t1 int64
	for _, jobs := range []int{1, 2, 4, 8} {
		cfg.logf("parallel: jobs=%d\n", jobs)
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, SelectPercent: -1, Jobs: jobs,
			Volatile: workload.InputGlobals(),
			Trace:    cfg.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("parallel jobs=%d: %w", jobs, err)
		}
		dis := b.Image.Disasm()
		if jobs == 1 {
			refDisasm = dis
			t1 = b.Stats.TotalNanos
			rec.Functions = b.Stats.Functions
		}
		rec.Points = append(rec.Points, ParallelPoint{
			Jobs:          jobs,
			BuildNanos:    b.Stats.TotalNanos,
			Speedup:       float64(t1) / float64(b.Stats.TotalNanos),
			Identical:     dis == refDisasm,
			LockWaitNanos: b.Stats.NAIM.LockWaitNanos,
		})
		if jobs == 4 {
			rec.SpeedupAt4 = float64(t1) / float64(b.Stats.TotalNanos)
		}
	}
	return rec, nil
}

// RenderParallel formats the sweep as the report table.
func RenderParallel(rec *ParallelRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel pipeline: %s, %d modules, %d functions (O4, full scope)\n",
		rec.Benchmark, rec.Modules, rec.Functions)
	fmt.Fprintf(&sb, "%6s  %12s  %8s  %10s  %s\n", "jobs", "build-ms", "speedup", "lock-wait", "image")
	for _, pt := range rec.Points {
		img := "identical"
		if !pt.Identical {
			img = "DIFFERS"
		}
		fmt.Fprintf(&sb, "%6d  %12.1f  %7.2fx  %8.2fms  %s\n",
			pt.Jobs, float64(pt.BuildNanos)/1e6, pt.Speedup,
			float64(pt.LockWaitNanos)/1e6, img)
	}
	return sb.String()
}

// WriteParallelJSON writes the BENCH_parallel.json record.
func WriteParallelJSON(w io.Writer, rec *ParallelRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
