package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// GraphPoint is one warm-rebuild measurement with the dependency
// graph, paired with the same step run against an equally warmed
// repository with the graph disabled (Options.NoDepGraph).
type GraphPoint struct {
	// Name is "cold", "warm-noop", or "warm-edit@K" where K is the
	// edited module's index.
	Name string `json:"name"`
	// EditPos is the edited module index, -1 for cold/warm-noop.
	EditPos int `json:"edit_pos"`
	// BuildNanos is the graph path's wall time; NoGraphNanos the
	// NoDepGraph path's wall time for the same step.
	BuildNanos   int64 `json:"build_nanos"`
	NoGraphNanos int64 `json:"nograph_nanos"`
	// Speedup is the graph path's cold time over this point's graph
	// time; Advantage is NoGraphNanos over BuildNanos — what the graph
	// buys on the same step against the same warmth.
	Speedup   float64 `json:"speedup"`
	Advantage float64 `json:"advantage"`
	// DirtyClosure and FrontierDepth show warm-edit stage work scaling
	// with the closure, not the program: the dirty set the graph
	// propagated and the LLO work items it scheduled.
	DirtyClosure  int `json:"dirty_closure"`
	FrontierDepth int `json:"frontier_depth"`
	// FrontendMisses counts modules actually re-lowered (1 per edit).
	FrontendMisses int `json:"frontend_misses"`
	// ImageReplay marks the whole-image replay path (warm-noop).
	ImageReplay bool `json:"image_replay"`
	// Identical records byte-identity of this step's image against
	// both the cold build and the NoDepGraph path — the load-bearing
	// invariant. Any false value is a bug, not a data point.
	Identical bool `json:"identical"`
}

// GraphSweep is one module-count column of the sweep.
type GraphSweep struct {
	Modules int          `json:"modules"`
	Points  []GraphPoint `json:"points"`
	// NoopSpeedup is cold over warm-noop on the graph path; the
	// acceptance headline requires it strictly above the floor at
	// every module count.
	NoopSpeedup float64 `json:"noop_speedup"`
}

// GraphRecord is the BENCH_graph.json payload: the module-count ×
// edit-position sweep of the persisted dependency graph, so the
// incremental-rebuild trajectory is comparable across commits.
type GraphRecord struct {
	Benchmark string       `json:"benchmark"`
	Sweeps    []GraphSweep `json:"sweeps"`
	// NoopSpeedup is the headline: the worst (minimum) warm-noop
	// speedup across module counts, so the figure can only pass when
	// image replay wins everywhere.
	NoopSpeedup float64 `json:"noop_speedup"`
}

// Graph measures the persisted dependency graph across module count ×
// edit position: for each program size, a cold build, a warm no-op
// rebuild (the image-replay path), and a warm rebuild after a
// comment-only edit at the first, middle, and last module. Every step
// also runs against a second, equally warmed repository with
// Options.NoDepGraph, and every image is checked byte-identical
// against both the cold build and the graph-less path.
func Graph(cfg Config) (*GraphRecord, error) {
	p := SpecPrograms(cfg)[2] // the gcc-like program: the multi-module one
	rec := &GraphRecord{Benchmark: p.Spec.Name}

	for _, nmods := range []int{cfg.scale(8), cfg.scale(16), cfg.scale(32)} {
		sweep, err := graphSweep(cfg, p.Spec, nmods)
		if err != nil {
			return nil, err
		}
		rec.Sweeps = append(rec.Sweeps, *sweep)
		if rec.NoopSpeedup == 0 || sweep.NoopSpeedup < rec.NoopSpeedup {
			rec.NoopSpeedup = sweep.NoopSpeedup
		}
	}
	return rec, nil
}

func graphSweep(cfg Config, spec workload.Spec, nmods int) (*GraphSweep, error) {
	spec.Modules = nmods
	mods := sources(spec)

	gDir, err := os.MkdirTemp("", "cmo-bench-graph-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(gDir)
	nDir, err := os.MkdirTemp("", "cmo-bench-nograph-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(nDir)

	build := func(in []cmo.SourceModule, dir string, noGraph bool) (*cmo.Build, error) {
		return cmo.BuildSource(in, cmo.Options{
			Level:      cmo.O2,
			Volatile:   workload.InputGlobals(),
			Trace:      cfg.Trace,
			CacheDir:   dir,
			NoDepGraph: noGraph,
		})
	}

	sweep := &GraphSweep{Modules: nmods}
	var refDisasm string
	var cold int64
	step := func(name string, editPos int, in []cmo.SourceModule) error {
		cfg.logf("graph: %d modules, %s\n", nmods, name)
		g, err := build(in, gDir, false)
		if err != nil {
			return fmt.Errorf("graph %d/%s: %w", nmods, name, err)
		}
		n, err := build(in, nDir, true)
		if err != nil {
			return fmt.Errorf("graph %d/%s (nograph): %w", nmods, name, err)
		}
		dis := g.Image.Disasm()
		if name == "cold" {
			refDisasm = dis
			cold = g.Stats.TotalNanos
		}
		pt := GraphPoint{
			Name:           name,
			EditPos:        editPos,
			BuildNanos:     g.Stats.TotalNanos,
			NoGraphNanos:   n.Stats.TotalNanos,
			Speedup:        float64(cold) / float64(g.Stats.TotalNanos),
			Advantage:      float64(n.Stats.TotalNanos) / float64(g.Stats.TotalNanos),
			DirtyClosure:   g.Stats.GraphDirtyClosure,
			FrontierDepth:  g.Stats.GraphFrontierDepth,
			FrontendMisses: g.Stats.CacheFrontendMisses,
			ImageReplay:    g.Stats.GraphImageReplay,
			Identical:      dis == refDisasm && dis == n.Image.Disasm(),
		}
		sweep.Points = append(sweep.Points, pt)
		if name == "warm-noop" {
			sweep.NoopSpeedup = pt.Speedup
		}
		return nil
	}

	if err := step("cold", -1, mods); err != nil {
		return nil, err
	}
	if err := step("warm-noop", -1, mods); err != nil {
		return nil, err
	}
	for _, pos := range []int{0, nmods / 2, nmods - 1} {
		// A comment-only edit at one position: the frontend key misses
		// for that module alone, the dirty closure stays proportional
		// to its fan-out, and the optimized image must not move.
		in := append([]cmo.SourceModule(nil), mods...)
		in[pos].Text += "\n// touched\n"
		if err := step(fmt.Sprintf("warm-edit@%d", pos), pos, in); err != nil {
			return nil, err
		}
		// Reseat both repositories at the base sources so the next
		// edit's dirty closure reflects only its own module, not the
		// revert of the previous edit.
		if _, err := build(mods, gDir, false); err != nil {
			return nil, fmt.Errorf("graph %d/reseat: %w", nmods, err)
		}
		if _, err := build(mods, nDir, true); err != nil {
			return nil, fmt.Errorf("graph %d/reseat (nograph): %w", nmods, err)
		}
	}
	return sweep, nil
}

// RenderGraph formats the sweep as the report table.
func RenderGraph(rec *GraphRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dependency graph rebuilds: %s, module count x edit position (O2, graph vs NoDepGraph)\n",
		rec.Benchmark)
	fmt.Fprintf(&sb, "%4s  %-13s  %10s  %10s  %8s  %9s  %7s  %8s  %s\n",
		"mods", "build", "graph-ms", "nograph-ms", "speedup", "advantage", "dirty", "frontier", "image")
	for _, sw := range rec.Sweeps {
		for _, pt := range sw.Points {
			img := "identical"
			switch {
			case !pt.Identical:
				img = "DIFFERS"
			case pt.ImageReplay:
				img = "replayed"
			}
			fmt.Fprintf(&sb, "%4d  %-13s  %10.1f  %10.1f  %7.2fx  %8.2fx  %7d  %8d  %s\n",
				sw.Modules, pt.Name,
				float64(pt.BuildNanos)/1e6, float64(pt.NoGraphNanos)/1e6,
				pt.Speedup, pt.Advantage, pt.DirtyClosure, pt.FrontierDepth, img)
		}
	}
	fmt.Fprintf(&sb, "headline: warm-noop speedup %.2fx (minimum across module counts)\n", rec.NoopSpeedup)
	return sb.String()
}

// WriteGraphJSON writes the BENCH_graph.json record.
func WriteGraphJSON(w io.Writer, rec *GraphRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
