package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// IncrementalPoint is one rebuild measurement against a warmed
// repository.
type IncrementalPoint struct {
	// Name is "cold", "warm-noop", or "warm-edit1".
	Name string `json:"name"`
	// BuildNanos is the whole-pipeline wall time.
	BuildNanos int64 `json:"build_nanos"`
	// Speedup is the cold wall time divided by this point's.
	Speedup float64 `json:"speedup"`
	// FrontendHits/Misses count modules replayed from the repository
	// vs. lowered from source.
	FrontendHits   int `json:"frontend_hits"`
	FrontendMisses int `json:"frontend_misses"`
	// HLOHits/Misses count per-function transform records replayed
	// vs. recomputed.
	HLOHits   int `json:"hlo_hits"`
	HLOMisses int `json:"hlo_misses"`
	// Identical records that the image was byte-identical to the cold
	// build — the session's load-bearing invariant. Any false value is
	// a bug, not a data point.
	Identical bool `json:"identical"`
}

// IncrementalRecord is the BENCH_incremental.json payload: cold vs.
// warm rebuild times over one durable repository, so the incremental
// trajectory is comparable across commits.
type IncrementalRecord struct {
	Benchmark string             `json:"benchmark"`
	Modules   int                `json:"modules"`
	Functions int                `json:"functions"`
	Points    []IncrementalPoint `json:"points"`
	// NoopSpeedup and Edit1Speedup are the headlines: cold build time
	// over the no-op rebuild and over the 1-module-edit rebuild.
	NoopSpeedup  float64 `json:"noop_speedup"`
	Edit1Speedup float64 `json:"edit1_speedup"`
}

// Incremental measures the session cache on a gcc-like many-module
// program at O4: a cold build into a fresh repository, a warm rebuild
// with nothing changed, and a warm rebuild after editing one module
// out of N (a comment edit, so the optimized image must not change).
// Every point's image is checked byte-identical against the cold
// build.
func Incremental(cfg Config) (*IncrementalRecord, error) {
	p := SpecPrograms(cfg)[2] // the gcc-like program: the multi-module one
	spec := p.Spec
	spec.Modules = cfg.scale(24)
	mods := sources(spec)

	dir, err := os.MkdirTemp("", "cmo-bench-incr-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rec := &IncrementalRecord{Benchmark: spec.Name, Modules: spec.Modules}
	var refDisasm string
	var cold int64
	build := func(name string, mods []cmo.SourceModule) (*IncrementalPoint, error) {
		cfg.logf("incremental: %s\n", name)
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			Trace:    cfg.Trace,
			CacheDir: dir,
		})
		if err != nil {
			return nil, fmt.Errorf("incremental %s: %w", name, err)
		}
		dis := b.Image.Disasm()
		if name == "cold" {
			refDisasm = dis
			cold = b.Stats.TotalNanos
			rec.Functions = b.Stats.Functions
		}
		return &IncrementalPoint{
			Name:           name,
			BuildNanos:     b.Stats.TotalNanos,
			Speedup:        float64(cold) / float64(b.Stats.TotalNanos),
			FrontendHits:   b.Stats.CacheFrontendHits,
			FrontendMisses: b.Stats.CacheFrontendMisses,
			HLOHits:        b.Stats.CacheHLOHits,
			HLOMisses:      b.Stats.CacheHLOMisses,
			Identical:      dis == refDisasm,
		}, nil
	}

	for _, step := range []string{"cold", "warm-noop", "warm-edit1"} {
		in := mods
		if step == "warm-edit1" {
			// Edit one module out of N: a comment-only change, so the
			// frontend key misses but the optimized image must not move.
			in = append([]cmo.SourceModule(nil), mods...)
			in[0].Text += "\n// touched\n"
		}
		pt, err := build(step, in)
		if err != nil {
			return nil, err
		}
		rec.Points = append(rec.Points, *pt)
		switch step {
		case "warm-noop":
			rec.NoopSpeedup = pt.Speedup
		case "warm-edit1":
			rec.Edit1Speedup = pt.Speedup
		}
	}
	return rec, nil
}

// RenderIncremental formats the sweep as the report table.
func RenderIncremental(rec *IncrementalRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental rebuilds: %s, %d modules, %d functions (O4, shared repository)\n",
		rec.Benchmark, rec.Modules, rec.Functions)
	fmt.Fprintf(&sb, "%-11s  %12s  %8s  %14s  %14s  %s\n",
		"build", "build-ms", "speedup", "frontend", "hlo", "image")
	for _, pt := range rec.Points {
		img := "identical"
		if !pt.Identical {
			img = "DIFFERS"
		}
		fmt.Fprintf(&sb, "%-11s  %12.1f  %7.2fx  %6dh %5dm  %6dh %5dm  %s\n",
			pt.Name, float64(pt.BuildNanos)/1e6, pt.Speedup,
			pt.FrontendHits, pt.FrontendMisses, pt.HLOHits, pt.HLOMisses, img)
	}
	return sb.String()
}

// WriteIncrementalJSON writes the BENCH_incremental.json record.
func WriteIncrementalJSON(w io.Writer, rec *IncrementalRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
