package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	cmo "cmo"
	"cmo/internal/workload"
)

// IPAPoint is one program measured with and without the
// interprocedural MOD/REF stage (cmo.Options.NoIPA): the same source,
// the same O4 pipeline, differing only in whether the summary-gated
// transforms (gforward, gdse, purecse) are allowed to run.
type IPAPoint struct {
	Program string `json:"program"`
	Modules int    `json:"modules"`
	// WithCycles / WithoutCycles are the reference-run cycle counts.
	WithCycles    int64 `json:"with_cycles"`
	WithoutCycles int64 `json:"without_cycles"`
	// ReductionPct is the percentage of cycles the stage removed
	// (positive means ipa pays).
	ReductionPct float64 `json:"reduction_pct"`
	// Transform activity in the with-ipa build.
	LoadsForwarded int `json:"loads_forwarded"`
	StoresKilled   int `json:"stores_killed"`
	PureCSEs       int `json:"pure_cses"`
	// Identical records that both builds computed the same program
	// result — the differential invariant. Any false value is a bug,
	// not a data point.
	Identical bool `json:"identical_result"`
}

// IPARecord is the BENCH_ipa.json payload.
type IPARecord struct {
	Benchmark string     `json:"benchmark"`
	Points    []IPAPoint `json:"points"`
	// BestReductionPct is the headline: the largest cycle reduction
	// across the measured programs.
	BestReductionPct float64 `json:"best_reduction_pct"`
}

// ipaStressSources is the "modeps"-style ipa-stressing program: a hot
// loop whose body is saturated with exactly the patterns the summary
// stage unlocks — a global load trapped behind a const call, a dead
// global store straddling a pure call, and a repeated pure call. The
// helpers are recursive, so the inliner cannot dissolve the call
// sites and intraprocedural cleanup alone cannot recover any of it.
func ipaStressSources() []cmo.SourceModule {
	return []cmo.SourceModule{
		{Name: "deps.minc", Text: `module deps;
var bias int = 3;

func weight(x int) int {
	if (x < 1) { return bias; }
	return weight(x - 1) + bias;
}

func mix(x int) int {
	if (x < 0) { return mix(x + 1); }
	return x * 3 - 1;
}
`},
		{Name: "hot.minc", Text: `module hot;
var acc int = 0;
var input0 int = 0;
extern func weight(x int) int;
extern func mix(x int) int;

func main() int {
	var t int = 0;
	var i int = 0;
	while (i < input0) {
		acc = i;
		var a int = mix(i);
		var b int = acc;
		acc = t;
		var c int = weight(6) + weight(6);
		acc = b + a;
		t = t + a + b + c + acc;
		i = i + 1;
	}
	return t;
}
`},
	}
}

// IPA measures the MOD/REF ablation: each program built at O4 with
// and without the summary stage, run on its reference input, results
// checked identical, cycles compared. The suite is the gcc-like and
// vortex-like presets (the multi-module and call-heavy shapes) plus
// the ipa-stressing program above.
func IPA(cfg Config) (*IPARecord, error) {
	type prog struct {
		name    string
		mods    []cmo.SourceModule
		inputs  map[string]int64
		modules int
	}
	var progs []prog
	specs := SpecPrograms(cfg)
	for _, p := range []Program{specs[2], specs[7]} { // gcc-like, vortex-like
		progs = append(progs, prog{
			name: p.Spec.Name, mods: sources(p.Spec),
			inputs: refInputs(p.Spec), modules: p.Spec.Modules,
		})
	}
	progs = append(progs, prog{
		name: "modeps", mods: ipaStressSources(),
		inputs: map[string]int64{"input0": 400}, modules: 2,
	})

	rec := &IPARecord{Benchmark: "ipa-ablation"}
	for _, p := range progs {
		cfg.logf("ipa: %s\n", p.name)
		build := func(noIPA bool) (*cmo.Build, *cmo.RunResult, error) {
			b, err := cmo.BuildSource(p.mods, cmo.Options{
				Level: cmo.O4, SelectPercent: -1,
				NoIPA:    noIPA,
				Volatile: workload.InputGlobals(),
				Trace:    cfg.Trace,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("ipa %s noipa=%t: %w", p.name, noIPA, err)
			}
			rr, err := b.Run(p.inputs, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("ipa %s noipa=%t: run: %w", p.name, noIPA, err)
			}
			return b, rr, nil
		}
		with, rrWith, err := build(false)
		if err != nil {
			return nil, err
		}
		_, rrWithout, err := build(true)
		if err != nil {
			return nil, err
		}
		pt := IPAPoint{
			Program:        p.name,
			Modules:        p.modules,
			WithCycles:     rrWith.Stats.Cycles,
			WithoutCycles:  rrWithout.Stats.Cycles,
			LoadsForwarded: with.Stats.HLO.GLoadsForwarded,
			StoresKilled:   with.Stats.HLO.GStoresKilled,
			PureCSEs:       with.Stats.HLO.PureCSEs,
			Identical:      rrWith.Value == rrWithout.Value,
		}
		if rrWithout.Stats.Cycles > 0 {
			pt.ReductionPct = 100 * float64(rrWithout.Stats.Cycles-rrWith.Stats.Cycles) /
				float64(rrWithout.Stats.Cycles)
		}
		if !pt.Identical {
			return nil, fmt.Errorf("ipa %s: ablation changed the program result: %d vs %d",
				p.name, rrWith.Value, rrWithout.Value)
		}
		if pt.ReductionPct > rec.BestReductionPct {
			rec.BestReductionPct = pt.ReductionPct
		}
		rec.Points = append(rec.Points, pt)
	}
	return rec, nil
}

// RenderIPA formats the ablation as the report table.
func RenderIPA(rec *IPARecord) string {
	var sb strings.Builder
	sb.WriteString("Interprocedural MOD/REF ablation (O4 vs O4 -noipa, reference input)\n")
	fmt.Fprintf(&sb, "%-10s %8s %14s %14s %10s %6s %6s %6s\n",
		"program", "modules", "with-cycles", "without", "saved", "fwd", "dse", "cse")
	for _, pt := range rec.Points {
		fmt.Fprintf(&sb, "%-10s %8d %14d %14d %9.2f%% %6d %6d %6d\n",
			pt.Program, pt.Modules, pt.WithCycles, pt.WithoutCycles,
			pt.ReductionPct, pt.LoadsForwarded, pt.StoresKilled, pt.PureCSEs)
	}
	return sb.String()
}

// WriteIPAJSON writes the BENCH_ipa.json record.
func WriteIPAJSON(w io.Writer, rec *IPARecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
