package experiments

import (
	"fmt"
	"strings"

	cmo "cmo"
	"cmo/internal/naim"
	"cmo/internal/workload"
)

// HistRow is one framework generation of the paper's section-8
// history: HLO memory per source line.
type HistRow struct {
	Era          string
	Description  string
	HLOPeak      int64
	Lines        int
	BytesPerLine float64
}

// TableHistory regenerates the memory-per-line history (paper
// section 8): HP-UX 9.0 kept everything expanded (~1.7 KB/line);
// 10.01 introduced IR compaction (~0.9 KB/line); the 10.20 NAIM
// framework brought it down far enough to compile millions of lines.
// Our size model is calibrated to the same regime; the measured
// ratios between generations are the reproduced result.
func TableHistory(cfg Config) ([]HistRow, error) {
	p := SpecPrograms(cfg)[2] // gcc-like
	spec := p.Spec
	spec.Modules = cfg.scale(24)
	mods := sources(spec)
	db, err := cmo.Train(mods, []map[string]int64{trainInputs(spec)}, cmo.Options{})
	if err != nil {
		return nil, fmt.Errorf("history train: %w", err)
	}
	configs := []struct {
		era, desc string
		naimCfg   naim.Config
	}{
		{"HP-UX 9.0", "all pools expanded", naim.Config{ForceLevel: naim.LevelOff}},
		{"HP-UX 10.01", "IR compaction", naim.Config{ForceLevel: naim.LevelIR, CacheSlots: 6}},
		{"HP-UX 10.20", "full NAIM (IR+ST+disk)", naim.Config{ForceLevel: naim.LevelDisk, CacheSlots: 6}},
	}
	var rows []HistRow
	for _, c := range configs {
		b, err := cmo.BuildSource(mods, cmo.Options{
			Level: cmo.O4, PBO: true, DB: db, SelectPercent: -1,
			Volatile: workload.InputGlobals(),
			NAIM:     c.naimCfg,
		})
		if err != nil {
			return nil, fmt.Errorf("history %s: %w", c.era, err)
		}
		row := HistRow{
			Era:         c.era,
			Description: c.desc,
			HLOPeak:     b.Stats.NAIM.PeakBytes,
			Lines:       b.Stats.TotalLines,
		}
		row.BytesPerLine = float64(row.HLOPeak) / float64(row.Lines)
		rows = append(rows, row)
		cfg.logf("history: %-12s %-24s %8.1f B/line\n", c.era, c.desc, row.BytesPerLine)
	}
	return rows, nil
}

// RenderHistory formats the table.
func RenderHistory(rows []HistRow) string {
	var sb strings.Builder
	sb.WriteString("Section 8 history: HLO memory per source line by framework generation\n")
	sb.WriteString(fmt.Sprintf("%-12s %-26s %12s %8s %10s\n", "era", "technique", "HLO bytes", "lines", "B/line"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-12s %-26s %12d %8d %10.1f\n",
			r.Era, r.Description, r.HLOPeak, r.Lines, r.BytesPerLine))
	}
	return sb.String()
}
