package experiments

import (
	"testing"
)

// tiny keeps test runtime reasonable while preserving the shapes.
func tiny() Config { return Config{Scale: 0.5} }

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Figure1(tiny())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11 (8 SPEC-like + 3 MCAD-like)", len(rows))
	}
	var mcadBoth, specBoth []float64
	for _, r := range rows {
		// Every program benefits to some degree from the full
		// combination (paper: "all programs benefit").
		if r.SpeedupBoth <= 1.0 {
			t.Errorf("%s: CMO+PBO speedup %.3f <= 1", r.Program, r.SpeedupBoth)
		}
		if r.SpeedupPBO <= 0.95 {
			t.Errorf("%s: PBO made things much worse: %.3f", r.Program, r.SpeedupPBO)
		}
		// CMO+PBO should essentially dominate PBO alone.
		if r.SpeedupBoth < r.SpeedupPBO*0.98 {
			t.Errorf("%s: CMO+PBO (%.3f) well below PBO alone (%.3f)", r.Program, r.SpeedupBoth, r.SpeedupPBO)
		}
		if r.MCAD {
			mcadBoth = append(mcadBoth, r.SpeedupBoth)
			// Pure CMO must be visibly costlier to build than the
			// selective shipped configuration (the scaled analogue of
			// the paper's "never able to compile Mcad1 without
			// profile data").
			if r.CMOCostFactor < 1.2 {
				t.Errorf("%s: pure CMO build only %.2fx the selective build", r.Program, r.CMOCostFactor)
			}
		} else {
			specBoth = append(specBoth, r.SpeedupBoth)
		}
	}
	// The ISV-like applications should be among the better results
	// (paper: "speedups seen in the ISV applications are among the
	// better results"). Compare means.
	if mean(mcadBoth) <= mean(specBoth)*0.95 {
		t.Errorf("MCAD-like mean speedup %.3f not in the upper range of SPEC-like %.3f",
			mean(mcadBoth), mean(specBoth))
	}
	t.Logf("\n%s", RenderFigure1(rows))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := Figure4(tiny())
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(points) < 4 {
		t.Fatalf("too few points: %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.Lines <= first.Lines {
		t.Fatal("lines did not grow")
	}
	// HLO memory must grow sub-linearly: bytes-per-line falls.
	bplFirst := float64(first.HLOPeak) / float64(first.Lines)
	bplLast := float64(last.HLOPeak) / float64(last.Lines)
	if bplLast >= bplFirst*0.8 {
		t.Errorf("HLO bytes/line did not fall sub-linearly: %.1f -> %.1f", bplFirst, bplLast)
	}
	// The overall compiler curve keeps growing.
	if last.CompilerPeak <= first.CompilerPeak {
		t.Error("compiler total did not grow with program size")
	}
	// HLO growth factor must be well below the line growth factor.
	lineGrowth := float64(last.Lines) / float64(first.Lines)
	hloGrowth := float64(last.HLOPeak) / float64(first.HLOPeak)
	if hloGrowth > lineGrowth*0.7 {
		t.Errorf("HLO growth %.2fx vs line growth %.2fx: not sub-linear enough", hloGrowth, lineGrowth)
	}
	t.Logf("\n%s", RenderFigure4(points))
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := Figure5(tiny())
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("want 4 configurations, got %d", len(points))
	}
	// Memory falls monotonically across the dial.
	for i := 1; i < len(points); i++ {
		if points[i].PeakBytes >= points[i-1].PeakBytes {
			t.Errorf("%s peak %d not below %s peak %d",
				points[i].Name, points[i].PeakBytes, points[i-1].Name, points[i-1].PeakBytes)
		}
	}
	// The compaction configurations actually did compaction work, and
	// the disk configuration actually hit the repository.
	if points[1].Compactions == 0 {
		t.Error("IR compaction config never compacted")
	}
	if points[3].DiskWrites == 0 {
		t.Error("disk config never wrote the repository")
	}
	// NAIM-off spends no time compacting.
	if points[0].CompactNanos != 0 || points[0].DiskNanos != 0 {
		t.Error("NAIM-off config reported compaction/disk time")
	}
	t.Logf("\n%s", RenderFigure5(points))
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := Figure6(tiny())
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(points) < 6 {
		t.Fatalf("too few points: %d", len(points))
	}
	// Selected lines grow monotonically with the percentage.
	for i := 1; i < len(points); i++ {
		if points[i].SelectedLines < points[i-1].SelectedLines {
			t.Errorf("selected lines fell from %d to %d at %.0f%%",
				points[i-1].SelectedLines, points[i].SelectedLines, points[i].Percent)
		}
	}
	// Run time improves and then plateaus: the 20% build must capture
	// nearly all of the 100% build's benefit.
	base := points[0].RunCycles
	var at20, at100 int64
	for _, p := range points {
		if p.Percent == 20 {
			at20 = p.RunCycles
		}
		if p.Percent == 100 {
			at100 = p.RunCycles
		}
	}
	if at100 >= base {
		t.Fatalf("full CMO+PBO (%d cycles) not faster than 0%% (%d)", at100, base)
	}
	gain20 := float64(base - at20)
	gain100 := float64(base - at100)
	// The paper's knee claim is qualitative ("peak performance is
	// reached when roughly 20% of the code is compiled"); we assert
	// the 20% point captures the strong majority of the full-CMO
	// benefit, leaving headroom for ±1-2% layout variance between
	// builds.
	if gain20 < 0.80*gain100 {
		t.Errorf("20%% capture only %.0f%% of full benefit (want >= 80%%)", 100*gain20/gain100)
	}
	// Compile time grows with selection across the CMO region (from
	// the knee to full selection). The 0% point is excluded: it runs
	// no HLO at all and its wall time is dominated by LLO over the
	// never-pruned cold code, which is reported but not asserted.
	var at5Build, at100Build int64
	for _, p := range points {
		if p.Percent == 5 {
			at5Build = p.BuildNanos
		}
		if p.Percent == 100 {
			at100Build = p.BuildNanos
		}
	}
	if at100Build <= at5Build {
		t.Errorf("build time did not grow across the CMO region: 5%%=%.2fms 100%%=%.2fms",
			float64(at5Build)/1e6, float64(at100Build)/1e6)
	}
	t.Logf("\n%s", RenderFigure6(points))
}

func TestHistoryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := TableHistory(tiny())
	if err != nil {
		t.Fatalf("TableHistory: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 eras, got %d", len(rows))
	}
	if !(rows[0].BytesPerLine > rows[1].BytesPerLine && rows[1].BytesPerLine > rows[2].BytesPerLine) {
		t.Errorf("bytes/line not strictly falling across eras: %.1f %.1f %.1f",
			rows[0].BytesPerLine, rows[1].BytesPerLine, rows[2].BytesPerLine)
	}
	// The expanded-form figure should be in the paper's ~KB-per-line
	// regime (order of magnitude).
	if rows[0].BytesPerLine < 300 || rows[0].BytesPerLine > 20000 {
		t.Errorf("expanded bytes/line %.1f outside the plausible regime", rows[0].BytesPerLine)
	}
	t.Logf("\n%s", RenderHistory(rows))
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rs, err := Ablations(tiny())
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	if r := byName["swizzle-vs-rebuild"]; r.Factor < 2 {
		t.Errorf("decoding relocatable pools only %.2fx faster than rebuilding from source", r.Factor)
	}
	// The schedule ablation's effect depends on per-caller fanout; at
	// laptop scale it only needs to do no harm.
	if r := byName["inline-schedule-locality"]; r.Factor < 0.95 {
		t.Errorf("module-grouped schedule clearly worse than interleaved (%.2fx)", r.Factor)
	}
	if r := byName["expanded-pool-cache"]; r.Factor < 1.1 {
		t.Errorf("LRU pool cache saves too little: %.2fx fewer expansions", r.Factor)
	}
	if r := byName["naim-threshold-overhead"]; r.Value != 0 {
		t.Errorf("thresholded NAIM compacted %v pools on an in-memory compile", r.Value)
	}
	if r := byName["multi-layer-codegen"]; r.Factor < 1.05 {
		t.Errorf("multi-layer strategy saved too little codegen time: %.2fx", r.Factor)
	}
	t.Logf("\n%s", RenderAblations(rs))
}

func TestIPAAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rec, err := IPA(tiny())
	if err != nil {
		t.Fatalf("IPA: %v", err)
	}
	if len(rec.Points) != 3 {
		t.Fatalf("got %d points, want 3 (gcc-like, vortex-like, modeps)", len(rec.Points))
	}
	for _, pt := range rec.Points {
		// IPA() already fails hard on a result mismatch; re-check the
		// recorded bit so the JSON can be trusted standalone.
		if !pt.Identical {
			t.Errorf("%s: ablation changed the program result", pt.Program)
		}
		if pt.ReductionPct < -1 {
			t.Errorf("%s: ipa transforms made the program slower: %.2f%%", pt.Program, pt.ReductionPct)
		}
	}
	// The stressing program is the acceptance bar: every transform
	// fires and the cycles move.
	stress := rec.Points[len(rec.Points)-1]
	if stress.LoadsForwarded == 0 || stress.StoresKilled == 0 || stress.PureCSEs == 0 {
		t.Errorf("modeps did not exercise every transform: %+v", stress)
	}
	if rec.BestReductionPct < 5 {
		t.Errorf("best cycle reduction %.2f%% below the 5%% bar", rec.BestReductionPct)
	}
	t.Logf("\n%s", RenderIPA(rec))
}

func TestDistributedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rec, err := Distributed(tiny())
	if err != nil {
		t.Fatalf("Distributed: %v", err)
	}
	if !rec.Identical {
		t.Fatalf("some image differed across worker shapes:\n%s", RenderDistributed(rec))
	}
	if len(rec.Runs) < 4 {
		t.Fatalf("got %d runs, want the baseline plus local and remote shapes", len(rec.Runs))
	}
	var remotePartitions int
	for _, run := range rec.Runs {
		if len(run.Points) != 3 {
			t.Fatalf("%s: got %d points, want cold/warm-noop/warm-edit1", run.Config, len(run.Points))
		}
		for _, pt := range run.Points {
			if got := pt.PartitionsClean + pt.PartitionsLocal + pt.PartitionsRemote; got != pt.Partitions {
				t.Errorf("%s/%s: partition accounting %d != %d", run.Config, pt.Name, got, pt.Partitions)
			}
			remotePartitions += pt.PartitionsRemote
		}
		// The warm edit touches one function, so a partitioned warm
		// rebuild must replay at least one partition clean.
		edit := run.Points[2]
		if run.Partitions > 1 && edit.Partitions > 0 && edit.PartitionsClean == 0 {
			t.Errorf("%s: warm-edit1 replayed no partitions", run.Config)
		}
	}
	if remotePartitions == 0 {
		t.Errorf("no partition was served by a remote daemon across the sweep")
	}
	t.Logf("\n%s", RenderDistributed(rec))
}
