// Package serve is the build-daemon core behind cmd/cmod: an HTTP/JSON
// front end over the cmo facade that keeps one build Session per cache
// directory open across requests, so every request after the first
// starts warm (frontend replay, HLO replay, shared NAIM repository).
//
// The server is deliberately a thin coordination layer; compilation
// semantics live entirely in the cmo package. What serve adds:
//
//   - Admission control: at most MaxBuilds builds run concurrently and
//     at most QueueDepth more wait; beyond that POST /build answers 503
//     immediately rather than stacking latency.
//   - A server-wide Jobs budget: each build gets one worker for free
//     and claims extra workers from a shared pool only when they are
//     idle, so a loaded server degrades toward Jobs=1 per build instead
//     of oversubscribing the machine. Generated code is Jobs-invariant,
//     so degradation affects latency only, never output.
//   - Per-request deadlines wired into Options.Context: a request that
//     times out (or whose client disconnects) aborts at the pipeline's
//     next cancellation checkpoint with no pinned NAIM handles left.
//   - Single-writer session discipline: builds sharing a cache
//     directory share one Session (replay reads are concurrent; the
//     repository is internally locked) and serialize only the durable
//     Commit that runs after each build.
//   - A shared artifact cache (Config.CAS, cmd/cmod -cas-dir): the
//     internal/cas blob store mounted at /cas/{namespace}/{hash}
//     behind the drain check and a dedicated slot pool, so a fleet of
//     cmoc clients (-remote-cache) fills local misses from blobs some
//     other machine already built. See cas.go.
//   - Observability: every build runs under its own obs.Trace whose
//     counters fold into a server-lifetime trace, so serve.* counters
//     (queue depth, active builds, outcomes) sit next to cumulative
//     naim.* and session.* counters; a telemetry registry aggregates
//     latency/stage/memory histograms across builds (GET /metrics,
//     Prometheus text; GET /metrics.json, the legacy counter JSON);
//     and each cache directory keeps a persistent build ledger that
//     replays on reopen (GET /builds, GET /builds/{id},
//     GET /builds/{id}/trace). See telemetry.go and ledger.go.
//
// Graceful drain: Drain marks the server draining (healthz goes 503,
// new builds are refused), waits for queued and in-flight builds to
// finish, then commits and closes every session so the on-disk
// repositories are fsynced. cmd/cmod calls it on SIGTERM.
package serve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	cmo "cmo"
	"cmo/internal/cas"
	"cmo/internal/obs"
)

// Config sizes the daemon. The zero value is usable: two concurrent
// builds, a short queue, one worker per build, five-minute default
// deadline.
type Config struct {
	// MaxBuilds is the number of builds that may run concurrently
	// (default 2).
	MaxBuilds int
	// QueueDepth is how many admitted requests may wait for a build
	// slot (default 8). A request beyond MaxBuilds+QueueDepth is
	// refused with 503 instead of queued.
	QueueDepth int
	// JobBudget is the server-wide worker-goroutine budget shared by
	// all concurrent builds (default MaxBuilds: one worker each).
	// Each build always gets one worker; a request asking for more
	// (Options.Jobs) claims the extras from the shared pool only if
	// they are free right now.
	JobBudget int
	// DefaultTimeout bounds a build whose request names no deadline
	// (default 5 minutes).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a request may ask for (default:
	// DefaultTimeout). Requests asking for more are clamped.
	MaxTimeout time.Duration
	// Trace, when non-nil, is the trace the server records into;
	// nil means the server makes its own (exposed at /metrics).
	Trace *obs.Trace
	// TraceRing is how many recent builds keep their full trace in
	// memory for GET /builds/{id}/trace (default 32; traces are not
	// persisted — a restart forgets them, the ledger remembers the
	// numbers).
	TraceRing int
	// RecordRing is how many build ledger records the server holds in
	// memory for GET /builds, and how many each on-disk ledger retains
	// after compaction (default 512).
	RecordRing int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in
	// because profiling endpoints on a build daemon are a deliberate
	// operational decision, not a default.
	EnablePprof bool
	// BackendSlots bounds concurrent POST /backend partition compiles
	// (default 2*MaxBuilds; negative disables the endpoint). Backend
	// work is deliberately admitted outside the build queue: a daemon
	// that is both building and serving as a worker must never deadlock
	// on its own farm-out, and a refused partition just compiles on the
	// dispatcher instead.
	BackendSlots int
	// CAS, when non-nil, is the shared artifact cache store this
	// daemon serves at GET/PUT/HEAD /cas/{namespace}/{hash} (see
	// internal/cas; cmd/cmod opens one from -cas-dir). nil leaves the
	// endpoint unmounted. The server owns the store from here: Drain
	// closes it after the sessions.
	CAS *cas.Store
	// CASSlots bounds concurrent /cas requests (default 4*MaxBuilds).
	// Like BackendSlots, cache traffic is admitted outside the build
	// queue — a daemon building for one tenant while serving another
	// tenant's cache must never deadlock itself — and a refused
	// request is just a client-side miss, absorbed like every other
	// remote failure.
	CASSlots int
	// CASToken, when non-empty, is the shared secret every /cas
	// request must present as "Authorization: Bearer <token>"; requests
	// without it answer 401. Namespaces alone are cooperative
	// visibility, not a security boundary — the token is the daemon's
	// only defense against an untrusted peer reading or poisoning a
	// tenant's cache. Empty leaves /cas open (trusted networks only).
	CASToken string
}

// sessionEntry is one cache directory's shared state: the open
// Session every build against that directory uses, and the mutex that
// makes the post-build repository Commit single-writer. Replay reads
// during a build take no entry-level lock at all — the repository is
// internally synchronized — so concurrent builds warm from the same
// session freely.
type sessionEntry struct {
	dir      string
	sess     *cmo.Session
	ledger   *Ledger
	commitMu sync.Mutex
	builds   atomic.Int64
	commits  atomic.Int64
}

// Server is the daemon core. Create with New, mount Handler on an
// http.Server, and call Drain before exit.
type Server struct {
	cfg   Config
	trace *obs.Trace
	mux   *http.ServeMux

	// slots is the build-concurrency semaphore (cap MaxBuilds);
	// queue is the admission semaphore (cap MaxBuilds+QueueDepth);
	// extraJobs holds the shared worker tokens beyond the one each
	// build owns (cap JobBudget-MaxBuilds, possibly 0); backendSlots
	// bounds /backend partition compiles (nil = endpoint disabled),
	// independent of build admission so a daemon can be dispatcher and
	// worker at once without deadlock.
	slots        chan struct{}
	queue        chan struct{}
	extraJobs    chan struct{}
	backendSlots chan struct{}
	casSlots     chan struct{}

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	draining bool
	closed   bool
	inflight sync.WaitGroup

	reqSeq   atomic.Uint64
	shutdown chan struct{} // closed once by POST /shutdown
	shutOnce sync.Once

	start time.Time
	// bootID prefixes request ids so records from different daemon
	// lifetimes never collide in a ledger that outlives the process.
	bootID string

	// Telemetry (see telemetry.go): the registry of histograms and
	// gauges behind GET /metrics, plus the bounded in-memory rings of
	// ledger records (GET /builds) and per-build traces
	// (GET /builds/{id}/trace).
	registry *obs.Registry
	inst     *instruments
	obsMu    sync.Mutex
	records  []BuildRecord
	traces   map[string]*obs.Trace
	traceIDs []string

	ctr struct {
		accepted, rejected     *obs.Counter
		completed, failed      *obs.Counter
		canceled               *obs.Counter
		queueDepth, active     *obs.Counter
		queueNanos, commitsCtr *obs.Counter
	}
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.MaxBuilds <= 0 {
		cfg.MaxBuilds = 2
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	if cfg.JobBudget <= 0 {
		cfg.JobBudget = cfg.MaxBuilds
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 32
	}
	if cfg.RecordRing <= 0 {
		cfg.RecordRing = 512
	}
	tr := cfg.Trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	now := time.Now()
	s := &Server{
		cfg:      cfg,
		trace:    tr,
		mux:      http.NewServeMux(),
		slots:    make(chan struct{}, cfg.MaxBuilds),
		queue:    make(chan struct{}, cfg.MaxBuilds+cfg.QueueDepth),
		sessions: make(map[string]*sessionEntry),
		shutdown: make(chan struct{}),
		start:    now,
		bootID:   fmt.Sprintf("%06x", uint64(now.UnixNano())&0xffffff),
	}
	if extra := cfg.JobBudget - cfg.MaxBuilds; extra > 0 {
		s.extraJobs = make(chan struct{}, extra)
		for i := 0; i < extra; i++ {
			s.extraJobs <- struct{}{}
		}
	}
	if cfg.BackendSlots == 0 {
		cfg.BackendSlots = 2 * cfg.MaxBuilds
		s.cfg.BackendSlots = cfg.BackendSlots
	}
	if cfg.BackendSlots > 0 {
		s.backendSlots = make(chan struct{}, cfg.BackendSlots)
	}
	if cfg.CAS != nil {
		if cfg.CASSlots <= 0 {
			cfg.CASSlots = 4 * cfg.MaxBuilds
			s.cfg.CASSlots = cfg.CASSlots
		}
		s.casSlots = make(chan struct{}, cfg.CASSlots)
	}
	s.ctr.accepted = tr.Counter("serve.accepted")
	s.ctr.rejected = tr.Counter("serve.rejected")
	s.ctr.completed = tr.Counter("serve.completed")
	s.ctr.failed = tr.Counter("serve.failed")
	s.ctr.canceled = tr.Counter("serve.canceled")
	s.ctr.queueDepth = tr.Counter("serve.queue_depth")
	s.ctr.active = tr.Counter("serve.active_builds")
	s.ctr.queueNanos = tr.Counter("serve.queue_wait_nanos")
	s.ctr.commitsCtr = tr.Counter("serve.commits")
	s.initTelemetry()
	s.routes()
	if cfg.CAS != nil {
		s.mountCAS(cfg.CAS)
		s.initCASTelemetry(cfg.CAS)
	}
	return s
}

// Handler is the daemon's HTTP surface: mount it on any listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Trace exposes the server-wide trace (the /metrics source).
func (s *Server) Trace() *obs.Trace { return s.trace }

// ShutdownRequested is closed when a client POSTs /shutdown; the
// owning process (cmd/cmod) treats it exactly like SIGTERM.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdown }

// session returns (opening if needed) the shared entry for a cache
// directory. The key is the absolute path, so "./cache" and "cache"
// reach the same Session and therefore the same commit lock.
func (s *Server) session(dir string) (*sessionEntry, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: resolving cache dir %q: %w", dir, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server is shut down")
	}
	if e, ok := s.sessions[abs]; ok {
		return e, nil
	}
	sess, err := cmo.OpenSession(abs)
	if err != nil {
		return nil, fmt.Errorf("serve: opening session for %s: %w", abs, err)
	}
	// The cache directory's ledger opens with its session; records a
	// previous daemon wrote replay into the registry so fleet totals
	// survive restarts. A ledger that cannot open degrades to no
	// history — the session (and its builds) still work.
	ledger, prior, lerr := OpenLedger(abs, s.cfg.RecordRing)
	if lerr != nil {
		s.inst.ledgerErr.Add(1)
		ledger = nil
	}
	e := &sessionEntry{dir: abs, sess: sess, ledger: ledger}
	s.sessions[abs] = e
	if len(prior) > 0 {
		s.replayLedger(prior)
	}
	return e, nil
}

// admit reserves a queue slot for one request, refusing immediately
// when the server is draining or the queue is full. The caller must
// call the returned release exactly once.
func (s *Server) admit() (release func(), ok bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.mu.Unlock()
		return nil, false
	}
	// The waitgroup add happens under mu so Drain's wait cannot start
	// between our draining check and the add.
	s.inflight.Add(1)
	s.mu.Unlock()
	s.ctr.accepted.Add(1)
	s.ctr.queueDepth.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.queue
			s.ctr.queueDepth.Add(-1)
			s.inflight.Done()
		})
	}, true
}

// acquireJobs turns a request's Jobs ask into the worker count this
// build actually gets: one guaranteed worker plus as many extras as
// are free in the shared pool right now. Never blocks — under load
// builds degrade toward sequential instead of queueing on each other.
func (s *Server) acquireJobs(want int) (jobs int, release func()) {
	if want < 1 {
		want = 1
	}
	extras := 0
	if s.extraJobs != nil {
	claim:
		for extras < want-1 {
			select {
			case <-s.extraJobs:
				extras++
			default:
				break claim // pool empty; run with what we have
			}
		}
	}
	n := extras
	return 1 + extras, func() {
		for i := 0; i < n; i++ {
			s.extraJobs <- struct{}{}
		}
	}
}

// Drain refuses new work, waits for every admitted build to finish,
// then commits and closes all sessions. Idempotent; safe to call from
// the signal handler while requests are in flight. The error is the
// first session-close failure (the drain still closes the rest).
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		// A second drainer waits for the first's builds too, then
		// falls through to the (idempotent) session close.
		s.mu.Unlock()
		s.inflight.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.inflight.Wait()

	s.mu.Lock()
	s.closed = true
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.sessions = make(map[string]*sessionEntry)
	s.mu.Unlock()

	var firstErr error
	for _, e := range entries {
		// Close commits (fsync + manifest) before releasing the files.
		if err := e.sess.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		// The ledger syncs at drain so the history of a cleanly
		// stopped daemon is complete on disk.
		if err := e.ledger.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The cache store closes last: its blobs were durable at each Put
	// (temp-file + rename), so this only refuses further writes.
	if s.cfg.CAS != nil {
		if err := s.cfg.CAS.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
