package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cmo "cmo"
	"cmo/internal/objfile"
	"cmo/internal/workload"
)

func testSpec(seed int64) workload.Spec {
	return workload.Spec{
		Name: "serve", Seed: seed,
		Modules: 4, HotPerModule: 1, ColdPerModule: 2, ColdStmts: 6,
		ArrayElems: 16,
		TrainIters: 20, RefIters: 50, TrainMode: 2, RefMode: 4,
	}
}

func testModules(spec workload.Spec) []Module {
	var mods []Module
	for _, m := range spec.Generate() {
		mods = append(mods, Module{Name: m.Name + ".minc", Text: m.Text})
	}
	return mods
}

// oneShotImage builds the same program directly through the facade —
// the reference bytes every daemon reply must match.
func oneShotImage(t *testing.T, mods []Module) []byte {
	t.Helper()
	src := make([]cmo.SourceModule, len(mods))
	for i, m := range mods {
		src[i] = cmo.SourceModule{Name: m.Name, Text: m.Text}
	}
	b, err := cmo.BuildSource(src, cmo.Options{
		Level:         cmo.O4,
		SelectPercent: -1,
		Volatile:      workload.InputGlobals(),
	})
	if err != nil {
		t.Fatalf("one-shot build: %v", err)
	}
	var buf bytes.Buffer
	if err := objfile.EncodeImage(&buf, b.Image); err != nil {
		t.Fatalf("encoding one-shot image: %v", err)
	}
	return buf.Bytes()
}

func postBuild(t *testing.T, url string, req BuildRequest) (*BuildResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /build: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, &http.Response{StatusCode: resp.StatusCode, Header: resp.Header.Clone(),
			Body: http.NoBody, Status: er.Error}
	}
	var br BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &br, nil
}

// TestDaemonConcurrentBuildsByteIdentical is the tentpole's acceptance
// test: several concurrent builds against one cache directory, every
// reply byte-identical to a one-shot in-process build, and the
// follow-up request fully warm.
func TestDaemonConcurrentBuildsByteIdentical(t *testing.T) {
	spec := testSpec(41)
	mods := testModules(spec)
	want := oneShotImage(t, mods)
	dir := t.TempDir()

	srv := New(Config{MaxBuilds: 2, JobBudget: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	req := BuildRequest{Modules: mods, CacheDir: dir, Jobs: 2,
		Volatile: workload.InputGlobals()}

	const n = 3
	var wg sync.WaitGroup
	replies := make([]*BuildResponse, n)
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			br, failResp := postBuild(t, ts.URL, req)
			if failResp != nil {
				errs[i] = fmt.Sprintf("status %d: %s", failResp.StatusCode, failResp.Status)
				return
			}
			replies[i] = br
		}(i)
	}
	wg.Wait()

	ids := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != "" {
			t.Fatalf("request %d failed: %s", i, errs[i])
		}
		if !bytes.Equal(replies[i].Image, want) {
			t.Errorf("request %d image differs from one-shot build (%d vs %d bytes)",
				i, len(replies[i].Image), len(want))
		}
		if replies[i].RequestID == "" {
			t.Errorf("request %d has no request id", i)
		}
		ids[replies[i].RequestID] = true
	}
	if len(ids) != n {
		t.Errorf("request ids not distinct: %v", ids)
	}

	// The follow-up build must be fully warm: the dependency graph the
	// earlier requests persisted sees a clean closure and replays the
	// whole image without any stage work.
	br, failResp := postBuild(t, ts.URL, req)
	if failResp != nil {
		t.Fatalf("warm request failed: status %d: %s", failResp.StatusCode, failResp.Status)
	}
	if !bytes.Equal(br.Image, want) {
		t.Errorf("warm image differs from one-shot build")
	}
	if !br.Stats.GraphImageReplay {
		t.Errorf("warm build did not replay the image (frontend %d hits, %d misses, dirty closure %d)",
			br.Stats.CacheFrontendHits, br.Stats.CacheFrontendMisses, br.Stats.GraphDirtyClosure)
	}
	if br.Stats.CacheFrontendMisses != 0 {
		t.Errorf("warm build lowered %d modules, want 0", br.Stats.CacheFrontendMisses)
	}
	if br.Stats.QueueNanos < 0 {
		t.Errorf("negative queue wait %d", br.Stats.QueueNanos)
	}
	if !strings.Contains(br.Timing, "timing:") {
		t.Errorf("reply timing report missing: %q", br.Timing)
	}
}

// TestDaemonDeadline proves a request deadline aborts the build with a
// gateway-timeout status and leaves the server healthy for later work.
func TestDaemonDeadline(t *testing.T) {
	// A deliberately heavyweight program so the 1ms deadline below is
	// guaranteed to expire mid-build rather than racing completion.
	spec := workload.Spec{
		Name: "deadline", Seed: 43,
		Modules: 24, HotPerModule: 3, ColdPerModule: 8, ColdStmts: 40,
		ArrayElems: 64,
		TrainIters: 20, RefIters: 50, TrainMode: 2, RefMode: 4,
	}
	mods := testModules(spec)

	srv := New(Config{MaxBuilds: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	req := BuildRequest{Modules: mods, TimeoutMillis: 1,
		Volatile: workload.InputGlobals()}
	br, failResp := postBuild(t, ts.URL, req)
	if failResp == nil {
		t.Fatalf("1ms deadline request succeeded (%d image bytes)", len(br.Image))
	}
	if failResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want %d (%s)",
			failResp.StatusCode, http.StatusGatewayTimeout, failResp.Status)
	}
	if failResp.Header.Get(requestIDHeader) == "" {
		t.Errorf("failure reply carries no request id header")
	}

	// The slot and job tokens must have been released: a normal build
	// right after succeeds.
	ok, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods,
		Volatile: workload.InputGlobals()})
	if failResp != nil {
		t.Fatalf("build after deadline failed: status %d: %s", failResp.StatusCode, failResp.Status)
	}
	if len(ok.Image) == 0 {
		t.Errorf("build after deadline returned empty image")
	}
}

// TestDaemonDrainCommitsSessions proves drain is durable: artifacts
// written by daemon builds survive into a fresh process-level session.
func TestDaemonDrainCommitsSessions(t *testing.T) {
	spec := testSpec(47)
	mods := testModules(spec)
	dir := t.TempDir()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("build: status %d: %s", failResp.StatusCode, failResp.Status)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Draining twice is safe, and a drained server refuses work.
	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	hc, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hc.Body.Close()
	if hc.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hc.StatusCode)
	}
	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods,
		Volatile: workload.InputGlobals()}); failResp == nil ||
		failResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted a build")
	}

	// A direct in-process build over the same directory must start
	// warm: the drain committed the repository.
	src := make([]cmo.SourceModule, len(mods))
	for i, m := range mods {
		src[i] = cmo.SourceModule{Name: m.Name, Text: m.Text}
	}
	b, err := cmo.BuildSource(src, cmo.Options{Level: cmo.O4, SelectPercent: -1,
		Volatile: workload.InputGlobals(), CacheDir: dir})
	if err != nil {
		t.Fatalf("post-drain build: %v", err)
	}
	if !b.Stats.GraphImageReplay && b.Stats.CacheFrontendHits != len(mods) {
		t.Errorf("post-drain build was cold: image replay %v, frontend hits = %d, want %d (drain did not commit)",
			b.Stats.GraphImageReplay, b.Stats.CacheFrontendHits, len(mods))
	}
}

// TestDaemonEndpoints covers the small read-only surface.
func TestDaemonEndpoints(t *testing.T) {
	spec := testSpec(53)
	mods := testModules(spec)
	dir := t.TempDir()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("build: status %d: %s", failResp.StatusCode, failResp.Status)
	}

	var st StatusResponse
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	resp.Body.Close()
	if len(st.Sessions) != 1 || st.Sessions[0].Builds != 1 || st.Sessions[0].Commits != 1 {
		t.Errorf("status sessions = %+v, want one with 1 build, 1 commit", st.Sessions)
	}
	if st.Draining {
		t.Errorf("status claims draining")
	}
	if st.Daemon.GoVersion == "" || st.Daemon.Version == "" || st.Daemon.PID == 0 {
		t.Errorf("status daemon info incomplete: %+v", st.Daemon)
	}
	if st.Daemon.UptimeSec < 0 {
		t.Errorf("negative uptime %v", st.Daemon.UptimeSec)
	}

	mResp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mResp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	mResp.Body.Close()
	byName := metrics.Counters
	if byName["serve.completed"] != 1 {
		t.Errorf("serve.completed = %d, want 1", byName["serve.completed"])
	}
	if byName["serve.active_builds"] != 0 {
		t.Errorf("serve.active_builds = %d, want 0 at rest", byName["serve.active_builds"])
	}
	if _, ok := byName["session.frontend_misses"]; !ok {
		t.Errorf("metrics lack the build's session counters: %v", byName)
	}

	// Healthz keeps its first line a bare "ok" for probes, with the
	// identity block after it.
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hbuf bytes.Buffer
	_, _ = hbuf.ReadFrom(hResp.Body)
	hResp.Body.Close()
	lines := strings.Split(hbuf.String(), "\n")
	if lines[0] != "ok" {
		t.Errorf("healthz first line = %q, want \"ok\"", lines[0])
	}
	if !strings.Contains(hbuf.String(), "version:") || !strings.Contains(hbuf.String(), "uptime_sec:") {
		t.Errorf("healthz lacks identity block:\n%s", hbuf.String())
	}

	// Remote shutdown request closes the channel the daemon owner
	// waits on (without tearing this test's server down: Drain is the
	// owner's job).
	sResp, err := http.Post(ts.URL+"/shutdown", "application/json", nil)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	sResp.Body.Close()
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(time.Second):
		t.Errorf("shutdown request did not signal")
	}
}

// TestAdmissionControl exercises the queue bookkeeping without builds.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{MaxBuilds: 1, QueueDepth: -1}) // queue cap 1
	rel1, ok := s.admit()
	if !ok {
		t.Fatalf("first admit refused")
	}
	if _, ok := s.admit(); ok {
		t.Fatalf("admit beyond queue cap accepted")
	}
	rel1()
	rel1() // releasing twice is harmless
	rel2, ok := s.admit()
	if !ok {
		t.Fatalf("admit after release refused")
	}
	rel2()
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, ok := s.admit(); ok {
		t.Fatalf("draining server admitted a request")
	}
}

// TestJobBudget exercises the shared worker pool: one guaranteed
// worker per build, extras only while the pool has them.
func TestJobBudget(t *testing.T) {
	s := New(Config{MaxBuilds: 2, JobBudget: 4}) // 2 extra tokens
	j1, rel1 := s.acquireJobs(4)
	if j1 != 3 {
		t.Errorf("first acquire got %d jobs, want 3 (1 + both extras)", j1)
	}
	j2, rel2 := s.acquireJobs(2)
	if j2 != 1 {
		t.Errorf("second acquire got %d jobs, want the guaranteed 1", j2)
	}
	rel1()
	j3, rel3 := s.acquireJobs(2)
	if j3 != 2 {
		t.Errorf("acquire after release got %d jobs, want 2", j3)
	}
	rel2()
	rel3()

	noPool := New(Config{MaxBuilds: 2}) // budget == builds: no extras
	if j, rel := noPool.acquireJobs(8); j != 1 {
		t.Errorf("no-pool acquire got %d jobs, want 1", j)
	} else {
		rel()
	}
}
