package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	cmo "cmo"
	"cmo/internal/obs"
)

// Fleet telemetry: the daemon aggregates every build into an
// obs.Registry of histograms and counters (rendered at GET /metrics in
// Prometheus text form), keeps the last RecordRing ledger records in
// memory for GET /builds, and holds the last TraceRing full traces for
// GET /builds/{id}/trace. The registry never retains whole traces —
// a build folds into fixed-size histogram buckets, so a daemon that
// serves a million builds holds the same telemetry memory as one that
// served ten.

// buildStages orders the per-stage latency histograms; each gets a
// cmod_build_stage_seconds{stage=...} series.
var buildStages = []string{"frontend", "select", "ipa", "hlo", "llo", "link", "verify"}

// latencyBuckets spans 0.5ms to ~35min in powers of two — wide enough
// for both a warm no-op replay and a cold whole-program O4 build.
func latencyBuckets() []float64 { return obs.ExpBuckets(0.0005, 2, 22) }

// instruments is the fixed set of registry series the daemon records
// every build into.
type instruments struct {
	duration  *obs.Histogram
	queueWait *obs.Histogram
	stage     map[string]*obs.Histogram
	naimPeak  *obs.Histogram
	codeBytes *obs.Histogram
	feRatio   *obs.Histogram
	hloRatio  *obs.Histogram
	lloRatio  *obs.Histogram
	dirty     *obs.Histogram
	critPath  *obs.Histogram
	frontier  *obs.Histogram
	replays   *obs.Counter
	outcomes  map[string]*obs.Counter
	replayed  *obs.Counter
	ledgerErr *obs.Counter

	// Partitioned-backend series: how completed builds' partitions were
	// satisfied (build side), and how this daemon's /backend endpoint
	// fared as a worker (worker side).
	buildParts map[string]*obs.Counter
	partSecs   *obs.Histogram
	partTotal  map[string]*obs.Counter
}

func newInstruments(r *obs.Registry) *instruments {
	r.SetHelp("cmod_build_duration_seconds", "Wall time per completed build (queue wait excluded).")
	r.SetHelp("cmod_build_queue_seconds", "Time each admitted build waited for a build slot.")
	r.SetHelp("cmod_build_stage_seconds", "Per-stage wall time of completed builds.")
	r.SetHelp("cmod_build_naim_peak_bytes", "Peak NAIM working-set bytes per completed build.")
	r.SetHelp("cmod_build_code_bytes", "Final image code size per completed build.")
	r.SetHelp("cmod_build_frontend_hit_ratio", "Frontend replay hit ratio per build with a cache session.")
	r.SetHelp("cmod_build_hlo_hit_ratio", "HLO replay hit ratio per build with a cache session.")
	r.SetHelp("cmod_build_llo_hit_ratio", "LLO object replay hit ratio per graph-steered build that reached codegen.")
	r.SetHelp("cmod_build_dirty_closure", "Dirty-closure size per graph-steered build (0 = clean, image replayed).")
	r.SetHelp("cmod_build_critical_path_seconds", "Predicted critical-path length of each graph-steered build's schedule.")
	r.SetHelp("cmod_build_frontier_depth", "Ready-frontier size (routines scheduled through LLO) per graph-steered build.")
	r.SetHelp("cmod_image_replays_total", "Builds answered entirely from the dependency graph (zero stage work).")
	r.SetHelp("cmod_builds_total", "Builds recorded by outcome (includes ledger replay on restart).")
	r.SetHelp("cmod_ledger_replayed_total", "Ledger records replayed into the registry on session open.")
	r.SetHelp("cmod_ledger_errors_total", "Ledger appends that failed (history shortens, builds do not).")
	r.SetHelp("cmod_build_partitions_total", "Backend partitions of recorded builds, by how each was satisfied.")
	r.SetHelp("cmod_partitions_total", "Partitions served (or refused) by this daemon's /backend endpoint, by result.")
	r.SetHelp("cmod_partition_seconds", "Wall time compiling each partition served at /backend.")

	in := &instruments{
		duration:  r.Histogram("cmod_build_duration_seconds", latencyBuckets()),
		queueWait: r.Histogram("cmod_build_queue_seconds", latencyBuckets()),
		stage:     make(map[string]*obs.Histogram, len(buildStages)),
		naimPeak:  r.Histogram("cmod_build_naim_peak_bytes", obs.ExpBuckets(4096, 4, 14)),
		codeBytes: r.Histogram("cmod_build_code_bytes", obs.ExpBuckets(1024, 4, 12)),
		feRatio:   r.Histogram("cmod_build_frontend_hit_ratio", obs.LinearBuckets(0.1, 0.1, 9)),
		hloRatio:  r.Histogram("cmod_build_hlo_hit_ratio", obs.LinearBuckets(0.1, 0.1, 9)),
		lloRatio:  r.Histogram("cmod_build_llo_hit_ratio", obs.LinearBuckets(0.1, 0.1, 9)),
		dirty:     r.Histogram("cmod_build_dirty_closure", obs.ExpBuckets(1, 2, 12)),
		critPath:  r.Histogram("cmod_build_critical_path_seconds", latencyBuckets()),
		frontier:  r.Histogram("cmod_build_frontier_depth", obs.ExpBuckets(1, 2, 12)),
		replays:   r.Counter("cmod_image_replays_total"),
		outcomes:  make(map[string]*obs.Counter, 3),
		replayed:  r.Counter("cmod_ledger_replayed_total"),
		ledgerErr: r.Counter("cmod_ledger_errors_total"),
	}
	for _, st := range buildStages {
		in.stage[st] = r.Histogram(obs.LabeledName("cmod_build_stage_seconds", "stage", st), latencyBuckets())
	}
	for _, oc := range []string{outcomeOK, outcomeFailed, outcomeCanceled} {
		in.outcomes[oc] = r.Counter(obs.LabeledName("cmod_builds_total", "outcome", oc))
	}
	in.buildParts = make(map[string]*obs.Counter, len(partitionModes))
	for _, m := range partitionModes {
		in.buildParts[m] = r.Counter(obs.LabeledName("cmod_build_partitions_total", "mode", m))
	}
	in.partSecs = r.Histogram("cmod_partition_seconds", latencyBuckets())
	in.partTotal = make(map[string]*obs.Counter, len(partitionResults))
	for _, res := range partitionResults {
		in.partTotal[res] = r.Counter(obs.LabeledName("cmod_partitions_total", "result", res))
	}
	return in
}

// partitionModes labels cmod_build_partitions_total: how a recorded
// build's partitions were satisfied. "retry" counts remote failures
// that fell back locally (those partitions also count under "local").
var partitionModes = []string{"clean", "local", "remote", "retry"}

// partitionResults labels cmod_partitions_total: the fate of each
// /backend request this daemon served as a worker.
var partitionResults = []string{partResultOK, partResultError, partResultBusy, partResultRejected}

const (
	partResultOK       = "ok"
	partResultError    = "error"
	partResultBusy     = "busy"     // all backend slots taken
	partResultRejected = "rejected" // malformed request or toolchain skew
)

const (
	outcomeOK       = "ok"
	outcomeFailed   = "failed"
	outcomeCanceled = "canceled"
)

// observe folds one build record into the fixed-size series. Stage and
// size histograms only see completed builds — a canceled build's
// half-run phases would skew the latency story; its outcome counter
// and queue wait still count.
func (in *instruments) observe(rec BuildRecord) {
	c := in.outcomes[rec.Outcome]
	if c == nil {
		c = in.outcomes[outcomeFailed]
	}
	c.Add(1)
	in.queueWait.ObserveNanos(rec.QueueNanos)
	if rec.Outcome != outcomeOK {
		return
	}
	in.duration.ObserveNanos(rec.TotalNanos)
	for st, ns := range map[string]int64{
		"frontend": rec.FrontendNanos,
		"select":   rec.SelectNanos,
		"ipa":      rec.IPANanos,
		"hlo":      rec.HLONanos,
		"llo":      rec.LLONanos,
		"link":     rec.LinkNanos,
		"verify":   rec.VerifyNanos,
	} {
		if ns > 0 {
			in.stage[st].ObserveNanos(ns)
		}
	}
	if rec.NAIMPeakBytes > 0 {
		in.naimPeak.Observe(float64(rec.NAIMPeakBytes))
	}
	if rec.CodeBytes > 0 {
		in.codeBytes.Observe(float64(rec.CodeBytes))
	}
	if t := rec.FrontendHits + rec.FrontendMisses; t > 0 {
		in.feRatio.Observe(float64(rec.FrontendHits) / float64(t))
	}
	if t := rec.HLOHits + rec.HLOMisses; t > 0 {
		in.hloRatio.Observe(float64(rec.HLOHits) / float64(t))
	}
	if t := rec.LLOHits + rec.LLOMisses; t > 0 {
		in.lloRatio.Observe(float64(rec.LLOHits) / float64(t))
	}
	if rec.GraphImageReplay {
		in.replays.Add(1)
	}
	if rec.Partitions > 0 {
		in.buildParts["clean"].Add(int64(rec.PartitionsClean))
		in.buildParts["local"].Add(int64(rec.PartitionsLocal))
		in.buildParts["remote"].Add(int64(rec.PartitionsRemote))
		in.buildParts["retry"].Add(int64(rec.PartitionRetries))
	}
	// Graph histograms only see graph-steered builds (nodes > 0), so a
	// NoDepGraph fleet doesn't flood the zero bucket.
	if rec.GraphNodes > 0 {
		in.dirty.Observe(float64(rec.GraphDirtyClosure))
		if rec.GraphCriticalNanos > 0 {
			in.critPath.ObserveNanos(rec.GraphCriticalNanos)
		}
		if rec.GraphFrontier > 0 {
			in.frontier.Observe(float64(rec.GraphFrontier))
		}
	}
}

// initTelemetry builds the registry, instruments, and gauges. Gauges
// are closures over live server state, sampled at scrape time.
func (s *Server) initTelemetry() {
	r := obs.NewRegistry()
	s.registry = r
	s.inst = newInstruments(r)
	s.traces = make(map[string]*obs.Trace, s.cfg.TraceRing)

	r.SetHelp("cmod_serve_uptime_seconds", "Seconds since the daemon started.")
	r.Gauge("cmod_serve_uptime_seconds", func() float64 {
		return time.Since(s.start).Seconds()
	})
	r.SetHelp("cmod_inflight_builds", "Builds currently executing.")
	r.Gauge("cmod_inflight_builds", func() float64 {
		return float64(s.ctr.active.Value())
	})
	r.SetHelp("cmod_queue_depth", "Admitted builds waiting for a build slot.")
	r.Gauge("cmod_queue_depth", func() float64 {
		return float64(s.ctr.queueDepth.Value() - s.ctr.active.Value())
	})
	r.SetHelp("cmod_open_sessions", "Cache-directory sessions currently open.")
	r.Gauge("cmod_open_sessions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	r.SetHelp("cmod_ledger_records", "Build records held in memory for GET /builds.")
	r.Gauge("cmod_ledger_records", func() float64 {
		s.obsMu.Lock()
		defer s.obsMu.Unlock()
		return float64(len(s.records))
	})
	r.SetHelp("cmod_graph_nodes", "Dependency-graph nodes across open sessions.")
	r.Gauge("cmod_graph_nodes", func() float64 {
		n, _ := s.graphTotals()
		return float64(n)
	})
	r.SetHelp("cmod_graph_edges", "Dependency-graph edges across open sessions.")
	r.Gauge("cmod_graph_edges", func() float64 {
		_, e := s.graphTotals()
		return float64(e)
	})
	r.SetHelp("cmod_commit_backlog_bytes", "Blob-log bytes appended but not yet committed, across open sessions.")
	r.Gauge("cmod_commit_backlog_bytes", func() float64 {
		s.mu.Lock()
		entries := make([]*sessionEntry, 0, len(s.sessions))
		for _, e := range s.sessions {
			entries = append(entries, e)
		}
		s.mu.Unlock()
		var total int64
		for _, e := range entries {
			if repo := e.sess.Repo(); repo != nil {
				total += repo.UncommittedBytes()
			}
		}
		return float64(total)
	})
}

// Registry exposes the daemon's telemetry registry (the /metrics
// source, minus the legacy trace counters).
func (s *Server) Registry() *obs.Registry { return s.registry }

// graphTotals sums loaded dependency-graph sizes across open sessions
// (scrape-time sampling for the cmod_graph_* gauges).
func (s *Server) graphTotals() (nodes, edges int) {
	s.mu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		if g := e.sess.Graph(); g != nil {
			nodes += g.Len()
			edges += g.Edges()
		}
	}
	return nodes, edges
}

// newBuildRecord assembles the ledger record for a finished build.
// stats may be nil for builds that failed before producing stats.
func newBuildRecord(id, cacheDir, fp string, outcome string, buildErr error, modules, jobs int, queueNanos int64, stats *cmo.BuildStats) BuildRecord {
	rec := BuildRecord{
		ID:         id,
		UnixMillis: time.Now().UnixMilli(),
		CacheDir:   cacheDir,
		OptionsFP:  fp,
		Outcome:    outcome,
		Modules:    modules,
		Jobs:       jobs,
		QueueNanos: queueNanos,
	}
	if buildErr != nil {
		rec.Error = buildErr.Error()
	}
	if stats != nil {
		rec.TotalNanos = stats.TotalNanos
		rec.FrontendNanos = stats.FrontendNanos
		rec.SelectNanos = stats.SelectNanos
		rec.IPANanos = stats.IPANanos
		rec.HLONanos = stats.HLONanos
		rec.LLONanos = stats.LLONanos
		rec.LinkNanos = stats.LinkNanos
		rec.VerifyNanos = stats.VerifyNanos
		rec.NAIMPeakBytes = stats.NAIM.PeakBytes
		rec.CodeBytes = stats.CodeBytes
		rec.FrontendHits = stats.CacheFrontendHits
		rec.FrontendMisses = stats.CacheFrontendMisses
		rec.HLOHits = stats.CacheHLOHits
		rec.HLOMisses = stats.CacheHLOMisses
		rec.LLOHits = stats.CacheLLOHits
		rec.LLOMisses = stats.CacheLLOMisses
		rec.GraphNodes = stats.GraphNodes
		rec.GraphEdges = stats.GraphEdges
		rec.GraphDirtyClosure = stats.GraphDirtyClosure
		rec.GraphCriticalNanos = stats.GraphCriticalPathNanos
		rec.GraphFrontier = stats.GraphFrontierDepth
		rec.GraphImageReplay = stats.GraphImageReplay
		rec.Partitions = stats.Partitions
		rec.PartitionsClean = stats.PartitionsClean
		rec.PartitionsLocal = stats.PartitionsLocal
		rec.PartitionsRemote = stats.PartitionsRemote
		rec.PartitionRetries = stats.PartitionRetries
	}
	return rec
}

// optionsFingerprint hashes the build shape — level, entry,
// selectivity, volatile set, module names — so records with the same
// fingerprint are comparable latency-wise. Module *text* is excluded
// on purpose: an edit-rebuild loop keeps one fingerprint.
func optionsFingerprint(req *BuildRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "level=%d entry=%s jobs=%d", req.Level, req.Entry, req.Jobs)
	if req.SelectPercent != nil {
		fmt.Fprintf(h, " select=%g", *req.SelectPercent)
	}
	vol := append([]string(nil), req.Volatile...)
	sort.Strings(vol)
	for _, v := range vol {
		fmt.Fprintf(h, " vol=%s", v)
	}
	names := make([]string, len(req.Modules))
	for i, m := range req.Modules {
		names[i] = m.Name
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, " mod=%s", n)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:6])
}

// recordBuild is every build's telemetry exit path: fold the per-build
// trace's counters into the server trace (so /metrics.json keeps its
// cumulative naim.*/session.* story), observe the histograms, remember
// the record and trace in the bounded rings, and append to the
// session's ledger.
func (s *Server) recordBuild(entry *sessionEntry, rec BuildRecord, btr *obs.Trace) {
	s.trace.MergeCounters(btr)
	s.inst.observe(rec)

	s.obsMu.Lock()
	s.records = append(s.records, rec)
	if over := len(s.records) - s.cfg.RecordRing; over > 0 {
		s.records = append(s.records[:0], s.records[over:]...)
	}
	if btr != nil && s.cfg.TraceRing > 0 {
		s.traces[rec.ID] = btr
		s.traceIDs = append(s.traceIDs, rec.ID)
		for len(s.traceIDs) > s.cfg.TraceRing {
			delete(s.traces, s.traceIDs[0])
			s.traceIDs = s.traceIDs[1:]
		}
	}
	s.obsMu.Unlock()

	if entry != nil {
		if err := entry.ledger.Append(rec); err != nil {
			s.inst.ledgerErr.Add(1)
		}
	}
}

// replayLedger folds records recovered from a session's on-disk ledger
// back into the registry and the /builds ring, so fleet totals survive
// a daemon restart. Traces are gone; only the numbers return.
func (s *Server) replayLedger(records []BuildRecord) {
	for _, rec := range records {
		s.inst.observe(rec)
		s.inst.replayed.Add(1)
	}
	s.obsMu.Lock()
	s.records = append(s.records, records...)
	if over := len(s.records) - s.cfg.RecordRing; over > 0 {
		s.records = append(s.records[:0], s.records[over:]...)
	}
	s.obsMu.Unlock()
}

// buildRecords returns a copy of the in-memory ring, most recent
// first, optionally capped at limit.
func (s *Server) buildRecords(limit int) []BuildRecord {
	s.obsMu.Lock()
	out := make([]BuildRecord, len(s.records))
	copy(out, s.records)
	s.obsMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UnixMillis != out[j].UnixMillis {
			return out[i].UnixMillis > out[j].UnixMillis
		}
		return out[i].ID > out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// buildRecord looks one record up by id.
func (s *Server) buildRecord(id string) (BuildRecord, bool) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	for i := len(s.records) - 1; i >= 0; i-- {
		if s.records[i].ID == id {
			return s.records[i], true
		}
	}
	return BuildRecord{}, false
}

// buildTrace looks a retained per-build trace up by id.
func (s *Server) buildTrace(id string) (*obs.Trace, bool) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	tr, ok := s.traces[id]
	return tr, ok
}

// buildInfo is the daemon identity block shared by /status and
// /healthz: what binary, which Go, which process, since when.
type buildInfo struct {
	Version   string  `json:"version"`
	GoVersion string  `json:"go_version"`
	PID       int     `json:"pid"`
	StartUnix int64   `json:"start_unix"`
	UptimeSec float64 `json:"uptime_sec"`
}

func (s *Server) buildInfo() buildInfo {
	return buildInfo{
		Version:   daemonVersion(),
		GoVersion: runtime.Version(),
		PID:       os.Getpid(),
		StartUnix: s.start.Unix(),
		UptimeSec: time.Since(s.start).Seconds(),
	}
}

// daemonVersion is the module version baked into the binary, or
// "devel" for a plain `go build` from a working tree.
func daemonVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "devel"
}
