package serve

import (
	"io"
	"net/http"
	"time"

	cmo "cmo"
	"cmo/internal/backend"
)

// The daemon's worker side: POST /backend compiles one partition of
// someone else's build — portable HLO bodies in, content-addressed
// objects out (the binary exchange in internal/backend). The endpoint
// is deliberately outside build admission: backend slots are a
// separate bounded pool, so a daemon that is simultaneously running a
// build that farms partitions out and serving partitions in can never
// deadlock on itself. Every refusal here is cheap for the fleet — the
// dispatching build just compiles that partition locally.

// maxBackendRequestBytes caps a request body read: a partition is
// portable function bodies plus module shapes, far below this.
const maxBackendRequestBytes = 1 << 30

// handleBackend serves one partition compile. Replies:
//
//	200 binary result   — objects, in request order
//	409 toolchain skew  — dispatcher and worker binaries disagree
//	400 malformed       — undecodable request
//	503 busy/draining   — all backend slots taken; compile it yourself
func (s *Server) handleBackend(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.inst.partTotal[partResultBusy].Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.backendSlots <- struct{}{}:
	default:
		s.inst.partTotal[partResultBusy].Add(1)
		http.Error(w, "all backend slots busy", http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.backendSlots }()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBackendRequestBytes))
	if err != nil {
		s.inst.partTotal[partResultRejected].Add(1)
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := backend.DecodeRequest(body)
	if err != nil {
		s.inst.partTotal[partResultRejected].Add(1)
		http.Error(w, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Toolchain != cmo.ToolchainVersion() {
		s.inst.partTotal[partResultRejected].Add(1)
		http.Error(w, "toolchain skew: dispatcher "+req.Toolchain+", worker "+cmo.ToolchainVersion(),
			http.StatusConflict)
		return
	}

	start := time.Now()
	res, err := backend.Execute(r.Context(), req)
	if err != nil {
		s.inst.partTotal[partResultError].Add(1)
		http.Error(w, "compiling partition: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.inst.partTotal[partResultOK].Add(1)
	s.inst.partSecs.ObserveNanos(time.Since(start).Nanoseconds())
	w.Header().Set("Content-Type", backend.RequestContentType)
	w.Write(backend.EncodeResult(res))
}
