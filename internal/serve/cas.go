package serve

import (
	"crypto/subtle"
	"net/http"
	"strings"

	"cmo/internal/cas"
)

// The daemon's shared-cache surface: internal/cas owns the blob
// protocol (GET/PUT/HEAD /cas/{namespace}/{hash}, ETag/If-None-Match,
// gzip); this file owns its admission — the draining check and a
// dedicated slot pool, mirroring /backend's discipline — and its
// cmod_cas_* telemetry.

// mountCAS wires the /cas/ subtree behind the server's admission:
// a draining daemon answers 503 (clients degrade to local-only,
// exactly as if the service died), and at most CASSlots requests are
// served concurrently — the pool is separate from build admission so
// a daemon building for one tenant while serving another tenant's
// cache can never deadlock itself. A full pool also answers 503: for
// the client that is one more absorbed miss, and refusing is how the
// daemon keeps cache traffic from starving builds.
func (s *Server) mountCAS(store *cas.Store) {
	inner := cas.Handler(store)
	s.mux.Handle("/cas/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.casAuthorized(r) {
			// 401 is a terminal client error, not a flaky service: the
			// cas client breaker still absorbs it (local-only build),
			// and the operator sees the misconfiguration in the error
			// counters rather than in wrong bytes.
			http.Error(w, "cas: missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		if s.Draining() {
			http.Error(w, "cas: server is draining", http.StatusServiceUnavailable)
			return
		}
		select {
		case s.casSlots <- struct{}{}:
		default:
			http.Error(w, "cas: server is at capacity", http.StatusServiceUnavailable)
			return
		}
		defer func() { <-s.casSlots }()
		inner.ServeHTTP(w, r)
	}))
}

// casAuthorized checks the shared-secret bearer token configured with
// Config.CASToken (cmod -cas-token). No token configured means an
// open endpoint: namespaces are then cooperative visibility for
// tenants that trust each other, not an isolation boundary — anyone
// who can reach the daemon can read or fill any namespace.
func (s *Server) casAuthorized(r *http.Request) bool {
	want := s.cfg.CASToken
	if want == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	// Constant-time compare: a shared cache daemon must not leak its
	// secret byte by byte through response timing.
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

// initCASTelemetry registers the cmod_cas_* series: scrape-time
// samples of the store's own counters, so the numbers are exact even
// though no request path touches the registry.
func (s *Server) initCASTelemetry(store *cas.Store) {
	r := s.registry
	sample := func(f func(cas.Stats) float64) func() float64 {
		return func() float64 { return f(store.Stats()) }
	}
	r.SetHelp("cmod_cas_hits_total", "CAS gets answered with bytes.")
	r.Gauge("cmod_cas_hits_total", sample(func(st cas.Stats) float64 { return float64(st.Hits) }))
	r.SetHelp("cmod_cas_misses_total", "CAS gets for absent or expired entries.")
	r.Gauge("cmod_cas_misses_total", sample(func(st cas.Stats) float64 { return float64(st.Misses) }))
	r.SetHelp("cmod_cas_puts_total", "CAS blobs accepted and written (duplicate puts excluded).")
	r.Gauge("cmod_cas_puts_total", sample(func(st cas.Stats) float64 { return float64(st.Puts) }))
	r.SetHelp("cmod_cas_evictions_total", "CAS entries removed by the LRU cap or the TTL.")
	r.Gauge("cmod_cas_evictions_total", sample(func(st cas.Stats) float64 { return float64(st.Evictions + st.Expirations) }))
	r.SetHelp("cmod_cas_bytes", "CAS bytes currently on disk, payload plus checksum trailers (bounded by the configured cap).")
	r.Gauge("cmod_cas_bytes", sample(func(st cas.Stats) float64 { return float64(st.LiveBytes) }))
	r.SetHelp("cmod_cas_blobs", "CAS blobs currently held.")
	r.Gauge("cmod_cas_blobs", sample(func(st cas.Stats) float64 { return float64(st.Blobs) }))
	r.SetHelp("cmod_cas_max_bytes", "Configured CAS disk cap.")
	r.Gauge("cmod_cas_max_bytes", func() float64 { return float64(store.MaxBytes()) })
}
