package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cmo/internal/obs"
	"cmo/internal/promtext"
	"cmo/internal/workload"
)

// scrape GETs path and returns the body, failing the test on a non-200.
func scrape(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestDaemonPrometheusMetrics proves GET /metrics is valid exposition
// format (our own parser is the validator — no promtool in CI) and
// that one build populates the fleet histograms, outcome counters,
// gauges, and the sanitized legacy counters.
func TestDaemonPrometheusMetrics(t *testing.T) {
	mods := testModules(testSpec(59))
	dir := t.TempDir()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("build: status %d: %s", failResp.StatusCode, failResp.Status)
	}
	// A second, identical build replays the image off the dependency
	// graph — the cmod_image_replays_total source.
	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("warm build: status %d: %s", failResp.StatusCode, failResp.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	m, err := promtext.Parse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	if f := m["cmod_build_duration_seconds"]; f == nil || f.Type != "histogram" {
		t.Fatalf("cmod_build_duration_seconds family = %+v, want histogram", f)
	}
	if _, count := m.SumCount("cmod_build_duration_seconds", "", ""); count != 2 {
		t.Errorf("duration count = %v, want 2", count)
	}
	bs := m.HistogramBuckets("cmod_build_duration_seconds", "", "")
	if len(bs) == 0 || bs[len(bs)-1].CumulativeCount != 2 {
		t.Errorf("duration buckets = %+v, want +Inf cumulative 2", bs)
	}
	// A cold O4 build exercises at least frontend, hlo, llo, link —
	// and only the cold one: the warm build replayed the image with
	// zero stage work, so each stage count stays at 1.
	for _, stage := range []string{"frontend", "hlo", "llo", "link"} {
		if _, count := m.SumCount("cmod_build_stage_seconds", "stage", stage); count != 1 {
			t.Errorf("stage %q count = %v, want 1 (warm build must do no stage work)", stage, count)
		}
	}
	{
		f := m["cmod_builds_total"]
		found := false
		if f != nil {
			for _, s := range f.Samples {
				if s.Label("outcome") == "ok" && s.Value == 2 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("cmod_builds_total{outcome=ok} != 2: %+v", f)
		}
	}
	// Dependency-graph telemetry: live size gauges, the image-replay
	// counter, and the per-build closure histogram.
	if v, ok := m.Value("cmod_image_replays_total"); !ok || v != 1 {
		t.Errorf("cmod_image_replays_total = %v, want 1", v)
	}
	if v, ok := m.Value("cmod_graph_nodes"); !ok || v <= 0 {
		t.Errorf("cmod_graph_nodes = %v, want > 0", v)
	}
	if v, ok := m.Value("cmod_graph_edges"); !ok || v <= 0 {
		t.Errorf("cmod_graph_edges = %v, want > 0", v)
	}
	if _, count := m.SumCount("cmod_build_dirty_closure", "", ""); count != 2 {
		t.Errorf("dirty-closure histogram count = %v, want 2", count)
	}
	if dbs := m.HistogramBuckets("cmod_build_dirty_closure", "", ""); len(dbs) == 0 || dbs[0].CumulativeCount < 1 {
		t.Errorf("dirty-closure histogram lacks the warm build's zero observation: %+v", dbs)
	}
	// Session hit-rate counters arrive as sanitized legacy series.
	for _, name := range []string{"cmod_session_frontend_misses", "cmod_session_frontend_hits",
		"cmod_serve_completed", "cmod_naim_cache_hits"} {
		if _, ok := m.Value(name); !ok {
			t.Errorf("exposition lacks %s", name)
		}
	}
	for _, g := range []string{"cmod_serve_uptime_seconds", "cmod_inflight_builds",
		"cmod_queue_depth", "cmod_open_sessions", "cmod_ledger_records"} {
		f := m[g]
		if f == nil || f.Type != "gauge" {
			t.Errorf("gauge %s missing or mistyped: %+v", g, f)
		}
	}
	if v, ok := m.Value("cmod_open_sessions"); !ok || v != 1 {
		t.Errorf("cmod_open_sessions = %v, want 1", v)
	}
}

// TestDaemonBuildsEndpoints covers the ledger surface: /builds lists
// the record, /builds/{id} retrieves it, /builds/{id}/trace replays
// the build's own span tree as valid Chrome trace-event JSON.
func TestDaemonBuildsEndpoints(t *testing.T) {
	mods := testModules(testSpec(61))
	dir := t.TempDir()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	br, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()})
	if failResp != nil {
		t.Fatalf("build: status %d: %s", failResp.StatusCode, failResp.Status)
	}

	var list BuildsResponse
	if err := json.Unmarshal(scrape(t, ts.URL+"/builds"), &list); err != nil {
		t.Fatalf("decoding /builds: %v", err)
	}
	if list.Count != 1 || len(list.Builds) != 1 {
		t.Fatalf("/builds = %+v, want exactly one record", list)
	}
	rec := list.Builds[0]
	if rec.ID != br.RequestID {
		t.Errorf("record id %q != request id %q", rec.ID, br.RequestID)
	}
	if rec.Outcome != "ok" || rec.Modules != len(mods) || rec.TotalNanos <= 0 {
		t.Errorf("record = %+v, want ok with %d modules and positive total", rec, len(mods))
	}
	if rec.OptionsFP == "" {
		t.Errorf("record has no options fingerprint")
	}
	if rec.FrontendNanos <= 0 || rec.LinkNanos <= 0 {
		t.Errorf("record stage nanos not populated: %+v", rec)
	}

	var single BuildRecord
	if err := json.Unmarshal(scrape(t, ts.URL+"/builds/"+rec.ID), &single); err != nil {
		t.Fatalf("decoding /builds/{id}: %v", err)
	}
	if single.ID != rec.ID || single.OptionsFP != rec.OptionsFP {
		t.Errorf("/builds/{id} = %+v, want %+v", single, rec)
	}

	// The trace must be a valid Chrome trace-event array containing
	// the pipeline's own spans (this build's, not the server's life).
	var events []map[string]any
	if err := json.Unmarshal(scrape(t, ts.URL+"/builds/"+rec.ID+"/trace"), &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("trace event lacks ph/name: %v", e)
		}
		if ph == "X" {
			names[name] = true
		}
	}
	for _, want := range []string{"build", "frontend", "link"} {
		if !names[want] {
			t.Errorf("trace lacks %q span; spans = %v", want, names)
		}
	}

	// Unknown ids answer 404 on both endpoints.
	for _, path := range []string{"/builds/nope", "/builds/nope/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// ?limit caps the listing.
	if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("second build: status %d: %s", failResp.StatusCode, failResp.Status)
	}
	if err := json.Unmarshal(scrape(t, ts.URL+"/builds?limit=1"), &list); err != nil {
		t.Fatalf("decoding limited /builds: %v", err)
	}
	if list.Count != 1 {
		t.Errorf("limit=1 returned %d records", list.Count)
	}
}

// TestDaemonPprof proves the opt-in profiling surface: mounted only
// when EnablePprof is set, and the heap profile answers.
func TestDaemonPprof(t *testing.T) {
	off := New(Config{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	defer off.Drain()
	resp, err := http.Get(tsOff.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatalf("pprof-off GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("pprof served without EnablePprof")
	}

	on := New(Config{EnablePprof: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	defer on.Drain()
	if body := scrape(t, tsOn.URL+"/debug/pprof/heap?debug=1"); !bytes.Contains(body, []byte("heap profile")) {
		t.Errorf("heap profile missing header:\n%.200s", body)
	}
}

// TestDaemonScrapeStress is the -race stress: concurrent builds
// through one server while a scraper hammers /metrics and /builds.
// Every scrape must be internally consistent — for each histogram the
// +Inf cumulative bucket equals the _count sample (a torn read would
// break that) — and when the dust settles the ledger holds exactly
// one record per completed build.
func TestDaemonScrapeStress(t *testing.T) {
	mods := testModules(testSpec(67))
	dir := t.TempDir()

	srv := New(Config{MaxBuilds: 2, JobBudget: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const builders, buildsEach = 3, 2
	var wg sync.WaitGroup
	var completed atomic.Int64
	stop := make(chan struct{})

	// The scraper: parse every exposition in full, verify histogram
	// self-consistency on each one.
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				continue
			}
			m, err := promtext.Parse(resp.Body)
			resp.Body.Close()
			if err != nil {
				select {
				case scrapeErr <- fmt.Errorf("exposition parse: %v", err):
				default:
				}
				return
			}
			for name, f := range m {
				if f.Type != "histogram" {
					continue
				}
				// Group buckets per label identity via the stage label
				// (the only labeled histogram family); an unlabeled
				// family is the single "" group.
				keys := map[string]bool{}
				for _, s := range f.Samples {
					keys[s.Label("stage")] = true
				}
				for key := range keys {
					mk, mv := "", ""
					if key != "" {
						mk, mv = "stage", key
					}
					bs := m.HistogramBuckets(name, mk, mv)
					if len(bs) == 0 {
						continue
					}
					_, count := m.SumCount(name, mk, mv)
					if inf := bs[len(bs)-1].CumulativeCount; inf != count {
						select {
						case scrapeErr <- fmt.Errorf("torn read: %s{%s=%s} +Inf bucket %v != count %v", name, mk, mv, inf, count):
						default:
						}
						return
					}
					for i := 1; i < len(bs); i++ {
						if bs[i].CumulativeCount < bs[i-1].CumulativeCount {
							select {
							case scrapeErr <- fmt.Errorf("non-monotone buckets in %s: %+v", name, bs):
							default:
							}
							return
						}
					}
				}
			}
			// /builds must always decode, whatever the builders are at.
			if resp, err := http.Get(ts.URL + "/builds"); err == nil {
				var list BuildsResponse
				derr := json.NewDecoder(resp.Body).Decode(&list)
				resp.Body.Close()
				if derr != nil {
					select {
					case scrapeErr <- fmt.Errorf("/builds decode: %v", derr):
					default:
					}
					return
				}
			}
		}
	}()

	for w := 0; w < builders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < buildsEach; i++ {
				if _, failResp := postBuild(t, ts.URL, BuildRequest{Modules: mods,
					CacheDir: dir, Jobs: 2, Volatile: workload.InputGlobals()}); failResp == nil {
					completed.Add(1)
				}
			}
		}(w)
	}

	// Builders finish first, then the scraper is told to stop and the
	// whole group is waited out.
	builderWait := make(chan struct{})
	go func() { wg.Wait(); close(builderWait) }()
	deadline := time.After(2 * time.Minute)
	for completed.Load() < builders*buildsEach {
		select {
		case err := <-scrapeErr:
			t.Fatalf("scraper: %v", err)
		case <-deadline:
			t.Fatalf("builds did not finish: %d/%d", completed.Load(), builders*buildsEach)
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	<-builderWait
	select {
	case err := <-scrapeErr:
		t.Fatalf("scraper: %v", err)
	default:
	}

	var list BuildsResponse
	if err := json.Unmarshal(scrape(t, ts.URL+"/builds"), &list); err != nil {
		t.Fatalf("final /builds: %v", err)
	}
	if got, want := list.Count, builders*buildsEach; got != want {
		t.Errorf("ledger records = %d, want %d (one per completed build)", got, want)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The on-disk ledger agrees with the in-memory ring.
	data, err := os.ReadFile(filepath.Join(dir, ledgerName))
	if err != nil {
		t.Fatalf("reading ledger: %v", err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines != builders*buildsEach {
		t.Errorf("ledger file has %d records, want %d", lines, builders*buildsEach)
	}
}

// TestLedgerDurability is the restart story: a daemon builds, dies
// without Drain (the file handle just goes away, possibly mid-write —
// simulated with a torn trailing record), and the next daemon's first
// touch of the cache dir truncation-recovers the ledger and replays
// the history into its registry and /builds ring.
func TestLedgerDurability(t *testing.T) {
	mods := testModules(testSpec(71))
	dir := t.TempDir()

	// Daemon one: two builds, then a sync (the "crash" loses nothing
	// flushed) but no Drain/Close.
	srv1 := New(Config{})
	ts1 := httptest.NewServer(srv1.Handler())
	for i := 0; i < 2; i++ {
		if _, failResp := postBuild(t, ts1.URL, BuildRequest{Modules: mods, CacheDir: dir,
			Volatile: workload.InputGlobals()}); failResp != nil {
			t.Fatalf("build %d: status %d: %s", i, failResp.StatusCode, failResp.Status)
		}
	}
	srv1.mu.Lock()
	for _, e := range srv1.sessions {
		if err := e.ledger.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	srv1.mu.Unlock()
	ts1.Close()
	// No Drain: the process "dies". Sessions hold the cache-dir lock,
	// so release them the crash way before daemon two arrives.
	if err := srv1.Drain(); err != nil {
		t.Fatalf("drain (releasing locks): %v", err)
	}

	// Tear the tail the way a crash mid-append would.
	path := filepath.Join(dir, ledgerName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn-partial`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Daemon two: the first build naming the dir opens the session,
	// recovers the ledger, and replays both prior records.
	srv2 := New(Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Drain()
	if _, failResp := postBuild(t, ts2.URL, BuildRequest{Modules: mods, CacheDir: dir,
		Volatile: workload.InputGlobals()}); failResp != nil {
		t.Fatalf("post-restart build: status %d: %s", failResp.StatusCode, failResp.Status)
	}

	var list BuildsResponse
	if err := json.Unmarshal(scrape(t, ts2.URL+"/builds"), &list); err != nil {
		t.Fatalf("/builds: %v", err)
	}
	if list.Count != 3 {
		t.Fatalf("/builds after restart = %d records, want 3 (2 replayed + 1 live)", list.Count)
	}

	m, err := promtext.Parse(bytes.NewReader(scrape(t, ts2.URL+"/metrics")))
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if v, _ := m.Value("cmod_ledger_replayed_total"); v != 2 {
		t.Errorf("cmod_ledger_replayed_total = %v, want 2", v)
	}
	// Outcome totals include the replayed history: the registry
	// survived the restart by way of the ledger.
	f2 := m["cmod_builds_total"]
	var okTotal float64
	if f2 != nil {
		for _, s := range f2.Samples {
			if s.Label("outcome") == "ok" {
				okTotal = s.Value
			}
		}
	}
	if okTotal != 3 {
		t.Errorf("cmod_builds_total{outcome=ok} = %v, want 3 (2 replayed + 1 live)", okTotal)
	}
	if _, count := m.SumCount("cmod_build_duration_seconds", "", ""); count != 3 {
		t.Errorf("duration histogram count = %v, want 3 after replay", count)
	}

	// The torn partial line is gone from disk (truncation recovery).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("torn-partial")) {
		t.Errorf("torn tail survived recovery")
	}
}

// TestLedgerCompaction proves the file stays bounded: pushing past
// twice the cap rewrites it down to the newest cap records.
func TestLedgerCompaction(t *testing.T) {
	dir := t.TempDir()
	const cap = 4
	l, prior, err := OpenLedger(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh ledger has %d records", len(prior))
	}
	for i := 0; i < 3*cap; i++ {
		if err := l.Append(BuildRecord{ID: fmt.Sprintf("r%03d", i), Outcome: "ok"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, err := OpenLedger(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != cap {
		t.Fatalf("after compaction: %d records, want %d", len(records), cap)
	}
	if records[len(records)-1].ID != fmt.Sprintf("r%03d", 3*cap-1) {
		t.Errorf("compaction dropped the newest records: last is %s", records[len(records)-1].ID)
	}
	data, err := os.ReadFile(filepath.Join(dir, ledgerName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines > 2*cap {
		t.Errorf("ledger file still has %d lines after compaction (cap %d)", lines, cap)
	}
}

// BenchmarkBuildObsOverhead quantifies the acceptance budget: the
// telemetry exit path (histograms + rings + ledger append) must cost
// ≤2% of a warm no-op daemon build. Run both sub-benchmarks and
// compare ns/op — "record" is the added cost, "warmBuild" the path it
// rides on.
func BenchmarkBuildObsOverhead(b *testing.B) {
	b.Run("record", func(b *testing.B) {
		dir := b.TempDir()
		srv := New(Config{})
		defer srv.Drain()
		ledger, _, err := OpenLedger(dir, 512)
		if err != nil {
			b.Fatal(err)
		}
		entry := &sessionEntry{dir: dir, ledger: ledger}
		rec := newBuildRecord("bench-r000001", dir, "abcdef012345", outcomeOK,
			nil, 4, 1, 1500, nil)
		rec.TotalNanos = 25e6
		rec.FrontendNanos = 5e6
		rec.HLONanos = 10e6
		rec.LLONanos = 7e6
		rec.LinkNanos = 3e6
		rec.NAIMPeakBytes = 1 << 20
		rec.FrontendHits = 4
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.recordBuild(entry, rec, nil)
		}
		b.StopTimer()
		ledger.Close()
	})

	b.Run("warmBuild", func(b *testing.B) {
		mods := testModules(testSpec(73))
		dir := b.TempDir()
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Drain()
		body, _ := json.Marshal(BuildRequest{Modules: mods, CacheDir: dir,
			Volatile: workload.InputGlobals()})
		warm := func() error {
			resp, err := http.Post(ts.URL+"/build", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			var br BuildResponse
			return json.NewDecoder(resp.Body).Decode(&br)
		}
		if err := warm(); err != nil { // populate the session
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := warm(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHealthzOkFirstToken pins the probe contract: strings.Fields of
// the healthz body starts with "ok" whatever else the body carries.
func TestHealthzOkFirstToken(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	body := scrape(t, ts.URL+"/healthz")
	fields := strings.Fields(string(body))
	if len(fields) == 0 || fields[0] != "ok" {
		t.Errorf("healthz first token = %v, want ok", fields)
	}
}
