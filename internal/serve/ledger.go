package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The persistent build ledger: one JSONL record per daemon build,
// appended under the build's cache directory next to the artifact
// repository it describes. The ledger is what turns "the daemon served
// some builds" into an auditable history — /builds serves it, cmostat
// summarizes it, and on daemon restart each session's ledger is
// replayed into the telemetry registry so fleet totals survive the
// process.
//
// Durability follows the naim blob log's discipline at lower stakes:
// appends are buffered writes with no per-record fsync (the ledger is
// advisory, losing the last records in a crash is acceptable), and
// Open truncation-recovers — a torn or corrupt final line, the
// signature of a crash mid-append, is dropped and the file truncated
// back to the last complete record. The file is bounded: when it
// grows past twice the retention cap it is compacted in place
// (rewrite-and-rename) down to the most recent cap records.

// BuildRecord is one build's ledger entry. Phase nanos are the
// BuildStats figures; counters that identify the build (request id,
// cache dir, options fingerprint) make records greppable across a
// fleet's logs.
type BuildRecord struct {
	ID         string `json:"id"`
	UnixMillis int64  `json:"unix_ms"`
	CacheDir   string `json:"cache_dir,omitempty"`
	// OptionsFP fingerprints the request options (level, entry,
	// selectivity, volatile set, module names) — same fingerprint,
	// same build shape, so latency comparisons group correctly.
	OptionsFP string `json:"options_fp"`
	Outcome   string `json:"outcome"` // ok | failed | canceled
	Error     string `json:"error,omitempty"`
	Modules   int    `json:"modules"`
	Jobs      int    `json:"jobs"`

	QueueNanos    int64 `json:"queue_ns"`
	TotalNanos    int64 `json:"total_ns"`
	FrontendNanos int64 `json:"frontend_ns"`
	SelectNanos   int64 `json:"select_ns"`
	IPANanos      int64 `json:"ipa_ns"`
	HLONanos      int64 `json:"hlo_ns"`
	LLONanos      int64 `json:"llo_ns"`
	LinkNanos     int64 `json:"link_ns"`
	VerifyNanos   int64 `json:"verify_ns"`

	NAIMPeakBytes  int64 `json:"naim_peak_bytes"`
	CodeBytes      int64 `json:"code_bytes"`
	FrontendHits   int   `json:"fe_hits"`
	FrontendMisses int   `json:"fe_misses"`
	HLOHits        int   `json:"hlo_hits"`
	HLOMisses      int   `json:"hlo_misses"`
	LLOHits        int   `json:"llo_hits,omitempty"`
	LLOMisses      int   `json:"llo_misses,omitempty"`

	// Dependency-graph figures (zero/false when the build ran without
	// a graph — disconnected session or NoDepGraph).
	GraphNodes         int   `json:"graph_nodes,omitempty"`
	GraphEdges         int   `json:"graph_edges,omitempty"`
	GraphDirtyClosure  int   `json:"graph_dirty_closure,omitempty"`
	GraphCriticalNanos int64 `json:"graph_critical_ns,omitempty"`
	GraphFrontier      int   `json:"graph_frontier,omitempty"`
	GraphImageReplay   bool  `json:"graph_image_replay,omitempty"`

	// Partitioned-backend figures (zero when the build ran the
	// NoPartition ablation or never reached codegen).
	Partitions       int `json:"partitions,omitempty"`
	PartitionsClean  int `json:"partitions_clean,omitempty"`
	PartitionsLocal  int `json:"partitions_local,omitempty"`
	PartitionsRemote int `json:"partitions_remote,omitempty"`
	PartitionRetries int `json:"partition_retries,omitempty"`

	// Replayed marks records loaded from a ledger on session open
	// rather than served by this process; their traces are gone.
	Replayed bool `json:"-"`
}

// ledgerName is the ledger's filename inside a cache directory.
const ledgerName = "ledger.jsonl"

// Ledger is one cache directory's persistent build history.
type Ledger struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	cap   int // records retained in memory and after compaction
	lines int // complete records currently in the file
}

// OpenLedger opens (creating if needed) the ledger in dir, recovering
// from a torn tail and compacting an oversized file. It returns the
// handle and the retained records, oldest first, for replay.
func OpenLedger(dir string, cap int) (*Ledger, []BuildRecord, error) {
	if cap <= 0 {
		cap = 512
	}
	l := &Ledger{path: filepath.Join(dir, ledgerName), cap: cap}
	records, goodBytes, total, err := l.scan()
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening ledger: %w", err)
	}
	l.f = f
	if fi, err := f.Stat(); err == nil && fi.Size() > goodBytes {
		// Torn tail: a crash mid-append left a partial line. Drop it.
		if err := f.Truncate(goodBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: truncating torn ledger tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	l.lines = total
	if total > 2*cap {
		if err := l.compactLocked(records); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return l, records, nil
}

// scan reads the ledger file, returning the last cap records (oldest
// first), the byte offset of the end of the last complete record, and
// the number of complete records.
func (l *Ledger) scan() (records []BuildRecord, goodBytes int64, total int, err error) {
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("serve: reading ledger: %w", err)
	}
	pos := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // partial final line: torn tail
		}
		line := data[:nl]
		var rec BuildRecord
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" {
			break // corrupt record: truncate here, like the blob log
		}
		rec.Replayed = true
		records = append(records, rec)
		total++
		pos += int64(nl) + 1
		data = data[nl+1:]
	}
	if len(records) > l.cap {
		records = append([]BuildRecord(nil), records[len(records)-l.cap:]...)
	}
	return records, pos, total, nil
}

// Append writes one record. Failures degrade to a shorter history
// rather than failing the build that produced the record.
func (l *Ledger) Append(rec BuildRecord) error {
	if l == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("serve: ledger closed")
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("serve: appending ledger record: %w", err)
	}
	l.lines++
	if l.lines > 2*l.cap {
		// Compaction needs the retained tail; re-scan in memory.
		records, _, _, err := l.scan()
		if err != nil {
			return err
		}
		return l.compactLocked(records)
	}
	return nil
}

// compactLocked rewrites the ledger down to the retained records via
// temp-file-and-rename, so a crash mid-compaction leaves either the
// old file or the new one, never a mix.
func (l *Ledger) compactLocked(records []BuildRecord) error {
	tmp := l.path + ".tmp"
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, rec := range records {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	w.Flush()
	if err := os.WriteFile(tmp, buf.Bytes(), 0o666); err != nil {
		return fmt.Errorf("serve: writing compacted ledger: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("serve: installing compacted ledger: %w", err)
	}
	// Reopen the handle on the new inode.
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("serve: reopening compacted ledger: %w", err)
	}
	old := l.f
	l.f = f
	l.lines = len(records)
	if old != nil {
		old.Close()
	}
	return nil
}

// Sync flushes the ledger to disk (drain-time durability).
func (l *Ledger) Sync() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and releases the file.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
