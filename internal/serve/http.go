package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	cmo "cmo"
	"cmo/internal/objfile"
	"cmo/internal/obs"
)

// The HTTP/JSON surface. One request = one build; the daemon's value
// is what persists between requests (open sessions, warm repository),
// not a richer per-request protocol.

// Module is one source module in a build request.
type Module struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// BuildRequest is the POST /build body. Zero values mean the driver
// defaults: O4, whole-program selectivity, entry "main", one job, no
// cache directory (a cold, ephemeral build).
type BuildRequest struct {
	Modules []Module `json:"modules"`
	// Level is the optimization level 1..4 (0 = 4, the cross-module
	// default — a daemon exists to serve CMO builds).
	Level int `json:"level,omitempty"`
	// Entry is the entry function (default "main").
	Entry string `json:"entry,omitempty"`
	// CacheDir selects the shared session the build warms and is
	// warmed by. Builds naming the same directory share one session;
	// empty means no cache at all.
	CacheDir string `json:"cache_dir,omitempty"`
	// Jobs is the worker-parallelism ask; the server may grant fewer
	// (down to 1) when the shared budget is spent. Output does not
	// depend on the grant.
	Jobs int `json:"jobs,omitempty"`
	// TimeoutMillis bounds the build (0 = server default; asks above
	// the server's MaxTimeout are clamped). Queue wait counts against
	// the deadline: a deadline is a promise about the response, not
	// about CPU time.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
	// SelectPercent, when non-nil, enables profile-free selectivity
	// plumbing exactly as the CLI's flag would; nil means -1 (all
	// modules enter CMO).
	SelectPercent *float64 `json:"select_percent,omitempty"`
	// Volatile names globals that must never become link-time
	// constants.
	Volatile []string `json:"volatile,omitempty"`
	// Partitions sets the backend partition count (0 = size-based
	// default). Never changes output bytes.
	Partitions int `json:"partitions,omitempty"`
	// NoPartition runs the pre-partition per-routine LLO path (the
	// ablation; incompatible with RemoteWorkers).
	NoPartition bool `json:"no_partition,omitempty"`
	// Workers sets the in-process backend pool (0 = the granted Jobs).
	Workers int `json:"workers,omitempty"`
	// RemoteWorkers lists other cmod daemons ("http://host:port") to
	// farm backend partitions to. Failures fall back to local compiles.
	RemoteWorkers []string `json:"remote_workers,omitempty"`
}

// BuildResponse is the POST /build reply on success.
type BuildResponse struct {
	RequestID string `json:"request_id"`
	// Image is the linked VPA image in objfile encoding —
	// byte-identical to what a one-shot cmoc driver build writes.
	Image []byte `json:"image"`
	// Stats is the build's full stats block; QueueNanos is the time
	// this request waited for a build slot (not part of TotalNanos).
	Stats cmo.BuildStats `json:"stats"`
	// Jobs is the worker count actually granted.
	Jobs int `json:"jobs"`
	// Timing is the human-readable phase report (the -timing text).
	Timing string `json:"timing"`
}

// errorResponse is any non-2xx reply body.
type errorResponse struct {
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error"`
}

// StatusResponse is the GET /status reply.
type StatusResponse struct {
	Daemon    buildInfo       `json:"daemon"`
	Active    int64           `json:"active_builds"`
	Queued    int64           `json:"queued"`
	MaxBuilds int             `json:"max_builds"`
	QueueCap  int             `json:"queue_cap"`
	JobBudget int             `json:"job_budget"`
	Draining  bool            `json:"draining"`
	UptimeSec float64         `json:"uptime_sec"`
	Sessions  []SessionStatus `json:"sessions"`
}

// SessionStatus describes one open cache-dir session.
type SessionStatus struct {
	CacheDir string `json:"cache_dir"`
	Builds   int64  `json:"builds"`
	Commits  int64  `json:"commits"`
}

// BuildsResponse is the GET /builds reply: the in-memory tail of the
// ledger, most recent first.
type BuildsResponse struct {
	Count  int           `json:"count"`
	Builds []BuildRecord `json:"builds"`
}

// requestIDHeader carries the server-assigned id on every reply.
const requestIDHeader = "X-Cmod-Request"

func (s *Server) routes() {
	s.mux.HandleFunc("POST /build", s.handleBuild)
	if s.backendSlots != nil {
		s.mux.HandleFunc("POST /backend", s.handleBackend)
	}
	s.mux.HandleFunc("GET /status", s.handleStatus)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /builds", s.handleBuilds)
	s.mux.HandleFunc("GET /builds/{id}", s.handleBuildByID)
	s.mux.HandleFunc("GET /builds/{id}/trace", s.handleBuildTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /shutdown", s.handleShutdown)
	if s.cfg.EnablePprof {
		// Index serves /debug/pprof/{heap,goroutine,...} itself; only
		// the four special handlers need explicit routes.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// nextRequestID mints "bootid-rNNNNNN". The boot prefix keeps ids from
// different daemon lifetimes distinct inside a ledger that outlives
// any one process.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-r%06d", s.bootID, s.reqSeq.Add(1))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, id string, status int, format string, args ...any) {
	if status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
		s.ctr.rejected.Add(1)
	}
	writeJSON(w, status, errorResponse{RequestID: id, Error: fmt.Sprintf(format, args...)})
}

// handleBuild is the daemon's reason to exist: admission, queue,
// deadline, build, commit, reply — and one ledger record no matter
// how it ends.
func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set(requestIDHeader, id)

	release, ok := s.admit()
	if !ok {
		s.fail(w, id, http.StatusServiceUnavailable, "server is %s", s.busyWord())
		return
	}
	defer release()

	var req BuildRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, id, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Modules) == 0 {
		s.fail(w, id, http.StatusBadRequest, "no modules in request")
		return
	}
	if req.Level < 0 || req.Level > 4 {
		s.fail(w, id, http.StatusBadRequest, "invalid level %d (want 1..4)", req.Level)
		return
	}
	fp := optionsFingerprint(&req)

	// The deadline starts before the queue wait: a request the server
	// cannot schedule in time fails like one it cannot build in time.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Wait for a build slot; the wait is the queue component of
	// latency, reported separately from build time.
	qt0 := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.ctr.canceled.Add(1)
		s.recordBuild(nil, newBuildRecord(id, "", fp, outcomeCanceled,
			ctx.Err(), len(req.Modules), 0, time.Since(qt0).Nanoseconds(), nil), nil)
		s.fail(w, id, http.StatusGatewayTimeout, "timed out waiting for a build slot: %v", ctx.Err())
		return
	}
	defer func() { <-s.slots }()
	queueNanos := time.Since(qt0).Nanoseconds()
	s.ctr.queueNanos.Add(queueNanos)

	jobs, releaseJobs := s.acquireJobs(req.Jobs)
	defer releaseJobs()

	var entry *sessionEntry
	cacheDir := ""
	if req.CacheDir != "" {
		var err error
		entry, err = s.session(req.CacheDir)
		if err != nil {
			s.fail(w, id, http.StatusInternalServerError, "%v", err)
			return
		}
		entry.builds.Add(1)
		cacheDir = entry.dir
	}

	// Each build gets its own trace: the span tree stays bounded to
	// one build (retained in the trace ring for /builds/{id}/trace)
	// and its counters fold into the server-lifetime trace afterward.
	btr := obs.NewTrace()
	opt := cmo.Options{
		Level:         cmo.Level(req.Level),
		SelectPercent: -1,
		Entry:         req.Entry,
		Volatile:      req.Volatile,
		Jobs:          jobs,
		Partitions:    req.Partitions,
		NoPartition:   req.NoPartition,
		Workers:       req.Workers,
		RemoteWorkers: req.RemoteWorkers,
		Trace:         btr,
		Context:       ctx,
	}
	if req.Level == 0 {
		opt.Level = cmo.O4
	}
	if req.SelectPercent != nil {
		opt.SelectPercent = *req.SelectPercent
	}
	if entry != nil {
		opt.Session = entry.sess
	}
	mods := make([]cmo.SourceModule, len(req.Modules))
	for i, m := range req.Modules {
		mods[i] = cmo.SourceModule{Name: m.Name, Text: m.Text}
	}

	s.ctr.active.Add(1)
	b, err := cmo.BuildSource(mods, opt)
	s.ctr.active.Add(-1)

	if err != nil {
		outcome := outcomeFailed
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			outcome = outcomeCanceled
			s.ctr.canceled.Add(1)
			s.fail(w, id, http.StatusGatewayTimeout, "build deadline exceeded: %v", err)
		case errors.Is(err, context.Canceled):
			outcome = outcomeCanceled
			s.ctr.canceled.Add(1)
			s.fail(w, id, http.StatusServiceUnavailable, "build canceled: %v", err)
		default:
			s.ctr.failed.Add(1)
			s.fail(w, id, http.StatusUnprocessableEntity, "build failed: %v", err)
		}
		s.recordBuild(entry, newBuildRecord(id, cacheDir, fp, outcome,
			err, len(req.Modules), jobs, queueNanos, nil), btr)
		return
	}

	// Single-writer durability: each completed build commits the
	// session exactly once — repository blob log, manifest, and the
	// dependency graph's log — serialized per cache directory, so two
	// concurrent builds never interleave a manifest write. Reads never
	// take this lock.
	if entry != nil && entry.sess.Repo() != nil {
		entry.commitMu.Lock()
		cerr := entry.sess.Commit()
		entry.commitMu.Unlock()
		if cerr != nil {
			s.ctr.failed.Add(1)
			s.recordBuild(entry, newBuildRecord(id, cacheDir, fp, outcomeFailed,
				cerr, len(req.Modules), jobs, queueNanos, &b.Stats), btr)
			s.fail(w, id, http.StatusInternalServerError, "committing session: %v", cerr)
			return
		}
		entry.commits.Add(1)
		s.ctr.commitsCtr.Add(1)
	}

	b.Stats.QueueNanos = queueNanos
	var img bytes.Buffer
	if err := objfile.EncodeImage(&img, b.Image); err != nil {
		s.ctr.failed.Add(1)
		s.recordBuild(entry, newBuildRecord(id, cacheDir, fp, outcomeFailed,
			err, len(req.Modules), jobs, queueNanos, &b.Stats), btr)
		s.fail(w, id, http.StatusInternalServerError, "encoding image: %v", err)
		return
	}
	s.ctr.completed.Add(1)
	s.recordBuild(entry, newBuildRecord(id, cacheDir, fp, outcomeOK,
		nil, len(req.Modules), jobs, queueNanos, &b.Stats), btr)
	writeJSON(w, http.StatusOK, BuildResponse{
		RequestID: id,
		Image:     img.Bytes(),
		Stats:     b.Stats,
		Jobs:      jobs,
		Timing:    b.TimingReport(),
	})
}

// busyWord distinguishes the two 503 causes in the error text.
func (s *Server) busyWord() string {
	if s.Draining() {
		return "draining"
	}
	return "at capacity (queue full)"
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]SessionStatus, 0, len(s.sessions))
	for _, e := range s.sessions {
		sessions = append(sessions, SessionStatus{
			CacheDir: e.dir,
			Builds:   e.builds.Load(),
			Commits:  e.commits.Load(),
		})
	}
	draining := s.draining
	s.mu.Unlock()
	info := s.buildInfo()
	writeJSON(w, http.StatusOK, StatusResponse{
		Daemon:    info,
		Active:    s.ctr.active.Value(),
		Queued:    s.ctr.queueDepth.Value() - s.ctr.active.Value(),
		MaxBuilds: s.cfg.MaxBuilds,
		QueueCap:  s.cfg.MaxBuilds + s.cfg.QueueDepth,
		JobBudget: s.cfg.JobBudget,
		Draining:  draining,
		UptimeSec: info.UptimeSec,
		Sessions:  sessions,
	})
}

// handleMetrics renders the registry in Prometheus text exposition
// format. The legacy trace counters ride along as sanitized untyped
// series (naim.cache_hits -> cmod_naim_cache_hits), so one scrape
// carries both the histogram fleet view and the raw counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = s.registry.WritePrometheus(w, "cmod", s.trace.CounterSnapshot())
}

// handleMetricsJSON is the original JSON counter snapshot, kept for
// scripts that predate the Prometheus endpoint.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.trace.WriteMetrics(w)
}

// handleBuilds serves the in-memory ledger tail, most recent first.
// ?limit=N caps the reply (default: everything retained).
func (s *Server) handleBuilds(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.fail(w, "", http.StatusBadRequest, "bad limit %q", q)
			return
		}
		limit = n
	}
	recs := s.buildRecords(limit)
	writeJSON(w, http.StatusOK, BuildsResponse{Count: len(recs), Builds: recs})
}

func (s *Server) handleBuildByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.buildRecord(id)
	if !ok {
		s.fail(w, id, http.StatusNotFound, "no build record %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleBuildTrace streams a retained build's full trace as Chrome
// trace-event JSON (load it in about:tracing or Perfetto). Only the
// last TraceRing builds of this process have one; replayed ledger
// records answer 404 here while still appearing in /builds.
func (s *Server) handleBuildTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.buildTrace(id)
	if !ok {
		s.fail(w, id, http.StatusNotFound, "no retained trace for build %q (ring holds the last %d)", id, s.cfg.TraceRing)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChromeTrace(w)
}

// handleHealthz keeps its first line a bare "ok" (probes match on
// that), then appends the identity block for humans.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	info := s.buildInfo()
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "version: %s (%s)\n", info.Version, info.GoVersion)
	fmt.Fprintf(w, "pid: %d\n", info.PID)
	fmt.Fprintf(w, "uptime_sec: %.1f\n", info.UptimeSec)
}

// handleShutdown asks the owning process to drain and exit — the
// remote equivalent of SIGTERM. The reply goes out before the drain
// begins so the client is not racing the listener teardown.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
	s.shutOnce.Do(func() { close(s.shutdown) })
}
