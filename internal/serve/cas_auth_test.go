package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"cmo/internal/cas"
	"cmo/internal/naim"
)

func casTestKey(seed string) string {
	k := naim.KeyOfStrings("serve-cas-auth", seed)
	return fmt.Sprintf("%x", k[:])
}

// The -cas-token boundary: with a token configured, /cas requests
// without the right bearer secret answer 401 before the store sees
// them — namespaces alone are cooperative, the token is the actual
// isolation boundary — while a cas.Client configured with the secret
// round-trips normally.
func TestCASTokenAuth(t *testing.T) {
	store, err := cas.OpenStore(t.TempDir(), cas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{CAS: store, CASToken: "s3cret"})
	defer srv.Drain() // closes the store
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	key := casTestKey("guarded")
	url := hs.URL + "/cas/tenant/" + key
	blob := []byte("guarded bytes")

	// No token and a wrong token are both refused.
	for name, header := range map[string]string{"missing": "", "wrong": "Bearer nope"} {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if header != "" {
			req.Header.Set("Authorization", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s token: %d, want 401", name, resp.StatusCode)
		}
	}
	if st := store.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("unauthorized request reached the store: %+v", st)
	}

	// The right token passes and the blob lands.
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("authorized PUT: %d", resp.StatusCode)
	}

	// The cas client presents the secret on every request.
	c := cas.NewClient(hs.URL, cas.ClientConfig{Namespace: "tenant", Token: "s3cret"})
	defer c.Close()
	if got, ok := c.Get(key); !ok || !bytes.Equal(got, blob) {
		t.Fatalf("authorized client get: ok=%v %q", ok, got)
	}
}
