// Package iltest generates random, structurally valid IL programs for
// property-based differential testing. Unlike the MinC-based workload
// generator, it produces IR shapes the frontend never emits —
// constants in odd operand positions, unusual block graphs, dead
// registers, tangled copies — which is exactly where optimizer and
// code-generator bugs hide.
//
// Generated programs always verify (il.Verify), never divide by a
// potentially zero value, index arrays only through a safe
// modulo-wrap idiom, and have an acyclic call graph plus bounded
// loops, so every one of them terminates on both the IL interpreter
// and the VPA machine.
package iltest

import (
	"fmt"
	"math/rand"

	"cmo/internal/il"
)

// Config bounds program generation.
type Config struct {
	Funcs     int // number of functions besides main
	Globals   int // scalar globals
	Arrays    int // array globals
	MaxBlocks int // per function
	MaxInstrs int // per block
	MaxRegs   int // virtual registers per function
	ArrayLen  int64
}

// Default returns a medium-size configuration.
func Default() Config {
	return Config{Funcs: 6, Globals: 4, Arrays: 2, MaxBlocks: 6, MaxInstrs: 10, MaxRegs: 24, ArrayLen: 16}
}

// Program is a generated program plus its bodies.
type Program struct {
	Prog  *il.Program
	Funcs map[il.PID]*il.Function
}

// Source returns the bodies as a FuncSource-style lookup.
func (p *Program) Source() func(il.PID) *il.Function {
	return func(pid il.PID) *il.Function { return p.Funcs[pid] }
}

// Generate builds a random valid program from the seed.
func Generate(seed int64, cfg Config) *Program {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Funcs < 1 {
		cfg.Funcs = 1
	}
	if cfg.MaxRegs < 8 {
		cfg.MaxRegs = 8
	}
	if cfg.ArrayLen < 4 {
		cfg.ArrayLen = 4
	}
	prog := il.NewProgram()
	mod := prog.AddModule("fuzz")
	out := &Program{Prog: prog, Funcs: make(map[il.PID]*il.Function)}

	var scalars, arrays []il.PID
	for i := 0; i < cfg.Globals; i++ {
		pid, _ := prog.Intern(fmt.Sprintf("g%d", i), il.SymGlobal)
		s := prog.Sym(pid)
		s.Module = mod.Index
		s.Type = il.I64
		s.Init = rng.Int63n(201) - 100
		mod.Defs = append(mod.Defs, pid)
		scalars = append(scalars, pid)
	}
	for i := 0; i < cfg.Arrays; i++ {
		pid, _ := prog.Intern(fmt.Sprintf("arr%d", i), il.SymGlobal)
		s := prog.Sym(pid)
		s.Module = mod.Index
		s.Type = il.ArrayI64
		s.Elems = cfg.ArrayLen
		mod.Defs = append(mod.Defs, pid)
		arrays = append(arrays, pid)
	}

	// Function symbols first (acyclic: function i may call j > i).
	var fpids []il.PID
	for i := 0; i < cfg.Funcs; i++ {
		pid, _ := prog.Intern(fmt.Sprintf("f%d", i), il.SymFunc)
		s := prog.Sym(pid)
		s.Module = mod.Index
		nparams := rng.Intn(4)
		sig := il.Signature{Ret: il.I64}
		for p := 0; p < nparams; p++ {
			sig.Params = append(sig.Params, il.I64)
		}
		s.Sig = sig
		mod.Defs = append(mod.Defs, pid)
		fpids = append(fpids, pid)
	}
	mainPID, _ := prog.Intern("main", il.SymFunc)
	ms := prog.Sym(mainPID)
	ms.Module = mod.Index
	ms.Sig = il.Signature{Ret: il.I64}
	mod.Defs = append(mod.Defs, mainPID)

	g := &gen{rng: rng, cfg: cfg, prog: prog, scalars: scalars, arrays: arrays}
	for i, pid := range fpids {
		g.callees = fpids[i+1:]
		out.Funcs[pid] = g.function(prog, pid)
	}
	g.callees = fpids
	out.Funcs[mainPID] = g.function(prog, mainPID)
	return out
}

type gen struct {
	rng        *rand.Rand
	cfg        Config
	prog       *il.Program
	scalars    []il.PID
	arrays     []il.PID
	callees    []il.PID
	allowCalls bool
	// [ctrLo, ctrHi) is the loop-counter register range random
	// instructions must never write.
	ctrLo, ctrHi il.Reg
}

// function builds one body: a chain of blocks with bounded loops.
func (g *gen) function(prog *il.Program, pid il.PID) *il.Function {
	sym := prog.Sym(pid)
	nblocks := 1 + g.rng.Intn(g.cfg.MaxBlocks)
	f := &il.Function{
		Name:     sym.Name,
		PID:      pid,
		NParams:  len(sym.Sig.Params),
		Ret:      il.I64,
		NRegs:    il.Reg(8 + g.rng.Intn(g.cfg.MaxRegs)),
		SrcLines: 1 + g.rng.Intn(30),
	}
	// Reserve a loop-counter register per potential loop so bounded
	// back edges cannot interact with random defs.
	counterBase := f.NRegs
	f.NRegs += il.Reg(nblocks)
	g.ctrLo, g.ctrHi = counterBase, f.NRegs

	loopUsed := false
	for bi := 0; bi < nblocks; bi++ {
		b := &il.Block{T: -1, F: -1}
		n := 1 + g.rng.Intn(g.cfg.MaxInstrs)
		// Calls are emitted only in the entry block, which back edges
		// never target: combined with the one-loop-per-function rule
		// below, this bounds total work multiplicatively (each call
		// chain level multiplies by at most the entry's call count,
		// never by loop trip counts).
		g.allowCalls = bi == 0
		for ii := 0; ii < n; ii++ {
			b.Instrs = append(b.Instrs, g.instr(f))
		}
		// Terminator: mostly forward edges; occasionally a bounded
		// self-contained loop back to an earlier block guarded by a
		// dedicated counter.
		last := bi == nblocks-1
		switch {
		case last || g.rng.Intn(4) == 0:
			b.Instrs = append(b.Instrs, il.Instr{Op: il.Ret, A: g.value(f)})
		case bi > 1 && !loopUsed && g.rng.Intn(4) == 0:
			// Bounded back edge: counter += 1; if counter < K goto an
			// earlier block else fall through. The counter register
			// is reserved (nothing else writes it) and monotone, and
			// the back edge never targets the entry block (whose
			// preamble would reset the counters), so all loops are
			// finite.
			ctr := counterBase + il.Reg(bi)
			cond := f.NewReg()
			b.Instrs = append(b.Instrs,
				il.Instr{Op: il.Add, Dst: ctr, A: il.RegVal(ctr), B: il.ConstVal(1)},
				il.Instr{Op: il.Lt, Dst: cond, A: il.RegVal(ctr), B: il.ConstVal(int64(2 + g.rng.Intn(4)))},
				il.Instr{Op: il.Br, A: il.RegVal(cond)},
			)
			b.T = int32(1 + g.rng.Intn(bi-1)) // backward, never the entry
			b.F = int32(bi + 1)
			loopUsed = true
		case g.rng.Intn(2) == 0:
			b.Instrs = append(b.Instrs, il.Instr{Op: il.Br, A: g.value(f)})
			b.T = int32(bi + 1)
			b.F = int32(bi + 1 + g.rng.Intn(nblocks-bi-1))
		default:
			b.Instrs = append(b.Instrs, il.Instr{Op: il.Jmp})
			b.T = int32(bi + 1)
		}
		f.Blocks = append(f.Blocks, b)
	}
	// Initialize every non-parameter register in the entry block.
	// Read-before-def is not part of the IL contract (the frontend
	// never produces it, and register allocation may legally hand an
	// undefined read a recycled machine register), so generated
	// programs must define everything along every path. Loop counters
	// start at 0 to keep the back edges bounded; everything else gets
	// a random constant — more fodder for constant propagation.
	var preamble []il.Instr
	for r := il.Reg(f.NParams + 1); r < f.NRegs; r++ {
		v := int64(0)
		if r < counterBase || r >= counterBase+il.Reg(nblocks) {
			v = g.rng.Int63n(101) - 50
		}
		preamble = append(preamble, il.Instr{Op: il.Const, Dst: r, A: il.ConstVal(v)})
	}
	f.Blocks[0].Instrs = append(preamble, f.Blocks[0].Instrs...)
	return f
}

// value picks a random operand.
func (g *gen) value(f *il.Function) il.Value {
	if g.rng.Intn(3) == 0 {
		return il.ConstVal(g.rng.Int63n(401) - 200)
	}
	return il.RegVal(il.Reg(1 + g.rng.Intn(int(f.NRegs)-1)))
}

func (g *gen) dst(f *il.Function) il.Reg {
	for {
		r := il.Reg(1 + g.rng.Intn(int(f.NRegs)-1))
		if r < g.ctrLo || r >= g.ctrHi {
			return r
		}
	}
}

// instr emits one random straight-line instruction.
func (g *gen) instr(f *il.Function) il.Instr {
	for {
		switch g.rng.Intn(12) {
		case 0:
			return il.Instr{Op: il.Const, Dst: g.dst(f), A: il.ConstVal(g.rng.Int63n(2001) - 1000)}
		case 1:
			return il.Instr{Op: il.Copy, Dst: g.dst(f), A: g.value(f)}
		case 2, 3:
			ops := []il.Op{il.Add, il.Sub, il.Mul}
			return il.Instr{Op: ops[g.rng.Intn(len(ops))], Dst: g.dst(f), A: g.value(f), B: g.value(f)}
		case 4:
			// Division by a guaranteed non-zero constant.
			d := g.rng.Int63n(9) + 1
			if g.rng.Intn(2) == 0 {
				d = -d
			}
			op := il.Div
			if g.rng.Intn(2) == 0 {
				op = il.Rem
			}
			return il.Instr{Op: op, Dst: g.dst(f), A: g.value(f), B: il.ConstVal(d)}
		case 5:
			ops := []il.Op{il.Neg, il.Not}
			return il.Instr{Op: ops[g.rng.Intn(2)], Dst: g.dst(f), A: g.value(f)}
		case 6:
			ops := []il.Op{il.Eq, il.Ne, il.Lt, il.Le, il.Gt, il.Ge}
			return il.Instr{Op: ops[g.rng.Intn(len(ops))], Dst: g.dst(f), A: g.value(f), B: g.value(f)}
		case 7:
			if len(g.scalars) == 0 {
				continue
			}
			pid := g.scalars[g.rng.Intn(len(g.scalars))]
			if g.rng.Intn(2) == 0 {
				return il.Instr{Op: il.LoadG, Dst: g.dst(f), Sym: pid}
			}
			return il.Instr{Op: il.StoreG, Sym: pid, A: g.value(f)}
		case 8, 9:
			// Array access with a wrapped index: idx = ((v % N) + N) % N,
			// materialized as explicit instructions writing fresh regs.
			if len(g.arrays) == 0 {
				continue
			}
			// Emitting a multi-instruction idiom from a single-instr
			// generator: fold it into a Copy of a safe value instead
			// when register budget is tight.
			return g.arrayAccess(f)
		case 10:
			if len(g.callees) == 0 || !g.allowCalls {
				continue
			}
			callee := g.callees[g.rng.Intn(len(g.callees))]
			args := make([]il.Value, len(g.prog.Sym(callee).Sig.Params))
			for i := range args {
				args[i] = g.value(f)
			}
			return il.Instr{Op: il.Call, Dst: g.dst(f), Sym: callee, Args: args}
		default:
			return il.Instr{Op: il.Nop}
		}
	}
}

// arrayAccess is restricted to constant in-bounds indexes so that a
// single instruction suffices and can never trap.
func (g *gen) arrayAccess(f *il.Function) il.Instr {
	pid := g.arrays[g.rng.Intn(len(g.arrays))]
	idx := il.ConstVal(g.rng.Int63n(g.cfg.ArrayLen))
	if g.rng.Intn(2) == 0 {
		return il.Instr{Op: il.LoadX, Dst: g.dst(f), Sym: pid, A: idx}
	}
	return il.Instr{Op: il.StoreX, Sym: pid, A: idx, B: g.value(f)}
}
