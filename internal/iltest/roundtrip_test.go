package iltest

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/naim"
)

func checkRoundTrip(t *testing.T, seed int64, prog *il.Program, f *il.Function) {
	t.Helper()
	blob := naim.EncodeFunc(f, nil)
	back, err := naim.DecodeFunc(prog, blob)
	if err != nil {
		t.Fatalf("seed %d: decode %s: %v", seed, f.Name, err)
	}
	if back.Print(prog) != f.Print(prog) {
		t.Fatalf("seed %d: %s: compact/expand round trip differs", seed, f.Name)
	}
}
