package iltest

import (
	"testing"

	"cmo/internal/hlo"
	"cmo/internal/il"
	"cmo/internal/link"
	"cmo/internal/llo"
	"cmo/internal/vpa"
	"cmo/internal/xform"
)

const fuzzSteps = 2e6

func interpResult(t *testing.T, seed int64, p *Program) (int64, bool) {
	t.Helper()
	it := il.NewInterp(p.Prog, p.Source())
	v, err := it.Run("main", nil, fuzzSteps)
	if err == il.ErrStepLimit {
		// Bounded loops should prevent this; treat as generator bug.
		t.Fatalf("seed %d: generated program ran away", seed)
	}
	if err != nil {
		t.Fatalf("seed %d: interp: %v", seed, err)
	}
	return v, true
}

func TestGeneratedProgramsVerify(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p := Generate(seed, Default())
		for pid, f := range p.Funcs {
			if err := il.Verify(p.Prog, f); err != nil {
				t.Fatalf("seed %d: %s does not verify: %v\n%s",
					seed, p.Prog.Sym(pid).Name, err, f.Print(p.Prog))
			}
		}
		interpResult(t, seed, p)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, Default())
	b := Generate(42, Default())
	for pid, f := range a.Funcs {
		if b.Funcs[pid] == nil || f.Print(a.Prog) != b.Funcs[pid].Print(b.Prog) {
			t.Fatalf("generation not deterministic for %s", f.Name)
		}
	}
}

// TestXformPreservesRandomIL: the local pipeline must preserve
// semantics on IR shapes the frontend never emits.
func TestXformPreservesRandomIL(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, Default())
		want, _ := interpResult(t, seed, p)
		opt := make(map[il.PID]*il.Function, len(p.Funcs))
		for pid, f := range p.Funcs {
			of := f.Clone()
			xform.Optimize(of)
			if xform.UnrollLoops(of, 128) {
				xform.Optimize(of)
			}
			if err := il.Verify(p.Prog, of); err != nil {
				t.Fatalf("seed %d: %s after xform: %v", seed, of.Name, err)
			}
			opt[pid] = of
		}
		it := il.NewInterp(p.Prog, func(pid il.PID) *il.Function { return opt[pid] })
		got, err := it.Run("main", nil, fuzzSteps)
		if err != nil {
			t.Fatalf("seed %d: optimized interp: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: xform changed result: %d != %d", seed, got, want)
		}
	}
}

// TestHLOPreservesRandomIL: cross-module inlining, cloning, IPCP, and
// dead function elimination over random IR.
func TestHLOPreservesRandomIL(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := Generate(seed, Default())
		want, _ := interpResult(t, seed, p)
		work := make(hlo.MapSource, len(p.Funcs))
		for pid, f := range p.Funcs {
			work[pid] = f.Clone()
		}
		res, err := hlo.Optimize(p.Prog, work, hlo.Options{})
		if err != nil {
			t.Fatalf("seed %d: hlo: %v", seed, err)
		}
		dead := make(map[il.PID]bool)
		for _, pid := range res.Dead {
			dead[pid] = true
		}
		for pid, f := range work {
			if dead[pid] {
				continue
			}
			if err := il.Verify(p.Prog, f); err != nil {
				t.Fatalf("seed %d: %s after hlo: %v", seed, f.Name, err)
			}
		}
		it := il.NewInterp(p.Prog, func(pid il.PID) *il.Function { return work[pid] })
		got, err := it.Run("main", nil, fuzzSteps)
		if err != nil {
			t.Fatalf("seed %d: hlo interp: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: HLO changed result: %d != %d", seed, got, want)
		}
	}
}

// TestCodegenPreservesRandomIL: the machine path (O1 and O2, with and
// without HLO first) must agree with the interpreter on random IR.
func TestCodegenPreservesRandomIL(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := Generate(seed, Default())
		want, _ := interpResult(t, seed, p)
		for _, level := range []int{1, 2} {
			code := make(map[il.PID]*vpa.Func, len(p.Funcs))
			for pid, f := range p.Funcs {
				mf, err := llo.Compile(p.Prog, f, llo.Options{Level: level})
				if err != nil {
					t.Fatalf("seed %d O%d: compile %s: %v", seed, level, f.Name, err)
				}
				code[pid] = mf
			}
			img, err := link.Link(p.Prog, code, link.Options{})
			if err != nil {
				t.Fatalf("seed %d O%d: link: %v", seed, level, err)
			}
			m := vpa.NewMachine(img, vpa.DefaultConfig())
			got, err := m.Run(nil, fuzzSteps)
			if err != nil {
				t.Fatalf("seed %d O%d: machine: %v", seed, level, err)
			}
			if got != want {
				t.Fatalf("seed %d O%d: machine %d != interp %d", seed, level, got, want)
			}
		}
	}
}

// TestFullPipelineRandomIL: HLO + LLO + link + machine, the whole O4
// pipeline over random IR.
func TestFullPipelineRandomIL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Default())
		want, _ := interpResult(t, seed, p)
		work := make(hlo.MapSource, len(p.Funcs))
		for pid, f := range p.Funcs {
			work[pid] = f.Clone()
		}
		res, err := hlo.Optimize(p.Prog, work, hlo.Options{})
		if err != nil {
			t.Fatalf("seed %d: hlo: %v", seed, err)
		}
		omit := make(map[il.PID]bool)
		for _, pid := range res.Dead {
			omit[pid] = true
		}
		code := make(map[il.PID]*vpa.Func, len(work))
		for _, pid := range p.Prog.FuncPIDs() {
			if omit[pid] {
				continue
			}
			mf, err := llo.Compile(p.Prog, work[pid], llo.Options{Level: 2})
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			code[pid] = mf
		}
		img, err := link.Link(p.Prog, code, link.Options{Omit: omit})
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		m := vpa.NewMachine(img, vpa.DefaultConfig())
		got, err := m.Run(nil, fuzzSteps)
		if err != nil {
			t.Fatalf("seed %d: machine: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: full pipeline %d != interp %d", seed, got, want)
		}
	}
}

// TestNAIMRoundTripRandomIL: compact/expand every generated body and
// require print-identical IR (the codec property on hostile shapes).
func TestNAIMRoundTripRandomIL(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Default())
		for _, f := range p.Funcs {
			checkRoundTrip(t, seed, p.Prog, f)
		}
	}
}
