package vpa

import (
	"errors"
	"fmt"
)

// Config is the machine's timing and cache model. The zero value is
// not useful; start from DefaultConfig.
type Config struct {
	// I-cache geometry: ICacheLines total lines of ICacheLineSize
	// bytes, CacheWays-way set associative.
	ICacheLines    int
	ICacheLineSize int64 // bytes
	// D-cache geometry: DCacheLines total lines of DCacheLineSize
	// words, covering the global data segment.
	DCacheLines    int
	DCacheLineSize int64 // words
	// CacheWays is the associativity of both caches (LRU within a
	// set); 0 means direct-mapped.
	CacheWays int

	IMissPenalty  int64
	DMissPenalty  int64
	MispredictPen int64
	// TakenBranchCost is the fetch-redirect bubble charged for every
	// taken branch or jump, even when correctly predicted. This is
	// what makes fall-through (profile-guided) block layout pay.
	TakenBranchCost int64
	CallOverhead    int64 // cycles charged per call (frame + save/restore)
	RetOverhead     int64
	MulCost         int64 // total cycles for MUL
	DivCost         int64 // total cycles for DIV/REM
	MemCost         int64 // base cycles for LDG/STG/LDX/STX
	SlotCost        int64 // cycles for LDL/STL (stack assumed cached)
}

// DefaultConfig returns the standard machine model used by all
// experiments.
func DefaultConfig() Config {
	return Config{
		// The PA-8000 ran against large off-chip caches (up to 1 MB);
		// the model uses 128 KB I / 64 KB D so that a clustered hot
		// working set fits (even after inlining duplicates hot code)
		// while a large application's full image does not — the
		// regime in which profile-guided code positioning pays.
		ICacheLines:     2048, // 128 KB of 64-byte lines
		ICacheLineSize:  64,
		DCacheLines:     1024, // 64 KB of 8-word (64-byte) lines
		DCacheLineSize:  8,
		CacheWays:       4,
		IMissPenalty:    12,
		DMissPenalty:    20,
		MispredictPen:   5,
		TakenBranchCost: 1,
		CallOverhead:    8,
		RetOverhead:     3,
		MulCost:         3,
		DivCost:         12,
		MemCost:         2,
		SlotCost:        2,
	}
}

// Stats accumulates execution counters for one run.
type Stats struct {
	Cycles      int64
	Instrs      int64
	Calls       int64
	Branches    int64
	Mispredicts int64
	IMisses     int64
	DMisses     int64
	Loads       int64
	Stores      int64
	MaxDepth    int
}

// Machine execution failure modes.
var (
	ErrMachineSteps  = errors.New("vpa: step limit exceeded")
	ErrMachineDepth  = errors.New("vpa: call stack overflow")
	ErrMachineDivide = errors.New("vpa: division by zero")
	ErrMachineBounds = errors.New("vpa: data access out of bounds")
)

const maxCallDepth = 10000

// Machine interprets a VPA image with the cycle model of Config.
// cache is an N-way set-associative cache model with per-set LRU.
type cache struct {
	tags []int64 // sets*ways entries; way-major within a set
	age  []uint8 // LRU rank per entry (0 = most recent)
	sets int
	ways int
}

func newCache(lines, ways int) *cache {
	if ways <= 0 {
		ways = 1
	}
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	c := &cache{tags: make([]int64, sets*ways), age: make([]uint8, sets*ways), sets: sets, ways: ways}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// access returns true on hit; on miss the LRU way is replaced.
func (c *cache) access(line int64) bool {
	set := int(line % int64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			// Hit: make this way most recent.
			old := c.age[base+w]
			for v := 0; v < c.ways; v++ {
				if c.age[base+v] < old {
					c.age[base+v]++
				}
			}
			c.age[base+w] = 0
			return true
		}
	}
	// Miss: evict the oldest way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.age[base+w] > c.age[base+victim] {
			victim = w
		}
	}
	for v := 0; v < c.ways; v++ {
		if c.age[base+v] < c.age[base+victim] {
			c.age[base+v]++
		}
	}
	c.tags[base+victim] = line
	c.age[base+victim] = 0
	return false
}

type Machine struct {
	img  *Image
	cfg  Config
	data []int64
	// global g occupies words data[g.Addr : g.Addr+g.Words]
	icache *cache
	dcache *cache
	Probes []int64
	Stats  Stats
}

// NewMachine prepares a machine for the image. The image must have
// been Finalized and Validated.
func NewMachine(img *Image, cfg Config) *Machine {
	m := &Machine{img: img, cfg: cfg}
	m.Reset()
	return m
}

// Reset restores data memory to initial values and cold caches.
func (m *Machine) Reset() {
	m.data = make([]int64, m.img.DataWords())
	for _, g := range m.img.Globals {
		if g.Words == 1 {
			m.data[g.Addr] = g.Init
		}
	}
	m.icache = newCache(m.cfg.ICacheLines, m.cfg.CacheWays)
	m.dcache = newCache(m.cfg.DCacheLines, m.cfg.CacheWays)
	m.Probes = make([]int64, m.img.NumProbes)
	m.Stats = Stats{}
}

// SetGlobal writes a scalar global before a run.
func (m *Machine) SetGlobal(name string, v int64) error {
	gi := m.img.GlobalIndex(name)
	if gi < 0 || m.img.Globals[gi].Words != 1 {
		return fmt.Errorf("vpa: no scalar global %q", name)
	}
	m.data[m.img.Globals[gi].Addr] = v
	return nil
}

// Global reads a scalar global after a run.
func (m *Machine) Global(name string) (int64, error) {
	gi := m.img.GlobalIndex(name)
	if gi < 0 || m.img.Globals[gi].Words != 1 {
		return 0, fmt.Errorf("vpa: no scalar global %q", name)
	}
	return m.data[m.img.Globals[gi].Addr], nil
}

func (m *Machine) ifetch(addr int64) {
	if !m.icache.access(addr / m.cfg.ICacheLineSize) {
		m.Stats.IMisses++
		m.Stats.Cycles += m.cfg.IMissPenalty
	}
}

func (m *Machine) daccess(word int64) {
	if !m.dcache.access(word / m.cfg.DCacheLineSize) {
		m.Stats.DMisses++
		m.Stats.Cycles += m.cfg.DMissPenalty
	}
}

type vframe struct {
	fi    int32
	pc    int32
	regs  [NumRegs]int64
	slots []int64
}

// Run executes the image's entry function with args in r1..rN and
// returns r1 at exit. maxSteps bounds executed instructions (0 means
// 2e9). The machine keeps cache and probe state across runs; call
// Reset for a cold start.
func (m *Machine) Run(args []int64, maxSteps int64) (int64, error) {
	if maxSteps <= 0 {
		maxSteps = 2e9
	}
	frames := make([]vframe, 1, 64)
	cur := &frames[0]
	cur.fi = m.img.Entry
	entry := m.img.Funcs[cur.fi]
	cur.slots = make([]int64, entry.NSlots)
	for i, a := range args {
		cur.regs[i+1] = a
	}
	steps := int64(0)
	for {
		f := m.img.Funcs[cur.fi]
		if int(cur.pc) >= len(f.Code) {
			return 0, fmt.Errorf("vpa: %s: fell off the end of the code", f.Name)
		}
		in := &f.Code[cur.pc]
		addr := f.Addr + int64(cur.pc)*InstrBytes
		m.ifetch(addr)
		steps++
		if steps > maxSteps {
			return 0, ErrMachineSteps
		}
		m.Stats.Instrs++
		m.Stats.Cycles++
		nextPC := cur.pc + 1
		b := func() int64 {
			if in.ImmB {
				return in.Imm
			}
			return cur.regs[in.Rb]
		}
		switch in.Op {
		case NOP:
		case MOVI:
			cur.regs[in.Rd] = in.Imm
		case MOV:
			cur.regs[in.Rd] = cur.regs[in.Ra]
		case ADD:
			cur.regs[in.Rd] = cur.regs[in.Ra] + b()
		case SUB:
			cur.regs[in.Rd] = cur.regs[in.Ra] - b()
		case MUL:
			cur.regs[in.Rd] = cur.regs[in.Ra] * b()
			m.Stats.Cycles += m.cfg.MulCost - 1
		case DIV:
			d := b()
			if d == 0 {
				return 0, ErrMachineDivide
			}
			cur.regs[in.Rd] = cur.regs[in.Ra] / d
			m.Stats.Cycles += m.cfg.DivCost - 1
		case REM:
			d := b()
			if d == 0 {
				return 0, ErrMachineDivide
			}
			cur.regs[in.Rd] = cur.regs[in.Ra] % d
			m.Stats.Cycles += m.cfg.DivCost - 1
		case SHL:
			cur.regs[in.Rd] = cur.regs[in.Ra] << uint64(b()&63)
		case SHR:
			cur.regs[in.Rd] = cur.regs[in.Ra] >> uint64(b()&63)
		case NEG:
			cur.regs[in.Rd] = -cur.regs[in.Ra]
		case NOT:
			if cur.regs[in.Ra] == 0 {
				cur.regs[in.Rd] = 1
			} else {
				cur.regs[in.Rd] = 0
			}
		case CMPEQ:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] == b())
		case CMPNE:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] != b())
		case CMPLT:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] < b())
		case CMPLE:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] <= b())
		case CMPGT:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] > b())
		case CMPGE:
			cur.regs[in.Rd] = b2i(cur.regs[in.Ra] >= b())
		case LDG:
			g := &m.img.Globals[in.Sym]
			m.daccess(g.Addr)
			cur.regs[in.Rd] = m.data[g.Addr]
			m.Stats.Loads++
			m.Stats.Cycles += m.cfg.MemCost - 1
		case STG:
			g := &m.img.Globals[in.Sym]
			m.daccess(g.Addr)
			m.data[g.Addr] = cur.regs[in.Ra]
			m.Stats.Stores++
			m.Stats.Cycles += m.cfg.MemCost - 1
		case LDX:
			g := &m.img.Globals[in.Sym]
			idx := cur.regs[in.Ra]
			if idx < 0 || idx >= g.Words {
				return 0, ErrMachineBounds
			}
			m.daccess(g.Addr + idx)
			cur.regs[in.Rd] = m.data[g.Addr+idx]
			m.Stats.Loads++
			m.Stats.Cycles += m.cfg.MemCost - 1
		case STX:
			g := &m.img.Globals[in.Sym]
			idx := cur.regs[in.Ra]
			if idx < 0 || idx >= g.Words {
				return 0, ErrMachineBounds
			}
			m.daccess(g.Addr + idx)
			m.data[g.Addr+idx] = b()
			m.Stats.Stores++
			m.Stats.Cycles += m.cfg.MemCost - 1
		case LDL:
			cur.regs[in.Rd] = cur.slots[in.Imm]
			m.Stats.Loads++
			m.Stats.Cycles += m.cfg.SlotCost - 1
		case STL:
			cur.slots[in.Imm] = cur.regs[in.Ra]
			m.Stats.Stores++
			m.Stats.Cycles += m.cfg.SlotCost - 1
		case CALL:
			if len(frames) >= maxCallDepth {
				return 0, ErrMachineDepth
			}
			m.Stats.Calls++
			m.Stats.Cycles += m.cfg.CallOverhead - 1
			cur.pc = nextPC
			callee := m.img.Funcs[in.Sym]
			frames = append(frames, vframe{fi: in.Sym, slots: make([]int64, callee.NSlots)})
			nf := &frames[len(frames)-1]
			// Arguments are passed in r1..r8.
			copy(nf.regs[1:9], cur.regs[1:9])
			if len(frames) > m.Stats.MaxDepth {
				m.Stats.MaxDepth = len(frames)
			}
			cur = nf
			// Simulate the fetch redirect to the callee entry.
			m.ifetch(callee.Addr)
			continue
		case RET:
			m.Stats.Cycles += m.cfg.RetOverhead - 1
			ret := cur.regs[1]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return ret, nil
			}
			cur = &frames[len(frames)-1]
			cur.regs[1] = ret
			continue
		case JMP:
			nextPC = in.Target
			m.Stats.Cycles += m.cfg.TakenBranchCost
		case BRT, BRF:
			m.Stats.Branches++
			taken := (cur.regs[in.Ra] != 0) == (in.Op == BRT)
			// Static prediction: backward branches predicted taken,
			// forward branches predicted not-taken.
			predictTaken := in.Target <= cur.pc
			if taken != predictTaken {
				m.Stats.Mispredicts++
				m.Stats.Cycles += m.cfg.MispredictPen
			}
			if taken {
				nextPC = in.Target
				m.Stats.Cycles += m.cfg.TakenBranchCost
			}
		case PROBE:
			m.Probes[in.Imm]++
			m.Stats.Cycles++ // probes cost an extra cycle
		case HALT:
			return cur.regs[1], nil
		default:
			return 0, fmt.Errorf("vpa: %s: unknown opcode %s", f.Name, in.Op)
		}
		cur.regs[0] = 0 // r0 stays hardwired to zero
		cur.pc = nextPC
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
