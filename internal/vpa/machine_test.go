package vpa

import (
	"strings"
	"testing"
)

// sumImage builds, by hand, an image computing sum(1..n) with a loop:
//
//	main: r2=0; r3=1; loop: if r3>r1 goto done; r2+=r3; r3+=1; goto loop
//	done: r1=r2; ret
func sumImage() *Image {
	main := &Func{
		Name: "main",
		Code: []Instr{
			{Op: MOVI, Rd: 2, Imm: 0},
			{Op: MOVI, Rd: 3, Imm: 1},
			{Op: CMPGT, Rd: 4, Ra: 3, Rb: 1},            // 2
			{Op: BRT, Ra: 4, Target: 7},                 // 3
			{Op: ADD, Rd: 2, Ra: 2, Rb: 3},              // 4
			{Op: ADD, Rd: 3, Ra: 3, ImmB: true, Imm: 1}, // 5
			{Op: JMP, Target: 2},                        // 6
			{Op: MOV, Rd: 1, Ra: 2},                     // 7
			{Op: RET},
		},
	}
	img := &Image{Funcs: []*Func{main}, Entry: 0}
	img.Finalize()
	return img
}

func TestMachineSumLoop(t *testing.T) {
	img := sumImage()
	if err := img.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m := NewMachine(img, DefaultConfig())
	got, err := m.Run([]int64{100}, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5050 {
		t.Errorf("sum(100) = %d, want 5050", got)
	}
	if m.Stats.Instrs == 0 || m.Stats.Cycles < m.Stats.Instrs {
		t.Errorf("implausible stats: %+v", m.Stats)
	}
	if m.Stats.Branches != 101 {
		t.Errorf("branches = %d, want 101", m.Stats.Branches)
	}
}

func callImage() *Image {
	// add2(a, b) = a + b; main calls add2(r1, 32).
	add2 := &Func{
		Name: "add2",
		Code: []Instr{
			{Op: ADD, Rd: 1, Ra: 1, Rb: 2},
			{Op: RET},
		},
	}
	main := &Func{
		Name: "main",
		Code: []Instr{
			{Op: MOVI, Rd: 2, Imm: 32},
			{Op: CALL, Sym: 1},
			{Op: RET},
		},
	}
	img := &Image{Funcs: []*Func{main, add2}, Entry: 0}
	img.Finalize()
	return img
}

func TestMachineCall(t *testing.T) {
	img := callImage()
	if err := img.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m := NewMachine(img, DefaultConfig())
	got, err := m.Run([]int64{10}, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if m.Stats.Calls != 1 {
		t.Errorf("calls = %d, want 1", m.Stats.Calls)
	}
}

func TestMachineGlobalsAndArrays(t *testing.T) {
	img := &Image{
		Globals: []Global{
			{Name: "g", Words: 1, Init: 7},
			{Name: "arr", Words: 4},
		},
		Funcs: []*Func{{
			Name: "main",
			Code: []Instr{
				{Op: LDG, Rd: 2, Sym: 0},                    // r2 = g (7)
				{Op: MOVI, Rd: 3, Imm: 2},                   // index 2
				{Op: STX, Sym: 1, Ra: 3, Rb: 2},             // arr[2] = 7
				{Op: LDX, Rd: 4, Sym: 1, Ra: 3},             // r4 = arr[2]
				{Op: ADD, Rd: 4, Ra: 4, ImmB: true, Imm: 1}, // 8
				{Op: STG, Sym: 0, Ra: 4},                    // g = 8
				{Op: LDG, Rd: 1, Sym: 0},
				{Op: RET},
			},
		}},
		Entry: 0,
	}
	img.Finalize()
	if err := img.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m := NewMachine(img, DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 8 {
		t.Errorf("got %d, want 8", got)
	}
	v, err := m.Global("g")
	if err != nil || v != 8 {
		t.Errorf("g = %d, %v", v, err)
	}
	if err := m.SetGlobal("arr", 0); err == nil {
		t.Error("SetGlobal on array must fail")
	}
}

func TestMachineTraps(t *testing.T) {
	mk := func(code []Instr, globals []Global) *Machine {
		img := &Image{Funcs: []*Func{{Name: "main", Code: code}}, Globals: globals, Entry: 0}
		img.Finalize()
		if err := img.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		return NewMachine(img, DefaultConfig())
	}
	m := mk([]Instr{{Op: DIV, Rd: 1, Ra: 1, ImmB: true, Imm: 0}, {Op: RET}}, nil)
	if _, err := m.Run([]int64{5}, 0); err != ErrMachineDivide {
		t.Errorf("div: %v, want ErrMachineDivide", err)
	}
	m = mk([]Instr{
		{Op: MOVI, Rd: 2, Imm: 9},
		{Op: LDX, Rd: 1, Sym: 0, Ra: 2},
		{Op: RET},
	}, []Global{{Name: "a", Words: 4}})
	if _, err := m.Run(nil, 0); err != ErrMachineBounds {
		t.Errorf("bounds: %v, want ErrMachineBounds", err)
	}
	m = mk([]Instr{{Op: JMP, Target: 0}}, nil)
	if _, err := m.Run(nil, 1000); err != ErrMachineSteps {
		t.Errorf("spin: %v, want ErrMachineSteps", err)
	}
	m = mk([]Instr{{Op: CALL, Sym: 0}, {Op: RET}}, nil)
	if _, err := m.Run(nil, 0); err != ErrMachineDepth {
		t.Errorf("recursion: %v, want ErrMachineDepth", err)
	}
}

func TestMachineSpillSlots(t *testing.T) {
	img := &Image{
		Funcs: []*Func{{
			Name:   "main",
			NSlots: 2,
			Code: []Instr{
				{Op: MOVI, Rd: 2, Imm: 11},
				{Op: STL, Imm: 0, Ra: 2},
				{Op: MOVI, Rd: 2, Imm: 22},
				{Op: STL, Imm: 1, Ra: 2},
				{Op: LDL, Rd: 3, Imm: 0},
				{Op: LDL, Rd: 4, Imm: 1},
				{Op: ADD, Rd: 1, Ra: 3, Rb: 4},
				{Op: RET},
			},
		}},
		Entry: 0,
	}
	img.Finalize()
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil || got != 33 {
		t.Errorf("got %d, %v; want 33", got, err)
	}
}

func TestBranchPredictionModel(t *testing.T) {
	// A backward branch taken repeatedly should predict well; a
	// forward branch taken repeatedly should mispredict every time.
	img := sumImage()
	m := NewMachine(img, DefaultConfig())
	if _, err := m.Run([]int64{1000}, 0); err != nil {
		t.Fatal(err)
	}
	// The loop-exit check (BRT forward, index 3) is not-taken 1000
	// times (predicted correctly) and taken once (mispredicted).
	if m.Stats.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", m.Stats.Mispredicts)
	}
}

func TestICacheLayoutSensitivity(t *testing.T) {
	// Two functions calling each other in a hot loop: when they are
	// adjacent, both fit in cache lines near each other; when padded
	// far apart with a conflict-mapped distance, misses rise.
	mkImg := func(padding int) *Machine {
		callee := &Func{Name: "callee", Code: []Instr{
			{Op: ADD, Rd: 1, Ra: 1, ImmB: true, Imm: 1},
			{Op: RET},
		}}
		pad := &Func{Name: "pad", Code: make([]Instr, padding)}
		for i := range pad.Code {
			pad.Code[i] = Instr{Op: NOP}
		}
		pad.Code[len(pad.Code)-1] = Instr{Op: RET}
		main := &Func{Name: "main", Code: []Instr{
			{Op: MOVI, Rd: 9, Imm: 0},
			{Op: MOVI, Rd: 1, Imm: 0},
			{Op: CALL, Sym: 2},                          // 2: call callee
			{Op: ADD, Rd: 9, Ra: 9, ImmB: true, Imm: 1}, // 3
			{Op: CMPLT, Rd: 10, Ra: 9, ImmB: true, Imm: 1000},
			{Op: BRT, Ra: 10, Target: 2},
			{Op: RET},
		}}
		img := &Image{Funcs: []*Func{main, pad, callee}, Entry: 0}
		img.Finalize()
		if err := img.Validate(); err != nil {
			t.Fatal(err)
		}
		m := NewMachine(img, DefaultConfig())
		if _, err := m.Run(nil, 0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	near := mkImg(1)
	cfg := DefaultConfig()
	// Pad by exactly one I-cache capacity so main and callee share
	// the same cache sets -> conflict misses every iteration.
	far := mkImg(int(cfg.ICacheLineSize) * cfg.ICacheLines / InstrBytes)
	if near.Stats.IMisses >= far.Stats.IMisses {
		t.Errorf("icache insensitive to layout: near=%d far=%d misses",
			near.Stats.IMisses, far.Stats.IMisses)
	}
	if near.Stats.Cycles >= far.Stats.Cycles {
		t.Errorf("cycles insensitive to layout: near=%d far=%d",
			near.Stats.Cycles, far.Stats.Cycles)
	}
}

func TestProbes(t *testing.T) {
	img := &Image{
		NumProbes: 2,
		Funcs: []*Func{{
			Name: "main",
			Code: []Instr{
				{Op: PROBE, Imm: 1},
				{Op: PROBE, Imm: 1},
				{Op: PROBE, Imm: 0},
				{Op: MOVI, Rd: 1, Imm: 0},
				{Op: RET},
			},
		}},
		Entry: 0,
	}
	img.Finalize()
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, DefaultConfig())
	if _, err := m.Run(nil, 0); err != nil {
		t.Fatal(err)
	}
	if m.Probes[0] != 1 || m.Probes[1] != 2 {
		t.Errorf("probes = %v, want [1 2]", m.Probes)
	}
}

func TestImageValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		img  *Image
		frag string
	}{
		{"no funcs", &Image{}, "no functions"},
		{"bad entry", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: RET}}}}, Entry: 5}, "entry"},
		{"empty code", &Image{Funcs: []*Func{{Name: "f"}}, Entry: 0}, "no code"},
		{"bad target", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: JMP, Target: 9}}}}, Entry: 0}, "target"},
		{"bad call", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: CALL, Sym: 3}, {Op: RET}}}}, Entry: 0}, "call target"},
		{"bad sym", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: LDG, Rd: 1, Sym: 0}, {Op: RET}}}}, Entry: 0}, "data symbol"},
		{"bad slot", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: LDL, Rd: 1, Imm: 0}, {Op: RET}}}}, Entry: 0}, "frame slot"},
		{"no ret", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: NOP}}}}, Entry: 0}, "does not end"},
		{"bad probe", &Image{Funcs: []*Func{{Name: "f", Code: []Instr{{Op: PROBE, Imm: 0}, {Op: RET}}}}, Entry: 0}, "probe id"},
	}
	for _, tc := range cases {
		tc.img.Finalize()
		err := tc.img.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.frag)
		}
	}
}

func TestDisasmAndIndexes(t *testing.T) {
	img := callImage()
	d := img.Disasm()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "call fn1") {
		t.Errorf("disasm missing content:\n%s", d)
	}
	if img.FuncIndex("add2") != 1 || img.FuncIndex("nope") != -1 {
		t.Error("FuncIndex wrong")
	}
	if img.CodeBytes() != int64(5*InstrBytes) {
		t.Errorf("CodeBytes = %d", img.CodeBytes())
	}
}

func TestMachineResetColdState(t *testing.T) {
	img := sumImage()
	m := NewMachine(img, DefaultConfig())
	if _, err := m.Run([]int64{10}, 0); err != nil {
		t.Fatal(err)
	}
	first := m.Stats
	m.Reset()
	if _, err := m.Run([]int64{10}, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats != first {
		t.Errorf("reset run differs: %+v vs %+v", m.Stats, first)
	}
}
