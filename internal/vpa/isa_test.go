package vpa

import (
	"strings"
	"testing"
)

func TestOpCodeStrings(t *testing.T) {
	all := []OpCode{NOP, MOVI, MOV, ADD, SUB, MUL, DIV, REM, SHL, SHR, NEG, NOT,
		CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE, LDG, STG, LDX, STX, LDL, STL,
		CALL, RET, JMP, BRT, BRF, PROBE, HALT}
	seen := map[string]bool{}
	for _, op := range all {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OpCode(") {
			t.Errorf("opcode %d unnamed", op)
		}
		if seen[s] {
			t.Errorf("duplicate opcode name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(OpCode(99).String(), "OpCode(") {
		t.Error("unknown opcode should print numerically")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: HALT}, "halt"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: MOVI, Rd: 3, Imm: -9}, "movi r3, -9"},
		{Instr{Op: MOV, Rd: 3, Ra: 4}, "mov r3, r4"},
		{Instr{Op: NEG, Rd: 3, Ra: 4}, "neg r3, r4"},
		{Instr{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: SUB, Rd: 1, Ra: 2, ImmB: true, Imm: 7}, "sub r1, r2, 7"},
		{Instr{Op: SHL, Rd: 1, Ra: 2, ImmB: true, Imm: 3}, "shl r1, r2, 3"},
		{Instr{Op: CMPLE, Rd: 1, Ra: 2, Rb: 3}, "cmple r1, r2, r3"},
		{Instr{Op: LDG, Rd: 1, Sym: 4}, "ldg r1, sym4"},
		{Instr{Op: STG, Sym: 4, Ra: 1}, "stg sym4, r1"},
		{Instr{Op: LDX, Rd: 1, Sym: 4, Ra: 2}, "ldx r1, sym4[r2]"},
		{Instr{Op: STX, Sym: 4, Ra: 2, Rb: 5}, "stx sym4[r2], r5"},
		{Instr{Op: STX, Sym: 4, Ra: 2, ImmB: true, Imm: 6}, "stx sym4[r2], 6"},
		{Instr{Op: LDL, Rd: 1, Imm: 2}, "ldl r1, [2]"},
		{Instr{Op: STL, Imm: 2, Ra: 1}, "stl [2], r1"},
		{Instr{Op: CALL, Sym: 9}, "call fn9"},
		{Instr{Op: JMP, Target: 5}, "jmp 5"},
		{Instr{Op: BRT, Ra: 1, Target: 5}, "brt r1, 5"},
		{Instr{Op: BRF, Ra: 1, Target: 5}, "brf r1, 5"},
		{Instr{Op: PROBE, Imm: 3}, "probe 3"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("got %q, want %q", got, tc.want)
		}
	}
}

func TestShiftSemantics(t *testing.T) {
	img := &Image{
		Funcs: []*Func{{Name: "main", Code: []Instr{
			{Op: MOVI, Rd: 2, Imm: -8},
			{Op: SHR, Rd: 3, Ra: 2, ImmB: true, Imm: 1}, // arithmetic: -4
			{Op: SHL, Rd: 4, Ra: 3, ImmB: true, Imm: 2}, // -16
			{Op: SUB, Rd: 1, Ra: 4, Rb: 3},              // -16 - (-4) = -12
			{Op: RET},
		}}},
		Entry: 0,
	}
	img.Finalize()
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, DefaultConfig())
	got, err := m.Run(nil, 0)
	if err != nil || got != -12 {
		t.Errorf("got %d, %v; want -12", got, err)
	}
}

func TestDirectMappedConfig(t *testing.T) {
	// CacheWays 0 behaves as direct-mapped (1 way) without panicking.
	cfg := DefaultConfig()
	cfg.CacheWays = 0
	img := &Image{Funcs: []*Func{{Name: "main", Code: []Instr{
		{Op: MOVI, Rd: 1, Imm: 5}, {Op: RET},
	}}}, Entry: 0}
	img.Finalize()
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, cfg)
	if got, err := m.Run(nil, 0); err != nil || got != 5 {
		t.Errorf("got %d, %v", got, err)
	}
}
