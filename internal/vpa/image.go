package vpa

import (
	"fmt"
	"strings"
)

// Func is one routine in an executable image.
type Func struct {
	Name   string
	Addr   int64 // byte address of the first instruction
	Code   []Instr
	NSlots int // spill/frame slots
}

// Global describes one data-segment symbol.
type Global struct {
	Name  string
	Addr  int64 // word address in the data segment
	Words int64 // 1 for scalars, element count for arrays
	Init  int64 // initial value (scalars)
}

// Image is a fully linked executable for the VPA machine. Function
// order in Funcs is the code layout order chosen by the linker; Addr
// fields must be consistent with it (use Finalize).
type Image struct {
	Funcs   []*Func
	Globals []Global
	Entry   int32 // index into Funcs of the entry routine

	// NumProbes is the size of the profile counter array for
	// instrumented images.
	NumProbes int

	funcByName   map[string]int32
	globalByName map[string]int32
}

// Finalize assigns code addresses from the current function order and
// data addresses from the current global order, then builds the name
// indexes. Call it after constructing or reordering an image.
func (img *Image) Finalize() {
	addr := int64(0)
	img.funcByName = make(map[string]int32, len(img.Funcs))
	for i, f := range img.Funcs {
		f.Addr = addr
		addr += int64(len(f.Code)) * InstrBytes
		img.funcByName[f.Name] = int32(i)
	}
	var daddr int64
	img.globalByName = make(map[string]int32, len(img.Globals))
	for i := range img.Globals {
		img.Globals[i].Addr = daddr
		daddr += img.Globals[i].Words
		img.globalByName[img.Globals[i].Name] = int32(i)
	}
}

// CodeBytes reports the total code size in bytes.
func (img *Image) CodeBytes() int64 {
	var n int64
	for _, f := range img.Funcs {
		n += int64(len(f.Code)) * InstrBytes
	}
	return n
}

// DataWords reports the total data segment size in words.
func (img *Image) DataWords() int64 {
	var n int64
	for _, g := range img.Globals {
		n += g.Words
	}
	return n
}

// FuncIndex returns the index of the named function, or -1.
func (img *Image) FuncIndex(name string) int32 {
	if i, ok := img.funcByName[name]; ok {
		return i
	}
	return -1
}

// GlobalIndex returns the index of the named global, or -1.
func (img *Image) GlobalIndex(name string) int32 {
	if i, ok := img.globalByName[name]; ok {
		return i
	}
	return -1
}

// Disasm renders the whole image as text, for debugging and golden
// tests.
func (img *Image) Disasm() string {
	var sb strings.Builder
	for _, g := range img.Globals {
		fmt.Fprintf(&sb, ".data %s @%d words=%d init=%d\n", g.Name, g.Addr, g.Words, g.Init)
	}
	for fi, f := range img.Funcs {
		entry := ""
		if int32(fi) == img.Entry {
			entry = " <entry>"
		}
		fmt.Fprintf(&sb, "%s: @%d slots=%d%s\n", f.Name, f.Addr, f.NSlots, entry)
		for i, in := range f.Code {
			fmt.Fprintf(&sb, "  %4d  %s\n", i, in)
		}
	}
	return sb.String()
}

// Validate checks structural sanity of the image: branch targets in
// range, symbol indexes in range, register numbers valid. The
// simulator assumes a validated image.
func (img *Image) Validate() error {
	if len(img.Funcs) == 0 {
		return fmt.Errorf("vpa: image has no functions")
	}
	if img.Entry < 0 || int(img.Entry) >= len(img.Funcs) {
		return fmt.Errorf("vpa: entry index %d out of range", img.Entry)
	}
	for _, f := range img.Funcs {
		if len(f.Code) == 0 {
			return fmt.Errorf("vpa: function %s has no code", f.Name)
		}
		for i, in := range f.Code {
			if in.Rd >= NumRegs || in.Ra >= NumRegs || in.Rb >= NumRegs {
				return fmt.Errorf("vpa: %s+%d: register out of range in %s", f.Name, i, in)
			}
			switch in.Op {
			case JMP, BRT, BRF:
				if in.Target < 0 || int(in.Target) >= len(f.Code) {
					return fmt.Errorf("vpa: %s+%d: branch target %d out of range", f.Name, i, in.Target)
				}
			case CALL:
				if in.Sym < 0 || int(in.Sym) >= len(img.Funcs) {
					return fmt.Errorf("vpa: %s+%d: call target fn%d out of range", f.Name, i, in.Sym)
				}
			case LDG, STG, LDX, STX:
				if in.Sym < 0 || int(in.Sym) >= len(img.Globals) {
					return fmt.Errorf("vpa: %s+%d: data symbol %d out of range", f.Name, i, in.Sym)
				}
			case LDL:
				if in.Imm < 0 || int(in.Imm) >= f.NSlots {
					return fmt.Errorf("vpa: %s+%d: frame slot %d out of range (%d slots)", f.Name, i, in.Imm, f.NSlots)
				}
			case STL:
				if in.Imm < 0 || int(in.Imm) >= f.NSlots {
					return fmt.Errorf("vpa: %s+%d: frame slot %d out of range (%d slots)", f.Name, i, in.Imm, f.NSlots)
				}
			case PROBE:
				if in.Imm < 0 || int(in.Imm) >= img.NumProbes {
					return fmt.Errorf("vpa: %s+%d: probe id %d out of range (%d probes)", f.Name, i, in.Imm, img.NumProbes)
				}
			}
		}
		last := f.Code[len(f.Code)-1].Op
		if last != RET && last != JMP && last != HALT {
			return fmt.Errorf("vpa: function %s does not end in ret/jmp/halt", f.Name)
		}
	}
	return nil
}
