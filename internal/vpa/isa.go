// Package vpa implements the Virtual PA machine: the simulated RISC
// target that stands in for the paper's HP PA-8000 hardware.
//
// The machine exists so that the optimizations under study win or
// lose through the same mechanisms they did on real hardware:
//
//   - an instruction cache indexed by code address, so the linker's
//     profile-guided routine clustering and LLO's basic-block layout
//     change performance;
//   - a data cache over the global data segment;
//   - static branch prediction (backward taken / forward not-taken),
//     so block layout converts taken branches into fall-throughs;
//   - explicit call/return overhead, so inlining pays;
//   - multi-cycle multiply/divide, so strength reduction pays.
//
// Absolute cycle counts are not meant to match a 180 MHz PA8000; the
// relative shape of the paper's results is what the model preserves
// (see DESIGN.md section 2).
package vpa

import "fmt"

// OpCode is a VPA machine operation.
type OpCode uint8

// VPA opcodes. Register operands are machine registers 0..31; r0 is
// hardwired to zero, r1 carries return values and the first argument.
const (
	NOP   OpCode = iota
	MOVI         // rd = imm
	MOV          // rd = ra
	ADD          // rd = ra + rb/imm
	SUB          // rd = ra - rb/imm
	MUL          // rd = ra * rb/imm
	DIV          // rd = ra / rb/imm (traps on zero)
	REM          // rd = ra % rb/imm (traps on zero)
	SHL          // rd = ra << rb/imm
	SHR          // rd = ra >> rb/imm (arithmetic)
	NEG          // rd = -ra
	NOT          // rd = (ra == 0) ? 1 : 0
	CMPEQ        // rd = ra == rb/imm
	CMPNE        // rd = ra != rb/imm
	CMPLT        // rd = ra < rb/imm
	CMPLE        // rd = ra <= rb/imm
	CMPGT        // rd = ra > rb/imm
	CMPGE        // rd = ra >= rb/imm
	LDG          // rd = data[Sym]
	STG          // data[Sym] = ra
	LDX          // rd = data[Sym + ra] (traps out of bounds)
	STX          // data[Sym + ra] = rb/imm (traps out of bounds)
	LDL          // rd = frame slot Imm
	STL          // frame slot Imm = ra
	CALL         // call function Sym; args in r1..r8, result in r1
	RET          // return to caller
	JMP          // unconditional branch to Target
	BRT          // branch to Target when ra != 0
	BRF          // branch to Target when ra == 0
	PROBE        // profiling counter Imm += 1
	HALT         // stop the machine (linker-emitted epilogue for main)
)

var opNames = [...]string{
	NOP: "nop", MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	SHL: "shl", SHR: "shr", NEG: "neg", NOT: "not",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	CMPGT: "cmpgt", CMPGE: "cmpge",
	LDG: "ldg", STG: "stg", LDX: "ldx", STX: "stx",
	LDL: "ldl", STL: "stl",
	CALL: "call", RET: "ret", JMP: "jmp", BRT: "brt", BRF: "brf",
	PROBE: "probe", HALT: "halt",
}

func (o OpCode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// NumRegs is the machine register file size.
const NumRegs = 32

// InstrBytes is the encoded size of one instruction, used for code
// addressing (and therefore I-cache behavior).
const InstrBytes = 4

// Instr is one decoded VPA instruction. ImmB selects the immediate
// form of three-operand instructions (rb is ignored, Imm is used).
type Instr struct {
	Op     OpCode
	Rd     uint8
	Ra     uint8
	Rb     uint8
	ImmB   bool
	Imm    int64
	Sym    int32 // data symbol or callee function index, per Op
	Target int32 // branch target: instruction index within the function
}

func (in Instr) String() string {
	b := func() string {
		if in.ImmB {
			return fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("r%d", in.Rb)
	}
	switch in.Op {
	case NOP, RET, HALT:
		return in.Op.String()
	case MOVI:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case MOV, NEG, NOT:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Ra)
	case ADD, SUB, MUL, DIV, REM, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rd, in.Ra, b())
	case LDG:
		return fmt.Sprintf("ldg r%d, sym%d", in.Rd, in.Sym)
	case STG:
		return fmt.Sprintf("stg sym%d, r%d", in.Sym, in.Ra)
	case LDX:
		return fmt.Sprintf("ldx r%d, sym%d[r%d]", in.Rd, in.Sym, in.Ra)
	case STX:
		return fmt.Sprintf("stx sym%d[r%d], %s", in.Sym, in.Ra, b())
	case LDL:
		return fmt.Sprintf("ldl r%d, [%d]", in.Rd, in.Imm)
	case STL:
		return fmt.Sprintf("stl [%d], r%d", in.Imm, in.Ra)
	case CALL:
		return fmt.Sprintf("call fn%d", in.Sym)
	case JMP:
		return fmt.Sprintf("jmp %d", in.Target)
	case BRT:
		return fmt.Sprintf("brt r%d, %d", in.Ra, in.Target)
	case BRF:
		return fmt.Sprintf("brf r%d, %d", in.Ra, in.Target)
	case PROBE:
		return fmt.Sprintf("probe %d", in.Imm)
	}
	return in.Op.String()
}
