// Package partition groups a program's surviving routines into
// balanced backend compilation units — the WPA→ltrans split of the
// GCC LTO line (Glek/Hubička; Liška), transplanted onto the paper's
// repository pipeline. After HLO has finished its whole-program work,
// the per-routine code generation is embarrassingly parallel; the
// partitioner decides the unit of that parallelism: big enough to
// amortize dispatch, small enough to spread across workers, and cut
// where few call edges cross so related routines stay together (the
// `-flto-partition=balanced` heuristic).
//
// The assignment is a pure function of its inputs — item order, static
// sizes, and the call multigraph — and deliberately consumes no
// measured timings: two builds of the same program must produce the
// same partitions regardless of Jobs, worker count, or what previous
// builds recorded (the determinism tests hold exactly this). Measured
// costs still matter, but only downstream: the dispatcher orders
// *dirty* partitions by depgraph critical-path priority, which changes
// scheduling, never membership.
package partition

import "sort"

// Item is one unit of backend work, typically a routine.
type Item struct {
	// ID is the stable identity (function name).
	ID string
	// Module is the defining module's index: the canonical order
	// groups items module-major, so partitions respect module
	// locality exactly as GCC's balanced partitioning keeps symbols
	// of one object file together when it can.
	Module int
	// Size is the item's static cost model (instruction count). It
	// must be derived from program content only — never from measured
	// wall time — or assignment determinism dies.
	Size int64
}

// Edge is one aggregated call edge between two items; Weight counts
// call sites. Edges whose endpoints land in different partitions are
// "cut"; the partitioner minimizes cut weight within its balance
// window. Edge order is irrelevant (weights are summed), so callers
// may emit them in any order.
type Edge struct {
	A, B   string
	Weight int64
}

// A Partition is one contiguous run of the canonical item order.
type Partition struct {
	// Index is the partition's position in 0..Total-1.
	Index int
	// Items in canonical order.
	Items []Item
	// Size is the summed item size.
	Size int64
}

// Auto picks the default partition count for n items: roughly one
// partition per eight routines, clamped to [1, 32]. The formula
// depends only on the program (never on Jobs or worker count), so the
// partitioning — and with it every partition fingerprint — is stable
// across hosts with different parallelism.
func Auto(n int) int {
	c := (n + 7) / 8
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return c
}

// Balanced splits items into at most count contiguous partitions of
// the canonical order (module-major, input order within a module),
// choosing each cut inside a ±25% balance window around the ideal
// partition size at the position crossed by the least call-edge
// weight. Fewer than count items yield one partition per item. The
// result covers every input item exactly once.
func Balanced(items []Item, edges []Edge, count int) []Partition {
	n := len(items)
	if n == 0 {
		return nil
	}
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}

	// Canonical order: module-major, stable within a module. The
	// caller hands items in PID order, which is already module-major
	// for definitions, but re-sorting makes the contract independent
	// of interning details.
	ordered := make([]Item, n)
	copy(ordered, items)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Module < ordered[j].Module
	})
	pos := make(map[string]int, n)
	var total int64
	for i, it := range ordered {
		pos[it.ID] = i
		total += it.Size
	}

	// cutCost[c] is the summed weight of edges crossing the boundary
	// between position c and c+1: an edge spanning positions p<q is
	// crossed by every cut c with p <= c < q. Built as a difference
	// array so the whole sweep is O(items + edges).
	cutCost := make([]int64, n)
	for _, e := range edges {
		p, okA := pos[e.A]
		q, okB := pos[e.B]
		if !okA || !okB || p == q {
			continue
		}
		if p > q {
			p, q = q, p
		}
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		cutCost[p] += w
		cutCost[q] -= w
	}
	for c := 1; c < n; c++ {
		cutCost[c] += cutCost[c-1]
	}

	parts := make([]Partition, 0, count)
	start := 0
	var used int64
	for len(parts) < count-1 {
		remainingParts := count - len(parts)
		// Ideal fill for this partition given what remains.
		target := (total - used + int64(remainingParts) - 1) / int64(remainingParts)
		lo, hi := target*3/4, target*5/4
		// The cut index c closes this partition at ordered[start..c].
		// It must leave at least one item per remaining partition.
		maxCut := n - 1 - (remainingParts - 1)
		bestCut, bestCost := -1, int64(-1)
		var fill int64
		for c := start; c <= maxCut; c++ {
			fill += ordered[c].Size
			if fill < lo && c < maxCut {
				continue
			}
			if bestCut == -1 || cutCost[c] < bestCost {
				bestCut, bestCost = c, cutCost[c]
			}
			if fill >= hi {
				break
			}
		}
		p := Partition{Index: len(parts), Items: ordered[start : bestCut+1]}
		for _, it := range p.Items {
			p.Size += it.Size
		}
		used += p.Size
		parts = append(parts, p)
		start = bestCut + 1
	}
	last := Partition{Index: len(parts), Items: ordered[start:]}
	for _, it := range last.Items {
		last.Size += it.Size
	}
	parts = append(parts, last)
	return parts
}
