package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func mkItems(n, mods int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:     fmt.Sprintf("f%03d", i),
			Module: i * mods / n,
			Size:   int64(10 + (i*7)%23),
		}
	}
	return items
}

// TestBalancedCovers holds the structural contract: every item lands
// in exactly one partition, partitions are non-empty, indices are
// dense, and sizes sum.
func TestBalancedCovers(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 64} {
		for _, count := range []int{1, 2, 3, 8, 100} {
			items := mkItems(n, 4)
			parts := Balanced(items, nil, count)
			want := count
			if want > n {
				want = n
			}
			if len(parts) != want {
				t.Fatalf("n=%d count=%d: got %d partitions, want %d", n, count, len(parts), want)
			}
			seen := map[string]bool{}
			for i, p := range parts {
				if p.Index != i {
					t.Fatalf("partition %d has Index %d", i, p.Index)
				}
				if len(p.Items) == 0 {
					t.Fatalf("n=%d count=%d: empty partition %d", n, count, i)
				}
				var size int64
				for _, it := range p.Items {
					if seen[it.ID] {
						t.Fatalf("item %s assigned twice", it.ID)
					}
					seen[it.ID] = true
					size += it.Size
				}
				if size != p.Size {
					t.Fatalf("partition %d size %d, items sum %d", i, p.Size, size)
				}
			}
			if len(seen) != n {
				t.Fatalf("n=%d count=%d: %d items covered", n, count, len(seen))
			}
		}
	}
}

// TestBalancedDeterministic: same inputs give the same assignment, and
// edge *order* is irrelevant (weights are summed into a difference
// array, so permutation cannot matter).
func TestBalancedDeterministic(t *testing.T) {
	items := mkItems(48, 6)
	edges := make([]Edge, 0, 96)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 96; i++ {
		a, b := rng.Intn(48), rng.Intn(48)
		edges = append(edges, Edge{A: items[a].ID, B: items[b].ID, Weight: int64(1 + rng.Intn(9))})
	}
	ref := Balanced(items, edges, 5)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Edge(nil), edges...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Balanced(items, shuffled, 5)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: assignment changed under edge permutation", trial)
		}
	}
}

// TestBalancedModuleMajor: partitions are contiguous runs of the
// module-major order, so a module is split only at partition
// boundaries — never interleaved.
func TestBalancedModuleMajor(t *testing.T) {
	items := mkItems(40, 8)
	parts := Balanced(items, nil, 4)
	lastMod := -1
	for _, p := range parts {
		for _, it := range p.Items {
			if it.Module < lastMod {
				t.Fatalf("module order regressed: %d after %d", it.Module, lastMod)
			}
			lastMod = it.Module
		}
	}
}

// TestBalancedBalance: with uniform sizes no partition exceeds ~2x
// its fair share (the window is ±25%, but integer rounding and the
// final remainder partition loosen the bound).
func TestBalancedBalance(t *testing.T) {
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("f%02d", i), Module: i / 4, Size: 10}
	}
	parts := Balanced(items, nil, 8)
	fair := int64(64 * 10 / 8)
	for _, p := range parts {
		if p.Size > 2*fair {
			t.Fatalf("partition %d size %d exceeds 2x fair share %d", p.Index, p.Size, fair)
		}
	}
}

// TestBalancedPrefersCheapCut: a heavy edge inside the balance window
// pulls the cut to the cheaper boundary.
func TestBalancedPrefersCheapCut(t *testing.T) {
	// Six equal items, one hot edge between f2 and f3: splitting in
	// two must cut somewhere, and the window around the midpoint
	// includes both sides of the hot edge — the partitioner must not
	// cut through it.
	items := make([]Item, 6)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("f%d", i), Module: 0, Size: 10}
	}
	edges := []Edge{{A: "f2", B: "f3", Weight: 100}}
	parts := Balanced(items, edges, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	first := map[string]bool{}
	for _, it := range parts[0].Items {
		first[it.ID] = true
	}
	if first["f2"] != first["f3"] {
		t.Fatalf("hot edge f2-f3 cut: first partition %v", parts[0].Items)
	}
}

// FuzzBalanced: arbitrary inputs keep the structural contract and
// determinism.
func FuzzBalanced(f *testing.F) {
	f.Add(int64(1), 10, 3, 8)
	f.Add(int64(42), 33, 7, 100)
	f.Fuzz(func(t *testing.T, seed int64, n, mods, count int) {
		if n < 1 || n > 200 || mods < 1 || mods > 32 || count < 1 || count > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:     fmt.Sprintf("f%04d", i),
				Module: rng.Intn(mods),
				Size:   int64(rng.Intn(50)),
			}
		}
		var edges []Edge
		for i := 0; i < n; i++ {
			edges = append(edges, Edge{
				A:      items[rng.Intn(n)].ID,
				B:      items[rng.Intn(n)].ID,
				Weight: int64(rng.Intn(20) - 2),
			})
		}
		a := Balanced(items, edges, count)
		b := Balanced(items, edges, count)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("assignment not deterministic")
		}
		seen := map[string]int{}
		for _, p := range a {
			if len(p.Items) == 0 {
				t.Fatal("empty partition")
			}
			for _, it := range p.Items {
				seen[it.ID]++
			}
		}
		if len(seen) != n {
			t.Fatalf("covered %d of %d items", len(seen), n)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("item %s assigned %d times", id, c)
			}
		}
	})
}
