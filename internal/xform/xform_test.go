package xform

import (
	"testing"

	"cmo/internal/il"
	"cmo/internal/lower"
	"cmo/internal/source"
)

func buildFns(t *testing.T, src string) (*il.Program, map[il.PID]*il.Function) {
	t.Helper()
	f, err := source.Parse("t.minc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := source.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := lower.Modules([]*source.File{f})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Prog, res.Funcs
}

// runBoth interprets the program as lowered and after Optimize on all
// bodies, requiring identical results; returns the optimized value.
func runBoth(t *testing.T, src string) (int64, map[il.PID]*il.Function, *il.Program) {
	t.Helper()
	prog, fns := buildFns(t, src)
	ref := il.NewInterp(prog, func(p il.PID) *il.Function { return fns[p] })
	want, err := ref.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refSteps := ref.Steps()

	opt := make(map[il.PID]*il.Function, len(fns))
	for pid, f := range fns {
		of := f.Clone()
		Optimize(of)
		if err := il.Verify(prog, of); err != nil {
			t.Fatalf("verify after Optimize(%s): %v\n%s", f.Name, err, of.Print(prog))
		}
		opt[pid] = of
	}
	oit := il.NewInterp(prog, func(p il.PID) *il.Function { return opt[p] })
	got, err := oit.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}
	if got != want {
		t.Fatalf("optimized result %d != reference %d", got, want)
	}
	if oit.Steps() > refSteps {
		t.Errorf("optimization made program slower: %d > %d steps", oit.Steps(), refSteps)
	}
	return got, opt, prog
}

func TestOptimizeConstantFolding(t *testing.T) {
	_, opt, prog := runBoth(t, `module m;
func main() int {
	var a int = 3 + 4;
	var b int = a * 2;
	var c int = b - 5;
	return c * (10 / 2) % 100;
}`)
	// main must fold to a single constant return.
	mainFn := opt[prog.Lookup("main").PID]
	if n := mainFn.NumInstrs(); n > 2 {
		t.Errorf("main not fully folded: %d instrs\n%s", n, mainFn.Print(prog))
	}
}

func TestOptimizeBranchFolding(t *testing.T) {
	_, opt, prog := runBoth(t, `module m;
func main() int {
	var x int = 0;
	if (3 > 2) { x = 1; } else { x = 2; }
	if (false) { x = x + 100; }
	while (false) { x = x + 1000; }
	return x;
}`)
	mainFn := opt[prog.Lookup("main").PID]
	if len(mainFn.Blocks) != 1 {
		t.Errorf("branches not folded: %d blocks\n%s", len(mainFn.Blocks), mainFn.Print(prog))
	}
}

func TestOptimizePreservesLoops(t *testing.T) {
	got, _, _ := runBoth(t, `module m;
var acc int;
func main() int {
	for (var i int = 0; i < 37; i = i + 1) { acc = acc + i; }
	return acc;
}`)
	if got != 666 {
		t.Errorf("got %d, want 666", got)
	}
}

func TestOptimizeAlgebraic(t *testing.T) {
	runBoth(t, `module m;
var g int = 9;
func main() int {
	var x int = g;
	var a int = x + 0;
	var b int = x * 1;
	var c int = x - 0;
	var d int = x / 1;
	var e int = x * 0;
	var f int = x - x;
	return a + b + c + d + e + f;
}`)
}

func TestOptimizeDCERemovesDeadCode(t *testing.T) {
	_, opt, prog := runBoth(t, `module m;
var g int = 2;
func main() int {
	var dead1 int = g * 77;
	var dead2 int = dead1 + g;
	var live int = g + 1;
	dead2 = dead2 * 3;
	return live;
}`)
	mainFn := opt[prog.Lookup("main").PID]
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.Mul {
				t.Errorf("dead multiply survived DCE:\n%s", mainFn.Print(prog))
			}
		}
	}
}

func TestOptimizeKeepsCalls(t *testing.T) {
	got, opt, prog := runBoth(t, `module m;
var g int;
func bump() int { g = g + 1; return g; }
func main() int {
	var dead int = bump();
	dead = dead * 2;
	return g;
}`)
	if got != 1 {
		t.Errorf("got %d, want 1 (call must survive DCE)", got)
	}
	mainFn := opt[prog.Lookup("main").PID]
	calls := 0
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == il.Call {
				calls++
			}
		}
	}
	if calls != 1 {
		t.Errorf("call count after DCE = %d, want 1", calls)
	}
}

func TestOptimizeKeepsDivByZeroTrap(t *testing.T) {
	// The dead division by a (possibly zero) variable must survive.
	prog, fns := buildFns(t, `module m;
var zero int = 0;
func main() int {
	var dead int = 7 / zero;
	return 5;
}`)
	for _, f := range fns {
		Optimize(f)
	}
	it := il.NewInterp(prog, func(p il.PID) *il.Function { return fns[p] })
	if _, err := it.Run("main", nil, 0); err != il.ErrDivZero {
		t.Errorf("trap optimized away: err = %v, want ErrDivZero", err)
	}
}

func TestOptimizeShortCircuitPreserved(t *testing.T) {
	got, _, _ := runBoth(t, `module m;
var calls int;
func sideEffect() bool { calls = calls + 1; return true; }
func main() int {
	var a bool = false;
	var r bool = a && sideEffect();
	if (r) { return -1; }
	return calls;
}`)
	if got != 0 {
		t.Errorf("short-circuit broken after optimize: calls = %d", got)
	}
}

func TestCleanupMergesChains(t *testing.T) {
	_, opt, prog := runBoth(t, `module m;
var g int = 1;
func main() int {
	var x int = g;
	x = x + 1;
	x = x + 2;
	x = x + 3;
	return x;
}`)
	mainFn := opt[prog.Lookup("main").PID]
	if len(mainFn.Blocks) != 1 {
		t.Errorf("straight-line code has %d blocks after cleanup", len(mainFn.Blocks))
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	prog, fns := buildFns(t, `module m;
var g int = 5;
func f(n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { s = s + g; } else { s = s - 1; }
	}
	return s;
}
func main() int { return f(10); }`)
	for _, f := range fns {
		Optimize(f)
	}
	snap := make(map[il.PID]string)
	for pid, f := range fns {
		snap[pid] = f.Print(prog)
	}
	for _, f := range fns {
		Optimize(f)
	}
	for pid, f := range fns {
		if f.Print(prog) != snap[pid] {
			t.Errorf("Optimize not idempotent for %s", f.Name)
		}
	}
}

func TestSimplifyCanonicalizesConstLeft(t *testing.T) {
	in := il.Instr{Op: il.Add, Dst: 5, A: il.ConstVal(3), B: il.RegVal(2)}
	simplify(&in)
	if in.A.IsConst || !in.B.IsConst {
		t.Errorf("constant not canonicalized right: %v", in)
	}
}

func TestFoldBranchesConstCond(t *testing.T) {
	f := &il.Function{
		Name: "t", Ret: il.I64, NRegs: 2,
		Blocks: []*il.Block{
			{Instrs: []il.Instr{{Op: il.Br, A: il.ConstVal(1)}}, T: 1, F: 2},
			{Instrs: []il.Instr{{Op: il.Ret, A: il.ConstVal(10)}}, T: -1, F: -1},
			{Instrs: []il.Instr{{Op: il.Ret, A: il.ConstVal(20)}}, T: -1, F: -1},
		},
	}
	if !FoldBranches(f) {
		t.Fatal("no fold")
	}
	if f.Blocks[0].Term().Op != il.Jmp || f.Blocks[0].T != 1 {
		t.Errorf("bad fold: %v T=%d", f.Blocks[0].Term(), f.Blocks[0].T)
	}
	Cleanup(f)
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable arm survived: %d blocks", len(f.Blocks))
	}
}
