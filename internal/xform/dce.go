package xform

import (
	"cmo/internal/il"
	"cmo/internal/ir"
)

// isRemovable reports whether an instruction may be deleted when its
// destination is dead. Calls, stores, probes, and terminators are
// never removable; Div/Rem are removable only when the divisor is a
// non-zero constant (deleting a potential divide-by-zero trap would
// change behavior); dead loads are removable (see package comment).
func isRemovable(in *il.Instr) bool {
	switch in.Op {
	case il.Const, il.Copy, il.Add, il.Sub, il.Mul, il.Neg, il.Not,
		il.Eq, il.Ne, il.Lt, il.Le, il.Gt, il.Ge,
		il.LoadG, il.LoadX, il.Nop:
		return true
	case il.Div, il.Rem:
		return in.B.IsConst && in.B.Const != 0
	}
	return false
}

// DCE removes instructions whose results are never used, iterating to
// a fixed point. Nop instructions are removed unconditionally. It
// reports whether anything was deleted.
func DCE(f *il.Function) bool {
	any := false
	for {
		c := ir.BuildCFG(f)
		lv := ir.BuildLiveness(f, c)
		changed := false
		for bi, b := range f.Blocks {
			live := lv.Out[bi].Clone()
			// Walk backward, deleting dead removable defs.
			keep := b.Instrs[:0]
			// Collect kept instructions in reverse, then un-reverse.
			var kept []il.Instr
			for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
				in := b.Instrs[ii]
				dead := in.Op == il.Nop ||
					(in.Dst != 0 && !live.Has(in.Dst) && isRemovable(&in))
				if dead {
					changed = true
					continue
				}
				if in.Dst != 0 {
					live.Remove(in.Dst)
				}
				visitUses(&in, func(r il.Reg) { live.Add(r) })
				kept = append(kept, in)
			}
			for i := len(kept) - 1; i >= 0; i-- {
				keep = append(keep, kept[i])
			}
			b.Instrs = keep
		}
		if !changed {
			return any
		}
		any = true
	}
}

func visitUses(in *il.Instr, visit func(il.Reg)) {
	use := func(v il.Value) {
		if !v.IsConst && v.Reg != 0 {
			visit(v.Reg)
		}
	}
	use(in.A)
	use(in.B)
	for _, a := range in.Args {
		use(a)
	}
}
