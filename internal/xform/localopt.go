// Package xform implements function-local IL transformations shared
// by the high-level optimizer (which runs them after inlining to
// exploit interprocedural facts) and the low-level optimizer (which
// runs them as part of the default +O2 intraprocedural pipeline):
// constant folding, copy propagation, algebraic simplification,
// branch folding, dead code elimination, and CFG cleanup.
//
// All transformations preserve IL semantics exactly, with one
// documented exception: dead loads from arrays are deleted even
// though an out-of-bounds dead load would have trapped. Production
// compilers (including the paper's) make the same choice for legal
// programs; see DESIGN.md.
package xform

import (
	"cmo/internal/il"
)

// LocalOptimize performs block-local constant folding, copy
// propagation, and algebraic simplification, plus folding of branches
// on constants. It reports whether anything changed.
func LocalOptimize(f *il.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		changed = optimizeBlock(b) || changed
	}
	return changed
}

// optimizeBlock does one forward pass over a block.
func optimizeBlock(b *il.Block) bool {
	changed := false
	constOf := make(map[il.Reg]int64)
	copyOf := make(map[il.Reg]il.Reg)

	// kill invalidates facts about a redefined register.
	kill := func(r il.Reg) {
		delete(constOf, r)
		delete(copyOf, r)
		for d, s := range copyOf {
			if s == r {
				delete(copyOf, d)
			}
		}
	}
	// resolve rewrites an operand using current facts.
	resolve := func(v il.Value) il.Value {
		if v.IsConst || v.Reg == 0 {
			return v
		}
		if c, ok := constOf[v.Reg]; ok {
			return il.ConstVal(c)
		}
		if s, ok := copyOf[v.Reg]; ok {
			return il.RegVal(s)
		}
		return v
	}

	for ii := range b.Instrs {
		in := &b.Instrs[ii]
		oldA, oldB := in.A, in.B
		in.A = resolve(in.A)
		in.B = resolve(in.B)
		for ai := range in.Args {
			na := resolve(in.Args[ai])
			if na != in.Args[ai] {
				in.Args[ai] = na
				changed = true
			}
		}
		if in.A != oldA || in.B != oldB {
			changed = true
		}

		// Try to fold or simplify the instruction itself.
		if simplified := simplify(in); simplified {
			changed = true
		}

		// Update facts.
		if in.Dst != 0 {
			kill(in.Dst)
			switch in.Op {
			case il.Const:
				constOf[in.Dst] = in.A.Const
			case il.Copy:
				if in.A.IsConst {
					// Copy of a constant is a Const.
					in.Op = il.Const
					constOf[in.Dst] = in.A.Const
					changed = true
				} else if in.A.Reg != in.Dst {
					copyOf[in.Dst] = in.A.Reg
				}
			}
		}
	}
	return changed
}

// simplify rewrites one instruction in place when its operands allow
// folding or algebraic simplification. It reports whether it changed
// the instruction.
func simplify(in *il.Instr) bool {
	setConst := func(c int64) bool {
		in.Op = il.Const
		in.A = il.ConstVal(c)
		in.B = il.Value{}
		in.Sym = 0
		in.Args = nil
		return true
	}
	setCopy := func(v il.Value) bool {
		if v.IsConst {
			return setConst(v.Const)
		}
		in.Op = il.Copy
		in.A = v
		in.B = il.Value{}
		return true
	}
	switch in.Op {
	case il.Add, il.Sub, il.Mul, il.Div, il.Rem,
		il.Eq, il.Ne, il.Lt, il.Le, il.Gt, il.Ge:
		if in.A.IsConst && in.B.IsConst {
			a, bv := in.A.Const, in.B.Const
			switch in.Op {
			case il.Add:
				return setConst(a + bv)
			case il.Sub:
				return setConst(a - bv)
			case il.Mul:
				return setConst(a * bv)
			case il.Div:
				if bv != 0 {
					return setConst(a / bv)
				}
			case il.Rem:
				if bv != 0 {
					return setConst(a % bv)
				}
			case il.Eq:
				return setConst(b2i(a == bv))
			case il.Ne:
				return setConst(b2i(a != bv))
			case il.Lt:
				return setConst(b2i(a < bv))
			case il.Le:
				return setConst(b2i(a <= bv))
			case il.Gt:
				return setConst(b2i(a > bv))
			case il.Ge:
				return setConst(b2i(a >= bv))
			}
			return false
		}
		// Algebraic identities.
		switch in.Op {
		case il.Add:
			if in.B.IsConst && in.B.Const == 0 {
				return setCopy(in.A)
			}
			if in.A.IsConst && in.A.Const == 0 {
				return setCopy(in.B)
			}
			// Canonicalize constant to the right for the emitter's
			// immediate form.
			if in.A.IsConst {
				in.A, in.B = in.B, in.A
				return true
			}
		case il.Sub:
			if in.B.IsConst && in.B.Const == 0 {
				return setCopy(in.A)
			}
			if !in.A.IsConst && !in.B.IsConst && in.A.Reg == in.B.Reg {
				return setConst(0)
			}
		case il.Mul:
			if in.B.IsConst && in.B.Const == 1 {
				return setCopy(in.A)
			}
			if in.A.IsConst && in.A.Const == 1 {
				return setCopy(in.B)
			}
			if (in.B.IsConst && in.B.Const == 0) || (in.A.IsConst && in.A.Const == 0) {
				return setConst(0)
			}
			if in.A.IsConst {
				in.A, in.B = in.B, in.A
				return true
			}
		case il.Div:
			if in.B.IsConst && in.B.Const == 1 {
				return setCopy(in.A)
			}
		case il.Eq, il.Ne, il.Lt, il.Le, il.Gt, il.Ge:
			if !in.A.IsConst && !in.B.IsConst && in.A.Reg == in.B.Reg {
				switch in.Op {
				case il.Eq, il.Le, il.Ge:
					return setConst(1)
				case il.Ne, il.Lt, il.Gt:
					return setConst(0)
				}
			}
		}
	case il.Neg:
		if in.A.IsConst {
			return setConst(-in.A.Const)
		}
	case il.Not:
		if in.A.IsConst {
			return setConst(b2i(in.A.Const == 0))
		}
	case il.Copy:
		if !in.A.IsConst && in.A.Reg == in.Dst {
			in.Op = il.Nop
			in.A = il.Value{}
			in.Dst = 0
			return true
		}
	}
	return false
}

// FoldBranches rewrites Br terminators whose condition is a constant
// into Jmp, and Br with identical arms into Jmp. It reports whether
// anything changed. Run Cleanup afterwards to drop the unreachable
// blocks this exposes.
func FoldBranches(f *il.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t.Op != il.Br {
			continue
		}
		if t.A.IsConst {
			if t.A.Const != 0 {
				// Always taken.
			} else {
				b.T = b.F
			}
			*t = il.Instr{Op: il.Jmp}
			b.F = -1
			changed = true
			continue
		}
		if b.T == b.F {
			*t = il.Instr{Op: il.Jmp}
			b.F = -1
			changed = true
		}
	}
	return changed
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
