package xform

import (
	"cmo/internal/il"
	"cmo/internal/ir"
)

// UnrollLoops fully unrolls small counted loops with compile-time
// constant trip counts — one of HLO's "locality and schedule-
// enhancing loop transformations" (paper section 3). Only the
// simplest shape is handled, conservatively:
//
//	preheader:  ... rI = const c0 ... jmp header
//	header:     rC = cmp rI, const; br rC -> latch, exit
//	latch:      ...body (single block, one induction update)... jmp header
//
// The unrolled form replaces the header with trips copies of the
// latch body laid straight-line. Bodies are copied verbatim — without
// SSA, re-executing the same register updates is exactly the loop's
// semantics. budget caps the total instructions added per function.
// It reports whether anything was unrolled; run Optimize afterwards
// to clean up the dead compare and the unreachable latch.
func UnrollLoops(f *il.Function, budget int) bool {
	if budget <= 0 {
		budget = 256
	}
	const maxTrips = 16
	changed := false
	// Loop analysis invalidates after each unroll; iterate.
	for rounds := 0; rounds < 8; rounds++ {
		c := ir.BuildCFG(f)
		d := ir.BuildDominators(c)
		li := ir.BuildLoops(c, d)
		did := false
		for _, loop := range li.Loops {
			if len(loop.Blocks) != 2 {
				continue
			}
			h := loop.Header
			var l int32 = -1
			for _, b := range loop.Blocks {
				if b != h {
					l = b
				}
			}
			if l < 0 {
				continue
			}
			if tryUnroll(f, c, h, l, budget, maxTrips) {
				changed = true
				did = true
				Cleanup(f)
				break // CFG changed; recompute analyses
			}
		}
		if !did {
			return changed
		}
	}
	return changed
}

// tryUnroll attempts the transformation for one (header, latch) pair.
func tryUnroll(f *il.Function, c *ir.CFG, h, l int32, budget, maxTrips int) bool {
	hb, lb := f.Blocks[h], f.Blocks[l]

	// Header: exactly [cmp rI, const; br].
	if len(hb.Instrs) != 2 {
		return false
	}
	cmp, br := &hb.Instrs[0], &hb.Instrs[1]
	if br.Op != il.Br || br.A.IsConst || br.A.Reg != cmp.Dst {
		return false
	}
	switch cmp.Op {
	case il.Lt, il.Le, il.Gt, il.Ge, il.Ne:
	default:
		return false
	}
	if cmp.A.IsConst || !cmp.B.IsConst {
		return false
	}
	rI := cmp.A.Reg
	if rI == cmp.Dst {
		return false // compare must not clobber the induction variable
	}
	bound := cmp.B.Const
	if hb.T != l {
		return false // loop must continue on true (our lowering shape)
	}
	exit := hb.F
	if exit == h || exit == l {
		return false
	}

	// Latch: ends in jmp header; must not touch the compare register;
	// its net effect on rI must be "rI += step" for a constant step,
	// independent of all other state. We establish that by symbolic
	// execution over the affine lattice {i + c}: a register is either
	// "i + c" (for the value of rI at block entry) or opaque.
	if lb.Term().Op != il.Jmp || lb.T != h {
		return false
	}
	type affine struct {
		known bool
		c     int64
	}
	sym := map[il.Reg]affine{rI: {known: true}}
	lookup := func(v il.Value) affine {
		if v.IsConst || v.Reg == 0 {
			return affine{}
		}
		return sym[v.Reg]
	}
	for ii := range lb.Instrs {
		in := &lb.Instrs[ii]
		if usesReg(in, cmp.Dst) || in.Dst == cmp.Dst {
			return false
		}
		if in.Dst == 0 {
			continue
		}
		out := affine{}
		switch in.Op {
		case il.Copy:
			out = lookup(in.A)
		case il.Add:
			if a := lookup(in.A); a.known && in.B.IsConst {
				out = affine{known: true, c: a.c + in.B.Const}
			} else if b := lookup(in.B); b.known && in.A.IsConst {
				out = affine{known: true, c: b.c + in.A.Const}
			}
		case il.Sub:
			if a := lookup(in.A); a.known && in.B.IsConst {
				out = affine{known: true, c: a.c - in.B.Const}
			}
		}
		sym[in.Dst] = out
	}
	final, ok := sym[rI]
	if !ok || !final.known || final.c == 0 {
		return false
	}
	step := final.c

	// The header's only predecessors are one preheader and the latch.
	var pre int32 = -1
	for _, p := range c.Preds[h] {
		if p == l {
			continue
		}
		if pre != -1 {
			return false
		}
		pre = p
	}
	if pre < 0 {
		return false
	}
	// The preheader must establish rI as a constant (its last def of
	// rI is a Const) and must not be the latch of some outer
	// construct that re-enters — a plain jmp suffices.
	pb := f.Blocks[pre]
	if pb.Term().Op != il.Jmp {
		return false
	}
	var init int64
	found := false
	for ii := range pb.Instrs {
		in := &pb.Instrs[ii]
		if in.Dst == rI {
			if in.Op == il.Const {
				init = in.A.Const
				found = true
			} else {
				found = false
			}
		}
	}
	if !found {
		return false
	}

	// Simulate the trip count exactly.
	taken := func(i int64) bool {
		switch cmp.Op {
		case il.Lt:
			return i < bound
		case il.Le:
			return i <= bound
		case il.Gt:
			return i > bound
		case il.Ge:
			return i >= bound
		case il.Ne:
			return i != bound
		}
		return false
	}
	trips := 0
	for i := init; taken(i); i += step {
		trips++
		if trips > maxTrips {
			return false
		}
	}
	bodyLen := len(lb.Instrs) - 1 // minus the jmp
	if trips*bodyLen > budget {
		return false
	}

	// Rewrite the header as the straight-line unrolled body.
	instrs := make([]il.Instr, 0, trips*bodyLen+1)
	for t := 0; t < trips; t++ {
		for ii := 0; ii < bodyLen; ii++ {
			in := lb.Instrs[ii]
			if in.Args != nil {
				args := make([]il.Value, len(in.Args))
				copy(args, in.Args)
				in.Args = args
			}
			instrs = append(instrs, in)
		}
	}
	// Keep rI's final value correct even for zero-trip loops: the
	// copies already updated it trips times; nothing more to do.
	instrs = append(instrs, il.Instr{Op: il.Jmp})
	hb.Instrs = instrs
	hb.T, hb.F = exit, -1
	// The latch is now unreachable; Cleanup (run by the caller)
	// removes it.
	return true
}

func usesReg(in *il.Instr, r il.Reg) bool {
	if r == 0 {
		return false
	}
	if !in.A.IsConst && in.A.Reg == r {
		return true
	}
	if !in.B.IsConst && in.B.Reg == r {
		return true
	}
	for _, a := range in.Args {
		if !a.IsConst && a.Reg == r {
			return true
		}
	}
	return false
}
