package xform

import (
	"testing"

	"cmo/internal/il"
)

// runFn interprets a single-function program.
func runFn(t *testing.T, prog *il.Program, fns map[il.PID]*il.Function) int64 {
	t.Helper()
	it := il.NewInterp(prog, func(p il.PID) *il.Function { return fns[p] })
	v, err := it.Run("main", nil, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func unrollProgram(t *testing.T, src string) (int64, int64, *il.Function, *il.Program) {
	t.Helper()
	prog, fns := buildFns(t, src)
	before := runFn(t, prog, fns)
	mainFn := fns[prog.Lookup("main").PID]
	// Normalize first (the pass expects post-Optimize shapes).
	Optimize(mainFn)
	UnrollLoops(mainFn, 256)
	Optimize(mainFn)
	if err := il.Verify(prog, mainFn); err != nil {
		t.Fatalf("verify after unroll: %v\n%s", err, mainFn.Print(prog))
	}
	after := runFn(t, prog, fns)
	return before, after, mainFn, prog
}

func countBackEdges(f *il.Function) int {
	n := 0
	for bi, b := range f.Blocks {
		switch b.Term().Op {
		case il.Jmp:
			if b.T <= int32(bi) {
				n++
			}
		case il.Br:
			if b.T <= int32(bi) || b.F <= int32(bi) {
				n++
			}
		}
	}
	return n
}

func TestUnrollCountedLoop(t *testing.T) {
	before, after, mainFn, prog := unrollProgram(t, `module m;
var sink [8]int;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 5; i = i + 1) {
		acc = acc + i * 3;
		sink[i % 8] = acc;
	}
	return acc;
}`)
	if before != after {
		t.Fatalf("unroll changed result: %d -> %d", before, after)
	}
	if n := countBackEdges(mainFn); n != 0 {
		t.Errorf("loop not unrolled: %d back edges remain\n%s", n, mainFn.Print(prog))
	}
}

func TestUnrollPureLoopFoldsToConstant(t *testing.T) {
	_, after, mainFn, prog := unrollProgram(t, `module m;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 6; i = i + 1) { acc = acc + i; }
	return acc;
}`)
	if after != 15 {
		t.Fatalf("got %d, want 15", after)
	}
	// After unroll + const folding the whole function collapses.
	if mainFn.NumInstrs() > 2 {
		t.Errorf("unrolled pure loop did not fold:\n%s", mainFn.Print(prog))
	}
}

func TestUnrollZeroTripLoop(t *testing.T) {
	before, after, _, _ := unrollProgram(t, `module m;
var g int = 7;
func main() int {
	var acc int = g;
	for (var i int = 10; i < 5; i = i + 1) { acc = acc * 1000; }
	return acc + 1;
}`)
	if before != after || after != 8 {
		t.Fatalf("zero-trip loop broken: %d -> %d", before, after)
	}
}

func TestUnrollDownwardLoop(t *testing.T) {
	before, after, mainFn, _ := unrollProgram(t, `module m;
var g int = 2;
func main() int {
	var acc int = 0;
	for (var i int = 8; i > 0; i = i - 2) { acc = acc + i * g; }
	return acc;
}`)
	if before != after {
		t.Fatalf("downward loop changed: %d -> %d", before, after)
	}
	if n := countBackEdges(mainFn); n != 0 {
		t.Error("downward loop not unrolled")
	}
}

func TestUnrollSkipsLargeTripCounts(t *testing.T) {
	before, after, mainFn, _ := unrollProgram(t, `module m;
var g int = 1;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 5000; i = i + 1) { acc = acc + g; }
	return acc;
}`)
	if before != after {
		t.Fatalf("result changed: %d -> %d", before, after)
	}
	if n := countBackEdges(mainFn); n == 0 {
		t.Error("5000-trip loop should not be fully unrolled")
	}
}

func TestUnrollSkipsVariableBounds(t *testing.T) {
	before, after, mainFn, _ := unrollProgram(t, `module m;
var n int = 4;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < n; i = i + 1) { acc = acc + i; }
	return acc;
}`)
	if before != after {
		t.Fatalf("result changed: %d -> %d", before, after)
	}
	if n := countBackEdges(mainFn); n == 0 {
		t.Error("variable-bound loop must not unroll")
	}
}

func TestUnrollSkipsMultiBlockBodies(t *testing.T) {
	before, after, _, _ := unrollProgram(t, `module m;
var g int = 3;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 4; i = i + 1) {
		if (i % 2 == 0) { acc = acc + g; } else { acc = acc - 1; }
	}
	return acc;
}`)
	if before != after {
		t.Fatalf("multi-block body broken: %d -> %d", before, after)
	}
}

func TestUnrollLoopWithCall(t *testing.T) {
	// Calls in the body are fine: they execute the same number of
	// times in the same order.
	before, after, mainFn, _ := unrollProgram(t, `module m;
var n int;
func bump(x int) int { n = n + 1; return x + n; }
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 3; i = i + 1) { acc = acc + bump(i); }
	return acc * 10 + n;
}`)
	if before != after {
		t.Fatalf("call-bearing loop broken: %d -> %d", before, after)
	}
	if n := countBackEdges(mainFn); n != 0 {
		t.Error("call-bearing counted loop should still unroll")
	}
}

func TestUnrollNestedInner(t *testing.T) {
	before, after, _, _ := unrollProgram(t, `module m;
var g int = 1;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 200; i = i + 1) {
		for (var j int = 0; j < 3; j = j + 1) { acc = acc + g; }
	}
	return acc;
}`)
	if before != after || after != 600 {
		t.Fatalf("nested loops broken: %d -> %d", before, after)
	}
}

func TestUnrollBudget(t *testing.T) {
	prog, fns := buildFns(t, `module m;
var a [16]int;
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 15; i = i + 1) {
		acc = acc + a[i] * 3 + i;
		a[(i + 1) % 16] = acc % 100;
		acc = acc - a[i % 16];
	}
	return acc;
}`)
	mainFn := fns[prog.Lookup("main").PID]
	Optimize(mainFn)
	// A tiny budget must refuse.
	if UnrollLoops(mainFn, 10) {
		t.Error("unrolled beyond budget")
	}
}
