package xform

import (
	"cmo/internal/il"
	"cmo/internal/ir"
)

// Cleanup normalizes a function's CFG: it deletes unreachable blocks,
// threads jumps through empty forwarding blocks, and merges blocks
// with their unique successor when that successor has a unique
// predecessor. It reports whether anything changed.
func Cleanup(f *il.Function) bool {
	changed := false
	for {
		c := threadJumps(f)
		c = dropUnreachable(f) || c
		c = mergeChains(f) || c
		if !c {
			return changed
		}
		changed = true
	}
}

// threadJumps redirects edges that point at a block containing only a
// Jmp to that block's target.
func threadJumps(f *il.Function) bool {
	// forward[i] = final destination when block i is a pure jump.
	forward := make([]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		forward[i] = int32(i)
		if len(b.Instrs) == 1 && b.Instrs[0].Op == il.Jmp {
			forward[i] = b.T
		}
	}
	resolve := func(i int32) int32 {
		seen := 0
		for forward[i] != i && seen < len(f.Blocks) {
			i = forward[i]
			seen++
		}
		return i
	}
	changed := false
	for _, b := range f.Blocks {
		switch b.Term().Op {
		case il.Jmp:
			if nt := resolve(b.T); nt != b.T {
				b.T = nt
				changed = true
			}
		case il.Br:
			if nt := resolve(b.T); nt != b.T {
				b.T = nt
				changed = true
			}
			if nf := resolve(b.F); nf != b.F {
				b.F = nf
				changed = true
			}
		}
	}
	return changed
}

// dropUnreachable removes blocks not reachable from the entry and
// renumbers branch targets.
func dropUnreachable(f *il.Function) bool {
	c := ir.BuildCFG(f)
	all := true
	for i := range f.Blocks {
		if !c.Reach[i] {
			all = false
			break
		}
	}
	if all {
		return false
	}
	remap := make([]int32, len(f.Blocks))
	var kept []*il.Block
	for i, b := range f.Blocks {
		if c.Reach[i] {
			remap[i] = int32(len(kept))
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		switch b.Term().Op {
		case il.Jmp:
			b.T = remap[b.T]
		case il.Br:
			b.T = remap[b.T]
			b.F = remap[b.F]
		}
	}
	f.Blocks = kept
	return true
}

// mergeChains merges a block ending in Jmp with its target when the
// target's only predecessor is that block (and it is not the entry).
func mergeChains(f *il.Function) bool {
	c := ir.BuildCFG(f)
	changed := false
	for i, b := range f.Blocks {
		for {
			if b.Term().Op != il.Jmp {
				break
			}
			t := b.T
			if t == int32(i) || t == 0 {
				break
			}
			if len(c.Preds[t]) != 1 {
				break
			}
			tb := f.Blocks[t]
			if tb == b {
				break
			}
			// Splice: drop our Jmp, append target's instructions.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], tb.Instrs...)
			b.T, b.F = tb.T, tb.F
			if tb.Freq > b.Freq {
				b.Freq = tb.Freq
			}
			// Leave the target as an unreachable husk (a Jmp to
			// itself would be wrong; give it a Ret-like shape that
			// dropUnreachable will delete).
			tb.Instrs = []il.Instr{{Op: il.Jmp}}
			tb.T = int32(i)
			c.Preds[t] = nil
			changed = true
			// b's new terminator may be another Jmp; keep merging.
			c = ir.BuildCFG(f)
		}
	}
	if changed {
		dropUnreachable(f)
	}
	return changed
}

// Optimize is the standard function-local pipeline: local folding,
// branch folding, CFG cleanup, and DCE, iterated to a fixed point.
// This is what +O2 runs per routine and what HLO re-runs after
// inlining (the paper's "minimum amount of analysis and
// transformation" for unselected routines skips it).
func Optimize(f *il.Function) {
	for i := 0; i < 10; i++ {
		c := LocalOptimize(f)
		c = FoldBranches(f) || c
		c = Cleanup(f) || c
		c = DCE(f) || c
		if !c {
			return
		}
	}
}
