package lower

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/source"
)

// funcLowerer lowers one function body.
type funcLowerer struct {
	prog   *il.Program
	fn     *il.Function
	cur    int32 // current block index, -1 when the block is sealed
	scopes []map[string]il.Reg
	maxLn  int
}

func lowerFunc(prog *il.Program, d *source.FuncDecl) (*il.Function, error) {
	f := &il.Function{
		Name:    d.Name,
		NParams: len(d.Params),
		Ret:     lowerType(d.Ret),
		NRegs:   il.Reg(len(d.Params)) + 1, // r1..rN hold parameters
	}
	lw := &funcLowerer{prog: prog, fn: f, maxLn: d.Pos.Line}
	lw.newBlock() // entry block
	lw.push()
	for i, p := range d.Params {
		lw.scopes[0][p.Name] = il.Reg(i + 1)
	}
	if err := lw.block(d.Body); err != nil {
		return nil, err
	}
	lw.pop()
	// Seal a fall-through exit. The checker guarantees value paths
	// return; a reachable fall-through only exists for void functions,
	// but unreachable open blocks can remain for value functions too.
	if lw.cur >= 0 {
		if f.Ret == il.Void {
			lw.emit(il.Instr{Op: il.Ret, A: il.None()})
		} else {
			lw.emit(il.Instr{Op: il.Ret, A: il.ConstVal(0)})
		}
	}
	f.SrcLines = lw.maxLn - d.Pos.Line + 1
	if f.SrcLines < 1 {
		f.SrcLines = 1
	}
	return f, nil
}

func (lw *funcLowerer) note(p source.Pos) {
	if p.Line > lw.maxLn {
		lw.maxLn = p.Line
	}
}

func (lw *funcLowerer) push() { lw.scopes = append(lw.scopes, make(map[string]il.Reg)) }
func (lw *funcLowerer) pop()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *funcLowerer) lookupLocal(name string) (il.Reg, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if r, ok := lw.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

// newBlock appends a fresh block and makes it current.
func (lw *funcLowerer) newBlock() int32 {
	lw.fn.Blocks = append(lw.fn.Blocks, &il.Block{T: -1, F: -1})
	lw.cur = int32(len(lw.fn.Blocks) - 1)
	return lw.cur
}

// emit appends an instruction to the current block. Emitting a
// terminator seals the block.
func (lw *funcLowerer) emit(in il.Instr) {
	b := lw.fn.Blocks[lw.cur]
	b.Instrs = append(b.Instrs, in)
	if in.Op.IsTerminator() {
		lw.cur = -1
	}
}

// jumpTo seals the current block (if open) with a jump to target.
func (lw *funcLowerer) jumpTo(target int32) {
	if lw.cur < 0 {
		return
	}
	lw.fn.Blocks[lw.cur].T = target
	lw.emit(il.Instr{Op: il.Jmp})
}

// branch seals the current block with a conditional branch.
func (lw *funcLowerer) branch(cond il.Value, t, f int32) {
	b := lw.fn.Blocks[lw.cur]
	b.T, b.F = t, f
	lw.emit(il.Instr{Op: il.Br, A: cond})
}

// setCur resumes emission into an existing (open) block.
func (lw *funcLowerer) setCur(bi int32) { lw.cur = bi }

func (lw *funcLowerer) block(b *source.BlockStmt) error {
	lw.push()
	defer lw.pop()
	for _, s := range b.Stmts {
		if lw.cur < 0 {
			// Dead code after a return/terminator: the paper's
			// optimizer drops it; we simply stop lowering it.
			break
		}
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *funcLowerer) stmt(s source.Stmt) error {
	switch s := s.(type) {
	case *source.BlockStmt:
		lw.note(s.Pos)
		return lw.block(s)
	case *source.LocalDecl:
		lw.note(s.Pos)
		r := lw.fn.NewReg()
		lw.scopes[len(lw.scopes)-1][s.Name] = r
		var v il.Value
		if s.Init != nil {
			var err error
			v, err = lw.expr(s.Init)
			if err != nil {
				return err
			}
		} else {
			v = il.ConstVal(0)
		}
		lw.emitAssign(r, v)
		return nil
	case *source.AssignStmt:
		lw.note(s.Pos)
		val, err := lw.expr(s.Value)
		if err != nil {
			return err
		}
		if s.Index != nil {
			idx, err := lw.expr(s.Index)
			if err != nil {
				return err
			}
			pid := lw.globalPID(s.Name)
			lw.emit(il.Instr{Op: il.StoreX, Sym: pid, A: idx, B: val})
			return nil
		}
		if r, ok := lw.lookupLocal(s.Name); ok {
			lw.emitAssign(r, val)
			return nil
		}
		lw.emit(il.Instr{Op: il.StoreG, Sym: lw.globalPID(s.Name), A: val})
		return nil
	case *source.ExprStmt:
		lw.note(s.Pos)
		_, err := lw.exprStmt(s.X)
		return err
	case *source.IfStmt:
		return lw.ifStmt(s)
	case *source.WhileStmt:
		return lw.whileStmt(s)
	case *source.ForStmt:
		return lw.forStmt(s)
	case *source.ReturnStmt:
		lw.note(s.Pos)
		if s.Value == nil {
			lw.emit(il.Instr{Op: il.Ret, A: il.None()})
			return nil
		}
		v, err := lw.expr(s.Value)
		if err != nil {
			return err
		}
		lw.emit(il.Instr{Op: il.Ret, A: v})
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// emitAssign stores v into register r.
func (lw *funcLowerer) emitAssign(r il.Reg, v il.Value) {
	if v.IsConst {
		lw.emit(il.Instr{Op: il.Const, Dst: r, A: v})
	} else {
		lw.emit(il.Instr{Op: il.Copy, Dst: r, A: v})
	}
}

func (lw *funcLowerer) ifStmt(s *source.IfStmt) error {
	lw.note(s.Pos)
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	condBlock := lw.cur
	thenB := lw.newBlock()
	if err := lw.block(s.Then); err != nil {
		return err
	}
	thenEnd := lw.cur // -1 if terminated

	var elseB, elseEnd int32 = -1, -1
	if s.Else != nil {
		elseB = lw.newBlock()
		switch e := s.Else.(type) {
		case *source.BlockStmt:
			if err := lw.block(e); err != nil {
				return err
			}
		case *source.IfStmt:
			if err := lw.ifStmt(e); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown else %T", s.Else)
		}
		elseEnd = lw.cur
	}

	join := lw.newBlock()
	lw.setCur(condBlock)
	if elseB >= 0 {
		lw.branch(cond, thenB, elseB)
	} else {
		lw.branch(cond, thenB, join)
	}
	if thenEnd >= 0 {
		lw.setCur(thenEnd)
		lw.jumpTo(join)
	}
	if elseEnd >= 0 {
		lw.setCur(elseEnd)
		lw.jumpTo(join)
	}
	lw.setCur(join)
	return nil
}

func (lw *funcLowerer) whileStmt(s *source.WhileStmt) error {
	lw.note(s.Pos)
	pre := lw.cur
	head := lw.newBlock()
	lw.setCur(pre)
	lw.jumpTo(head)
	lw.setCur(head)
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	condEnd := lw.cur
	body := lw.newBlock()
	if err := lw.block(s.Body); err != nil {
		return err
	}
	bodyEnd := lw.cur
	exit := lw.newBlock()
	lw.setCur(condEnd)
	lw.branch(cond, body, exit)
	if bodyEnd >= 0 {
		lw.setCur(bodyEnd)
		lw.jumpTo(head)
	}
	lw.setCur(exit)
	return nil
}

func (lw *funcLowerer) forStmt(s *source.ForStmt) error {
	lw.note(s.Pos)
	lw.push()
	defer lw.pop()
	if s.Init != nil {
		if err := lw.stmt(s.Init); err != nil {
			return err
		}
	}
	head := int32(-1)
	var cond il.Value
	var condEnd int32
	{
		pre := lw.cur
		head = lw.newBlock()
		lw.setCur(pre)
		lw.jumpTo(head)
		lw.setCur(head)
		if s.Cond != nil {
			var err error
			cond, err = lw.expr(s.Cond)
			if err != nil {
				return err
			}
		} else {
			cond = il.ConstVal(1)
		}
		condEnd = lw.cur
	}
	body := lw.newBlock()
	if err := lw.block(s.Body); err != nil {
		return err
	}
	if lw.cur >= 0 && s.Post != nil {
		if err := lw.stmt(s.Post); err != nil {
			return err
		}
	}
	bodyEnd := lw.cur
	exit := lw.newBlock()
	lw.setCur(condEnd)
	lw.branch(cond, body, exit)
	if bodyEnd >= 0 {
		lw.setCur(bodyEnd)
		lw.jumpTo(head)
	}
	lw.setCur(exit)
	return nil
}

func (lw *funcLowerer) globalPID(name string) il.PID {
	s := lw.prog.Lookup(name)
	if s == nil {
		panic(fmt.Sprintf("lower: unresolved name %s (checker should have caught this)", name))
	}
	return s.PID
}

// exprStmt lowers an expression evaluated for side effects (the
// checker allows void calls only here).
func (lw *funcLowerer) exprStmt(e source.Expr) (il.Value, error) {
	if call, ok := e.(*source.CallExpr); ok {
		sym := lw.prog.Lookup(call.Name)
		if sym.Sig.Ret == il.Void {
			args, err := lw.exprs(call.Args)
			if err != nil {
				return il.None(), err
			}
			lw.emit(il.Instr{Op: il.Call, Sym: sym.PID, Args: args})
			return il.None(), nil
		}
	}
	return lw.expr(e)
}

func (lw *funcLowerer) exprs(es []source.Expr) ([]il.Value, error) {
	var out []il.Value
	for _, e := range es {
		v, err := lw.expr(e)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// expr lowers a value-producing expression and returns its operand.
func (lw *funcLowerer) expr(e source.Expr) (il.Value, error) {
	lw.note(e.Position())
	switch e := e.(type) {
	case *source.IntLit:
		return il.ConstVal(e.Val), nil
	case *source.BoolLit:
		if e.Val {
			return il.ConstVal(1), nil
		}
		return il.ConstVal(0), nil
	case *source.VarRef:
		if r, ok := lw.lookupLocal(e.Name); ok {
			return il.RegVal(r), nil
		}
		dst := lw.fn.NewReg()
		lw.emit(il.Instr{Op: il.LoadG, Dst: dst, Sym: lw.globalPID(e.Name)})
		return il.RegVal(dst), nil
	case *source.IndexExpr:
		idx, err := lw.expr(e.Index)
		if err != nil {
			return il.None(), err
		}
		dst := lw.fn.NewReg()
		lw.emit(il.Instr{Op: il.LoadX, Dst: dst, Sym: lw.globalPID(e.Name), A: idx})
		return il.RegVal(dst), nil
	case *source.CallExpr:
		sym := lw.prog.Lookup(e.Name)
		args, err := lw.exprs(e.Args)
		if err != nil {
			return il.None(), err
		}
		dst := lw.fn.NewReg()
		lw.emit(il.Instr{Op: il.Call, Dst: dst, Sym: sym.PID, Args: args})
		return il.RegVal(dst), nil
	case *source.UnaryExpr:
		x, err := lw.expr(e.X)
		if err != nil {
			return il.None(), err
		}
		dst := lw.fn.NewReg()
		op := il.Neg
		if e.Op == source.TokBang {
			op = il.Not
		}
		lw.emit(il.Instr{Op: op, Dst: dst, A: x})
		return il.RegVal(dst), nil
	case *source.BinaryExpr:
		if e.Op == source.TokAndAnd || e.Op == source.TokOrOr {
			return lw.shortCircuit(e)
		}
		l, err := lw.expr(e.L)
		if err != nil {
			return il.None(), err
		}
		r, err := lw.expr(e.R)
		if err != nil {
			return il.None(), err
		}
		var op il.Op
		switch e.Op {
		case source.TokPlus:
			op = il.Add
		case source.TokMinus:
			op = il.Sub
		case source.TokStar:
			op = il.Mul
		case source.TokSlash:
			op = il.Div
		case source.TokPercent:
			op = il.Rem
		case source.TokEq:
			op = il.Eq
		case source.TokNe:
			op = il.Ne
		case source.TokLt:
			op = il.Lt
		case source.TokLe:
			op = il.Le
		case source.TokGt:
			op = il.Gt
		case source.TokGe:
			op = il.Ge
		default:
			return il.None(), fmt.Errorf("unknown binary op %s", e.Op)
		}
		dst := lw.fn.NewReg()
		lw.emit(il.Instr{Op: op, Dst: dst, A: l, B: r})
		return il.RegVal(dst), nil
	}
	return il.None(), fmt.Errorf("unknown expression %T", e)
}

// shortCircuit lowers && and || with proper control flow: the right
// operand (which may contain calls) is evaluated only when needed.
func (lw *funcLowerer) shortCircuit(e *source.BinaryExpr) (il.Value, error) {
	dst := lw.fn.NewReg()
	l, err := lw.expr(e.L)
	if err != nil {
		return il.None(), err
	}
	lw.emit(il.Instr{Op: il.Copy, Dst: dst, A: l})
	condBlock := lw.cur

	rhs := lw.newBlock()
	r, err := lw.expr(e.R)
	if err != nil {
		return il.None(), err
	}
	lw.emit(il.Instr{Op: il.Copy, Dst: dst, A: r})
	rhsEnd := lw.cur

	join := lw.newBlock()
	lw.setCur(condBlock)
	if e.Op == source.TokAndAnd {
		// dst && rhs: evaluate rhs only if dst is true.
		lw.branch(il.RegVal(dst), rhs, join)
	} else {
		// dst || rhs: evaluate rhs only if dst is false.
		lw.branch(il.RegVal(dst), join, rhs)
	}
	lw.setCur(rhsEnd)
	lw.jumpTo(join)
	lw.setCur(join)
	return il.RegVal(dst), nil
}
