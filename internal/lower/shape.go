package lower

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/source"
)

// A module's Shape is its language-independent interface: everything
// symbol-table registration needs, with no syntax trees attached. Both
// lowering paths go through it — the frontend extracts a Shape from a
// parsed file, and a build session replays a Shape recorded in the
// artifact repository — so a replayed module interns symbols in
// exactly the order a freshly lowered one would. That shared path is
// what makes warm-rebuild PID assignment identical by construction
// rather than by parallel maintenance of two interning loops.
type Shape struct {
	Name  string
	Lines int
	// Defs lists the module's definitions in declaration order:
	// variables first, then functions — the order pass 1 interns them.
	Defs []ShapeDef
	// Externs lists the extern declarations in declaration order (the
	// pass-2 interning order).
	Externs []ShapeExtern
}

// ShapeDef is one module-level definition.
type ShapeDef struct {
	Name string
	Kind il.SymKind
	// Globals.
	Type  il.Type
	Elems int64
	Init  int64
	// Functions.
	Sig il.Signature
}

// ShapeExtern is one extern declaration with its declared interface.
type ShapeExtern struct {
	Name   string
	IsFunc bool
	Sig    il.Signature // functions
	Type   il.Type      // variables
	Elems  int64
}

// FileShape extracts the Shape of a parsed-and-checked file.
func FileShape(f *source.File) Shape {
	sh := Shape{Name: f.Module, Lines: f.Lines}
	for _, v := range f.Vars {
		sh.Defs = append(sh.Defs, ShapeDef{
			Name:  v.Name,
			Kind:  il.SymGlobal,
			Type:  lowerType(v.Type),
			Elems: v.Type.Elems,
			Init:  v.Init,
		})
	}
	for _, fn := range f.Funcs {
		sh.Defs = append(sh.Defs, ShapeDef{
			Name: fn.Name,
			Kind: il.SymFunc,
			Sig:  lowerSig(fn.Params, fn.Ret),
		})
	}
	for _, e := range f.Externs {
		se := ShapeExtern{Name: e.Name, IsFunc: e.IsFunc}
		if e.IsFunc {
			se.Sig = lowerSig(e.Params, e.Ret)
		} else {
			se.Type = lowerType(e.Type)
			se.Elems = e.Type.Elems
		}
		sh.Externs = append(sh.Externs, se)
	}
	return sh
}

// Register performs definition interning (pass 1) for one module: it
// adds the module to the program and interns every definition, in
// declaration order, checking for duplicate definitions.
func Register(prog *il.Program, sh Shape) (*il.Module, error) {
	mod := prog.AddModule(sh.Name)
	mod.Lines = sh.Lines
	for _, d := range sh.Defs {
		pid, err := prog.Intern(d.Name, d.Kind)
		if err != nil {
			return nil, err
		}
		sym := prog.Sym(pid)
		if sym.Module >= 0 {
			what := "global"
			if d.Kind == il.SymFunc {
				what = "function"
			}
			return nil, fmt.Errorf("lower: %s %s defined in both %s and %s",
				what, d.Name, prog.Modules[sym.Module].Name, sh.Name)
		}
		sym.Module = mod.Index
		if d.Kind == il.SymFunc {
			sym.Sig = d.Sig
		} else {
			sym.Type = d.Type
			sym.Elems = d.Elems
			sym.Init = d.Init
		}
		mod.Defs = append(mod.Defs, pid)
	}
	return mod, nil
}

// ResolveExterns performs extern resolution (pass 2a) for one module:
// each extern declaration is interned (possibly creating an undefined
// symbol carrying the declared interface) and checked for interface
// agreement with any prior definition or declaration.
func ResolveExterns(prog *il.Program, mod *il.Module, sh Shape) error {
	for _, e := range sh.Externs {
		kind := il.SymGlobal
		if e.IsFunc {
			kind = il.SymFunc
		}
		pid, err := prog.Intern(e.Name, kind)
		if err != nil {
			return fmt.Errorf("lower: module %s: %w", sh.Name, err)
		}
		sym := prog.Sym(pid)
		if e.IsFunc {
			want := e.Sig
			switch {
			case sym.Module >= 0 || len(sym.Sig.Params) > 0 || sym.Sig.Ret != il.Void:
				if !sym.Sig.Equal(want) {
					return fmt.Errorf("lower: module %s: extern %s%s does not match declaration %s%s",
						sh.Name, e.Name, want, e.Name, sym.Sig)
				}
			default:
				// Record the declared signature on the undefined
				// symbol so separately compiled objects carry the
				// interface for link-time checking.
				sym.Sig = want
			}
		} else {
			if sym.Module >= 0 || sym.Type != il.Void {
				if sym.Type != e.Type || sym.Elems != e.Elems {
					return fmt.Errorf("lower: module %s: extern var %s has type %s, definition has %s",
						sh.Name, e.Name, e.Type, sym.Type)
				}
			} else {
				sym.Type = e.Type
				sym.Elems = e.Elems
			}
		}
		mod.Externs = append(mod.Externs, pid)
	}
	return nil
}

// LowerBodies lowers one file's function bodies (pass 2b) into out.
// Every definition must already be registered (Register) and the
// file's externs resolved (ResolveExterns).
func LowerBodies(prog *il.Program, f *source.File, out map[il.PID]*il.Function) error {
	for _, fn := range f.Funcs {
		pid, _ := prog.Intern(fn.Name, il.SymFunc)
		body, err := lowerFunc(prog, fn)
		if err != nil {
			return fmt.Errorf("lower: module %s: %w", f.Module, err)
		}
		body.PID = pid
		out[pid] = body
	}
	return nil
}
