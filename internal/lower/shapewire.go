package lower

import (
	"encoding/binary"
	"errors"

	"cmo/internal/il"
)

// The Shape wire codec: the one binary encoding of a module's
// symbol-table interface, shared by the session's frontend artifacts
// (cmo/artifact.go) and the distributed backend's compile requests
// (internal/backend). Both sides must rebuild identical symbol tables
// from the same bytes, so the codec lives next to the Shape type it
// round-trips rather than being maintained twice.
//
// The layout is the frontend artifact's historical one — name, line
// count, definitions in declaration order, externs in declaration
// order — so artifacts written before the codec moved here still
// decode.

// ErrShape is the generic framing-damage error for shape decoding.
var ErrShape = errors.New("lower: corrupt shape encoding")

// AppendShape appends the wire encoding of sh to dst and returns the
// extended slice.
func AppendShape(dst []byte, sh Shape) []byte {
	w := shapeWriter{dst}
	w.str(sh.Name)
	w.u(uint64(sh.Lines))
	w.u(uint64(len(sh.Defs)))
	for _, d := range sh.Defs {
		w.str(d.Name)
		w.byte(byte(d.Kind))
		if d.Kind == il.SymFunc {
			w.sig(d.Sig)
		} else {
			w.byte(byte(d.Type))
			w.i(d.Elems)
			w.i(d.Init)
		}
	}
	w.u(uint64(len(sh.Externs)))
	for _, e := range sh.Externs {
		w.str(e.Name)
		if e.IsFunc {
			w.byte(1)
			w.sig(e.Sig)
		} else {
			w.byte(0)
			w.byte(byte(e.Type))
			w.i(e.Elems)
		}
	}
	return w.b
}

// DecodeShape decodes one Shape starting at off and returns it with
// the offset one past its encoding.
func DecodeShape(b []byte, off int) (Shape, int, error) {
	r := &shapeReader{b: b, off: off}
	var sh Shape
	sh.Name = r.str()
	sh.Lines = int(r.u())
	ndefs := r.u()
	if r.err != nil || ndefs > uint64(len(b)) {
		return sh, r.off, ErrShape
	}
	for j := uint64(0); j < ndefs; j++ {
		d := ShapeDef{Name: r.str(), Kind: il.SymKind(r.byte())}
		if d.Kind == il.SymFunc {
			d.Sig = r.sig()
		} else {
			d.Type = il.Type(r.byte())
			d.Elems = r.i()
			d.Init = r.i()
		}
		sh.Defs = append(sh.Defs, d)
	}
	next := r.u()
	if r.err != nil || next > uint64(len(b)) {
		return sh, r.off, ErrShape
	}
	for j := uint64(0); j < next; j++ {
		e := ShapeExtern{Name: r.str(), IsFunc: r.byte() == 1}
		if e.IsFunc {
			e.Sig = r.sig()
		} else {
			e.Type = il.Type(r.byte())
			e.Elems = r.i()
		}
		sh.Externs = append(sh.Externs, e)
	}
	if r.err != nil {
		return sh, r.off, r.err
	}
	return sh, r.off, nil
}

// ShapeOf reconstructs a registered module's Shape from the program's
// symbol table — the inverse of Register/ResolveExterns. A remote
// backend worker receives these shapes and replays the same two
// passes, so it interns every symbol the dispatching build knows
// under the same names (PID numbering may differ; all cross-worker
// artifacts are name-symbolic, so it never matters).
func ShapeOf(prog *il.Program, mod *il.Module) Shape {
	sh := Shape{Name: mod.Name, Lines: mod.Lines}
	for _, pid := range mod.Defs {
		s := prog.Sym(pid)
		d := ShapeDef{Name: s.Name, Kind: s.Kind}
		if s.Kind == il.SymFunc {
			d.Sig = s.Sig
		} else {
			d.Type = s.Type
			d.Elems = s.Elems
			d.Init = s.Init
		}
		sh.Defs = append(sh.Defs, d)
	}
	for _, pid := range mod.Externs {
		s := prog.Sym(pid)
		e := ShapeExtern{Name: s.Name, IsFunc: s.Kind == il.SymFunc}
		if e.IsFunc {
			e.Sig = s.Sig
		} else {
			e.Type = s.Type
			e.Elems = s.Elems
		}
		sh.Externs = append(sh.Externs, e)
	}
	return sh
}

// ShapesOf reconstructs every module's Shape in module order.
func ShapesOf(prog *il.Program) []Shape {
	out := make([]Shape, 0, len(prog.Modules))
	for _, m := range prog.Modules {
		out = append(out, ShapeOf(prog, m))
	}
	return out
}

// shapeWriter mirrors cmo's artifact writer primitives so the moved
// codec emits byte-identical framing.
type shapeWriter struct{ b []byte }

func (w *shapeWriter) u(v uint64)   { w.b = binary.AppendUvarint(w.b, v) }
func (w *shapeWriter) i(v int64)    { w.b = binary.AppendVarint(w.b, v) }
func (w *shapeWriter) byte(v byte)  { w.b = append(w.b, v) }
func (w *shapeWriter) str(s string) { w.u(uint64(len(s))); w.b = append(w.b, s...) }
func (w *shapeWriter) sig(s il.Signature) {
	w.byte(byte(s.Ret))
	w.u(uint64(len(s.Params)))
	for _, p := range s.Params {
		w.byte(byte(p))
	}
}

type shapeReader struct {
	b   []byte
	off int
	err error
}

func (r *shapeReader) fail() {
	if r.err == nil {
		r.err = ErrShape
	}
}

func (r *shapeReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *shapeReader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *shapeReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *shapeReader) str() string {
	n := r.u()
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *shapeReader) sig() il.Signature {
	s := il.Signature{Ret: il.Type(r.byte())}
	n := r.u()
	if r.err != nil || n > uint64(len(r.b)) {
		r.fail()
		return s
	}
	for j := uint64(0); j < n; j++ {
		s.Params = append(s.Params, il.Type(r.byte()))
	}
	return s
}
