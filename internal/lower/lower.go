// Package lower translates checked MinC syntax trees into the common
// IL. It is the last language-specific stage: everything downstream
// (HLO, LLO, the linker) sees only il.Program and il.Function, which
// is what lets the optimizer treat mixed-language programs uniformly
// (paper section 3).
package lower

import (
	"cmo/internal/il"
	"cmo/internal/source"
)

// Result is the output of lowering a set of modules.
type Result struct {
	Prog *il.Program
	// Funcs maps each defined function to its freshly lowered body.
	// Ownership passes to the caller (normally the NAIM loader).
	Funcs map[il.PID]*il.Function
}

// Modules lowers a set of parsed-and-checked files into one program.
// All files share the program-wide symbol table; cross-module
// references are resolved by name, and extern declarations must match
// the definitions exactly.
func Modules(files []*source.File) (*Result, error) {
	return modules(files, true)
}

// ModulesLoose is Modules without the whole-program completeness
// check: extern symbols may remain undefined. It supports separate
// compilation (cmoc compiles one module at a time; the linker checks
// completeness when the program is assembled).
func ModulesLoose(files []*source.File) (*Result, error) {
	return modules(files, false)
}

func modules(files []*source.File, requireComplete bool) (*Result, error) {
	prog := il.NewProgram()
	res := &Result{Prog: prog, Funcs: make(map[il.PID]*il.Function)}

	// Pass 1: register all definitions so cross-module references
	// resolve regardless of file order. Both passes run through the
	// module Shape — the same path a build session replays when a
	// module's artifact is cached — so cold and warm builds intern
	// symbols in identical order.
	shapes := make([]Shape, len(files))
	mods := make([]*il.Module, len(files))
	for fi, f := range files {
		shapes[fi] = FileShape(f)
		mod, err := Register(prog, shapes[fi])
		if err != nil {
			return nil, err
		}
		mods[fi] = mod
	}

	// Pass 2: resolve externs (checking interface agreement) and
	// lower function bodies.
	for fi, f := range files {
		if err := ResolveExterns(prog, mods[fi], shapes[fi]); err != nil {
			return nil, err
		}
		if err := LowerBodies(prog, f, res.Funcs); err != nil {
			return nil, err
		}
	}
	if requireComplete {
		if err := prog.Validate(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func lowerType(t source.Type) il.Type {
	switch t.Kind {
	case source.TypeInt:
		return il.I64
	case source.TypeBool:
		return il.B1
	case source.TypeArray:
		return il.ArrayI64
	}
	return il.Void
}

func lowerSig(params []source.Param, ret source.Type) il.Signature {
	sig := il.Signature{Ret: lowerType(ret)}
	for _, p := range params {
		sig.Params = append(sig.Params, lowerType(p.Type))
	}
	return sig
}
