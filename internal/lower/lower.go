// Package lower translates checked MinC syntax trees into the common
// IL. It is the last language-specific stage: everything downstream
// (HLO, LLO, the linker) sees only il.Program and il.Function, which
// is what lets the optimizer treat mixed-language programs uniformly
// (paper section 3).
package lower

import (
	"fmt"

	"cmo/internal/il"
	"cmo/internal/source"
)

// Result is the output of lowering a set of modules.
type Result struct {
	Prog *il.Program
	// Funcs maps each defined function to its freshly lowered body.
	// Ownership passes to the caller (normally the NAIM loader).
	Funcs map[il.PID]*il.Function
}

// Modules lowers a set of parsed-and-checked files into one program.
// All files share the program-wide symbol table; cross-module
// references are resolved by name, and extern declarations must match
// the definitions exactly.
func Modules(files []*source.File) (*Result, error) {
	return modules(files, true)
}

// ModulesLoose is Modules without the whole-program completeness
// check: extern symbols may remain undefined. It supports separate
// compilation (cmoc compiles one module at a time; the linker checks
// completeness when the program is assembled).
func ModulesLoose(files []*source.File) (*Result, error) {
	return modules(files, false)
}

func modules(files []*source.File, requireComplete bool) (*Result, error) {
	prog := il.NewProgram()
	res := &Result{Prog: prog, Funcs: make(map[il.PID]*il.Function)}

	// Pass 1: register all definitions so cross-module references
	// resolve regardless of file order.
	for _, f := range files {
		mod := prog.AddModule(f.Module)
		mod.Lines = f.Lines
		for _, v := range f.Vars {
			pid, err := prog.Intern(v.Name, il.SymGlobal)
			if err != nil {
				return nil, err
			}
			sym := prog.Sym(pid)
			if sym.Module >= 0 {
				return nil, fmt.Errorf("lower: global %s defined in both %s and %s",
					v.Name, prog.Modules[sym.Module].Name, f.Module)
			}
			sym.Module = mod.Index
			sym.Type = lowerType(v.Type)
			sym.Elems = v.Type.Elems
			sym.Init = v.Init
			mod.Defs = append(mod.Defs, pid)
		}
		for _, fn := range f.Funcs {
			pid, err := prog.Intern(fn.Name, il.SymFunc)
			if err != nil {
				return nil, err
			}
			sym := prog.Sym(pid)
			if sym.Module >= 0 {
				return nil, fmt.Errorf("lower: function %s defined in both %s and %s",
					fn.Name, prog.Modules[sym.Module].Name, f.Module)
			}
			sym.Module = mod.Index
			sym.Sig = lowerSig(fn.Params, fn.Ret)
			mod.Defs = append(mod.Defs, pid)
		}
	}

	// Pass 2: resolve externs (checking interface agreement) and
	// lower function bodies.
	for fi, f := range files {
		mod := prog.Modules[fi]
		for _, e := range f.Externs {
			kind := il.SymGlobal
			if e.IsFunc {
				kind = il.SymFunc
			}
			pid, err := prog.Intern(e.Name, kind)
			if err != nil {
				return nil, fmt.Errorf("lower: module %s: %w", f.Module, err)
			}
			sym := prog.Sym(pid)
			if e.IsFunc {
				want := lowerSig(e.Params, e.Ret)
				switch {
				case sym.Module >= 0 || len(sym.Sig.Params) > 0 || sym.Sig.Ret != il.Void:
					if !sym.Sig.Equal(want) {
						return nil, fmt.Errorf("lower: module %s: extern %s%s does not match declaration %s%s",
							f.Module, e.Name, want, e.Name, sym.Sig)
					}
				default:
					// Record the declared signature on the undefined
					// symbol so separately compiled objects carry the
					// interface for link-time checking.
					sym.Sig = want
				}
			} else {
				if sym.Module >= 0 || sym.Type != il.Void {
					if sym.Type != lowerType(e.Type) || sym.Elems != e.Type.Elems {
						return nil, fmt.Errorf("lower: module %s: extern var %s has type %s, definition has %s",
							f.Module, e.Name, e.Type, sym.Type)
					}
				} else {
					sym.Type = lowerType(e.Type)
					sym.Elems = e.Type.Elems
				}
			}
			mod.Externs = append(mod.Externs, pid)
		}
		for _, fn := range f.Funcs {
			pid, _ := prog.Intern(fn.Name, il.SymFunc)
			body, err := lowerFunc(prog, fn)
			if err != nil {
				return nil, fmt.Errorf("lower: module %s: %w", f.Module, err)
			}
			body.PID = pid
			res.Funcs[pid] = body
		}
	}
	if requireComplete {
		if err := prog.Validate(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func lowerType(t source.Type) il.Type {
	switch t.Kind {
	case source.TypeInt:
		return il.I64
	case source.TypeBool:
		return il.B1
	case source.TypeArray:
		return il.ArrayI64
	}
	return il.Void
}

func lowerSig(params []source.Param, ret source.Type) il.Signature {
	sig := il.Signature{Ret: lowerType(ret)}
	for _, p := range params {
		sig.Params = append(sig.Params, lowerType(p.Type))
	}
	return sig
}
